(* The evaluation harness: regenerates the paper's Figure 7 for this
   reproduction — one row per case study, with the same columns:

     Rules (distinct/applications), ∃ (evars auto-instantiated),
     ⌜φ⌝ (side conditions auto/manual), Impl, Spec,
     Annot (data-structure / loop / other), Pure, Ovh

   plus verification wall-clock time (Bechamel; the paper claims
   "efficient goal-directed proof search" without tabulating it) and
   ablations of the design decisions DESIGN.md §5 calls out: evar
   goal-simplification off, named solvers/lemmas off, and the
   layered-vs-direct BST comparison.

   Run with:  dune exec bench/main.exe -- [--time] [--ablations] [--all]

   [--json [--json-out PATH] [-j N] [--cache DIR]] instead measures the
   full corpus end-to-end under six configurations — sequential,
   parallel (-j, transient per-run pool), persistent supervised pool
   (one pool for the whole corpus, warmed before timing — the
   configuration the CLI actually runs), cold cache, warm cache, and a
   metrics-instrumented sequential pass that contributes the per-phase
   timing breakdown — and writes a machine-readable perf record
   (default BENCH_pr6.json; schema documented in README.md) so the
   repo's performance trajectory accumulates as data, one record per
   PR. *)

module Driver = Rc_frontend.Driver
module Stats = Rc_lithium.Stats
module Api = Rc_session.Refinedc_api
module Supervisor = Rc_util.Supervisor

(* Each checked file gets a fresh case-study session: elaboration adds
   the file's C-declared named types to the session's own type
   environment, so sessions must not be shared between files. *)
let studies_session ?default_only ?no_goal_simp () =
  Api.create_session ~case_studies:true ?default_only ?no_goal_simp ()

let case_dir =
  List.find Sys.file_exists
    [
      "case_studies"; "../case_studies"; "../../case_studies";
      "../../../case_studies";
    ]

let read path = In_channel.with_open_bin path In_channel.input_all

(* ------------------------------------------------------------------ *)
(* The Figure 7 corpus                                                 *)
(* ------------------------------------------------------------------ *)

type study = {
  cls : string;  (** paper class, #1–#6 *)
  name : string;  (** paper row name *)
  file : string;
  pure_lemmas : int;  (** registered manual lemmas (the Pure column) *)
}

let corpus =
  [
    { cls = "#1"; name = "Singly linked list"; file = "linked_list.c"; pure_lemmas = 0 };
    { cls = "#1"; name = "Queue"; file = "queue.c"; pure_lemmas = 0 };
    { cls = "#1"; name = "Binary search"; file = "binary_search.c"; pure_lemmas = 0 };
    { cls = "#2"; name = "Thread-safe allocator"; file = "talloc.c"; pure_lemmas = 0 };
    { cls = "#2"; name = "Page allocator"; file = "page_alloc.c"; pure_lemmas = 0 };
    { cls = "#3"; name = "Bin. search tree (layered)"; file = "bst_layered.c"; pure_lemmas = 6 };
    { cls = "#3"; name = "Bin. search tree (direct)"; file = "bst_direct.c"; pure_lemmas = 0 };
    { cls = "#4"; name = "Linear probing hashmap"; file = "hashmap.c"; pure_lemmas = 5 };
    { cls = "#5"; name = "Hafnium-style mpool"; file = "mpool.c"; pure_lemmas = 0 };
    { cls = "#6"; name = "Spinlock"; file = "spinlock.c"; pure_lemmas = 0 };
    { cls = "#6"; name = "One-time barrier"; file = "barrier.c"; pure_lemmas = 0 };
  ]

(* ------------------------------------------------------------------ *)
(* Line counting (tokei-style, specialized to our annotations)         *)
(* ------------------------------------------------------------------ *)

type loc_counts = {
  impl : int;
  spec : int;
  annot_ds : int;
  annot_loop : int;
  annot_other : int;
}

let count_lines (src : string) : loc_counts =
  let lines = String.split_on_char '\n' src in
  let impl = ref 0 and spec = ref 0 in
  let ds = ref 0 and lp = ref 0 and other = ref 0 in
  let brace_depth = ref 0 in
  let in_struct = ref false in
  let in_annot = ref false in
  let annot_kind = ref `Other in
  List.iter
    (fun line ->
      let l = String.trim line in
      let has s = Rc_util.Xstring.contains_sub l ~sub:s in
      let is_annot_start = has "[[rc::" in
      let annot_line = is_annot_start || !in_annot in
      if is_annot_start then
        annot_kind :=
          if
            has "rc::refined_by" || has "rc::field" || has "rc::ptr_type"
            || has "rc::size" || !in_struct
          then `Ds
          else if
            !brace_depth > 0
            && (has "rc::inv_vars" || has "rc::exists" || has "rc::constraints")
          then `Loop
          else if has "rc::tactics" then `Other
          else if
            has "rc::parameters" || has "rc::args" || has "rc::returns"
            || has "rc::requires" || has "rc::ensures" || has "rc::exists"
            || has "rc::constraints"
          then `Spec
          else `Other;
      if annot_line then begin
        (match !annot_kind with
        | `Ds -> incr ds
        | `Loop -> incr lp
        | `Spec -> incr spec
        | `Other -> incr other);
        in_annot := not (has "]]")
      end
      else if l = "" || (String.length l >= 2 && String.sub l 0 2 = "//") then
        ()
      else begin
        incr impl;
        let starts p = Rc_util.Xstring.starts_with ~prefix:p l in
        if (starts "struct" || starts "typedef struct") && not (has "(") then
          in_struct := true;
        if !in_struct && (starts "}" || has "};" || has "}*") then
          in_struct := false;
        String.iter
          (fun c ->
            if c = '{' then incr brace_depth
            else if c = '}' then decr brace_depth)
          l
      end)
    lines;
  { impl = !impl; spec = !spec; annot_ds = !ds; annot_loop = !lp;
    annot_other = !other }

(* ------------------------------------------------------------------ *)
(* Per-study verification + measurement                                *)
(* ------------------------------------------------------------------ *)

type row = {
  study : study;
  stats : Stats.t;
  locs : loc_counts;
  ok : bool;
  note : string option;  (** why the row failed, when it did *)
}

(* A failing study produces a FAILED row instead of aborting the whole
   table: the harness reports per-row outcomes for the full corpus. *)
let check_study (s : study) : row =
  let path = Filename.concat case_dir s.file in
  let locs =
    try count_lines (read path)
    with _ ->
      { impl = 0; spec = 0; annot_ds = 0; annot_loop = 0; annot_other = 0 }
  in
  match Driver.check_file ~session:(studies_session ()) path with
  | t ->
      let note =
        match Driver.errors t with
        | [] -> None
        | (fn, e) :: _ ->
            Some (Fmt.str "%s: %s" fn (Rc_lithium.Report.kind_label e.kind))
      in
      {
        study = s;
        stats = Driver.stats t;
        locs;
        ok = Driver.errors t = [];
        note;
      }
  | exception Driver.Frontend_error msg ->
      { study = s; stats = Stats.create (); locs; ok = false;
        note = Some ("frontend: " ^ msg) }
  | exception e ->
      { study = s; stats = Stats.create (); locs; ok = false;
        note = Some ("crash: " ^ Printexc.to_string e) }

let print_table (rows : row list) =
  Fmt.pr "@.%-5s %-27s %-9s %4s %9s %5s %5s %-14s %4s %6s@." "Class" "Test"
    "Rules" "E?" "Side" "Impl" "Spec" "Annot(ds/lp/ot)" "Pure" "Ovh";
  Fmt.pr "%s@." (String.make 104 '-');
  List.iter
    (fun r ->
      let s = r.stats in
      let annot = r.locs.annot_ds + r.locs.annot_loop + r.locs.annot_other in
      let ovh =
        float_of_int (annot + r.study.pure_lemmas)
        /. float_of_int (max r.locs.impl 1)
      in
      Fmt.pr
        "%-5s %-27s %3d/%-5d %4d %5d/%-3d %5d %5d %4d (%d/%d/%d)    %4d %6.2f%s@."
        r.study.cls r.study.name (Stats.distinct_rules s) s.Stats.rule_apps
        s.Stats.evar_insts s.Stats.side_auto s.Stats.side_manual r.locs.impl
        r.locs.spec annot r.locs.annot_ds r.locs.annot_loop
        r.locs.annot_other r.study.pure_lemmas ovh
        (match (r.ok, r.note) with
        | true, _ -> ""
        | false, Some n -> "  *** FAILED: " ^ n
        | false, None -> "  *** FAILED"))
    rows;
  Fmt.pr "%s@." (String.make 104 '-');
  Fmt.pr
    "Rules: distinct/applications.  E?: evars auto-instantiated.  Side: side \
     conditions auto/manual.@.";
  Fmt.pr
    "Pure: registered manual lemmas (stand-in for manual Coq proofs).  Ovh = \
     (Annot+Pure)/Impl.@.";
  let s = studies_session () in
  Fmt.pr "Standard library: %d typing rules, %d named types registered.@."
    (Rc_refinedc.Rules.count s.Rc_refinedc.Session.index)
    (Hashtbl.length s.Rc_refinedc.Session.tenv)

(* ------------------------------------------------------------------ *)
(* Timing (Bechamel)                                                   *)
(* ------------------------------------------------------------------ *)

let time_studies (rows : row list) =
  (* only time rows that verify; a failing study would abort the loop *)
  let rows = List.filter (fun r -> r.ok) rows in
  let open Bechamel in
  let open Toolkit in
  let tests =
    Test.make_grouped ~name:"verify"
      (List.map
         (fun r ->
           let path = Filename.concat case_dir r.study.file in
           let src = read path in
           Test.make ~name:r.study.file
             (Staged.stage (fun () ->
                  ignore
                    (Driver.check_source ~session:(studies_session ())
                       ~file:path src))))
         rows)
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:(Some 10) ()
  in
  let raw = Benchmark.all cfg instances tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Fmt.pr "@.Verification time per case study (Bechamel, monotonic clock):@.";
  let entries = ref [] in
  Hashtbl.iter
    (fun name v ->
      match Analyze.OLS.estimates v with
      | Some [ est ] -> entries := (name, est /. 1e6) :: !entries
      | _ -> ())
    results;
  List.iter
    (fun (name, ms) -> Fmt.pr "  %-30s %10.3f ms/run@." name ms)
    (List.sort compare !entries)

(* ------------------------------------------------------------------ *)
(* Ablations                                                           *)
(* ------------------------------------------------------------------ *)

let ablations (rows : row list) =
  Fmt.pr "@.== Ablations (design decisions of DESIGN.md par.5) ==@.";
  (* each ablation is just a differently-configured session — no global
     switches to flip and restore *)
  let run_with mk_session desc =
    Fmt.pr "@.%s:@." desc;
    List.iter
      (fun r ->
        let path = Filename.concat case_dir r.study.file in
        match Driver.check_file ~session:(mk_session ()) path with
        | t ->
            let errs = Driver.errors t in
            if errs = [] then Fmt.pr "  %-20s still verifies@." r.study.file
            else
              Fmt.pr "  %-20s FAILS (%s)@." r.study.file
                (String.concat ", " (List.map fst errs))
        | exception _ -> Fmt.pr "  %-20s FAILS (frontend)@." r.study.file)
      rows
  in
  run_with
    (fun () -> studies_session ~no_goal_simp:true ())
    "(a) evar goal-simplification rules disabled (heuristic 2 of paper par.5)";
  run_with
    (fun () -> studies_session ~default_only:true ())
    "(b) named solvers and manual lemmas disabled (default solver only)";
  Fmt.pr "@.(c) layered vs direct BST (the paper's #3 comparison):@.";
  let get file = List.find (fun r -> r.study.file = file) rows in
  let lay = get "bst_layered.c" and dir = get "bst_direct.c" in
  Fmt.pr
    "  layered: %d manual lemmas, %d manual side conditions;  direct: %d \
     lemmas, %d manual side conditions@."
    lay.study.pure_lemmas lay.stats.Stats.side_manual dir.study.pure_lemmas
    dir.stats.Stats.side_manual;
  Fmt.pr
    "  (as the paper found, the intermediate functional layer costs extra \
     pure reasoning)@."

(* ------------------------------------------------------------------ *)
(* Machine-readable perf record (--json)                               *)
(* ------------------------------------------------------------------ *)

(* One corpus pass under a given configuration.  Studies are checked in
   corpus order, each under a fresh session; [jobs] fans the *functions*
   of each study across the domain pool. *)

type jstudy = {
  j_study : study;
  j_ok : bool;
  j_wall_s : float;  (** end-to-end: parse + elaborate + check *)
  j_functions : int;
  j_stats : Stats.t;
  j_hits : int;
  j_misses : int;
  j_phases : (string * float) list;
      (** per-phase wall seconds (parse/elab/lint/check), from the
          metrics registry; empty unless the pass is instrumented *)
  j_diags : int;
      (** diagnostics reported by the frontend + lint pre-pass (the
          corpus is expected to stay problem-free; the count tracks
          notes/hints drift) *)
}

let measure_study ?(instrument = false) ?pool ~jobs ?cache (s : study) :
    jstudy =
  let path = Filename.concat case_dir s.file in
  let session =
    if instrument then
      Rc_refinedc.Session.with_obs (studies_session ())
        { Rc_util.Obs.c_trace = false; c_metrics = true }
    else studies_session ()
  in
  let session =
    match pool with
    | None -> session
    | Some _ ->
        Rc_refinedc.Session.with_exec session
          { Rc_refinedc.Session.default_exec with x_pool = pool }
  in
  let watch = Rc_util.Budget.stopwatch () in
  match Driver.check_file ~session ~jobs ?cache path with
  | t ->
      let hits, misses =
        match t.Driver.cache_stats with Some hm -> hm | None -> (0, 0)
      in
      let phases =
        List.map
          (fun (name, _count, total_ns) ->
            (name, Int64.to_float total_ns /. 1e9))
          (Rc_util.Metrics.timers_with_prefix
             (Rc_util.Obs.mx t.Driver.obs)
             ~prefix:"phase.")
      in
      {
        j_study = s;
        j_ok = Driver.errors t = [] && t.Driver.skipped = [];
        j_wall_s = watch ();
        j_functions = List.length t.Driver.results;
        j_stats = Driver.stats t;
        j_hits = hits;
        j_misses = misses;
        j_phases = phases;
        j_diags = List.length t.Driver.diagnostics;
      }
  | exception _ ->
      {
        j_study = s;
        j_ok = false;
        j_wall_s = watch ();
        j_functions = 0;
        j_stats = Stats.create ();
        j_hits = 0;
        j_misses = 0;
        j_phases = [];
        j_diags = 0;
      }

let run_to_json ~mode ~jobs ~cached (studies : jstudy list) :
    float * Rc_util.Jsonout.t =
  let open Rc_util.Jsonout in
  let total = List.fold_left (fun a r -> a +. r.j_wall_s) 0. studies in
  let hits = Rc_util.Xlist.sum (List.map (fun r -> r.j_hits) studies) in
  let misses = Rc_util.Xlist.sum (List.map (fun r -> r.j_misses) studies) in
  let study_json r =
    Obj
      ([
        ("class", Str r.j_study.cls);
        ("name", Str r.j_study.name);
        ("file", Str r.j_study.file);
        ("ok", Bool r.j_ok);
        ("wall_s", Float r.j_wall_s);
        ("functions", Int r.j_functions);
        ("rule_apps", Int r.j_stats.Stats.rule_apps);
        ("distinct_rules", Int (Stats.distinct_rules r.j_stats));
        ("evar_insts", Int r.j_stats.Stats.evar_insts);
        ("side_auto", Int r.j_stats.Stats.side_auto);
        ("side_manual", Int r.j_stats.Stats.side_manual);
        ("cache_hits", Int r.j_hits);
        ("cache_misses", Int r.j_misses);
        ("diagnostics", Int r.j_diags);
      ]
      @
      match r.j_phases with
      | [] -> []
      | ps ->
          [ ("phases_s", Obj (List.map (fun (n, s) -> (n, Float s)) ps)) ]
      )
  in
  ( total,
    Obj
      [
        ("mode", Str mode);
        ("jobs", Int jobs);
        ("cache", Bool cached);
        ("total_wall_s", Float total);
        ("ok", Bool (List.for_all (fun r -> r.j_ok) studies));
        ("cache_hits", Int hits);
        ("cache_misses", Int misses);
        ( "cache_hit_rate",
          Float
            (if hits + misses = 0 then 0.
             else float_of_int hits /. float_of_int (hits + misses)) );
        ("studies", List (List.map study_json studies));
      ] )

let json_record ~jobs ~cache_dir ~out () =
  let open Rc_util.Jsonout in
  (* each pass is measured [reps] times and the fastest corpus sweep is
     recorded — the usual minimum-of-N defence against scheduler noise,
     which matters here because entire sweeps take tens of ms *)
  (* one corpus sweep under a configuration *)
  let sweep ?instrument ?pool ~mode ~jobs ?cache () =
    run_to_json ~mode ~jobs ~cached:(cache <> None)
      (List.map (measure_study ?instrument ?pool ~jobs ?cache) corpus)
  in
  (* the configuration the CLI actually runs since the supervisor
     landed: [-j] clamped to the core count, and when that still leaves
     parallelism, one pool of worker domains spawned before any
     checking and reused for every file.  On a single-core host the
     clamp degrades all the way to inline sequential execution — the
     fastest thing that host can do (the transient-pool "parallel" mode
     records what the per-run path costs after the same clamp). *)
  let eff_jobs = min jobs (Supervisor.recommended_jobs ()) in
  let with_pool k =
    if eff_jobs > 1 && Supervisor.parallelism_available then begin
      let pool = Supervisor.create ~jobs:eff_jobs () in
      Fun.protect
        ~finally:(fun () -> Supervisor.shutdown pool)
        (fun () -> k (Some pool))
    end
    else k None
  in
  with_pool @@ fun pool ->
  (* make the cold pass genuinely cold even if the directory survives a
     previous bench run *)
  if Sys.file_exists cache_dir && Sys.is_directory cache_dir then
    Array.iter
      (fun f ->
        if Filename.check_suffix f ".vc" then
          try Sys.remove (Filename.concat cache_dir f) with Sys_error _ -> ())
      (Sys.readdir cache_dir);
  let cache = Rc_util.Vercache.create cache_dir in
  (* cold is single-shot by nature: a second sweep would be warm *)
  Fmt.pr "  measuring: cold_cache      (-j %d, single shot)@." jobs;
  let _, cold = sweep ~mode:"cold_cache" ~jobs ~cache () in
  (* The five comparable configurations are measured in interleaved
     rounds — every round sweeps each mode once — and each mode keeps
     its fastest round.  Interleaving means a noisy window (another
     process, a slow timer tick) lands on every mode instead of
     falsifying whichever block pass it happened to overlap; the
     per-mode minimum then converges on the true floor.  The
     metrics-instrumented sequential mode contributes the per-phase
     (parse/elab/check) timing breakdown while the uninstrumented modes
     stay comparable with pre-observability records.  Round 1 doubles
     as warm-up (pool dispatch paths, cache pages); the minimum
     discards it unless it was already the fastest. *)
  let reps = 9 in
  let modes =
    [
      ("sequential", fun () -> sweep ~mode:"sequential" ~jobs:1 ());
      ( "persistent_pool",
        fun () -> sweep ?pool ~mode:"persistent_pool" ~jobs:eff_jobs () );
      ("parallel", fun () -> sweep ~mode:"parallel" ~jobs ());
      ("warm_cache", fun () -> sweep ~mode:"warm_cache" ~jobs ~cache ());
      ( "instrumented",
        fun () -> sweep ~instrument:true ~mode:"instrumented" ~jobs:1 () );
    ]
  in
  Fmt.pr "  measuring: %d modes x %d interleaved rounds@." (List.length modes)
    reps;
  let best : (string, float * Rc_util.Jsonout.t) Hashtbl.t =
    Hashtbl.create 8
  in
  let rounds : (string * float) list array = Array.make reps [] in
  for round = 0 to reps - 1 do
    (* odd rounds sweep the modes in reverse so that no mode always
       occupies the same position relative to its comparison partner —
       any slow drift across a round then biases both directions
       equally *)
    let order = if round mod 2 = 0 then modes else List.rev modes in
    rounds.(round) <-
      List.map
        (fun (key, f) ->
          (* equalized heap at every sweep so mode order cannot leak in *)
          Gc.compact ();
          let r = f () in
          (match Hashtbl.find_opt best key with
          | Some (w, _) when w <= fst r -> ()
          | _ -> Hashtbl.replace best key r);
          (key, fst r))
        order
  done;
  let get key = Hashtbl.find best key in
  let seq_wall, seq = get "sequential" in
  let par_wall, par = get "parallel" in
  let pp_wall, pp = get "persistent_pool" in
  let warm_wall, warm = get "warm_cache" in
  let _instr_wall, instr = get "instrumented" in
  (* Speedups are the median across rounds of the *within-round* ratio:
     both sweeps of a pair ran back-to-back in the same round, so
     round-level noise (a busy neighbour, a timer hiccup) hits
     numerator and denominator together and largely cancels, and the
     median is immune to the occasional sweep that lands in a slow
     window — where a ratio of two independently-taken minima (or of
     sums, which inherit every upward outlier) would not be. *)
  let ratio_vs_sequential key =
    let ratios =
      Array.to_list rounds
      |> List.filter_map (fun round ->
             match
               (List.assoc_opt "sequential" round, List.assoc_opt key round)
             with
             | Some s, Some m when m > 0. -> Some (s /. m)
             | _ -> None)
      |> List.sort compare
    in
    match ratios with
    | [] -> 0.
    | rs -> List.nth rs (List.length rs / 2)
  in
  let record =
    Obj
      [
        ("schema", Str "refinedc-bench/3");
        ("ocaml", Str Sys.ocaml_version);
        ("word_size", Int Sys.word_size);
        ("parallelism_available", Bool Rc_util.Pool.parallelism_available);
        ("jobs", Int jobs);
        ("jobs_effective", Int eff_jobs);
        ("cores", Int (Supervisor.recommended_jobs ()));
        ("corpus_studies", Int (List.length corpus));
        ( "stdlib",
          Obj
            (let s = studies_session () in
             [
               ( "typing_rules",
                 Int (Rc_refinedc.Rules.count s.Rc_refinedc.Session.index) );
               ( "named_types",
                 Int (Hashtbl.length s.Rc_refinedc.Session.tenv) );
             ]) );
        ("runs", List [ seq; par; pp; cold; warm; instr ]);
        ( "speedup",
          Obj
            [
              ("parallel_vs_sequential", Float (ratio_vs_sequential "parallel"));
              ( "persistent_pool_vs_sequential",
                Float (ratio_vs_sequential "persistent_pool") );
              ( "warm_cache_vs_sequential",
                Float (ratio_vs_sequential "warm_cache") );
              ( "instrumented_vs_sequential",
                Float
                  (let r = ratio_vs_sequential "instrumented" in
                   if r > 0. then 1. /. r else 0.) );
            ] );
      ]
  in
  Out_channel.with_open_bin out (fun oc ->
      Out_channel.output_string oc (Rc_util.Jsonout.to_string record);
      Out_channel.output_string oc "\n");
  Fmt.pr
    "@.Perf record written to %s@.  sequential %.3fs, parallel (-j %d) \
     %.3fs, persistent pool %.3fs, warm cache %.3fs@."
    out seq_wall jobs par_wall pp_wall warm_wall;
  List.for_all
    (fun j ->
      match j with
      | Obj fields -> (
          match List.assoc_opt "ok" fields with
          | Some (Bool b) -> b
          | _ -> false)
      | _ -> false)
    [ seq; par; pp; cold; warm; instr ]

(* ------------------------------------------------------------------ *)
(* Stress corpus (--stress): engine-speed measurement                  *)
(* ------------------------------------------------------------------ *)

(* [--stress [--scale N] [-j N] [--json-out PATH]] generates the
   synthetic stress corpus (bench/corpus.ml), proves verdict
   byte-identity across the four engine configurations, then measures
   rule-applications/second for each configuration — sequentially and
   under the persistent pool — plus a diamond-size speedup curve, and
   writes a refinedc-bench/4 record (default BENCH_pr7.json).

   Rule-applications/second is the honest work metric here because the
   Stats satellite guarantees [rule_apps] is identical with and without
   memoization (hits merge the subsumed applications); the apps/sec
   ratio therefore equals the wall-clock ratio on identical work. *)

module Corpus = Rc_benchgen.Corpus

type engine_cfg = { cfg_name : string; cfg_hashcons : bool; cfg_memo : bool }

let engine_cfgs =
  [
    { cfg_name = "baseline"; cfg_hashcons = false; cfg_memo = false };
    { cfg_name = "hashcons"; cfg_hashcons = true; cfg_memo = false };
    { cfg_name = "memo"; cfg_hashcons = false; cfg_memo = true };
    { cfg_name = "memo_hashcons"; cfg_hashcons = true; cfg_memo = true };
  ]

(* Fresh session per check (elaboration registers the file's named types
   in the session's type environment). *)
let stress_session ?pool (cfg : engine_cfg) () =
  let s =
    Rc_refinedc.Session.with_memo (Api.create_session ())
      {
        Rc_refinedc.Session.default_memo with
        Rc_refinedc.Session.mm_enabled = cfg.cfg_memo;
        mm_hashcons = cfg.cfg_hashcons;
      }
  in
  match pool with
  | None -> s
  | Some _ ->
      Rc_refinedc.Session.with_exec s
        { Rc_refinedc.Session.default_exec with x_pool = pool }

type srow = {
  s_path : string;
  s_wall : float;
  s_functions : int;
  s_stats : Stats.t;
  s_ok : bool;
}

let stress_sweep ?pool ~jobs (cfg : engine_cfg) (paths : string list) :
    srow list =
  List.map
    (fun path ->
      let watch = Rc_util.Budget.stopwatch () in
      match Driver.check_file ~session:(stress_session ?pool cfg ()) ~jobs path with
      | t ->
          {
            s_path = path;
            s_wall = watch ();
            s_functions = List.length t.Driver.results;
            s_stats = Driver.stats t;
            s_ok = (Driver.errors t = [] && t.Driver.skipped = []);
          }
      | exception _ ->
          {
            s_path = path;
            s_wall = watch ();
            s_functions = 0;
            s_stats = Stats.create ();
            s_ok = false;
          })
    paths

let stress_record ~scale ~jobs ~out () : bool =
  let open Rc_util.Jsonout in
  let dir =
    Filename.concat (Filename.get_temp_dir_name ()) "refinedc-stress"
  in
  let progs = Corpus.stress_corpus ~scale in
  let paths = Corpus.materialize ~dir progs in
  Fmt.pr "Stress corpus: %d programs (scale %d) -> %s@." (List.length progs)
    scale dir;
  (* 1. verdict byte-identity across all four engine configurations,
     recorded before any timing: the speed knobs must be unobservable in
     the result surface (--json without timings). *)
  let verdict cfg path =
    match Driver.check_file ~session:(stress_session cfg ()) path with
    | t -> Rc_util.Jsonout.to_string (Driver.to_json ~timings:false t)
    | exception e -> "exception: " ^ Printexc.to_string e
  in
  let identical =
    List.for_all
      (fun path ->
        match List.map (fun c -> verdict c path) engine_cfgs with
        | [] -> true
        | v0 :: rest ->
            let same = List.for_all (String.equal v0) rest in
            if not same then
              Fmt.pr "  VERDICT MISMATCH on %s@." (Filename.basename path);
            same)
      paths
  in
  Fmt.pr "  verdicts byte-identical across %d configs: %b@."
    (List.length engine_cfgs) identical;
  (* 2. interleaved measurement (the BENCH_pr6 methodology): every round
     sweeps each configuration once, each configuration keeps its
     fastest round, and speedups are medians of within-round ratios so
     round-level noise cancels. *)
  let reps = 5 in
  let measure ?pool ~jobs () =
    let best : (string, float * srow list) Hashtbl.t = Hashtbl.create 8 in
    let rounds = Array.make reps [] in
    for round = 0 to reps - 1 do
      let order = if round mod 2 = 0 then engine_cfgs else List.rev engine_cfgs in
      rounds.(round) <-
        List.map
          (fun cfg ->
            Gc.compact ();
            let rows = stress_sweep ?pool ~jobs cfg paths in
            let total = List.fold_left (fun a r -> a +. r.s_wall) 0. rows in
            (match Hashtbl.find_opt best cfg.cfg_name with
            | Some (w, _) when w <= total -> ()
            | _ -> Hashtbl.replace best cfg.cfg_name (total, rows));
            (cfg.cfg_name, total))
          order
    done;
    (best, rounds)
  in
  let speedup_vs_baseline rounds key =
    let ratios =
      Array.to_list rounds
      |> List.filter_map (fun round ->
             match
               (List.assoc_opt "baseline" round, List.assoc_opt key round)
             with
             | Some b, Some m when m > 0. -> Some (b /. m)
             | _ -> None)
      |> List.sort compare
    in
    match ratios with
    | [] -> 0.
    | rs -> List.nth rs (List.length rs / 2)
  in
  let sum f rows = Rc_util.Xlist.sum (List.map f rows) in
  let run_json ~mode ~jobs name (total, rows) =
    let apps = sum (fun r -> r.s_stats.Stats.rule_apps) rows in
    Obj
      [
        ("config", Str name);
        ("mode", Str mode);
        ("jobs", Int jobs);
        ("ok", Bool (List.for_all (fun r -> r.s_ok) rows));
        ("total_wall_s", Float total);
        ("rule_apps", Int apps);
        ( "apps_per_sec",
          Float (if total > 0. then float_of_int apps /. total else 0.) );
        ("memo_hits", Int (sum (fun r -> r.s_stats.Stats.memo_hits) rows));
        ( "memo_saved_apps",
          Int (sum (fun r -> r.s_stats.Stats.memo_saved_apps) rows) );
        ( "programs",
          List
            (List.map
               (fun r ->
                 Obj
                   [
                     ("name", Str (Filename.basename r.s_path));
                     ("ok", Bool r.s_ok);
                     ("wall_s", Float r.s_wall);
                     ("functions", Int r.s_functions);
                     ("rule_apps", Int r.s_stats.Stats.rule_apps);
                     ("memo_hits", Int r.s_stats.Stats.memo_hits);
                   ])
               rows) );
      ]
  in
  Fmt.pr "  measuring: %d configs x %d interleaved rounds (sequential)@."
    (List.length engine_cfgs) reps;
  let seq_best, seq_rounds = measure ~jobs:1 () in
  let eff_jobs = min jobs (Supervisor.recommended_jobs ()) in
  let pool_runs, pool_speedups =
    if eff_jobs > 1 && Supervisor.parallelism_available then begin
      Fmt.pr "  measuring: %d configs x %d interleaved rounds (pool, -j %d)@."
        (List.length engine_cfgs) reps eff_jobs;
      let pool = Supervisor.create ~jobs:eff_jobs () in
      Fun.protect
        ~finally:(fun () -> Supervisor.shutdown pool)
        (fun () ->
          let best, rounds = measure ~pool ~jobs:eff_jobs () in
          ( List.map
              (fun cfg ->
                run_json ~mode:"pool" ~jobs:eff_jobs cfg.cfg_name
                  (Hashtbl.find best cfg.cfg_name))
              engine_cfgs,
            List.map
              (fun cfg ->
                ( cfg.cfg_name ^ "_vs_baseline",
                  Float (speedup_vs_baseline rounds cfg.cfg_name) ))
              (List.tl engine_cfgs) ))
    end
    else ([], [])
  in
  (* 3. the diamond speedup curve: memo-off cost doubles per size step,
     so per-size apps/sec makes the asymptotic separation visible *)
  let curve =
    List.map
      (fun k ->
        let name = Printf.sprintf "curve_diamonds_%02d.c" k in
        let path =
          List.hd
            (Corpus.materialize ~dir
               [ { Corpus.p_name = name; p_src = Corpus.diamond_chain ~k } ])
        in
        let time cfg =
          let best = ref infinity and stats = ref (Stats.create ()) in
          for _ = 1 to 3 do
            Gc.compact ();
            let watch = Rc_util.Budget.stopwatch () in
            match Driver.check_file ~session:(stress_session cfg ()) path with
            | t ->
                let w = watch () in
                if w < !best then begin
                  best := w;
                  stats := Driver.stats t
                end
            | exception _ -> ()
          done;
          (!best, !stats)
        in
        let off_cfg = List.nth engine_cfgs 1 (* hashcons, no memo *) in
        let on_cfg = List.nth engine_cfgs 3 (* hashcons + memo *) in
        let off_w, off_s = time off_cfg in
        let on_w, on_s = time on_cfg in
        let apps = off_s.Stats.rule_apps in
        Fmt.pr "  curve k=%-2d: %8d apps, memo off %.4fs, on %.4fs@." k apps
          off_w on_w;
        Obj
          [
            ("k", Int k);
            ("rule_apps", Int apps);
            ("memo_off_wall_s", Float off_w);
            ("memo_on_wall_s", Float on_w);
            ( "memo_off_apps_per_sec",
              Float
                (if off_w > 0. then float_of_int apps /. off_w else 0.) );
            ( "memo_on_apps_per_sec",
              Float
                (if on_w > 0. then
                   float_of_int on_s.Stats.rule_apps /. on_w
                 else 0.) );
            ( "speedup",
              Float (if on_w > 0. then off_w /. on_w else 0.) );
          ])
      (Corpus.curve_sizes ~scale)
  in
  let seq_runs =
    List.map
      (fun cfg ->
        run_json ~mode:"sequential" ~jobs:1 cfg.cfg_name
          (Hashtbl.find seq_best cfg.cfg_name))
      engine_cfgs
  in
  let seq_speedups =
    List.map
      (fun cfg ->
        ( cfg.cfg_name ^ "_vs_baseline",
          Float (speedup_vs_baseline seq_rounds cfg.cfg_name) ))
      (List.tl engine_cfgs)
  in
  let corpus_json =
    let _, baseline_rows = Hashtbl.find seq_best "baseline" in
    List.map
      (fun r ->
        Obj
          [
            ("name", Str (Filename.basename r.s_path));
            ("functions", Int r.s_functions);
            ("rule_apps", Int r.s_stats.Stats.rule_apps);
          ])
      baseline_rows
  in
  let record =
    Obj
      [
        ("schema", Str "refinedc-bench/4");
        ("ocaml", Str Sys.ocaml_version);
        ("word_size", Int Sys.word_size);
        ("parallelism_available", Bool Rc_util.Pool.parallelism_available);
        ("scale", Int scale);
        ("jobs", Int jobs);
        ("jobs_effective", Int eff_jobs);
        ("configs", List (List.map (fun c -> Str c.cfg_name) engine_cfgs));
        ("verdicts_identical", Bool identical);
        ("corpus", List corpus_json);
        ("runs", List (seq_runs @ pool_runs));
        ( "speedup",
          Obj
            ([ ("sequential", Obj seq_speedups) ]
            @
            match pool_speedups with
            | [] -> []
            | ps -> [ ("pool", Obj ps) ]) );
        ("curve", List curve);
      ]
  in
  Out_channel.with_open_bin out (fun oc ->
      Out_channel.output_string oc (Rc_util.Jsonout.to_string record);
      Out_channel.output_string oc "\n");
  let get name = fst (Hashtbl.find seq_best name) in
  Fmt.pr
    "@.Perf record written to %s@.  sequential totals: baseline %.3fs, \
     hashcons %.3fs, memo %.3fs, memo+hashcons %.3fs@."
    out (get "baseline") (get "hashcons") (get "memo") (get "memo_hashcons");
  let runs_ok =
    List.for_all
      (fun j ->
        match j with
        | Obj fields -> (
            match List.assoc_opt "ok" fields with
            | Some (Bool b) -> b
            | _ -> false)
        | _ -> false)
      (seq_runs @ pool_runs)
  in
  identical && runs_ok

(* ------------------------------------------------------------------ *)
(* Incremental verification (--incr): dirty-cone measurement           *)
(* ------------------------------------------------------------------ *)

(* [--incr [--scale N] [--json-out PATH]] measures dependency-cone
   incremental verification on the stress families that have a
   function-level structure: cold run, fully-warm run, and two
   single-function edits (body-only — early cutoff, expected cone 1 —
   and spec — expected cone = the edited function plus its direct
   callers).  Each scenario checks three invariants before any timing
   is trusted: the re-verified set is *exactly* the expected cone, the
   warm run re-verifies nothing, and the cached verdicts are identical
   to a from-scratch non-incremental run.  Writes a refinedc-bench/5
   record (default BENCH_pr8.json). *)

type ifamily = {
  i_name : string;
  i_functions : int;
  i_gen : ?edit:Corpus.edit -> unit -> string;
  i_body_edit : Corpus.edit;
  i_body_cone : int;  (** expected dirty-set size for the body edit *)
  i_spec_edit : Corpus.edit;
  i_spec_cone : int;  (** expected dirty-set size for the spec edit *)
}

let incr_families ~scale : ifamily list =
  let s = max 1 scale in
  [
    (let n = 12 * s in
     {
       i_name = "call_chain";
       i_functions = n;
       i_gen = (fun ?edit () -> Corpus.call_chain ?edit ~weight:3 ~n ());
       i_body_edit = `Body (n / 2);
       i_body_cone = 1;
       (* f(n/2)'s spec signature moved: itself + its caller f(n/2 - 1) *)
       i_spec_edit = `Spec (n / 2);
       i_spec_cone = 2;
     });
    (let f = 6 * s in
     {
       i_name = "diamond_chain";
       i_functions = f;
       i_gen = (fun ?edit () -> Corpus.diamond_farm ?edit ~functions:f ~k:4 ());
       i_body_edit = `Body (f / 2);
       i_body_cone = 1;
       (* no call edges between the diamonds: a spec edit dirties only
          its own function *)
       i_spec_edit = `Spec (f / 2);
       i_spec_cone = 1;
     });
    (let f = 8 * s in
     {
       i_name = "loop_farm";
       i_functions = f;
       i_gen = (fun ?edit () -> Corpus.loop_farm ?edit ~functions:f ());
       i_body_edit = `Inv (f / 2);
       (* an invariant edit is a body-digest change: cone 1 *)
       i_body_cone = 1;
       i_spec_edit = `Spec (f / 2);
       i_spec_cone = 1;
     });
  ]

(* The verdict surface that must be identical between an incremental
   (cache-replayed) run and a from-scratch non-incremental run: status
   and Figure-7 statistics per function, in source order, plus the exit
   code.  (Raw JSON can't be compared byte-for-byte across *modes* —
   the cache block itself legitimately differs.) *)
let verdict_sig (t : Driver.t) : string =
  String.concat "\n"
    (string_of_int (Driver.exit_code t)
    :: List.map
         (fun (r : Driver.check_result) ->
           match r.outcome with
           | Ok res ->
               let s = res.Rc_refinedc.Lang.E.stats in
               Fmt.str "%s:ok:%d:%d:%d:%d" r.Driver.name s.Stats.rule_apps
                 s.Stats.evar_insts s.Stats.side_auto s.Stats.side_manual
           | Error e ->
               Fmt.str "%s:err:%s" r.Driver.name
                 (Rc_lithium.Report.to_string e))
         t.Driver.results)

let incr_scratch = ref 0

let incr_record ~scale ~out () : bool =
  let open Rc_util.Jsonout in
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "refinedc-incr" in
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  let reps = 3 in
  let families = incr_families ~scale in
  Fmt.pr "Incremental corpus: %d families (scale %d) -> %s@."
    (List.length families) scale dir;
  let ok_all = ref true in
  let fam_json =
    List.map
      (fun fam ->
        let path = Filename.concat dir (fam.i_name ^ ".c") in
        let run src cache =
          Out_channel.with_open_bin path (fun oc ->
              Out_channel.output_string oc src);
          Gc.compact ();
          let watch = Rc_util.Budget.stopwatch () in
          let t =
            Driver.check_file ~session:(Api.create_session ()) ~cache path
          in
          (watch (), t)
        in
        let reverified (t : Driver.t) =
          List.length
            (List.filter (fun (r : Driver.check_result) -> not r.Driver.cached)
               t.Driver.results)
        in
        let all_ok (t : Driver.t) =
          Driver.errors t = [] && t.Driver.skipped = []
        in
        (* one interleaved round: fresh cache, cold -> warm -> body edit
           -> rebase -> spec edit; the rebase restores every base entry
           so the spec edit starts from the same warm state *)
        let round () =
          incr incr_scratch;
          let cdir =
            Filename.concat dir
              (Printf.sprintf "%s-cache-%d" fam.i_name !incr_scratch)
          in
          (* the cold pass must be genuinely cold even when the scratch
             directory survived a previous bench invocation *)
          if Sys.file_exists cdir && Sys.is_directory cdir then
            Array.iter
              (fun f ->
                try Sys.remove (Filename.concat cdir f) with Sys_error _ -> ())
              (Sys.readdir cdir);
          let cache = Rc_util.Vercache.create cdir in
          let cold_w, cold_t = run (fam.i_gen ()) cache in
          let warm_w, warm_t = run (fam.i_gen ()) cache in
          let body_w, body_t = run (fam.i_gen ~edit:fam.i_body_edit ()) cache in
          let _rebase = run (fam.i_gen ()) cache in
          let spec_w, spec_t = run (fam.i_gen ~edit:fam.i_spec_edit ()) cache in
          ((cold_w, cold_t), (warm_w, warm_t), (body_w, body_t),
           (spec_w, spec_t))
        in
        let rounds = List.init reps (fun _ -> round ()) in
        let (c0, cold_t0), (w0, warm_t0), (b0, body_t0), (s0, spec_t0) =
          List.hd rounds
        in
        let min_of f =
          List.fold_left (fun a r -> Float.min a (f r)) infinity rounds
        in
        let cold_w = min_of (fun ((w, _), _, _, _) -> w) in
        let warm_w = min_of (fun (_, (w, _), _, _) -> w) in
        let body_w = min_of (fun (_, _, (w, _), _) -> w) in
        let spec_w = min_of (fun (_, _, _, (w, _)) -> w) in
        ignore (c0, w0, b0, s0);
        let median_ratio pick =
          let rs =
            List.filter_map
              (fun ((cw, _), _, _, _ as r) ->
                let ew = pick r in
                if cw > 0. then Some (ew /. cw) else None)
              rounds
            |> List.sort compare
          in
          match rs with
          | [] -> 0.
          | _ -> List.nth rs (List.length rs / 2)
        in
        let body_ratio = median_ratio (fun (_, _, (w, _), _) -> w) in
        let spec_ratio = median_ratio (fun (_, _, _, (w, _)) -> w) in
        (* invariants: every run verifies, the warm run replays
           everything, each edit re-verifies exactly its cone *)
        let cone_exact =
          List.for_all
            (fun ((_, ct), (_, wt), (_, bt), (_, st)) ->
              let ok =
                all_ok ct && all_ok wt && all_ok bt && all_ok st
                && reverified ct = fam.i_functions
                && reverified wt = 0
                && reverified bt = fam.i_body_cone
                && reverified st = fam.i_spec_cone
              in
              if not ok then
                Fmt.epr
                  "  [%s] round mismatch: ok %b/%b/%b/%b, reverified \
                   cold=%d/%d warm=%d/0 body=%d/%d spec=%d/%d@."
                  fam.i_name (all_ok ct) (all_ok wt) (all_ok bt) (all_ok st)
                  (reverified ct) fam.i_functions (reverified wt)
                  (reverified bt) fam.i_body_cone (reverified st)
                  fam.i_spec_cone;
              ok)
            rounds
        in
        (* verdict identity vs a from-scratch non-incremental run, on
           the edited sources (the cache-replayed case) *)
        let plain src =
          Out_channel.with_open_bin path (fun oc ->
              Out_channel.output_string oc src);
          Driver.check_file
            ~session:(Api.create_session ~incremental:false ())
            path
        in
        let verdicts_identical =
          verdict_sig body_t0 = verdict_sig (plain (fam.i_gen ~edit:fam.i_body_edit ()))
          && verdict_sig spec_t0 = verdict_sig (plain (fam.i_gen ~edit:fam.i_spec_edit ()))
          && verdict_sig cold_t0 = verdict_sig warm_t0
        in
        ignore spec_t0;
        if not (cone_exact && verdicts_identical) then ok_all := false;
        Fmt.pr
          "  %-13s %2d fns: cold %.4fs, warm %.4fs, edit-body %.4fs \
           (%.0f%% of cold, cone %d), edit-spec %.4fs (%.0f%% of cold, \
           cone %d)%s@."
          fam.i_name fam.i_functions cold_w warm_w body_w
          (100. *. body_ratio) fam.i_body_cone spec_w (100. *. spec_ratio)
          fam.i_spec_cone
          (if cone_exact && verdicts_identical then ""
           else "  [INVARIANT VIOLATION]");
        Obj
          [
            ("name", Str fam.i_name);
            ("functions", Int fam.i_functions);
            ("cold_wall_s", Float cold_w);
            ("warm_wall_s", Float warm_w);
            ("edit_body_wall_s", Float body_w);
            ("edit_spec_wall_s", Float spec_w);
            ("warm_reverified", Int (reverified warm_t0));
            ("edit_body_reverified", Int (reverified body_t0));
            ("edit_body_cone_expected", Int fam.i_body_cone);
            ("edit_spec_reverified", Int (reverified spec_t0));
            ("edit_spec_cone_expected", Int fam.i_spec_cone);
            ("edit_body_vs_cold", Float body_ratio);
            ("edit_spec_vs_cold", Float spec_ratio);
            ("cone_exact", Bool cone_exact);
            ("verdicts_identical", Bool verdicts_identical);
          ])
      families
  in
  let record =
    Obj
      [
        ("schema", Str "refinedc-bench/5");
        ("ocaml", Str Sys.ocaml_version);
        ("word_size", Int Sys.word_size);
        ("scale", Int scale);
        ("reps", Int reps);
        ("families", List fam_json);
        ("ok", Bool !ok_all);
      ]
  in
  Out_channel.with_open_bin out (fun oc ->
      Out_channel.output_string oc (Rc_util.Jsonout.to_string record);
      Out_channel.output_string oc "\n");
  Fmt.pr "@.Incremental perf record written to %s@." out;
  !ok_all

(* ------------------------------------------------------------------ *)
(* Trajectory (--trajectory): backfill the committed perf records        *)
(* ------------------------------------------------------------------ *)

(* [--trajectory [--runlog DIR]] normalizes the committed BENCH_pr*.json
   perf records — five schema generations, refinedc-bench/1 through /5 —
   into one apps/sec + warm-speedup trajectory, printed as a table and
   (with --runlog) appended to the persistent run ledger as
   kind:"backfill" records, so [refinedc stats] charts the repo's whole
   performance history alongside fresh check runs.  Backfill records
   never enter the stats regression gate (different workloads). *)

module J = Rc_util.Jsonout

(* One normalized trajectory point, extracted from a perf record. *)
type traj_point = {
  tp_source : string;  (** the record file, e.g. "BENCH_pr6.json" *)
  tp_schema : string;
  tp_wall_s : float option;  (** the sequential/cold pass wall-clock *)
  tp_rule_apps : int option;
  tp_apps_per_sec : float option;
  tp_warm_speedup : float option;
}

(* refinedc-bench/1,2,3 (BENCH_pr2/4/6): corpus runs with per-study
   rule_apps; throughput = Σ studies' rule_apps over the sequential
   pass's wall-clock, warm speedup from the precomputed ratio. *)
let traj_of_corpus_record ~source ~schema (v : J.t) : traj_point option =
  let runs = Option.value ~default:[] (Option.bind (J.member "runs" v) J.to_list) in
  let sequential =
    List.find_opt
      (fun r ->
        J.member "mode" r = Some (J.Str "sequential")
        && J.member "cache" r = Some (J.Bool false))
      runs
  in
  Option.map
    (fun run ->
      let wall = J.number_member "total_wall_s" run in
      let apps =
        Option.bind (J.member "studies" run) J.to_list
        |> Option.map
             (List.fold_left
                (fun acc s ->
                  acc
                  + (Option.value ~default:0
                       (Option.bind (J.member "rule_apps" s) J.to_int)))
                0)
      in
      {
        tp_source = source;
        tp_schema = schema;
        tp_wall_s = wall;
        tp_rule_apps = apps;
        tp_apps_per_sec =
          (match (apps, wall) with
          | Some a, Some w when w > 0. -> Some (float_of_int a /. w)
          | _ -> None);
        tp_warm_speedup =
          Option.bind (J.member "speedup" v)
            (J.number_member "warm_cache_vs_sequential");
      })
    sequential

(* refinedc-bench/4 (BENCH_pr7): the stress corpus measures apps/sec
   directly per config; the baseline sequential run is the comparable
   throughput point, and the memoized speedup stands in the speedup
   column (the record has no cache pass). *)
let traj_of_stress_record ~source ~schema (v : J.t) : traj_point option =
  let runs = Option.value ~default:[] (Option.bind (J.member "runs" v) J.to_list) in
  let baseline =
    List.find_opt
      (fun r ->
        J.member "config" r = Some (J.Str "baseline")
        && J.member "mode" r = Some (J.Str "sequential"))
      runs
  in
  Option.map
    (fun run ->
      {
        tp_source = source;
        tp_schema = schema;
        tp_wall_s = J.number_member "total_wall_s" run;
        tp_rule_apps = Option.bind (J.member "rule_apps" run) J.to_int;
        tp_apps_per_sec = J.number_member "apps_per_sec" run;
        tp_warm_speedup =
          Option.bind (J.member "speedup" v) (fun s ->
              Option.bind (J.member "sequential" s)
                (J.number_member "memo_hashcons_vs_baseline"));
      })
    baseline

(* refinedc-bench/5 (BENCH_pr8): per-family cold/warm walls, no
   rule-application counts — the trajectory point is the cold total and
   the median cold/warm ratio. *)
let traj_of_incr_record ~source ~schema (v : J.t) : traj_point option =
  let families =
    Option.value ~default:[] (Option.bind (J.member "families" v) J.to_list)
  in
  if families = [] then None
  else begin
    let cold_total =
      List.fold_left
        (fun acc f ->
          acc +. Option.value ~default:0. (J.number_member "cold_wall_s" f))
        0. families
    in
    let ratios =
      List.filter_map
        (fun f ->
          match
            (J.number_member "cold_wall_s" f, J.number_member "warm_wall_s" f)
          with
          | Some c, Some w when w > 0. -> Some (c /. w)
          | _ -> None)
        families
    in
    Some
      {
        tp_source = source;
        tp_schema = schema;
        tp_wall_s = Some cold_total;
        tp_rule_apps = None;
        tp_apps_per_sec = None;
        tp_warm_speedup = Rc_util.Runlog.median ratios;
      }
  end

let traj_of_file (path : string) : (traj_point, string) result =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error msg -> Error msg
  | contents -> (
      match J.parse contents with
      | Error msg -> Error ("unparseable: " ^ msg)
      | Ok v -> (
          let source = Filename.basename path in
          match Option.bind (J.member "schema" v) J.to_str with
          | None -> Error "no schema field"
          | Some schema -> (
              let point =
                match schema with
                | "refinedc-bench/1" | "refinedc-bench/2" | "refinedc-bench/3"
                  ->
                    traj_of_corpus_record ~source ~schema v
                | "refinedc-bench/4" -> traj_of_stress_record ~source ~schema v
                | "refinedc-bench/5" -> traj_of_incr_record ~source ~schema v
                | _ -> None
              in
              match point with
              | Some p -> Ok p
              | None -> Error ("unrecognized record shape for " ^ schema))))

let traj_to_runlog_record (p : traj_point) : J.t =
  let opt_f = function Some f -> J.Float f | None -> J.Null in
  J.Obj
    [
      ("schema", J.Str Rc_util.Runlog.schema_version);
      ("kind", J.Str "backfill");
      ("file", J.Str p.tp_source);
      ("bench_schema", J.Str p.tp_schema);
      ("ocaml", J.Str Sys.ocaml_version);
      ("wall_s", opt_f p.tp_wall_s);
      ( "rule_apps",
        match p.tp_rule_apps with Some n -> J.Int n | None -> J.Null );
      ("apps_per_sec", opt_f p.tp_apps_per_sec);
      ("warm_speedup", opt_f p.tp_warm_speedup);
    ]

let default_traj_sources =
  [
    "BENCH_pr2.json";
    "BENCH_pr4.json";
    "BENCH_pr6.json";
    "BENCH_pr7.json";
    "BENCH_pr8.json";
  ]

let trajectory ~(runlog_dir : string option) (sources : string list) : bool =
  let points, errors =
    List.fold_left
      (fun (ps, es) src ->
        if not (Sys.file_exists src) then (ps, (src, "not found") :: es)
        else
          match traj_of_file src with
          | Ok p -> (p :: ps, es)
          | Error msg -> (ps, (src, msg) :: es))
      ([], []) sources
  in
  let points = List.rev points and errors = List.rev errors in
  Fmt.pr "Performance trajectory (%d record%s):@." (List.length points)
    (if List.length points = 1 then "" else "s");
  Fmt.pr "  %-16s %-18s %10s %10s %10s %12s@." "record" "schema" "wall_s"
    "rule_apps" "apps/sec" "warm speedup";
  List.iter
    (fun p ->
      let f = function Some v -> Fmt.str "%.3g" v | None -> "-" in
      Fmt.pr "  %-16s %-18s %10s %10s %10s %12s@." p.tp_source p.tp_schema
        (f p.tp_wall_s)
        (match p.tp_rule_apps with Some n -> string_of_int n | None -> "-")
        (f p.tp_apps_per_sec) (f p.tp_warm_speedup))
    points;
  List.iter (fun (src, msg) -> Fmt.pr "  %s: skipped (%s)@." src msg) errors;
  (match runlog_dir with
  | None -> ()
  | Some dir ->
      let lg = Rc_util.Runlog.create dir in
      List.iter (fun p -> Rc_util.Runlog.append lg (traj_to_runlog_record p)) points;
      if Rc_util.Runlog.disabled lg then
        Fmt.pr "warning: could not append to the run ledger in %s@." dir
      else
        Fmt.pr "%d backfill record%s appended to %s@." (List.length points)
          (if List.length points = 1 then "" else "s")
          (Rc_util.Runlog.path lg));
  points <> []

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)
(* ------------------------------------------------------------------ *)

(** [opt_value args name default]: the value following [name]. *)
let opt_value args name default =
  match Rc_util.Xlist.index_of (( = ) name) args with
  | Some i when i + 1 < List.length args -> List.nth args (i + 1)
  | _ -> default

let () =
  let args = Array.to_list Sys.argv in
  if List.mem "--trajectory" args then begin
    let runlog_dir =
      match opt_value args "--runlog" "" with "" -> None | d -> Some d
    in
    let sources =
      match List.filter (fun a -> Filename.check_suffix a ".json") args with
      | [] -> default_traj_sources
      | files -> files
    in
    if not (trajectory ~runlog_dir sources) then begin
      Fmt.pr "@.NO PERF RECORDS FOUND@.";
      exit 1
    end
  end
  else if List.mem "--incr" args then begin
    let scale =
      match int_of_string_opt (opt_value args "--scale" "2") with
      | Some n when n > 0 -> n
      | _ -> 2
    in
    let out = opt_value args "--json-out" "BENCH_pr8.json" in
    Fmt.pr "Benchmarking incremental verification (perf record -> %s)@." out;
    if not (incr_record ~scale ~out ()) then begin
      Fmt.pr "@.INCREMENTAL BENCHMARK FAILED@.";
      exit 1
    end
  end
  else if List.mem "--stress" args then begin
    let scale =
      match int_of_string_opt (opt_value args "--scale" "2") with
      | Some n when n > 0 -> n
      | _ -> 2
    in
    let jobs =
      match int_of_string_opt (opt_value args "-j" "") with
      | Some n when n > 0 -> n
      | _ -> max 2 (Rc_util.Pool.default_jobs ())
    in
    let out = opt_value args "--json-out" "BENCH_pr7.json" in
    Fmt.pr "Benchmarking the stress corpus (perf record -> %s)@." out;
    if not (stress_record ~scale ~jobs ~out ()) then begin
      Fmt.pr "@.STRESS BENCHMARK FAILED@.";
      exit 1
    end
  end
  else if List.mem "--json" args then begin
    let jobs =
      match int_of_string_opt (opt_value args "-j" "") with
      | Some n when n > 0 -> n
      | _ -> max 2 (Rc_util.Pool.default_jobs ())
    in
    let cache_dir =
      opt_value args "--cache"
        (Filename.concat (Filename.get_temp_dir_name ()) "refinedc-bench-cache")
    in
    let out = opt_value args "--json-out" "BENCH_pr6.json" in
    Fmt.pr "Benchmarking the corpus (perf record -> %s)@." out;
    if not (json_record ~jobs ~cache_dir ~out ()) then begin
      Fmt.pr "@.SOME CASE STUDIES FAILED@.";
      exit 1
    end
  end
  else begin
    Fmt.pr "Reproducing Figure 7 (paper: RefinedC, PLDI 2021)@.";
    let rows = List.map check_study corpus in
    print_table rows;
    let all = List.mem "--all" args in
    if List.mem "--time" args || all || args = [ Sys.argv.(0) ] then
      time_studies rows;
    if List.mem "--ablations" args || all || args = [ Sys.argv.(0) ] then
      ablations rows;
    if List.for_all (fun r -> r.ok) rows then
      Fmt.pr "@.All %d case studies verified.@." (List.length rows)
    else begin
      Fmt.pr "@.SOME CASE STUDIES FAILED@.";
      exit 1
    end
  end

(** The stress-corpus generator: parameterized synthetic C programs that
    scale the proof-search load far beyond the ~25ms case-study corpus,
    so engine-speed work (hash-consed dispatch, subgoal memoization,
    profile-guided rule order) has something measurable to move.

    Every generator returns complete, annotated C source that the
    frontend accepts and the checker verifies; the benchmark harness and
    [test/test_memo.ml] both consume these, so each family doubles as a
    semantics fixture — any engine configuration must produce the same
    verdict on all of them.

    Families (mirroring the shapes the case studies exhibit in miniature):
    - {!diamond_chain}: k sequential if/else diamonds whose join blocks
      the goto-inlining engine re-checks once per incoming path — the
      proof-search cost is Θ(2^k) without memoization and Θ(k) with it;
    - {!call_chain}: an n-function call graph (each function calls the
      next), weighting the call/subsumption rules;
    - {!struct_nest}: a d-deep nest of refined structs with an accessor
      that walks to the innermost field, weighting the ownership rules;
    - {!wide_exprs}: straight-line functions of long arithmetic chains —
      wide rule pressure with no branching at all;
    - {!loop_farm}: f scaled copies of a loop-invariant function, the
      shape of the existing studies' inner loops repeated per file. *)

let buf_add = Buffer.add_string

(** The standard scalar spec header shared by the int->int families.
    [~taut:true] appends a tautological precondition — a spec-signature
    edit that cannot change any verdict (the incremental fixtures use it
    to dirty exactly one function's interface). *)
let int_fn_header ?(taut = false) b name =
  buf_add b "[[rc::parameters(\"n : int\")]]\n";
  buf_add b "[[rc::args(\"n @ int<int>\")]]\n";
  if taut then
    buf_add b "[[rc::requires(\"{0 <= n}\", \"{n <= 1000}\", \"{0 <= 0}\")]]\n"
  else buf_add b "[[rc::requires(\"{0 <= n}\", \"{n <= 1000}\")]]\n";
  buf_add b "[[rc::exists(\"r : int\")]]\n";
  buf_add b "[[rc::returns(\"r @ int<int>\")]]\n";
  buf_add b (Printf.sprintf "int %s(int n) {\n" name)

(** [k] sequential if/else diamonds.  Both arms of diamond [i] write the
    same constant, so every join block is reached with the same
    ownership context along both paths — exactly the situation where the
    engine's within-run memo table collapses the exponential re-check:
    2^k suffix solves without it, k + 1 with it. *)
let diamond_chain ~(k : int) : string =
  let b = Buffer.create (256 + (k * 96)) in
  buf_add b "// generated: diamond_chain k=";
  buf_add b (string_of_int k);
  buf_add b "\n";
  int_fn_header b "diamonds";
  buf_add b "  int x = 0;\n";
  for i = 0 to k - 1 do
    buf_add b
      (Printf.sprintf "  if (n > %d) {\n    x = %d;\n  } else {\n    x = %d;\n  }\n"
         i i i)
  done;
  buf_add b "  return x;\n}\n";
  Buffer.contents b

(** Single-function edits for the incremental-verification benchmarks
    and tests.  Every edit keeps the program verifying — the point is to
    move exactly one function's body digest ([`Body i]: a semantically
    transparent rewrite), one function's spec signature ([`Spec i]: an
    extra tautological [rc::requires]), or one loop invariant ([`Inv i])
    — so the expected dirty cone is known by construction. *)
type edit = [ `Body of int | `Spec of int | `Inv of int ]

let spec_edited edit i =
  match edit with Some (`Spec j) -> j = i | _ -> false

let body_edited edit i =
  match edit with Some (`Body j) -> j = i | _ -> false

let inv_edited edit i =
  match edit with Some (`Inv j) -> j = i | _ -> false

(** An [n]-function call chain: [f0] calls [f1] calls ... calls
    [f(n-1)].  Functions are emitted callee-first so every call sees its
    callee's specification.  [?edit]: [`Body i] rewrites [fi]'s body
    without touching its spec (expected dirty cone: [fi] alone — early
    cutoff); [`Spec i] adds a tautological precondition to [fi]
    (expected dirty cone: [fi] and its direct caller [f(i-1)]).
    [?weight] prepends that many if/else diamonds to every body, giving
    each function a realistic per-function proof-search cost (the
    incremental benchmarks use it so the frontend's whole-file parse
    does not drown out the verification being saved); 0 keeps the
    original pure-plumbing chain. *)
let call_chain ?edit ?(weight = 0) ~(n : int) () : string =
  let b = Buffer.create (256 + (n * (160 + (weight * 96)))) in
  buf_add b "// generated: call_chain n=";
  buf_add b (string_of_int n);
  buf_add b "\n";
  for i = n - 1 downto 0 do
    buf_add b "[[rc::parameters(\"n : int\")]]\n";
    buf_add b "[[rc::args(\"n @ int<int>\")]]\n";
    if spec_edited edit i then buf_add b "[[rc::requires(\"{0 <= 0}\")]]\n";
    buf_add b "[[rc::returns(\"n @ int<int>\")]]\n";
    let ballast = Buffer.create (64 + (weight * 96)) in
    if weight > 0 then begin
      buf_add ballast "  int x = 0;\n";
      for j = 0 to weight - 1 do
        buf_add ballast
          (Printf.sprintf
             "  if (n > %d) {\n    x = %d;\n  } else {\n    x = %d;\n  }\n" j j
             j)
      done
    end;
    let body =
      if i = n - 1 then
        if body_edited edit i then "  int m = n;\n  return m;\n"
        else "  return n;\n"
      else if body_edited edit i then
        Printf.sprintf "  int m = n;\n  return f%d(m);\n" (i + 1)
      else Printf.sprintf "  return f%d(n);\n" (i + 1)
    in
    buf_add b
      (Printf.sprintf "int f%d(int n) {\n%s%s}\n" i (Buffer.contents ballast)
         body)
  done;
  Buffer.contents b

(** [functions] independent copies of a [k]-diamond function (the
    {!diamond_chain} shape scaled out across a file): an edit-one-body
    fixture whose functions share no call edges, so any single edit's
    dirty cone is exactly the edited function. *)
let diamond_farm ?edit ~(functions : int) ~(k : int) () : string =
  let b = Buffer.create (256 + (functions * (256 + (k * 96)))) in
  buf_add b
    (Printf.sprintf "// generated: diamond_farm functions=%d k=%d\n" functions
       k);
  for fi = 0 to functions - 1 do
    int_fn_header ~taut:(spec_edited edit fi) b (Printf.sprintf "dia%d" fi);
    buf_add b "  int x = 0;\n";
    for i = 0 to k - 1 do
      buf_add b
        (Printf.sprintf
           "  if (n > %d) {\n    x = %d;\n  } else {\n    x = %d;\n  }\n" i i
           i)
    done;
    if body_edited edit fi then buf_add b "  int y = x;\n  return y;\n"
    else buf_add b "  return x;\n";
    buf_add b "}\n"
  done;
  Buffer.contents b

(** A [depth]-deep nest of singly-refined structs plus an accessor that
    dereferences all the way down: [lvl0] holds the int, [lvl(i+1)]
    holds an [lvl(i)], and [get] returns [p->inner...inner.v]. *)
let struct_nest ~(depth : int) : string =
  let b = Buffer.create (256 + (depth * 160)) in
  buf_add b "// generated: struct_nest depth=";
  buf_add b (string_of_int depth);
  buf_add b "\n";
  buf_add b
    "struct [[rc::refined_by(\"a: int\")]] lvl0 {\n\
    \  [[rc::field(\"a @ int<int>\")]] int v;\n\
     };\n";
  for i = 1 to depth do
    buf_add b
      (Printf.sprintf
         "struct [[rc::refined_by(\"a: int\")]] lvl%d {\n\
         \  [[rc::field(\"a @ lvl%d\")]] struct lvl%d inner;\n\
          };\n"
         i (i - 1) (i - 1))
  done;
  buf_add b "\n[[rc::parameters(\"p: loc\", \"a: int\")]]\n";
  buf_add b (Printf.sprintf "[[rc::args(\"p @ &own<a @ lvl%d>\")]]\n" depth);
  buf_add b "[[rc::returns(\"a @ int<int>\")]]\n";
  buf_add b (Printf.sprintf "[[rc::ensures(\"own p : a @ lvl%d\")]]\n" depth);
  buf_add b (Printf.sprintf "int get(struct lvl%d *p) {\n  return p" depth);
  (* only the first hop dereferences the pointer; the rest are field
     accesses on the embedded struct values *)
  for i = 1 to depth do
    buf_add b (if i = 1 then "->inner" else ".inner")
  done;
  buf_add b ".v;\n}\n";
  Buffer.contents b

(** [stmts] straight-line statements, each a [width]-term addition chain
    over the accumulated locals: maximal rule pressure per statement,
    zero branching, so dispatch cost (not search shape) dominates. *)
let wide_exprs ~(stmts : int) ~(width : int) : string =
  let b = Buffer.create (256 + (stmts * width * 8)) in
  buf_add b
    (Printf.sprintf "// generated: wide_exprs stmts=%d width=%d\n" stmts width);
  int_fn_header b "wide";
  buf_add b "  int x0 = n + 1;\n";
  for i = 1 to stmts do
    buf_add b (Printf.sprintf "  int x%d = x%d" i (i - 1));
    for j = 1 to width do
      buf_add b (Printf.sprintf " + x%d" ((i - 1 + j) mod i))
    done;
    buf_add b ";\n"
  done;
  buf_add b (Printf.sprintf "  return x%d;\n}\n" stmts);
  Buffer.contents b

(** [functions] renamed copies of a loop-invariant counting function —
    the inner-loop shape of the existing studies (binary search, queue
    drain) scaled out across a whole file, so per-function overheads and
    pool fan-out dominate. *)
let loop_farm ?edit ~(functions : int) () : string =
  let b = Buffer.create (256 + (functions * 320)) in
  buf_add b "// generated: loop_farm functions=";
  buf_add b (string_of_int functions);
  buf_add b "\n";
  for i = 0 to functions - 1 do
    int_fn_header ~taut:(spec_edited edit i) b (Printf.sprintf "count%d" i);
    buf_add b "  int i = 0;\n";
    buf_add b "  [[rc::exists(\"a : int\")]]\n";
    buf_add b "  [[rc::inv_vars(\"i: a @ int<int>\")]]\n";
    if inv_edited edit i then
      buf_add b "  [[rc::constraints(\"{0 <= a}\", \"{a <= n}\", \"{0 <= 0}\")]]\n"
    else buf_add b "  [[rc::constraints(\"{0 <= a}\", \"{a <= n}\")]]\n";
    buf_add b "  while (i < n) {\n    i = i + 1;\n  }\n";
    if body_edited edit i then buf_add b "  int r = i;\n  return r;\n}\n"
    else buf_add b "  return i;\n}\n"
  done;
  Buffer.contents b

(** The concurrency family: a [spinlock.c]-style lock pair plus
    [functions] specified critical sections ([crit<i>]: lock, write the
    protected counter, unlock) — all of which verify and lint race-clean
    under the lockset analysis.  [?racy] appends that many unspecified
    functions that write the shared counter with {e no} lock held, and
    [?hoisted] that many where the write is moved {e before} the
    acquire: both shapes are the seeded-race mutants the differential
    harness checks, and each must draw an RC-L030 from the [race] pass
    (they carry no spec, so [check] skips them and verdicts are
    unchanged). *)
let lock_farm ?(racy = 0) ?(hoisted = 0) ~(functions : int) () : string =
  let b = Buffer.create (1024 + ((functions + racy + hoisted) * 256)) in
  buf_add b
    (Printf.sprintf "// generated: lock_farm functions=%d racy=%d hoisted=%d\n"
       functions racy hoisted);
  buf_add b "struct lock { int locked; };\n\n";
  buf_add b
    "[[rc::parameters(\"k: loc\", \"c: loc\")]]\n\
     [[rc::args(\"k @ &own<c @ lock_t>\")]]\n\
     [[rc::ensures(\"own k : c @ lock_t\", \"own c : int<int>\")]]\n\
     void spin_lock(struct lock* l) {\n\
    \  int expected = 0;\n\
    \  [[rc::inv_vars(\"l: k @ &own<c @ lock_t>\")]]\n\
    \  while (1) {\n\
    \    expected = 0;\n\
    \    int ok = atomic_compare_exchange_strong(&l->locked, &expected, 1);\n\
    \    if (ok)\n\
    \      return;\n\
    \  }\n\
     }\n\n";
  buf_add b
    "[[rc::parameters(\"k: loc\", \"c: loc\")]]\n\
     [[rc::args(\"k @ &own<c @ lock_t>\")]]\n\
     [[rc::requires(\"own c : int<int>\")]]\n\
     [[rc::ensures(\"own k : c @ lock_t\")]]\n\
     void spin_unlock(struct lock* l) {\n\
    \  atomic_store(&l->locked, 0);\n\
     }\n\n";
  for i = 0 to functions - 1 do
    buf_add b
      (Printf.sprintf
         "[[rc::parameters(\"k: loc\", \"c: loc\")]]\n\
          [[rc::args(\"k @ &own<c @ lock_t>\", \"c @ &own<int<int>>\")]]\n\
          [[rc::ensures(\"own k : c @ lock_t\")]]\n\
          void crit%d(struct lock* l, int* counter) {\n\
         \  spin_lock(l);\n\
         \  *counter = %d;\n\
         \  spin_unlock(l);\n\
          }\n\n"
         i i)
  done;
  for i = 0 to racy - 1 do
    buf_add b
      (Printf.sprintf
         "void racy%d(struct lock* l, int* counter) {\n\
         \  *counter = %d;\n\
          }\n\n"
         i i)
  done;
  for i = 0 to hoisted - 1 do
    buf_add b
      (Printf.sprintf
         "void hoist%d(struct lock* l, int* counter) {\n\
         \  *counter = %d;\n\
         \  spin_lock(l);\n\
         \  spin_unlock(l);\n\
          }\n\n"
         i i)
  done;
  Buffer.contents b

(** One named stress program: [(name, c_source)]. *)
type program = { p_name : string; p_src : string }

(** The standard stress corpus at a given [scale] (1 = the CI smoke
    size, 2 = the BENCH_pr7 size).  Sizes are chosen so the diamond
    family's exponential blow-up stays around a second at scale 2 with
    memoization off — large enough to measure, small enough to run four
    configurations interleaved. *)
let stress_corpus ~(scale : int) : program list =
  let s = max 1 scale in
  [
    { p_name = "diamonds_small.c"; p_src = diamond_chain ~k:(4 * s) };
    { p_name = "diamonds_large.c"; p_src = diamond_chain ~k:(10 + (2 * s)) };
    { p_name = "call_chain.c"; p_src = call_chain ~n:(12 * s) () };
    { p_name = "struct_nest.c"; p_src = struct_nest ~depth:(8 * s) };
    (* width is capped at 3: the default side-condition solver is
       exponential in the addition-chain length, and past ~4 terms the
       solver — not engine dispatch — dominates the measurement *)
    { p_name = "wide_exprs.c"; p_src = wide_exprs ~stmts:(10 * s) ~width:3 };
    { p_name = "loop_farm.c"; p_src = loop_farm ~functions:(8 * s) () };
  ]

(** The diamond sizes for the speedup-curve section of the perf record:
    memo-off cost doubles per step, so the curve makes the asymptotic
    gap visible rather than a single point. *)
let curve_sizes ~(scale : int) : int list =
  if scale <= 1 then [ 4; 6; 8 ] else [ 6; 8; 10; 12 ]

(** Write a corpus to [dir] (created if missing); returns the file
    paths in corpus order. *)
let materialize ~(dir : string) (progs : program list) : string list =
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  List.map
    (fun p ->
      let path = Filename.concat dir p.p_name in
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc p.p_src);
      path)
    progs

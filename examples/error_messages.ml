(* The §2.1 error-message experience: introduce the paper's off-by-one
   specification bug (n < a instead of n ≤ a) and show the precise,
   located diagnostic that Lithium's syntax-directed search produces.

   Run with:  dune exec examples/error_messages.exe *)

let buggy_src = {|
typedef unsigned long size_t;

struct [[rc::refined_by("a: nat")]] mem_t {
  [[rc::field("a @ int<size_t>")]] size_t len;
  [[rc::field("&own<uninit<a>>")]] unsigned char* buffer;
};

[[rc::parameters("a: nat", "n: nat", "p: loc")]]
[[rc::args("p @ &own<a @ mem_t>", "n @ int<size_t>")]]
[[rc::returns("{n < a} @ optional<&own<uninit<n>>, null>")]]
[[rc::ensures("own p : (n <= a ? a - n : a) @ mem_t")]]
void* alloc(struct mem_t* d, size_t sz) {
  if (sz > d->len)
    return NULL;
  d->len -= sz;
  return d->buffer + d->len;
}
|}

let () =
  let session = Util.session () in
  Fmt.pr "Verifying alloc against the buggy specification (n < a):@.@.";
  let t =
    Rc_frontend.Driver.check_source ~session ~file:"mem_alloc_bug.c"
      buggy_src
  in
  match Rc_frontend.Driver.errors t with
  | [] -> Fmt.pr "unexpectedly verified?!@."
  | (fn, e) :: _ ->
      Fmt.pr "%s does not verify — as the paper explains, when n = a the@." fn;
      Fmt.pr "code returns a valid pointer while the spec expects NULL:@.@.";
      Fmt.pr "%s@." (Rc_lithium.Report.to_string e)

(* The §5 "Extensibility" claim, demonstrated: RefinedC "can be extended
   with user-defined types and typing rules … when new typing rules are
   added, Lithium's proof search automatically uses them".

   This example plays the expert of Figure 2: from *outside* the library
   it registers
     1. a new named type  [v @ even_t]  (an even integer),
     2. a new pure solver ("parity") for the divisibility side conditions
        the type generates, and
     3. a new simplification lemma,
   then builds a *session* carrying all three and verifies a C function
   against a specification using the new type — without touching a line
   of the engine or the standard rule library, and without mutating any
   global state: a second, stock session in the same process would not
   even see even_t.

   Run with:  dune exec examples/extend_refinedc.exe *)

open Rc_pure
open Rc_pure.Term
open Rc_refinedc.Rtype
module Int_type = Rc_caesium.Int_type

(* 1. The new type: an even int<int>, defined by unfolding into the
   existing grammar (a constrained integer).  Recursive or genuinely new
   semantic types would instead come with their own subsumption rules —
   passed to the session through exactly the same [~rules] hook. *)
let even_t : type_def =
  {
    td_name = "even_t";
    td_params = [ ("n", Sort.Int) ];
    td_layout = Some (Rc_caesium.Layout.Int Int_type.i32);
    td_unfold =
      (function
      | [ n ] ->
          TConstr (TInt (Int_type.i32, n), PEq (Mod (n, Num 2), Num 0))
      | _ -> invalid_arg "even_t arity");
  }

(* 2. A tiny decision procedure for the parity facts the type generates:
   (2k) mod 2 = 0, (a+b) mod 2 = 0 when both are even, and so on.  It is
   enabled per-function with rc::tactics("all: parity."). *)
let parity_solver : Registry.solver =
  let rec even (hyps : prop list) (t : term) : bool =
    match Simp.simp_term t with
    | Num k -> k mod 2 = 0
    | Mul (Num k, _) when k mod 2 = 0 -> true
    | Mul (_, Num k) when k mod 2 = 0 -> true
    | Add (x, y) | Sub (x, y) -> even hyps x && even hyps y
    | t ->
        List.exists
          (fun h ->
            match h with
            | PEq (Mod (u, Num 2), Num 0) -> equal_term u t
            | _ -> false)
          hyps
  in
  {
    Registry.name = "parity";
    run =
      (fun _reg ~hyps g ->
        match Simp.simp_prop g with
        | PEq (Mod (t, Num 2), Num 0) -> even hyps t
        | _ -> false);
  }

(* 3. The program: doubling anything is even, and adding two evens stays
   even.  The spec uses the new type exactly like a built-in. *)
let src = {|
[[rc::parameters("n: int")]]
[[rc::args("n @ int<int>")]]
[[rc::requires("{0 <= n}", "{n <= 1000}")]]
[[rc::returns("(2 * n) @ even_t")]]
[[rc::tactics("all: parity.")]]
int twice(int x) {
  return x + x;
}

[[rc::parameters("a: int", "b: int")]]
[[rc::args("a @ even_t", "b @ even_t")]]
[[rc::requires("{0 <= a}", "{a <= 1000}", "{0 <= b}", "{b <= 1000}")]]
[[rc::returns("(a + b) @ even_t")]]
[[rc::tactics("all: parity.")]]
int add_even(int x, int y) {
  return x + y;
}
|}

let () =
  let session =
    Rc_session.Refinedc_api.create_session ~case_studies:true
      ~type_defs:[ even_t ] ~solvers:[ parity_solver ] ()
  in
  Fmt.pr "Session carries: type even_t, solver \"parity\".@.";
  let t = Rc_frontend.Driver.check_source ~session ~file:"even.c" src in
  List.iter
    (fun (r : Rc_frontend.Driver.check_result) ->
      match r.outcome with
      | Ok res ->
          Fmt.pr "✔ %-9s verified (%a)@." r.name Rc_lithium.Stats.pp
            res.Rc_refinedc.Lang.E.stats;
          let side_manual =
            res.Rc_refinedc.Lang.E.stats.Rc_lithium.Stats.manual_detail
          in
          List.iter
            (fun (how, what) -> Fmt.pr "    %s discharged: %s@." how what)
            side_manual
      | Error e ->
          Fmt.pr "✘ %s failed:@.%s@." r.name (Rc_lithium.Report.to_string e);
          exit 1)
    t.results;
  Fmt.pr
    "@.The engine, the standard rule library and the frontend were not \
     modified:@.the new type unfolds through the existing subsumption rules \
     and the new@.solver plugs into the session's registry — the \
     extensibility story of paper par.5.@."

(* Quickstart: verify the paper's Figure 1 allocator through the public
   API, inspect the statistics, re-check the certificate, and run the
   verified code in the Caesium interpreter.

   Run with:  dune exec examples/quickstart.exe *)

module Driver = Rc_frontend.Driver
module Value = Rc_caesium.Value
module Int_type = Rc_caesium.Int_type

let () =
  (* 1. Parse, elaborate and verify every specified function. *)
  let session, t = Util.check "mem_alloc.c" in
  List.iter
    (fun (r : Driver.check_result) ->
      match r.outcome with
      | Ok res ->
          Fmt.pr "✔ %-12s verified: %a@." r.name Rc_lithium.Stats.pp
            res.Rc_refinedc.Lang.E.stats;
          (* 2. Independently re-check the emitted certificate. *)
          let rep = Rc_cert.Checker.check ~session res.Rc_refinedc.Lang.E.deriv in
          Fmt.pr "  %a@." Rc_cert.Checker.pp_report rep
      | Error e ->
          Fmt.pr "✘ %s failed:@.%s@." r.name (Rc_lithium.Report.to_string e))
    t.results;
  (* 3. Run the verified allocator on a concrete heap. *)
  Fmt.pr "@.Running alloc on a 64-byte pool:@.";
  let prog = t.elaborated.Rc_frontend.Elab.program in
  let m = Rc_caesium.Eval.create ~detect_races:false prog in
  let heap = m.Rc_caesium.Eval.heap in
  (* struct mem_t { size_t len; unsigned char *buffer; } *)
  let pool = Rc_caesium.Heap.alloc heap 16 in
  let buffer = Rc_caesium.Heap.alloc heap 64 in
  Rc_caesium.Heap.store heap pool (Value.of_int Int_type.u64 64);
  Rc_caesium.Heap.store heap (Rc_caesium.Loc.shift pool 8) (Value.of_loc buffer);
  let th =
    { Rc_caesium.Eval.tid = 0; frames = []; finished = false; result = None;
      clock = Rc_caesium.Eval.Vc.create 1 }
  in
  m.Rc_caesium.Eval.threads <- [ th ];
  let call sz =
    Rc_caesium.Eval.push_call m th "alloc"
      [ Value.of_loc pool; Value.of_int Int_type.u64 sz ]
      None;
    let rec go () =
      match Rc_caesium.Eval.step m th with
      | () -> go ()
      | exception Rc_caesium.Eval.Thread_done -> th.result
    in
    th.finished <- false;
    let r = go () in
    Fmt.pr "  alloc(pool, %2d) = %a@." sz
      Fmt.(option ~none:(any "-") Rc_caesium.Value.pp)
      r
  in
  call 16;
  call 32;
  call 32 (* out of memory: returns NULL *)

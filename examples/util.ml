(** Shared helpers for the runnable examples. *)

let case_dir () =
  List.find Sys.file_exists
    [
      "case_studies"; "../case_studies"; "../../case_studies";
      "../../../case_studies";
    ]

let case_file name = Filename.concat (case_dir ()) name

(** A fresh session carrying the case-study expert library. *)
let session () = Rc_session.Refinedc_api.create_session ~case_studies:true ()

(** Check one case study under a fresh case-study session; returns the
    session alongside the results (the certificate checker needs it). *)
let check name =
  let s = session () in
  (s, Rc_frontend.Driver.check_file ~session:s (case_file name))

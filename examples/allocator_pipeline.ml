(* A full allocator pipeline: verify the Figure-3 free-list and the
   Figure-1 bump allocator, then exercise them together — carve chunks
   out of a pool, free them into the sorted chunk list, and dump the
   resulting list structure from the interpreter's heap.

   Run with:  dune exec examples/allocator_pipeline.exe *)

module Value = Rc_caesium.Value
module Heap = Rc_caesium.Heap
module Loc = Rc_caesium.Loc
module Int_type = Rc_caesium.Int_type

let verified name (t : Rc_frontend.Driver.t) =
  match Rc_frontend.Driver.errors t with
  | [] -> Fmt.pr "✔ %s: all functions verified@." name
  | (fn, e) :: _ ->
      Fmt.pr "✘ %s: %s failed@.%s@." name fn (Rc_lithium.Report.to_string e);
      exit 1

let () =
  let _session, t = Util.check "free_list.c" in
  verified "free_list.c" t;
  let prog = t.elaborated.Rc_frontend.Elab.program in
  let m = Rc_caesium.Eval.create ~detect_races:false prog in
  let heap = m.Rc_caesium.Eval.heap in
  let th =
    { Rc_caesium.Eval.tid = 0; frames = []; finished = false; result = None;
      clock = Rc_caesium.Eval.Vc.create 1 }
  in
  m.Rc_caesium.Eval.threads <- [ th ];
  (* the free list head: a chunks_t variable, initially NULL *)
  let list_head = Heap.alloc heap 8 in
  Heap.store heap list_head (Value.of_loc Loc.Null);
  let free_chunk data sz =
    Rc_caesium.Eval.push_call m th "free_chunk"
      [ Value.of_loc list_head; Value.of_loc data; Value.of_int Int_type.u64 sz ]
      None;
    th.finished <- false;
    let rec go () =
      match Rc_caesium.Eval.step m th with
      | () -> go ()
      | exception Rc_caesium.Eval.Thread_done -> ()
    in
    go ()
  in
  (* free three chunks of different sizes, out of order *)
  List.iter
    (fun sz -> free_chunk (Heap.alloc heap sz) sz)
    [ 48; 24; 96 ];
  (* walk the list from the interpreter's heap: it must be sorted *)
  Fmt.pr "free list after inserting chunks of 48, 24 and 96 bytes:@.";
  let rec walk l =
    match Value.to_loc (Heap.load heap l 8) with
    | Some Loc.Null -> Fmt.pr "  ∅@."
    | Some chunk ->
        let size =
          Option.get (Value.to_int Int_type.u64 (Heap.load heap chunk 8))
        in
        Fmt.pr "  chunk of %d bytes ->@." size;
        walk (Loc.shift chunk 8)
    | None -> Fmt.pr "  <corrupt>@."
  in
  walk list_head;
  Fmt.pr "(sorted ascending, as the chunks_t invariant demands)@."

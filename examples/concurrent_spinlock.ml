(* Fine-grained concurrency: verify the spinlock case study, then run two
   threads hammering the lock-protected counter under a randomized
   scheduler with the vector-clock race detector enabled — and contrast
   with an unprotected version, where the detector reports the data race
   that Caesium (following RustBelt) treats as undefined behaviour.

   Run with:  dune exec examples/concurrent_spinlock.exe *)

module Value = Rc_caesium.Value
module Int_type = Rc_caesium.Int_type

let lock_src = {|
struct lock { int locked; };

[[rc::parameters("k: loc", "c: loc")]]
[[rc::args("k @ &own<c @ lock_t>")]]
[[rc::ensures("own k : c @ lock_t", "own c : int<int>")]]
void spin_lock(struct lock* l) {
  int expected = 0;
  [[rc::inv_vars("l: k @ &own<c @ lock_t>")]]
  while (1) {
    expected = 0;
    int ok = atomic_compare_exchange_strong(&l->locked, &expected, 1);
    if (ok)
      return;
  }
}

[[rc::parameters("k: loc", "c: loc")]]
[[rc::args("k @ &own<c @ lock_t>")]]
[[rc::requires("own c : int<int>")]]
[[rc::ensures("own k : c @ lock_t")]]
void spin_unlock(struct lock* l) {
  atomic_store(&l->locked, 0);
}

[[rc::parameters("k: loc", "c: loc")]]
[[rc::args("k @ &own<c @ lock_t>", "c @ &own<int<int>>")]]
[[rc::ensures("own k : c @ lock_t")]]
void locked_bump(struct lock* l, int* counter) {
  spin_lock(l);
  if (*counter < 1000000) {
    *counter = *counter + 1;
  }
  spin_unlock(l);
}

// the racy variant: no lock — this one carries no specification and is
// only used to demonstrate the dynamic race detector
void racy_bump(struct lock* l, int* counter) {
  if (*counter < 1000000) {
    *counter = *counter + 1;
  }
}
|}

let () =
  let session = Util.session () in
  let t =
    Rc_frontend.Driver.check_source ~session ~file:"spinlock_demo.c" lock_src
  in
  (match Rc_frontend.Driver.errors t with
  | [] -> Fmt.pr "✔ spinlock, unlock and the critical section verified@."
  | (fn, e) :: _ ->
      Fmt.pr "✘ %s failed:@.%s@." fn (Rc_lithium.Report.to_string e);
      exit 1);
  let prog = t.elaborated.Rc_frontend.Elab.program in
  (* run two threads under seeded random schedulers, watching for the
     vector-clock monitor to flag a conflicting unsynchronized access *)
  let race_hunt which seeds =
    let found = ref None in
    List.iter
      (fun seed ->
        let m = Rc_caesium.Eval.create ~detect_races:true prog in
        let heap = m.Rc_caesium.Eval.heap in
        let lock = Rc_caesium.Heap.alloc heap 4 in
        let counter = Rc_caesium.Heap.alloc heap 4 in
        Rc_caesium.Heap.store heap lock (Value.of_int Int_type.i32 0);
        Rc_caesium.Heap.store heap counter (Value.of_int Int_type.i32 0);
        let mk tid =
          let th =
            { Rc_caesium.Eval.tid; frames = []; finished = false;
              result = None; clock = Rc_caesium.Eval.Vc.create 2 }
          in
          th.clock.(tid) <- 1;
          th
        in
        let t0 = mk 0 and t1 = mk 1 in
        m.Rc_caesium.Eval.threads <- [ t0; t1 ];
        let args = [ Value.of_loc lock; Value.of_loc counter ] in
        (try
           Rc_caesium.Eval.push_call m t0 which args None;
           Rc_caesium.Eval.push_call m t1 which args None;
           let rng = Random.State.make [| seed |] in
           let rec loop fuel =
             if fuel = 0 then ()
             else
               let runnable =
                 List.filter
                   (fun th -> not th.Rc_caesium.Eval.finished)
                   m.Rc_caesium.Eval.threads
               in
               match runnable with
               | [] -> ()
               | ths -> (
                   let th = List.nth ths (Random.State.int rng (List.length ths)) in
                   match Rc_caesium.Eval.step m th with
                   | () -> loop (fuel - 1)
                   | exception Rc_caesium.Eval.Thread_done -> loop (fuel - 1))
           in
           loop 100_000;
           (* check the counter *)
           match Value.to_int Int_type.i32 (Rc_caesium.Heap.load heap counter 4) with
           | Some 2 -> ()
           | Some n -> Fmt.pr "  (seed %d: counter = %d)@." seed n
           | None -> ()
         with Rc_caesium.Ub.Undef u ->
           if !found = None then found := Some (seed, Rc_caesium.Ub.to_string u)))
      seeds;
    !found
  in
  let seeds = List.init 12 (fun i -> i + 1) in
  Fmt.pr "@.Running two threads of the verified critical section:@.";
  (match race_hunt "locked_bump" seeds with
  | None -> Fmt.pr "  no data race in %d randomized schedules ✔@." (List.length seeds)
  | Some (seed, u) -> Fmt.pr "  UNEXPECTED UB (seed %d): %s@." seed u);
  Fmt.pr "Running two threads of the UNVERIFIED racy version:@.";
  match race_hunt "racy_bump" seeds with
  | Some (seed, u) -> Fmt.pr "  detected (seed %d): %s ✔@." seed u
  | None -> Fmt.pr "  race not observed (try more seeds)@."

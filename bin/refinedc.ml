(** The RefinedC command-line toolchain (Figure 2, end to end):

    - [refinedc check FILE]   — verify every specified function
    - [refinedc lint FILE]    — run the static-analysis passes only
    - [refinedc run FILE FN]  — execute a function in the Caesium
                                interpreter (integer arguments)
    - [refinedc cfg FILE]     — dump the elaborated control-flow graphs

    [check] honours per-function resource budgets ([--fuel], [--timeout],
    [--max-depth]) and a whole-run deadline ([--deadline]), and never
    aborts the whole file on a single function: checker crashes and
    budget exhaustion become structured per-function diagnostics, and
    worker crashes are absorbed by the supervised pool ([-j N] spawns
    the pool once per invocation).  Exit codes are stable: 0 =
    everything verified, 1 = at least one verification failure, 2 = at
    least one checker fault or exhausted budget (including a hit
    [--deadline]), 130 = interrupted — SIGINT/SIGTERM stop the run
    cooperatively and still flush a valid partial report. *)

open Cmdliner
module Driver = Rc_frontend.Driver
module Api = Rc_session.Refinedc_api

(* Cooperative interruption: the handlers only set a flag (in [bin],
   not [lib] — sessions stay global-free); the driver polls it between
   functions and flushes a partial report, so Ctrl-C loses nothing that
   already completed. *)
let install_interrupt_handlers (flag : bool Atomic.t) : unit =
  let h = Sys.Signal_handle (fun _ -> Atomic.set flag true) in
  List.iter
    (fun s ->
      try Sys.set_signal s h with Invalid_argument _ | Sys_error _ -> ())
    [ Sys.sigint; Sys.sigterm ]

let check_cmd =
  let file = Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE") in
  let deriv =
    Arg.(value & flag & info [ "deriv" ] ~doc:"Print the derivation trees.")
  in
  let stats =
    Arg.(value & flag & info [ "stats" ] ~doc:"Print per-function statistics.")
  in
  let cert =
    Arg.(
      value & flag
      & info [ "cert" ]
          ~doc:"Re-check the emitted certificates with the independent checker.")
  in
  let semtest =
    Arg.(
      value & flag
      & info [ "semtest" ]
          ~doc:
            "Run the semantic-soundness harness: execute each verified \
             function on sampled well-typed inputs and require UB-freedom.")
  in
  let fuel =
    Arg.(
      value
      & opt (some int) None
      & info [ "fuel" ] ~docv:"N"
          ~doc:"Per-function step budget for proof search.")
  in
  let timeout =
    Arg.(
      value
      & opt (some float) None
      & info [ "timeout" ] ~docv:"SECS"
          ~doc:
            "Per-function wall-clock budget in seconds (monotonic clock).")
  in
  let max_depth =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-depth" ] ~docv:"N"
          ~doc:"Per-function goal recursion depth limit.")
  in
  let fail_fast =
    Arg.(
      value
      & vflag false
          [
            ( true,
              info [ "fail-fast" ]
                ~doc:"Stop at the first failing function." );
            ( false,
              info [ "keep-going" ]
                ~doc:
                  "Check every function regardless of failures (default)."
            );
          ])
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Emit machine-readable JSON diagnostics on stdout instead of \
             the human-readable report.")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Check up to $(docv) functions in parallel (OCaml 5 domains; \
             on OCaml 4.x the checks run sequentially).  $(b,-j 0) uses \
             the runtime's recommended worker count.  Results, statistics \
             and exit codes are identical to $(b,-j 1).")
  in
  let cache =
    Arg.(
      value
      & opt (some string) None
      & info [ "cache" ] ~docv:"DIR"
          ~doc:
            "Replay verdicts of unchanged functions from the verification \
             cache in $(docv) (created if missing) instead of re-proving \
             them.  Ignored under $(b,--cert), which must re-check real \
             derivations.")
  in
  let no_incremental =
    Arg.(
      value & flag
      & info [ "no-incremental" ]
          ~doc:
            "Disable dependency-cone incremental verification: key the \
             cache on the whole file's spec digest (any spec edit \
             re-proves every function) and dispatch in source order \
             instead of cost-model order.  Verdicts are identical either \
             way.")
  in
  let explain_cache =
    Arg.(
      value & flag
      & info [ "explain-cache" ]
          ~doc:
            "After checking, report why each function was re-proved or \
             replayed (hit / new / changed:body / changed:spec / \
             changed:callee:f / evicted / collision) and the dispatch \
             order chosen for the dirty set.  Goes to stderr under \
             $(b,--json).  Requires $(b,--cache).")
  in
  let cache_stats =
    Arg.(
      value & flag
      & info [ "cache-stats" ]
          ~doc:
            "After checking, report the cache store's health: entry and \
             manifest counts, total bytes, corrupt entries skipped this \
             run, entries pruned by the size cap.  Goes to stderr under \
             $(b,--json).  Requires $(b,--cache).")
  in
  let cache_max_mb =
    Arg.(
      value
      & opt (some int) None
      & info [ "cache-max-mb" ] ~docv:"MB"
          ~doc:
            "Cap the verification cache at $(docv) megabytes: on open, \
             oldest entries are pruned until the store fits.  Requires \
             $(b,--cache).")
  in
  let memo =
    Arg.(
      value & flag
      & info [ "memo" ]
          ~doc:
            "Memoize repeated subgoals within each function's proof \
             search: revisits of the same control-flow join replay the \
             recorded sub-derivation instead of re-proving it.  Verdicts \
             and statistics are identical to an unmemoized run.  Ignored \
             under $(b,--cert), which must re-check real derivations.")
  in
  let pgo =
    Arg.(
      value
      & opt (some string) None
      & info [ "pgo" ] ~docv:"DIR"
          ~doc:
            "Profile-guided dispatch: load accumulated rule-hit counts \
             from the profile store in $(docv) (created if missing) to \
             order equal-priority typing rules by measured hit rate, and \
             merge this run's counts back in afterwards.  Semantics are \
             unchanged; the reordered rule index is fingerprinted into \
             the verification-cache key.")
  in
  let default_only =
    Arg.(
      value & flag
      & info [ "default-only" ]
          ~doc:
            "Ablation: discharge side conditions with the default solver \
             only (no named solvers, no registered lemmas).")
  in
  let no_goal_simp =
    Arg.(
      value & flag
      & info [ "no-goal-simp" ]
          ~doc:"Ablation: disable goal simplification before solving.")
  in
  let trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"OUT.json"
          ~doc:
            "Write a Chrome trace_event JSON trace of the whole check \
             (phases, per-function checks, rule applications, solver \
             calls, evar instantiations, cache and scheduling events) to \
             $(docv).  Load it in Perfetto (ui.perfetto.dev) or \
             chrome://tracing.")
  in
  let profile =
    Arg.(
      value & flag
      & info [ "profile" ]
          ~doc:
            "Print a profiling summary after checking: per-phase timings, \
             the hottest typing rules by self-time, the solver time \
             breakdown and the hottest functions.  Goes to stderr under \
             $(b,--json).")
  in
  let no_lint =
    Arg.(
      value & flag
      & info [ "no-lint" ]
          ~doc:"Skip the static-analysis (lint) pre-pass before checking.")
  in
  let lint_werror =
    Arg.(
      value & flag
      & info [ "lint-werror" ]
          ~doc:
            "Treat lint warnings as errors: any error- or warning-severity \
             diagnostic makes the run exit non-zero even if every function \
             verifies.")
  in
  let deadline =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline" ] ~docv:"SECS"
          ~doc:
            "Whole-run wall-clock budget in seconds (monotonic clock).  \
             When it expires no further function is started: completed \
             verdicts are reported, the rest are listed as skipped, and \
             the run exits 2 (budget exhaustion at the run level).")
  in
  let retries =
    Arg.(
      value & opt int 0
      & info [ "retries" ] ~docv:"N"
          ~doc:
            "Re-attempt a function up to $(docv) times when its check \
             faulted transiently (an injected chaos fault or other \
             environment-level failure).  Deterministic verification \
             failures are never retried.  Default 0.")
  in
  let fault_seed =
    Arg.(
      value
      & opt (some int) None
      & info [ "fault-seed" ] ~docv:"SEED"
          ~doc:
            "Arm a deterministic fault-injection campaign with $(docv) \
             (chaos testing).  Instrumented sites across the pipeline — \
             solver calls, pool dispatch, cache read/write, file I/O — \
             then fail with probability $(b,--fault-rate).")
  in
  let fault_rate =
    Arg.(
      value & opt float 0.01
      & info [ "fault-rate" ] ~docv:"P"
          ~doc:"Injection probability per instrumented site (default 0.01).")
  in
  let fault_sites =
    Arg.(
      value
      & opt (some string) None
      & info [ "fault-sites" ] ~docv:"S1,S2"
          ~doc:
            "Restrict injection to the named comma-separated sites (e.g. \
             $(b,pool.dispatch,cache.read,cache.write,io.read,solver)); \
             default: every site.")
  in
  let fault_max =
    Arg.(
      value & opt int (-1)
      & info [ "fault-max" ] ~docv:"N"
          ~doc:"Stop injecting after $(docv) faults; negative = no cap.")
  in
  let explain_failure =
    Arg.(
      value & flag
      & info [ "explain-failure" ]
          ~doc:
            "Attach proof-failure forensics to every failing function: the \
             goal stack from the function's root goal to the stuck goal, \
             the stuck goal's candidate typing rules with per-rule \
             rejection reasons, the existential-variable state and the \
             trailing rule applications.  Printed after each failure in \
             the human report; under $(b,--json) a structured \
             $(b,forensics) block joins each failure diagnostic.  \
             Deterministic: the forensic carries no wall-clock data and is \
             byte-identical across $(b,-j N).")
  in
  let profile_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "profile-out" ] ~docv:"FILE"
          ~doc:
            "Write the $(b,--profile) summary as JSON to $(docv) \
             (per-phase timings, hottest rules, solver breakdown, hottest \
             functions, counters).  Implies metrics collection; does not \
             imply the human $(b,--profile) table.")
  in
  let runlog =
    Arg.(
      value
      & opt ~vopt:(Some "") (some string) None
      & info [ "runlog" ] ~docv:"DIR"
          ~doc:
            "Append one record for this run (wall-clock, rule \
             applications, verdict counts, cache/memo/solver counters, \
             per-function latency percentiles, toolchain fingerprint) to \
             the persistent run ledger $(b,runs.jsonl) in $(docv).  With \
             no $(docv), the ledger lives in the $(b,--cache) directory.  \
             Query it with $(b,refinedc stats).")
  in
  let run file deriv stats cert semtest fuel timeout max_depth fail_fast json
      jobs cache no_incremental explain_cache cache_stats cache_max_mb memo
      pgo default_only no_goal_simp trace profile no_lint lint_werror deadline
      retries fault_seed fault_rate fault_sites fault_max explain_failure
      profile_out runlog =
    let budget = { Rc_util.Budget.fuel; timeout; max_depth } in
    (* the cache-family flags share --cache's fate under --cert (and are
       inert without --cache): warn once each, with the same phrasing
       --memo uses, so no combination is silently ignored *)
    let cache_flag_on what on =
      if not on then false
      else if cert then begin
        Fmt.epr
          "warning: %s is ignored under --cert (certificates must be \
           re-derived)@."
          what;
        false
      end
      else if cache = None then begin
        Fmt.epr "warning: %s has no effect without --cache@." what;
        false
      end
      else true
    in
    let explain_cache = cache_flag_on "--explain-cache" explain_cache in
    let cache_stats = cache_flag_on "--cache-stats" cache_stats in
    let cache_max_mb =
      if cache_flag_on "--cache-max-mb" (cache_max_mb <> None) then
        cache_max_mb
      else None
    in
    let memo =
      if memo && cert then begin
        Fmt.epr
          "warning: --memo is ignored under --cert (replayed derivations \
           share side-condition contexts the certificate checker must not \
           trust)@.";
        false
      end
      else memo
    in
    let profstore =
      match pgo with
      | None -> None
      | Some dir ->
          let ps = Rc_util.Profstore.create dir in
          if Rc_util.Profstore.disabled ps then begin
            Fmt.epr
              "warning: cannot open profile store %s; running unprofiled@."
              dir;
            None
          end
          else Some ps
    in
    let rule_profile =
      match profstore with None -> [] | Some ps -> Rc_util.Profstore.load ps
    in
    let obs =
      {
        Rc_util.Obs.c_trace = trace <> None;
        (* --json reports always carry the metrics block when any
           observability was requested; --profile/--profile-out need only
           metrics *)
        c_metrics = profile || profile_out <> None || trace <> None || json;
      }
    in
    let fault =
      match fault_seed with
      | None -> None
      | Some seed ->
          let sites =
            Option.map (String.split_on_char ',') fault_sites
          in
          Some
            (Rc_util.Faultsim.create ~rate:fault_rate ?sites
               ~max_faults:fault_max seed)
    in
    let interrupted = Atomic.make false in
    install_interrupt_handlers interrupted;
    let jobs = if jobs <= 0 then Rc_util.Pool.default_jobs () else jobs in
    (* the persistent supervised pool: spawned once per invocation, owned
       here, threaded to the driver through the session.  [-j] is
       clamped to the core count — oversubscribed worker domains only
       add scheduling and GC-sync overhead, and on a single-core host
       the fastest configuration is plain sequential execution (no pool
       at all). *)
    let jobs = min jobs (Rc_util.Supervisor.recommended_jobs ()) in
    let pool =
      if jobs > 1 && Rc_util.Supervisor.parallelism_available then
        Some (Rc_util.Supervisor.create ~jobs ())
      else None
    in
    let session =
      Api.create_session ~case_studies:true ~default_only ~no_goal_simp
        ~budget ~obs
        ~lint:
          {
            Rc_refinedc.Session.l_enabled = not no_lint;
            l_passes = None;
            l_werror = lint_werror;
          }
        ?fault ?deadline ~retries ?pool
        ~cancel:(fun () -> Atomic.get interrupted)
        ~memo ~incremental:(not no_incremental) ~forensics:explain_failure
        ~profile:rule_profile ()
    in
    let session =
      if explain_cache then
        Rc_refinedc.Session.with_inc session
          { session.Rc_refinedc.Session.inc with Rc_refinedc.Session.in_explain = true }
      else session
    in
    (* resolve the ledger directory before [cache] is shadowed by the
       store handle: a bare --runlog rides in the --cache directory *)
    let runlog_dir =
      match runlog with
      | None -> None
      | Some "" -> (
          match cache with
          | Some dir -> Some dir
          | None ->
              Fmt.epr
                "warning: --runlog without a directory requires --cache; \
                 no ledger written@.";
              None)
      | Some dir -> Some dir
    in
    let cache =
      match cache with
      | Some _ when cert ->
          Fmt.epr
            "warning: --cache is ignored under --cert (certificates must \
             be re-derived)@.";
          None
      | Some dir -> (
          (* an uncreatable cache directory degrades to an uncached run,
             never an abort *)
          match
            Rc_util.Vercache.create
              ?max_bytes:(Option.map (fun mb -> mb * 1024 * 1024) cache_max_mb)
              dir
          with
          | vc -> Some vc
          | exception Sys_error msg ->
              Fmt.epr
                "warning: cannot open verification cache %s (%s); running \
                 uncached@."
                dir msg;
              None)
      | None -> None
    in
    Fun.protect ~finally:(fun () ->
        Option.iter Rc_util.Supervisor.shutdown pool)
    @@ fun () ->
    let run_watch = Rc_util.Budget.stopwatch () in
    match Driver.check_file ~session ~fail_fast ~jobs ?cache file with
    | exception Sys_error msg ->
        if json then
          Fmt.pr "%s@."
            (Rc_util.Jsonout.to_string
               (Rc_util.Jsonout.Obj
                  [
                    ("file", Rc_util.Jsonout.Str file);
                    ("ok", Rc_util.Jsonout.Bool false);
                    ("exit_code", Rc_util.Jsonout.Int 1);
                    ("io_error", Rc_util.Jsonout.Str msg);
                  ]))
        else Fmt.epr "%s@." msg;
        1
    | exception Driver.Frontend_error msg ->
        if json then
          Fmt.pr "%s@."
            (Rc_util.Jsonout.to_string
               (Rc_util.Jsonout.Obj
                  [
                    ("file", Rc_util.Jsonout.Str file);
                    ("ok", Rc_util.Jsonout.Bool false);
                    ("exit_code", Rc_util.Jsonout.Int 1);
                    ("frontend_error", Rc_util.Jsonout.Str msg);
                  ]))
        else Fmt.epr "%s@." msg;
        1
    | t ->
        let failed = ref 0 in
        let say fmt =
          if json then Format.ikfprintf ignore Fmt.stdout fmt else Fmt.pr fmt
        in
        List.iter
          (fun (r : Driver.check_result) ->
            match r.outcome with
            | Ok res ->
                say "%s: verified (%a)@." r.name Rc_lithium.Stats.pp
                  res.Rc_refinedc.Lang.E.stats;
                if deriv && not json then
                  Fmt.pr "%a@." (Rc_lithium.Deriv.pp ~depth:0)
                    res.Rc_refinedc.Lang.E.deriv;
                if stats then begin
                  let s = res.Rc_refinedc.Lang.E.stats in
                  say "  distinct rules: %d, applications: %d@."
                    (Rc_lithium.Stats.distinct_rules s)
                    s.Rc_lithium.Stats.rule_apps;
                  say "  evars auto-instantiated: %d@."
                    s.Rc_lithium.Stats.evar_insts;
                  say "  side conditions auto/manual: %d/%d@."
                    s.Rc_lithium.Stats.side_auto s.Rc_lithium.Stats.side_manual
                end;
                if cert then begin
                  let rep =
                    Rc_cert.Checker.check ~obs:t.Driver.obs ~session
                      res.Rc_refinedc.Lang.E.deriv
                  in
                  say "  %a@." Rc_cert.Checker.pp_report rep;
                  if not (Rc_cert.Checker.ok rep) then incr failed
                end;
                if semtest then begin
                  let spec =
                    List.find
                      (fun (f : Rc_refinedc.Typecheck.fn_to_check) ->
                        f.spec.Rc_refinedc.Rtype.fs_name = r.name)
                      t.elaborated.Rc_frontend.Elab.to_check
                  in
                  let impls =
                    List.map
                      (fun (f : Rc_refinedc.Typecheck.fn_to_check) ->
                        (f.spec.Rc_refinedc.Rtype.fs_name, f.spec))
                      t.elaborated.Rc_frontend.Elab.to_check
                  in
                  match
                    Rc_sem.Semtest.check_fn ~impls ~session
                      t.elaborated.Rc_frontend.Elab.program spec.spec
                  with
                  | Rc_sem.Semtest.Passed n ->
                      say "  semtest: %d executions, no UB@." n
                  | Rc_sem.Semtest.Skipped why ->
                      say "  semtest: skipped (%s)@." why
                  | Rc_sem.Semtest.Ub_found msg ->
                      say "  semtest: UNDEFINED BEHAVIOUR: %s@." msg;
                      incr failed
                end
            | Error e ->
                let what =
                  if Rc_lithium.Report.is_fault e then "CHECKER FAULT"
                  else "FAILED"
                in
                say "%s: %s@.%s@." r.name what
                  (Rc_lithium.Report.to_string e);
                (if explain_failure then
                   match e.Rc_lithium.Report.forensics with
                   | Some fx ->
                       say "%a@." Rc_lithium.Report.pp_forensics fx
                   | None -> ());
                incr failed)
          t.results;
        let skip_why =
          match t.Driver.stop with
          | Driver.Deadline -> "deadline"
          | Driver.Interrupted -> "interrupted"
          | Driver.Completed -> "fail-fast"
        in
        List.iter
          (fun fn -> say "%s: skipped (%s)@." fn skip_why)
          t.Driver.skipped;
        (match t.Driver.cache_stats with
        | Some (hits, misses) ->
            say "cache: %d hit%s, %d miss%s@." hits
              (if hits = 1 then "" else "s")
              misses
              (if misses = 1 then "" else "es")
        | None -> ());
        (* the --explain-cache / --cache-stats reports ride on stderr
           under --json so stdout stays machine-readable *)
        let side fmt = if json then Fmt.epr fmt else Fmt.pr fmt in
        if explain_cache then begin
          (match t.Driver.schedule with
          | [] -> side "cache plan: nothing dirty@."
          | sched -> side "cache plan: re-proving %s@."
                       (String.concat ", " sched));
          List.iter
            (fun (r : Driver.check_result) ->
              side "  %s: %s@." r.name
                (Option.value ~default:"no cache" r.Driver.why))
            t.Driver.results
        end;
        (if cache_stats then
           match cache with
           | Some vc ->
               let s = Rc_util.Vercache.stats vc in
               side
                 "cache store: %d entries, %d manifests, %d bytes, %d \
                  corrupt skip%s, %d pruned@."
                 s.Rc_util.Vercache.st_entries s.Rc_util.Vercache.st_manifests
                 s.Rc_util.Vercache.st_bytes s.Rc_util.Vercache.st_corrupt_skips
                 (if s.Rc_util.Vercache.st_corrupt_skips = 1 then "" else "s")
                 s.Rc_util.Vercache.st_pruned
           | None -> ());
        (match cache with
        | Some vc when Rc_util.Vercache.disabled vc ->
            Fmt.epr
              "warning: verification cache disabled after repeated write \
               failures; this run continued uncached@."
        | _ -> ());
        if json then
          Fmt.pr "%s@." (Rc_util.Jsonout.to_string (Driver.to_json t));
        (match trace with
        | Some path ->
            Rc_util.Trace.write_chrome (Rc_util.Obs.tr t.Driver.obs) path;
            Fmt.epr "trace written to %s (%d events)@." path
              (Rc_util.Trace.event_count (Rc_util.Obs.tr t.Driver.obs))
        | None -> ());
        if profile then
          (* stderr under --json so stdout stays machine-readable *)
          (if json then Fmt.epr else Fmt.pr)
            "%a" (Rc_util.Profile.pp ?top:None)
            (Rc_util.Obs.mx t.Driver.obs);
        (match profile_out with
        | None -> ()
        | Some path -> (
            let payload =
              Rc_util.Jsonout.to_string
                (Rc_util.Profile.to_json (Rc_util.Obs.mx t.Driver.obs))
              ^ "\n"
            in
            try
              Out_channel.with_open_bin path (fun oc ->
                  Out_channel.output_string oc payload)
            with Sys_error msg ->
              Fmt.epr "warning: cannot write profile to %s (%s)@." path msg));
        (* the run ledger is out-of-band telemetry: it carries wall-clock
           data, so it goes to the ledger file only — never stdout *)
        (match runlog_dir with
        | None -> ()
        | Some dir ->
            let lg = Rc_util.Runlog.create dir in
            let record =
              Driver.runlog_record ~session ~wall_s:(run_watch ()) t
            in
            let record =
              (* fold the profile into the ledger when it was collected
                 for output anyway (--profile / --profile-out) *)
              match record with
              | Rc_util.Jsonout.Obj fields
                when profile || profile_out <> None ->
                  Rc_util.Jsonout.Obj
                    (fields
                    @ [
                        ( "profile",
                          Rc_util.Profile.to_json
                            (Rc_util.Obs.mx t.Driver.obs) );
                      ])
              | r -> r
            in
            Rc_util.Runlog.append lg record;
            if Rc_util.Runlog.disabled lg then
              Fmt.epr
                "warning: cannot append to run ledger in %s; record dropped@."
                dir);
        List.iter
          (fun d -> Fmt.epr "%a@." Rc_util.Diagnostic.pp d)
          t.Driver.diagnostics;
        (* feed this run's per-rule application counts back into the
           profile store, so the next --pgo run dispatches sharper *)
        (match profstore with
        | None -> ()
        | Some ps ->
            let counts = Hashtbl.create 64 in
            List.iter
              (fun (r : Driver.check_result) ->
                match r.outcome with
                | Ok res ->
                    Hashtbl.iter
                      (fun name n ->
                        Hashtbl.replace counts name
                          (n
                          + Option.value ~default:0
                              (Hashtbl.find_opt counts name)))
                      res.Rc_refinedc.Lang.E.stats.Rc_lithium.Stats.rules_used
                | Error _ -> ())
              t.Driver.results;
            Rc_util.Profstore.accumulate ps
              (Hashtbl.fold (fun k v acc -> (k, v) :: acc) counts []));
        (* the exit-code contract: faults trump verification failures;
           cert/semtest regressions count as verification failures *)
        let code = Driver.exit_code t in
        if code = 0 && !failed > 0 then 1 else code
  in
  Cmd.v (Cmd.info "check" ~doc:"Verify the specified functions of FILE.")
    Term.(
      const run $ file $ deriv $ stats $ cert $ semtest $ fuel $ timeout
      $ max_depth $ fail_fast $ json $ jobs $ cache $ no_incremental
      $ explain_cache $ cache_stats $ cache_max_mb $ memo $ pgo
      $ default_only $ no_goal_simp $ trace $ profile $ no_lint $ lint_werror
      $ deadline $ retries $ fault_seed $ fault_rate $ fault_sites
      $ fault_max $ explain_failure $ profile_out $ runlog)

let lint_cmd =
  let file = Arg.(value & pos 0 (some string) None & info [] ~docv:"FILE") in
  let list_passes =
    Arg.(
      value & flag
      & info [ "list-passes" ]
          ~doc:
            "Print the registered lint passes (name, diagnostic codes, \
             description) and exit; FILE is not required.")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Emit machine-readable JSON (file, ok, passes, coverage, \
             diagnostics) on stdout.")
  in
  let werror =
    Arg.(
      value & flag
      & info [ "werror" ]
          ~doc:"Exit non-zero on warnings, not only on errors.")
  in
  let pass =
    Arg.(
      value & opt_all string []
      & info [ "pass" ] ~docv:"NAME"
          ~doc:
            "Run only the named pass (repeatable).  See $(b,--list-passes) \
             for the registry.  Default: all.")
  in
  let list_passes_report json =
    if json then
      Fmt.pr "%s@."
        (Rc_util.Jsonout.to_string
           (Rc_util.Jsonout.List
              (List.map
                 (fun (p : Rc_analysis.Lint.pass) ->
                   Rc_util.Jsonout.Obj
                     [
                       ("name", Rc_util.Jsonout.Str p.Rc_analysis.Lint.p_name);
                       ( "codes",
                         Rc_util.Jsonout.List
                           (List.map
                              (fun c -> Rc_util.Jsonout.Str c)
                              p.Rc_analysis.Lint.p_codes) );
                       ( "sound",
                         Rc_util.Jsonout.Bool p.Rc_analysis.Lint.p_sound );
                       ( "descr",
                         Rc_util.Jsonout.Str p.Rc_analysis.Lint.p_descr );
                     ])
                 Rc_analysis.Lint.passes)))
    else
      List.iter
        (fun (p : Rc_analysis.Lint.pass) ->
          Fmt.pr "%-8s %-24s %s%s@." p.Rc_analysis.Lint.p_name
            (String.concat "," p.Rc_analysis.Lint.p_codes)
            p.Rc_analysis.Lint.p_descr
            (if p.Rc_analysis.Lint.p_sound then ""
             else "  (heuristic: may report false positives)"))
        Rc_analysis.Lint.passes;
    0
  in
  let lint_file file json werror pass =
    (* lint has no per-function dispatch loop to poll a flag from, so an
       interrupt raises [Sys.Break] and is caught below — still a valid
       (empty) JSON report and exit 130, never a half-written line *)
    Sys.catch_break true;
    (try
       Sys.set_signal Sys.sigterm
         (Sys.Signal_handle (fun _ -> raise Sys.Break))
     with Invalid_argument _ | Sys_error _ -> ());
    let interrupted_report () =
      if json then
        Fmt.pr "%s@."
          (Rc_util.Jsonout.to_string
             (Rc_util.Jsonout.Obj
                [
                  ("file", Rc_util.Jsonout.Str file);
                  ("ok", Rc_util.Jsonout.Bool false);
                  ("interrupted", Rc_util.Jsonout.Bool true);
                  ("diagnostics", Rc_util.Jsonout.List []);
                ]))
      else Fmt.epr "interrupted@.";
      130
    in
    let session = Api.create_session ~case_studies:true () in
    let passes = if pass = [] then None else Some pass in
    let fail msg key =
      if json then
        Fmt.pr "%s@."
          (Rc_util.Jsonout.to_string
             (Rc_util.Jsonout.Obj
                [
                  ("file", Rc_util.Jsonout.Str file);
                  ("ok", Rc_util.Jsonout.Bool false);
                  (key, Rc_util.Jsonout.Str msg);
                ]))
      else Fmt.epr "%s@." msg;
      1
    in
    match
      Driver.parse_and_elab ~session ~file
        (In_channel.with_open_bin file In_channel.input_all)
    with
    | exception Sys_error msg -> fail msg "io_error"
    | exception Driver.Frontend_error msg -> fail msg "frontend_error"
    | exception Sys.Break -> interrupted_report ()
    | elaborated -> (
        match Driver.lint_elaborated ?passes ~session ~file elaborated with
        | exception Sys.Break -> interrupted_report ()
        | exception Rc_analysis.Lint.Unknown_pass p ->
            fail
              (Fmt.str "unknown lint pass '%s' (available: %s)" p
                 (String.concat ", " Rc_analysis.Lint.pass_names))
              "usage_error"
        | diagnostics ->
            let specified, total =
              Rc_analysis.Lint.coverage
                ~funcs:elaborated.Rc_frontend.Elab.program
                         .Rc_caesium.Syntax.funcs
                ~to_check:elaborated.Rc_frontend.Elab.to_check
            in
            let problems =
              List.filter Rc_util.Diagnostic.is_problem diagnostics
            in
            let errors =
              List.filter
                (fun (d : Rc_util.Diagnostic.t) ->
                  d.severity = Rc_util.Diagnostic.Error)
                diagnostics
            in
            let ok =
              if werror then problems = [] else errors = []
            in
            if json then
              Fmt.pr "%s@."
                (Rc_util.Jsonout.to_string
                   (Rc_util.Jsonout.Obj
                      [
                        ("file", Rc_util.Jsonout.Str file);
                        ("ok", Rc_util.Jsonout.Bool ok);
                        ( "passes",
                          Rc_util.Jsonout.List
                            (List.map
                               (fun p -> Rc_util.Jsonout.Str p)
                               (match passes with
                               | None -> Rc_analysis.Lint.pass_names
                               | Some ps -> ps)) );
                        ( "coverage",
                          Rc_util.Jsonout.Obj
                            [
                              ("specified", Rc_util.Jsonout.Int specified);
                              ("total", Rc_util.Jsonout.Int total);
                            ] );
                        ( "diagnostics",
                          Rc_util.Jsonout.List
                            (List.map Rc_util.Diagnostic.to_json diagnostics)
                        );
                      ]))
            else begin
              List.iter
                (fun d -> Fmt.pr "%a@." Rc_util.Diagnostic.pp d)
                diagnostics;
              Fmt.pr "%s: %d diagnostic%s (%d problem%s), %d/%d functions \
                      specified@."
                file (List.length diagnostics)
                (if List.length diagnostics = 1 then "" else "s")
                (List.length problems)
                (if List.length problems = 1 then "" else "s")
                specified total
            end;
            if ok then 0 else 1)
  in
  let run file json werror pass list_passes =
    if list_passes then list_passes_report json
    else
      match file with
      | None ->
          Fmt.epr "refinedc lint: FILE required (or use --list-passes)@.";
          2
      | Some file -> lint_file file json werror pass
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Run the static-analysis passes on FILE without verifying it: \
          Caesium dataflow lints, concurrency lockset analysis, \
          specification lints and rule-set sanity checks.")
    Term.(const run $ file $ json $ werror $ pass $ list_passes)

let run_cmd =
  let file = Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE") in
  let fn = Arg.(required & pos 1 (some string) None & info [] ~docv:"FN") in
  let args = Arg.(value & pos_right 1 int [] & info [] ~docv:"ARGS") in
  let run file fn args =
    let session = Api.create_session ~case_studies:true () in
    match Driver.check_file ~session file with
    | exception Driver.Frontend_error msg ->
        Fmt.epr "%s@." msg;
        1
    | t -> (
        let vargs =
          List.map (Rc_caesium.Value.of_int Rc_caesium.Int_type.i32) args
        in
        match Driver.run t fn vargs with
        | Rc_caesium.Eval.Finished None ->
            Fmt.pr "%s returned@." fn;
            0
        | Rc_caesium.Eval.Finished (Some v) ->
            Fmt.pr "%s returned %a@." fn Rc_caesium.Value.pp v;
            0
        | Rc_caesium.Eval.Undefined u ->
            Fmt.pr "UNDEFINED BEHAVIOUR: %a@." Rc_caesium.Ub.pp u;
            1
        | Rc_caesium.Eval.Out_of_fuel ->
            Fmt.pr "out of fuel@.";
            1)
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:"Run FN of FILE in the Caesium interpreter (int arguments).")
    Term.(const run $ file $ fn $ args)

let cfg_cmd =
  let file = Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE") in
  let run file =
    let session = Api.create_session ~case_studies:true () in
    match
      Driver.parse_and_elab ~session ~file
        (In_channel.with_open_bin file In_channel.input_all)
    with
    | exception Driver.Frontend_error msg ->
        Fmt.epr "%s@." msg;
        1
    | e ->
        List.iter
          (fun (name, f) ->
            Fmt.pr "== %s ==@.%s@." name (Rc_caesium.Syntax.show_func f))
          e.Rc_frontend.Elab.program.Rc_caesium.Syntax.funcs;
        0
  in
  Cmd.v (Cmd.info "cfg" ~doc:"Dump the elaborated Caesium CFGs.")
    Term.(const run $ file)

(* -------------------------------------------------------------------- *)
(* refinedc stats: trends and regression checks over the run ledger      *)
(* -------------------------------------------------------------------- *)

let stats_cmd =
  let module J = Rc_util.Jsonout in
  let dir =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"DIR"
          ~doc:"Directory holding the run ledger ($(b,runs.jsonl)).")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Emit the trend table and regression verdict as JSON on \
             stdout (schema $(b,refinedc-stats/1)) — the form CI gates \
             on.")
  in
  let last =
    Arg.(
      value & opt int 10
      & info [ "last" ] ~docv:"N"
          ~doc:"Show the last $(docv) ledger records (default 10).")
  in
  let window =
    Arg.(
      value & opt int 4
      & info [ "window" ] ~docv:"N"
          ~doc:
            "Regression baseline: the $(docv) check runs before the \
             latest (default 4).")
  in
  let threshold =
    Arg.(
      value & opt float 0.75
      & info [ "threshold" ] ~docv:"R"
          ~doc:
            "Flag a regression when the latest run's apps/sec falls below \
             $(docv) × the trailing-window median (default 0.75).")
  in
  let gate =
    Arg.(
      value & flag
      & info [ "gate" ]
          ~doc:
            "Exit 1 when the regression check flags the latest run \
             (normally reporting never fails the command).")
  in
  (* one flattened row per ledger record, reading only fields the
     record's schema version is known to carry (absent fields → Null) *)
  let row (r : J.t) : (string * J.t) list =
    let str k = match J.member k r with Some (J.Str s) -> J.Str s | _ -> J.Null in
    let num k = match J.number_member k r with Some f -> J.Float f | None -> J.Null in
    let nested k1 k2 =
      match J.member k1 r with
      | Some o -> (
          match J.number_member k2 o with Some f -> J.Float f | None -> J.Null)
      | None -> J.Null
    in
    [
      ("kind", str "kind");
      ("file", str "file");
      ("wall_s", num "wall_s");
      ("rule_apps", num "rule_apps");
      ("apps_per_sec", num "apps_per_sec");
      ("cache_hit_rate", nested "cache" "hit_rate");
      ("fn_p50_s", nested "fn_wall" "p50_s");
      ("fn_p95_s", nested "fn_wall" "p95_s");
      ("warm_speedup", num "warm_speedup");
    ]
  in
  let run dir json last window threshold gate =
    let lg = Rc_util.Runlog.create dir in
    let records = Rc_util.Runlog.load lg in
    let corrupt = Rc_util.Runlog.corrupt_lines lg in
    (* the regression series: apps/sec of "check" runs, chronological —
       bench backfill records chart the trajectory but use different
       workloads, so they never enter the gate *)
    let apps_series =
      List.filter_map
        (fun r ->
          match J.member "kind" r with
          | Some (J.Str "check") -> J.number_member "apps_per_sec" r
          | _ -> None)
        records
    in
    let reg = Rc_util.Runlog.regression ~window ~threshold apps_series in
    let regressed =
      match reg with Some g -> g.Rc_util.Runlog.r_regressed | None -> false
    in
    if json then begin
      let reg_json =
        match reg with
        | None -> J.Null
        | Some g ->
            J.Obj
              [
                ("metric", J.Str "apps_per_sec");
                ("latest", J.Float g.Rc_util.Runlog.r_latest);
                ( "baseline",
                  J.List
                    (List.map (fun f -> J.Float f) g.Rc_util.Runlog.r_baseline)
                );
                ("median_ratio", J.Float g.Rc_util.Runlog.r_median_ratio);
                ("window", J.Int g.Rc_util.Runlog.r_window);
                ("threshold", J.Float g.Rc_util.Runlog.r_threshold);
                ("regressed", J.Bool g.Rc_util.Runlog.r_regressed);
              ]
      in
      Fmt.pr "%s@."
        (J.to_string
           (J.Obj
              [
                ("schema", J.Str "refinedc-stats/1");
                ("ledger", J.Str (Rc_util.Runlog.path lg));
                ("records", J.Int (List.length records));
                ("corrupt_lines", J.Int corrupt);
                ( "trend",
                  J.List (List.map (fun r -> J.Obj (row r)) records) );
                ("regression", reg_json);
              ]))
    end
    else begin
      Fmt.pr "run ledger: %s — %d record%s%s@."
        (Rc_util.Runlog.path lg)
        (List.length records)
        (if List.length records = 1 then "" else "s")
        (if corrupt > 0 then
           Fmt.str " (%d corrupt line%s skipped)" corrupt
             (if corrupt = 1 then "" else "s")
         else "");
      if records <> [] then begin
        let n = List.length records in
        let shown = List.filteri (fun i _ -> i >= n - last) records in
        Fmt.pr "  %-9s %-24s %9s %10s %10s %6s %8s %8s@." "kind" "file"
          "wall_s" "rule_apps" "apps/sec" "cache" "p50_s" "p95_s";
        List.iter
          (fun r ->
            let s k =
              match J.member k r with Some (J.Str s) -> s | _ -> "-"
            in
            let f fields =
              match fields with
              | J.Null -> "-"
              | J.Float v -> Fmt.str "%.3g" v
              | J.Int v -> string_of_int v
              | _ -> "-"
            in
            let cells = row r in
            let cell k = f (List.assoc k cells) in
            Fmt.pr "  %-9s %-24s %9s %10s %10s %6s %8s %8s@." (s "kind")
              (Filename.basename (match J.member "file" r with
                                  | Some (J.Str x) -> x
                                  | _ -> "-"))
              (cell "wall_s") (cell "rule_apps") (cell "apps_per_sec")
              (cell "cache_hit_rate") (cell "fn_p50_s") (cell "fn_p95_s"))
          shown;
        match reg with
        | None ->
            Fmt.pr
              "trend: fewer than two check runs with throughput data — no \
               regression check@."
        | Some g ->
            Fmt.pr
              "trend (apps/sec, check runs): latest %.3g vs %d-run \
               baseline, median ratio %.2f (threshold %.2f) → %s@."
              g.Rc_util.Runlog.r_latest g.Rc_util.Runlog.r_window
              g.Rc_util.Runlog.r_median_ratio g.Rc_util.Runlog.r_threshold
              (if g.Rc_util.Runlog.r_regressed then "REGRESSED" else "ok")
      end
    end;
    if gate && regressed then 1 else 0
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Report throughput trends and flag regressions from the \
          persistent run ledger written by $(b,refinedc check --runlog) \
          and $(b,bench --trajectory).")
    Term.(const run $ dir $ json $ last $ window $ threshold $ gate)

let () =
  let doc = "RefinedC: automated, certificate-producing verification of C" in
  exit
    (Cmd.eval'
       (Cmd.group (Cmd.info "refinedc" ~version:"1.0" ~doc)
          [ check_cmd; lint_cmd; run_cmd; cfg_cmd; stats_cmd ]))

(** The evar store and unification (§5, "Handling of evars").

    Evars created by Lithium's goal case (4) are *sealed*: ordinary
    reasoning may not instantiate them.  They are unsealed only while
    discharging a pure side condition, where the engine first tries to
    unify the two sides of an equality (heuristic 1) and then applies
    goal-simplification rules such as [?xs ≠ [] ⇝ ?xs := ?y :: ?ys]
    (heuristic 2).  A bad instantiation can make a provable goal
    unprovable but never the converse, so none of this is trusted: the
    certificate checker re-checks side conditions fully resolved. *)

open Rc_pure

type t = {
  entries : (int, entry) Hashtbl.t;
  gen : Rc_util.Gensym.t;
  mutable instantiations : int;  (** Figure 7's ∃ column *)
  mutable min_inst : int;
      (** smallest evar id instantiated so far ([max_int] if none); the
          engine's memo layer compares it against a frame watermark to
          detect instantiations of pre-existing evars *)
  fault : Rc_util.Faultsim.t option;
      (** the owning session's fault campaign, for the evar_resolve site *)
  obs : Rc_util.Obs.t;
      (** the enclosing check's observability handle ([evar] events and
          the [evar.insts] counter on every instantiation) *)
}

and entry = {
  e_sort : Sort.t;
  e_hint : string;
  mutable inst : Term.term option;
  mutable sealed : bool;
}

val create : ?fault:Rc_util.Faultsim.t -> ?obs:Rc_util.Obs.t -> unit -> t
val fresh : ?hint:string -> t -> Sort.t -> Term.term

val next_id : t -> int
(** the id the next [fresh] will allocate — the memo layer's frame
    watermark *)

val skip_ids : t -> int -> unit
(** burn ids without creating entries, so a memo replay leaves the id
    counter where the replayed search would have *)

val credit_instantiations : t -> int -> unit
(** account for instantiations a memo replay subsumed *)

val lookup : t -> int -> Term.term option
val resolve : t -> Term.term -> Term.term
val resolve_prop : t -> Term.prop -> Term.prop

val unify : ?unseal:bool -> t -> Term.term -> Term.term -> bool
(** syntactic first-order unification with occurs check; [unseal]
    permits instantiating sealed evars (side-condition discharge only) *)

val unify_prop : ?unseal:bool -> t -> Term.prop -> Term.prop -> bool

(** {1 Goal-simplification rules (heuristic 2)} *)

type simp_outcome = Progress of Term.prop | NoProgress
type goal_simp_rule = t -> Term.prop -> simp_outcome

(** Per-session goal-simplification configuration: the user-extensible
    evar-elimination rules ("user-extensible rewriting rules and
    equivalences", §5) plus the ablation switch disabling heuristic 2. *)
type simp_cfg = {
  gs_rules : (string * goal_simp_rule) list;
  gs_no_goal_simp : bool;
}

val default_simp_cfg : simp_cfg
(** no extra rules, heuristic 2 enabled *)

val simp_cfg_names : simp_cfg -> string list
(** rule names (plus the ablation flag) for configuration fingerprints *)

val apply_goal_simp : ?cfg:simp_cfg -> t -> Term.prop -> simp_outcome

(** Lithium goal syntax (§5).

    [('f, 'atom) goal] is the goal grammar

    {v
      G ::= True | F | H ∗ G | H -∗ G | G₁ ∧ G₂ | ∀x. G(x) | ∃x. G(x)
      H ::= ⌜φ⌝ | A | H ∗ H | ∃x. H(x)
    v}

    parameterized by the language of basic goals ['f] (RefinedC typing
    judgments) and atoms ['atom] (the [ℓ ◁ₗ τ] / [v ◁ᵥ τ] assertions).
    Binders are higher-order (OCaml functions over pure terms), so the
    interpreter performs no substitution: universal binders are applied
    to fresh variables, existential binders to fresh evars — exactly
    goal cases (3) and (4) of the paper.

    The crucial syntactic restriction of Lithium is visible in the types:
    the left side of [∗] and [-∗] is an [('f, 'atom) left], which cannot
    contain [∧], [∀] or [-∗].  This is what makes non-backtracking,
    goal-directed proof search complete for the fragment (§5, "No
    backtracking"). *)

type ('f, 'atom) goal =
  | True_
  | Basic of 'f
  | Star of ('f, 'atom) left * ('f, 'atom) goal  (** H ∗ G *)
  | Wand of ('f, 'atom) left * ('f, 'atom) goal  (** H -∗ G *)
  | AndG of (string option * ('f, 'atom) goal) list
      (** G₁ ∧ … ∧ Gₙ; the optional labels become the "branch trail" in
          error messages (e.g. ["else branch of if at …:11"]) *)
  | All of string * Rc_pure.Sort.t * (Rc_pure.Term.term -> ('f, 'atom) goal)
  | Ex of string * Rc_pure.Sort.t * (Rc_pure.Term.term -> ('f, 'atom) goal)
  | Find of {
      descr : string;
      pred : (Rc_pure.Term.term -> Rc_pure.Term.term) -> 'atom -> bool;
          (** receives the current evar resolver, then the candidate atom *)
      cont : 'atom -> ('f, 'atom) goal;
    }
      (** RefinedC's [find_in_context]: locate and consume the unique atom
          in Δ satisfying [pred] (e.g. the type of the location a load
          reads from), then continue.  Deterministic: Δ contains at most
          one atom per subject, so the first match is the only match. *)
  | FindOpt of {
      descr : string;
      pred : (Rc_pure.Term.term -> Rc_pure.Term.term) -> 'atom -> bool;
      cont : 'atom option -> ('f, 'atom) goal;
    }
      (** soft variant of [Find]: the continuation decides what to do when
          no atom matches (used e.g. to prove a magic wand either from an
          existing wand in Δ or, from emp, as the identity wand) *)

and ('f, 'atom) left =
  | LProp of Rc_pure.Term.prop
  | LAtom of 'atom
  | LStar of ('f, 'atom) left * ('f, 'atom) left
  | LEx of string * Rc_pure.Sort.t * (Rc_pure.Term.term -> ('f, 'atom) left)
  | LTrue  (** empty resource, unit of ∗ *)

(* Smart constructors *)

let star h g = match h with LTrue -> g | _ -> Star (h, g)
let wand h g = match h with LTrue -> g | _ -> Wand (h, g)

let rec stars hs g =
  match hs with [] -> g | h :: rest -> star h (stars rest g)

let rec wands hs g =
  match hs with [] -> g | h :: rest -> wand h (wands rest g)

let lstars hs =
  match hs with
  | [] -> LTrue
  | h :: rest -> List.fold_left (fun acc x -> LStar (acc, x)) h rest

let and2 ?l1 ?l2 g1 g2 = AndG [ (l1, g1); (l2, g2) ]

let prop p = LProp p

(** Hash-consing of printable goal keys.

    Goals proper cannot be structurally hash-consed: their binders are
    OCaml closures ([All]/[Ex]/[Find] carry functions), so two
    semantically identical goals are never structurally equal.  What
    {e can} be interned is the printable identity the engine uses on its
    hot path — judgment head names and memoization keys.  An [Intern.t]
    maps such strings to dense integer ids, so the engine compares and
    hashes [int]s instead of re-hashing strings at every dispatch or
    memo lookup.

    Tables are owned by their creator (an engine run or a session's rule
    index), never global: the [lint_globals.sh] gate requires all state
    to be reachable from a session value, and per-run tables are what
    make concurrent domains safe without locks. *)
module Intern = struct
  type t = {
    ids : (string, int) Hashtbl.t;
    mutable names : string array;  (** reverse map, grown geometrically *)
    mutable size : int;
  }

  let create ?(expected = 64) () =
    {
      ids = Hashtbl.create expected;
      names = Array.make (max expected 8) "";
      size = 0;
    }

  (** [id t s] interns [s], returning its dense id (stable for the life
      of [t]; the first string interned gets id 0). *)
  let id (t : t) (s : string) : int =
    match Hashtbl.find_opt t.ids s with
    | Some i -> i
    | None ->
        let i = t.size in
        if i = Array.length t.names then begin
          let bigger = Array.make (2 * Array.length t.names) "" in
          Array.blit t.names 0 bigger 0 i;
          t.names <- bigger
        end;
        t.names.(i) <- s;
        t.size <- i + 1;
        Hashtbl.add t.ids s i;
        i

  (** [name t i] is the string whose id is [i].
      @raise Invalid_argument if [i] was never returned by [id t]. *)
  let name (t : t) (i : int) : string =
    if i < 0 || i >= t.size then invalid_arg "Intern.name";
    t.names.(i)

  let size (t : t) = t.size
  let mem (t : t) (s : string) = Hashtbl.mem t.ids s
end

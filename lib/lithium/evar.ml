(** The evar store and unification (§5, "Handling of evars").

    Evars created by goal case (4) are *sealed*: ordinary reasoning steps
    may not instantiate them.  They are unsealed only while discharging a
    pure side condition (case (6c)), where Lithium first tries to unify
    the two sides of an equality and then falls back to goal-simplification
    rules such as [?xs ≠ [] ⇝ ?xs := ?y :: ?ys].  A bad instantiation can
    turn a provable goal unprovable but never an unprovable one provable,
    so instantiation is not part of the trusted computing base — the
    certificate checker re-checks side conditions with all evars
    resolved. *)

open Rc_pure
open Rc_pure.Term

type entry = {
  e_sort : Sort.t;
  e_hint : string;
  mutable inst : term option;
  mutable sealed : bool;
}

type t = {
  entries : (int, entry) Hashtbl.t;
  gen : Rc_util.Gensym.t;
  mutable instantiations : int;  (** Figure 7's ∃ column *)
  mutable min_inst : int;
      (** smallest evar id instantiated so far ([max_int] if none) — the
          engine's memo layer compares it against a frame's id watermark
          to detect instantiations of pre-existing evars *)
  fault : Rc_util.Faultsim.t option;
      (** the owning session's fault campaign, for the evar_resolve site *)
  obs : Rc_util.Obs.t;
      (** the enclosing check's observability handle: every successful
          instantiation emits an [evar] trace event and bumps the
          [evar.insts] counter *)
}

let create ?fault ?(obs = Rc_util.Obs.off) () =
  {
    entries = Hashtbl.create 64;
    gen = Rc_util.Gensym.create ();
    instantiations = 0;
    min_inst = max_int;
    fault;
    obs;
  }

(** [next_id st] is the id the next [fresh] will allocate — the memo
    layer's frame watermark. *)
let next_id (st : t) = Rc_util.Gensym.count st.gen

(** [skip_ids st n] burns [n] evar ids without creating entries, so a
    memo replay leaves the id counter exactly where the replayed search
    would have. *)
let skip_ids (st : t) (n : int) = Rc_util.Gensym.skip st.gen n

(** [credit_instantiations st n] accounts for [n] instantiations that a
    memo replay subsumed (Figure 7's ∃ column must not depend on
    memoization). *)
let credit_instantiations (st : t) (n : int) =
  if n > 0 then st.instantiations <- st.instantiations + n

let fresh ?(hint = "x") (st : t) (sort : Sort.t) : term =
  let id = Rc_util.Gensym.fresh_int st.gen in
  Hashtbl.replace st.entries id
    { e_sort = sort; e_hint = hint; inst = None; sealed = true };
  Evar (id, sort)

let lookup (st : t) (id : int) : term option =
  match Hashtbl.find_opt st.entries id with
  | Some { inst = Some t; _ } -> Some t
  | _ -> None

(** Resolve all instantiated evars inside a term / proposition. *)
let resolve (st : t) (t : term) : term =
  Rc_util.Faultsim.point st.fault "evar_resolve";
  subst_evars_term (lookup st) t

let resolve_prop (st : t) (p : prop) : prop =
  Rc_util.Faultsim.point st.fault "evar_resolve";
  subst_evars_prop (lookup st) p

let set (st : t) (id : int) (t : term) : unit =
  match Hashtbl.find_opt st.entries id with
  | Some e when e.inst = None ->
      e.inst <- Some t;
      st.instantiations <- st.instantiations + 1;
      if id < st.min_inst then st.min_inst <- id;
      if Rc_util.Obs.on st.obs then begin
        Rc_util.Obs.counter st.obs "evar.insts";
        Rc_util.Obs.instant st.obs ~cat:"evar"
          ~args:
            [ ("evar", Printf.sprintf "?%s/%d" e.e_hint id);
              ("term", term_to_string t) ]
          "evar:inst"
      end
  | Some _ -> invalid_arg "Evar.set: already instantiated"
  | None -> invalid_arg "Evar.set: unknown evar"

let occurs (st : t) (id : int) (t : term) : bool =
  List.mem id (evars_term (resolve st t))

(* ------------------------------------------------------------------ *)
(* Unification                                                          *)
(* ------------------------------------------------------------------ *)

(** Syntactic first-order unification.  [unseal] controls whether sealed
    evars may be instantiated — true only inside side-condition
    discharge, as the paper prescribes. *)
let rec unify ?(unseal = false) (st : t) (a : term) (b : term) : bool =
  let a = resolve st a and b = resolve st b in
  let bindable id =
    match Hashtbl.find_opt st.entries id with
    | Some e -> e.inst = None && ((not e.sealed) || unseal)
    | None -> false
  in
  match (a, b) with
  | Evar (i, _), Evar (j, _) when i = j -> true
  | Evar (i, _), t when bindable i && not (occurs st i t) ->
      set st i t;
      true
  | t, Evar (i, _) when bindable i && not (occurs st i t) ->
      set st i t;
      true
  | Var (x, _), Var (y, _) -> x = y
  | Num a, Num b -> a = b
  | BoolLit a, BoolLit b -> a = b
  | NullLoc, NullLoc | MsEmpty, MsEmpty | SetEmpty, SetEmpty -> true
  | Nil _, Nil _ -> true
  | TProp p, TProp q -> unify_prop ~unseal st p q
  | Add (a1, a2), Add (b1, b2)
  | Sub (a1, a2), Sub (b1, b2)
  | NatSub (a1, a2), NatSub (b1, b2)
  | Mul (a1, a2), Mul (b1, b2)
  | Div (a1, a2), Div (b1, b2)
  | Mod (a1, a2), Mod (b1, b2)
  | Min (a1, a2), Min (b1, b2)
  | Max (a1, a2), Max (b1, b2)
  | LocOfs (a1, a2), LocOfs (b1, b2)
  | MsUnion (a1, a2), MsUnion (b1, b2)
  | SetUnion (a1, a2), SetUnion (b1, b2)
  | SetDiff (a1, a2), SetDiff (b1, b2)
  | Cons (a1, a2), Cons (b1, b2)
  | Append (a1, a2), Append (b1, b2)
  | Replicate (a1, a2), Replicate (b1, b2) ->
      unify ~unseal st a1 b1 && unify ~unseal st a2 b2
  | MsSingleton a, MsSingleton b
  | SetSingleton a, SetSingleton b
  | Length a, Length b ->
      unify ~unseal st a b
  | Ite (p, a1, a2), Ite (q, b1, b2) ->
      unify_prop ~unseal st p q && unify ~unseal st a1 b1
      && unify ~unseal st a2 b2
  | NthDflt (a1, a2, a3), NthDflt (b1, b2, b3)
  | SetListInsert (a1, a2, a3), SetListInsert (b1, b2, b3) ->
      unify ~unseal st a1 b1 && unify ~unseal st a2 b2 && unify ~unseal st a3 b3
  | App (f, xs), App (g, ys) when f = g && List.length xs = List.length ys ->
      List.for_all2 (unify ~unseal st) xs ys
  | _ -> false

and unify_prop ?(unseal = false) (st : t) (p : prop) (q : prop) : bool =
  let p = resolve_prop st p and q = resolve_prop st q in
  match (p, q) with
  | PTrue, PTrue | PFalse, PFalse -> true
  | PEq (a1, a2), PEq (b1, b2)
  | PLe (a1, a2), PLe (b1, b2)
  | PLt (a1, a2), PLt (b1, b2)
  | PIn (a1, a2), PIn (b1, b2) ->
      unify ~unseal st a1 b1 && unify ~unseal st a2 b2
  | PAnd (p1, p2), PAnd (q1, q2)
  | POr (p1, p2), POr (q1, q2)
  | PImp (p1, p2), PImp (q1, q2) ->
      unify_prop ~unseal st p1 q1 && unify_prop ~unseal st p2 q2
  | PNot p1, PNot q1 -> unify_prop ~unseal st p1 q1
  | PIsTrue a, PIsTrue b -> unify ~unseal st a b
  | PPred (f, xs), PPred (g, ys)
    when f = g && List.length xs = List.length ys ->
      List.for_all2 (unify ~unseal st) xs ys
  | _ -> equal_prop p q

(* ------------------------------------------------------------------ *)
(* Goal simplification rules for evar-laden side conditions             *)
(* ------------------------------------------------------------------ *)

type simp_outcome =
  | Progress of prop  (** may have instantiated evars *)
  | NoProgress

type goal_simp_rule = t -> prop -> simp_outcome

(** Per-session goal-simplification configuration: the user-extensible
    rule list ("user-extensible rewriting rules and equivalences", §5)
    plus the ablation switch disabling heuristic 2 altogether.  A value,
    not a registry: concurrent sessions carry their own. *)
type simp_cfg = {
  gs_rules : (string * goal_simp_rule) list;
  gs_no_goal_simp : bool;
}

let default_simp_cfg = { gs_rules = []; gs_no_goal_simp = false }

(** Rule names in registration order, for configuration fingerprints. *)
let simp_cfg_names cfg =
  (if cfg.gs_no_goal_simp then [ "no_goal_simp" ] else [])
  @ List.map fst cfg.gs_rules

let builtin_simp (st : t) (p : prop) : simp_outcome =
  match p with
  (* ?xs ≠ [] ⇝ ∃ y ys, ?xs = y :: ys — introduce evars and instantiate *)
  | PNot (PEq (Evar (i, (Sort.List s as ls)), Nil _))
  | PNot (PEq (Nil _, Evar (i, (Sort.List s as ls)))) ->
      let y = fresh ~hint:"y" st s in
      let ys = fresh ~hint:"ys" st ls in
      if unify ~unseal:true st (Evar (i, ls)) (Cons (y, ys)) then Progress PTrue
      else NoProgress
  (* ?s ≠ ∅ ⇝ ?s := {[?n]} ⊎ ?t *)
  | PNot (PEq (Evar (i, Sort.Mset), MsEmpty))
  | PNot (PEq (MsEmpty, Evar (i, Sort.Mset))) ->
      let n = fresh ~hint:"n" st Sort.Int in
      let t' = fresh ~hint:"t" st Sort.Mset in
      if unify ~unseal:true st (Evar (i, Sort.Mset)) (MsUnion (MsSingleton n, t'))
      then Progress PTrue
      else NoProgress
  (* ?n ≠ 0 over the naturals: instantiate ?n := ?m + 1 *)
  | PNot (PEq (Evar (i, (Sort.Nat | Sort.Int as so)), Num 0))
  | PNot (PEq (Num 0, Evar (i, (Sort.Nat | Sort.Int as so)))) ->
      let m = fresh ~hint:"m" st Sort.Nat in
      if unify ~unseal:true st (Evar (i, so)) (Add (m, Num 1)) then
        Progress PTrue
      else NoProgress
  (* abstract boolean states (lock refinements): an evar reflected as a
     proposition is pinned by what it must imply / be implied by *)
  | PIsTrue (Evar (i, Sort.Bool)) ->
      if unify ~unseal:true st (Evar (i, Sort.Bool)) (BoolLit true) then
        Progress PTrue
      else NoProgress
  | PNot (PIsTrue (Evar (i, Sort.Bool)))
  | PImp (PIsTrue (Evar (i, Sort.Bool)), PFalse) ->
      if unify ~unseal:true st (Evar (i, Sort.Bool)) (BoolLit false) then
        Progress PTrue
      else NoProgress
  | PImp (a, PIsTrue (Evar (i, Sort.Bool))) when not (has_evars_prop a) ->
      if unify ~unseal:true st (Evar (i, Sort.Bool)) (TProp a) then
        Progress PTrue
      else NoProgress
  | PImp (PIsTrue (Evar (i, Sort.Bool)), a) when not (has_evars_prop a) ->
      if unify ~unseal:true st (Evar (i, Sort.Bool)) (TProp a) then
        Progress PTrue
      else NoProgress
  (* decompose equalities of injective constructors to expose evars *)
  | PEq (Cons (a, b), Cons (c, d)) ->
      Progress (PAnd (PEq (a, c), PEq (b, d)))
  | PEq (MsSingleton a, MsSingleton b) | PEq (SetSingleton a, SetSingleton b)
    ->
      Progress (PEq (a, b))
  | _ -> NoProgress

let apply_goal_simp ?(cfg = default_simp_cfg) (st : t) (p : prop) :
    simp_outcome =
  if cfg.gs_no_goal_simp then NoProgress
  else
    match builtin_simp st p with
    | Progress p' -> Progress p'
    | NoProgress ->
        let rec go = function
          | [] -> NoProgress
          | (_, r) :: rest -> (
              match r st p with
              | Progress p' -> Progress p'
              | NoProgress -> go rest)
        in
        go cfg.gs_rules

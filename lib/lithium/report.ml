(** Structured verification errors (§2.1, "Error messages").

    Lithium's syntax-directed search affords precise error messages: the
    failure is located (the C source location of the judgment being
    typed), the branch trail identifies which control-flow branches were
    taken, and the failure kind says what could not be proved. *)

type kind =
  | Unsolved_side_condition of Rc_pure.Term.prop
  | Evar_stuck of Rc_pure.Term.prop
      (** a side condition still contains evars after the heuristics *)
  | No_rule_applies of string  (** printed judgment *)
  | No_ownership of string  (** printed atom not found in the context *)
  | Frontend of string  (** parse/elaboration failure *)
  | Resource_exhausted of {
      exh : Rc_util.Budget.exhaustion;
      goal_head : string option;  (** judgment head being attempted *)
      rule_apps : int;  (** rule applications before exhaustion *)
      elapsed : float;  (** seconds on the monotonic clock *)
    }  (** the per-function budget ran out (fuel, deadline, or depth) *)
  | Checker_fault of string
      (** an exception escaped the checker itself — a checker bug, not a
          verification failure *)
  | Transient_fault of string
      (** an environment-level failure (an injected chaos fault, a
          flaky external resource) that may well succeed if re-run; the
          supervisor's retry policy re-attempts exactly these *)

(** {2 Proof-failure forensics}

    A bounded snapshot of the derivation at the moment of failure,
    captured by the engine when forensics are enabled
    ([--explain-failure]).  Everything here is printed, count-bounded
    and free of wall-clock data, so a forensic is deterministic and
    byte-identical across [-j N] (per-function capture, merged in source
    order, like every other diagnostic). *)

(** Depth/width caps on the capture (DESIGN.md §13): the forensic must
    stay small even when the stuck goal sits under a thousand-frame
    search on the diamond corpus.  Elision counts record what was
    dropped, so a bounded forensic is never mistaken for a complete
    one. *)
type fx_limits = {
  fxl_depth : int;  (** goal-stack entries kept (head + tail of the path) *)
  fxl_width : int;  (** candidate rules listed for the stuck goal *)
  fxl_recent : int;  (** trailing rule applications kept *)
  fxl_evars : int;  (** evar entries printed (most recent kept) *)
}

let default_fx_limits =
  { fxl_depth = 24; fxl_width = 16; fxl_recent = 16; fxl_evars = 24 }

type forensics = {
  fx_goal_stack : string list;
      (** printed basic goals, root first, stuck goal last; middle
          entries elided beyond [fxl_depth] *)
  fx_goal_stack_elided : int;
  fx_stuck_head : string option;  (** judgment head of the stuck goal *)
  fx_candidates : (string * string) list;
      (** the stuck goal's head-bucket candidates in trial order, each
          with its rejection reason ("guard failed", "side condition
          unsolved: …", …); rules after the committed one are absent —
          first-match-commits never tried them *)
  fx_candidates_elided : int;
  fx_evars : string list;  (** printed evar entries, most recent last *)
  fx_evars_elided : int;
  fx_recent_rules : string list;
      (** the last N rule applications before the failure, oldest
          first *)
}

type t = {
  loc : Rc_util.Srcloc.t option;
  trail : string list;  (** innermost branch label last *)
  kind : kind;
  context : string list;  (** printed Δ atoms at the failure point *)
  forensics : forensics option;
      (** present only when the engine ran with forensics enabled *)
}

exception Error of t

(** Faults are failures *of the checker* (crash or budget exhaustion),
    as opposed to failures of verification; the CLI maps them to a
    distinct exit code. *)
let is_fault_kind = function
  | Resource_exhausted _ | Checker_fault _ | Transient_fault _ -> true
  | Unsolved_side_condition _ | Evar_stuck _ | No_rule_applies _
  | No_ownership _ | Frontend _ ->
      false

let is_fault (e : t) = is_fault_kind e.kind

(** Transient faults are the retryable subset of faults: re-running the
    same check may succeed (deterministic failures never qualify). *)
let is_transient_kind = function Transient_fault _ -> true | _ -> false
let is_transient (e : t) = is_transient_kind e.kind

let make ?loc ?(trail = []) ?(context = []) ?forensics kind : t =
  { loc; trail; kind; context; forensics }

let fail ?loc ?(trail = []) ?(context = []) ?forensics kind =
  raise (Error (make ?loc ~trail ~context ?forensics kind))

let pp_kind ppf = function
  | Unsolved_side_condition p ->
      Fmt.pf ppf "Cannot solve side condition in function@,  %a"
        Rc_pure.Term.pp_prop p
  | Evar_stuck p ->
      Fmt.pf ppf
        "Cannot instantiate existential variable in side condition@,  %a"
        Rc_pure.Term.pp_prop p
  | No_rule_applies j -> Fmt.pf ppf "No typing rule applies to@,  %a" Fmt.string j
  | No_ownership a ->
      Fmt.pf ppf "Cannot find ownership in the context for@,  %a" Fmt.string a
  | Frontend msg -> Fmt.string ppf msg
  | Resource_exhausted { exh; goal_head; rule_apps; elapsed } ->
      Fmt.pf ppf "Proof search aborted: %a@,  after %d rule applications in %.3fs%a"
        Rc_util.Budget.pp_exhaustion exh rule_apps elapsed
        (fun ppf -> function
          | Some h -> Fmt.pf ppf "@,  while attempting judgment %s" h
          | None -> ())
        goal_head
  | Checker_fault msg ->
      Fmt.pf ppf "Checker fault (this is a bug in the checker, not a@,\
                  property of the program):@,  %a" Fmt.string msg
  | Transient_fault msg ->
      Fmt.pf ppf "Transient fault (an environment failure, not a@,\
                  property of the program — retrying may succeed):@,  %a"
        Fmt.string msg

let pp ppf (e : t) =
  Fmt.pf ppf "@[<v>";
  let verb = if is_fault e then "Check aborted" else "Verification failed" in
  (match e.loc with
  | Some l -> Fmt.pf ppf "%s at %a@," verb Rc_util.Srcloc.pp l
  | None -> Fmt.pf ppf "%s@," verb);
  List.iter (fun b -> Fmt.pf ppf "  in %s@," b) (List.rev e.trail);
  Fmt.pf ppf "%a" pp_kind e.kind;
  if e.context <> [] then begin
    Fmt.pf ppf "@,Context:";
    List.iter (fun a -> Fmt.pf ppf "@,  %s" a) e.context
  end;
  Fmt.pf ppf "@]"

let to_string e = Fmt.str "%a" pp e

let kind_label = function
  | Unsolved_side_condition _ -> "unsolved_side_condition"
  | Evar_stuck _ -> "evar_stuck"
  | No_rule_applies _ -> "no_rule_applies"
  | No_ownership _ -> "no_ownership"
  | Frontend _ -> "frontend_error"
  | Resource_exhausted { exh; _ } -> Rc_util.Budget.exhaustion_label exh
  | Checker_fault _ -> "checker_fault"
  | Transient_fault _ -> "transient_fault"

(** The human-readable forensic block ([--explain-failure]): the goal
    stack root→stuck, the stuck goal's candidate rules with rejection
    reasons, the evar state and the trailing rule applications. *)
let pp_forensics ppf (fx : forensics) =
  Fmt.pf ppf "@[<v>Failure forensics:";
  (match fx.fx_goal_stack with
  | [] -> ()
  | stack ->
      Fmt.pf ppf "@,  goal stack (root first%s):"
        (if fx.fx_goal_stack_elided > 0 then
           Fmt.str ", %d middle entries elided" fx.fx_goal_stack_elided
         else "");
      List.iter (fun g -> Fmt.pf ppf "@,    %s" g) stack);
  (match fx.fx_stuck_head with
  | Some h -> Fmt.pf ppf "@,  stuck judgment head: %s" h
  | None -> ());
  (match fx.fx_candidates with
  | [] -> ()
  | cands ->
      Fmt.pf ppf "@,  candidate rules for the stuck goal%s:"
        (if fx.fx_candidates_elided > 0 then
           Fmt.str " (%d more elided)" fx.fx_candidates_elided
         else "");
      List.iter
        (fun (rule, reason) -> Fmt.pf ppf "@,    %s: %s" rule reason)
        cands);
  (match fx.fx_evars with
  | [] -> ()
  | evars ->
      Fmt.pf ppf "@,  evars at failure%s:"
        (if fx.fx_evars_elided > 0 then
           Fmt.str " (%d older elided)" fx.fx_evars_elided
         else "");
      List.iter (fun e -> Fmt.pf ppf "@,    %s" e) evars);
  (match fx.fx_recent_rules with
  | [] -> ()
  | rules ->
      Fmt.pf ppf "@,  last %d rule applications (oldest first):"
        (List.length rules);
      List.iter (fun r -> Fmt.pf ppf "@,    %s" r) rules);
  Fmt.pf ppf "@]"

let forensics_to_json (fx : forensics) : Rc_util.Jsonout.t =
  let open Rc_util.Jsonout in
  Obj
    [
      ("goal_stack", List (List.map (fun s -> Str s) fx.fx_goal_stack));
      ("goal_stack_elided", Int fx.fx_goal_stack_elided);
      ( "stuck_head",
        match fx.fx_stuck_head with Some h -> Str h | None -> Null );
      ( "candidates",
        List
          (List.map
             (fun (rule, reason) ->
               Obj [ ("rule", Str rule); ("reason", Str reason) ])
             fx.fx_candidates) );
      ("candidates_elided", Int fx.fx_candidates_elided);
      ("evars", List (List.map (fun s -> Str s) fx.fx_evars));
      ("evars_elided", Int fx.fx_evars_elided);
      ( "recent_rules",
        List (List.map (fun s -> Str s) fx.fx_recent_rules) );
    ]

(** Machine-readable form for the CLI's [--json] mode.  The [forensics]
    field appears only when the engine captured one — with forensics
    disabled (the default) the object is byte-identical to a
    forensics-free build. *)
let to_json (e : t) : Rc_util.Jsonout.t =
  let open Rc_util.Jsonout in
  let loc =
    match e.loc with
    | Some l -> Str (Rc_util.Srcloc.to_string l)
    | None -> Null
  in
  let extra =
    match e.kind with
    | Resource_exhausted { exh = _; goal_head; rule_apps; elapsed } ->
        [
          ( "goal_head",
            match goal_head with Some h -> Str h | None -> Null );
          ("rule_apps", Int rule_apps);
          ("elapsed_s", Float elapsed);
        ]
    | _ -> []
  in
  let forensics =
    match e.forensics with
    | None -> []
    | Some fx -> [ ("forensics", forensics_to_json fx) ]
  in
  Obj
    ([
       ("kind", Str (kind_label e.kind));
       ("fault", Bool (is_fault e));
       ("message", Str (Fmt.str "%a" pp_kind e.kind));
       ("loc", loc);
       ("trail", List (List.map (fun s -> Str s) (List.rev e.trail)));
       ("context", List (List.map (fun s -> Str s) e.context));
     ]
    @ extra @ forensics)

(** Verification statistics — the instrumentation behind Figure 7.

    One [t] is collected per verified function and aggregated per case
    study by the benchmark harness:
    - [rules_used]/[rule_apps]: the "Rules" column (distinct / applications)
    - [evar_insts]: the "∃" column
    - [side_auto]/[side_manual]: the "⌜φ⌝" column (the paper counts any
      condition needing a named solver or a registered lemma as manual) *)

type t = {
  mutable rule_apps : int;
  mutable rules_used : (string, int) Hashtbl.t;
  mutable evar_insts : int;
  mutable side_auto : int;
  mutable side_manual : int;
  mutable manual_detail : (string * string) list;
      (** (solver-or-lemma, printed side condition) *)
  mutable memo_hits : int;
      (** memoized-subgoal replays; the subsumed rule applications are
          already merged into [rule_apps]/[rules_used], so Figure-7
          columns match a memo-off run exactly *)
  mutable memo_saved_apps : int;
      (** rule applications the memo hits subsumed (counted inside
          [rule_apps] as well — this field reports the saving) *)
}

let create () =
  {
    rule_apps = 0;
    rules_used = Hashtbl.create 32;
    evar_insts = 0;
    side_auto = 0;
    side_manual = 0;
    manual_detail = [];
    memo_hits = 0;
    memo_saved_apps = 0;
  }

let record_rule t name =
  t.rule_apps <- t.rule_apps + 1;
  Hashtbl.replace t.rules_used name
    (1 + Option.value ~default:0 (Hashtbl.find_opt t.rules_used name))

let record_side t (v : Rc_pure.Registry.verdict) (printed : string) =
  match v with
  | Rc_pure.Registry.Auto -> t.side_auto <- t.side_auto + 1
  | Rc_pure.Registry.Via_solver s ->
      t.side_manual <- t.side_manual + 1;
      t.manual_detail <- (s, printed) :: t.manual_detail
  | Rc_pure.Registry.Via_lemma s ->
      t.side_manual <- t.side_manual + 1;
      t.manual_detail <- ("lemma " ^ s, printed) :: t.manual_detail
  | Rc_pure.Registry.Unsolved -> ()

let distinct_rules t = Hashtbl.length t.rules_used

let merge a b =
  a.rule_apps <- a.rule_apps + b.rule_apps;
  Hashtbl.iter
    (fun k v ->
      Hashtbl.replace a.rules_used k
        (v + Option.value ~default:0 (Hashtbl.find_opt a.rules_used k)))
    b.rules_used;
  a.evar_insts <- a.evar_insts + b.evar_insts;
  a.side_auto <- a.side_auto + b.side_auto;
  a.side_manual <- a.side_manual + b.side_manual;
  (* [manual_detail] is reverse-chronological; [to_json] reverses it.
     Keeping [b]'s (later) entries at the head makes the serialized
     order [a]'s entries then [b]'s — source order for a driver merging
     per-function stats, regardless of [-j N]. *)
  a.manual_detail <- b.manual_detail @ a.manual_detail;
  a.memo_hits <- a.memo_hits + b.memo_hits;
  a.memo_saved_apps <- a.memo_saved_apps + b.memo_saved_apps

(** Deterministic JSON rendering: [rules_used] is emitted in sorted
    order and [manual_detail] in chronological order, so two runs that
    performed the same proof work — e.g. a [-j 1] and a [-j 4] run over
    the same corpus, merged in source order — serialize byte-identically
    regardless of hashtable iteration order or domain scheduling. *)
let to_json t : string =
  let b = Buffer.create 256 in
  let esc s =
    let eb = Buffer.create (String.length s) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string eb "\\\""
        | '\\' -> Buffer.add_string eb "\\\\"
        | '\n' -> Buffer.add_string eb "\\n"
        | c when Char.code c < 0x20 ->
            Buffer.add_string eb (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char eb c)
      s;
    Buffer.contents eb
  in
  Buffer.add_string b
    (Printf.sprintf
       "{\"rule_apps\":%d,\"distinct_rules\":%d,\"evar_insts\":%d,\"side_auto\":%d,\"side_manual\":%d,\"memo_hits\":%d,\"memo_saved_apps\":%d,\"rules_used\":{"
       t.rule_apps (distinct_rules t) t.evar_insts t.side_auto t.side_manual
       t.memo_hits t.memo_saved_apps);
  let rules =
    List.sort compare (Hashtbl.fold (fun k v l -> (k, v) :: l) t.rules_used [])
  in
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Printf.sprintf "\"%s\":%d" (esc k) v))
    rules;
  Buffer.add_string b "},\"manual\":[";
  List.iteri
    (fun i (who, what) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf "[\"%s\",\"%s\"]" (esc who) (esc what)))
    (List.rev t.manual_detail);
  Buffer.add_string b "]}";
  Buffer.contents b

let pp ppf t =
  Fmt.pf ppf "rules %d/%d, ∃ %d, ⌜φ⌝ %d/%d" (distinct_rules t) t.rule_apps
    t.evar_insts t.side_auto t.side_manual;
  (* only under --memo, so memo-off output is untouched *)
  if t.memo_hits > 0 then
    Fmt.pf ppf ", memo %d hits (%d apps replayed)" t.memo_hits
      t.memo_saved_apps

(** The Lithium interpreter: goal-directed proof search without
    backtracking (§5).

    The engine is a functor over the language of basic goals and atoms;
    RefinedC instantiates it with its typing judgments.  The interpreter
    is a direct transcription of the seven goal cases of the paper:

    1. [True] succeeds.
    2. [G₁ ∧ G₂] forks (contexts are persistent; the evar store is shared,
       matching Coq's behaviour for evars created before the fork).
    3. [∀x. G] introduces a fresh universal.
    4. [∃x. G] introduces a fresh *sealed* evar.
    5. [F] applies the unique matching typing rule (rules are indexed and
       tried in priority order; the first match commits — no backtracking).
    6. [H ∗ G] decomposes [H]: (a) nested [∗] re-associates, (b) [∃]
       hoists, (c) [⌜φ⌝] becomes a side condition, (d) an atom is matched
       against the unique related atom in Δ, yielding a subsumption goal.
    7. [H -∗ G] decomposes [H] into the contexts: pure facts are
       normalized into Γ (a contradictory fact closes the goal
       vacuously), atoms join Δ.

    One extension mirrors RefinedC's [find_in_context]: the goal form
    {!Goal.Find} locates (and consumes) the atom for a given subject in
    Δ, which is how read/write/call rules obtain the current type of a
    location. *)

open Rc_pure
open Rc_pure.Term
module Goal = Goal

module type LANG = sig
  type f
  type atom

  type env
  (** language-level immutable environment threaded to rules (RefinedC
      uses it for the session's named-type definitions); [unit] for
      languages that need none *)

  val pp_f : Format.formatter -> f -> unit
  val pp_atom : Format.formatter -> atom -> unit

  val head_of_f : f -> string
  (** judgment head, used for rule indexing, stats and certificates *)

  val head_id_of_f : f -> int
  (** the same head as a dense id into {!head_names} — one constructor
      match instead of a string, so the hot-path dispatch is an array
      access rather than a string-keyed hash lookup *)

  val head_names : string array
  (** id ↦ head name; [head_names.(head_id_of_f f) = head_of_f f] *)

  val memo_key_of_f : (term -> term) -> f -> string option
  (** [Some key] iff the judgment is safely memoizable within a run:
      its search behaviour must be fully determined by [key], the
      resolved Δ, and Γ-interactions the engine records as probes.  In
      practice that means judgments whose continuation is implied by
      their own data (RefinedC's ⊢GOTO) rather than captured in a
      closure the printer cannot see.  The function argument resolves
      instantiated evars, so the key reflects the current evar state. *)

  val loc_of_f : f -> Rc_util.Srcloc.t option

  val related : exact:bool -> atom -> atom -> bool
  (** do the two atoms assign a type to the same location/value?  The
      engine first looks for an [exact] subject match; if none exists it
      makes a weak pass, which the language can use for e.g. splitting
      ownership of sub-ranges (O-ADD-UNINIT-style reasoning, §6). *)

  val resolve_atom : (term -> term) -> atom -> atom
  (** map a term-resolution function over the atom *)

  val mk_subsume : atom -> atom -> (f, atom) Goal.goal -> f
  (** the subsumption judgment [A₁ <: A₂ {G}] *)
end

module Make (L : LANG) = struct
  type goal = (L.f, L.atom) Goal.goal
  type left = (L.f, L.atom) Goal.left

  (* ---------------------------------------------------------------- *)
  (* Rules                                                             *)
  (* ---------------------------------------------------------------- *)

  type rule_input = {
    ri_env : L.env;  (** the session's language environment *)
    ri_fresh : ?hint:string -> Sort.t -> term;
    ri_evar : ?hint:string -> Sort.t -> term;
    ri_resolve : term -> term;
    ri_resolve_prop : prop -> prop;
    ri_props : prop list;  (** current Γ, for rules that peek at facts *)
    ri_prove : prop -> bool;
        (** quick default-solver check (not recorded as a side condition);
            used by rules only to pick between *equivalent* premises *)
    ri_peek : (L.atom -> bool) -> L.atom option;
        (** non-consuming Δ lookup, used by rules to dispatch between
            premises according to where ownership currently lives *)
  }

  type rule = {
    rname : string;
    prio : int;  (** lower fires first (§5 footnote: priorities) *)
    heads : string list option;
        (** the judgment heads ({!L.head_of_f}) this rule can fire on;
            [None] means it must be tried on every head.  This is a
            dispatch hint, not a semantic filter: a rule listed under the
            wrong head is simply never offered the goals it matches. *)
    apply : rule_input -> L.f -> goal option;
  }

  type cfg = {
    rules : rule list;  (** indexed by priority and head at [run] *)
    tactics : string list;  (** named solvers enabled ([rc::tactics]) *)
  }

  (* ---------------------------------------------------------------- *)
  (* Rule index                                                        *)
  (* ---------------------------------------------------------------- *)

  (** A compiled rule set: the priority sort and the head buckets are
      computed once and shared by every subsequent [run_indexed] — and,
      read-only from then on, safely shared across checker domains.
      Looking up the rules for a basic goal is O(bucket) instead of
      O(all rules). *)
  type index = {
    idx_buckets : (string, rule list) Hashtbl.t;
        (** head ↦ rules declaring that head plus the wildcard rules,
            in priority order — exactly the subsequence of the sorted
            rule list that can fire on this head *)
    idx_by_id : rule list array;
        (** the same buckets keyed by {!L.head_id_of_f} — the hot-path
            lookup is one array access, no string hashing *)
    idx_wild : rule list;
        (** priority-sorted wildcard rules: the bucket for heads no rule
            declares explicitly *)
    idx_fingerprint : string;
        (** digest of (name, priority, heads) of every rule in order —
            a component of the verification-cache key.  Computed from
            the *final* order, so a profile that reorders ties yields a
            different fingerprint and never shares cache entries with an
            unprofiled run. *)
    idx_size : int;  (** number of rules in the set *)
  }

  (** [index_rules ?profile rules] compiles the rule set.  [profile]
      maps rule names to accumulated application counts ([--pgo]); rules
      with higher counts are tried first — but only within equal-priority
      ties, because the first-match-commits contract (§5) makes rule
      order across priorities semantically significant.  Within a tie
      the rule authors guarantee disjoint guards (checked by lint
      RC-L022), so tie order is a pure performance knob. *)
  let index_rules ?(profile : (string * int) list = []) (rules : rule list) :
      index =
    let hits =
      if profile = [] then fun _ -> 0
      else begin
        let h = Hashtbl.create (List.length profile * 2) in
        List.iter (fun (k, v) -> Hashtbl.replace h k v) profile;
        fun name -> Option.value ~default:0 (Hashtbl.find_opt h name)
      end
    in
    let sorted =
      List.stable_sort
        (fun a b ->
          let c = compare a.prio b.prio in
          if c <> 0 then c else compare (hits b.rname) (hits a.rname))
        rules
    in
    let declared =
      List.concat_map (fun r -> Option.value ~default:[] r.heads) sorted
      |> List.sort_uniq compare
    in
    let bucket_for h =
      List.filter
        (fun r ->
          match r.heads with None -> true | Some hs -> List.mem h hs)
        sorted
    in
    let idx_buckets = Hashtbl.create (List.length declared * 2) in
    List.iter (fun h -> Hashtbl.replace idx_buckets h (bucket_for h)) declared;
    let idx_fingerprint =
      Digest.to_hex
        (Digest.string
           (String.concat ";"
              (List.map
                 (fun r ->
                   Printf.sprintf "%s:%d:%s" r.rname r.prio
                     (match r.heads with
                     | None -> "*"
                     | Some hs -> String.concat "," hs))
                 sorted)))
    in
    let idx_wild = List.filter (fun r -> r.heads = None) sorted in
    let idx_by_id =
      Array.map
        (fun h ->
          match Hashtbl.find_opt idx_buckets h with
          | Some bucket -> bucket
          | None -> idx_wild)
        L.head_names
    in
    {
      idx_buckets;
      idx_by_id;
      idx_wild;
      idx_fingerprint;
      idx_size = List.length sorted;
    }

  let rules_for (idx : index) (head : string) : rule list =
    match Hashtbl.find_opt idx.idx_buckets head with
    | Some bucket -> bucket
    | None -> idx.idx_wild

  (* ---------------------------------------------------------------- *)
  (* Interpreter state                                                 *)
  (* ---------------------------------------------------------------- *)

  type ctx = {
    props : prop list;  (** Γ: pure facts *)
    vars : (string * Sort.t) list;  (** Γ: universals *)
    delta : L.atom list;  (** Δ: owned atoms *)
    trail : string list;  (** branch labels for error messages *)
  }

  let empty_ctx = { props = []; vars = []; delta = []; trail = [] }

  (* ---------------------------------------------------------------- *)
  (* Within-run subgoal memoization                                     *)
  (* ---------------------------------------------------------------- *)

  (** The same ownership obligations recur across the branches of one
      function: every path through a CFG join re-proves the join block's
      suffix, so [k] sequential if/else diamonds re-check the common
      suffix 2^k times.  The memo layer caches *successful* solves of
      memoizable judgments ({!L.memo_key_of_f}) keyed on the judgment's
      printed identity plus the resolved Δ, and replays them on repeat
      visits — turning the 2^k re-checks into O(k).

      Γ is deliberately *not* part of the key (branch rules inject
      branch-distinguishing facts, so exact-Γ keys would never hit at a
      join).  Instead, every Γ interaction the subtree performed —
      side-condition verdicts and rule-level [ri_prove] checks — is
      recorded as a probe and re-validated against the current Γ before
      a hit is accepted; any difference falls back to a fresh solve.
      Each probe stores its hypotheses as a delta above the frame's base
      Γ (contexts only grow by prepending, so the delta is the physical
      prefix), rebased onto the Γ at hit time.

      Only [Ok] results are stored, and only when the subtree
      instantiated no pre-existing evar (tracked by an id watermark
      against {!Evar.t.min_inst}) — an entry must describe a
      self-contained proof whose only external reads went through the
      key or the probes.  On a hit the replay realigns every observable
      side effect: fresh-name and evar-id counters are skipped forward,
      instantiation counts credited, the step budget charged, and the
      recorded per-frame {!Stats.t} merged — so Figure-7 numbers,
      budgets and downstream naming are identical to a memo-off run. *)

  type probe =
    | PSolve of {
        delta : prop list;  (** hypotheses above the frame base *)
        phi : prop;
        verdict : Registry.verdict;
      }
    | PProve of { delta : prop list; phi : prop; result : bool }

  type memo_entry = {
    e_deriv : Deriv.node;
    e_stats : Stats.t;  (** the subtree's counters, frozen at store *)
    e_probes : probe list;  (** chronological *)
    e_names : int;  (** fresh names the subtree drew *)
    e_evar_ids : int;  (** evar ids the subtree allocated *)
    e_insts : int;  (** evar instantiations it performed *)
    e_steps : int;  (** budget steps it consumed *)
    e_loc : Rc_util.Srcloc.t option;
    e_loc_changed : bool;
    e_head : string option;
    e_head_changed : bool;
  }

  (** One open recording: pushed when a memoizable goal misses, popped
      when its subtree completes.  Frames nest (a goto inside a goto);
      probes are recorded into every open frame, each against its own
      base. *)
  type frame = {
    fr_key : int;
    fr_base : prop list;  (** ctx.props at open — the probe-delta base *)
    fr_saved_stats : Stats.t;  (** the enclosing collector, swapped out *)
    fr_names0 : int;
    fr_evar0 : int;  (** evar-id watermark: the store gate *)
    fr_insts0 : int;
    fr_steps0 : int;
    fr_min_saved : int;  (** enclosing [min_inst], restored with min *)
    fr_loc0 : Rc_util.Srcloc.t option;
    fr_head0 : string option;
    mutable fr_probes : probe list;  (** reversed *)
    mutable fr_poisoned : bool;
        (** set when a probe cannot be expressed (base not reachable, or
            an evar-laden [ri_prove]) — solve normally, store nothing *)
  }

  type memo = {
    m_intern : Goal.Intern.t;  (** key strings ↦ dense table ids *)
    m_table : (int, memo_entry) Hashtbl.t;
    m_max : int;  (** stop storing (not hitting) beyond this size *)
    mutable m_frames : frame list;  (** innermost first *)
  }

  (* ---------------------------------------------------------------- *)
  (* Proof-failure forensics                                            *)
  (* ---------------------------------------------------------------- *)

  (** One open basic-goal frame of the forensic goal stack: the goal
      being solved, the bucket rules rejected so far (guards returned
      [None]) and the rule that committed, if any.  Frames exist only
      when forensics are enabled — the disabled path allocates nothing
      per basic goal, mirroring the Obs discipline. *)
  type fx_frame = {
    fxf_goal : L.f;
    mutable fxf_rejected : string list;  (** reversed trial order *)
    mutable fxf_matched : string option;
  }

  (** Per-run forensic recorder: the live basic-goal stack (innermost
      first) and a bounded ring of recent rule applications.  The
      snapshot is taken inside {!fail}, before unwinding pops the
      frames. *)
  type fx_state = {
    fx_lim : Report.fx_limits;
    mutable fx_stack : fx_frame list;
    fx_ring : string array;
    mutable fx_ring_n : int;  (** total pushes; head = n mod size *)
  }

  (** Engine tuning knobs.  [o_memo] is the [--memo] flag; [o_hashcons]
      switches the interned-id head dispatch and exists so the benchmark
      harness can A/B it against the string path — it never changes
      results, only speed.  [o_fx] enables proof-failure forensics
      ([--explain-failure]): a bounded derivation snapshot attached to
      the failure report.  Like the speed knobs it never changes
      verdicts — it only enriches failure diagnostics. *)
  type opts = {
    o_hashcons : bool;
    o_memo : bool;
    o_memo_max : int;
    o_fx : Report.fx_limits option;
  }

  let default_opts =
    { o_hashcons = true; o_memo = false; o_memo_max = 4096; o_fx = None }

  type st = {
    evars : Evar.t;
    mutable stats : Stats.t;
        (** mutable because memo frames swap in a per-frame collector *)
    gen : Rc_util.Gensym.t;
    index : index;
    registry : Registry.t;  (** side-condition discharge configuration *)
    gs : Evar.simp_cfg;  (** goal-simplification configuration *)
    env : L.env;  (** language environment handed to rules *)
    tactics : string list;
    budget : Rc_util.Budget.t;
    obs : Rc_util.Obs.t;
        (** this check's observability handle ({!Rc_util.Obs.off} when
            disabled — every guard below is then one pattern match) *)
    hashcons : bool;  (** dispatch on {!L.head_id_of_f} ids *)
    memo : memo option;  (** [Some] iff within-run memoization is on *)
    fx : fx_state option;  (** [Some] iff forensics capture is on *)
    mutable cur_loc : Rc_util.Srcloc.t option;
    mutable cur_head : string option;  (** head of the last basic goal *)
  }

  let resolve st t = Evar.resolve st.evars t
  let resolve_prop st p = Evar.resolve_prop st.evars p
  let resolve_atom st a = L.resolve_atom (resolve st) a

  (* [st.stats] only holds the innermost frame's counters while memo
     frames are open; diagnostics want the run total. *)
  let total_rule_apps st =
    let base = st.stats.Stats.rule_apps in
    match st.memo with
    | None -> base
    | Some m ->
        List.fold_left
          (fun acc fr -> acc + fr.fr_saved_stats.Stats.rule_apps)
          base m.m_frames

  (** [props_above props base] is the prefix of [props] above [base],
      found by physical equality — contexts only ever grow by prepending,
      so an open frame's base is a tail of every later context in its
      subtree. *)
  let props_above (props : prop list) (base : prop list) : prop list option =
    let rec go acc l =
      if l == base then Some (List.rev acc)
      else match l with [] -> None | p :: rest -> go (p :: acc) rest
    in
    go [] props

  (** Record a Γ interaction into every open memo frame.  [poison] marks
      the interaction as unexpressible (an evar-laden [ri_prove] whose
      result cannot be faithfully revalidated later): the open frames
      still solve normally but will not be stored. *)
  let record_probe st ctx ~(poison : bool) (mk : prop list -> probe) : unit =
    match st.memo with
    | None -> ()
    | Some { m_frames = []; _ } -> ()
    | Some m ->
        List.iter
          (fun fr ->
            if not fr.fr_poisoned then
              if poison then fr.fr_poisoned <- true
              else
                match props_above ctx.props fr.fr_base with
                | None -> fr.fr_poisoned <- true
                | Some delta -> fr.fr_probes <- mk delta :: fr.fr_probes)
          m.m_frames

  let rule_input st ctx =
    {
      ri_env = st.env;
      ri_fresh =
        (fun ?hint s ->
          Var (Rc_util.Gensym.fresh ?hint st.gen, s));
      ri_evar = (fun ?hint s -> Evar.fresh ?hint:(Some (Option.value ~default:"x" hint)) st.evars s);
      ri_resolve = resolve st;
      ri_resolve_prop = resolve_prop st;
      ri_props = ctx.props;
      ri_prove =
        (fun p ->
          let phi = resolve_prop st p in
          let result = Registry.default_prove st.registry ~hyps:ctx.props phi in
          (* an evar-laden check cannot be revalidated at a later hit
             site (the frame-local evar ids differ), so it poisons the
             open frames instead of becoming a probe *)
          record_probe st ctx ~poison:(has_evars_prop phi) (fun delta ->
              PProve { delta; phi; result });
          result);
      ri_peek =
        (fun pred -> List.find_opt (fun a -> pred (resolve_atom st a)) ctx.delta);
    }

  let pp_delta ctx =
    List.map (fun a -> Fmt.str "%a" L.pp_atom a) ctx.delta
    @ List.map (fun p -> Fmt.str "⌜%a⌝" Term.pp_prop p) ctx.props

  (* ---------------------------------------------------------------- *)
  (* Forensic capture                                                   *)
  (* ---------------------------------------------------------------- *)

  (* [fx_push]/[fx_pop] bracket each basic-goal solve; the caller pops
     on both the success and the exception path — the snapshot is taken
     inside {!fail} *before* unwinding, so the stack is intact there. *)
  let fx_push st (f : L.f) : fx_frame option =
    match st.fx with
    | None -> None
    | Some fx ->
        let fr = { fxf_goal = f; fxf_rejected = []; fxf_matched = None } in
        fx.fx_stack <- fr :: fx.fx_stack;
        Some fr

  let fx_pop st =
    match st.fx with
    | None -> ()
    | Some fx -> (
        match fx.fx_stack with
        | _ :: rest -> fx.fx_stack <- rest
        | [] -> ())

  let fx_record_rejected (fr : fx_frame option) rname =
    match fr with
    | None -> ()
    | Some fr -> fr.fxf_rejected <- rname :: fr.fxf_rejected

  let fx_record_matched st (fr : fx_frame option) rname =
    match (st.fx, fr) with
    | Some fx, Some fr ->
        fr.fxf_matched <- Some rname;
        let size = Array.length fx.fx_ring in
        if size > 0 then begin
          fx.fx_ring.(fx.fx_ring_n mod size) <- rname;
          fx.fx_ring_n <- fx.fx_ring_n + 1
        end
    | _ -> ()

  (** Keep the first [keep - keep/2] and last [keep/2] of [l], with the
      elided middle count — both the root and the failure frontier stay
      visible however deep the stack was. *)
  let bound_middle keep (l : 'a list) : 'a list * int =
    let n = List.length l in
    if n <= keep then (l, 0)
    else begin
      let head_keep = keep - (keep / 2) in
      let tail_keep = keep - head_keep in
      let kept =
        List.filteri (fun i _ -> i < head_keep || i >= n - tail_keep) l
      in
      (kept, n - keep)
    end

  (** The committed rule's rejection reason: first-match-commits means
      the failure happened *inside* its premise, and the failure kind
      says how. *)
  let fx_reason_of_kind (kind : Report.kind) : string =
    match kind with
    | Report.Unsolved_side_condition p ->
        Fmt.str "side condition unsolved: %s (solver verdict: unsolved)"
          (prop_to_string p)
    | Report.Evar_stuck p ->
        Fmt.str "side condition stuck on uninstantiated evars: %s"
          (prop_to_string p)
    | Report.No_rule_applies _ -> "no rule in the subgoal's bucket applied"
    | Report.No_ownership a -> "subgoal failed: no ownership for " ^ a
    | Report.Resource_exhausted { exh; _ } ->
        "subgoal exhausted the budget: "
        ^ Rc_util.Budget.exhaustion_label exh
    | Report.Frontend _ | Report.Checker_fault _ | Report.Transient_fault _
      ->
        "subgoal failed"

  (** One printed line per evar entry: hint, id, sort and the resolved
      instantiation (or its sealed/uninstantiated status). *)
  let fx_evar_lines st lim : string list * int =
    let entries =
      Hashtbl.fold (fun id e acc -> (id, e) :: acc) st.evars.Evar.entries []
      |> List.sort (fun (a, _) (b, _) -> compare a b)
    in
    let n = List.length entries in
    let keep = lim.Report.fxl_evars in
    let elided = if n > keep then n - keep else 0 in
    let kept = List.filteri (fun i _ -> i >= elided) entries in
    let line (id, (e : Evar.entry)) =
      let status =
        match e.Evar.inst with
        | Some t ->
            " := " ^ term_to_string (Evar.resolve st.evars t)
        | None ->
            if e.Evar.sealed then " (sealed, uninstantiated)"
            else " (uninstantiated)"
      in
      Fmt.str "?%s#%d : %s%s" e.Evar.e_hint id
        (Sort.to_string e.Evar.e_sort)
        status
    in
    (List.map line kept, elided)

  (** Assemble the bounded derivation snapshot at the point of failure
      (the frames are still on the stack; unwinding pops them after). *)
  let fx_snapshot st (fx : fx_state) (kind : Report.kind) : Report.forensics
      =
    let lim = fx.fx_lim in
    let frames = List.rev fx.fx_stack in
    let goal_stack, stack_elided =
      bound_middle lim.Report.fxl_depth
        (List.map (fun fr -> Fmt.str "%a" L.pp_f fr.fxf_goal) frames)
    in
    let candidates, cand_elided =
      match fx.fx_stack with
      | [] -> ([], 0)
      | innermost :: _ ->
          let rejected =
            List.rev_map (fun r -> (r, "guard failed")) innermost.fxf_rejected
          in
          let n = List.length rejected in
          let keep = lim.Report.fxl_width in
          let rejected, elided =
            if n <= keep then (rejected, 0)
            else (List.filteri (fun i _ -> i < keep) rejected, n - keep)
          in
          let matched =
            match innermost.fxf_matched with
            | Some r -> [ (r, fx_reason_of_kind kind) ]
            | None -> []
          in
          (rejected @ matched, elided)
    in
    let evars, evars_elided = fx_evar_lines st lim in
    let ring_size = Array.length fx.fx_ring in
    let recent =
      if ring_size = 0 || fx.fx_ring_n = 0 then []
      else begin
        let count = min fx.fx_ring_n ring_size in
        List.init count (fun i ->
            fx.fx_ring.((fx.fx_ring_n - count + i) mod ring_size))
      end
    in
    {
      Report.fx_goal_stack = goal_stack;
      fx_goal_stack_elided = stack_elided;
      fx_stuck_head = st.cur_head;
      fx_candidates = candidates;
      fx_candidates_elided = cand_elided;
      fx_evars = evars;
      fx_evars_elided = evars_elided;
      fx_recent_rules = recent;
    }

  let fail st ctx kind =
    let forensics =
      match st.fx with
      | None -> None
      | Some fx -> Some (fx_snapshot st fx kind)
    in
    Report.fail ?loc:st.cur_loc ~trail:ctx.trail ~context:(pp_delta ctx)
      ?forensics kind

  (* budget exhaustion: abort the search with a structured diagnostic
     recording where it stood (§5's predictability, made enforceable) *)
  let exhausted st ctx (exh : Rc_util.Budget.exhaustion) =
    if Rc_util.Obs.on st.obs then begin
      let label = Rc_util.Budget.exhaustion_label exh in
      Rc_util.Obs.counter st.obs ("budget." ^ label);
      Rc_util.Obs.instant st.obs ~cat:"budget"
        ~args:
          [
            ("goal_head", Option.value ~default:"?" st.cur_head);
            ("rule_apps", string_of_int (total_rule_apps st));
          ]
        ("budget:" ^ label)
    end;
    fail st ctx
      (Report.Resource_exhausted
         {
           exh;
           goal_head = st.cur_head;
           rule_apps = total_rule_apps st;
           elapsed = Rc_util.Budget.elapsed st.budget;
         })

  let check_budget st ctx =
    match Rc_util.Budget.step st.budget with
    | Some ex -> exhausted st ctx ex
    | None -> ()

  (* ---------------------------------------------------------------- *)
  (* Memo frames                                                       *)
  (* ---------------------------------------------------------------- *)

  (** The interned memo key for a basic goal, or [None] when the
      judgment is not memoizable.  The key is the judgment's own printed
      identity ({!L.memo_key_of_f}, evars resolved) plus the resolved Δ
      in order — order matters because context lookup takes the first
      related atom.  When the budget bounds recursion depth the current
      depth joins the key, since the subtree's depth checks then depend
      on where it starts. *)
  let memo_key st (m : memo) (depth : int) ctx (f : L.f) : int option =
    match L.memo_key_of_f (resolve st) f with
    | None -> None
    | Some mk ->
        let b = Buffer.create 256 in
        Buffer.add_string b mk;
        List.iter
          (fun a ->
            Buffer.add_char b '|';
            Buffer.add_string b (Fmt.str "%a" L.pp_atom (resolve_atom st a)))
          ctx.delta;
        (match Rc_util.Budget.depth_limit st.budget with
        | Some _ -> Buffer.add_string b (Printf.sprintf "|d%d" depth)
        | None -> ());
        Some (Goal.Intern.id m.m_intern (Buffer.contents b))

  (** Re-check every Γ interaction of a candidate entry against the
      current Γ.  Runs without observers and records nothing: a passing
      validation must leave no trace of its own (the entry's recorded
      stats and probes are replayed separately), and a failing one falls
      back to a fresh solve. *)
  let memo_validate st ctx (e : memo_entry) : bool =
    List.for_all
      (fun p ->
        match p with
        | PSolve { delta; phi; verdict } ->
            Registry.solve st.registry ~obs:Rc_util.Obs.off
              ~tactics:st.tactics ~hyps:(delta @ ctx.props) phi
            = verdict
        | PProve { delta; phi; result } ->
            Registry.default_prove st.registry ~hyps:(delta @ ctx.props) phi
            = result)
      e.e_probes

  let memo_open st (m : memo) (key : int) ctx : frame =
    let fr =
      {
        fr_key = key;
        fr_base = ctx.props;
        fr_saved_stats = st.stats;
        fr_names0 = Rc_util.Gensym.count st.gen;
        fr_evar0 = Evar.next_id st.evars;
        fr_insts0 = st.evars.Evar.instantiations;
        fr_steps0 = Rc_util.Budget.steps st.budget;
        fr_min_saved = st.evars.Evar.min_inst;
        fr_loc0 = st.cur_loc;
        fr_head0 = st.cur_head;
        fr_probes = [];
        fr_poisoned = false;
      }
    in
    st.stats <- Stats.create ();
    st.evars.Evar.min_inst <- max_int;
    m.m_frames <- fr :: m.m_frames;
    fr

  (* Merge the frame's counters back into the enclosing collector and
     restore the instantiation watermark, propagating the frame-period
     minimum so outer frames still see instantiations made inside. *)
  let memo_pop st (m : memo) (fr : frame) : Stats.t =
    (match m.m_frames with
    | top :: rest when top == fr -> m.m_frames <- rest
    | _ -> invalid_arg "Engine.memo_pop: frame stack out of order");
    let child = st.stats in
    st.stats <- fr.fr_saved_stats;
    Stats.merge st.stats child;
    st.evars.Evar.min_inst <- min fr.fr_min_saved st.evars.Evar.min_inst;
    child

  let memo_abort st (m : memo) (fr : frame) : unit =
    ignore (memo_pop st m fr)

  (** Close a successfully solved frame and store its entry — unless the
      frame was poisoned, the subtree instantiated a pre-existing evar
      (its proof then depends on state the key cannot see), or the table
      is full. *)
  let memo_close st (m : memo) (fr : frame) (d : Deriv.node) : unit =
    let frame_min = st.evars.Evar.min_inst in
    let child = memo_pop st m fr in
    let storable =
      (not fr.fr_poisoned)
      && frame_min >= fr.fr_evar0
      && Hashtbl.length m.m_table < m.m_max
    in
    if storable then begin
      Hashtbl.replace m.m_table fr.fr_key
        {
          e_deriv = d;
          e_stats = child;
          e_probes = List.rev fr.fr_probes;
          e_names = Rc_util.Gensym.count st.gen - fr.fr_names0;
          e_evar_ids = Evar.next_id st.evars - fr.fr_evar0;
          e_insts = st.evars.Evar.instantiations - fr.fr_insts0;
          e_steps = Rc_util.Budget.steps st.budget - fr.fr_steps0;
          e_loc = st.cur_loc;
          e_loc_changed = st.cur_loc <> fr.fr_loc0;
          e_head = st.cur_head;
          e_head_changed = st.cur_head <> fr.fr_head0;
        };
      if Rc_util.Obs.on st.obs then Rc_util.Obs.counter st.obs "memo.store"
    end

  (** Replay a validated entry: realign every observable side effect the
      subsumed search would have had, then return its derivation. *)
  let memo_hit st (m : memo) ctx (e : memo_entry) : Deriv.node =
    if Rc_util.Obs.on st.obs then Rc_util.Obs.counter st.obs "memo.hit";
    (* rebase the entry's probes into the enclosing recordings: a frame
       stored from here must revalidate them too, against its own base *)
    if e.e_probes <> [] then
      List.iter
        (fun fr ->
          if not fr.fr_poisoned then
            match props_above ctx.props fr.fr_base with
            | None -> fr.fr_poisoned <- true
            | Some outer ->
                List.iter
                  (fun p ->
                    let p' =
                      match p with
                      | PSolve r -> PSolve { r with delta = r.delta @ outer }
                      | PProve r -> PProve { r with delta = r.delta @ outer }
                    in
                    fr.fr_probes <- p' :: fr.fr_probes)
                  e.e_probes)
        m.m_frames;
    Rc_util.Gensym.skip st.gen e.e_names;
    Evar.skip_ids st.evars e.e_evar_ids;
    Evar.credit_instantiations st.evars e.e_insts;
    (* the Figure-7 columns merge additively (a replay must report
       exactly what re-solving would have), but the memo counters are
       *live-site* diagnostics: one replay event here, subsuming the
       entry's (fully expanded) applications.  The entry's own recorded
       counters must not compound through nested replays — that would
       let "saved" exceed the total and make hit counts exponential in
       the nesting depth. *)
    let hits0 = st.stats.Stats.memo_hits
    and saved0 = st.stats.Stats.memo_saved_apps in
    Stats.merge st.stats e.e_stats;
    st.stats.Stats.memo_hits <- hits0 + 1;
    st.stats.Stats.memo_saved_apps <- saved0 + e.e_stats.Stats.rule_apps;
    if e.e_loc_changed then st.cur_loc <- e.e_loc;
    if e.e_head_changed then st.cur_head <- e.e_head;
    (match Rc_util.Budget.charge st.budget e.e_steps with
    | Some ex -> exhausted st ctx ex
    | None -> ());
    e.e_deriv

  (* ---------------------------------------------------------------- *)
  (* Side conditions (goal case 6c + evar heuristics of §5)            *)
  (* ---------------------------------------------------------------- *)

  let rec discharge st ctx (phi : prop) : (prop * Registry.verdict) list =
    (* the simplification/unification heuristics recurse too: they burn
       budget so a divergent simp loop cannot hang the checker *)
    check_budget st ctx;
    let phi =
      Simp.simp_prop ~hooks:st.registry.Registry.hooks (resolve_prop st phi)
    in
    match phi with
    | PTrue -> []
    | PAnd (a, b) -> discharge st ctx a @ discharge st ctx b
    | _ ->
        if has_evars_prop phi then begin
          (* Heuristic 1: equalities are discharged by unification with the
             seals removed. *)
          let unified =
            match phi with
            | PEq (a, b) -> Evar.unify ~unseal:true st.evars a b
            | _ -> false
          in
          if unified then
            [
              ( Simp.simp_prop ~hooks:st.registry.Registry.hooks
                  (resolve_prop st phi),
                Registry.Auto );
            ]
          else
            (* Heuristic 2: goal simplification rules. *)
            match Evar.apply_goal_simp ~cfg:st.gs st.evars phi with
            | Evar.Progress phi' -> discharge st ctx phi'
            | Evar.NoProgress ->
                fail st ctx (Report.Evar_stuck phi)
        end
        else
          let verdict =
            Registry.solve st.registry ~obs:st.obs ~tactics:st.tactics
              ~hyps:ctx.props phi
          in
          (match verdict with
          | Registry.Unsolved ->
              fail st ctx (Report.Unsolved_side_condition phi)
          | v -> Stats.record_side st.stats v (prop_to_string phi));
          record_probe st ctx ~poison:false (fun delta ->
              PSolve { delta; phi; verdict });
          if Rc_util.Obs.on st.obs then
            Rc_util.Obs.counter st.obs
              (match verdict with
              | Registry.Auto -> "side.auto"
              | _ -> "side.manual");
          [ (phi, verdict) ]

  (* ---------------------------------------------------------------- *)
  (* The interpreter                                                   *)
  (* ---------------------------------------------------------------- *)

  let rec solve (st : st) (depth : int) (ctx : ctx) (g : goal) : Deriv.node =
    (* every goal step pays one unit of fuel and re-checks the deadline
       and the depth bound; exhaustion raises a structured report *)
    check_budget st ctx;
    (match Rc_util.Budget.check_depth st.budget depth with
    | Some ex -> exhausted st ctx ex
    | None -> ());
    let solve ctx g = solve st (depth + 1) ctx g in
    match g with
    (* case 1 *)
    | Goal.True_ -> Deriv.make "done" []
    (* case 2 *)
    | Goal.AndG branches ->
        let children =
          List.map
            (fun (label, g) ->
              let ctx =
                match label with
                | Some l -> { ctx with trail = l :: ctx.trail }
                | None -> ctx
              in
              let d = solve ctx g in
              match label with
              | Some l -> Deriv.make ~info:l "branch" [ d ]
              | None -> d)
            branches
        in
        Deriv.make "and" children
    (* case 3 *)
    | Goal.All (x, s, body) ->
        let y = Rc_util.Gensym.fresh ~hint:x st.gen in
        let ctx = { ctx with vars = (y, s) :: ctx.vars } in
        let d = solve ctx (body (Var (y, s))) in
        Deriv.make ~info:(Rc_util.Gensym.base y) "intro-forall" [ d ]
    (* case 4 *)
    | Goal.Ex (x, s, body) ->
        let e = Evar.fresh ~hint:x st.evars s in
        let d = solve ctx (body e) in
        Deriv.make ~info:(term_to_string (resolve st e)) "intro-exists" [ d ]
    (* case 5 *)
    | Goal.Basic f -> begin
        match st.memo with
        | None -> solve_basic st depth ctx f
        | Some m -> (
            match memo_key st m depth ctx f with
            | None -> solve_basic st depth ctx f
            | Some key -> (
                match Hashtbl.find_opt m.m_table key with
                | Some e when memo_validate st ctx e -> memo_hit st m ctx e
                | found ->
                    (if Rc_util.Obs.on st.obs then
                       Rc_util.Obs.counter st.obs
                         (match found with
                         | None -> "memo.miss"
                         | Some _ -> "memo.invalid"));
                    let fr = memo_open st m key ctx in
                    (match solve_basic st depth ctx f with
                    | d ->
                        memo_close st m fr d;
                        d
                    | exception ex ->
                        memo_abort st m fr;
                        raise ex)))
      end
    (* case 6 *)
    | Goal.Star (h, g') -> begin
        match h with
        | Goal.LTrue -> solve ctx g'
        | Goal.LStar (h1, h2) -> solve ctx (Goal.Star (h1, Goal.Star (h2, g')))
        | Goal.LEx (x, s, body) ->
            solve ctx (Goal.Ex (x, s, fun t -> Goal.Star (body t, g')))
        | Goal.LProp phi ->
            let side = discharge st ctx phi in
            (* proven facts strengthen Γ for later side conditions *)
            let ctx =
              { ctx with props = List.map fst side @ ctx.props }
            in
            let d = solve ctx g' in
            Deriv.make ~side ~hyps:ctx.props ~tactics:st.tactics
              ?loc:st.cur_loc "side-condition" [ d ]
        | Goal.LAtom a ->
            let a = resolve_atom st a in
            let found =
              match
                Rc_util.Xlist.find_remove
                  (fun a' -> L.related ~exact:true (resolve_atom st a') a)
                  ctx.delta
              with
              | Some r -> Some r
              | None ->
                  Rc_util.Xlist.find_remove
                    (fun a' -> L.related ~exact:false (resolve_atom st a') a)
                    ctx.delta
            in
            (match found with
            | None ->
                fail st ctx (Report.No_ownership (Fmt.str "%a" L.pp_atom a))
            | Some (a', delta) ->
                let ctx = { ctx with delta } in
                let d =
                  solve ctx (Goal.Basic (L.mk_subsume (resolve_atom st a') a g'))
                in
                Deriv.make
                  ~info:(Fmt.str "%a <: %a" L.pp_atom a' L.pp_atom a)
                  "ctx-lookup" [ d ])
      end
    (* case 7 *)
    | Goal.Wand (h, g') -> begin
        match h with
        | Goal.LTrue -> solve ctx g'
        | Goal.LStar (h1, h2) -> solve ctx (Goal.Wand (h1, Goal.Wand (h2, g')))
        | Goal.LEx (x, s, body) ->
            solve ctx (Goal.All (x, s, fun t -> Goal.Wand (body t, g')))
        | Goal.LProp phi -> begin
            let hooks = st.registry.Registry.hooks in
            let phi = Simp.simp_prop ~hooks (resolve_prop st phi) in
            match Simp.destruct_hyp ~hooks phi with
            | None ->
                (* contradictory hypothesis: goal holds vacuously *)
                Deriv.make ~info:(prop_to_string phi) "vacuous" []
            | Some hyps ->
                let ctx = { ctx with props = hyps @ ctx.props } in
                let d = solve ctx g' in
                Deriv.make ~info:(prop_to_string phi) "intro-hyp" [ d ]
          end
        | Goal.LAtom a ->
            let a = resolve_atom st a in
            let ctx = { ctx with delta = a :: ctx.delta } in
            let d = solve ctx g' in
            Deriv.make ~info:(Fmt.str "%a" L.pp_atom a) "intro-atom" [ d ]
      end
    | Goal.FindOpt { descr; pred; cont } -> (
        match
          Rc_util.Xlist.find_remove
            (fun a -> pred (resolve st) (resolve_atom st a))
            ctx.delta
        with
        | None ->
            let d = solve ctx (cont None) in
            Deriv.make ~info:(descr ^ " (absent)") "find-opt" [ d ]
        | Some (a, delta) ->
            let a = resolve_atom st a in
            let ctx = { ctx with delta } in
            let d = solve ctx (cont (Some a)) in
            Deriv.make ~info:(Fmt.str "%a" L.pp_atom a) "find-opt" [ d ])
    (* find_in_context extension *)
    | Goal.Find { descr; pred; cont } ->
        let found =
          Rc_util.Xlist.find_remove
            (fun a -> pred (resolve st) (resolve_atom st a))
            ctx.delta
        in
        (match found with
        | None -> fail st ctx (Report.No_ownership descr)
        | Some (a, delta) ->
            let a = resolve_atom st a in
            let ctx = { ctx with delta } in
            let d = solve ctx (cont a) in
            Deriv.make ~info:(Fmt.str "%a" L.pp_atom a) "find" [ d ])

  (* goal case 5 proper: rule lookup and first-match-commits application *)
  and solve_basic (st : st) (depth : int) (ctx : ctx) (f : L.f) : Deriv.node =
    (match L.loc_of_f f with Some l -> st.cur_loc <- Some l | None -> ());
    let bucket, head =
      if st.hashcons then begin
        let id = L.head_id_of_f f in
        (st.index.idx_by_id.(id), L.head_names.(id))
      end
      else
        let head = L.head_of_f f in
        (rules_for st.index head, head)
    in
    st.cur_head <- Some head;
    Rc_util.Faultsim.point st.registry.Registry.fault "rule_lookup";
    let ri = rule_input st ctx in
    let fr = fx_push st f in
    let rec try_rules = function
      | [] -> fail st ctx (Report.No_rule_applies (Fmt.str "%a" L.pp_f f))
      | r :: rest -> (
          match r.apply ri f with
          | Some premise ->
              Stats.record_rule st.stats r.rname;
              fx_record_matched st fr r.rname;
              let d =
                if Rc_util.Obs.on st.obs then begin
                  (* span over the whole premise solve: the browsable
                     proof-search tree.  Self-time (span minus nested
                     rule spans) feeds the profiler; the exception
                     handler keeps the trace balanced when a nested
                     goal fails or exhausts its budget. *)
                  let name = "rule:" ^ r.rname in
                  Rc_util.Obs.counter st.obs ("rule.apps." ^ r.rname);
                  Rc_util.Obs.enter_span st.obs ~cat:"rule"
                    ~key:("rule.self_ns." ^ r.rname)
                    ~args:[ ("head", head) ]
                    name;
                  match solve st (depth + 1) ctx premise with
                  | d ->
                      Rc_util.Obs.exit_span st.obs ~cat:"rule" name;
                      d
                  | exception e ->
                      Rc_util.Obs.exit_span st.obs ~cat:"rule" name;
                      raise e
                end
                else solve st (depth + 1) ctx premise
              in
              Deriv.make
                ~info:(Fmt.str "%a" L.pp_f f)
                ?loc:(L.loc_of_f f)
                ("rule:" ^ r.rname) [ d ]
          | None ->
              fx_record_rejected fr r.rname;
              try_rules rest)
    in
    match try_rules bucket with
    | d ->
        fx_pop st;
        d
    | exception e ->
        (* the snapshot (if any) was taken inside [fail] with the stack
           intact; unwinding just keeps the stack consistent for any
           enclosing handler *)
        fx_pop st;
        raise e

  (* ---------------------------------------------------------------- *)
  (* Entry point                                                       *)
  (* ---------------------------------------------------------------- *)

  type result = {
    deriv : Deriv.node;
    stats : Stats.t;
  }

  let run_indexed (index : index) ?(registry = Registry.default)
      ?(gs = Evar.default_simp_cfg) ~(env : L.env) ~(tactics : string list)
      ?(budget = Rc_util.Budget.unlimited) ?(obs = Rc_util.Obs.off)
      ?(opts = default_opts) ?(ctx = empty_ctx) (g : goal) :
      (result, Report.t) Stdlib.result =
    let st =
      {
        evars = Evar.create ?fault:registry.Registry.fault ~obs ();
        stats = Stats.create ();
        gen = Rc_util.Gensym.create ();
        index;
        registry;
        gs;
        env;
        tactics;
        budget = Rc_util.Budget.start budget;
        obs;
        hashcons = opts.o_hashcons;
        memo =
          (if opts.o_memo then
             Some
               {
                 m_intern = Goal.Intern.create ();
                 m_table = Hashtbl.create 256;
                 m_max = opts.o_memo_max;
                 m_frames = [];
               }
           else None);
        fx =
          (match opts.o_fx with
          | None -> None
          | Some lim ->
              Some
                {
                  fx_lim = lim;
                  fx_stack = [];
                  fx_ring =
                    Array.make (max 0 lim.Report.fxl_recent) "";
                  fx_ring_n = 0;
                });
        cur_loc = None;
        cur_head = None;
      }
    in
    match solve st 0 ctx g with
    | d ->
        st.stats.Stats.evar_insts <- st.evars.Evar.instantiations;
        Ok { deriv = d; stats = st.stats }
    | exception Report.Error e -> Error e
    | exception Stack_overflow ->
        (* catch here (rather than only in the driver) so the diagnostic
           still carries the source location of the judgment in flight *)
        Error
          (Report.make ?loc:st.cur_loc
             (Report.Checker_fault "Stack_overflow during proof search"))

  (** One-shot entry point: indexes [cfg.rules] and runs.  Callers that
      check many functions against the same rule set should build the
      {!index} once ({!index_rules}) and use {!run_indexed}. *)
  let run (cfg : cfg) ?registry ?gs ~(env : L.env) ?budget ?ctx (g : goal) :
      (result, Report.t) Stdlib.result =
    run_indexed (index_rules cfg.rules) ?registry ?gs ~env ~tactics:cfg.tactics
      ?budget ?ctx g
end

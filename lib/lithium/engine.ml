(** The Lithium interpreter: goal-directed proof search without
    backtracking (§5).

    The engine is a functor over the language of basic goals and atoms;
    RefinedC instantiates it with its typing judgments.  The interpreter
    is a direct transcription of the seven goal cases of the paper:

    1. [True] succeeds.
    2. [G₁ ∧ G₂] forks (contexts are persistent; the evar store is shared,
       matching Coq's behaviour for evars created before the fork).
    3. [∀x. G] introduces a fresh universal.
    4. [∃x. G] introduces a fresh *sealed* evar.
    5. [F] applies the unique matching typing rule (rules are indexed and
       tried in priority order; the first match commits — no backtracking).
    6. [H ∗ G] decomposes [H]: (a) nested [∗] re-associates, (b) [∃]
       hoists, (c) [⌜φ⌝] becomes a side condition, (d) an atom is matched
       against the unique related atom in Δ, yielding a subsumption goal.
    7. [H -∗ G] decomposes [H] into the contexts: pure facts are
       normalized into Γ (a contradictory fact closes the goal
       vacuously), atoms join Δ.

    One extension mirrors RefinedC's [find_in_context]: the goal form
    {!Goal.Find} locates (and consumes) the atom for a given subject in
    Δ, which is how read/write/call rules obtain the current type of a
    location. *)

open Rc_pure
open Rc_pure.Term
module Goal = Goal

module type LANG = sig
  type f
  type atom

  type env
  (** language-level immutable environment threaded to rules (RefinedC
      uses it for the session's named-type definitions); [unit] for
      languages that need none *)

  val pp_f : Format.formatter -> f -> unit
  val pp_atom : Format.formatter -> atom -> unit

  val head_of_f : f -> string
  (** judgment head, used for rule indexing, stats and certificates *)

  val loc_of_f : f -> Rc_util.Srcloc.t option

  val related : exact:bool -> atom -> atom -> bool
  (** do the two atoms assign a type to the same location/value?  The
      engine first looks for an [exact] subject match; if none exists it
      makes a weak pass, which the language can use for e.g. splitting
      ownership of sub-ranges (O-ADD-UNINIT-style reasoning, §6). *)

  val resolve_atom : (term -> term) -> atom -> atom
  (** map a term-resolution function over the atom *)

  val mk_subsume : atom -> atom -> (f, atom) Goal.goal -> f
  (** the subsumption judgment [A₁ <: A₂ {G}] *)
end

module Make (L : LANG) = struct
  type goal = (L.f, L.atom) Goal.goal
  type left = (L.f, L.atom) Goal.left

  (* ---------------------------------------------------------------- *)
  (* Rules                                                             *)
  (* ---------------------------------------------------------------- *)

  type rule_input = {
    ri_env : L.env;  (** the session's language environment *)
    ri_fresh : ?hint:string -> Sort.t -> term;
    ri_evar : ?hint:string -> Sort.t -> term;
    ri_resolve : term -> term;
    ri_resolve_prop : prop -> prop;
    ri_props : prop list;  (** current Γ, for rules that peek at facts *)
    ri_prove : prop -> bool;
        (** quick default-solver check (not recorded as a side condition);
            used by rules only to pick between *equivalent* premises *)
    ri_peek : (L.atom -> bool) -> L.atom option;
        (** non-consuming Δ lookup, used by rules to dispatch between
            premises according to where ownership currently lives *)
  }

  type rule = {
    rname : string;
    prio : int;  (** lower fires first (§5 footnote: priorities) *)
    heads : string list option;
        (** the judgment heads ({!L.head_of_f}) this rule can fire on;
            [None] means it must be tried on every head.  This is a
            dispatch hint, not a semantic filter: a rule listed under the
            wrong head is simply never offered the goals it matches. *)
    apply : rule_input -> L.f -> goal option;
  }

  type cfg = {
    rules : rule list;  (** indexed by priority and head at [run] *)
    tactics : string list;  (** named solvers enabled ([rc::tactics]) *)
  }

  (* ---------------------------------------------------------------- *)
  (* Rule index                                                        *)
  (* ---------------------------------------------------------------- *)

  (** A compiled rule set: the priority sort and the head buckets are
      computed once and shared by every subsequent [run_indexed] — and,
      read-only from then on, safely shared across checker domains.
      Looking up the rules for a basic goal is O(bucket) instead of
      O(all rules). *)
  type index = {
    idx_buckets : (string, rule list) Hashtbl.t;
        (** head ↦ rules declaring that head plus the wildcard rules,
            in priority order — exactly the subsequence of the sorted
            rule list that can fire on this head *)
    idx_wild : rule list;
        (** priority-sorted wildcard rules: the bucket for heads no rule
            declares explicitly *)
    idx_fingerprint : string;
        (** digest of (name, priority, heads) of every rule in order —
            a component of the verification-cache key *)
    idx_size : int;  (** number of rules in the set *)
  }

  let index_rules (rules : rule list) : index =
    let sorted =
      List.stable_sort (fun a b -> compare a.prio b.prio) rules
    in
    let declared =
      List.concat_map (fun r -> Option.value ~default:[] r.heads) sorted
      |> List.sort_uniq compare
    in
    let bucket_for h =
      List.filter
        (fun r ->
          match r.heads with None -> true | Some hs -> List.mem h hs)
        sorted
    in
    let idx_buckets = Hashtbl.create (List.length declared * 2) in
    List.iter (fun h -> Hashtbl.replace idx_buckets h (bucket_for h)) declared;
    let idx_fingerprint =
      Digest.to_hex
        (Digest.string
           (String.concat ";"
              (List.map
                 (fun r ->
                   Printf.sprintf "%s:%d:%s" r.rname r.prio
                     (match r.heads with
                     | None -> "*"
                     | Some hs -> String.concat "," hs))
                 sorted)))
    in
    {
      idx_buckets;
      idx_wild = List.filter (fun r -> r.heads = None) sorted;
      idx_fingerprint;
      idx_size = List.length sorted;
    }

  let rules_for (idx : index) (head : string) : rule list =
    match Hashtbl.find_opt idx.idx_buckets head with
    | Some bucket -> bucket
    | None -> idx.idx_wild

  (* ---------------------------------------------------------------- *)
  (* Interpreter state                                                 *)
  (* ---------------------------------------------------------------- *)

  type ctx = {
    props : prop list;  (** Γ: pure facts *)
    vars : (string * Sort.t) list;  (** Γ: universals *)
    delta : L.atom list;  (** Δ: owned atoms *)
    trail : string list;  (** branch labels for error messages *)
  }

  let empty_ctx = { props = []; vars = []; delta = []; trail = [] }

  type st = {
    evars : Evar.t;
    stats : Stats.t;
    gen : Rc_util.Gensym.t;
    index : index;
    registry : Registry.t;  (** side-condition discharge configuration *)
    gs : Evar.simp_cfg;  (** goal-simplification configuration *)
    env : L.env;  (** language environment handed to rules *)
    tactics : string list;
    budget : Rc_util.Budget.t;
    obs : Rc_util.Obs.t;
        (** this check's observability handle ({!Rc_util.Obs.off} when
            disabled — every guard below is then one pattern match) *)
    mutable cur_loc : Rc_util.Srcloc.t option;
    mutable cur_head : string option;  (** head of the last basic goal *)
  }

  let resolve st t = Evar.resolve st.evars t
  let resolve_prop st p = Evar.resolve_prop st.evars p
  let resolve_atom st a = L.resolve_atom (resolve st) a

  let rule_input st ctx =
    {
      ri_env = st.env;
      ri_fresh =
        (fun ?hint s ->
          Var (Rc_util.Gensym.fresh ?hint st.gen, s));
      ri_evar = (fun ?hint s -> Evar.fresh ?hint:(Some (Option.value ~default:"x" hint)) st.evars s);
      ri_resolve = resolve st;
      ri_resolve_prop = resolve_prop st;
      ri_props = ctx.props;
      ri_prove =
        (fun p ->
          Registry.default_prove st.registry ~hyps:ctx.props
            (resolve_prop st p));
      ri_peek =
        (fun pred -> List.find_opt (fun a -> pred (resolve_atom st a)) ctx.delta);
    }

  let pp_delta ctx =
    List.map (fun a -> Fmt.str "%a" L.pp_atom a) ctx.delta
    @ List.map (fun p -> Fmt.str "⌜%a⌝" Term.pp_prop p) ctx.props

  let fail st ctx kind =
    Report.fail ?loc:st.cur_loc ~trail:ctx.trail ~context:(pp_delta ctx) kind

  (* budget exhaustion: abort the search with a structured diagnostic
     recording where it stood (§5's predictability, made enforceable) *)
  let exhausted st ctx (exh : Rc_util.Budget.exhaustion) =
    if Rc_util.Obs.on st.obs then begin
      let label = Rc_util.Budget.exhaustion_label exh in
      Rc_util.Obs.counter st.obs ("budget." ^ label);
      Rc_util.Obs.instant st.obs ~cat:"budget"
        ~args:
          [
            ("goal_head", Option.value ~default:"?" st.cur_head);
            ("rule_apps", string_of_int st.stats.Stats.rule_apps);
          ]
        ("budget:" ^ label)
    end;
    fail st ctx
      (Report.Resource_exhausted
         {
           exh;
           goal_head = st.cur_head;
           rule_apps = st.stats.Stats.rule_apps;
           elapsed = Rc_util.Budget.elapsed st.budget;
         })

  let check_budget st ctx =
    match Rc_util.Budget.step st.budget with
    | Some ex -> exhausted st ctx ex
    | None -> ()

  (* ---------------------------------------------------------------- *)
  (* Side conditions (goal case 6c + evar heuristics of §5)            *)
  (* ---------------------------------------------------------------- *)

  let rec discharge st ctx (phi : prop) : (prop * Registry.verdict) list =
    (* the simplification/unification heuristics recurse too: they burn
       budget so a divergent simp loop cannot hang the checker *)
    check_budget st ctx;
    let phi =
      Simp.simp_prop ~hooks:st.registry.Registry.hooks (resolve_prop st phi)
    in
    match phi with
    | PTrue -> []
    | PAnd (a, b) -> discharge st ctx a @ discharge st ctx b
    | _ ->
        if has_evars_prop phi then begin
          (* Heuristic 1: equalities are discharged by unification with the
             seals removed. *)
          let unified =
            match phi with
            | PEq (a, b) -> Evar.unify ~unseal:true st.evars a b
            | _ -> false
          in
          if unified then
            [
              ( Simp.simp_prop ~hooks:st.registry.Registry.hooks
                  (resolve_prop st phi),
                Registry.Auto );
            ]
          else
            (* Heuristic 2: goal simplification rules. *)
            match Evar.apply_goal_simp ~cfg:st.gs st.evars phi with
            | Evar.Progress phi' -> discharge st ctx phi'
            | Evar.NoProgress ->
                fail st ctx (Report.Evar_stuck phi)
        end
        else
          let verdict =
            Registry.solve st.registry ~obs:st.obs ~tactics:st.tactics
              ~hyps:ctx.props phi
          in
          (match verdict with
          | Registry.Unsolved ->
              fail st ctx (Report.Unsolved_side_condition phi)
          | v -> Stats.record_side st.stats v (prop_to_string phi));
          if Rc_util.Obs.on st.obs then
            Rc_util.Obs.counter st.obs
              (match verdict with
              | Registry.Auto -> "side.auto"
              | _ -> "side.manual");
          [ (phi, verdict) ]

  (* ---------------------------------------------------------------- *)
  (* The interpreter                                                   *)
  (* ---------------------------------------------------------------- *)

  let rec solve (st : st) (depth : int) (ctx : ctx) (g : goal) : Deriv.node =
    (* every goal step pays one unit of fuel and re-checks the deadline
       and the depth bound; exhaustion raises a structured report *)
    check_budget st ctx;
    (match Rc_util.Budget.check_depth st.budget depth with
    | Some ex -> exhausted st ctx ex
    | None -> ());
    let solve ctx g = solve st (depth + 1) ctx g in
    match g with
    (* case 1 *)
    | Goal.True_ -> Deriv.make "done" []
    (* case 2 *)
    | Goal.AndG branches ->
        let children =
          List.map
            (fun (label, g) ->
              let ctx =
                match label with
                | Some l -> { ctx with trail = l :: ctx.trail }
                | None -> ctx
              in
              let d = solve ctx g in
              match label with
              | Some l -> Deriv.make ~info:l "branch" [ d ]
              | None -> d)
            branches
        in
        Deriv.make "and" children
    (* case 3 *)
    | Goal.All (x, s, body) ->
        let y = Rc_util.Gensym.fresh ~hint:x st.gen in
        let ctx = { ctx with vars = (y, s) :: ctx.vars } in
        let d = solve ctx (body (Var (y, s))) in
        Deriv.make ~info:(Rc_util.Gensym.base y) "intro-forall" [ d ]
    (* case 4 *)
    | Goal.Ex (x, s, body) ->
        let e = Evar.fresh ~hint:x st.evars s in
        let d = solve ctx (body e) in
        Deriv.make ~info:(term_to_string (resolve st e)) "intro-exists" [ d ]
    (* case 5 *)
    | Goal.Basic f -> begin
        (match L.loc_of_f f with Some l -> st.cur_loc <- Some l | None -> ());
        let head = L.head_of_f f in
        st.cur_head <- Some head;
        Rc_util.Faultsim.point st.registry.Registry.fault "rule_lookup";
        let ri = rule_input st ctx in
        let rec try_rules = function
          | [] ->
              fail st ctx (Report.No_rule_applies (Fmt.str "%a" L.pp_f f))
          | r :: rest -> (
              match r.apply ri f with
              | Some premise ->
                  Stats.record_rule st.stats r.rname;
                  let d =
                    if Rc_util.Obs.on st.obs then begin
                      (* span over the whole premise solve: the browsable
                         proof-search tree.  Self-time (span minus nested
                         rule spans) feeds the profiler; the exception
                         handler keeps the trace balanced when a nested
                         goal fails or exhausts its budget. *)
                      let name = "rule:" ^ r.rname in
                      Rc_util.Obs.counter st.obs ("rule.apps." ^ r.rname);
                      Rc_util.Obs.enter_span st.obs ~cat:"rule"
                        ~key:("rule.self_ns." ^ r.rname)
                        ~args:[ ("head", head) ]
                        name;
                      match solve ctx premise with
                      | d ->
                          Rc_util.Obs.exit_span st.obs ~cat:"rule" name;
                          d
                      | exception e ->
                          Rc_util.Obs.exit_span st.obs ~cat:"rule" name;
                          raise e
                    end
                    else solve ctx premise
                  in
                  Deriv.make
                    ~info:(Fmt.str "%a" L.pp_f f)
                    ?loc:(L.loc_of_f f)
                    ("rule:" ^ r.rname) [ d ]
              | None -> try_rules rest)
        in
        try_rules (rules_for st.index head)
      end
    (* case 6 *)
    | Goal.Star (h, g') -> begin
        match h with
        | Goal.LTrue -> solve ctx g'
        | Goal.LStar (h1, h2) -> solve ctx (Goal.Star (h1, Goal.Star (h2, g')))
        | Goal.LEx (x, s, body) ->
            solve ctx (Goal.Ex (x, s, fun t -> Goal.Star (body t, g')))
        | Goal.LProp phi ->
            let side = discharge st ctx phi in
            (* proven facts strengthen Γ for later side conditions *)
            let ctx =
              { ctx with props = List.map fst side @ ctx.props }
            in
            let d = solve ctx g' in
            Deriv.make ~side ~hyps:ctx.props ~tactics:st.tactics
              ?loc:st.cur_loc "side-condition" [ d ]
        | Goal.LAtom a ->
            let a = resolve_atom st a in
            let found =
              match
                Rc_util.Xlist.find_remove
                  (fun a' -> L.related ~exact:true (resolve_atom st a') a)
                  ctx.delta
              with
              | Some r -> Some r
              | None ->
                  Rc_util.Xlist.find_remove
                    (fun a' -> L.related ~exact:false (resolve_atom st a') a)
                    ctx.delta
            in
            (match found with
            | None ->
                fail st ctx (Report.No_ownership (Fmt.str "%a" L.pp_atom a))
            | Some (a', delta) ->
                let ctx = { ctx with delta } in
                let d =
                  solve ctx (Goal.Basic (L.mk_subsume (resolve_atom st a') a g'))
                in
                Deriv.make
                  ~info:(Fmt.str "%a <: %a" L.pp_atom a' L.pp_atom a)
                  "ctx-lookup" [ d ])
      end
    (* case 7 *)
    | Goal.Wand (h, g') -> begin
        match h with
        | Goal.LTrue -> solve ctx g'
        | Goal.LStar (h1, h2) -> solve ctx (Goal.Wand (h1, Goal.Wand (h2, g')))
        | Goal.LEx (x, s, body) ->
            solve ctx (Goal.All (x, s, fun t -> Goal.Wand (body t, g')))
        | Goal.LProp phi -> begin
            let hooks = st.registry.Registry.hooks in
            let phi = Simp.simp_prop ~hooks (resolve_prop st phi) in
            match Simp.destruct_hyp ~hooks phi with
            | None ->
                (* contradictory hypothesis: goal holds vacuously *)
                Deriv.make ~info:(prop_to_string phi) "vacuous" []
            | Some hyps ->
                let ctx = { ctx with props = hyps @ ctx.props } in
                let d = solve ctx g' in
                Deriv.make ~info:(prop_to_string phi) "intro-hyp" [ d ]
          end
        | Goal.LAtom a ->
            let a = resolve_atom st a in
            let ctx = { ctx with delta = a :: ctx.delta } in
            let d = solve ctx g' in
            Deriv.make ~info:(Fmt.str "%a" L.pp_atom a) "intro-atom" [ d ]
      end
    | Goal.FindOpt { descr; pred; cont } -> (
        match
          Rc_util.Xlist.find_remove
            (fun a -> pred (resolve st) (resolve_atom st a))
            ctx.delta
        with
        | None ->
            let d = solve ctx (cont None) in
            Deriv.make ~info:(descr ^ " (absent)") "find-opt" [ d ]
        | Some (a, delta) ->
            let a = resolve_atom st a in
            let ctx = { ctx with delta } in
            let d = solve ctx (cont (Some a)) in
            Deriv.make ~info:(Fmt.str "%a" L.pp_atom a) "find-opt" [ d ])
    (* find_in_context extension *)
    | Goal.Find { descr; pred; cont } ->
        let found =
          Rc_util.Xlist.find_remove
            (fun a -> pred (resolve st) (resolve_atom st a))
            ctx.delta
        in
        (match found with
        | None -> fail st ctx (Report.No_ownership descr)
        | Some (a, delta) ->
            let a = resolve_atom st a in
            let ctx = { ctx with delta } in
            let d = solve ctx (cont a) in
            Deriv.make ~info:(Fmt.str "%a" L.pp_atom a) "find" [ d ])

  (* ---------------------------------------------------------------- *)
  (* Entry point                                                       *)
  (* ---------------------------------------------------------------- *)

  type result = {
    deriv : Deriv.node;
    stats : Stats.t;
  }

  let run_indexed (index : index) ?(registry = Registry.default)
      ?(gs = Evar.default_simp_cfg) ~(env : L.env) ~(tactics : string list)
      ?(budget = Rc_util.Budget.unlimited) ?(obs = Rc_util.Obs.off)
      ?(ctx = empty_ctx) (g : goal) : (result, Report.t) Stdlib.result =
    let st =
      {
        evars = Evar.create ?fault:registry.Registry.fault ~obs ();
        stats = Stats.create ();
        gen = Rc_util.Gensym.create ();
        index;
        registry;
        gs;
        env;
        tactics;
        budget = Rc_util.Budget.start budget;
        obs;
        cur_loc = None;
        cur_head = None;
      }
    in
    match solve st 0 ctx g with
    | d ->
        st.stats.Stats.evar_insts <- st.evars.Evar.instantiations;
        Ok { deriv = d; stats = st.stats }
    | exception Report.Error e -> Error e
    | exception Stack_overflow ->
        (* catch here (rather than only in the driver) so the diagnostic
           still carries the source location of the judgment in flight *)
        Error
          (Report.make ?loc:st.cur_loc
             (Report.Checker_fault "Stack_overflow during proof search"))

  (** One-shot entry point: indexes [cfg.rules] and runs.  Callers that
      check many functions against the same rule set should build the
      {!index} once ({!index_rules}) and use {!run_indexed}. *)
  let run (cfg : cfg) ?registry ?gs ~(env : L.env) ?budget ?ctx (g : goal) :
      (result, Report.t) Stdlib.result =
    run_indexed (index_rules cfg.rules) ?registry ?gs ~env ~tactics:cfg.tactics
      ?budget ?ctx g
end

(** Verification statistics — the instrumentation behind Figure 7.

    One [t] is collected per verified function and aggregated per case
    study by the benchmark harness. *)

type t = {
  mutable rule_apps : int;  (** total typing-rule applications *)
  mutable rules_used : (string, int) Hashtbl.t;  (** per-rule counts *)
  mutable evar_insts : int;  (** the ∃ column: evars auto-instantiated *)
  mutable side_auto : int;  (** side conditions the default solver proved *)
  mutable side_manual : int;
      (** side conditions needing a named solver or a registered lemma
          (the paper's conservative "manual" counting) *)
  mutable manual_detail : (string * string) list;
      (** (solver-or-lemma, printed side condition) *)
  mutable memo_hits : int;
      (** memoized-subgoal replays; the subsumed applications are merged
          into [rule_apps]/[rules_used], keeping Figure-7 columns
          independent of memoization *)
  mutable memo_saved_apps : int;
      (** rule applications the memo hits subsumed (reported saving) *)
}

val create : unit -> t
val record_rule : t -> string -> unit
val record_side : t -> Rc_pure.Registry.verdict -> string -> unit
val distinct_rules : t -> int
val merge : t -> t -> unit
(** [merge acc x] adds [x]'s counters into [acc] *)

val to_json : t -> string
(** deterministic rendering: sorted [rules_used], chronological
    [manual_detail] — byte-identical across [-j N] for the same work *)

val pp : Format.formatter -> t -> unit

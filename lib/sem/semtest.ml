(** Semantic-soundness testing: the executable face of the paper's
    foundational claim.

    The paper proves, in Iris, that well-typed programs have no undefined
    behaviour.  We cannot re-run Coq proofs, but Caesium here is an
    *executable* semantics, so the claim becomes testable: for a function
    that type-checked against its specification, sample concrete
    arguments that inhabit the argument types (interpreting the
    refinement types as value/heap generators), run the function in the
    UB-detecting interpreter, and require that it never reports undefined
    behaviour.  Combined with the certificate checker, this is this
    reproduction's substitute for the Coq adequacy theorem (see
    DESIGN.md). *)

open Rc_pure
open Rc_pure.Term
open Rc_refinedc.Rtype
module Caesium = Rc_caesium
module Heap = Rc_caesium.Heap
module Value = Rc_caesium.Value
module Loc = Rc_caesium.Loc
module Int_type = Rc_caesium.Int_type
module Layout = Rc_caesium.Layout

type conc =
  | CInt of int
  | CLoc of Loc.t
  | CList of int list
  | CSet of int list  (** sorted, distinct *)
  | CMset of int list  (** sorted *)
  | CBool of bool

type valuation = (string * conc) list ref

exception Cannot_generate of string

let cannot fmt = Fmt.kstr (fun s -> raise (Cannot_generate s)) fmt

(* ------------------------------------------------------------------ *)
(* Term evaluation under a valuation                                   *)
(* ------------------------------------------------------------------ *)

let rec eval_term (va : valuation) (t : term) : conc =
  match t with
  | Num n -> CInt n
  | BoolLit b -> CBool b
  | NullLoc -> CLoc Loc.Null
  | Var (x, _) -> (
      match List.assoc_opt x !va with
      | Some c -> c
      | None -> cannot "unbound parameter %s" x)
  | Add (a, b) -> CInt (as_int va a + as_int va b)
  | Sub (a, b) -> CInt (as_int va a - as_int va b)
  | NatSub (a, b) -> CInt (max 0 (as_int va a - as_int va b))
  | Mul (a, b) -> CInt (as_int va a * as_int va b)
  | Div (a, b) ->
      let d = as_int va b in
      if d = 0 then cannot "division by zero in refinement"
      else CInt (as_int va a / d)
  | Mod (a, b) ->
      let d = as_int va b in
      if d <= 0 then cannot "bad modulus"
      else CInt (((as_int va a mod d) + d) mod d)
  | Min (a, b) -> CInt (min (as_int va a) (as_int va b))
  | Max (a, b) -> CInt (max (as_int va a) (as_int va b))
  | Ite (c, a, b) -> if eval_prop va c then eval_term va a else eval_term va b
  | Length l -> CInt (List.length (as_list va l))
  | Nil _ -> CList []
  | Cons (x, l) -> CList (as_int va x :: as_list va l)
  | Append (a, b) -> CList (as_list va a @ as_list va b)
  | Replicate (n, x) -> CList (List.init (as_int va n) (fun _ -> as_int va x))
  | NthDflt (d, i, l) -> (
      match List.nth_opt (as_list va l) (as_int va i) with
      | Some x -> CInt x
      | None -> eval_term va d)
  | SetListInsert (i, x, l) ->
      CList
        (List.mapi
           (fun j y -> if j = as_int va i then as_int va x else y)
           (as_list va l))
  | MsEmpty -> CMset []
  | MsSingleton x -> CMset [ as_int va x ]
  | MsUnion (a, b) ->
      CMset (List.sort compare (as_mset va a @ as_mset va b))
  | SetEmpty -> CSet []
  | SetSingleton x -> CSet [ as_int va x ]
  | SetUnion (a, b) ->
      CSet (List.sort_uniq compare (as_set va a @ as_set va b))
  | SetDiff (a, b) ->
      let bs = as_set va b in
      CSet (List.filter (fun x -> not (List.mem x bs)) (as_set va a))
  | LocOfs (l, n) -> (
      match eval_term va l with
      | CLoc (Loc.Ptr _ as lc) -> CLoc (Loc.shift lc (as_int va n))
      | _ -> cannot "offset of non-pointer")
  | TProp p -> CBool (eval_prop va p)
  | App ("rev", [ l ]) -> CList (List.rev (as_list va l))
  | t -> cannot "cannot evaluate %a" pp_term t

and as_int va t =
  match eval_term va t with CInt n -> n | _ -> cannot "expected integer"

and as_list va t =
  match eval_term va t with CList l -> l | _ -> cannot "expected list"

and as_mset va t =
  match eval_term va t with
  | CMset l -> l
  | CSet l -> l
  | _ -> cannot "expected multiset"

and as_set va t =
  match eval_term va t with
  | CSet l -> l
  | CMset l -> List.sort_uniq compare l
  | _ -> cannot "expected set"

and elems va t =
  match eval_term va t with
  | CMset l | CSet l | CList l -> l
  | _ -> cannot "expected a collection"

and eval_prop (va : valuation) (p : prop) : bool =
  match p with
  | PTrue -> true
  | PFalse -> false
  | PEq (a, b) -> eval_term va a = eval_term va b
  | PLe (a, b) -> as_int va a <= as_int va b
  | PLt (a, b) -> as_int va a < as_int va b
  | PAnd (a, b) -> eval_prop va a && eval_prop va b
  | POr (a, b) -> eval_prop va a || eval_prop va b
  | PNot a -> not (eval_prop va a)
  | PImp (a, b) -> (not (eval_prop va a)) || eval_prop va b
  | PIsTrue t -> eval_term va t = CBool true || eval_term va t = CInt 1
  | PIn (x, l) -> List.mem (as_int va x) (elems va l)
  | PForall (x, _, PImp (PIn (Var (x', _), s), phi)) when x = x' ->
      (* bounded quantification over a finite collection is decidable *)
      List.for_all
        (fun e ->
          va := (x, CInt e) :: !va;
          let r = eval_prop va phi in
          va := List.remove_assoc x !va;
          r)
        (elems va s)
  | p -> cannot "cannot evaluate %a" pp_prop p

(* ------------------------------------------------------------------ *)
(* Constraint-directed existential witnesses                           *)
(* ------------------------------------------------------------------ *)

(** The generation context: everything one [check_fn] invocation needs
    that used to live in module-level mutable state.  One [gctx] per
    check; concurrent checks (different sessions, [-j N] domains) each
    own theirs, so the generator is reentrant by construction. *)
type gctx = {
  g_rng : Random.State.t;
  g_tenv : Rc_refinedc.Rtype.tenv;  (** the session's named types *)
  g_impls : (string * fn_spec) list;
      (** implementations available for function-pointer arguments *)
  g_qc : int ref;  (** fresh-binder counter (unique per check) *)
}

(** Strip an existential/constraint prefix, collecting binders and
    constraints in front of the underlying type.  Binders are renamed
    apart: recursive types reuse binder names at every unfolding level. *)
let rec strip_quant (gx : gctx) (ty : rtype)
    (binders : (string * Sort.t) list) :
    (string * Sort.t) list * prop list * rtype =
  match ty with
  | TExists (x, s, f) ->
      incr gx.g_qc;
      let x' = Printf.sprintf "%s!%d" x !(gx.g_qc) in
      strip_quant gx (f (Var (x', s))) ((x', s) :: binders)
  | TConstr (t, phi) ->
      let bs, ps, t' = strip_quant gx t binders in
      (bs, phi :: ps, t')
  | t -> (List.rev binders, [], t)

let bound va x = List.mem_assoc x !va

(** Solve for unbound binders using determining constraints: list/multiset
    decompositions, arithmetic offsets, direct equalities.  Remaining
    constraints are checked by evaluation. *)
let rec solve_binders (rng : Random.State.t) (va : valuation)
    (binders : (string * Sort.t) list) (constraints : prop list) : unit =
  let try_solve (p : prop) : bool =
    match p with
    (* e = x :: tl *)
    | PEq (e, Cons (Var (x, _), Var (tl, stl)))
      when (not (bound va x)) && not (bound va tl) -> (
        match eval_term va e with
        | CList (h :: t) ->
            va := (x, CInt h) :: (tl, CList t) :: !va;
            ignore stl;
            true
        | CList [] -> cannot "empty list cannot be decomposed"
        | _ -> false
        | exception Cannot_generate _ -> false)
    (* e = {[n]} ⊎ tail: n must be the minimum for sorted chains *)
    | PEq (e, MsUnion (MsSingleton (Var (x, _)), Var (tl, _)))
      when (not (bound va x)) && not (bound va tl) -> (
        match eval_term va e with
        | CMset (h :: t) | CSet (h :: t) ->
            va := (x, CInt h) :: (tl, CMset t) :: !va;
            true
        | CMset [] | CSet [] -> cannot "empty multiset"
        | _ -> false
        | exception Cannot_generate _ -> false)
    (* e = {[v]} ∪ l ∪ r with BST sortedness: split around a pivot *)
    | PEq (e, SetUnion (SetUnion (SetSingleton (Var (x, _)), Var (l, _)), Var (r, _)))
      when (not (bound va x)) && (not (bound va l)) && not (bound va r) -> (
        match eval_term va e with
        | CSet es when es <> [] ->
            let v = List.nth es (Random.State.int rng (List.length es)) in
            va :=
              (x, CInt v)
              :: (l, CSet (List.filter (fun k -> k < v) es))
              :: (r, CSet (List.filter (fun k -> k > v) es))
              :: !va;
            true
        | CSet [] -> cannot "empty set"
        | _ -> false
        | exception Cannot_generate _ -> false)
    (* e = lxs ++ (v :: rxs): split a sorted list around a pivot index *)
    | PEq (e, Append (Var (l, _), Cons (Var (x, _), Var (r, _))))
      when (not (bound va x)) && (not (bound va l)) && not (bound va r) -> (
        match eval_term va e with
        | CList es when es <> [] ->
            let i = Random.State.int rng (List.length es) in
            va :=
              (x, CInt (List.nth es i))
              :: (l, CList (Rc_util.Xlist.take i es))
              :: (r, CList (Rc_util.Xlist.drop (i + 1) es))
              :: !va;
            true
        | CList [] -> cannot "empty list"
        | _ -> false
        | exception Cannot_generate _ -> false)
    (* e = m + k *)
    | PEq (e, Add (Var (x, _), Num k)) when not (bound va x) -> (
        match eval_term va e with
        | CInt n ->
            va := (x, CInt (n - k)) :: !va;
            true
        | _ -> false
        | exception Cannot_generate _ -> false)
    | PEq (Var (x, _), e) when not (bound va x) -> (
        match eval_term va e with
        | c ->
            va := (x, c) :: !va;
            true
        | exception Cannot_generate _ -> false)
    | PEq (e, Var (x, _)) when not (bound va x) -> (
        match eval_term va e with
        | c ->
            va := (x, c) :: !va;
            true
        | exception Cannot_generate _ -> false)
    | _ -> false
  in
  (* a few propagation rounds *)
  for _ = 1 to 4 do
    List.iter (fun p -> ignore (try_solve p)) constraints
  done;
  (* default any still-unbound binders *)
  List.iter
    (fun (x, s) -> if not (bound va x) then va := (x, sample rng s) :: !va)
    binders;
  (* all constraints must hold *)
  List.iter
    (fun p ->
      if not (eval_prop va p) then
        cannot "constraint %a does not hold" pp_prop p)
    constraints

and sample rng (s : Sort.t) : conc =
  match s with
  | Sort.Nat -> CInt (Random.State.int rng 40)
  | Sort.Int -> CInt (Random.State.int rng 80 - 40)
  | Sort.Bool -> CBool (Random.State.bool rng)
  | Sort.List Sort.Int | Sort.List Sort.Nat ->
      (* sorted and distinct: also inhabits the ordered-structure specs *)
      let n = Random.State.int rng 7 in
      let rec go acc last i =
        if i = 0 then List.rev acc
        else
          let x = last + 1 + Random.State.int rng 9 in
          go (x :: acc) x (i - 1)
      in
      CList (go [] (Random.State.int rng 5) n)
  | Sort.Mset ->
      let n = Random.State.int rng 6 in
      CMset
        (List.sort compare
           (List.init n (fun _ -> 16 + Random.State.int rng 64)))
  | Sort.Set ->
      let n = Random.State.int rng 7 in
      CSet (List.sort_uniq compare (List.init n (fun _ -> Random.State.int rng 60)))
  | s -> cannot "cannot sample sort %a" Sort.pp s

(* ------------------------------------------------------------------ *)
(* Generating heap objects from types                                  *)
(* ------------------------------------------------------------------ *)

let impl_for (gx : gctx) (spec : fn_spec) : string =
  match
    List.find_opt
      (fun (_, s) -> Rc_refinedc.Rules_subsume.fn_spec_compatible s spec)
      gx.g_impls
  with
  | Some (name, _) -> name
  | None -> spec.fs_name

(** Size of a type under the valuation (after witnesses are solved). *)
let conc_size (gx : gctx) (va : valuation) (ty : rtype) : int =
  match ty_size gx.g_tenv ty with
  | Some sz -> as_int va sz
  | None -> cannot "cannot size %a" pp_rtype ty

(** Write a value inhabiting [ty] at [l], allocating pointees as needed.
    Unbound [Loc]-sorted parameters are bound by the allocations they
    refine. *)
let rec gen_at (gx : gctx) (h : Heap.t) (va : valuation) (ty : rtype)
    (l : Loc.t) : unit =
  let rng = gx.g_rng in
  match ty with
  | TInt (it, n) -> Heap.store h l (Value.of_int it (as_int va n))
  | TBool (it, phi) ->
      Heap.store h l (Value.of_int it (if eval_prop va phi then 1 else 0))
  | TNull -> Heap.store h l (Value.of_loc Loc.Null)
  | TUninit _ -> () (* already poison *)
  | TManaged _ -> ()
  | TAnyInt it -> Heap.store h l (Value.of_int it (Random.State.int rng 100))
  | TOwn (refn, t') ->
      let ptr = gen_own gx h va refn t' in
      Heap.store h l (Value.of_loc ptr)
  | TOptional (phi, t1, t2) ->
      if eval_prop va phi then gen_at gx h va t1 l else gen_at gx h va t2 l
  | TStruct (sl, tys) ->
      List.iter2
        (fun fd fty -> gen_at gx h va fty (Loc.shift l fd.Layout.fld_ofs))
        sl.Layout.sl_fields tys
  | TPadded (t', _) -> gen_at gx h va t' l
  | TExists _ | TConstr _ ->
      let binders, constraints, base = strip_quant gx ty [] in
      solve_binders rng va binders constraints;
      gen_at gx h va base l
  | TNamed (n, args) -> (
      match unfold_named gx.g_tenv n args with
      | Some body -> gen_at gx h va body l
      | None -> cannot "unknown named type %s" n)
  | TArrayInt (it, len, xs) ->
      let n = as_int va len in
      let vs =
        match xs with
        | Var (x, _) ->
            (* (re)bind the array contents to the required length *)
            let vs = List.init n (fun _ -> Random.State.int rng 100) in
            va := (x, CList vs) :: List.remove_assoc x !va;
            vs
        | _ ->
            let vs = as_list va xs in
            if List.length vs <> n then cannot "array length mismatch";
            vs
      in
      List.iteri
        (fun i x ->
          Heap.store h (Loc.shift l (i * it.Int_type.size)) (Value.of_int it x))
        vs
  | TAtomicBool (it, phi, ht, hf) ->
      let state = try eval_prop va phi with Cannot_generate _ -> false in
      Heap.store h l (Value.of_int it (if state then 1 else 0));
      List.iter (gen_hres gx h va) (if state then ht else hf)
  | TFnPtr spec -> Heap.store h l (Value.of_fn (impl_for gx spec))
  | TWand _ -> cannot "cannot generate a magic wand"
  | TPtrV t -> (
      match eval_term va t with
      | CLoc lc -> Heap.store h l (Value.of_loc lc)
      | _ -> cannot "ptr refinement not a location")

and gen_hres gx h va (hr : hres) : unit =
  match hr with
  | HProp p -> if not (eval_prop va p) then cannot "resource proposition fails"
  | HAtom (LocTy (lt, ty)) -> (
      match lt with
      | Var (x, _) when not (bound va x) ->
          (* an unbound protected cell: allocate it *)
          let binders, constraints, base = strip_quant gx ty [] in
          solve_binders gx.g_rng va binders constraints;
          let ptr = Heap.alloc h (max (conc_size gx va base) 1) in
          va := (x, CLoc ptr) :: !va;
          gen_at gx h va base ptr
      | _ -> (
          match eval_term va lt with
          | CLoc lc -> gen_at gx h va ty lc
          | _ -> cannot "resource location not evaluable"))
  | HAtom (ValTy _) -> cannot "cannot generate value resources"

and gen_own gx h va refn t' : Loc.t =
  let binders, constraints, base = strip_quant gx t' [] in
  solve_binders gx.g_rng va binders constraints;
  let ptr = Heap.alloc h (max (conc_size gx va base) 1) in
  (match refn with
  | Some (Var (x, _)) when not (bound va x) -> va := (x, CLoc ptr) :: !va
  | Some (Var (x, _)) when bound va x -> ()
  | _ -> ());
  gen_at gx h va base ptr;
  ptr

and witness_term x (c : conc) : term =
  match c with
  | CInt n -> Num n
  | CBool b -> BoolLit b
  | CList l -> List.fold_right (fun n t -> Cons (Num n, t)) l (Nil Sort.Int)
  | CMset l ->
      List.fold_right (fun n t -> MsUnion (MsSingleton (Num n), t)) l MsEmpty
  | CSet l ->
      List.fold_right
        (fun n t -> SetUnion (SetSingleton (Num n), t))
        l SetEmpty
  | CLoc _ -> Var (x, Sort.Loc)

(** Generate a concrete argument value for one argument type. *)
let rec gen_arg gx h va (ty : rtype) : Value.t =
  match ty with
  | TInt (it, n) -> Value.of_int it (as_int va n)
  | TBool (it, phi) -> Value.of_int it (if eval_prop va phi then 1 else 0)
  | TNull -> Value.of_loc Loc.Null
  | TOwn (refn, t') -> Value.of_loc (gen_own gx h va refn t')
  | TOptional (phi, t1, t2) ->
      if eval_prop va phi then gen_arg gx h va t1 else gen_arg gx h va t2
  | TExists _ | TConstr _ ->
      let binders, constraints, base = strip_quant gx ty [] in
      solve_binders gx.g_rng va binders constraints;
      gen_arg gx h va base
  | TFnPtr spec -> Value.of_fn (impl_for gx spec)
  | TNamed (n, args) -> (
      match unfold_named gx.g_tenv n args with
      | Some body -> gen_arg gx h va body
      | None -> cannot "unknown named type %s" n)
  | ty -> cannot "cannot generate argument %a" pp_rtype ty

(* ------------------------------------------------------------------ *)
(* The harness                                                         *)
(* ------------------------------------------------------------------ *)

type outcome =
  | Passed of int  (** number of executions *)
  | Skipped of string  (** spec outside the generator's fragment *)
  | Ub_found of string  (** a counterexample to semantic soundness! *)

(** Run [fname] on [runs] sampled inputs; any UB is a soundness
    counterexample (either in the type system or in the spec).  The
    session supplies the named-type environment the spec was checked
    under; the generator owns all of its remaining state per call. *)
let check_fn ?(runs = 50) ?(seed = 7) ?(impls = [])
    ~(session : Rc_refinedc.Session.t) (prog : Caesium.Syntax.program)
    (spec : fn_spec) : outcome =
  let rng = Random.State.make [| seed |] in
  let gx =
    {
      g_rng = rng;
      g_tenv = session.Rc_refinedc.Session.tenv;
      g_impls =
        List.filter
          (fun (n, _) -> Caesium.Syntax.find_func prog n <> None)
          impls;
      g_qc = ref 0;
    }
  in
  let attempt i =
    (* a fresh machine per run; generation happens directly in its heap *)
    let m = Caesium.Eval.create ~detect_races:false prog in
    let va : valuation = ref [] in
    (* sample non-location parameters first *)
    List.iter
      (fun (x, s) ->
        match s with
        | Sort.Loc -> ()
        | s -> (
            match sample rng s with
            | c -> va := (x, c) :: !va
            | exception Cannot_generate _ -> ()))
      spec.fs_params;
    (* check pure preconditions; resample a few times if violated *)
    let args =
      List.map (fun ty -> gen_arg gx m.Caesium.Eval.heap va ty) spec.fs_args
    in
    let pre_ok =
      List.for_all
        (function
          | HProp p -> ( try eval_prop va p with Cannot_generate _ -> false)
          | HAtom _ -> true)
        spec.fs_pre
    in
    if not pre_ok then `Resample
    else begin
      (* re-generate heap objects is already done; now run *)
      let th =
        {
          Caesium.Eval.tid = 0;
          frames = [];
          finished = false;
          result = None;
          clock = Caesium.Eval.Vc.create 1;
        }
      in
      m.Caesium.Eval.threads <- [ th ];
      match Caesium.Eval.push_call m th spec.fs_name args None with
      | exception Caesium.Ub.Undef u ->
          `Ub (Fmt.str "run %d: %a" i Caesium.Ub.pp u)
      | () ->
          let rec loop fuel =
            if fuel = 0 then `Ok (* partial correctness: timeouts allowed *)
            else
              match Caesium.Eval.step m th with
              | () -> loop (fuel - 1)
              | exception Caesium.Eval.Thread_done -> `Ok
              | exception Caesium.Ub.Undef u ->
                  `Ub (Fmt.str "run %d: %a" i Caesium.Ub.pp u)
          in
          loop 200_000
    end
  in
  let rec go i passed resamples =
    if i >= runs then Passed passed
    else
      match attempt i with
      | `Ok -> go (i + 1) (passed + 1) resamples
      | `Resample ->
          if resamples > 10 * runs then
            Skipped "could not satisfy the precondition by sampling"
          else go i passed (resamples + 1)
      | `Ub msg -> Ub_found msg
      | exception Cannot_generate msg -> Skipped msg
  in
  go 0 0 0

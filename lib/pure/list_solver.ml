(** List solver.

    Covers the "Coq lists" half of the paper's default solver: equalities
    between list expressions built from [Nil]/[Cons]/[Append]/[Replicate]
    and list updates, by normalization into segment sequences and
    cancellation from both ends.  Length reasoning is not handled here —
    [Length] atoms flow into {!Linarith} with their non-negativity
    axioms, and structural length equations are unfolded by {!Simp}. *)

open Term

type seg =
  | SElem of term  (** a single cons cell *)
  | SRepl of term * term  (** [n] copies of [x] *)
  | SOpaque of term  (** opaque list subterm *)

let rec segs (t : term) : seg list =
  match t with
  | Nil _ -> []
  | Cons (x, l) -> SElem x :: segs l
  | Append (a, b) -> segs a @ segs b
  | Replicate (Num 0, _) -> []
  | Replicate (n, x) -> [ SRepl (n, x) ]
  | t -> [ SOpaque t ]

let list_substs hyps =
  List.filter_map
    (function
      | PEq ((Var (_, Sort.List _) as v), t) when not (equal_term v t) ->
          Some (v, t)
      | PEq (t, (Var (_, Sort.List _) as v)) when not (equal_term v t) ->
          Some (v, t)
      (* defined-function results (e.g. rev xs) also act as rewrites *)
      | PEq ((App (_, _) as a), t) when not (equal_term a t) -> Some (a, t)
      | _ -> None)
    hyps

(* replace syntactic occurrences of [pat] by [rhs] *)
let rec rewrite_term (pat, rhs) t =
  if equal_term t pat then rhs else map_term (rewrite_term (pat, rhs)) t

let rec apply_substs ?(hooks = Simp.no_hooks) n substs t =
  if n = 0 then t
  else
    let t' =
      List.fold_left
        (fun t (v, rhs) ->
          match v with
          | Var (x, _) when not (SS.mem x (free_vars_term rhs)) ->
              subst_term [ (x, rhs) ] t
          | App _ when not (equal_term v rhs) -> rewrite_term (v, rhs) t
          | _ -> t)
        t substs
    in
    (* re-simplify: substitution may expose defining equations (rev …) *)
    let t' = Simp.simp_term ~hooks t' in
    if equal_term t t' then t else apply_substs ~hooks (n - 1) substs t'

let seg_eq ~eq a b =
  match (a, b) with
  | SElem x, SElem y -> eq x y
  | SRepl (n, x), SRepl (m, y) -> eq n m && eq x y
  | SOpaque x, SOpaque y -> equal_term x y
  | SElem x, SRepl (Num 1, y) | SRepl (Num 1, y), SElem x -> eq x y
  | _ -> false

(* cancel matching segments from the front and from the back *)
let cancel ~eq l1 l2 =
  let rec front a b =
    match (a, b) with
    | x :: a', y :: b' when seg_eq ~eq x y -> front a' b'
    | _ -> (a, b)
  in
  let a, b = front l1 l2 in
  let a', b' = front (List.rev a) (List.rev b) in
  (List.rev a', List.rev b')

let rec prove ?(hooks = Simp.no_hooks)
    ~(prove_pure : hyps:prop list -> prop -> bool) ~hyps goal =
  let goal = Simp.simp_prop ~hooks goal in
  let substs = list_substs hyps in
  let norm t = segs (apply_substs ~hooks 8 substs (Simp.simp_term ~hooks t)) in
  let eq a b = equal_term a b || prove_pure ~hyps (PEq (a, b)) in
  let listish t =
    match sort_of t with
    | Sort.List _ -> true
    | Sort.Unknown -> (
        (* defined functions like rev return lists; accept them when the
           term is structurally list-shaped *)
        match t with
        | App _ | Append _ | Cons _ | Nil _ -> true
        | _ -> false)
    | _ -> false
  in
  match goal with
  | PTrue -> true
  | PAnd (a, b) -> prove ~hooks ~prove_pure ~hyps a && prove ~hooks ~prove_pure ~hyps b
  | PEq (l1, l2) when listish l1 || listish l2 -> (
      let s1 = norm l1 and s2 = norm l2 in
      match cancel ~eq s1 s2 with
      | [], [] -> true
      | [ SRepl (n, _) ], [] | [], [ SRepl (n, _) ] ->
          (* replicate n x = [] iff n = 0 *)
          prove_pure ~hyps (PEq (n, Num 0))
      | [ SRepl (n, x) ], [ SRepl (m, y) ] ->
          eq x y && prove_pure ~hyps (PEq (n, m))
      | _ -> false)
  | PNot (PEq (l1, l2)) when listish l1 || listish l2 -> (
      let s1 = norm l1 and s2 = norm l2 in
      (* distinguishable by length parity: a strict extra SElem on one
         side with the rest syntactically equal *)
      match cancel ~eq s1 s2 with
      | [], rest | rest, [] ->
          List.exists (function SElem _ -> true | _ -> false) rest
      | _ -> false)
  | _ -> false

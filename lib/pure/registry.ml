(** Solver registry: the reproduction of RefinedC's side-condition
    discharge pipeline (steps (C) of Figure 2).

    Verification conditions emitted by Lithium are *pure* propositions.
    They are discharged in this order:

    1. the **default solver** (simplifier + syntactic hypothesis lookup +
       {!Linarith} + {!List_solver}) — successes are counted as *auto*,
       the paper's "⌜φ⌝ automatically proved" column;
    2. **named solvers** requested by [rc::tactics] annotations
       ({!Mset_solver}, {!Set_solver}, …) — successes count as *manual*,
       matching the paper's conservative counting ("any side condition
       that cannot be discharged by the one default solver … is counted
       as manual");
    3. **registered lemmas** — the stand-in for manual Coq proofs: a
       case study may register pure lemmas (with premises) in an OCaml
       companion; a goal matching a lemma instance whose premises the
       default solver discharges counts as *manual* too.  The certificate
       checker re-checks lemma applications against the same registry. *)

open Term

type verdict =
  | Auto  (** proved by the default solver *)
  | Via_solver of string  (** proved by a named solver ([rc::tactics]) *)
  | Via_lemma of string  (** proved by a registered manual lemma *)
  | Unsolved

let pp_verdict ppf = function
  | Auto -> Fmt.string ppf "auto"
  | Via_solver s -> Fmt.pf ppf "solver:%s" s
  | Via_lemma s -> Fmt.pf ppf "lemma:%s" s
  | Unsolved -> Fmt.string ppf "UNSOLVED"

let is_manual = function Via_solver _ | Via_lemma _ -> true | _ -> false

(* ------------------------------------------------------------------ *)
(* Context-aware conditional resolution                                *)
(* ------------------------------------------------------------------ *)

(** Resolve [Ite] terms whose condition the hypotheses decide (e.g. the
    refinement [(n ≤ a ? a - n : a)] under the branch fact [n ≤ a]). *)
let resolve_ites ?(hooks = Simp.no_hooks) ~hyps (p : prop) : prop =
  let rec rt (t : term) : term =
    let t = map_term rt t in
    match t with
    | Ite (c, a, b) ->
        if Linarith.prove ~hyps c then a
        else if Linarith.prove ~hyps (PNot c) then b
        else t
    | t -> t
  in
  Simp.simp_prop ~hooks (map_prop rt p)

(* ------------------------------------------------------------------ *)
(* Default solver                                                      *)
(* ------------------------------------------------------------------ *)

(** The registry value: everything a session configures about
    side-condition discharge.  Immutable — "registration" builds a new
    value, so sessions never share mutable tables. *)
type t = {
  solvers : solver list;
  lemmas : lemma list;
  default_only : bool;
  hooks : Simp.hooks;
  fault : Rc_util.Faultsim.t option;
}

and solver = { name : string; run : t -> hyps:prop list -> prop -> bool }

and lemma = {
  lname : string;
  vars : (string * Sort.t) list;  (** universally quantified metavars *)
  premises : prop list;
  concl : prop;
}

let rec default_prove (reg : t) ~hyps goal =
  let simp = Simp.simp_prop ~hooks:reg.hooks in
  let goal = resolve_ites ~hooks:reg.hooks ~hyps (simp goal) in
  match goal with
  | PTrue -> true
  | PAnd (a, b) -> default_prove reg ~hyps a && default_prove reg ~hyps b
  | PForall (x, s, q) ->
      (* fresh universal: safe because parser makes names unique *)
      default_prove reg ~hyps (subst_prop [ (x, Var (x ^ "!", s)) ] q)
  | PImp (a, b) -> (
      match Simp.destruct_hyp ~hooks:reg.hooks a with
      | None -> true
      | Some hs -> default_prove reg ~hyps:(hs @ hyps) b)
  | _ ->
      List.exists (fun h -> equal_prop (simp h) goal) hyps
      || Linarith.prove ~hyps goal
      || List_solver.prove ~hooks:reg.hooks
           ~prove_pure:(fun ~hyps g -> Linarith.prove ~hyps g)
           ~hyps goal

(* ------------------------------------------------------------------ *)
(* Named solvers                                                        *)
(* ------------------------------------------------------------------ *)

let builtin_solvers : solver list =
  [
    {
      name = "multiset_solver";
      run =
        (fun reg ~hyps g ->
          Mset_solver.prove ~hooks:reg.hooks ~prove_pure:(default_prove reg)
            ~hyps g);
    };
    {
      name = "set_solver";
      run =
        (fun reg ~hyps g ->
          Set_solver.prove ~hooks:reg.hooks ~prove_pure:(default_prove reg)
            ~hyps g);
    };
    {
      name = "list_solver";
      run =
        (fun reg ~hyps g ->
          List_solver.prove ~hooks:reg.hooks ~prove_pure:(default_prove reg)
            ~hyps g);
    };
    { name = "lia"; run = (fun _reg ~hyps g -> Linarith.prove ~hyps g) };
  ]

let default : t =
  {
    solvers = builtin_solvers;
    lemmas = [];
    default_only = false;
    hooks = Simp.no_hooks;
    fault = None;
  }

let create ?(solvers = []) ?(lemmas = []) ?(default_only = false)
    ?(hooks = Simp.no_hooks) ?fault () : t =
  { solvers = builtin_solvers @ solvers; lemmas; default_only; hooks; fault }

let add_solver reg s = { reg with solvers = reg.solvers @ [ s ] }
let add_lemma reg l = { reg with lemmas = reg.lemmas @ [ l ] }
let with_fault reg fault = { reg with fault }

let find_solver reg name =
  List.find_opt (fun s -> s.name = name) reg.solvers

(* one-way syntactic matching: instantiate lemma vars against the goal *)
exception No_match

let rec match_term binds pat t =
  match (pat, t) with
  | Var (x, _), _ when List.mem_assoc x binds ->
      if equal_term (List.assoc x binds) t then binds else raise No_match
  | Var (x, s), _ -> (
      (* only lemma metavars are bindable; others must match exactly *)
      match t with
      | Var (y, _) when y = x -> binds
      | _ -> (x, s, t) |> fun (x, _, t) -> (x, t) :: binds)
  | Num a, Num b when a = b -> binds
  | BoolLit a, BoolLit b when a = b -> binds
  | NullLoc, NullLoc -> binds
  | MsEmpty, MsEmpty | SetEmpty, SetEmpty -> binds
  | Nil _, Nil _ -> binds
  | TProp p, TProp q -> match_prop binds p q
  | Add (a, b), Add (c, d)
  | Sub (a, b), Sub (c, d)
  | NatSub (a, b), NatSub (c, d)
  | Mul (a, b), Mul (c, d)
  | Div (a, b), Div (c, d)
  | Mod (a, b), Mod (c, d)
  | Min (a, b), Min (c, d)
  | Max (a, b), Max (c, d)
  | LocOfs (a, b), LocOfs (c, d)
  | MsUnion (a, b), MsUnion (c, d)
  | SetUnion (a, b), SetUnion (c, d)
  | SetDiff (a, b), SetDiff (c, d)
  | Cons (a, b), Cons (c, d)
  | Append (a, b), Append (c, d)
  | Replicate (a, b), Replicate (c, d) ->
      match_term (match_term binds a c) b d
  | MsSingleton a, MsSingleton b
  | SetSingleton a, SetSingleton b
  | Length a, Length b ->
      match_term binds a b
  | Ite (c, a, b), Ite (c', a', b') ->
      match_term (match_term (match_prop binds c c') a a') b b'
  | NthDflt (a, b, c), NthDflt (a', b', c')
  | SetListInsert (a, b, c), SetListInsert (a', b', c') ->
      match_term (match_term (match_term binds a a') b b') c c'
  | App (f, xs), App (g, ys) when f = g && List.length xs = List.length ys ->
      List.fold_left2 match_term binds xs ys
  | _ -> raise No_match

and match_prop binds pat p =
  match (pat, p) with
  | PTrue, PTrue | PFalse, PFalse -> binds
  | PEq (a, b), PEq (c, d)
  | PLe (a, b), PLe (c, d)
  | PLt (a, b), PLt (c, d)
  | PIn (a, b), PIn (c, d) ->
      match_term (match_term binds a c) b d
  | PAnd (a, b), PAnd (c, d)
  | POr (a, b), POr (c, d)
  | PImp (a, b), PImp (c, d) ->
      match_prop (match_prop binds a c) b d
  | PNot a, PNot b -> match_prop binds a b
  | PIsTrue a, PIsTrue b -> match_term binds a b
  | PForall (x, _, a), PForall (y, _, b)
  | PExists (x, _, a), PExists (y, _, b) ->
      (* rename the concrete binder to the pattern binder *)
      match_prop binds a (subst_prop [ (y, Var (x, Sort.Unknown)) ] b)
  | PPred (f, xs), PPred (g, ys)
    when f = g && List.length xs = List.length ys ->
      List.fold_left2 match_term binds xs ys
  | _ -> raise No_match

let binds_ok l binds =
  (* only allow binding of declared metavars; a non-metavar variable in
     the pattern must have matched itself *)
  List.for_all
    (fun (x, t) ->
      List.mem_assoc x l.vars
      || match t with Var (y, _) -> y = x | _ -> false)
    binds

let try_lemma (reg : t) ~hyps goal (l : lemma) =
  try
    let binds = match_prop [] l.concl goal in
    if not (binds_ok l binds) then false
    else
      (* discharge premises left to right.  A premise may bind further
         metavars by matching a hypothesis (e.g. the shape fact
         [xs = lxs ++ v :: rxs]); otherwise it is proved by the default
         solver under the current instantiation. *)
      let rec prems binds = function
        | [] -> true
        | prem :: rest -> (
            let inst = subst_prop binds prem in
            let unbound =
              SS.exists
                (fun x ->
                  List.mem_assoc x l.vars && not (List.mem_assoc x binds))
                (free_vars_prop prem)
            in
            if (not unbound) && default_prove reg ~hyps inst then
              prems binds rest
            else
              (* find a hypothesis the premise pattern matches *)
              let rec try_hyps = function
                | [] -> false
                | h :: hs -> (
                    match
                      match_prop binds prem
                        (Simp.simp_prop ~hooks:reg.hooks h)
                    with
                    | binds' when binds_ok l binds' -> prems binds' rest
                    | _ -> try_hyps hs
                    | exception No_match -> try_hyps hs)
              in
              try_hyps hyps)
      in
      prems binds l.premises
  with No_match -> false

(* ------------------------------------------------------------------ *)
(* Entry point                                                          *)
(* ------------------------------------------------------------------ *)

(** A digest of everything that can change the registry's verdicts: the
    registered solvers, lemmas and simplifier hooks (in registration
    order) and the ablation switch.  A component of the
    verification-cache key — two sessions with different registries must
    not share cached verdicts.  The fault campaign is excluded: it
    perturbs control flow, never the meaning of a verdict, and faulted
    runs are not cached. *)
let fingerprint (reg : t) : string =
  Digest.to_hex
    (Digest.string
       (String.concat ";"
          (List.map (fun s -> "solver:" ^ s.name) reg.solvers
          @ List.map (fun l -> "lemma:" ^ l.lname) reg.lemmas
          @ List.map (fun h -> "hook:" ^ h) (Simp.hook_names reg.hooks)
          @ [ "default_only:" ^ string_of_bool reg.default_only ])))

(** [solve reg ~tactics ~hyps goal] discharges a side condition,
    returning how.  [tactics] is the list of named solvers enabled by
    the current function's [rc::tactics] annotations.

    [?obs] records, per attempted prover, a call counter and a latency
    timer ([solver.calls.*] / [solver.ns.*] — the [--profile] solver
    breakdown), plus one [solve] trace event carrying the goal and the
    verdict.  With the default disabled handle the function body is
    unchanged: the guards cost one pattern match each. *)
let solve (reg : t) ?(obs = Rc_util.Obs.off) ?(tactics = []) ~hyps goal :
    verdict =
  Rc_util.Faultsim.point reg.fault "solver";
  let live = Rc_util.Obs.on obs in
  let t_solve = if live then Rc_util.Trace.now_ns () else 0L in
  let attempt name f =
    if not live then f ()
    else begin
      Rc_util.Obs.counter obs ("solver.calls." ^ name);
      let t0 = Rc_util.Trace.now_ns () in
      let r = f () in
      Rc_util.Obs.observe_ns obs ("solver.ns." ^ name)
        (Int64.sub (Rc_util.Trace.now_ns ()) t0);
      r
    end
  in
  let tactics = if reg.default_only then [] else tactics in
  let verdict =
    if attempt "default" (fun () -> default_prove reg ~hyps goal) then Auto
    else
      let goal = resolve_ites ~hooks:reg.hooks ~hyps goal in
      let named =
        List.find_opt
          (fun name ->
            match find_solver reg name with
            | Some s -> attempt name (fun () -> s.run reg ~hyps goal)
            | None -> false)
          tactics
      in
      match named with
      | Some name -> Via_solver name
      | None -> (
          match
            if reg.default_only then None
            else
              attempt "lemmas" (fun () ->
                  List.find_opt (try_lemma reg ~hyps goal) reg.lemmas)
          with
          | Some l -> Via_lemma l.lname
          | None -> Unsolved)
  in
  if live then
    Rc_util.Obs.complete obs ~cat:"solver" ~start_ns:t_solve
      ~dur_ns:(Int64.sub (Rc_util.Trace.now_ns ()) t_solve)
      ~args:
        [
          ("goal", Fmt.str "%a" Term.pp_prop goal);
          ("verdict", Fmt.str "%a" pp_verdict verdict);
        ]
      "solve";
  verdict

(** Finite-set solver.

    Reproduction of std++'s [set_solver], used by the BST and linked-list
    case studies (§7 classes #1 and #3).  Sets are idempotent, so
    normalization deduplicates syntactically equal parts; equality is
    decided by mutual inclusion over the normal forms, membership by
    decomposition plus hypothesis chaining, and bounded-universal goals
    like the sortedness constraints of the BST specs structurally. *)

open Term

type nf = { elems : term list; opaque : term list; diffs : (nf * nf) list }

let rec flatten (t : term) : nf =
  match t with
  | SetEmpty -> { elems = []; opaque = []; diffs = [] }
  | SetSingleton e -> { elems = [ e ]; opaque = []; diffs = [] }
  | SetUnion (a, b) ->
      let na = flatten a and nb = flatten b in
      {
        elems = na.elems @ nb.elems;
        opaque = na.opaque @ nb.opaque;
        diffs = na.diffs @ nb.diffs;
      }
  | SetDiff (a, b) ->
      { elems = []; opaque = []; diffs = [ (flatten a, flatten b) ] }
  | t -> { elems = []; opaque = [ t ]; diffs = [] }

let dedup cmp l = List.sort_uniq cmp l

let sort_nf nf =
  {
    elems = dedup compare_term nf.elems;
    opaque = dedup compare_term nf.opaque;
    diffs = nf.diffs;
  }

let set_substs hyps =
  List.filter_map
    (function
      | PEq ((Var (_, Sort.Set) as v), t) when not (equal_term v t) ->
          Some (v, t)
      | PEq (t, (Var (_, Sort.Set) as v)) when not (equal_term v t) ->
          Some (v, t)
      | _ -> None)
    hyps

let rec apply_substs n substs t =
  if n = 0 then t
  else
    let t' =
      List.fold_left
        (fun t (v, rhs) ->
          match v with
          | Var (x, _) when not (SS.mem x (free_vars_term rhs)) ->
              subst_term [ (x, rhs) ] t
          | _ -> t)
        t substs
    in
    if equal_term t t' then t else apply_substs (n - 1) substs t'

type facts = {
  members : (term * term) list;
  non_members : (term * term) list;
  bounded : (term * string * prop) list;
}

let gather_facts hyps =
  List.fold_left
    (fun f h ->
      match h with
      | PIn (k, s) when sort_of s = Sort.Set ->
          { f with members = (k, s) :: f.members }
      | PNot (PIn (k, s)) when sort_of s = Sort.Set ->
          { f with non_members = (k, s) :: f.non_members }
      | PForall (x, _, PImp (PIn (Var (x', _), s), phi)) when x = x' ->
          { f with bounded = (s, x, phi) :: f.bounded }
      | _ -> f)
    { members = []; non_members = []; bounded = [] }
    hyps

let rec prove ?(hooks = Simp.no_hooks)
    ~(prove_pure : hyps:prop list -> prop -> bool) ~hyps goal =
  let goal = Simp.simp_prop ~hooks goal in
  (* saturation: every known membership k ∈ S instantiates every bounded
     fact ∀x∈S. φ(x), enriching the pure context (one round suffices for
     the case studies) *)
  let hyps =
    let members =
      List.filter_map
        (function PIn (k, s) -> Some (k, s) | _ -> None)
        hyps
    in
    let insts =
      List.concat_map
        (function
          | PForall (x, _, PImp (PIn (Var (x', _), s), phi)) when x = x' ->
              List.filter_map
                (fun (k, s') ->
                  if equal_term s s' then Some (subst_prop [ (x, k) ] phi)
                  else None)
                members
          | _ -> [])
        hyps
    in
    insts @ hyps
  in
  let substs = set_substs hyps in
  let norm t = sort_nf (flatten (apply_substs 8 substs (Simp.simp_term ~hooks t))) in
  let eq_elem a b = equal_term a b || prove_pure ~hyps (PEq (a, b)) in
  let ne_elem a b = prove_pure ~hyps (PNot (PEq (a, b))) in
  let facts = gather_facts hyps in
  (* [member_of k n]: k provably in normal form n *)
  let rec member_of k (n : nf) =
    List.exists (eq_elem k) n.elems
    || List.exists
         (fun v ->
           List.exists
             (fun (k', s') ->
               equal_term v (apply_substs 8 substs s') && eq_elem k k')
             facts.members
           ||
           (* disjunction elimination: k ∈ S is known for some S whose
              normal form contains v, and k is excluded from every other
              part of S (the BST-descend pattern: from k ∈ {v}∪l∪r, k≠v
              and the sortedness bound on r, conclude k ∈ l) *)
           List.exists
             (fun (k', s') ->
               eq_elem k k'
               &&
               let ns = sort_nf (flatten (apply_substs 8 substs s')) in
               List.exists (equal_term v) ns.opaque
               && ns.diffs = []
               && List.for_all (ne_elem k) ns.elems
               && List.for_all
                    (fun u ->
                      equal_term u v || not_member_of k { elems = []; opaque = [ u ]; diffs = [] })
                    ns.opaque)
             facts.members)
         n.opaque
    || List.exists
         (fun (a, b) -> member_of k a && not_member_of k b)
         n.diffs
  and not_member_of k (n : nf) =
    List.for_all (ne_elem k) n.elems
    && List.for_all
         (fun v ->
           List.exists
             (fun (k', s') ->
               equal_term v (apply_substs 8 substs s') && eq_elem k k')
             facts.non_members
           ||
           (* bounded facts can exclude: ∀x∈v. φ(x) with φ(k) refutable *)
           List.exists
             (fun (s', x, phi) ->
               equal_term (apply_substs 8 substs s') v
               && prove_pure ~hyps (PNot (subst_prop [ (x, k) ] phi)))
             facts.bounded)
         n.opaque
    && List.for_all
         (fun ((a : nf), _) ->
           (* k ∉ a ⟹ k ∉ a∖b; k ∈ b also suffices but needs b check *)
           not_member_of k a)
         n.diffs
  in
  match goal with
  | PTrue -> true
  | PAnd (a, b) -> prove ~hooks ~prove_pure ~hyps a && prove ~hooks ~prove_pure ~hyps b
  | POr (a, b) -> prove ~hooks ~prove_pure ~hyps a || prove ~hooks ~prove_pure ~hyps b
  | PImp (a, b) -> (
      match Simp.destruct_hyp ~hooks a with
      | None -> true
      | Some hs -> prove ~hooks ~prove_pure ~hyps:(hs @ hyps) b)
  | PForall (x, s, PImp (POr (p, q), phi)) ->
      prove ~hooks ~prove_pure ~hyps (PForall (x, s, PImp (p, phi)))
      && prove ~hooks ~prove_pure ~hyps (PForall (x, s, PImp (q, phi)))
  | PForall (x, s, PAnd (p, q)) ->
      prove ~hooks ~prove_pure ~hyps (PForall (x, s, p))
      && prove ~hooks ~prove_pure ~hyps (PForall (x, s, q))
  | PForall (x, _, PImp (PEq (Var (x', _), e), phi))
    when x = x' && not (SS.mem x (free_vars_term e)) ->
      prove ~hooks ~prove_pure ~hyps (subst_prop [ (x, e) ] phi)
  | PForall (x, _, PImp (PEq (e, Var (x', _)), phi))
    when x = x' && not (SS.mem x (free_vars_term e)) ->
      prove ~hooks ~prove_pure ~hyps (subst_prop [ (x, e) ] phi)
  | PEq (s1, s2) when sort_of s1 = Sort.Set || sort_of s2 = Sort.Set ->
      let n1 = norm s1 and n2 = norm s2 in
      (* mutual inclusion on syntactic parts: every elem of one side must
         be an elem of the other (provably) or covered by membership
         facts; opaque parts must match syntactically *)
      let incl a b =
        List.for_all (fun e -> member_of e b) a.elems
        && List.for_all
             (fun v -> List.exists (equal_term v) b.opaque)
             a.opaque
        && a.diffs = [] && b.diffs = []
      in
      (* common fast path: identical after dedup *)
      (List.length n1.elems = List.length n2.elems
       && List.for_all2 equal_term n1.elems n2.elems
       && List.length n1.opaque = List.length n2.opaque
       && List.for_all2 equal_term n1.opaque n2.opaque
       && n1.diffs = [] && n2.diffs = [])
      ||
      (* inclusion both ways, requiring same opaque support *)
      (incl n1 n2 && incl n2 n1)
  | PIn (k, s) when sort_of s = Sort.Set -> member_of k (norm s)
  | PNot (PIn (k, s)) when sort_of s = Sort.Set -> not_member_of k (norm s)
  | PNot (PEq (s, SetEmpty)) | PNot (PEq (SetEmpty, s)) ->
      let n = norm s in
      n.elems <> []
      || List.exists
           (fun v ->
             List.exists
               (fun (_, s') ->
                 equal_term v (apply_substs 8 substs s'))
               facts.members)
           n.opaque
  | PForall (x, sx, PImp (PIn (Var (x', _), s), phi))
    when x = x' && sort_of s = Sort.Set ->
      let n = norm s in
      let prove_elem e = prove_pure ~hyps (subst_prop [ (x, e) ] phi) in
      let prove_opaque v =
        List.exists
          (fun (s', y, psi) ->
            let matches =
              equal_term (apply_substs 8 substs s') v || equal_term s' v
            in
            matches
            &&
            let fresh = Var (x ^ "'", sx) in
            let psi' = subst_prop [ (y, fresh) ] psi in
            let phi' = subst_prop [ (x, fresh) ] phi in
            prove_pure ~hyps:(psi' :: hyps) phi')
          facts.bounded
      in
      List.for_all prove_elem n.elems
      && List.for_all prove_opaque n.opaque
      && n.diffs = []
  | g -> List.exists (fun h -> equal_prop h g) hyps || prove_pure ~hyps g

(** Solver registry: RefinedC's side-condition discharge pipeline
    (step (C) of Figure 2).

    Side conditions are tried, in order, against: the default solver
    (simplifier + syntactic lookup + {!Linarith} + {!List_solver}), the
    named solvers enabled by [rc::tactics], and the registered manual
    lemmas.  The verdict records which — the basis of Figure 7's
    auto/manual split.

    The registry is an immutable *value* owned by a verification
    session, not a process-global table: two concurrent sessions can
    solve under different solver sets, lemma libraries, simplifier
    hooks and ablation configs without observing each other. *)

type verdict =
  | Auto  (** proved by the default solver *)
  | Via_solver of string  (** proved by a named solver ([rc::tactics]) *)
  | Via_lemma of string  (** proved by a registered manual lemma *)
  | Unsolved

val pp_verdict : Format.formatter -> verdict -> unit
val is_manual : verdict -> bool

val resolve_ites :
  ?hooks:Simp.hooks -> hyps:Term.prop list -> Term.prop -> Term.prop
(** resolve conditionals whose condition the hypotheses decide, e.g. the
    refinement [(n ≤ a ? a - n : a)] under the branch fact [n ≤ a] *)

(** {1 The registry value} *)

type t = {
  solvers : solver list;  (** named solvers, in registration order *)
  lemmas : lemma list;  (** manual lemmas, in registration order *)
  default_only : bool;
      (** ablation: ignore named solvers and lemmas — the paper's "one
          default solver" baseline *)
  hooks : Simp.hooks;  (** expert simplifier extensions *)
  fault : Rc_util.Faultsim.t option;
      (** this session's fault-injection campaign, if any *)
}

and solver = {
  name : string;
  run : t -> hyps:Term.prop list -> Term.prop -> bool;
      (** a named solver receives the registry so it can call back into
          {!default_prove} for its pure subgoals *)
}

(** {1 Manual lemmas (the stand-in for manual Coq proofs)} *)

and lemma = {
  lname : string;
  vars : (string * Sort.t) list;  (** universally quantified metavars *)
  premises : Term.prop list;
      (** discharged left to right; a premise may bind further metavars
          by matching a hypothesis *)
  concl : Term.prop;
}

val builtin_solvers : solver list
(** multiset_solver, set_solver, list_solver, lia *)

val default : t
(** builtin solvers, no lemmas, no hooks, no ablation, no faults *)

val create :
  ?solvers:solver list ->
  ?lemmas:lemma list ->
  ?default_only:bool ->
  ?hooks:Simp.hooks ->
  ?fault:Rc_util.Faultsim.t ->
  unit ->
  t
(** [create ()] = {!default}; [?solvers] are appended after the builtin
    ones *)

val add_solver : t -> solver -> t
val add_lemma : t -> lemma -> t
val with_fault : t -> Rc_util.Faultsim.t option -> t
val find_solver : t -> string -> solver option

val default_prove : t -> hyps:Term.prop list -> Term.prop -> bool
(** the default solver (under the registry's simplifier hooks) *)

val fingerprint : t -> string
(** digest of the registry's solvers, lemmas, hooks and ablation state —
    a component of the verification-cache key.  The fault-injection
    campaign is deliberately excluded: faults perturb control flow, not
    the meaning of a verdict (and faulted runs are never cached). *)

val solve :
  t ->
  ?obs:Rc_util.Obs.t ->
  ?tactics:string list ->
  hyps:Term.prop list ->
  Term.prop ->
  verdict
(** [?obs] records per-prover call counters and latency timers
    ([solver.calls.*] / [solver.ns.*]) and one [solve] trace event with
    the goal and verdict; the default disabled handle costs nothing *)

(** Solver registry: RefinedC's side-condition discharge pipeline
    (step (C) of Figure 2).

    Side conditions are tried, in order, against: the default solver
    (simplifier + syntactic lookup + {!Linarith} + {!List_solver}), the
    named solvers enabled by [rc::tactics], and the registered manual
    lemmas.  The verdict records which — the basis of Figure 7's
    auto/manual split. *)

type verdict =
  | Auto  (** proved by the default solver *)
  | Via_solver of string  (** proved by a named solver ([rc::tactics]) *)
  | Via_lemma of string  (** proved by a registered manual lemma *)
  | Unsolved

val pp_verdict : Format.formatter -> verdict -> unit
val is_manual : verdict -> bool

val resolve_ites : hyps:Term.prop list -> Term.prop -> Term.prop
(** resolve conditionals whose condition the hypotheses decide, e.g. the
    refinement [(n ≤ a ? a - n : a)] under the branch fact [n ≤ a] *)

val default_prove : hyps:Term.prop list -> Term.prop -> bool
(** the default solver *)

(** {1 Named solvers} *)

type solver = { name : string; run : hyps:Term.prop list -> Term.prop -> bool }

val register_solver : solver -> unit
val find_solver : string -> solver option

(** {1 Manual lemmas (the stand-in for manual Coq proofs)} *)

type lemma = {
  lname : string;
  vars : (string * Sort.t) list;  (** universally quantified metavars *)
  premises : Term.prop list;
      (** discharged left to right; a premise may bind further metavars
          by matching a hypothesis *)
  concl : Term.prop;
}

val register_lemma : lemma -> unit
val clear_lemmas : unit -> unit

(** {1 Entry point} *)

val ablation_default_only : bool ref
(** benchmark switch: ignore named solvers and lemmas *)

val fingerprint : unit -> string
(** digest of the registered solvers, lemmas and ablation state — a
    component of the verification-cache key *)

val solve : ?tactics:string list -> hyps:Term.prop list -> Term.prop -> verdict

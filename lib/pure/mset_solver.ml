(** Multiset solver.

    Reproduction of std++'s [multiset_solver], which Figure 3 invokes via
    [rc::tactics ("all: multiset_solver.")].  Handles goals over finite
    multisets of integers: equalities (by normalization to a formal sum
    of element terms and opaque multiset subterms, then cancellation),
    non-emptiness, membership, and bounded-universal goals
    [∀ k, k ∈ s → φ k] (decomposed structurally, with hypothesis chaining
    for opaque parts).  Arithmetic subgoals are delegated to the default
    solver through the [prove_pure] callback. *)

open Term

type nf = {
  elems : term list;  (** element terms, with multiplicity, sorted *)
  opaque : term list;  (** opaque multiset subterms (vars etc.), sorted *)
}

let rec flatten (t : term) : nf =
  match t with
  | MsEmpty -> { elems = []; opaque = [] }
  | MsSingleton e -> { elems = [ e ]; opaque = [] }
  | MsUnion (a, b) ->
      let na = flatten a and nb = flatten b in
      { elems = na.elems @ nb.elems; opaque = na.opaque @ nb.opaque }
  | Ite (PTrue, a, _) -> flatten a
  | Ite (PFalse, _, b) -> flatten b
  | t -> { elems = []; opaque = [ t ] }

let sort_nf nf =
  {
    elems = List.sort compare_term nf.elems;
    opaque = List.sort compare_term nf.opaque;
  }

(* Cancel one occurrence of [x] from [xs] using provable equality. *)
let cancel_one ~eq x xs =
  let rec go acc = function
    | [] -> None
    | y :: rest ->
        if eq x y then Some (List.rev_append acc rest) else go (y :: acc) rest
  in
  go [] xs

let cancel_all ~eq xs ys =
  List.fold_left
    (fun (left, ys) x ->
      match cancel_one ~eq x ys with
      | Some ys' -> (left, ys')
      | None -> (x :: left, ys))
    ([], ys) xs

(* Saturate multiset equality hypotheses as rewrite rules var -> term. *)
let mset_substs hyps =
  List.filter_map
    (function
      | PEq ((Var (_, Sort.Mset) as v), t) when not (equal_term v t) ->
          Some (v, t)
      | PEq (t, (Var (_, Sort.Mset) as v)) when not (equal_term v t) ->
          Some (v, t)
      | _ -> None)
    hyps

let rec apply_substs n substs t =
  if n = 0 then t
  else
    let t' =
      List.fold_left
        (fun t (v, rhs) ->
          match v with
          | Var (x, _) when not (SS.mem x (free_vars_term rhs)) ->
              subst_term [ (x, rhs) ] t
          | _ -> t)
        t substs
    in
    if equal_term t t' then t else apply_substs (n - 1) substs t'

(** Facts about opaque multiset parts extracted from hypotheses. *)
type facts = {
  members : (term * term) list;  (** (k, s): k ∈ s known *)
  bounded : (term * string * prop) list;
      (** (s, x, φ): ∀x, x ∈ s → φ known *)
  nonempty : term list;
}

let gather_facts hyps =
  List.fold_left
    (fun f h ->
      match h with
      | PIn (k, s) when sort_of s = Sort.Mset ->
          { f with members = (k, s) :: f.members }
      | PForall (x, _, PImp (PIn (Var (x', _), s), phi)) when x = x' ->
          { f with bounded = (s, x, phi) :: f.bounded }
      | PNot (PEq (s, MsEmpty)) | PNot (PEq (MsEmpty, s)) ->
          { f with nonempty = s :: f.nonempty }
      | _ -> f)
    { members = []; bounded = []; nonempty = [] }
    hyps

let rec prove ?(hooks = Simp.no_hooks)
    ~(prove_pure : hyps:prop list -> prop -> bool) ~hyps goal =
  let goal = Simp.simp_prop ~hooks goal in
  (* saturation: every known membership k ∈ S instantiates every bounded
     fact ∀x∈S. φ(x), enriching the pure context (one round suffices for
     the case studies) *)
  let hyps =
    let members =
      List.filter_map
        (function PIn (k, s) -> Some (k, s) | _ -> None)
        hyps
    in
    let insts =
      List.concat_map
        (function
          | PForall (x, _, PImp (PIn (Var (x', _), s), phi)) when x = x' ->
              List.filter_map
                (fun (k, s') ->
                  if equal_term s s' then Some (subst_prop [ (x, k) ] phi)
                  else None)
                members
          | _ -> [])
        hyps
    in
    insts @ hyps
  in
  let substs = mset_substs hyps in
  let norm t = sort_nf (flatten (apply_substs 8 substs (Simp.simp_term ~hooks t))) in
  let eq_elem a b =
    equal_term a b || prove_pure ~hyps (PEq (a, b))
  in
  let facts = gather_facts hyps in
  match goal with
  | PTrue -> true
  | PAnd (a, b) ->
      prove ~hooks ~prove_pure ~hyps a && prove ~hooks ~prove_pure ~hyps b
  | POr (a, b) -> prove ~hooks ~prove_pure ~hyps a || prove ~hooks ~prove_pure ~hyps b
  | PImp (a, b) -> (
      match Simp.destruct_hyp ~hooks a with
      | None -> true
      | Some hs -> prove ~hooks ~prove_pure ~hyps:(hs @ hyps) b)
  (* Decompose universals whose premise was split by the simplifier. *)
  | PForall (x, s, PImp (POr (p, q), phi)) ->
      prove ~hooks ~prove_pure ~hyps (PForall (x, s, PImp (p, phi)))
      && prove ~hooks ~prove_pure ~hyps (PForall (x, s, PImp (q, phi)))
  | PForall (x, s, PAnd (p, q)) ->
      prove ~hooks ~prove_pure ~hyps (PForall (x, s, p))
      && prove ~hooks ~prove_pure ~hyps (PForall (x, s, q))
  | PForall (x, _, PImp (PEq (Var (x', _), e), phi))
    when x = x' && not (SS.mem x (free_vars_term e)) ->
      prove ~hooks ~prove_pure ~hyps (subst_prop [ (x, e) ] phi)
  | PForall (x, _, PImp (PEq (e, Var (x', _)), phi))
    when x = x' && not (SS.mem x (free_vars_term e)) ->
      prove ~hooks ~prove_pure ~hyps (subst_prop [ (x, e) ] phi)
  | PEq (s1, s2) when sort_of s1 = Sort.Mset || sort_of s2 = Sort.Mset ->
      let n1 = norm s1 and n2 = norm s2 in
      let left_e, rest_e = cancel_all ~eq:eq_elem n1.elems n2.elems in
      let left_o, rest_o =
        cancel_all ~eq:equal_term n1.opaque n2.opaque
      in
      left_e = [] && rest_e = [] && left_o = [] && rest_o = []
  | PNot (PEq (s, MsEmpty)) | PNot (PEq (MsEmpty, s)) ->
      let n = norm s in
      n.elems <> []
      || List.exists
           (fun v ->
             List.exists (fun s' -> equal_term v s') facts.nonempty
             || List.exists (fun (_, s') -> equal_term v s') facts.members)
           n.opaque
  | PIn (k, s) when sort_of s = Sort.Mset ->
      let n = norm s in
      List.exists (eq_elem k) n.elems
      || List.exists
           (fun v ->
             List.exists
               (fun (k', s') -> equal_term v s' && eq_elem k k')
               facts.members)
           n.opaque
  | PForall (x, sx, PImp (PIn (Var (x', _), s), phi))
    when x = x' && sort_of s = Sort.Mset ->
      let n = norm s in
      let prove_elem e = prove_pure ~hyps (subst_prop [ (x, e) ] phi) in
      let prove_opaque v =
        List.exists
          (fun (s', y, psi) ->
            let matches =
              equal_term (apply_substs 8 substs s') v || equal_term s' v
            in
            matches
            &&
            (* Γ, ψ[y:=x] ⊨ φ for fresh x *)
            let fresh = Var (x ^ "'", sx) in
            let psi' = subst_prop [ (y, fresh) ] psi in
            let phi' = subst_prop [ (x, fresh) ] phi in
            prove_pure ~hyps:(psi' :: hyps) phi')
          facts.bounded
      in
      List.for_all prove_elem n.elems && List.for_all prove_opaque n.opaque
  | g -> List.exists (fun h -> equal_prop h g) hyps || prove_pure ~hyps g

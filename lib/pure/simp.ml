(** Normalizing simplifier for pure terms and propositions.

    This is the reproduction of the [autorewrite]-based simplification
    mechanism of §5: a set of *equivalences* applied to a fixpoint, plus a
    user-extensible hook table.  It is used (a) before any solver runs,
    (b) by Lithium to normalize assumptions added to Γ (goal case (7c)),
    and (c) by the evar heuristics. *)

open Term

(* -------------------------------------------------------------------- *)
(* Extensible rewrite hooks                                              *)
(* -------------------------------------------------------------------- *)

type term_rule = term -> term option
type prop_rule = prop -> prop option

(** Expert-registered rewriting equivalences (RefinedC lets experts
    extend the simplifier; we expose the same hook).  Hooks are an
    immutable *value* carried by the verification session's solver
    registry — not a process-global table — so two concurrent sessions
    can simplify under different equational theories. *)
type hooks = {
  h_term : (string * term_rule) list;
  h_prop : (string * prop_rule) list;
}

let no_hooks = { h_term = []; h_prop = [] }

let hooks ?(term_rules = []) ?(prop_rules = []) () =
  { h_term = term_rules; h_prop = prop_rules }

let add_term_rule h name r = { h with h_term = h.h_term @ [ (name, r) ] }
let add_prop_rule h name r = { h with h_prop = h.h_prop @ [ (name, r) ] }

(** Registration-order hook names, for configuration fingerprints. *)
let hook_names h = List.map fst h.h_term @ List.map fst h.h_prop

(* -------------------------------------------------------------------- *)
(* Built-in term simplification                                          *)
(* -------------------------------------------------------------------- *)

let rec step_term (hooks : hooks) (t : term) : term option =
  match t with
  | Add (Num a, Num b) -> Some (Num (a + b))
  | Add (Num 0, x) | Add (x, Num 0) -> Some x
  | Sub (Num a, Num b) -> Some (Num (a - b))
  | Sub (x, Num 0) -> Some x
  | Sub (a, b) when equal_term a b -> Some (Num 0)
  | NatSub (Num a, Num b) -> Some (Num (max 0 (a - b)))
  | NatSub (x, Num 0) -> Some x
  | NatSub (a, b) when equal_term a b -> Some (Num 0)
  | Mul (Num a, Num b) -> Some (Num (a * b))
  | Mul (Num 0, _) | Mul (_, Num 0) -> Some (Num 0)
  | Mul (Num 1, x) | Mul (x, Num 1) -> Some x
  | Div (x, Num 1) -> Some x
  | Div (Num a, Num b) when b <> 0 ->
      (* Euclidean: round toward -infinity for positive divisors, which is
         all the case studies use. *)
      Some (Num (if a >= 0 then a / b else -(((-a) + b - 1) / b)))
  | Mod (Num a, Num b) when b > 0 -> Some (Num (((a mod b) + b) mod b))
  | Mod (_, Num 1) -> Some (Num 0)
  | Min (Num a, Num b) -> Some (Num (min a b))
  | Max (Num a, Num b) -> Some (Num (max a b))
  | Min (a, b) when equal_term a b -> Some a
  | Max (a, b) when equal_term a b -> Some a
  | Ite (PTrue, a, _) -> Some a
  | Ite (PFalse, _, b) -> Some b
  | Ite (_, a, b) when equal_term a b -> Some a
  | TProp PTrue -> Some (BoolLit true)
  | TProp PFalse -> Some (BoolLit false)
  | LocOfs (l, Num 0) -> Some l
  | LocOfs (LocOfs (l, a), b) -> Some (LocOfs (l, Add (a, b)))
  (* multisets *)
  | MsUnion (MsEmpty, s) | MsUnion (s, MsEmpty) -> Some s
  (* sets *)
  | SetUnion (SetEmpty, s) | SetUnion (s, SetEmpty) -> Some s
  | SetDiff (s, SetEmpty) -> Some s
  | SetDiff (SetEmpty, _) -> Some SetEmpty
  | SetUnion (a, b) when equal_term a b -> Some a
  (* lists *)
  | Append (Nil _, l) | Append (l, Nil _) -> Some l
  | Length (Nil _) -> Some (Num 0)
  | Length (Cons (_, l)) -> Some (Add (Num 1, Length l))
  | Length (Append (a, b)) -> Some (Add (Length a, Length b))
  | Length (Replicate (n, _)) -> Some n
  | Length (SetListInsert (_, _, l)) -> Some (Length l)
  | Replicate (Num 0, _) -> Some (Nil Sort.Unknown)
  | Replicate (Num n, x) when n > 0 && n <= 64 ->
      Some (Cons (x, Replicate (Num (n - 1), x)))
  | NthDflt (_, Num 0, Cons (x, _)) -> Some x
  | NthDflt (d, Num i, Cons (_, l)) when i > 0 ->
      Some (NthDflt (d, Num (i - 1), l))
  | NthDflt (d, i, Replicate (n, x)) ->
      Some (Ite (PAnd (PLe (Num 0, i), PLt (i, n)), x, d))
  | NthDflt (d, i, SetListInsert (j, x, l)) ->
      Some
        (Ite
           ( PAnd (PEq (i, j), PLt (j, Length l)),
             x,
             NthDflt (d, i, l) ))
  | SetListInsert (Num 0, x, Cons (_, l)) -> Some (Cons (x, l))
  | SetListInsert (Num i, x, Cons (y, l)) when i > 0 ->
      Some (Cons (y, SetListInsert (Num (i - 1), x, l)))
  | _ -> first_rule hooks.h_term t

and first_rule rules t =
  match rules with
  | [] -> None
  | (_, r) :: rest -> ( match r t with Some t' -> Some t' | None -> first_rule rest t)

(* -------------------------------------------------------------------- *)
(* Built-in proposition simplification                                   *)
(* -------------------------------------------------------------------- *)

let rec step_prop (hooks : hooks) (p : prop) : prop option =
  match p with
  | PEq (a, b) when equal_term a b -> Some PTrue
  | PEq (Num a, Num b) -> Some (if a = b then PTrue else PFalse)
  | PEq (BoolLit a, BoolLit b) -> Some (if a = b then PTrue else PFalse)
  | PEq (TProp q, BoolLit true) | PEq (BoolLit true, TProp q) -> Some q
  | PEq (TProp q, BoolLit false) | PEq (BoolLit false, TProp q) ->
      Some (PNot q)
  | PEq (NullLoc, LocOfs _) | PEq (LocOfs _, NullLoc) -> Some PFalse
  | PEq (Cons (x, xs), Cons (y, ys)) -> Some (PAnd (PEq (x, y), PEq (xs, ys)))
  | PEq (Cons _, Nil _) | PEq (Nil _, Cons _) -> Some PFalse
  | PEq (MsSingleton _, MsEmpty) | PEq (MsEmpty, MsSingleton _) -> Some PFalse
  | PEq (MsUnion (MsSingleton _, _), MsEmpty)
  | PEq (MsEmpty, MsUnion (MsSingleton _, _)) ->
      Some PFalse
  | PEq (LocOfs (l1, a), LocOfs (l2, b)) when equal_term l1 l2 ->
      Some (PEq (a, b))
  | PEq (l1, LocOfs (l2, b)) when equal_term l1 l2 -> Some (PEq (Num 0, b))
  | PEq (LocOfs (l1, a), l2) when equal_term l1 l2 -> Some (PEq (a, Num 0))
  | PLe (Num a, Num b) -> Some (if a <= b then PTrue else PFalse)
  | PLt (Num a, Num b) -> Some (if a < b then PTrue else PFalse)
  | PLe (a, b) when equal_term a b -> Some PTrue
  | PLt (a, b) when equal_term a b -> Some PFalse
  | PAnd (PTrue, q) | PAnd (q, PTrue) -> Some q
  | PAnd (PFalse, _) | PAnd (_, PFalse) -> Some PFalse
  | POr (PTrue, _) | POr (_, PTrue) -> Some PTrue
  | POr (PFalse, q) | POr (q, PFalse) -> Some q
  | PNot PTrue -> Some PFalse
  | PNot PFalse -> Some PTrue
  | PNot (PNot q) -> Some q
  | PImp (a, b) when equal_prop a b -> Some PTrue
  | PImp (PTrue, q) -> Some q
  | PImp (PFalse, _) -> Some PTrue
  | PImp (_, PTrue) -> Some PTrue
  | PIsTrue (BoolLit b) -> Some (if b then PTrue else PFalse)
  | PIsTrue (TProp q) -> Some q
  | PIn (_, MsEmpty) | PIn (_, SetEmpty) | PIn (_, Nil _) -> Some PFalse
  | PIn (x, MsSingleton y) | PIn (x, SetSingleton y) -> Some (PEq (x, y))
  | PIn (x, MsUnion (a, b)) -> Some (POr (PIn (x, a), PIn (x, b)))
  | PIn (x, SetUnion (a, b)) -> Some (POr (PIn (x, a), PIn (x, b)))
  | PIn (x, Cons (y, l)) -> Some (POr (PEq (x, y), PIn (x, l)))
  | PIn (x, Append (a, b)) -> Some (POr (PIn (x, a), PIn (x, b)))
  | PForall (_, _, PTrue) -> Some PTrue
  | PExists (_, _, PFalse) -> Some PFalse
  | _ -> first_prop_rule hooks.h_prop p

and first_prop_rule rules p =
  match rules with
  | [] -> None
  | (_, r) :: rest -> (
      match r p with Some p' -> Some p' | None -> first_prop_rule rest p)

(* -------------------------------------------------------------------- *)
(* Fixpoint driver                                                       *)
(* -------------------------------------------------------------------- *)

let fuel = 10_000

let rec simp_term_h (h : hooks) (t : term) : term =
  let t = map_term (simp_term_h h) (map_prop_in_term h t) in
  match step_term h t with
  | Some t' -> simp_term_fuel h (fuel - 1) t'
  | None -> t

and simp_term_fuel h n t =
  if n <= 0 then t
  else
    let t = map_term (simp_term_h h) (map_prop_in_term h t) in
    match step_term h t with
    | Some t' -> simp_term_fuel h (n - 1) t'
    | None -> t

and map_prop_in_term h t =
  match t with
  | Ite (c, a, b) -> Ite (simp_prop_h h c, a, b)
  | TProp p -> TProp (simp_prop_h h p)
  | _ -> t

and simp_prop_h (h : hooks) (p : prop) : prop =
  let p = map_children h p in
  match step_prop h p with
  | Some p' -> simp_prop_fuel h (fuel - 1) p'
  | None -> p

and simp_prop_fuel h n p =
  if n <= 0 then p
  else
    let p = map_children h p in
    match step_prop h p with
    | Some p' -> simp_prop_fuel h (n - 1) p'
    | None -> p

and map_children h p =
  match p with
  | PAnd (a, b) -> PAnd (simp_prop_h h a, simp_prop_h h b)
  | POr (a, b) -> POr (simp_prop_h h a, simp_prop_h h b)
  | PImp (a, b) -> PImp (simp_prop_h h a, simp_prop_h h b)
  | PNot a -> PNot (simp_prop_h h a)
  | PForall (x, s, q) -> PForall (x, s, simp_prop_h h q)
  | PExists (x, s, q) -> PExists (x, s, simp_prop_h h q)
  | _ -> map_prop (simp_term_h h) p

let simp_term ?(hooks = no_hooks) t = simp_term_h hooks t
let simp_prop ?(hooks = no_hooks) p = simp_prop_h hooks p

(* -------------------------------------------------------------------- *)
(* Hypothesis normalization (Lithium goal case (7c))                     *)
(* -------------------------------------------------------------------- *)

(** [destruct_hyp p] splits a hypothesis into a list of simpler
    hypotheses, mirroring Lithium's normalization of assumptions: e.g.
    [xs ++ ys = [] ↦ xs = []; ys = []], conjunctions split, trivial
    hypotheses dropped.  Returns [None] if the hypothesis is
    contradictory (so the goal holds vacuously). *)
let rec destruct_hyp ?(hooks = no_hooks) (p : prop) : prop list option =
  let destruct_hyp p = destruct_hyp ~hooks p in
  match simp_prop_h hooks p with
  | PTrue -> Some []
  | PFalse -> None
  | PAnd (a, b) -> (
      match destruct_hyp a with
      | None -> None
      | Some xs -> (
          match destruct_hyp b with
          | None -> None
          | Some ys -> Some (xs @ ys)))
  | PEq (Append (a, b), Nil s) | PEq (Nil s, Append (a, b)) -> (
      match destruct_hyp (PEq (a, Nil s)) with
      | None -> None
      | Some xs -> (
          match destruct_hyp (PEq (b, Nil s)) with
          | None -> None
          | Some ys -> Some (xs @ ys)))
  | PEq (MsUnion (a, b), MsEmpty) | PEq (MsEmpty, MsUnion (a, b)) -> (
      match destruct_hyp (PEq (a, MsEmpty)) with
      | None -> None
      | Some xs -> (
          match destruct_hyp (PEq (b, MsEmpty)) with
          | None -> None
          | Some ys -> Some (xs @ ys)))
  | p -> Some [ p ]

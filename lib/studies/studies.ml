(** Case-study companions: the expert-defined types and manual lemmas
    that the paper's §7 evaluation attributes to the RefinedC standard
    library or to per-example Coq files.

    - Concurrency (class #6 / #2): the spinlock and barrier abstractions
      are built on the atomic-Boolean type of §6; their protected
      resources mention concrete locations, so they are registered here
      as named types ("defined ahead of time, in Lithium, by an expert",
      §1) rather than written in the annotation language.
    - Hashmap (class #4): the pure lemmas about the functional probing
      function, standing in for the paper's 265 lines of manual Coq
      proofs; each registered lemma is counted in the "Pure" column.

    Everything here is a *value* — type definitions, lemma lists,
    simplifier hooks — installed into a particular session's type
    environment and registry by {!install} / {!session}.  Nothing is
    registered globally: two sessions can disagree about whether the
    case-study library is loaded. *)

open Rc_pure
open Rc_pure.Term
open Rc_refinedc.Rtype
module Layout = Rc_caesium.Layout
module Int_type = Rc_caesium.Int_type

let i32 = Int_type.i32
let u64 = Int_type.size_t

(* ------------------------------------------------------------------ *)
(* Spinlock protecting an integer cell (case study #6a)                *)
(* ------------------------------------------------------------------ *)

let lock_sl = Layout.mk_struct "lock" [ ("locked", Layout.Int i32) ]

(** [c @ lock_t]: a spinlock whose critical resource is the integer cell
    at location [c] — the atomicbool(True, H) encoding of §6. *)
let lock_t : type_def =
  {
      td_name = "lock_t";
      td_params = [ ("c", Sort.Loc) ];
      td_layout = Some (Layout.Struct lock_sl);
      td_unfold =
        (function
        | [ c ] ->
            TExists
              ( "st",
                Sort.Bool,
                fun st ->
                  TAtomicBool
                    ( i32,
                      PIsTrue st,
                      [],
                      [ HAtom (LocTy (c, t_int_ex i32)) ] ) )
        | _ -> invalid_arg "lock_t arity");
  }

(* ------------------------------------------------------------------ *)
(* One-time barrier (case study #6b)                                   *)
(* ------------------------------------------------------------------ *)

let barrier_sl = Layout.mk_struct "barrier" [ ("released", Layout.Int i32) ]

(** [c @ barrier_t]: a one-shot barrier transferring the integer cell at
    [c] from the signaller to the waiter. *)
let barrier_t : type_def =
  {
      td_name = "barrier_t";
      td_params = [ ("c", Sort.Loc) ];
      td_layout = Some (Layout.Struct barrier_sl);
      td_unfold =
        (function
        | [ c ] ->
            TExists
              ( "st",
                Sort.Bool,
                fun st ->
                  TAtomicBool
                    ( i32,
                      PIsTrue st,
                      [ HAtom (LocTy (c, t_int_ex i32)) ],
                      [] ) )
        | _ -> invalid_arg "barrier_t arity");
  }

(* ------------------------------------------------------------------ *)
(* Thread-safe allocator (case study #2a)                              *)
(* ------------------------------------------------------------------ *)

let tsalloc_sl =
  Layout.mk_struct "tsalloc"
    [
      ("locked", Layout.Int i32);
      ("len", Layout.Int u64);
      ("buffer", Layout.Ptr);
    ]

(** layout of the lock-protected part (len + buffer at offset 8) *)
let tsalloc_inner_sl =
  Layout.mk_struct "tsalloc_inner"
    [ ("len", Layout.Int u64); ("buffer", Layout.Ptr) ]

(** [l @ talloc_t]: the spinlocked allocator — the lock at offset 0
    protects the allocator state (a [mem_t]-shaped resource) at offset 8
    of the same struct.  This is the spinlocked-type pattern of §2.1. *)
let talloc_t : type_def =
  {
      td_name = "talloc_t";
      td_params = [ ("l", Sort.Loc) ];
      td_layout = Some (Layout.Struct tsalloc_sl);
      td_unfold =
        (function
        | [ l ] ->
            let protected_state =
              TExists
                ( "a",
                  Sort.Nat,
                  fun a ->
                    TStruct
                      ( tsalloc_inner_sl,
                        [ TInt (u64, a); TOwn (None, TUninit a) ] ) )
            in
            TStruct
              ( tsalloc_sl,
                [
                  TExists
                    ( "st",
                      Sort.Bool,
                      fun st ->
                        TAtomicBool
                          ( i32,
                            PIsTrue st,
                            [],
                            [
                              HAtom
                                (LocTy
                                   ( Simp.simp_term (LocOfs (l, Num 8)),
                                     protected_state ));
                            ] ) );
                  TManaged 8;
                  TManaged 8;
                ] )
        | _ -> invalid_arg "talloc_t arity");
  }

(* ------------------------------------------------------------------ *)
(* Hafnium-style memory pool (case study #5)                           *)
(* ------------------------------------------------------------------ *)

let mpool_sl =
  Layout.mk_struct "mpool"
    [ ("locked", Layout.Int i32); ("entries", Layout.Ptr) ]

let mpool_inner_sl = Layout.mk_struct "mpool_inner" [ ("entries", Layout.Ptr) ]

(** [l @ mpool_t]: a spinlock at offset 0 protecting the entry list
    pointer at offset 8 (typed by the C-declared recursive mentries_t). *)
let mpool_t : type_def =
  {
      td_name = "mpool_t";
      td_params = [ ("l", Sort.Loc) ];
      td_layout = Some (Layout.Struct mpool_sl);
      td_unfold =
        (function
        | [ l ] ->
            let protected_state =
              TExists
                ( "k",
                  Sort.Nat,
                  fun k ->
                    TStruct (mpool_inner_sl, [ TNamed ("mentries_t", [ k ]) ])
                )
            in
            TStruct
              ( mpool_sl,
                [
                  TExists
                    ( "st",
                      Sort.Bool,
                      fun st ->
                        TAtomicBool
                          ( i32,
                            PIsTrue st,
                            [],
                            [
                              HAtom
                                (LocTy
                                   ( Simp.simp_term (LocOfs (l, Num 8)),
                                     protected_state ));
                            ] ) );
                  TManaged 8;
                ] )
        | _ -> invalid_arg "mpool_t arity");
  }

(* ------------------------------------------------------------------ *)
(* Hashmap probing lemmas (case study #4)                              *)
(* ------------------------------------------------------------------ *)

(** Manual pure lemmas about the abstract probe function, the stand-in
    for the paper's manual Coq reasoning (counted as "Pure"/manual). *)
let hashmap_lemmas : Registry.lemma list =
  let x = Var ("x", Sort.Int) and m = Var ("m", Sort.Int) in
  let vars = [ ("x", Sort.Int); ("m", Sort.Int) ] in
  let nonneg_premises = [ PLe (Num 0, x); PLt (Num 0, m) ] in
  [
      (* probing stays in bounds *)
      { Registry.lname = "mod_nonneg"; vars; premises = nonneg_premises;
        concl = PLe (Num 0, Mod (x, m)) };
      { Registry.lname = "mod_lt_cap"; vars; premises = nonneg_premises;
        concl = PLt (Mod (x, m), m) };
      { Registry.lname = "mod_in_range_lo"; vars; premises = nonneg_premises;
        concl = PLe (Num (-2147483648), Mod (x, m)) };
      { Registry.lname = "mod_in_range_hi"; vars;
        premises = nonneg_premises @ [ PLe (m, Num 2147483647) ];
        concl = PLe (Mod (x, m), Num 2147483647) };
    { Registry.lname = "mod_in_range_u64"; vars;
      premises = nonneg_premises;
      concl = PLe (Mod (x, m), Num (Int_type.max_val u64)) };
  ]

(** Interpretation of the abstract [probe] function, shared with the
    Caesium-level implementation: probe k cap = k mod cap.  Deliberately
    *not* part of {!hooks}: the hashmap study proves probing in-bounds
    from the lemmas alone; sessions that want definitional unfolding opt
    in explicitly. *)
let probe_def : string * Simp.term_rule =
  ( "probe-def",
    fun t ->
      match t with
      | App ("probe", [ k; cap ]) -> Some (Mod (k, cap))
      | _ -> None )

(* ------------------------------------------------------------------ *)
(* List reversal (in-place list reversal, class #1 extension)          *)
(* ------------------------------------------------------------------ *)

(** Defining equations of the functional [rev], carried as
    simplification equivalences (the expert-extensible rewriting hook of
    paper §5). *)
let rev_rule : string * Simp.term_rule =
  ( "rev-unfold",
    fun t ->
      match t with
      | App ("rev", [ Nil s ]) -> Some (Nil s)
      | App ("rev", [ Cons (x, l) ]) ->
          Some (Append (App ("rev", [ l ]), Cons (x, Nil Sort.Int)))
      | App ("rev", [ Append (a, b) ]) ->
          Some (Append (App ("rev", [ b ]), App ("rev", [ a ])))
      | _ -> None )

(* ------------------------------------------------------------------ *)
(* Layered BST lemmas (case study #3a)                                 *)
(* ------------------------------------------------------------------ *)

(** The functional-layer lemmas relating list membership to the in-order
    decomposition [xs = lxs ++ v :: rxs] — the manual pure reasoning
    that makes the layered approach much more expensive than the direct
    one (§7 class #3). *)
let bstl_lemmas : Registry.lemma list =
  let k = Var ("k", Sort.Int) in
  let v = Var ("v", Sort.Int) in
  let xs = Var ("xs", Sort.List Sort.Int) in
  let lxs = Var ("lxs", Sort.List Sort.Int) in
  let rxs = Var ("rxs", Sort.List Sort.Int) in
  let shape = PEq (xs, Append (lxs, Cons (v, rxs))) in
  let j = Var ("j", Sort.Int) in
  let lvars =
    [ ("k", Sort.Int); ("v", Sort.Int); ("xs", Sort.List Sort.Int);
      ("lxs", Sort.List Sort.Int); ("rxs", Sort.List Sort.Int) ]
  in
  [
    { Registry.lname = "elem_of_root"; vars = lvars;
        premises = [ shape; PEq (k, v) ]; concl = PIn (k, xs) };
      { Registry.lname = "elem_of_left"; vars = lvars;
        premises = [ shape ];
        concl = PImp (PIn (k, lxs), PIn (k, xs)) };
      { Registry.lname = "elem_of_right"; vars = lvars;
        premises = [ shape ];
        concl = PImp (PIn (k, rxs), PIn (k, xs)) };
      { Registry.lname = "elem_of_left_inv"; vars = lvars;
        premises =
          [ shape; PLt (k, v);
            PForall ("j", Sort.Int, PImp (PIn (j, rxs), PLt (v, j))) ];
        concl = PImp (PIn (k, xs), PIn (k, lxs)) };
      { Registry.lname = "elem_of_right_inv"; vars = lvars;
        premises =
          [ shape; PLt (v, k);
            PForall ("j", Sort.Int, PImp (PIn (j, lxs), PLt (j, v))) ];
        concl = PImp (PIn (k, xs), PIn (k, rxs)) };
    { Registry.lname = "not_elem_of_nil"; vars = [ ("k", Sort.Int) ];
      premises = [];
      concl = PImp (PIn (k, Nil Sort.Int), PFalse) };
  ]

(* ------------------------------------------------------------------ *)
(* Assembling a case-study session                                     *)
(* ------------------------------------------------------------------ *)

(** All expert type definitions of the case-study library. *)
let type_defs : type_def list = [ lock_t; barrier_t; talloc_t; mpool_t ]

(** All manual lemmas of the case-study library. *)
let lemmas : Registry.lemma list = hashmap_lemmas @ bstl_lemmas

(** The case-study simplifier hooks ([probe_def] excluded, see above). *)
let hooks : Simp.hooks = Simp.hooks ~term_rules:[ rev_rule ] ()

(** Install the case-study type definitions into [te] (idempotent). *)
let install_types (te : tenv) : unit = List.iter (register_type_def te) type_defs

(** A registry extending [base] (default: the stock registry) with the
    case-study lemmas and simplifier hooks. *)
let registry ?(base = Registry.default) () : Registry.t =
  let r = List.fold_left Registry.add_lemma base lemmas in
  { r with Registry.hooks }

(** A fresh session pre-loaded with the whole case-study library — the
    configuration under which the §7 corpus is checked.  Extra [rules],
    the goal-simp config and the [budget] pass through to
    {!Rc_refinedc.Session.create}. *)
let session ?rules ?gs ?budget () : Rc_refinedc.Session.t =
  let te = create_tenv () in
  install_types te;
  Rc_refinedc.Session.create ?rules ~registry:(registry ()) ?gs ~tenv:te
    ?budget ()

(** Independent certificate checking — this reproduction's stand-in for
    Coq's checking of the paper's generated typing derivations (see
    DESIGN.md §1).

    The Lithium search engine is untrusted; [check] re-validates its
    output derivation: every rule application must exist in the
    registered rule library, every pure side condition is re-discharged
    from scratch (with evars resolved, under the recorded hypotheses),
    and the tree must be structurally well-formed. *)

type issue =
  | Unknown_rule of string
  | Side_condition_failed of Rc_pure.Term.prop
  | Evars_remain of Rc_pure.Term.prop
  | Malformed_node of string

val pp_issue : Format.formatter -> issue -> unit

type report = {
  nodes : int;
  rule_applications : int;
  side_conditions : int;
  issues : issue list;
}

val ok : report -> bool
val pp_report : Format.formatter -> report -> unit

val rule_table : Rc_refinedc.Session.t -> string list
(** the declarative rule table the checker validates against: the
    session's standard library plus its extra rules *)

val check :
  ?obs:Rc_util.Obs.t ->
  session:Rc_refinedc.Session.t ->
  Rc_lithium.Deriv.node ->
  report
(** re-validate a derivation against [session]'s rule library and
    solver registry (the session that produced it, or one configured
    identically).  [?obs] records a [phase:cert] span plus
    [cert.nodes]/[cert.sides]/[cert.issues] counters and a verdict
    instant. *)

(** Independent certificate checking — the reproduction's stand-in for
    Coq's proof checking of the paper's generated typing derivations.

    The Lithium search engine (evar heuristics, context management, rule
    selection) is *not* trusted: every run emits a derivation tree
    ({!Rc_lithium.Deriv}) and this module re-validates it:

    - every rule application must name a rule that exists in the
      registered rule library (the paper's analogue: typing rules are
      proven sound once, ahead of time, in Iris; applying an unknown or
      misspelled rule is a certificate error);
    - every pure side condition is re-discharged from scratch, with all
      evars resolved, under the recorded hypotheses, by the solver
      registry — verdicts are recomputed, not believed;
    - structural sanity: branch/intro nodes have the right arity.

    This narrows the TCB to: the Caesium semantics, the frontend, the
    declarative statements of the typing rules, and this checker (plus
    the pure solvers it invokes) — mirroring §3's TCB discussion. *)

open Rc_pure
module Deriv = Rc_lithium.Deriv

type issue =
  | Unknown_rule of string
  | Side_condition_failed of Term.prop
  | Evars_remain of Term.prop
  | Malformed_node of string

let pp_issue ppf = function
  | Unknown_rule r -> Fmt.pf ppf "unknown typing rule %s" r
  | Side_condition_failed p ->
      Fmt.pf ppf "side condition does not re-check: %a" Term.pp_prop p
  | Evars_remain p ->
      Fmt.pf ppf "side condition still contains evars: %a" Term.pp_prop p
  | Malformed_node s -> Fmt.pf ppf "malformed derivation node: %s" s

type report = {
  nodes : int;
  rule_applications : int;
  side_conditions : int;
  issues : issue list;
}

let ok r = r.issues = []

let pp_report ppf r =
  Fmt.pf ppf "certificate: %d nodes, %d rule applications, %d side conditions — %s"
    r.nodes r.rule_applications r.side_conditions
    (if ok r then "OK" else Fmt.str "%d ISSUES" (List.length r.issues));
  List.iter (fun i -> Fmt.pf ppf "@.  - %a" pp_issue i) r.issues

(** The declarative rule table the checker validates against: the names
    of the session's rule library (computed independently of any
    particular search run — the session's *declared* rules, not the
    search engine's trace). *)
let rule_table (session : Rc_refinedc.Session.t) : string list =
  List.map
    (fun r -> r.Rc_refinedc.Lang.E.rname)
    (Rc_refinedc.Rules.builtin () @ session.Rc_refinedc.Session.extra_rules)

(** Re-validate a derivation against [session]'s rule library and solver
    registry.  The session must be the one (or be configured identically
    to the one) that produced the derivation: certificates are only
    meaningful relative to a rule library and registry, exactly as the
    paper's derivations are only meaningful relative to the Iris-proven
    rule statements. *)
let check ?(obs = Rc_util.Obs.off) ~(session : Rc_refinedc.Session.t)
    (d : Deriv.node) : report =
  let table = rule_table session in
  let nodes = ref 0 in
  let apps = ref 0 in
  let sides = ref 0 in
  let issues = ref [] in
  let flag i = issues := i :: !issues in
  let rec go (n : Deriv.node) =
    incr nodes;
    (* rule applications *)
    (if String.length n.Deriv.d_case > 5 && String.sub n.Deriv.d_case 0 5 = "rule:"
     then begin
       incr apps;
       let rname =
         String.sub n.Deriv.d_case 5 (String.length n.Deriv.d_case - 5)
       in
       if not (List.mem rname table) then flag (Unknown_rule rname)
     end);
    (* side conditions: re-discharge from scratch *)
    List.iter
      (fun (p, _claimed) ->
        incr sides;
        if Term.has_evars_prop p then flag (Evars_remain p)
        else
          match
            Registry.solve session.Rc_refinedc.Session.registry
              ~tactics:n.Deriv.d_tactics ~hyps:n.Deriv.d_hyps p
          with
          | Registry.Unsolved -> flag (Side_condition_failed p)
          | _ -> ())
      n.Deriv.d_side;
    (* structural sanity *)
    (match n.Deriv.d_case with
    | "vacuous" | "done" ->
        if n.Deriv.d_children <> [] then
          flag (Malformed_node "leaf with children")
    | _ -> ());
    List.iter go n.Deriv.d_children
  in
  Rc_util.Obs.timed obs ~cat:"cert" ~key:"phase.cert" "phase:cert" (fun () ->
      go d);
  let report =
    {
      nodes = !nodes;
      rule_applications = !apps;
      side_conditions = !sides;
      issues = List.rev !issues;
    }
  in
  if Rc_util.Obs.on obs then begin
    Rc_util.Obs.counter obs ~by:report.nodes "cert.nodes";
    Rc_util.Obs.counter obs ~by:report.side_conditions "cert.sides";
    if not (ok report) then
      Rc_util.Obs.counter obs ~by:(List.length report.issues) "cert.issues";
    Rc_util.Obs.instant obs ~cat:"cert"
      ~args:
        [
          ("nodes", string_of_int report.nodes);
          ("verdict", if ok report then "ok" else "issues");
        ]
      "cert:verdict"
  end;
  report

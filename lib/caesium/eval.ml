(** The Caesium interpreter.

    An executable small-step machine for {!Syntax}, detecting every class
    of undefined behaviour in {!Ub}, including data races.  Races are
    detected with a vector-clock happens-before monitor (FastTrack-style):
    sequentially-consistent atomic accesses act as acquire-release
    synchronization, and two conflicting non-atomic accesses that are not
    ordered by happens-before raise {!Ub.Data_race} — the RustBelt-style
    treatment Caesium adopts (§3). *)

open Syntax

(* ------------------------------------------------------------------ *)
(* Vector clocks                                                       *)
(* ------------------------------------------------------------------ *)

module Vc = struct
  type t = int array

  let create n = Array.make n 0
  let get c t = if t < Array.length c then c.(t) else 0

  let join a b =
    let n = max (Array.length a) (Array.length b) in
    Array.init n (fun i -> max (get a i) (get b i))

  let copy = Array.copy

  (** [leq_at (t, clk) c]: the event (t, clk) happens-before clock [c]. *)
  let leq_at (t, clk) c = clk <= get c t
end

type byte_state = {
  mutable last_write : (int * int) option;  (** (tid, clock) *)
  mutable last_reads : (int * int) list;  (** per-tid read clocks *)
}

(* ------------------------------------------------------------------ *)
(* Machine state                                                       *)
(* ------------------------------------------------------------------ *)

type frame = {
  func : func;
  env : (string * Loc.t) list;
  mutable cur_block : string;
  mutable cur_stmt : int;
  dest : (Layout.t * Loc.t) option;
  owned : Loc.t list;  (** stack slots to free on return *)
}

type thread = {
  tid : int;
  mutable frames : frame list;
  mutable finished : bool;
  mutable result : Value.t option;
  mutable clock : Vc.t;
}

type t = {
  prog : program;
  heap : Heap.t;
  mutable threads : thread list;
  genv : (string * Loc.t) list;  (** globals *)
  race_table : (int * int, byte_state) Hashtbl.t;
  sync_table : (int * int, Vc.t) Hashtbl.t;  (** per-atomic-cell clocks *)
  mutable steps : int;
  detect_races : bool;
}

let ub u = raise (Ub.Undef u)

let create ?(detect_races = true) (prog : program) : t =
  let heap = Heap.create () in
  let genv =
    List.map (fun (g, l) -> (g, Heap.alloc heap (Layout.size l))) prog.globals
  in
  {
    prog;
    heap;
    threads = [];
    genv;
    race_table = Hashtbl.create 256;
    sync_table = Hashtbl.create 16;
    steps = 0;
    detect_races;
  }

let global_loc m g = List.assoc_opt g m.genv

(* ------------------------------------------------------------------ *)
(* Race monitoring                                                     *)
(* ------------------------------------------------------------------ *)

let key_of (l : Loc.t) i =
  match l with
  | Loc.Null -> ub Ub.Null_deref
  | Loc.Ptr { alloc; ofs } -> (alloc, ofs + i)

let monitor_access m (th : thread) (l : Loc.t) (n : int) ~write ~atomic =
  if m.detect_races && List.length m.threads > 1 then begin
    if atomic then begin
      (* acquire-release on the cell keyed by the start byte *)
      let k = key_of l 0 in
      let cell =
        match Hashtbl.find_opt m.sync_table k with
        | Some c -> c
        | None -> Vc.create (List.length m.threads)
      in
      th.clock <- Vc.join th.clock cell;
      Hashtbl.replace m.sync_table k (Vc.copy th.clock);
      th.clock.(th.tid) <- th.clock.(th.tid) + 1
    end
    else
      for i = 0 to n - 1 do
        let k = key_of l i in
        let bs =
          match Hashtbl.find_opt m.race_table k with
          | Some bs -> bs
          | None ->
              let bs = { last_write = None; last_reads = [] } in
              Hashtbl.replace m.race_table k bs;
              bs
        in
        (* check against last write *)
        (match bs.last_write with
        | Some (t', clk) when t' <> th.tid && not (Vc.leq_at (t', clk) th.clock)
          ->
            ub (Ub.Data_race { loc = Loc.shift l i; tids = (t', th.tid) })
        | _ -> ());
        if write then begin
          (* a write must also be ordered after all previous reads *)
          List.iter
            (fun (t', clk) ->
              if t' <> th.tid && not (Vc.leq_at (t', clk) th.clock) then
                ub (Ub.Data_race { loc = Loc.shift l i; tids = (t', th.tid) }))
            bs.last_reads;
          bs.last_write <- Some (th.tid, Vc.get th.clock th.tid);
          bs.last_reads <- []
        end
        else
          bs.last_reads <-
            (th.tid, Vc.get th.clock th.tid)
            :: List.filter (fun (t', _) -> t' <> th.tid) bs.last_reads
      done
  end

(* ------------------------------------------------------------------ *)
(* Operator semantics                                                  *)
(* ------------------------------------------------------------------ *)

let as_int (it : Int_type.t) (v : Value.t) ~ctx : int =
  match Value.to_int it v with
  | Some n -> n
  | None ->
      if Value.has_poison v then ub (Ub.Poison_use ctx)
      else ub (Ub.Stuck (Printf.sprintf "expected %s in %s" it.it_name ctx))

let as_loc (v : Value.t) ~ctx : Loc.t =
  match Value.to_loc v with
  | Some l -> l
  | None ->
      if Value.has_poison v then ub (Ub.Poison_use ctx)
      else ub (Ub.Stuck ("expected pointer in " ^ ctx))

let int_result (it : Int_type.t) ~op (n : int) : Value.t =
  if Int_type.in_range it n then Value.of_int it n
  else if Int_type.is_signed it then ub (Ub.Signed_overflow { op; result = n })
  else Value.of_int it (Int_type.wrap it n)

let bool_result b = Value.of_int Int_type.i32 (if b then 1 else 0)

let eval_int_binop (op : binop) (it : Int_type.t) (a : int) (b : int) : Value.t
    =
  match op with
  | AddOp -> int_result it ~op:"+" (a + b)
  | SubOp -> int_result it ~op:"-" (a - b)
  | MulOp -> int_result it ~op:"*" (a * b)
  | DivOp ->
      if b = 0 then ub Ub.Div_by_zero
      else int_result it ~op:"/" (a / b) (* C: truncation toward zero *)
  | ModOp ->
      if b = 0 then ub Ub.Div_by_zero else int_result it ~op:"%" (a mod b)
  | AndOp -> Value.of_int it (a land b)
  | OrOp -> Value.of_int it (a lor b)
  | XorOp -> Value.of_int it (a lxor b)
  | ShlOp ->
      if b < 0 || b >= Int_type.bits it then ub (Ub.Shift_out_of_range b)
      else int_result it ~op:"<<" (a lsl b)
  | ShrOp ->
      if b < 0 || b >= Int_type.bits it then ub (Ub.Shift_out_of_range b)
      else Value.of_int it (a asr b)
  | EqOp -> bool_result (a = b)
  | NeOp -> bool_result (a <> b)
  | LtOp -> bool_result (a < b)
  | LeOp -> bool_result (a <= b)
  | GtOp -> bool_result (a > b)
  | GeOp -> bool_result (a >= b)
  | PtrPlusOp _ | PtrDiffOp _ -> ub (Ub.Stuck "pointer op on integers")

(* ------------------------------------------------------------------ *)
(* Expression evaluation                                               *)
(* ------------------------------------------------------------------ *)

let rec eval_expr (m : t) (th : thread) (env : (string * Loc.t) list)
    (e : expr) : Value.t =
  match e with
  | IntConst (n, it) ->
      if not (Int_type.in_range it n) then
        ub (Ub.Int_out_of_range { value = n; ty = it.it_name });
      Value.of_int it n
  | NullConst -> Value.of_loc Loc.Null
  | FnAddr f ->
      if Syntax.find_func m.prog f = None then ub Ub.Invalid_function_pointer;
      Value.of_fn f
  | VarLoc x -> (
      match List.assoc_opt x env with
      | Some l -> Value.of_loc l
      | None -> (
          match global_loc m x with
          | Some l -> Value.of_loc l
          | None ->
              if Syntax.find_func m.prog x <> None then Value.of_fn x
              else ub (Ub.Stuck ("unbound variable " ^ x))))
  | Use { atomic; layout; arg } ->
      let l = as_loc (eval_expr m th env arg) ~ctx:"load address" in
      check_aligned l layout;
      monitor_access m th l (Layout.size layout) ~write:false ~atomic;
      let v = Heap.load m.heap l (Layout.size layout) in
      (* reading a scalar: poison use is UB; struct/array copies move raw
         bytes (access to representation bytes, §3) *)
      (match layout with
      | Layout.Int _ | Layout.Ptr | Layout.FnPtr ->
          if Value.has_poison v then ub (Ub.Poison_use "load")
      | _ -> ());
      v
  | FieldOfs { arg; struct_; field } ->
      let l = as_loc (eval_expr m th env arg) ~ctx:"field access" in
      let f = Layout.field_exn struct_ field in
      Value.of_loc (Loc.shift l f.fld_ofs)
  | BinOp { op; ot1; ot2; e1; e2 } -> (
      let v1 = eval_expr m th env e1 in
      let v2 = eval_expr m th env e2 in
      match (op, ot1, ot2) with
      | PtrPlusOp elem, OPtr, OInt it ->
          let l = as_loc v1 ~ctx:"pointer arithmetic" in
          let n = as_int it v2 ~ctx:"pointer arithmetic" in
          if Loc.is_null l then
            ub (Ub.Ptr_arith_invalid "arithmetic on null pointer");
          let l' = Loc.shift l (n * Layout.size elem) in
          (* the result must stay within the allocation (one-past-end ok) *)
          (match Heap.block_of m.heap l' with
          | Some (b, ofs) when b.alive && ofs >= 0 && ofs <= Array.length b.Heap.bytes
            ->
              ()
          | _ -> ub (Ub.Ptr_arith_invalid "result outside allocation"));
          Value.of_loc l'
      | PtrDiffOp elem, OPtr, OPtr -> (
          let l1 = as_loc v1 ~ctx:"pointer difference" in
          let l2 = as_loc v2 ~ctx:"pointer difference" in
          match (l1, l2) with
          | Loc.Ptr { alloc = a1; ofs = o1 }, Loc.Ptr { alloc = a2; ofs = o2 }
            when a1 = a2 ->
              Value.of_int Int_type.i64 ((o1 - o2) / Layout.size elem)
          | _ -> ub (Ub.Ptr_arith_invalid "difference of unrelated pointers"))
      | (EqOp | NeOp), OPtr, OPtr ->
          let l1 = as_loc v1 ~ctx:"pointer comparison" in
          let l2 = as_loc v2 ~ctx:"pointer comparison" in
          let eq = Loc.equal l1 l2 in
          bool_result (if op = EqOp then eq else not eq)
      | (LtOp | LeOp | GtOp | GeOp), OPtr, OPtr -> (
          let l1 = as_loc v1 ~ctx:"pointer comparison" in
          let l2 = as_loc v2 ~ctx:"pointer comparison" in
          match (l1, l2) with
          | Loc.Ptr { alloc = a1; ofs = o1 }, Loc.Ptr { alloc = a2; ofs = o2 }
            when a1 = a2 ->
              let r =
                match op with
                | LtOp -> o1 < o2
                | LeOp -> o1 <= o2
                | GtOp -> o1 > o2
                | _ -> o1 >= o2
              in
              bool_result r
          | _ -> ub (Ub.Ptr_cmp_different_allocs (l1, l2)))
      | _, OInt it1, OInt _it2 ->
          (* C usual arithmetic conversions are performed by the frontend;
             here both operands already have a common type *)
          let a = as_int it1 v1 ~ctx:"binary operation" in
          let b = as_int it1 v2 ~ctx:"binary operation" in
          eval_int_binop op it1 a b
      | _ -> ub (Ub.Stuck "ill-typed binary operation"))
  | UnOp { op; ot; arg } -> (
      let v = eval_expr m th env arg in
      match (op, ot) with
      | NegOp, OInt it ->
          let a = as_int it v ~ctx:"negation" in
          int_result it ~op:"-" (-a)
      | BitNotOp, OInt it ->
          let a = as_int it v ~ctx:"bitwise not" in
          Value.of_int it (Int_type.wrap it (lnot a))
      | LogNotOp, OInt it ->
          let a = as_int it v ~ctx:"logical not" in
          bool_result (a = 0)
      | LogNotOp, OPtr ->
          let l = as_loc v ~ctx:"logical not" in
          bool_result (Loc.is_null l)
      | _ -> ub (Ub.Stuck "ill-typed unary operation"))
  | CastIntInt { from_; to_; arg } ->
      let v = eval_expr m th env arg in
      let n = as_int from_ v ~ctx:"integer cast" in
      (* out-of-range conversions wrap (the common implementation-defined
         behaviour); RefinedC's typing rules require in-range anyway *)
      Value.of_int to_ (Int_type.wrap to_ n)
  | CastPtrPtr arg -> eval_expr m th env arg

and check_aligned (l : Loc.t) (layout : Layout.t) =
  (* Alignment trapping is opt-in: by default we model a byte-addressable
     machine (the RefinedC type system reproduced here does not track
     alignment facts through uninit-splitting; see DESIGN.md §5). *)
  let a = Layout.align layout in
  match l with
  | Loc.Null -> ub Ub.Null_deref
  | Loc.Ptr { ofs; _ } ->
      if !strict_alignment && a > 1 && ofs mod a <> 0 then
        ub (Ub.Misaligned { loc = l; align = a })

and strict_alignment = ref false

(* ------------------------------------------------------------------ *)
(* Statement execution                                                 *)
(* ------------------------------------------------------------------ *)

exception Thread_done

let truthy m th env (ot : ot) (e : expr) : bool =
  let v = eval_expr m th env e in
  match ot with
  | OInt it -> as_int it v ~ctx:"condition" <> 0
  | OPtr -> not (Loc.is_null (as_loc v ~ctx:"condition"))

let store_typed m th (l : Loc.t) (layout : Layout.t) (v : Value.t)
    ~atomic =
  check_aligned l layout;
  monitor_access m th l (Layout.size layout) ~write:true ~atomic;
  Heap.store m.heap l v

let push_call (m : t) (th : thread) (fname : string) (arg_vals : Value.t list)
    (dest : (Layout.t * Loc.t) option) : unit =
  match Syntax.find_func m.prog fname with
  | None -> ub Ub.Invalid_function_pointer
  | Some f ->
      if List.length f.args <> List.length arg_vals then
        ub (Ub.Stuck ("arity mismatch calling " ^ fname));
      let alloc_slot (x, layout) v =
        let l = Heap.alloc m.heap (Layout.size layout) in
        Heap.store m.heap l v;
        (x, l)
      in
      let arg_env = List.map2 alloc_slot f.args arg_vals in
      let local_env =
        List.map
          (fun (x, layout) -> (x, Heap.alloc m.heap (Layout.size layout)))
          f.locals
      in
      let env = arg_env @ local_env in
      let frame =
        {
          func = f;
          env;
          cur_block = f.entry;
          cur_stmt = 0;
          dest;
          owned = List.map snd env;
        }
      in
      th.frames <- frame :: th.frames

let pop_frame (m : t) (th : thread) (ret : Value.t option) : unit =
  match th.frames with
  | [] -> raise Thread_done
  | frame :: rest ->
      List.iter (fun l -> Heap.free m.heap l) frame.owned;
      (match (frame.dest, ret) with
      | Some (layout, l), Some v -> store_typed m th l layout v ~atomic:false
      | _ -> ());
      th.frames <- rest;
      if rest = [] then begin
        th.finished <- true;
        th.result <- ret;
        raise Thread_done
      end

(** Execute one statement (or terminator) of thread [th].  Returns after
    a single atomic step, suitable for interleaving. *)
let step (m : t) (th : thread) : unit =
  m.steps <- m.steps + 1;
  match th.frames with
  | [] -> raise Thread_done
  | frame :: _ -> (
      let block =
        match Syntax.find_block frame.func frame.cur_block with
        | Some b -> b
        | None -> ub (Ub.Stuck ("no block " ^ frame.cur_block))
      in
      let env = frame.env in
      if frame.cur_stmt < List.length block.stmts then begin
        let s = List.nth block.stmts frame.cur_stmt in
        frame.cur_stmt <- frame.cur_stmt + 1;
        match s with
        | Skip -> ()
        | ExprStmt e -> ignore (eval_expr m th env e)
        | Assign { atomic; layout; lhs; rhs } ->
            let v = eval_expr m th env rhs in
            let l = as_loc (eval_expr m th env lhs) ~ctx:"assignment" in
            if List.length v <> Layout.size layout then
              ub (Ub.Stuck "assignment size mismatch");
            store_typed m th l layout v ~atomic
        | Free e ->
            let l = as_loc (eval_expr m th env e) ~ctx:"free" in
            Heap.free m.heap l
        | Cas { layout; obj; expected; desired; dest } -> (
            match layout with
            | Layout.Int it ->
                let lobj = as_loc (eval_expr m th env obj) ~ctx:"CAS" in
                let lexp = as_loc (eval_expr m th env expected) ~ctx:"CAS" in
                let vdes = eval_expr m th env desired in
                check_aligned lobj layout;
                monitor_access m th lobj it.size ~write:true ~atomic:true;
                let cur = Heap.load m.heap lobj it.size in
                let cur_i = as_int it cur ~ctx:"CAS object" in
                let exp_v = Heap.load m.heap lexp it.size in
                let exp_i = as_int it exp_v ~ctx:"CAS expected" in
                let success = cur_i = exp_i in
                if success then Heap.store m.heap lobj vdes
                else Heap.store m.heap lexp cur;
                (match dest with
                | Some (dl, dst) ->
                    let dloc = as_loc (eval_expr m th env dst) ~ctx:"CAS dest" in
                    let res =
                      match dl with
                      | Layout.Int dit ->
                          Value.of_int dit (if success then 1 else 0)
                      | _ -> ub (Ub.Stuck "CAS result must be integer")
                    in
                    store_typed m th dloc dl res ~atomic:false
                | None -> ())
            | _ -> ub (Ub.Stuck "CAS on non-integer layout"))
        | Call { dest; fn; args } ->
            let fname =
              match fn with
              | FnAddr f -> f
              | VarLoc f when Syntax.find_func m.prog f <> None -> f
              | e -> (
                  let v = eval_expr m th env e in
                  match Value.to_fn v with
                  | Some f -> f
                  | None -> ub Ub.Invalid_function_pointer)
            in
            let arg_vals =
              List.map (fun (_, e) -> eval_expr m th env e) args
            in
            let dest =
              Option.map
                (fun (dl, e) ->
                  (dl, as_loc (eval_expr m th env e) ~ctx:"call destination"))
                dest
            in
            push_call m th fname arg_vals dest
      end
      else
        match block.term with
        | Goto l ->
            frame.cur_block <- l;
            frame.cur_stmt <- 0
        | CondGoto { ot; cond; if_true; if_false } ->
            let b = truthy m th env ot cond in
            frame.cur_block <- (if b then if_true else if_false);
            frame.cur_stmt <- 0
        | Switch { ot; scrut; cases; default } ->
            let v = eval_expr m th env scrut in
            let n =
              match ot with
              | OInt it -> as_int it v ~ctx:"switch"
              | OPtr -> ub (Ub.Stuck "switch on pointer")
            in
            let target =
              match List.assoc_opt n cases with Some l -> l | None -> default
            in
            frame.cur_block <- target;
            frame.cur_stmt <- 0
        | Return e ->
            let ret = Option.map (eval_expr m th env) e in
            pop_frame m th ret
        | Unreachable -> ub Ub.Unreachable_reached)

(* ------------------------------------------------------------------ *)
(* Drivers                                                             *)
(* ------------------------------------------------------------------ *)

type outcome =
  | Finished of Value.t option
  | Undefined of Ub.t
  | Out_of_fuel

(** Run a single function sequentially. *)
let run_fn ?(fuel = 1_000_000) ?(detect_races = false) (prog : program)
    (fname : string) (args : Value.t list) : outcome =
  let m = create ~detect_races prog in
  let th =
    { tid = 0; frames = []; finished = false; result = None; clock = Vc.create 1 }
  in
  m.threads <- [ th ];
  match push_call m th fname args None with
  | exception Ub.Undef u -> Undefined u
  | () -> (
      let rec loop n =
        if n = 0 then Out_of_fuel
        else
          match step m th with
          | () -> loop (n - 1)
          | exception Thread_done -> Finished th.result
          | exception Ub.Undef u -> Undefined u
      in
      loop fuel)

type threads_outcome =
  | All_finished of Value.t option list
  | T_undefined of Ub.t
  | T_out_of_fuel

(** Run several functions concurrently under a seeded random scheduler;
    every interleaving decision comes from [seed], so failures replay.
    The vector-clock race monitor is on by default ([detect_races]);
    turning it off runs the same schedule without the happens-before
    bookkeeping.  [init], when given, runs to completion on a
    distinguished "spawner" thread first; its effects happen-before every worker (the usual
    thread-spawn edge), so initialization does not race with workers. *)
let run_threads ?(fuel = 1_000_000) ?(seed = 42) ?(detect_races = true) ?init
    (prog : program) (entries : (string * Value.t list) list) :
    threads_outcome =
  let m = create ~detect_races prog in
  let rng = Random.State.make [| seed |] in
  let nworkers = List.length entries in
  let spawner_tid = nworkers in
  let mk_thread tid =
    {
      tid;
      frames = [];
      finished = false;
      result = None;
      clock =
        (let c = Vc.create (nworkers + 1) in
         c.(tid) <- 1;
         c);
    }
  in
  let spawner = mk_thread spawner_tid in
  let workers = List.mapi (fun i e -> (mk_thread i, e)) entries in
  m.threads <- List.map fst workers @ [ spawner ];
  try
    (* initialization phase, sequential on the spawner *)
    (match init with
    | None -> ()
    | Some (fname, args) -> (
        push_call m spawner fname args None;
        let rec run_init () =
          match step m spawner with
          | () -> run_init ()
          | exception Thread_done -> ()
        in
        run_init ()));
    spawner.finished <- true;
    (* spawn edges: workers start after the spawner's initialization *)
    List.iter
      (fun (th, _) -> th.clock <- Vc.join th.clock spawner.clock)
      workers;
    List.iter (fun (th, (fname, args)) -> push_call m th fname args None)
      workers;
    let rec loop n =
      if n = 0 then T_out_of_fuel
      else
        let runnable = List.filter (fun th -> not th.finished) m.threads in
        match runnable with
        | [] ->
            All_finished
              (List.map (fun (th, _) -> th.result) workers)
        | _ -> (
            let th =
              List.nth runnable (Random.State.int rng (List.length runnable))
            in
            match step m th with
            | () -> loop (n - 1)
            | exception Thread_done -> loop (n - 1)
            | exception Ub.Undef u -> T_undefined u)
    in
    loop fuel
  with Ub.Undef u -> T_undefined u

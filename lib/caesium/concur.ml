(** Syntactic classification of Caesium's concurrency idioms.

    The dynamic side of the story lives in {!Eval}: every [atomic]
    access goes through the acquire/release [sync_table] of the
    vector-clock monitor, so atomics never race and instead order the
    plain accesses around them.  This module is the static mirror — it
    names the same idioms at the syntax level so analyses (the lockset
    passes in [lib/analysis]) and the evaluator agree on what counts as
    an acquisition, a release, and a plain access:

    - {b acquire}: a [Cas] whose desired value is a nonzero constant —
      the elaboration of the [atomic_compare_exchange_strong(&l, &e, 1)]
      spin-loop.  The lock is held only on the success branch, which the
      surrounding code observes through the CAS's boolean destination.
    - {b release}: an atomic store of constant [0] — the elaboration of
      [atomic_store(&l, 0)].
    - {b atomic signal}: any other atomic store (e.g. the barrier's
      [atomic_store(&b->released, 1)]) — a synchronization edge, but not
      a lock operation.
    - {b atomic load}: [Use { atomic = true; _ }] — reading a flag
      (barrier wait); synchronizes, never races, holds nothing. *)

(** What a statement does to the lock discipline.  The carried
    expression is always ℓ_atom — the expression whose value is the
    address of the atomic cell. *)
type lock_op =
  | Acquire of { lock : Syntax.expr; dest : string option }
      (** CAS with nonzero desired constant; [dest] is the local
          receiving the success boolean, when it is a plain slot *)
  | Release of Syntax.expr  (** atomic store of constant 0 *)
  | Atomic_signal of Syntax.expr  (** any other atomic store *)

(** Classify one statement as a lock operation, if it is one.  A [Cas]
    whose desired value is not a nonzero constant (a swap, a counter
    CAS) is deliberately {e not} an acquire: treating it as one would
    let an unrelated CAS manufacture lock ownership. *)
let classify_stmt (s : Syntax.stmt) : lock_op option =
  match s with
  | Syntax.Cas { obj; desired = Syntax.IntConst (n, _); dest; _ } when n <> 0
    ->
      let dest =
        match dest with
        | Some (_, Syntax.VarLoc x) -> Some x
        | Some _ | None -> None
      in
      Some (Acquire { lock = obj; dest })
  | Syntax.Assign { atomic = true; lhs; rhs = Syntax.IntConst (0, _); _ } ->
      Some (Release lhs)
  | Syntax.Assign { atomic = true; lhs; _ } -> Some (Atomic_signal lhs)
  | Syntax.Assign _ | Syntax.Call _ | Syntax.Cas _ | Syntax.Skip
  | Syntax.ExprStmt _ | Syntax.Free _ ->
      None

(** Does the expression perform an atomic load anywhere inside? *)
let rec has_atomic_load (e : Syntax.expr) : bool =
  match e with
  | Syntax.Use { atomic = true; _ } -> true
  | Syntax.Use { arg; _ }
  | Syntax.FieldOfs { arg; _ }
  | Syntax.UnOp { arg; _ }
  | Syntax.CastIntInt { arg; _ } ->
      has_atomic_load arg
  | Syntax.CastPtrPtr arg -> has_atomic_load arg
  | Syntax.BinOp { e1; e2; _ } -> has_atomic_load e1 || has_atomic_load e2
  | Syntax.IntConst _ | Syntax.NullConst | Syntax.FnAddr _ | Syntax.VarLoc _
    ->
      false

(** Does the statement touch an atomic cell at all (CAS, atomic store,
    or an atomic load in any operand)?  A translation unit with no such
    statement has no synchronization idioms to analyze — the lockset
    passes use this to stay silent on purely sequential code. *)
let is_sync_stmt (s : Syntax.stmt) : bool =
  match s with
  | Syntax.Cas _ -> true
  | Syntax.Assign { atomic = true; _ } -> true
  | Syntax.Assign { lhs; rhs; _ } ->
      has_atomic_load lhs || has_atomic_load rhs
  | Syntax.Call { dest; fn; args } ->
      has_atomic_load fn
      || List.exists (fun (_, a) -> has_atomic_load a) args
      || (match dest with Some (_, d) -> has_atomic_load d | None -> false)
  | Syntax.ExprStmt e | Syntax.Free e -> has_atomic_load e
  | Syntax.Skip -> false

(** Does the function body contain any synchronization idiom? *)
let uses_sync (f : Syntax.func) : bool =
  List.exists
    (fun (_, (b : Syntax.block)) ->
      List.exists is_sync_stmt b.Syntax.stmts
      ||
      match b.Syntax.term with
      | Syntax.CondGoto { cond; _ } -> has_atomic_load cond
      | Syntax.Switch { scrut; _ } -> has_atomic_load scrut
      | Syntax.Return (Some e) -> has_atomic_load e
      | Syntax.Goto _ | Syntax.Return None | Syntax.Unreachable -> false)
    f.Syntax.blocks

(** Fresh-name generation.

    Several stages need fresh identifiers: the elaborator (temporaries,
    CFG block labels), Lithium (universals introduced by goal case (3),
    evars by case (4)) and the type system (existential witnesses).  A
    [Gensym.t] is an independent counter so that separate verification runs
    are reproducible — the whole pipeline is deterministic, a property the
    paper relies on for predictable proof search. *)

type t = { mutable next : int; prefix : string }

let create ?(prefix = "x") () = { next = 0; prefix }

let fresh ?hint t =
  let base = match hint with Some h when h <> "" -> h | _ -> t.prefix in
  let n = t.next in
  t.next <- n + 1;
  Printf.sprintf "%s%%%d" base n

(** [fresh_int t] returns a bare counter value (used for evar ids). *)
let fresh_int t =
  let n = t.next in
  t.next <- n + 1;
  n

let reset t = t.next <- 0

(** [count t] is the number of names drawn so far — the counter value the
    next [fresh] will use. *)
let count t = t.next

(** [skip t n] advances the counter by [n] without producing names.  The
    engine's memo replay uses it to keep downstream fresh names identical
    to the names an un-memoized run would have drawn. *)
let skip t n = if n > 0 then t.next <- t.next + n

(** [base name] strips the ["%n"] suffix added by [fresh], for display. *)
let base name =
  match String.index_opt name '%' with
  | None -> name
  | Some i -> String.sub name 0 i

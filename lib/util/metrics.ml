(** Verification metrics: monotonic counters and latency histograms.

    A registry is either [Off] — the zero-cost disabled representation —
    or [On] a pair of hash tables owned by a single writer (one function
    check, or the driver's root).  Cross-domain aggregation never shares
    a registry: each parallel function check owns its own, and the
    driver {!merge}s them in source order, so the merged counters are
    deterministic — a [-j 1] and a [-j 4] run produce byte-identical
    counter blocks.

    Timer values (latency sums and log₂ bucket counts) are measurements,
    not logical facts: they are deterministic only in *count*, never in
    value.  {!to_json} therefore splits the two — [~timings:false] keeps
    observation counts and zeroes the time data, mirroring
    [Driver.to_json]'s contract for wall-clock fields. *)

type timer = {
  mutable t_count : int;
  mutable t_total_ns : int64;
  buckets : int array;  (** log₂(ns) buckets, see {!bucket_of_ns} *)
}

let n_buckets = 40 (* 2^39 ns ≈ 9 min; plenty for one span *)

type state = {
  counters : (string, int ref) Hashtbl.t;
  timers : (string, timer) Hashtbl.t;
}

type t = Off | On of state

let off = Off
let on = function Off -> false | On _ -> true

let make () = On { counters = Hashtbl.create 64; timers = Hashtbl.create 32 }

(** A fresh registry iff the parent is enabled. *)
let child = function Off -> Off | On _ -> make ()

let incr (t : t) ?(by = 1) (name : string) =
  match t with
  | Off -> ()
  | On s -> (
      match Hashtbl.find_opt s.counters name with
      | Some r -> r := !r + by
      | None -> Hashtbl.replace s.counters name (ref by))

let bucket_of_ns (ns : int64) : int =
  let ns = if Int64.compare ns 0L < 0 then 0L else ns in
  let rec go i v =
    if i >= n_buckets - 1 || Int64.compare v 1L <= 0 then i
    else go (i + 1) (Int64.shift_right_logical v 1)
  in
  go 0 ns

let observe_ns (t : t) (name : string) (ns : int64) =
  match t with
  | Off -> ()
  | On s ->
      let tm =
        match Hashtbl.find_opt s.timers name with
        | Some tm -> tm
        | None ->
            let tm =
              { t_count = 0; t_total_ns = 0L; buckets = Array.make n_buckets 0 }
            in
            Hashtbl.replace s.timers name tm;
            tm
      in
      tm.t_count <- tm.t_count + 1;
      tm.t_total_ns <- Int64.add tm.t_total_ns (max 0L ns);
      let b = bucket_of_ns ns in
      tm.buckets.(b) <- tm.buckets.(b) + 1

let counter (t : t) (name : string) : int =
  match t with
  | Off -> 0
  | On s -> (
      match Hashtbl.find_opt s.counters name with Some r -> !r | None -> 0)

let timer_total_ns (t : t) (name : string) : int64 =
  match t with
  | Off -> 0L
  | On s -> (
      match Hashtbl.find_opt s.timers name with
      | Some tm -> tm.t_total_ns
      | None -> 0L)

let timer_count (t : t) (name : string) : int =
  match t with
  | Off -> 0
  | On s -> (
      match Hashtbl.find_opt s.timers name with
      | Some tm -> tm.t_count
      | None -> 0)

(** All counters (resp. timers) whose name starts with [prefix], with the
    prefix stripped, sorted by name — the query behind [--profile]'s
    per-rule and per-solver breakdowns. *)
let counters_with_prefix (t : t) ~(prefix : string) : (string * int) list =
  match t with
  | Off -> []
  | On s ->
      Hashtbl.fold
        (fun k r acc ->
          if String.starts_with ~prefix k then
            (String.sub k (String.length prefix)
               (String.length k - String.length prefix),
             !r)
            :: acc
          else acc)
        s.counters []
      |> List.sort compare

let timers_with_prefix (t : t) ~(prefix : string) :
    (string * int * int64) list =
  match t with
  | Off -> []
  | On s ->
      Hashtbl.fold
        (fun k tm acc ->
          if String.starts_with ~prefix k then
            (String.sub k (String.length prefix)
               (String.length k - String.length prefix),
             tm.t_count, tm.t_total_ns)
            :: acc
          else acc)
        s.timers []
      |> List.sort compare

(** [merge acc x] adds [x]'s counters and timers into [acc].  Determinism
    is the caller's obligation: merge in source order (the driver does),
    and two runs that did the same proof work agree on every counter. *)
let merge (acc : t) (x : t) =
  match (acc, x) with
  | On a, On b ->
      Hashtbl.iter (fun k r -> incr acc ~by:!r k) b.counters;
      Hashtbl.iter
        (fun k (tm : timer) ->
          let dst =
            match Hashtbl.find_opt a.timers k with
            | Some d -> d
            | None ->
                let d =
                  { t_count = 0; t_total_ns = 0L;
                    buckets = Array.make n_buckets 0 }
                in
                Hashtbl.replace a.timers k d;
                d
          in
          dst.t_count <- dst.t_count + tm.t_count;
          dst.t_total_ns <- Int64.add dst.t_total_ns tm.t_total_ns;
          Array.iteri
            (fun i n -> dst.buckets.(i) <- dst.buckets.(i) + n)
            tm.buckets)
        b.timers
  | _ -> ()

(** Deterministic JSON: counters and timers in sorted name order.  With
    [~timings:false] the time-valued fields (totals and bucket
    distributions) are dropped and only observation counts remain, so
    the block is byte-identical across [-j N] and across machines. *)
let to_json ?(timings = true) (t : t) : Jsonout.t =
  let open Jsonout in
  match t with
  | Off -> Null
  | On s ->
      let counters =
        Hashtbl.fold (fun k r acc -> (k, Int !r) :: acc) s.counters []
        |> List.sort compare
      in
      let timer_json (tm : timer) =
        if not timings then Obj [ ("count", Int tm.t_count) ]
        else
          let buckets =
            Array.to_list tm.buckets
            |> List.mapi (fun i n -> (i, n))
            |> List.filter (fun (_, n) -> n > 0)
            |> List.map (fun (i, n) ->
                   Obj [ ("log2_ns", Int i); ("count", Int n) ])
          in
          Obj
            [
              ("count", Int tm.t_count);
              ("total_ns", Float (Int64.to_float tm.t_total_ns));
              ("buckets", List buckets);
            ]
      in
      let timers =
        Hashtbl.fold (fun k tm acc -> (k, timer_json tm) :: acc) s.timers []
        |> List.sort (fun (a, _) (b, _) -> compare a b)
      in
      Obj [ ("counters", Obj counters); ("timers", Obj timers) ]

(** A persistent, supervised worker pool with per-task crash isolation,
    a transient-fault retry policy, whole-run deadlines and graceful
    degradation.

    This is the robustness successor to {!Pool}: where [Pool.map] spawns
    domains per call and re-raises the first worker exception (discarding
    every completed result), a supervisor spawns its domains {e once} —
    per CLI invocation or per long-lived session — and feeds them batches
    through a shared work queue.  A task that crashes, times out or is
    skipped becomes a structured {!outcome} for that one item; completed
    results are never discarded.

    Supervision model:

    - {b Crash isolation.}  Any exception escaping a task — including
      [Out_of_memory] and [Stack_overflow] — is confined to that task's
      {!Fault} outcome.  [Sys.Break] is the single exception: masking an
      interrupt would be dishonest, so it propagates to the caller
      (cooperative interruption should use [~cancel] instead).
    - {b Worker respawn.}  A worker domain that dies {e between} tasks
      (the dispatch boundary — in practice only a {!Faultsim} injection
      at the ["pool.dispatch"] site, or a runtime bug) has its claimed
      task re-queued and is respawned with capped exponential backoff.
      After [max_respawns] respawns the pool stops respawning and
      degrades (see below); the run still completes.
    - {b Retry.}  A task whose {e result} the caller classifies as
      transiently faulted ([~should_retry]), or that raised an exception
      classified transient ([~is_transient]), is re-attempted up to
      [~retries] times with capped exponential backoff.  Deterministic
      failures are never retried, and a cancelled or past-deadline run
      stops retrying after the in-flight attempt (keeping that
      attempt's outcome) — a large retry budget never makes the run
      uninterruptible.
    - {b Deadlines.}  [~deadline] bounds the whole run on the monotonic
      clock: once it passes, no further task is {e started} and every
      unstarted task resolves to {!Not_run}.  In-flight tasks are not
      preempted — per-task wall-clock limits are the resource budget's
      job ({!Budget.limits}), enforced cooperatively inside the task.
    - {b Graceful degradation.}  If every worker has died and the
      respawn allowance is exhausted, the pool marks itself {!Degraded}
      and the {e calling} domain drains the remaining queue sequentially
      — same isolation, retry and deadline semantics, no parallelism.
      A degraded run never changes any verdict, only the wall-clock.

    Build-time selection mirrors {!Pool}: on OCaml 5 the implementation
    fans out across domains ([supervisor_domains.ml.in]); on 4.x it
    degrades to the same sequential engine used by the degraded path
    ([supervisor_seq.ml.in]), with an identical API.

    Concurrency contract: one [run] at a time per supervisor (batches
    are not re-entrant); any number of supervisors may coexist.  The
    handle is a resource owned by whoever created it — a CLI invocation,
    a bench harness, a server session — and travels inside the
    verification session like every other piece of configuration. *)

val parallelism_available : bool
(** [true] iff this build can actually run work items concurrently. *)

val recommended_jobs : unit -> int
(** The number of workers the hardware can actually run concurrently
    (the runtime's recommended domain count; [1] on sequential builds).
    Policy layers (the CLI, the driver, the bench harness) clamp a
    requested [-j N] to this before sizing a pool: worker domains beyond
    the core count only add scheduling and GC-synchronisation overhead —
    on a single-core host a [-j 4] request degrades all the way to
    inline sequential execution, which is the fastest thing that host
    can do.  {!create} itself does not clamp, so tests and embedders can
    deliberately oversubscribe. *)

type t

type health =
  | Healthy
  | Degraded of string
      (** the pool fell back to sequential execution; the payload says
          why (e.g. the respawn allowance was exhausted) *)

val create : ?jobs:int -> ?max_respawns:int -> unit -> t
(** Spawn a pool of [jobs] persistent worker domains (default: the
    runtime's recommended count; sequential builds spawn none).
    [max_respawns] (default 16) caps worker respawns over the pool's
    lifetime before it degrades. *)

val jobs : t -> int
(** The worker count the pool was created with. *)

val health : t -> health

val shutdown : t -> unit
(** Stop and join every worker.  Idempotent.  Outstanding batches must
    have completed ([run] has returned). *)

(** The structured fate of one task. *)
type 'b outcome =
  | Done of 'b  (** the (last) attempt returned normally *)
  | Fault of fault
      (** every attempt raised; the task's slot holds the final
          attempt's printed exception instead of aborting the batch *)
  | Not_run of reason
      (** never started: the run deadline passed, the run was
          cancelled, or the task was abandoned by supervision *)

and fault = {
  f_exn : string;  (** printed exception of the final attempt *)
  f_attempts : int;  (** total attempts made (>= 1) *)
}

and reason = Deadline | Cancelled

(** Counters for one [run], for observability and reports.  All zero on
    a fault-free, deadline-free run — which keeps [-j 1] and [-j 4]
    reports byte-identical. *)
type run_stats = {
  rs_retries : int;  (** task re-attempts (transient faults) *)
  rs_task_faults : int;  (** tasks that exhausted their attempts *)
  rs_crashes : int;  (** worker domains that died at the dispatch boundary *)
  rs_respawns : int;  (** worker domains respawned *)
  rs_not_run : int;  (** tasks resolved {!Not_run} *)
  rs_degraded : bool;  (** the run (partly) fell back to sequential *)
  rs_stop : reason option;  (** why the run stopped early, if it did *)
}

val run :
  t ->
  ?deadline:float ->
  ?cancel:(unit -> bool) ->
  ?retries:int ->
  ?should_retry:('b -> bool) ->
  ?is_transient:(exn -> bool) ->
  ?fault:Faultsim.t ->
  ('a -> 'b) ->
  'a list ->
  'b outcome list * run_stats
(** [run t f items] applies [f] to every item and returns the outcomes
    in input order.

    [?deadline] is the whole-run wall-clock budget in seconds, measured
    from the call on the monotonic clock.  [?cancel] is polled at every
    dispatch; once it returns [true] the remaining tasks resolve
    [Not_run Cancelled] (the cooperative SIGINT path).  [?retries]
    (default 0) caps re-attempts per task; a re-attempt happens when
    [should_retry] accepts the returned value or [is_transient] accepts
    the raised exception.  [?fault] arms the ["pool.dispatch"] chaos
    site at the worker dispatch boundary (domain builds only): an
    injection there kills the worker itself, exercising the respawn and
    redispatch machinery rather than the per-task isolation.

    On a sequential build — or on a {!Degraded} pool — the same engine
    runs every task on the calling domain; semantics are identical
    except that nothing runs concurrently. *)

val run_seq :
  ?deadline:float ->
  ?cancel:(unit -> bool) ->
  ?retries:int ->
  ?should_retry:('b -> bool) ->
  ?is_transient:(exn -> bool) ->
  ('a -> 'b) ->
  'a list ->
  'b outcome list * run_stats
(** The pool-less sequential engine: [run] semantics on the calling
    domain, without creating a supervisor.  This is what [jobs <= 1]
    drivers use, what degraded pools fall back to, and the whole
    implementation on OCaml 4.x. *)

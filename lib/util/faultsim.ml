(** Deterministic, seed-driven fault injection for robustness testing.

    The toolchain claims to survive any single-function checker failure;
    this module lets the test suite *prove* it.  Instrumented points in
    the pipeline (solver calls, rule lookup, evar resolution) call
    {!point} with the campaign state threaded to them by the verification
    session; each hit draws from a splitmix64 stream derived from the
    campaign seed and raises {!Injected} with the configured probability.
    The stream depends only on the seed and the sequence of hits, so
    campaigns replay bit-for-bit.

    There is deliberately no process-global "armed" switch: a campaign is
    a value ({!t}) owned by exactly one verification session, so two
    sessions — fault-injected or not — never observe each other.  A
    [point None] call (no campaign) is a single pattern match. *)

type cfg = {
  seed : int;
  rate : float;  (** injection probability per instrumented point *)
  sites : string list option;  (** restrict to these sites; [None] = all *)
  max_faults : int;  (** stop injecting after this many; negative = no cap *)
}

(** Raised at an instrumented point when the simulator decides to
    inject; the payload is the site name. *)
exception Injected of string

type t = {
  cfg : cfg;
  mutable prng : int64;
  mutable hits : int;
  mutable injected : int;
}

(** Create a campaign.  The resulting value is mutated only by the
    session that owns it, so concurrent campaigns are independent. *)
let create ?(rate = 0.001) ?sites ?(max_faults = -1) seed : t =
  {
    cfg = { seed; rate; sites; max_faults };
    prng = Int64.of_int seed;
    hits = 0;
    injected = 0;
  }

let hit_count (t : t) = t.hits
let injected_count (t : t) = t.injected

(* splitmix64: tiny, high-quality, and fully determined by the seed *)
let next (s : t) : int64 =
  s.prng <- Int64.add s.prng 0x9E3779B97F4A7C15L;
  let z = s.prng in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* uniform draw in [0,1) from the top 53 bits *)
let uniform (s : t) : float =
  Int64.to_float (Int64.shift_right_logical (next s) 11) *. 0x1p-53

(** An instrumented point.  No-op without a campaign; otherwise may raise
    {!Injected}. *)
let point (campaign : t option) (site : string) : unit =
  match campaign with
  | None -> ()
  | Some s ->
      if s.cfg.max_faults >= 0 && s.injected >= s.cfg.max_faults then ()
      else if
        match s.cfg.sites with None -> true | Some l -> List.mem site l
      then begin
        s.hits <- s.hits + 1;
        if uniform s < s.cfg.rate then begin
          s.injected <- s.injected + 1;
          raise (Injected site)
        end
      end

(** Deterministic, seed-driven fault injection for robustness testing.

    The toolchain claims to survive any single-function checker failure;
    this module lets the test suite *prove* it.  Instrumented points in
    the pipeline (solver calls, rule lookup, evar resolution) call
    {!point}; when the simulator is armed, each hit draws from a
    splitmix64 stream derived from the campaign seed and raises
    {!Injected} with the configured probability.  The stream depends only
    on the seed and the sequence of hits, so campaigns replay
    bit-for-bit.  Disarmed (the default), a point is a single load and
    compare. *)

type cfg = {
  seed : int;
  rate : float;  (** injection probability per instrumented point *)
  sites : string list option;  (** restrict to these sites; [None] = all *)
  max_faults : int;  (** stop injecting after this many; negative = no cap *)
}

(** Raised at an instrumented point when the simulator decides to
    inject; the payload is the site name. *)
exception Injected of string

type state = {
  cfg : cfg;
  mutable prng : int64;
  mutable hits : int;
  mutable injected : int;
}

let armed : state option ref = ref None

let arm ?(rate = 0.001) ?sites ?(max_faults = -1) seed =
  armed :=
    Some
      {
        cfg = { seed; rate; sites; max_faults };
        prng = Int64.of_int seed;
        hits = 0;
        injected = 0;
      }

let disarm () = armed := None
let active () = !armed <> None
let hit_count () = match !armed with Some s -> s.hits | None -> 0
let injected_count () = match !armed with Some s -> s.injected | None -> 0

(* splitmix64: tiny, high-quality, and fully determined by the seed *)
let next (s : state) : int64 =
  s.prng <- Int64.add s.prng 0x9E3779B97F4A7C15L;
  let z = s.prng in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* uniform draw in [0,1) from the top 53 bits *)
let uniform (s : state) : float =
  Int64.to_float (Int64.shift_right_logical (next s) 11) *. 0x1p-53

(** An instrumented point.  No-op unless armed; otherwise may raise
    {!Injected}. *)
let point (site : string) : unit =
  match !armed with
  | None -> ()
  | Some s ->
      if s.cfg.max_faults >= 0 && s.injected >= s.cfg.max_faults then ()
      else if
        match s.cfg.sites with None -> true | Some l -> List.mem site l
      then begin
        s.hits <- s.hits + 1;
        if uniform s < s.cfg.rate then begin
          s.injected <- s.injected + 1;
          raise (Injected site)
        end
      end

(** Deterministic, seed-driven fault injection for robustness testing.

    The toolchain claims to survive any single-function checker failure;
    this module lets the test suite *prove* it.  Instrumented points in
    the pipeline (solver calls, rule lookup, evar resolution — and since
    the supervised pool landed, the pool dispatch, cache read/write and
    file-I/O boundaries) call {!point} with the campaign state threaded
    to them by the verification session; each hit draws from a
    splitmix64 stream derived from the campaign seed and raises
    {!Injected} with the configured probability.  The stream depends
    only on the seed and the sequence of hits, so sequential campaigns
    replay bit-for-bit.

    There is deliberately no process-global "armed" switch: a campaign is
    a value ({!t}) owned by exactly one verification session, so two
    sessions — fault-injected or not — never observe each other.  A
    [point None] call (no campaign) is a single pattern match.

    The campaign state lives in {!Atomic} cells so a single campaign may
    be shared across the supervisor's worker domains: counters never
    tear, the PRNG stream never duplicates a draw, and [max_faults] is a
    strict cap.  Under concurrency the *interleaving* of draws across
    sites is scheduling-dependent (which is what a chaos campaign
    wants); with one domain — one draw per hit, in hit order — the
    sequence is exactly the sequential splitmix64 stream. *)

type cfg = {
  seed : int;
  rate : float;  (** injection probability per instrumented point *)
  sites : string list option;  (** restrict to these sites; [None] = all *)
  max_faults : int;  (** stop injecting after this many; negative = no cap *)
}

(** Raised at an instrumented point when the simulator decides to
    inject; the payload is the site name. *)
exception Injected of string

type t = {
  cfg : cfg;
  prng : int64 Atomic.t;
  hits : int Atomic.t;
  injected : int Atomic.t;
}

(** Create a campaign.  The resulting value is owned by one verification
    session but may be drawn from concurrently by that session's worker
    domains; independent campaigns never observe each other. *)
let create ?(rate = 0.001) ?sites ?(max_faults = -1) seed : t =
  {
    cfg = { seed; rate; sites; max_faults };
    prng = Atomic.make (Int64.of_int seed);
    hits = Atomic.make 0;
    injected = Atomic.make 0;
  }

let hit_count (t : t) = Atomic.get t.hits
let injected_count (t : t) = Atomic.get t.injected

(* splitmix64: tiny, high-quality, and fully determined by the seed.
   The state advance is a CAS loop so concurrent hits each claim a
   distinct position in the stream. *)
let next (s : t) : int64 =
  let rec claim () =
    let cur = Atomic.get s.prng in
    let nxt = Int64.add cur 0x9E3779B97F4A7C15L in
    if Atomic.compare_and_set s.prng cur nxt then nxt else claim ()
  in
  let z = claim () in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* uniform draw in [0,1) from the top 53 bits *)
let uniform (s : t) : float =
  Int64.to_float (Int64.shift_right_logical (next s) 11) *. 0x1p-53

(* Claim one injection slot under the cap; strict even when several
   domains draw a hit simultaneously. *)
let rec claim_injection (s : t) : bool =
  let n = Atomic.get s.injected in
  if s.cfg.max_faults >= 0 && n >= s.cfg.max_faults then false
  else if Atomic.compare_and_set s.injected n (n + 1) then true
  else claim_injection s

(** An instrumented point.  No-op without a campaign; otherwise may raise
    {!Injected}. *)
let point (campaign : t option) (site : string) : unit =
  match campaign with
  | None -> ()
  | Some s ->
      if s.cfg.max_faults >= 0 && Atomic.get s.injected >= s.cfg.max_faults
      then ()
      else if
        match s.cfg.sites with None -> true | Some l -> List.mem site l
      then begin
        Atomic.incr s.hits;
        if uniform s < s.cfg.rate && claim_injection s then
          raise (Injected site)
      end

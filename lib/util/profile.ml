(** The human-readable [--profile] summary: where a check's time and
    rule applications went, rendered from a {!Metrics.t} registry.

    Sections (each omitted when its data is absent):
    - the phase table (parse / elaborate / check wall-clock);
    - the top-N hottest typing rules by self-time, with application
      counts (self-time = span time minus nested rule spans, so the
      column sums to real time spent *in* each rule's premises and side
      conditions rather than on the stack);
    - the solver breakdown (default solver, named solvers, lemma
      matching) with call counts and verdict-relevant time;
    - the top-N hottest functions by wall-clock;
    - cache, evar and budget counters. *)

let ms ns = Int64.to_float ns /. 1e6

let top_n n l = List.filteri (fun i _ -> i < n) l

let pp ?(top = 10) ppf (m : Metrics.t) =
  if not (Metrics.on m) then
    Fmt.pf ppf "profile: metrics were not collected@."
  else begin
    Fmt.pf ppf "== profile ==@.";
    (* phases *)
    let phases = Metrics.timers_with_prefix m ~prefix:"phase." in
    if phases <> [] then begin
      Fmt.pf ppf "@.phases:@.";
      List.iter
        (fun (name, _count, total) ->
          Fmt.pf ppf "  %-12s %10.3f ms@." name (ms total))
        phases
    end;
    (* hottest rules by self-time *)
    let rules = Metrics.timers_with_prefix m ~prefix:"rule.self_ns." in
    if rules <> [] then begin
      let by_self =
        List.sort
          (fun (_, _, a) (_, _, b) -> Int64.compare b a)
          rules
      in
      Fmt.pf ppf "@.hottest rules (self time, top %d of %d):@." top
        (List.length rules);
      Fmt.pf ppf "  %-28s %10s %12s@." "rule" "apps" "self ms";
      List.iter
        (fun (name, _, self) ->
          Fmt.pf ppf "  %-28s %10d %12.3f@." name
            (Metrics.counter m ("rule.apps." ^ name))
            (ms self))
        (top_n top by_self)
    end;
    (* solver breakdown *)
    let solvers = Metrics.timers_with_prefix m ~prefix:"solver.ns." in
    if solvers <> [] then begin
      Fmt.pf ppf "@.solver time:@.";
      Fmt.pf ppf "  %-28s %10s %12s@." "solver" "calls" "total ms";
      List.iter
        (fun (name, count, total) ->
          Fmt.pf ppf "  %-28s %10d %12.3f@." name count (ms total))
        (List.sort
           (fun (_, _, a) (_, _, b) -> Int64.compare b a)
           solvers)
    end;
    (* hottest functions *)
    let fns = Metrics.timers_with_prefix m ~prefix:"fn.ns." in
    if fns <> [] then begin
      let by_time =
        List.sort (fun (_, _, a) (_, _, b) -> Int64.compare b a) fns
      in
      Fmt.pf ppf "@.hottest functions (top %d of %d):@." top
        (List.length fns);
      List.iter
        (fun (name, _, total) ->
          Fmt.pf ppf "  %-28s %12.3f ms@." name (ms total))
        (top_n top by_time)
    end;
    (* scalar counters *)
    let c name = Metrics.counter m name in
    Fmt.pf ppf "@.side conditions: %d auto, %d manual;  evars instantiated: %d@."
      (c "side.auto") (c "side.manual") (c "evar.insts");
    let hits = c "cache.hit" and misses = c "cache.miss" in
    let corrupt = c "cache.corrupt" in
    if hits + misses + corrupt > 0 then
      Fmt.pf ppf "cache: %d hits, %d misses, %d corrupt entries skipped@."
        hits misses corrupt;
    let exhausted = Metrics.counters_with_prefix m ~prefix:"budget." in
    List.iter
      (fun (label, n) ->
        Fmt.pf ppf "budget exhaustion: %s × %d@." label n)
      exhausted
  end

(** The same data as {!pp}, as JSON — the [--profile-out FILE] payload,
    also folded into the run-ledger record.  Sections are sorted by time
    descending (ties by name via the stable sort over the name-sorted
    input), mirroring the text table. *)
let to_json (m : Metrics.t) : Jsonout.t =
  let open Jsonout in
  if not (Metrics.on m) then Null
  else begin
    let timer_section prefix extra =
      Metrics.timers_with_prefix m ~prefix
      |> List.stable_sort (fun (_, _, a) (_, _, b) -> Int64.compare b a)
      |> List.map (fun (name, count, total_ns) ->
             Obj
               ([
                  ("name", Str name);
                  ("count", Int count);
                  ("total_ns", Float (Int64.to_float total_ns));
                ]
               @ extra name))
    in
    let counters =
      [ "side.auto"; "side.manual"; "evar.insts"; "cache.hit"; "cache.miss";
        "cache.corrupt"; "memo.hit"; "memo.miss"; "memo.store";
        "memo.invalid" ]
      |> List.filter_map (fun name ->
             let n = Metrics.counter m name in
             if n = 0 then None else Some (name, Int n))
    in
    let budget = Metrics.counters_with_prefix m ~prefix:"budget." in
    Obj
      [
        ("schema", Str "refinedc-profile/1");
        ("phases", List (timer_section "phase." (fun _ -> [])));
        ( "rules",
          List
            (timer_section "rule.self_ns." (fun name ->
                 [ ("apps", Int (Metrics.counter m ("rule.apps." ^ name))) ]))
        );
        ("solvers", List (timer_section "solver.ns." (fun _ -> [])));
        ("functions", List (timer_section "fn.ns." (fun _ -> [])));
        ("counters", Obj counters);
        ( "budget_exhaustions",
          Obj (List.map (fun (label, n) -> (label, Int n)) budget) );
      ]
  end

(** Resource budgets for proof search: step fuel, a wall-clock deadline,
    and a recursion-depth bound.

    Lithium's goal-directed search is designed never to get stuck (§5),
    but the toolchain must not *depend* on that: a divergent pure-solver
    loop or a runaway rule chain would otherwise hang an entire corpus
    run.  A budget is created per checked function and consulted at every
    goal step; exhaustion surfaces as a structured diagnostic instead of
    a hang.

    Deadlines use the monotonic clock ([CLOCK_MONOTONIC] via bechamel's
    stubs), so they are immune to system-time adjustments.  When every
    limit is [None] the per-step check is one integer increment and one
    boolean test — effectively zero-cost. *)

type limits = {
  fuel : int option;  (** maximum number of goal steps *)
  timeout : float option;  (** wall-clock seconds *)
  max_depth : int option;  (** maximum goal recursion depth *)
}

let unlimited = { fuel = None; timeout = None; max_depth = None }

let is_unlimited l =
  l.fuel = None && l.timeout = None && l.max_depth = None

type exhaustion =
  | Out_of_fuel of int  (** the fuel limit *)
  | Timed_out of float  (** the deadline, in seconds *)
  | Depth_exceeded of int  (** the depth limit *)

let pp_exhaustion ppf = function
  | Out_of_fuel n -> Fmt.pf ppf "step budget exhausted (fuel %d)" n
  | Timed_out s -> Fmt.pf ppf "wall-clock deadline exceeded (timeout %gs)" s
  | Depth_exceeded d -> Fmt.pf ppf "goal depth limit exceeded (max depth %d)" d

let exhaustion_label = function
  | Out_of_fuel _ -> "out_of_fuel"
  | Timed_out _ -> "timed_out"
  | Depth_exceeded _ -> "depth_exceeded"

type t = {
  limits : limits;
  no_limits : bool;  (** precomputed fast path *)
  start_ns : int64;
  deadline_ns : int64 option;
  mutable steps : int;
}

let now_ns () : int64 = Monotonic_clock.now ()

(** [stopwatch ()] returns a function giving the seconds elapsed since
    the call, on the monotonic clock. *)
let stopwatch () : unit -> float =
  let t0 = now_ns () in
  fun () -> Int64.to_float (Int64.sub (now_ns ()) t0) /. 1e9

let start (limits : limits) : t =
  let start_ns = now_ns () in
  {
    limits;
    no_limits = is_unlimited limits;
    start_ns;
    deadline_ns =
      Option.map
        (fun s -> Int64.add start_ns (Int64.of_float (s *. 1e9)))
        limits.timeout;
    steps = 0;
  }

let steps t = t.steps
let elapsed t = Int64.to_float (Int64.sub (now_ns ()) t.start_ns) /. 1e9
let depth_limit t = t.limits.max_depth

(** Account for one goal step.  [None] means the budget still has room. *)
let step (t : t) : exhaustion option =
  t.steps <- t.steps + 1;
  if t.no_limits then None
  else
    match t.limits.fuel with
    | Some f when t.steps > f -> Some (Out_of_fuel f)
    | _ -> (
        match t.deadline_ns with
        | Some d when Int64.compare (now_ns ()) d > 0 ->
            Some (Timed_out (Option.value ~default:0. t.limits.timeout))
        | _ -> None)

(** Account for [n] goal steps at once.  The engine's memo replay charges
    a whole subtree's fuel in one call, so a memoized run exhausts the
    same step budget as the run it replays; the deadline is re-checked
    once. *)
let charge (t : t) (n : int) : exhaustion option =
  t.steps <- t.steps + n;
  if t.no_limits then None
  else
    match t.limits.fuel with
    | Some f when t.steps > f -> Some (Out_of_fuel f)
    | _ -> (
        match t.deadline_ns with
        | Some d when Int64.compare (now_ns ()) d > 0 ->
            Some (Timed_out (Option.value ~default:0. t.limits.timeout))
        | _ -> None)

(** Check the current goal recursion depth against the limit. *)
let check_depth (t : t) (depth : int) : exhaustion option =
  match t.limits.max_depth with
  | Some d when depth > d -> Some (Depth_exceeded d)
  | _ -> None

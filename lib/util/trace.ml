(** Proof-search tracing: a span tree over the verification pipeline,
    exportable as Chrome [trace_event] JSON (loads in Perfetto and
    chrome://tracing).

    A tracer is either [Off] — the disabled representation, a constant
    constructor, so a disabled session allocates *nothing* on the hot
    path (call sites guard with {!on} before building names or args) —
    or [On buf], an append-only single-writer event buffer.  Parallel
    checking gives every function its own child buffer (its own trace
    [tid] lane); the driver splices the children back into the root in
    source order, so the logical event sequence is identical under
    [-j 1] and [-j 4] — scheduling can only move timestamps and the
    [sched] category (task placement on domains), which is exactly what
    {!normalize} erases.

    Timestamps are monotonic-clock nanoseconds, shared by all domains of
    the process, and exported as the fractional microseconds the
    trace-event format expects. *)

type ph =
  | B  (** span begin *)
  | E  (** span end *)
  | I  (** instant event *)
  | X of int64  (** complete event carrying its own duration (ns) *)
  | M  (** metadata (thread naming) *)

type ev = {
  name : string;
  cat : string;
  ph : ph;
  ts : int64;  (** monotonic ns *)
  tid : int;  (** logical lane, deterministic (not a domain id) *)
  args : (string * string) list;
}

type buf = {
  buf_tid : int;
  mutable evs : ev list;  (** reverse chronological *)
  mutable n_evs : int;
}

type t = Off | On of buf

let off = Off
let on = function Off -> false | On _ -> true
let make ?(tid = 0) () = On { buf_tid = tid; evs = []; n_evs = 0 }

(** A fresh buffer on lane [tid] iff the parent is enabled. *)
let child (t : t) ~tid = match t with Off -> Off | On _ -> make ~tid ()

let now_ns () : int64 = Monotonic_clock.now ()

let push (t : t) (e : ev) =
  match t with
  | Off -> ()
  | On b ->
      b.evs <- e :: b.evs;
      b.n_evs <- b.n_evs + 1

let emit (t : t) ?(args = []) ~cat ~ph name =
  match t with
  | Off -> ()
  | On b ->
      push t { name; cat; ph; ts = now_ns (); tid = b.buf_tid; args }

let span_begin t ?args ~cat name = emit t ?args ~cat ~ph:B name
let span_end t ?args ~cat name = emit t ?args ~cat ~ph:E name
let instant t ?args ~cat name = emit t ?args ~cat ~ph:I name

(** A complete event: one record carrying start and duration. *)
let complete (t : t) ?(args = []) ~cat ~start_ns ~dur_ns name =
  match t with
  | Off -> ()
  | On b ->
      push t { name; cat; ph = X dur_ns; ts = start_ns; tid = b.buf_tid; args }

(** Name a lane in trace viewers ([thread_name] metadata). *)
let name_lane (t : t) ~tid name =
  match t with
  | Off -> ()
  | On _ ->
      push t
        { name = "thread_name"; cat = "__metadata"; ph = M; ts = 0L; tid;
          args = [ ("name", name) ] }

(** Splice a child's events into the parent at the current position.
    The child must be quiescent (its function's check has completed). *)
let absorb (t : t) (child : t) =
  match (t, child) with
  | On b, On c ->
      b.evs <- c.evs @ b.evs;
      b.n_evs <- b.n_evs + c.n_evs
  | _ -> ()

let event_count = function Off -> 0 | On b -> b.n_evs
let events = function Off -> [] | On b -> List.rev b.evs

(* ------------------------------------------------------------------ *)
(* Chrome trace-event export                                           *)
(* ------------------------------------------------------------------ *)

let ph_string = function
  | B -> "B"
  | E -> "E"
  | I -> "i"
  | X _ -> "X"
  | M -> "M"

(** [~normalize] erases everything scheduling-dependent — timestamps,
    durations, and the whole [sched] category (task→domain placement) —
    leaving the logical span tree, which is deterministic: a [-j 1] and
    a [-j 4] run over the same input serialize byte-identically. *)
let to_chrome_json ?(normalize = false) (t : t) : Jsonout.t =
  let open Jsonout in
  let us_of_ns ns = Int64.to_float ns /. 1e3 in
  let ev_json (e : ev) =
    let base =
      [
        ("name", Str e.name);
        ("cat", Str e.cat);
        ("ph", Str (ph_string e.ph));
        ("ts", Float (if normalize then 0. else us_of_ns e.ts));
        ("pid", Int 1);
        ("tid", Int e.tid);
      ]
    in
    let dur =
      match e.ph with
      | X d -> [ ("dur", Float (if normalize then 0. else us_of_ns d)) ]
      | _ -> []
    in
    let args =
      match e.args with
      | [] -> []
      | l -> [ ("args", Obj (List.map (fun (k, v) -> (k, Str v)) l)) ]
    in
    Obj (base @ dur @ args)
  in
  let evs = events t in
  let evs =
    if normalize then List.filter (fun e -> e.cat <> "sched") evs else evs
  in
  Obj
    [
      ("traceEvents", List (List.map ev_json evs));
      ("displayTimeUnit", Str "ms");
    ]

let to_chrome_string ?normalize (t : t) : string =
  Jsonout.to_string (to_chrome_json ?normalize t)

(** Write the trace to [path] (the [--trace out.json] file). *)
let write_chrome (t : t) (path : string) : unit =
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc (to_chrome_string t);
      Out_channel.output_string oc "\n")

(* ------------------------------------------------------------------ *)
(* Well-formedness (used by the test suite and CI validation)          *)
(* ------------------------------------------------------------------ *)

(** Check that the trace is balanced: on every lane, each [E] closes the
    most recent open [B] with the same name, no span is left open, and
    every span/complete duration is non-negative.  Returns the list of
    violations (empty = well-formed). *)
let check_balance (t : t) : string list =
  let issues = ref [] in
  let flag fmt = Format.kasprintf (fun s -> issues := s :: !issues) fmt in
  let stacks : (int, (string * int64) list ref) Hashtbl.t =
    Hashtbl.create 8
  in
  let stack tid =
    match Hashtbl.find_opt stacks tid with
    | Some s -> s
    | None ->
        let s = ref [] in
        Hashtbl.replace stacks tid s;
        s
  in
  List.iter
    (fun (e : ev) ->
      match e.ph with
      | B -> (stack e.tid) := (e.name, e.ts) :: !(stack e.tid)
      | E -> (
          let s = stack e.tid in
          match !s with
          | [] -> flag "tid %d: E %S without open B" e.tid e.name
          | (name, ts) :: rest ->
              if name <> e.name then
                flag "tid %d: E %S closes open B %S" e.tid e.name name;
              if Int64.compare e.ts ts < 0 then
                flag "tid %d: span %S has negative duration" e.tid e.name;
              s := rest)
      | X d ->
          if Int64.compare d 0L < 0 then
            flag "tid %d: X %S has negative duration" e.tid e.name
      | I | M -> ())
    (events t);
  Hashtbl.iter
    (fun tid s ->
      List.iter (fun (name, _) -> flag "tid %d: B %S never closed" tid name) !s)
    stacks;
  List.rev !issues

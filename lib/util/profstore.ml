(** The on-disk rule-profile store behind profile-guided dispatch
    ([--pgo]).

    A store is a directory (conventionally living next to the
    verification cache) holding one small text file, [rules.prof],
    mapping typing-rule names to accumulated application counts.  Each
    [--pgo] run loads the counts, lets the engine order equal-priority
    rules within a head bucket by measured hit-rate (see
    [Engine.index_rules]'s [~profile]), and merges its own per-rule
    counts back in afterwards — so the profile sharpens as runs
    accumulate, exactly like the verification cache warms.

    The robustness contract mirrors {!Vercache}: writes go to a temp
    file and are [Sys.rename]d into place, a corrupt or unreadable store
    degrades to the empty profile (static-priority dispatch), and a
    failed write is dropped silently — the profile is a performance
    hint, never part of a verdict.  The *effect* of a loaded profile on
    dispatch order is still observable (the engine folds the final rule
    order into [idx_fingerprint], which keys the verification cache), so
    two runs with different profiles never share a cache entry by
    accident. *)

type t = {
  dir : string;
  file : string;  (** store file name inside [dir] *)
  mutable disabled : bool;  (** set when the directory is unusable *)
}

let file_name = "rules.prof"
let path (t : t) = Filename.concat t.dir t.file

(** [?file] names the store inside [dir] (default ["rules.prof"]); the
    driver's per-function cost model keeps its wall-clock samples in a
    sibling ["costs.prof"] with the same format and degradation
    contract. *)
let create ?(file = file_name) (dir : string) : t =
  match
    if not (Sys.file_exists dir) then Unix.mkdir dir 0o755
    else if not (Sys.is_directory dir) then failwith "not a directory"
  with
  | () -> { dir; file; disabled = false }
  | exception _ -> { dir; file; disabled = true }

let disabled (t : t) = t.disabled

(* One line per rule: "<count> <name>".  The name may contain any
   character but a newline (rule names are OCaml identifiers plus
   punctuation like "T-GOTO"), so the count comes first and the name is
   the rest of the line. *)
let parse_line (l : string) : (string * int) option =
  match String.index_opt l ' ' with
  | None -> None
  | Some i -> (
      match int_of_string_opt (String.sub l 0 i) with
      | Some n when n >= 0 && i + 1 <= String.length l ->
          let name = String.sub l (i + 1) (String.length l - i - 1) in
          if name = "" then None else Some (name, n)
      | _ -> None)

(** Load the accumulated counts; an absent, corrupt or unreadable store
    is the empty profile. *)
let load (t : t) : (string * int) list =
  if t.disabled then []
  else
    match In_channel.with_open_bin (path t) In_channel.input_all with
    | contents ->
        String.split_on_char '\n' contents |> List.filter_map parse_line
    | exception _ -> []

(** Merge [counts] into the store and write the result atomically.
    [?merge old new] combines an incoming count with a stored one —
    addition by default (rule-hit accumulation); the cost model passes
    [fun _ fresh -> fresh] so the latest wall-clock sample wins.
    Failures disable the store for the rest of the run — a profile
    write must never abort a verification run. *)
let accumulate ?(merge = ( + )) (t : t) (counts : (string * int) list) : unit =
  if (not t.disabled) && counts <> [] then begin
    let tbl = Hashtbl.create 64 in
    List.iter (fun (k, v) -> Hashtbl.replace tbl k v) (load t);
    List.iter
      (fun (k, v) ->
        if v > 0 then
          Hashtbl.replace tbl k
            (match Hashtbl.find_opt tbl k with
            | None -> v
            | Some old -> merge old v))
      counts;
    let lines =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
      |> List.sort compare
      |> List.map (fun (k, v) -> Printf.sprintf "%d %s" v k)
    in
    let tmp = ref None in
    match
      let tf = Filename.temp_file ~temp_dir:t.dir "prof" ".tmp" in
      tmp := Some tf;
      Out_channel.with_open_bin tf (fun oc ->
          Out_channel.output_string oc (String.concat "\n" lines);
          Out_channel.output_string oc "\n");
      Sys.rename tf (path t)
    with
    | () -> ()
    | exception _ ->
        (match !tmp with
        | Some tf -> ( try Sys.remove tf with Sys_error _ -> ())
        | None -> ());
        t.disabled <- true
  end

(** A deterministic fork/join worker pool.

    The implementation is selected at build time ([dune] copies the
    matching [pool_*.ml.in] into [pool.ml]): on OCaml 5 the pool fans
    work out across [Domain]s; on OCaml 4.x it degrades to a sequential
    [List.map] with the same API, so callers need no version
    conditionals.  Both implementations return results in input order —
    parallelism never changes what a caller observes, only how long it
    waits. *)

val parallelism_available : bool
(** [true] iff this build can actually run work items concurrently. *)

val default_jobs : unit -> int
(** A sensible worker count: the runtime's recommended domain count on
    OCaml 5, [1] otherwise. *)

val worker_id : unit -> int
(** The calling domain's runtime id on OCaml 5, [0] on a sequential
    build.  Observability only (pool task placement events): the value
    is scheduling-dependent, never part of any deterministic output. *)

val map : jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~jobs f items] applies [f] to every item and returns the
    results in input order.  With [jobs <= 1] (or a sequential build)
    this is exactly [List.map f items] — same order of side effects,
    same exception behaviour.  With [jobs > 1] items are claimed from a
    shared counter by [min jobs (length items)] workers; if any [f]
    raises, the first raising item (in input order) has its exception
    re-raised after all workers have joined. *)

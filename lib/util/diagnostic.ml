(** Structured diagnostics, shared by every layer that talks to the user
    about the *source* rather than about a proof: the frontend's
    over-approximating warnings, the pre-verification static-analysis
    passes ([refinedc lint]) and the driver's reports.

    A diagnostic is data, not a formatted string: severity, a stable
    code (["RC-L001"]-style, documented in the README's code table), the
    {!Srcloc.t} it is anchored to, the message and an optional fix-it
    hint.  Producers emit in whatever order their traversal yields;
    consumers {!sort} by (file, location, code), which is what makes
    [--json] reports byte-identical across worker counts. *)

type severity =
  | Error  (** the program or its annotations are definitely broken *)
  | Warning  (** sound over-approximation: may be fine, deserves a look *)
  | Note  (** neutral information, e.g. spec-coverage reporting *)
  | Hint  (** heuristic observation; false positives are expected *)

let severity_rank = function Error -> 0 | Warning -> 1 | Note -> 2 | Hint -> 3

let severity_label = function
  | Error -> "error"
  | Warning -> "warning"
  | Note -> "note"
  | Hint -> "hint"

type t = {
  severity : severity;
  code : string;  (** stable machine-readable code, e.g. ["RC-L001"] *)
  loc : Srcloc.t;
  message : string;
  hint : string option;  (** an actionable suggestion, when there is one *)
}

let make ?(severity = Warning) ?hint ~code ~loc message =
  { severity; code; loc; message; hint }

(** Errors and warnings are {e problems} — what [--lint-werror] promotes
    to a failing exit code; notes and hints never fail a run. *)
let is_problem d =
  match d.severity with Error | Warning -> true | Note | Hint -> false

(** Total order: (file, location, code), then message, then severity —
    every field, so equal diagnostics are truly identical and the sort
    is a canonical form independent of emission order. *)
let compare a b =
  let c = Srcloc.compare a.loc b.loc in
  if c <> 0 then c
  else
    let c = String.compare a.code b.code in
    if c <> 0 then c
    else
      let c = String.compare a.message b.message in
      if c <> 0 then c
      else Int.compare (severity_rank a.severity) (severity_rank b.severity)

let sort (ds : t list) : t list = List.sort_uniq compare ds

let is_sorted (ds : t list) : bool =
  let rec go = function
    | a :: (b :: _ as rest) -> compare a b <= 0 && go rest
    | _ -> true
  in
  go ds

let pp ppf d =
  Fmt.pf ppf "%a: %s: %s [%s]" Srcloc.pp d.loc (severity_label d.severity)
    d.message d.code;
  match d.hint with
  | Some h -> Fmt.pf ppf "@.  hint: %s" h
  | None -> ()

let to_string d = Fmt.str "%a" pp d

let to_json (d : t) : Jsonout.t =
  let open Jsonout in
  Obj
    [
      ("severity", Str (severity_label d.severity));
      ("code", Str d.code);
      ("file", Str d.loc.Srcloc.file);
      ("line", Int d.loc.Srcloc.start_p.Srcloc.line);
      ("col", Int d.loc.Srcloc.start_p.Srcloc.col);
      ("end_line", Int d.loc.Srcloc.end_p.Srcloc.line);
      ("end_col", Int d.loc.Srcloc.end_p.Srcloc.col);
      ("message", Str d.message);
      ("hint", match d.hint with Some h -> Str h | None -> Null);
    ]

(** String helpers used across the code base.

    These replace the [Str] dependency in contexts that must be
    thread-safe: [Str] keeps its match state in global mutable storage,
    so two domains searching concurrently corrupt each other's results.
    Everything here is pure. *)

(** [find_sub s ~sub] is the index of the first occurrence of [sub] in
    [s], if any.  Naive scan — our inputs are source lines, not genomes. *)
let find_sub (s : string) ~(sub : string) : int option =
  let n = String.length s and m = String.length sub in
  if m = 0 then Some 0
  else if m > n then None
  else begin
    let limit = n - m in
    let rec at i j = j >= m || (s.[i + j] = sub.[j] && at i (j + 1)) in
    let rec go i =
      if i > limit then None else if at i 0 then Some i else go (i + 1)
    in
    go 0
  end

(** [contains_sub s ~sub]: does [sub] occur in [s]? *)
let contains_sub (s : string) ~(sub : string) : bool =
  find_sub s ~sub <> None

let starts_with ~(prefix : string) (s : string) : bool =
  let m = String.length prefix in
  String.length s >= m && String.sub s 0 m = prefix

let ends_with ~(suffix : string) (s : string) : bool =
  let m = String.length suffix and n = String.length s in
  n >= m && String.sub s (n - m) m = suffix

(** [replace_first s ~sub ~by] replaces the first occurrence of [sub]
    in [s] with [by]; [s] unchanged if [sub] does not occur. *)
let replace_first (s : string) ~(sub : string) ~(by : string) : string =
  match find_sub s ~sub with
  | None -> s
  | Some i ->
      String.sub s 0 i ^ by
      ^ String.sub s (i + String.length sub)
          (String.length s - i - String.length sub)

(** Content-addressed on-disk verification cache.

    The checker's results are a pure function of (function body, its
    specification, the sibling specifications it may call, the rule-set
    and solver fingerprint, the resource budget).  The driver digests all
    of that into a [key] string; this module maps keys to opaque byte
    payloads on disk so an unchanged function can be verdict-replayed
    instead of re-proved — the Foundational-VeriFast-style "certify once,
    re-check cheaply" economy, applied at the toolchain level.

    Entries are write-once: a file named by the MD5 of its key, written
    to a temp file and [Sys.rename]d into place, so concurrent writers
    (checker domains) cannot expose a torn entry.  The full key is stored
    inside the entry and compared on read, so a digest collision degrades
    to a miss, never to a wrong verdict.

    The hit/miss counters are only maintained by {!find}/{!store} calls
    made from a single domain; parallel drivers count hits from their own
    per-item results instead. *)

type t = {
  dir : string;
  mutable hits : int;
  mutable misses : int;
  mutable stores : int;
}

(** Bump when the entry layout (or the meaning of payloads) changes. *)
let format_version = "rc-vercache-1"

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755
    with Sys_error _ when Sys.file_exists dir -> ()
  end

let create (dir : string) : t =
  mkdir_p dir;
  { dir; hits = 0; misses = 0; stores = 0 }

let entry_path t (key : string) =
  Filename.concat t.dir (Digest.to_hex (Digest.string key) ^ ".vc")

(** Outcome of a detailed lookup: a corrupt entry (present on disk but
    unreadable, truncated, wrong format version, or a digest collision)
    is distinguished from a plain absence so the observability layer can
    count skips separately — both behave as misses. *)
type lookup = Hit of string | Absent | Corrupt

(** [find_detailed t ~key] classifies the lookup; any non-[Hit] outcome
    is a miss for the counters. *)
let find_detailed (t : t) ~(key : string) : lookup =
  let path = entry_path t key in
  let outcome =
    if not (Sys.file_exists path) then Absent
    else
      match
        In_channel.with_open_bin path (fun ic ->
            (Marshal.from_channel ic : string * string * string))
      with
      | v, k, payload when v = format_version && k = key -> Hit payload
      | _ -> Corrupt
      | exception _ -> Corrupt
  in
  (match outcome with
  | Hit _ -> t.hits <- t.hits + 1
  | Absent | Corrupt -> t.misses <- t.misses + 1);
  outcome

(** [find t ~key] returns the stored payload for [key], or [None].  Any
    unreadable, truncated or mismatched entry is a miss. *)
let find (t : t) ~(key : string) : string option =
  match find_detailed t ~key with Hit p -> Some p | Absent | Corrupt -> None

(** [store t ~key payload] persists the entry atomically.  I/O errors are
    swallowed: a cache that cannot write is merely cold, never fatal. *)
let store (t : t) ~(key : string) (payload : string) : unit =
  match
    let path = entry_path t key in
    let tmp = Filename.temp_file ~temp_dir:t.dir "entry" ".tmp" in
    Out_channel.with_open_bin tmp (fun oc ->
        Marshal.to_channel oc (format_version, key, payload) []);
    Sys.rename tmp path
  with
  | () -> t.stores <- t.stores + 1
  | exception Sys_error _ -> ()

(** Number of entries currently on disk. *)
let entries (t : t) : int =
  match Sys.readdir t.dir with
  | files ->
      Array.fold_left
        (fun n f -> if Filename.check_suffix f ".vc" then n + 1 else n)
        0 files
  | exception Sys_error _ -> 0

let hit_rate (t : t) : float =
  let total = t.hits + t.misses in
  if total = 0 then 0. else float_of_int t.hits /. float_of_int total

(** Digest a list of fingerprint components into a stable hex string. *)
let fingerprint (parts : string list) : string =
  Digest.to_hex (Digest.string (String.concat "\x00" parts))

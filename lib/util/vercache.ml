(** Content-addressed on-disk verification cache.

    The checker's results are a pure function of (function body, its
    specification, the sibling specifications it may call, the rule-set
    and solver fingerprint, the resource budget).  The driver digests all
    of that into a [key] string; this module maps keys to opaque byte
    payloads on disk so an unchanged function can be verdict-replayed
    instead of re-proved — the Foundational-VeriFast-style "certify once,
    re-check cheaply" economy, applied at the toolchain level.

    Entries are write-once: a file named by the MD5 of its key, written
    to a temp file and [Sys.rename]d into place, so concurrent writers
    (checker domains) cannot expose a torn entry.  The full key is stored
    inside the entry and compared on read, so a digest collision degrades
    to a miss, never to a wrong verdict.

    Degradation contract: the cache is an accelerator, never an
    authority.  Every failure mode — unreadable entry, unwritable
    directory, an injected ["cache.read"]/["cache.write"] fault from a
    chaos campaign — degrades to a miss or a skipped store.  After
    {!max_write_failures} consecutive store failures the cache disables
    its writes entirely (the directory is evidently unwritable; there is
    no point paying the syscalls), which a driver can surface as a
    diagnostic via {!disabled}.

    The hit/miss counters are only maintained by {!find}/{!store} calls
    made from a single domain; parallel drivers count hits from their own
    per-item results instead. *)

type t = {
  dir : string;
  mutable hits : int;
  mutable misses : int;
  mutable stores : int;
  mutable write_failures : int;  (** consecutive; reset on success *)
  mutable disabled : bool;
}

(** Bump when the entry layout (or the meaning of payloads) changes. *)
let format_version = "rc-vercache-1"

(** Consecutive store failures after which writes shut off. *)
let max_write_failures = 8

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755
    with Sys_error _ when Sys.file_exists dir -> ()
  end

(* A [store] interrupted between temp-file creation and rename (crash,
   injected fault) leaves an orphan [*.tmp]; collect them on open.  A
   concurrent writer's live temp file could in principle be swept too —
   that store then fails and is skipped, which the degradation contract
   already allows — but in practice pools share one handle created
   before any checking starts. *)
let sweep_stale_tmp (dir : string) : unit =
  match Sys.readdir dir with
  | files ->
      Array.iter
        (fun f ->
          if Filename.check_suffix f ".tmp" then
            try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
        files
  | exception Sys_error _ -> ()

(** Open (creating if needed) a cache rooted at [dir].  Raises
    [Sys_error] if the path cannot be created at all — callers that must
    not abort (the CLI) catch this and run uncached. *)
let create (dir : string) : t =
  mkdir_p dir;
  sweep_stale_tmp dir;
  {
    dir;
    hits = 0;
    misses = 0;
    stores = 0;
    write_failures = 0;
    disabled = false;
  }

let disabled (t : t) = t.disabled

let entry_path t (key : string) =
  Filename.concat t.dir (Digest.to_hex (Digest.string key) ^ ".vc")

(** Outcome of a detailed lookup: a corrupt entry (present on disk but
    unreadable, truncated, wrong format version, or a digest collision)
    is distinguished from a plain absence so the observability layer can
    count skips separately — both behave as misses. *)
type lookup = Hit of string | Absent | Corrupt

(** [find_detailed t ~key] classifies the lookup; any non-[Hit] outcome
    is a miss for the counters.  [?fault] arms the ["cache.read"] chaos
    site: an injection is absorbed here as [Corrupt] — by contract the
    cache never lets a fault escape. *)
let find_detailed ?fault (t : t) ~(key : string) : lookup =
  let path = entry_path t key in
  let outcome =
    match Faultsim.point fault "cache.read" with
    | exception Faultsim.Injected _ -> Corrupt
    | () -> (
        if not (Sys.file_exists path) then Absent
        else
          match
            In_channel.with_open_bin path (fun ic ->
                (Marshal.from_channel ic : string * string * string))
          with
          | v, k, payload when v = format_version && k = key -> Hit payload
          | _ -> Corrupt
          | exception _ -> Corrupt)
  in
  (match outcome with
  | Hit _ -> t.hits <- t.hits + 1
  | Absent | Corrupt -> t.misses <- t.misses + 1);
  outcome

(** [find t ~key] returns the stored payload for [key], or [None].  Any
    unreadable, truncated or mismatched entry is a miss. *)
let find ?fault (t : t) ~(key : string) : string option =
  match find_detailed ?fault t ~key with
  | Hit p -> Some p
  | Absent | Corrupt -> None

(** [store t ~key payload] persists the entry atomically.  I/O errors
    (and injected ["cache.write"] faults) are swallowed: a cache that
    cannot write is merely cold, never fatal.  The temp file is removed
    on any failure so an unwritable target directory cannot accumulate
    orphans, and after {!max_write_failures} consecutive failures the
    cache stops attempting writes altogether. *)
let store ?fault (t : t) ~(key : string) (payload : string) : unit =
  if not t.disabled then begin
    let tmp = ref None in
    match
      Faultsim.point fault "cache.write";
      let path = entry_path t key in
      let tf = Filename.temp_file ~temp_dir:t.dir "entry" ".tmp" in
      tmp := Some tf;
      Out_channel.with_open_bin tf (fun oc ->
          Marshal.to_channel oc (format_version, key, payload) []);
      Sys.rename tf path
    with
    | () ->
        t.stores <- t.stores + 1;
        t.write_failures <- 0
    | exception (Sys_error _ | Faultsim.Injected _) ->
        (match !tmp with
        | Some tf -> ( try Sys.remove tf with Sys_error _ -> ())
        | None -> ());
        t.write_failures <- t.write_failures + 1;
        if t.write_failures >= max_write_failures then t.disabled <- true
  end

(** Number of entries currently on disk. *)
let entries (t : t) : int =
  match Sys.readdir t.dir with
  | files ->
      Array.fold_left
        (fun n f -> if Filename.check_suffix f ".vc" then n + 1 else n)
        0 files
  | exception Sys_error _ -> 0

let hit_rate (t : t) : float =
  let total = t.hits + t.misses in
  if total = 0 then 0. else float_of_int t.hits /. float_of_int total

(** Digest a list of fingerprint components into a stable hex string. *)
let fingerprint (parts : string list) : string =
  Digest.to_hex (Digest.string (String.concat "\x00" parts))

(** Content-addressed on-disk verification cache.

    The checker's results are a pure function of (function body, its
    specification, the sibling specifications it may call, the rule-set
    and solver fingerprint, the resource budget).  The driver digests all
    of that into a [key] string; this module maps keys to opaque byte
    payloads on disk so an unchanged function can be verdict-replayed
    instead of re-proved — the Foundational-VeriFast-style "certify once,
    re-check cheaply" economy, applied at the toolchain level.

    Entries are write-once: a file named by the MD5 of its key, written
    to a temp file and [Sys.rename]d into place, so concurrent writers
    (checker domains) cannot expose a torn entry.  The full key is stored
    inside the entry and compared on read, so a digest collision degrades
    to a miss, never to a wrong verdict.

    Degradation contract: the cache is an accelerator, never an
    authority.  Every failure mode — unreadable entry, unwritable
    directory, an injected ["cache.read"]/["cache.write"] fault from a
    chaos campaign — degrades to a miss or a skipped store.  After
    {!max_write_failures} consecutive store failures the cache disables
    its writes entirely (the directory is evidently unwritable; there is
    no point paying the syscalls), which a driver can surface as a
    diagnostic via {!disabled}.

    The hit/miss counters are only maintained by {!find}/{!store} calls
    made from a single domain; parallel drivers count hits from their own
    per-item results instead. *)

type t = {
  dir : string;
  max_bytes : int option;  (** size cap enforced by pruning on open *)
  mutable hits : int;
  mutable misses : int;
  mutable stores : int;
  mutable corrupt_skips : int;  (** unreadable/mismatched entries skipped *)
  mutable pruned : int;  (** entries evicted by the size cap this run *)
  mutable write_failures : int;  (** consecutive; reset on success *)
  mutable disabled : bool;
}

(** Bump when the entry layout (or the meaning of payloads) changes. *)
let format_version = "rc-vercache-1"

(** Consecutive store failures after which writes shut off. *)
let max_write_failures = 8

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755
    with Sys_error _ when Sys.file_exists dir -> ()
  end

(* A [store] interrupted between temp-file creation and rename (crash,
   injected fault) leaves an orphan [*.tmp]; collect them on open.  A
   concurrent writer's live temp file could in principle be swept too —
   that store then fails and is skipped, which the degradation contract
   already allows — but in practice pools share one handle created
   before any checking starts. *)
let sweep_stale_tmp (dir : string) : unit =
  match Sys.readdir dir with
  | files ->
      Array.iter
        (fun f ->
          if Filename.check_suffix f ".tmp" then
            try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
        files
  | exception Sys_error _ -> ()

(* Store files, oldest first by mtime (ties broken by name so the order
   is stable): the candidates for size-capped pruning.  Both entry kinds
   count — content-addressed [*.vc] payloads and [*.mf] manifests. *)
let store_files (dir : string) : (string * float * int) list =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | files ->
      Array.to_list files
      |> List.filter_map (fun f ->
             if Filename.check_suffix f ".vc" || Filename.check_suffix f ".mf"
             then
               let path = Filename.concat dir f in
               match Unix.stat path with
               | st -> Some (f, st.Unix.st_mtime, st.Unix.st_size)
               | exception Unix.Unix_error _ -> None
             else None)
      |> List.sort (fun (fa, ta, _) (fb, tb, _) ->
             match Float.compare ta tb with 0 -> compare fa fb | c -> c)

(** Evict oldest entries until the store fits in [max_bytes]; returns
    the number of files removed.  A removal that fails (concurrent
    eviction, permissions) is skipped — pruning is best-effort, like
    every other maintenance path here. *)
let prune_to (t : t) ~(max_bytes : int) : int =
  let files = store_files t.dir in
  let total =
    List.fold_left (fun acc (_, _, size) -> acc + size) 0 files
  in
  let removed = ref 0 in
  let excess = ref (total - max_bytes) in
  List.iter
    (fun (f, _, size) ->
      if !excess > 0 then
        match Sys.remove (Filename.concat t.dir f) with
        | () ->
            excess := !excess - size;
            incr removed
        | exception Sys_error _ -> ())
    files;
  t.pruned <- t.pruned + !removed;
  !removed

(** Open (creating if needed) a cache rooted at [dir].  Raises
    [Sys_error] if the path cannot be created at all — callers that must
    not abort (the CLI) catch this and run uncached.  [?max_bytes]
    size-caps the store: on open, after the stale-temp sweep, the oldest
    entries are pruned until the on-disk footprint fits (the moral
    extension of the temp sweep — the store cleans up after itself). *)
let create ?max_bytes (dir : string) : t =
  mkdir_p dir;
  sweep_stale_tmp dir;
  let t =
    {
      dir;
      max_bytes;
      hits = 0;
      misses = 0;
      stores = 0;
      corrupt_skips = 0;
      pruned = 0;
      write_failures = 0;
      disabled = false;
    }
  in
  (match max_bytes with
  | Some cap when cap >= 0 -> ignore (prune_to t ~max_bytes:cap)
  | _ -> ());
  t

let disabled (t : t) = t.disabled

let entry_path t (key : string) =
  Filename.concat t.dir (Digest.to_hex (Digest.string key) ^ ".vc")

(** Outcome of a detailed lookup: a corrupt entry (present on disk but
    unreadable, truncated, wrong format version, or a digest collision)
    is distinguished from a plain absence so the observability layer can
    count skips separately — both behave as misses. *)
type lookup = Hit of string | Absent | Corrupt

(** [find_detailed t ~key] classifies the lookup; any non-[Hit] outcome
    is a miss for the counters.  [?fault] arms the ["cache.read"] chaos
    site: an injection is absorbed here as [Corrupt] — by contract the
    cache never lets a fault escape. *)
let find_detailed ?fault (t : t) ~(key : string) : lookup =
  let path = entry_path t key in
  let outcome =
    match Faultsim.point fault "cache.read" with
    | exception Faultsim.Injected _ -> Corrupt
    | () -> (
        if not (Sys.file_exists path) then Absent
        else
          match
            In_channel.with_open_bin path (fun ic ->
                (Marshal.from_channel ic : string * string * string))
          with
          | v, k, payload when v = format_version && k = key -> Hit payload
          | _ -> Corrupt
          | exception _ -> Corrupt)
  in
  (match outcome with
  | Hit _ -> t.hits <- t.hits + 1
  | Absent -> t.misses <- t.misses + 1
  | Corrupt ->
      t.misses <- t.misses + 1;
      t.corrupt_skips <- t.corrupt_skips + 1);
  outcome

(** [find t ~key] returns the stored payload for [key], or [None].  Any
    unreadable, truncated or mismatched entry is a miss. *)
let find ?fault (t : t) ~(key : string) : string option =
  match find_detailed ?fault t ~key with
  | Hit p -> Some p
  | Absent | Corrupt -> None

(** [store t ~key payload] persists the entry atomically.  I/O errors
    (and injected ["cache.write"] faults) are swallowed: a cache that
    cannot write is merely cold, never fatal.  The temp file is removed
    on any failure so an unwritable target directory cannot accumulate
    orphans, and after {!max_write_failures} consecutive failures the
    cache stops attempting writes altogether. *)
let store ?fault (t : t) ~(key : string) (payload : string) : unit =
  if not t.disabled then begin
    let tmp = ref None in
    match
      Faultsim.point fault "cache.write";
      let path = entry_path t key in
      let tf = Filename.temp_file ~temp_dir:t.dir "entry" ".tmp" in
      tmp := Some tf;
      Out_channel.with_open_bin tf (fun oc ->
          Marshal.to_channel oc (format_version, key, payload) []);
      Sys.rename tf path
    with
    | () ->
        t.stores <- t.stores + 1;
        t.write_failures <- 0
    | exception (Sys_error _ | Faultsim.Injected _) ->
        (match !tmp with
        | Some tf -> ( try Sys.remove tf with Sys_error _ -> ())
        | None -> ());
        t.write_failures <- t.write_failures + 1;
        if t.write_failures >= max_write_failures then t.disabled <- true
  end

(** Number of entries currently on disk. *)
let entries (t : t) : int =
  match Sys.readdir t.dir with
  | files ->
      Array.fold_left
        (fun n f -> if Filename.check_suffix f ".vc" then n + 1 else n)
        0 files
  | exception Sys_error _ -> 0

(* ------------------------------------------------------------------ *)
(* Keyed (dependency-cone) entries                                     *)
(* ------------------------------------------------------------------ *)

(* A keyed entry is still a content-addressed, write-once [*.vc] file —
   its key is the concatenation of named component digests — but each
   store also records a *manifest* for the entry's stable identity [id]
   (for the driver: one id per (file, function)).  The manifest holds
   the component list of the last successful store, so a later miss can
   be *explained*: diffing the stored components against the incoming
   ones names exactly which inputs moved (the function's own body, its
   spec, one callee's spec, the session configuration, …).  Manifests
   are advisory — losing or corrupting one never changes what hits, only
   how a miss is reported. *)

(** Why a keyed lookup missed. *)
type reason =
  | Fresh  (** no manifest: this identity was never verified here *)
  | Changed of string list
      (** names of the components that differ from the last stored
          verify (e.g. ["body"], ["spec"; "callee:f3"]) *)
  | Evicted
      (** the manifest matches the incoming components exactly but the
          payload is gone — the entry was pruned or swept *)
  | Collision  (** a corrupt or key-mismatched entry sits at the slot *)

type keyed_lookup = KHit of string | KMiss of reason

let reason_label = function
  | Fresh -> "new"
  | Evicted -> "evicted"
  | Collision -> "collision"
  | Changed cs -> "changed:" ^ String.concat "+" cs

(** The full content-addressed key of a component list: component names
    are part of the digested material, so adding or removing a component
    (a callee appearing or disappearing) changes the key even when every
    shared component is unchanged. *)
let keyed_key ~(id : string) (components : (string * string) list) : string =
  String.concat "\x00"
    (("keyed:" ^ id)
    :: List.concat_map (fun (name, digest) -> [ name; digest ]) components)

let manifest_path (t : t) (id : string) =
  Filename.concat t.dir (Digest.to_hex (Digest.string id) ^ ".mf")

let read_manifest (t : t) (id : string) : (string * string) list option =
  let path = manifest_path t id in
  if not (Sys.file_exists path) then None
  else
    match
      In_channel.with_open_bin path (fun ic ->
          (Marshal.from_channel ic : string * string * (string * string) list))
    with
    | v, i, components when v = format_version && i = id -> Some components
    | _ | (exception _) -> None

(* Manifests are overwritten on every store (they track the *latest*
   verify), so unlike payload entries they are not write-once — but the
   write is still temp-file + rename, so readers never see a torn one. *)
let write_manifest (t : t) (id : string) (components : (string * string) list)
    : unit =
  let tmp = ref None in
  match
    let tf = Filename.temp_file ~temp_dir:t.dir "manifest" ".tmp" in
    tmp := Some tf;
    Out_channel.with_open_bin tf (fun oc ->
        Marshal.to_channel oc (format_version, id, components) []);
    Sys.rename tf (manifest_path t id)
  with
  | () -> ()
  | exception Sys_error _ -> (
      match !tmp with
      | Some tf -> ( try Sys.remove tf with Sys_error _ -> ())
      | None -> ())

(** Diff two component lists; returns the names whose digests differ,
    plus names present on only one side, in first-list order (then any
    right-only names). *)
let diff_components (old_cs : (string * string) list)
    (new_cs : (string * string) list) : string list =
  let changed =
    List.filter_map
      (fun (name, digest) ->
        match List.assoc_opt name old_cs with
        | Some d when String.equal d digest -> None
        | Some _ | None -> Some name)
      new_cs
  in
  let removed =
    List.filter_map
      (fun (name, _) ->
        if List.mem_assoc name new_cs then None else Some name)
      old_cs
  in
  changed @ removed

(** [find_keyed t ~id ~components] looks up the entry whose key is the
    digest of [components]; on a miss, the manifest for [id] explains
    *why* (which components moved since the last verify stored here). *)
let find_keyed ?fault (t : t) ~(id : string)
    ~(components : (string * string) list) : keyed_lookup =
  let key = keyed_key ~id components in
  match find_detailed ?fault t ~key with
  | Hit payload -> KHit payload
  | Corrupt -> KMiss Collision
  | Absent -> (
      match read_manifest t id with
      | None -> KMiss Fresh
      | Some old_cs -> (
          match diff_components old_cs components with
          | [] -> KMiss Evicted
          | changed -> KMiss (Changed changed)))

(** Store a keyed entry and its manifest.  Storage failures degrade
    exactly as {!store}'s do; the manifest is only written when the
    payload store succeeded, so a manifest never describes an entry that
    was not persisted. *)
let store_keyed ?fault (t : t) ~(id : string)
    ~(components : (string * string) list) (payload : string) : unit =
  let before = t.stores in
  store ?fault t ~key:(keyed_key ~id components) payload;
  if t.stores > before then write_manifest t id components

(* ------------------------------------------------------------------ *)
(* Store statistics (--cache-stats)                                    *)
(* ------------------------------------------------------------------ *)

type store_stats = {
  st_entries : int;  (** payload entries on disk *)
  st_manifests : int;  (** manifests on disk *)
  st_bytes : int;  (** total on-disk footprint (entries + manifests) *)
  st_corrupt_skips : int;  (** corrupt entries skipped this run *)
  st_pruned : int;  (** entries evicted by the size cap this run *)
}

let stats (t : t) : store_stats =
  let files = store_files t.dir in
  let count suffix =
    List.length (List.filter (fun (f, _, _) -> Filename.check_suffix f suffix) files)
  in
  {
    st_entries = count ".vc";
    st_manifests = count ".mf";
    st_bytes = List.fold_left (fun acc (_, _, s) -> acc + s) 0 files;
    st_corrupt_skips = t.corrupt_skips;
    st_pruned = t.pruned;
  }

let hit_rate (t : t) : float =
  let total = t.hits + t.misses in
  if total = 0 then 0. else float_of_int t.hits /. float_of_int total

(** Digest a list of fingerprint components into a stable hex string. *)
let fingerprint (parts : string list) : string =
  Digest.to_hex (Digest.string (String.concat "\x00" parts))

(** The persistent run ledger: an append-only NDJSON file of one record
    per check/bench run, living beside the verification cache
    ([runs.jsonl] in the cache directory by convention).

    The ledger is the cross-run telemetry substrate: each record carries
    the run's wall-clock, rule-application totals, per-function
    latencies, cache/memo/solver counters, verdict counts and the
    session's toolchain fingerprint, so [refinedc stats] (and a future
    [refinedc serve] health endpoint) can report throughput trends and
    flag regressions without re-running anything.

    Robustness mirrors {!Profstore}: a ledger is a performance artifact,
    never part of a verdict.  An unusable directory degrades to a
    disabled ledger, a failed append disables it for the rest of the
    run, and the reader skips corrupt lines (a torn write from a crash,
    a hand-edited line) instead of aborting.  Appends are atomic at the
    line level: the whole record is serialized first and written with a
    single [O_APPEND] write, so concurrent sessions appending to one
    ledger interleave whole lines, never fragments.

    Determinism note: ledger records contain wall-clock data by design.
    They are out-of-band — written to the ledger file, never to the
    [--json] report on stdout — so the [-j 1] ≡ [-j 4] byte-identity
    contract of [Driver.to_json] is untouched. *)

type t = {
  dir : string;
  file : string;  (** ledger file name inside [dir] *)
  mutable disabled : bool;  (** set when the directory or file is unusable *)
}

(** Bump when a record's field layout changes incompatibly; readers keep
    accepting older versions (fields are looked up by name, and absent
    fields read as [None]). *)
let schema_version = "refinedc-runlog/1"

let file_name = "runs.jsonl"
let path (t : t) = Filename.concat t.dir t.file
let disabled (t : t) = t.disabled

let create ?(file = file_name) (dir : string) : t =
  match
    if not (Sys.file_exists dir) then Unix.mkdir dir 0o755
    else if not (Sys.is_directory dir) then failwith "not a directory"
  with
  | () -> { dir; file; disabled = false }
  | exception _ -> { dir; file; disabled = true }

(** Append one record as a single NDJSON line.  The line is fully
    serialized before the file is opened and handed to the kernel in one
    [write] on an [O_APPEND] descriptor, so concurrent appenders cannot
    interleave within a line.  Any failure disables the ledger — an
    append must never abort a verification run. *)
let append (t : t) (record : Jsonout.t) : unit =
  if not t.disabled then begin
    let line = Jsonout.to_line record ^ "\n" in
    let bytes = Bytes.of_string line in
    match
      let fd =
        Unix.openfile (path t) [ Unix.O_WRONLY; Unix.O_APPEND; Unix.O_CREAT ]
          0o644
      in
      Fun.protect
        ~finally:(fun () -> Unix.close fd)
        (fun () ->
          let len = Bytes.length bytes in
          let written = Unix.write fd bytes 0 len in
          (* a partial write of an O_APPEND line is not retryable
             atomically; treat it as a failed append *)
          if written <> len then failwith "short write")
    with
    | () -> ()
    | exception _ -> t.disabled <- true
  end

(** Load every parseable record, in append (chronological) order.  An
    absent or unreadable ledger is empty; corrupt lines are skipped. *)
let load (t : t) : Jsonout.t list =
  if t.disabled then []
  else
    match In_channel.with_open_bin (path t) In_channel.input_all with
    | contents ->
        String.split_on_char '\n' contents
        |> List.filter_map (fun line ->
               if String.trim line = "" then None
               else
                 match Jsonout.parse line with
                 | Ok v -> Some v
                 | Error _ -> None)
    | exception _ -> []

(** Lines that failed to parse (for diagnostics/tests). *)
let corrupt_lines (t : t) : int =
  if t.disabled then 0
  else
    match In_channel.with_open_bin (path t) In_channel.input_all with
    | contents ->
        String.split_on_char '\n' contents
        |> List.filter (fun line ->
               String.trim line <> ""
               && Result.is_error (Jsonout.parse line))
        |> List.length
    | exception _ -> 0

(* ------------------------------------------------------------------ *)
(* Trend / regression queries ([refinedc stats])                       *)
(* ------------------------------------------------------------------ *)

(** [percentile p xs] over a non-empty sample, with linear interpolation
    between order statistics ([p] in [0, 1]). *)
let percentile (p : float) (xs : float list) : float option =
  match List.sort compare xs with
  | [] -> None
  | sorted ->
      let a = Array.of_list sorted in
      let n = Array.length a in
      let rank = p *. float_of_int (n - 1) in
      let lo = int_of_float (Float.floor rank) in
      let hi = int_of_float (Float.ceil rank) in
      let frac = rank -. float_of_int lo in
      Some ((a.(lo) *. (1. -. frac)) +. (a.(hi) *. frac))

let median (xs : float list) : float option = percentile 0.5 xs

(** The trailing-window median-of-ratios regression check over a
    chronological metric series where *higher is better* (apps/sec).
    The latest point is compared against each of the [window] points
    before it; the median of those ratios is robust to one noisy
    baseline run.  [regressed] iff the median ratio falls below
    [threshold]. *)
type regression = {
  r_latest : float;
  r_baseline : float list;  (** the trailing window, chronological *)
  r_median_ratio : float;
  r_window : int;  (** points actually used *)
  r_threshold : float;
  r_regressed : bool;
}

let regression ?(window = 4) ?(threshold = 0.75) (series : float list) :
    regression option =
  let series = List.filter (fun x -> x > 0.) series in
  let n = List.length series in
  if n < 2 then None
  else begin
    let latest = List.nth series (n - 1) in
    let prior = List.filteri (fun i _ -> i < n - 1) series in
    let w = min window (List.length prior) in
    let baseline =
      (* the last [w] points before the latest *)
      List.filteri (fun i _ -> i >= List.length prior - w) prior
    in
    let ratios = List.map (fun b -> latest /. b) baseline in
    match median ratios with
    | None -> None
    | Some m ->
        Some
          {
            r_latest = latest;
            r_baseline = baseline;
            r_median_ratio = m;
            r_window = w;
            r_threshold = threshold;
            r_regressed = m < threshold;
          }
  end

(** Minimal JSON emission for machine-readable diagnostics ([--json]).

    Output only — the toolchain never parses JSON — so a tiny value type
    and a printer with correct string escaping are all that is needed; no
    external dependency. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let escape (s : string) : string =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let rec pp ppf (v : t) =
  match v with
  | Null -> Fmt.string ppf "null"
  | Bool b -> Fmt.bool ppf b
  | Int i -> Fmt.int ppf i
  | Float f ->
      if Float.is_integer f && Float.abs f < 1e15 then
        Fmt.pf ppf "%.1f" f
      else Fmt.pf ppf "%.6g" f
  | Str s -> Fmt.pf ppf "\"%s\"" (escape s)
  | List vs ->
      Fmt.pf ppf "[@[<hv>%a@]]" (Fmt.list ~sep:(Fmt.any ",@ ") pp) vs
  | Obj fields ->
      let field ppf (k, v) = Fmt.pf ppf "\"%s\":%a" (escape k) pp v in
      Fmt.pf ppf "{@[<hv>%a@]}" (Fmt.list ~sep:(Fmt.any ",@ ") field) fields

let to_string (v : t) : string = Fmt.str "%a" pp v

(** Minimal JSON for machine-readable diagnostics ([--json]) and the
    run ledger.

    Historically output-only; the run ledger ({!Runlog}) and the bench
    trajectory backfill made the toolchain a *reader* of its own records
    too, so a small recursive-descent {!parse} joins the printer.  Still
    no external dependency: the reader accepts exactly the JSON this
    module (and the bench harness) emits, plus standard escapes. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let escape (s : string) : string =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let rec pp ppf (v : t) =
  match v with
  | Null -> Fmt.string ppf "null"
  | Bool b -> Fmt.bool ppf b
  | Int i -> Fmt.int ppf i
  | Float f ->
      if Float.is_integer f && Float.abs f < 1e15 then
        Fmt.pf ppf "%.1f" f
      else Fmt.pf ppf "%.6g" f
  | Str s -> Fmt.pf ppf "\"%s\"" (escape s)
  | List vs ->
      Fmt.pf ppf "[@[<hv>%a@]]" (Fmt.list ~sep:(Fmt.any ",@ ") pp) vs
  | Obj fields ->
      let field ppf (k, v) = Fmt.pf ppf "\"%s\":%a" (escape k) pp v in
      Fmt.pf ppf "{@[<hv>%a@]}" (Fmt.list ~sep:(Fmt.any ",@ ") field) fields

let to_string (v : t) : string = Fmt.str "%a" pp v

(** Single-line serialization (no wrapping, whatever the width) — the
    NDJSON form {!Runlog} appends, where one record must be one line. *)
let to_line (v : t) : string =
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  Format.pp_set_margin ppf 1_000_000_000;
  pp ppf v;
  Format.pp_print_flush ppf ();
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing (the run ledger and the bench trajectory backfill)          *)
(* ------------------------------------------------------------------ *)

exception Parse_error of string

(** Parse one JSON document.  Numbers without [.]/[e] that fit an OCaml
    [int] parse as [Int]; everything else numeric parses as [Float] —
    the same split the printer makes.  [Error msg] rather than an
    exception, because the ledger reader's contract is skip-on-corrupt,
    not abort. *)
let parse (s : string) : (t, string) result =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail ("expected " ^ word)
  in
  (* UTF-8-encode a \uXXXX code point (surrogate pairs join first) *)
  let add_utf8 b cp =
    if cp < 0x80 then Buffer.add_char b (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char b (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else if cp < 0x10000 then begin
      Buffer.add_char b (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else begin
      Buffer.add_char b (Char.chr (0xF0 lor (cp lsr 18)));
      Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
    end
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    match int_of_string_opt ("0x" ^ String.sub s !pos 4) with
    | Some v ->
        pos := !pos + 4;
        v
    | None -> fail "bad \\u escape"
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' ->
          advance ();
          Buffer.contents b
      | Some '\\' -> (
          advance ();
          (match peek () with
          | Some '"' -> Buffer.add_char b '"'; advance ()
          | Some '\\' -> Buffer.add_char b '\\'; advance ()
          | Some '/' -> Buffer.add_char b '/'; advance ()
          | Some 'b' -> Buffer.add_char b '\b'; advance ()
          | Some 'f' -> Buffer.add_char b '\012'; advance ()
          | Some 'n' -> Buffer.add_char b '\n'; advance ()
          | Some 'r' -> Buffer.add_char b '\r'; advance ()
          | Some 't' -> Buffer.add_char b '\t'; advance ()
          | Some 'u' ->
              advance ();
              let cp = hex4 () in
              let cp =
                (* high surrogate: consume the low half if present *)
                if cp >= 0xD800 && cp <= 0xDBFF
                   && !pos + 6 <= n && s.[!pos] = '\\' && s.[!pos + 1] = 'u'
                then begin
                  pos := !pos + 2;
                  let lo = hex4 () in
                  if lo >= 0xDC00 && lo <= 0xDFFF then
                    0x10000 + ((cp - 0xD800) lsl 10) + (lo - 0xDC00)
                  else lo
                end
                else cp
              in
              add_utf8 b cp
          | _ -> fail "bad escape");
          go ())
      | Some c ->
          Buffer.add_char b c;
          advance ();
          go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let lit = String.sub s start (!pos - start) in
    let is_floaty =
      String.exists (function '.' | 'e' | 'E' -> true | _ -> false) lit
    in
    if is_floaty then
      match float_of_string_opt lit with
      | Some f -> Float f
      | None -> fail "bad number"
    else
      match int_of_string_opt lit with
      | Some i -> Int i
      | None -> (
          match float_of_string_opt lit with
          | Some f -> Float f
          | None -> fail "bad number")
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec fields acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields ((k, v) :: acc)
            | Some '}' ->
                advance ();
                Obj (List.rev ((k, v) :: acc))
            | _ -> fail "expected ',' or '}'"
          in
          fields []
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let rec elems acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elems (v :: acc)
            | Some ']' ->
                advance ();
                List (List.rev (v :: acc))
            | _ -> fail "expected ',' or ']'"
          in
          elems []
        end
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected character '%c'" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error msg -> Error msg

(* ---------------- accessors for parsed values ---------------- *)

let member (k : string) = function Obj fields -> List.assoc_opt k fields | _ -> None

let to_float = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_int = function
  | Int i -> Some i
  | Float f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let to_str = function Str s -> Some s | _ -> None
let to_list = function List vs -> Some vs | _ -> None

(** [number_member k v] reads an [Int]/[Float] field as a float. *)
let number_member (k : string) (v : t) : float option =
  Option.bind (member k v) to_float

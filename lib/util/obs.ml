(** The observability handle threaded through the verification pipeline:
    one {!Trace.t} span buffer plus one {!Metrics.t} registry, with a
    self-time bookkeeping stack for rule spans.

    The disabled handle is the constant {!off}: every operation on it is
    a single pattern match, and call sites on the engine's hot path guard
    with {!on} before constructing event names or argument lists, so a
    session without observability allocates nothing per goal step.

    Concurrency contract: a handle is single-writer.  The driver owns a
    root handle (lane 0) for file-phase spans and mints one {!child} per
    function check (lane = 1 + source index); worker domains write only
    their own child, and {!absorb} merges children back into the root in
    source order — which is what makes trace and metrics output
    deterministic across [-j N]. *)

type cfg = { c_trace : bool; c_metrics : bool }

let cfg_off = { c_trace = false; c_metrics = false }

(** One open self-timed span: its start, and the time its completed
    children consumed (subtracted to get self-time on {!exit_span}). *)
type frame = {
  f_key : string;  (** metrics timer fed on exit, e.g. [rule.self_ns.*] *)
  f_start : int64;
  mutable f_child_ns : int64;
}

type state = {
  tr : Trace.t;
  mx : Metrics.t;
  mutable stack : frame list;
}

type t = Off | On of state

let off = Off
let on = function Off -> false | On _ -> true

let create ?(tid = 0) (cfg : cfg) : t =
  if not (cfg.c_trace || cfg.c_metrics) then Off
  else
    On
      {
        tr = (if cfg.c_trace then Trace.make ~tid () else Trace.off);
        mx = (if cfg.c_metrics then Metrics.make () else Metrics.off);
        stack = [];
      }

let tr = function Off -> Trace.off | On s -> s.tr
let mx = function Off -> Metrics.off | On s -> s.mx

(** A fresh handle on trace lane [tid], enabled like its parent. *)
let child (t : t) ~tid : t =
  match t with
  | Off -> Off
  | On s ->
      On { tr = Trace.child s.tr ~tid; mx = Metrics.child s.mx; stack = [] }

(** Splice [c]'s trace events and merge its metrics into [t].  Call in
    source order; [c] must be quiescent. *)
let absorb (t : t) (c : t) =
  match (t, c) with
  | On a, On b ->
      Trace.absorb a.tr b.tr;
      Metrics.merge a.mx b.mx
  | _ -> ()

(* ---------------- event shorthands (no-ops when Off) ---------------- *)

let instant (t : t) ?args ~cat name =
  match t with Off -> () | On s -> Trace.instant s.tr ?args ~cat name

let complete (t : t) ?args ~cat ~start_ns ~dur_ns name =
  match t with
  | Off -> ()
  | On s -> Trace.complete s.tr ?args ~cat ~start_ns ~dur_ns name

(* plain spans: trace-only, no self-time frame (see {!enter_span} for
   the profiled variant) *)
let span_begin (t : t) ?args ~cat name =
  match t with Off -> () | On s -> Trace.span_begin s.tr ?args ~cat name

let span_end (t : t) ?args ~cat name =
  match t with Off -> () | On s -> Trace.span_end s.tr ?args ~cat name

let counter (t : t) ?by name =
  match t with Off -> () | On s -> Metrics.incr s.mx ?by name

let observe_ns (t : t) name ns =
  match t with Off -> () | On s -> Metrics.observe_ns s.mx name ns

(* ---------------- self-timed spans ---------------- *)

(** Open a span and push a self-time frame.  [key] names the metrics
    timer that receives the span's *self* time (total minus completed
    children) on {!exit_span} — the profiler's notion of where time was
    actually spent, as opposed to merely on the stack. *)
let enter_span (t : t) ?args ~cat ~(key : string) name =
  match t with
  | Off -> ()
  | On s ->
      Trace.span_begin s.tr ?args ~cat name;
      s.stack <- { f_key = key; f_start = Trace.now_ns (); f_child_ns = 0L }
                 :: s.stack

(** Close the innermost span: emit the [E] event, record self-time under
    the frame's key, and charge the span's total to the parent frame. *)
let exit_span (t : t) ~cat name =
  match t with
  | Off -> ()
  | On s -> (
      match s.stack with
      | [] -> Trace.span_end s.tr ~cat name
      | f :: rest ->
          let now = Trace.now_ns () in
          Trace.span_end s.tr ~cat name;
          s.stack <- rest;
          let total = Int64.sub now f.f_start in
          Metrics.observe_ns s.mx f.f_key (Int64.sub total f.f_child_ns);
          (match rest with
          | parent :: _ ->
              parent.f_child_ns <- Int64.add parent.f_child_ns total
          | [] -> ()))

(** [timed t ~cat ~key name f] runs [f ()] inside a span, closing it on
    both return and exception.  Allocates a closure — use it for cold
    spans (phases, per-function, certificates); the engine's per-rule
    hot path uses {!enter_span}/{!exit_span} directly. *)
let timed (t : t) ?args ~cat ~key name (f : unit -> 'a) : 'a =
  match t with
  | Off -> f ()
  | On _ -> (
      enter_span t ?args ~cat ~key name;
      match f () with
      | v ->
          exit_span t ~cat name;
          v
      | exception e ->
          exit_span t ~cat name;
          raise e)

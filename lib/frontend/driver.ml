(** The RefinedC toolchain driver (Figure 2): C source → Caesium +
    specifications → Lithium type checking → per-function results.

    Every function's check runs inside a fault-isolation boundary: an
    exception escaping the checker ([Stack_overflow], a solver bug, an
    injected fault) is converted into a structured per-function
    {!Rc_lithium.Report.t} instead of aborting the file, so the remaining
    functions still verify.  {!faults} distinguishes *the checker broke*
    (crash or budget exhaustion) from {!failures}, *verification found a
    problem* — the CLI maps these to different exit codes.

    Function checks are independent of each other (the frontend fixes
    every spec before checking starts), so the driver can fan
    {!check_fn_isolated} out across a supervised worker pool ([~jobs],
    or a persistent {!Rc_util.Supervisor} carried by the session) and/or
    replay verdicts from a {!Rc_util.Vercache} ([~cache]); both are
    observationally identical to the sequential, uncached run — same
    verdicts, same aggregate statistics, same exit code.

    The dispatch layer adds the robustness contract: a worker crash is
    confined to its task (supervision re-queues and respawns), transient
    faults can be re-attempted ([x_retries]), a whole-run deadline or a
    cooperative cancellation ([x_deadline]/[x_cancel]) stops *starting*
    functions and reports the rest as skipped — a partial report with
    every completed verdict intact, never a lost run. *)

module Syntax = Rc_caesium.Syntax
module Report = Rc_lithium.Report
module Session = Rc_refinedc.Session
module Depgraph = Rc_refinedc.Depgraph
module Obs = Rc_util.Obs
module Supervisor = Rc_util.Supervisor
module Vercache = Rc_util.Vercache

type check_result = {
  name : string;
  outcome : (Rc_refinedc.Lang.E.result, Report.t) result;
  time_s : float;  (** wall-clock seconds spent on this function *)
  cached : bool;  (** verdict replayed from the verification cache *)
  why : string option;
      (** why the cache behaved as it did for this function: ["hit"], a
          {!Rc_util.Vercache.reason_label} miss explanation
          (["new"], ["changed:body+callee:f"], …), or legacy-mode
          ["miss"]/["corrupt"]; [None] without a cache *)
}

(* Where a freshly proved verdict will be stored: under the legacy
   whole-file key, or as a cone-keyed entry with its manifest. *)
type store_plan =
  | No_store
  | Legacy of string
  | Keyed of string * (string * string) list  (* manifest id, components *)

(** How the run ended: normally, stopped by the whole-run deadline, or
    stopped by cooperative cancellation (SIGINT/SIGTERM).  Either early
    stop yields a *partial* report: completed verdicts are kept and the
    unvisited functions are listed in {!field-skipped}. *)
type stop = Completed | Deadline | Interrupted

type t = {
  file : string;
  elaborated : Elab.elaborated;
  graph : Rc_refinedc.Depgraph.t;
      (** the file's function-level dependency graph (always built — it
          is cheap, and embedders use it for impact queries) *)
  schedule : string list;
      (** the dirty functions in the order they were dispatched:
          longest-measured-job first from [costs.prof], topological
          (callees first) for unmeasured ties, source order under
          [~fail_fast] or with incrementality off *)
  results : check_result list;
  skipped : string list;
      (** functions not attempted: under [~fail_fast], after the
          whole-run deadline, or after an interrupt *)
  stop : stop;  (** why checking stopped, if before the end *)
  exec_stats : Supervisor.run_stats;
      (** supervision counters (retries, crashes, respawns, …); all
          zero on a fault-free, deadline-free run *)
  jobs : int;  (** worker count the check actually used *)
  cache_stats : (int * int) option;
      (** (hits, misses) when a verification cache was supplied *)
  obs : Obs.t;
      (** the check's observability root: phase/function/rule spans
          (already merged in source order) and the metrics registry.
          {!Obs.off} when the session's config enables neither. *)
  diagnostics : Rc_util.Diagnostic.t list;
      (** frontend warnings and lint findings, sorted with
          {!Rc_util.Diagnostic.sort} — deterministic across [-j N] *)
  werror : bool;
      (** session's [l_werror]: problem diagnostics fail the run *)
}

exception Frontend_error of string

let parse_and_elab ?(obs = Obs.off) ~(session : Session.t) ~file
    (src : string) : Elab.elaborated =
  let ast =
    Obs.timed obs ~cat:"phase" ~key:"phase.parse"
      ~args:[ ("file", file) ] "phase:parse" (fun () ->
        match Cparser.parse_file ~file src with
        | exception Cparser.Parse_error (msg, loc) ->
            raise
              (Frontend_error
                 (Fmt.str "%a: parse error: %s" Rc_util.Srcloc.pp loc msg))
        | exception Clexer.Lex_error (msg, loc) ->
            raise
              (Frontend_error
                 (Fmt.str "%a: lexical error: %s" Rc_util.Srcloc.pp loc msg))
        | ast -> ast)
  in
  Obs.timed obs ~cat:"phase" ~key:"phase.elab" ~args:[ ("file", file) ]
    "phase:elab" (fun () ->
      let extra_warnings = Warn.check_file ast in
      match Elab.elab_file ~tenv:session.Session.tenv ast with
      | exception Elab.Elab_error (msg, loc) ->
          raise
            (Frontend_error
               (Fmt.str "%a: elaboration error: %s" Rc_util.Srcloc.pp loc msg))
      | exception Specparse.Spec_error msg ->
          raise (Frontend_error ("specification error: " ^ msg))
      | e -> { e with Elab.warnings = extra_warnings @ e.Elab.warnings })

(* ------------------------------------------------------------------ *)
(* Fault isolation                                                     *)
(* ------------------------------------------------------------------ *)

(** Run one function's check, converting any escaping exception into a
    structured checker-fault diagnostic — including [Out_of_memory] and
    [Stack_overflow], which abort this function's proof but say nothing
    about its siblings.  [Sys.Break] alone is re-raised: masking Ctrl-C
    would be dishonest (the CLI interrupts cooperatively via the
    session's [x_cancel] instead).  An injected fault is classified
    {!Report.Transient_fault} — re-running the same check may succeed,
    which is exactly what the supervisor's retry policy keys on. *)
let check_fn_isolated ?(obs = Obs.off) ~session ~specs
    (f : Rc_refinedc.Typecheck.fn_to_check) :
    (Rc_refinedc.Lang.E.result, Report.t) result =
  match Rc_refinedc.Typecheck.check_fn ~obs ~session ~specs f with
  | outcome -> outcome
  | exception Report.Error e -> Error e
  | exception Sys.Break -> raise Sys.Break
  | exception Rc_util.Faultsim.Injected site ->
      Error (Report.make (Report.Transient_fault ("injected fault at " ^ site)))
  | exception Out_of_memory ->
      Error (Report.make (Report.Checker_fault "Out_of_memory in checker"))
  | exception Stack_overflow ->
      Error (Report.make (Report.Checker_fault "Stack_overflow in checker"))
  | exception e ->
      Error
        (Report.make
           (Report.Checker_fault ("uncaught exception " ^ Printexc.to_string e)))

(* ------------------------------------------------------------------ *)
(* Verification-cache replay                                           *)
(* ------------------------------------------------------------------ *)

(* Only successful verdicts are cached: failures are rare, re-proving
   them costs little and yields fresh diagnostics, and a failure's
   precise report can depend on budget timing.  The payload is the
   marshalled per-function statistics — exactly what the Figure-7
   aggregation and the JSON output consume — so a replayed run is
   indistinguishable from a re-proved one everywhere except the
   derivation tree, which is replaced by a one-node stub. *)

let cache_payload (stats : Rc_lithium.Stats.t) : string =
  Marshal.to_string stats []

let replay_result (data : string) :
    (Rc_refinedc.Lang.E.result, Report.t) result option =
  match (Marshal.from_string data 0 : Rc_lithium.Stats.t) with
  | stats ->
      Some
        (Ok
           {
             Rc_refinedc.Lang.E.deriv =
               Rc_lithium.Deriv.make ~info:"verdict replayed from cache"
                 "cached" [];
             stats;
           })
  | exception _ -> None

(** Verify every specified function of an already-elaborated file.

    Dispatch goes through {!Rc_util.Supervisor}: the session's
    persistent pool if it carries one ([x_pool] — spawned once per CLI
    invocation or bench session, the fix for the old spawn-per-run
    slowdown), else a transient pool for [~jobs > 1], else the
    sequential engine.  Results come back in source order regardless —
    the workers share the session read-only, so parallelism is
    race-free by construction.  A fault campaign on the session no
    longer forces sequential checking: campaigns are domain-safe, and a
    chaos run *wants* the parallel dispatch path exercised (sequential
    replay determinism still holds at [jobs = 1], where hits draw from
    the seeded stream in hit order).

    [~cache] replays previously-proved verdicts (see the cache-key
    definition in {!Rc_refinedc.Typecheck.cache_key}); the campaign's
    ["cache.read"]/["cache.write"] sites are armed on every cache
    access, and an injection there degrades to a miss or a skipped
    store — never a wrong verdict, never an abort.

    With [~fail_fast] the functions after the first failure are skipped
    (and listed in {!field-skipped}); under [jobs > 1] they may already
    have been checked speculatively, but their results are discarded so
    the output is identical to the sequential run.

    [~obs] is the observability root (lane 0).  Every function check
    writes trace events and metrics into a private child handle (lane =
    1 + source index, so each function is its own track in Perfetto);
    the children of the *kept* results — always a source-order prefix —
    are merged back into the root in source order, which makes trace and
    metrics output deterministic across [-j N] and identical between a
    sequential fail-fast run and a parallel one that checked extra
    functions speculatively. *)
let check_elaborated ?(fail_fast = false) ?(jobs = 1) ?cache ?(obs = Obs.off)
    ~(session : Session.t) ~file (elaborated : Elab.elaborated) : t =
  (* lint pre-pass: a pure analysis of the elaborated unit, before any
     proof search, so its findings arrive even when checking later
     faults out.  It never changes verdicts — only the diagnostics list
     (and, under [l_werror], the exit code). *)
  let lint_diags =
    if session.Session.lint.Session.l_enabled then
      Obs.timed obs ~cat:"phase" ~key:"phase.lint" ~args:[ ("file", file) ]
        "phase:lint" (fun () ->
          Rc_analysis.Lint.run ~obs ~metas:elaborated.Elab.metas ~session
            ~file ~funcs:elaborated.Elab.program.Syntax.funcs
            ~to_check:elaborated.Elab.to_check ())
    else []
  in
  let diagnostics =
    Rc_util.Diagnostic.sort (elaborated.Elab.warnings @ lint_diags)
  in
  let specs =
    List.map
      (fun (f : Rc_refinedc.Typecheck.fn_to_check) ->
        (f.spec.Rc_refinedc.Rtype.fs_name, f.spec))
      elaborated.to_check
  in
  let fn_name (f : Rc_refinedc.Typecheck.fn_to_check) =
    f.spec.Rc_refinedc.Rtype.fs_name
  in
  let jobs = max 1 jobs in
  let campaign = Session.fault session in
  let exec = session.Session.exec in
  let incr_on = session.Session.inc.Session.in_enabled in
  (* the function-level dependency graph: direct spec-level references
     extracted from Caesium bodies + spec/invariant types, with content
     digests per node.  Built unconditionally — it is a cheap syntactic
     pass, it keys the incremental cache, and it orders the cold-run
     schedule (callees first) *)
  let graph = Depgraph.build elaborated.to_check in
  (* absolute whole-run deadline, measured from here; the supervisor
     measures its own from dispatch, a few microseconds later *)
  let deadline_watch = Rc_util.Budget.stopwatch () in
  (* the legacy whole-file key component, used only with incrementality
     off: digests ALL sibling specs, so any spec edit dirties the file *)
  let specs_digest =
    match cache with
    | Some _ when not incr_on ->
        Vercache.fingerprint
          (List.sort compare
             (List.map
                (fun (_, s) -> Rc_refinedc.Rtype.spec_signature s)
                specs))
    | _ -> ""
  in
  let children =
    Array.of_list
      (List.mapi (fun i _ -> Obs.child obs ~tid:(i + 1)) elaborated.to_check)
  in
  if Obs.on obs then begin
    Rc_util.Trace.name_lane (Obs.tr obs) ~tid:0 "pipeline";
    List.iteri
      (fun i f ->
        Rc_util.Trace.name_lane (Obs.tr obs) ~tid:(i + 1)
          ("fn:" ^ fn_name f))
      elaborated.to_check
  end;
  let indexed = List.mapi (fun i f -> (i, f)) elaborated.to_check in
  (* ---- probe the verification cache up-front (the dirty cone) ----
     Probing is a cheap sequential pass over digests: hits replay
     immediately, misses become the dirty set handed to the scheduler.
     Incremental mode keys each function on its dependency cone
     ({!Depgraph.components}) with a manifest-diff miss explanation;
     legacy mode keeps the whole-file spec-digest key. *)
  let probe ((idx, f) : int * Rc_refinedc.Typecheck.fn_to_check) :
      check_result option * (string option * store_plan) =
    let co = children.(idx) in
    let name = fn_name f in
    let watch = Rc_util.Budget.stopwatch () in
    let cache_event kind =
      if Obs.on co then begin
        Obs.counter co ("cache." ^ kind);
        Obs.instant co ~cat:"cache" ~args:[ ("fn", name) ] ("cache:" ^ kind)
      end
    in
    let hit data why =
      (* a readable entry whose payload this build cannot unmarshal
         (e.g. written by a different compiler) degrades to a
         corrupt-entry skip: re-prove and overwrite *)
      Option.map
        (fun outcome ->
          cache_event "hit";
          if Obs.on co then begin
            Obs.span_begin co ~cat:"check" ~args:[ ("fn", name) ]
              ("fn:" ^ name);
            Obs.instant co ~cat:"check"
              ~args:[ ("status", "verified") ]
              "verdict";
            Obs.span_end co ~cat:"check" ("fn:" ^ name);
            Obs.observe_ns co ("fn.ns." ^ name)
              (Int64.of_float (watch () *. 1e9))
          end;
          { name; outcome; time_s = watch (); cached = true; why = Some why })
        (replay_result data)
    in
    match cache with
    | None -> (None, (None, No_store))
    | Some vc ->
        if incr_on then begin
          let id = Depgraph.cache_id ~file name in
          let components = Depgraph.components ~session graph f in
          match Vercache.find_keyed ?fault:campaign vc ~id ~components with
          | Vercache.KHit data -> (
              match hit data "hit" with
              | Some r -> (Some r, (None, No_store))
              | None ->
                  cache_event "corrupt";
                  (None, (Some "corrupt", Keyed (id, components))))
          | Vercache.KMiss reason ->
              cache_event
                (match reason with
                | Vercache.Collision -> "corrupt"
                | Vercache.Fresh | Vercache.Changed _ | Vercache.Evicted ->
                    "miss");
              ( None,
                ( Some (Vercache.reason_label reason),
                  Keyed (id, components) ) )
        end
        else begin
          let key = Rc_refinedc.Typecheck.cache_key ~session ~specs_digest f in
          match Vercache.find_detailed ?fault:campaign vc ~key with
          | Vercache.Hit data -> (
              match hit data "hit" with
              | Some r -> (Some r, (None, No_store))
              | None ->
                  cache_event "corrupt";
                  (None, (Some "corrupt", Legacy key)))
          | Vercache.Absent ->
              cache_event "miss";
              (None, (Some "miss", Legacy key))
          | Vercache.Corrupt ->
              cache_event "corrupt";
              (None, (Some "corrupt", Legacy key))
        end
  in
  let hits_rev, dirty_rev =
    List.fold_left
      (fun (hs, ds) (i, f) ->
        match probe (i, f) with
        | Some r, _ -> ((i, r) :: hs, ds)
        | None, (why, plan) -> (hs, (i, f, why, plan) :: ds))
      ([], []) indexed
  in
  let hits = List.rev hits_rev in
  (* ---- schedule the dirty set ----
     Longest measured job first (per-function wall-clock samples kept in
     [costs.prof] next to the cache — Profstore format, last sample
     wins), unmeasured ties in topological order (callees first, so a
     cold run proves leaves while callers wait on workers).  [~fail_fast]
     keeps source order: its contract is "nothing after the first
     failure", which only means anything in a fixed order. *)
  let costs_store =
    match cache with
    | Some vc when incr_on && not (Vercache.disabled vc) ->
        Some (Rc_util.Profstore.create ~file:"costs.prof" vc.Vercache.dir)
    | _ -> None
  in
  let dirty =
    let dirty = List.rev dirty_rev in
    if fail_fast || not incr_on then dirty
    else begin
      let topo_pos = Hashtbl.create 16 in
      List.iteri
        (fun i n -> Hashtbl.replace topo_pos n i)
        (Depgraph.topo_order graph);
      let cost_tbl = Hashtbl.create 16 in
      (match costs_store with
      | Some st ->
          List.iter
            (fun (k, v) -> Hashtbl.replace cost_tbl k v)
            (Rc_util.Profstore.load st)
      | None -> ());
      let cost n =
        Option.value ~default:0 (Hashtbl.find_opt cost_tbl (file ^ ":" ^ n))
      in
      let pos n =
        Option.value ~default:max_int (Hashtbl.find_opt topo_pos n)
      in
      List.stable_sort
        (fun (_, f1, _, _) (_, f2, _, _) ->
          let n1 = fn_name f1 and n2 = fn_name f2 in
          match Int.compare (cost n2) (cost n1) with
          | 0 -> Int.compare (pos n1) (pos n2)
          | c -> c)
        dirty
    end
  in
  let schedule = List.map (fun (_, f, _, _) -> fn_name f) dirty in
  let check_one
      ((idx, f, why, plan) :
        int * Rc_refinedc.Typecheck.fn_to_check * string option * store_plan)
      : check_result =
    let co = children.(idx) in
    let watch = Rc_util.Budget.stopwatch () in
    let name = fn_name f in
    if Obs.on co then begin
      Obs.counter co "pool.tasks";
      Obs.instant co ~cat:"sched"
        ~args:
          [ ("fn", name);
            ("domain", string_of_int (Rc_util.Pool.worker_id ())) ]
        "task:begin";
      Obs.span_begin co ~cat:"check" ~args:[ ("fn", name) ] ("fn:" ^ name)
    end;
    (* cap this function's budget timeout by the time left on the
       whole-run deadline, so an in-flight check cannot overshoot the
       run by more than the cap.  The cache key was computed from the
       *original* session (at probe time): only [Ok] verdicts are cached
       and verdicts are budget-monotone, so the capped session can only
       turn would-be verdicts into (uncached) exhaustions. *)
    let session =
      match exec.Session.x_deadline with
      | None -> session
      | Some d ->
          let remaining = Float.max 0.01 (d -. deadline_watch ()) in
          let b = session.Session.budget in
          let timeout =
            match b.Rc_util.Budget.timeout with
            | Some t -> Some (Float.min t remaining)
            | None -> Some remaining
          in
          Session.with_budget session { b with Rc_util.Budget.timeout }
    in
    let outcome = check_fn_isolated ~obs:co ~session ~specs f in
    (match (cache, plan, outcome) with
    | Some vc, Legacy key, Ok res ->
        Vercache.store ?fault:campaign vc ~key
          (cache_payload res.Rc_refinedc.Lang.E.stats)
    | Some vc, Keyed (id, components), Ok res ->
        Vercache.store_keyed ?fault:campaign vc ~id ~components
          (cache_payload res.Rc_refinedc.Lang.E.stats)
    | _ -> ());
    let r = { name; outcome; time_s = watch (); cached = false; why } in
    if Obs.on co then begin
      Obs.instant co ~cat:"check"
        ~args:
          [ ( "status",
              match r.outcome with
              | Ok _ -> "verified"
              | Error e -> if Report.is_fault e then "fault" else "failed" )
          ]
        "verdict";
      Obs.span_end co ~cat:"check" ("fn:" ^ name);
      Obs.observe_ns co ("fn.ns." ^ name) (Int64.of_float (r.time_s *. 1e9));
      Obs.instant co ~cat:"sched"
        ~args:
          [ ("fn", name);
            ("domain", string_of_int (Rc_util.Pool.worker_id ())) ]
        "task:end"
    end;
    r
  in
  (* ---- dispatch through the supervisor ---- *)
  let cancel =
    match exec.Session.x_cancel with Some c -> c | None -> fun () -> false
  in
  let retries = max 0 exec.Session.x_retries in
  let should_retry (r : check_result) =
    match r.outcome with Error e -> Report.is_transient e | Ok _ -> false
  in
  let is_transient_exn = function
    | Rc_util.Faultsim.Injected _ -> true
    | _ -> false
  in
  let pool, transient =
    match exec.Session.x_pool with
    | Some p -> (Some p, false)
    | None ->
        (* clamp to what the hardware can actually run concurrently:
           workers beyond the core count only add scheduling and GC-sync
           overhead (on a single-core host, [-j 4] used to run ~3x
           *slower* than [-j 1]).  A session-supplied pool is exempt —
           its owner sized it deliberately. *)
        let jobs = min jobs (Supervisor.recommended_jobs ()) in
        if jobs > 1 && Supervisor.parallelism_available then
          (* no session pool: spin up a per-call one (the historical
             behaviour; callers that care about spawn cost carry a
             persistent pool in the session instead) *)
          (Some (Supervisor.create ~jobs ()), true)
        else (None, false)
  in
  let jobs = match pool with Some p -> Supervisor.jobs p | None -> 1 in
  (* sequential fail-fast preserves the historical early exit — nothing
     after the first failure is even attempted — by feeding the failure
     flag to the supervisor's cancel poll; the stop is re-classified as
     an ordinary fail-fast skip below.  Parallel fail-fast keeps the
     historical speculative-check-then-truncate semantics. *)
  let ff_hit = ref false in
  let check_one_seq task =
    let r = check_one task in
    if fail_fast && Result.is_error r.outcome then ff_hit := true;
    r
  in
  let outcomes, rstats =
    match pool with
    | Some p ->
        let r =
          Supervisor.run p ?deadline:exec.Session.x_deadline ~cancel ~retries
            ~should_retry ~is_transient:is_transient_exn ?fault:campaign
            check_one dirty
        in
        if transient then Supervisor.shutdown p;
        r
    | None ->
        Supervisor.run_seq ?deadline:exec.Session.x_deadline
          ~cancel:(fun () -> cancel () || !ff_hit)
          ~retries ~should_retry ~is_transient:is_transient_exn check_one_seq
          dirty
  in
  (* ---- assemble results, faults and skips in source order ----
     Cache hits and dirty verdicts merge by source index: the output
     order never depends on the dispatch schedule. *)
  let kept_rev, not_run_rev =
    List.fold_left2
      (fun (ks, ns) (i, f, why, _plan) outcome ->
        match outcome with
        | Supervisor.Done r -> ((i, r) :: ks, ns)
        | Supervisor.Fault fl ->
            (* the task (or its worker) died [fl.f_attempts] times; the
               verdict slot survives as a structured checker fault *)
            let r =
              {
                name = fn_name f;
                outcome =
                  Error
                    (Report.make
                       (Report.Checker_fault
                          (Fmt.str "worker fault after %d attempt(s): %s"
                             fl.Supervisor.f_attempts fl.Supervisor.f_exn)));
                time_s = 0.;
                cached = false;
                why;
              }
            in
            ((i, r) :: ks, ns)
        | Supervisor.Not_run _ -> (ks, (i, fn_name f) :: ns))
      ([], []) dirty outcomes
  in
  let kept =
    List.sort
      (fun (a, _) (b, _) -> Int.compare a b)
      (hits @ List.rev kept_rev)
  in
  (* feed this run's wall-clock samples back into the cost model (the
     *measured* checks only); a degraded store drops them silently *)
  (match costs_store with
  | Some st ->
      Rc_util.Profstore.accumulate
        ~merge:(fun _ fresh -> fresh)
        st
        (List.filter_map
           (fun (_, r) ->
             if r.cached || r.time_s <= 0. then None
             else
               Some (file ^ ":" ^ r.name, max 1 (int_of_float (r.time_s *. 1e6))))
           kept)
  | None -> ());
  let kept, cut =
    if not fail_fast then (kept, [])
    else
      (* truncate after the first failure, exactly as sequential
         fail-fast would have *)
      let rec go acc = function
        | [] -> (List.rev acc, [])
        | (i, r) :: rest ->
            if Result.is_error r.outcome then
              (List.rev ((i, r) :: acc), List.map (fun (i, r) -> (i, r.name)) rest)
            else go ((i, r) :: acc) rest
      in
      go [] kept
  in
  let results = List.map snd kept in
  let skipped =
    List.map snd
      (List.sort
         (fun (a, _) (b, _) -> Int.compare a b)
         (cut @ List.rev not_run_rev))
  in
  let interrupted = cancel () in
  let stop =
    match rstats.Supervisor.rs_stop with
    | Some Supervisor.Deadline -> Deadline
    | Some Supervisor.Cancelled ->
        (* distinguish a real interrupt from the fail-fast early exit
           routed through the same cancel poll *)
        if interrupted then Interrupted else Completed
    | None -> if interrupted then Interrupted else Completed
  in
  let exec_stats =
    if stop = Completed && rstats.Supervisor.rs_stop <> None then
      (* the early stop was fail-fast: an ordinary skip, not a
         supervision event — keep the fault-free report all-zeros *)
      { rstats with Supervisor.rs_stop = None; rs_not_run = 0 }
    else rstats
  in
  let diagnostics =
    if exec_stats.Supervisor.rs_degraded then
      (* a Note, deliberately not a problem: degradation must never
         change an exit code (even under --lint-werror), only explain
         where the wall-clock went *)
      Rc_util.Diagnostic.sort
        (Rc_util.Diagnostic.make ~severity:Rc_util.Diagnostic.Note
           ~code:"RC-X001"
           ~loc:
             (Rc_util.Srcloc.make ~file ~start_line:1 ~start_col:0
                ~end_line:1 ~end_col:0)
           "worker pool degraded to sequential execution (respawn \
            allowance exhausted); verdicts are unaffected"
        :: diagnostics)
    else diagnostics
  in
  (* merge the kept results' observability by source index — skips and
     fail-fast discards contribute nothing, exactly as in a sequential
     run that never reached them *)
  if Obs.on obs then List.iter (fun (i, _) -> Obs.absorb obs children.(i)) kept;
  let cache_stats =
    match cache with
    | None -> None
    | Some _ ->
        let hits = List.length (List.filter (fun r -> r.cached) results) in
        Some (hits, List.length results - hits)
  in
  {
    file;
    elaborated;
    graph;
    schedule;
    results;
    skipped;
    stop;
    exec_stats;
    jobs;
    cache_stats;
    obs;
    diagnostics;
    werror = session.Session.lint.Session.l_werror;
  }

(** Lint (only) an already-elaborated file: frontend warnings plus every
    registered pass, regardless of the session's [l_enabled] /
    [l_passes] pre-pass selection — the [refinedc lint] verb's engine.
    Pass [~passes] to restrict to named passes
    (raises {!Rc_analysis.Lint.Unknown_pass} on a bad name). *)
let lint_elaborated ?(obs = Obs.off) ?passes ~(session : Session.t) ~file
    (elaborated : Elab.elaborated) : Rc_util.Diagnostic.t list =
  let session =
    Session.with_lint session
      { Session.l_enabled = true; l_passes = passes; l_werror = false }
  in
  let lint_diags =
    Obs.timed obs ~cat:"phase" ~key:"phase.lint" ~args:[ ("file", file) ]
      "phase:lint" (fun () ->
        Rc_analysis.Lint.run ~obs ~metas:elaborated.Elab.metas ~session
          ~file ~funcs:elaborated.Elab.program.Syntax.funcs
          ~to_check:elaborated.Elab.to_check ())
  in
  Rc_util.Diagnostic.sort (elaborated.Elab.warnings @ lint_diags)

(** Resolve the session for one check invocation: the caller's session,
    optionally with a one-shot budget override (a CLI convenience — the
    flags set a budget without the caller building a session by hand). *)
let resolve_session ?session ?budget () : Session.t =
  let s = match session with Some s -> s | None -> Session.create () in
  match budget with Some b -> Session.with_budget s b | None -> s

(** Verify every specified function of a source string.  The session's
    observability configuration (see {!Session.with_obs}) decides
    whether a trace/metrics root is minted for this check; the root
    rides on the returned {!field-obs}. *)
let check_source ?session ?budget ?fail_fast ?jobs ?cache ~file
    (src : string) : t =
  let session = resolve_session ?session ?budget () in
  let obs = Obs.create ~tid:0 session.Session.obs in
  let elaborated = parse_and_elab ~obs ~session ~file src in
  Obs.timed obs ~cat:"phase" ~key:"phase.check" ~args:[ ("file", file) ]
    "phase:check" (fun () ->
      check_elaborated ?fail_fast ?jobs ?cache ~obs ~session ~file elaborated)

let check_file ?session ?budget ?fail_fast ?jobs ?cache (path : string) : t =
  let session = resolve_session ?session ?budget () in
  (* the file-I/O boundary: both a real read failure and an injected
     ["io.read"] fault become a structured frontend error — the one
     failure that is necessarily file-fatal, but still a clean report
     rather than an escaped exception *)
  let src =
    match
      Rc_util.Faultsim.point (Session.fault session) "io.read";
      In_channel.with_open_bin path In_channel.input_all
    with
    | src -> src
    | exception Rc_util.Faultsim.Injected _ ->
        raise (Frontend_error (Fmt.str "injected I/O fault reading %s" path))
    | exception Sys_error msg ->
        raise (Frontend_error ("cannot read " ^ path ^ ": " ^ msg))
  in
  check_source ~session ?fail_fast ?jobs ?cache ~file:path src

(* ------------------------------------------------------------------ *)
(* Outcome queries                                                     *)
(* ------------------------------------------------------------------ *)

let all_ok (t : t) =
  t.skipped = [] && List.for_all (fun r -> Result.is_ok r.outcome) t.results

let errors (t : t) =
  List.filter_map
    (fun r ->
      match r.outcome with Ok _ -> None | Error e -> Some (r.name, e))
    t.results

(** Verification failures: the program (or its spec) could not be
    verified.  The complement of {!faults} within {!errors}. *)
let failures (t : t) =
  List.filter (fun (_, e) -> not (Report.is_fault e)) (errors t)

(** Checker faults: the *checker* crashed or ran out of budget on these
    functions; nothing was established about the program. *)
let faults (t : t) =
  List.filter (fun (_, e) -> Report.is_fault e) (errors t)

(** The CLI exit-code contract: 0 = all functions verified,
    1 = at least one verification failure (or, under [--lint-werror], a
    problem diagnostic), 2 = at least one checker fault or budget
    exhaustion — including the whole-run [--deadline], which is budget
    exhaustion at the run level — and 130 = interrupted (the
    conventional 128+SIGINT), whatever the partial report holds. *)
let exit_code (t : t) =
  if t.stop = Interrupted then 130
  else if faults t <> [] then 2
  else if t.stop = Deadline then 2
  else if not (all_ok t) then 1
  else if t.werror && List.exists Rc_util.Diagnostic.is_problem t.diagnostics
  then 1
  else 0

(** Aggregate statistics over all verified functions (Figure 7 inputs). *)
let stats (t : t) : Rc_lithium.Stats.t =
  let acc = Rc_lithium.Stats.create () in
  List.iter
    (fun r ->
      match r.outcome with
      | Ok { Rc_refinedc.Lang.E.stats; _ } -> Rc_lithium.Stats.merge acc stats
      | Error _ -> ())
    t.results;
  acc

(* ------------------------------------------------------------------ *)
(* JSON diagnostics (--json)                                           *)
(* ------------------------------------------------------------------ *)

let result_to_json ?(timings = true) (r : check_result) : Rc_util.Jsonout.t =
  let open Rc_util.Jsonout in
  let base =
    [
      ("name", Str r.name);
      ("time_s", Float (if timings then r.time_s else 0.));
      ("cached", Bool r.cached);
      (* why the cache behaved as it did ("hit", "new", "changed:body",
         "changed:spec+callee:f", …); deterministic given the cache
         directory's state, so -j1/-j4 byte-identity is preserved *)
      ("cache_why", match r.why with None -> Null | Some w -> Str w);
    ]
  in
  match r.outcome with
  | Ok res ->
      let s = res.Rc_refinedc.Lang.E.stats in
      Obj
        (base
        @ [
            ("status", Str "verified");
            ( "stats",
              Obj
                [
                  ("rule_apps", Int s.Rc_lithium.Stats.rule_apps);
                  ("evar_insts", Int s.Rc_lithium.Stats.evar_insts);
                  ("side_auto", Int s.Rc_lithium.Stats.side_auto);
                  ("side_manual", Int s.Rc_lithium.Stats.side_manual);
                ] );
          ])
  | Error e ->
      Obj
        (base
        @ [
            ("status", Str (if Report.is_fault e then "fault" else "failed"));
            ("diagnostic", Report.to_json e);
          ])

(** The report is a pure function of the session configuration and the
    source: run-environment inputs (the [-j N] worker count) are not
    echoed, and [~timings:false] zeroes the wall-clock fields — the only
    nondeterministic part — so [-j 1] and [-j 4] runs serialize to
    byte-identical JSON. *)
let to_json ?(timings = true) (t : t) : Rc_util.Jsonout.t =
  let open Rc_util.Jsonout in
  Obj
    [
      ("file", Str t.file);
      ("ok", Bool (all_ok t));
      ("exit_code", Int (exit_code t));
      ( "cache",
        match t.cache_stats with
        | None -> Null
        | Some (hits, misses) ->
            Obj
              [
                ("hits", Int hits);
                ("misses", Int misses);
                ( "hit_rate",
                  Float
                    (if hits + misses = 0 then 0.
                     else float_of_int hits /. float_of_int (hits + misses))
                );
              ] );
      ("functions", List (List.map (result_to_json ~timings) t.results));
      ("skipped", List (List.map (fun s -> Str s) t.skipped));
      ( "stop",
        Str
          (match t.stop with
          | Completed -> "completed"
          | Deadline -> "deadline"
          | Interrupted -> "interrupted") );
      ("interrupted", Bool (t.stop = Interrupted));
      (* supervision counters: all zero on a fault-free, deadline-free
         run, which keeps -j1/-j4 reports byte-identical *)
      ( "exec",
        let e = t.exec_stats in
        Obj
          [
            ("retries", Int e.Supervisor.rs_retries);
            ("task_faults", Int e.Supervisor.rs_task_faults);
            ("worker_crashes", Int e.Supervisor.rs_crashes);
            ("respawns", Int e.Supervisor.rs_respawns);
            ("not_run", Int e.Supervisor.rs_not_run);
            ("degraded", Bool e.Supervisor.rs_degraded);
          ] );
      ( "diagnostics",
        List (List.map Rc_util.Diagnostic.to_json t.diagnostics) );
      ( "coverage",
        let specified, total =
          Rc_analysis.Lint.coverage
            ~funcs:t.elaborated.Elab.program.Syntax.funcs
            ~to_check:t.elaborated.Elab.to_check
        in
        Obj [ ("specified", Int specified); ("total", Int total) ] );
      (* Null unless the session enabled metrics; with [~timings:false]
         only observation counts survive, which are deterministic *)
      ("metrics", Rc_util.Metrics.to_json ~timings (Obs.mx t.obs));
    ]

(* ------------------------------------------------------------------ *)
(* Run-ledger records (--runlog)                                        *)
(* ------------------------------------------------------------------ *)

(** One {!Rc_util.Runlog} record for this check run.  Unlike
    {!to_json}, ledger records carry wall-clock data by design — they
    exist to track throughput across runs — but they are out-of-band:
    written to the ledger file beside the cache, never to stdout, so the
    [-j 1] ≡ [-j 4] byte-identity of the [--json] report is untouched.
    Per-function percentiles are precomputed at write time so
    [refinedc stats] never needs the raw function list. *)
let runlog_record ~(session : Session.t) ~(wall_s : float) (t : t) :
    Rc_util.Jsonout.t =
  let open Rc_util.Jsonout in
  let s = stats t in
  let rule_apps = s.Rc_lithium.Stats.rule_apps in
  let verified, failed, faults_n =
    List.fold_left
      (fun (v, f, x) r ->
        match r.outcome with
        | Ok _ -> (v + 1, f, x)
        | Error e -> if Report.is_fault e then (v, f, x + 1) else (v, f + 1, x))
      (0, 0, 0) t.results
  in
  let fn_walls =
    List.filter_map
      (fun r -> if r.cached then None else Some r.time_s)
      t.results
  in
  let pct p =
    match Rc_util.Runlog.percentile p fn_walls with
    | Some v -> Float v
    | None -> Null
  in
  let why_histogram =
    (* "changed:body+callee:f" buckets by its head ("changed:body") so
       the histogram stays low-cardinality across runs *)
    let tbl = Hashtbl.create 8 in
    List.iter
      (fun r ->
        match r.why with
        | None -> ()
        | Some w ->
            let key =
              match String.index_opt w '+' with
              | Some i -> String.sub w 0 i
              | None -> w
            in
            Hashtbl.replace tbl key
              (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key)))
      t.results;
    Hashtbl.fold (fun k v acc -> (k, Int v) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  let m = Obs.mx t.obs in
  let metrics_fields =
    if not (Rc_util.Metrics.on m) then []
    else
      [
        ( "memo",
          Obj
            [
              ("hits", Int (Rc_util.Metrics.counter m "memo.hit"));
              ("misses", Int (Rc_util.Metrics.counter m "memo.miss"));
              ("stores", Int (Rc_util.Metrics.counter m "memo.store"));
            ] );
        ( "solvers",
          List
            (Rc_util.Metrics.timers_with_prefix m ~prefix:"solver.ns."
            |> List.map (fun (name, count, total_ns) ->
                   Obj
                     [
                       ("name", Str name);
                       ("calls", Int count);
                       ("total_ns", Float (Int64.to_float total_ns));
                     ])) );
        (* per-pass lint wall-clock (the [lint.<pass>] spans) — lets
           [refinedc stats] trend analysis cost alongside proof cost *)
        ( "lint",
          List
            (Rc_util.Metrics.timers_with_prefix m ~prefix:"lint."
            |> List.filter (fun (name, _, _) ->
                   not
                     (String.length name >= 6
                     && String.sub name 0 6 = "diags."))
            |> List.map (fun (name, count, total_ns) ->
                   Obj
                     [
                       ("pass", Str name);
                       ("runs", Int count);
                       ("total_ns", Float (Int64.to_float total_ns));
                     ])) );
      ]
  in
  let e = t.exec_stats in
  Obj
    ([
       ("schema", Str Rc_util.Runlog.schema_version);
       ("kind", Str "check");
       ("file", Str t.file);
       ( "fingerprint",
         Str (Rc_refinedc.Typecheck.toolchain_fingerprint session) );
       ("ocaml", Str Sys.ocaml_version);
       ("jobs", Int t.jobs);
       ("wall_s", Float wall_s);
       ("rule_apps", Int rule_apps);
       ( "apps_per_sec",
         if wall_s > 0. then Float (float_of_int rule_apps /. wall_s)
         else Null );
       ( "verdicts",
         Obj
           [
             ("verified", Int verified);
             ("failed", Int failed);
             ("faults", Int faults_n);
             ("skipped", Int (List.length t.skipped));
           ] );
       ( "cache",
         match t.cache_stats with
         | None -> Null
         | Some (hits, misses) ->
             Obj
               [
                 ("hits", Int hits);
                 ("misses", Int misses);
                 ( "hit_rate",
                   Float
                     (if hits + misses = 0 then 0.
                      else float_of_int hits /. float_of_int (hits + misses))
                 );
               ] );
       ("cache_why", Obj why_histogram);
       ( "fn_wall",
         Obj
           [
             ("checked", Int (List.length fn_walls));
             ("p50_s", pct 0.5);
             ("p95_s", pct 0.95);
           ] );
       ( "exec",
         Obj
           [
             ("retries", Int e.Supervisor.rs_retries);
             ("task_faults", Int e.Supervisor.rs_task_faults);
             ("worker_crashes", Int e.Supervisor.rs_crashes);
             ("respawns", Int e.Supervisor.rs_respawns);
             ("not_run", Int e.Supervisor.rs_not_run);
             ("degraded", Bool e.Supervisor.rs_degraded);
           ] );
       ( "stop",
         Str
           (match t.stop with
           | Completed -> "completed"
           | Deadline -> "deadline"
           | Interrupted -> "interrupted") );
     ]
    @ metrics_fields)

(** Run a function of the elaborated program in the Caesium interpreter
    (used by examples and the semantic-soundness harness). *)
let run (t : t) (fname : string) (args : Rc_caesium.Value.t list) =
  Rc_caesium.Eval.run_fn t.elaborated.Elab.program fname args

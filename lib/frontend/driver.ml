(** The RefinedC toolchain driver (Figure 2): C source → Caesium +
    specifications → Lithium type checking → per-function results.

    Every function's check runs inside a fault-isolation boundary: an
    exception escaping the checker ([Stack_overflow], a solver bug, an
    injected fault) is converted into a structured per-function
    {!Rc_lithium.Report.t} instead of aborting the file, so the remaining
    functions still verify.  {!faults} distinguishes *the checker broke*
    (crash or budget exhaustion) from {!failures}, *verification found a
    problem* — the CLI maps these to different exit codes. *)

module Syntax = Rc_caesium.Syntax
module Report = Rc_lithium.Report

type check_result = {
  name : string;
  outcome : (Rc_refinedc.Lang.E.result, Report.t) result;
  time_s : float;  (** wall-clock seconds spent on this function *)
}

type t = {
  file : string;
  elaborated : Elab.elaborated;
  results : check_result list;
  skipped : string list;  (** functions not attempted under [~fail_fast] *)
}

exception Frontend_error of string

let parse_and_elab ~file (src : string) : Elab.elaborated =
  match Cparser.parse_file ~file src with
  | exception Cparser.Parse_error (msg, loc) ->
      raise
        (Frontend_error
           (Fmt.str "%a: parse error: %s" Rc_util.Srcloc.pp loc msg))
  | exception Clexer.Lex_error (msg, loc) ->
      raise
        (Frontend_error
           (Fmt.str "%a: lexical error: %s" Rc_util.Srcloc.pp loc msg))
  | ast -> (
      let extra_warnings = Warn.check_file ast in
      match Elab.elab_file ast with
      | exception Elab.Elab_error (msg, loc) ->
          raise
            (Frontend_error
               (Fmt.str "%a: elaboration error: %s" Rc_util.Srcloc.pp loc msg))
      | exception Specparse.Spec_error msg ->
          raise (Frontend_error ("specification error: " ^ msg))
      | e -> { e with Elab.warnings = extra_warnings @ e.Elab.warnings })

(* ------------------------------------------------------------------ *)
(* Fault isolation                                                     *)
(* ------------------------------------------------------------------ *)

(** Run one function's check, converting any escaping exception into a
    structured checker-fault diagnostic.  Asynchronous exceptions are
    re-raised: masking [Out_of_memory] or Ctrl-C would be dishonest. *)
let check_fn_isolated ~budget ~specs (f : Rc_refinedc.Typecheck.fn_to_check)
    : (Rc_refinedc.Lang.E.result, Report.t) result =
  match Rc_refinedc.Typecheck.check_fn ~budget ~specs f with
  | outcome -> outcome
  | exception Report.Error e -> Error e
  | exception ((Out_of_memory | Sys.Break) as e) -> raise e
  | exception Rc_util.Faultsim.Injected site ->
      Error (Report.make (Report.Checker_fault ("injected fault at " ^ site)))
  | exception Stack_overflow ->
      Error (Report.make (Report.Checker_fault "Stack_overflow in checker"))
  | exception e ->
      Error
        (Report.make
           (Report.Checker_fault ("uncaught exception " ^ Printexc.to_string e)))

(** Verify every specified function of a source string.  With
    [~fail_fast] the remaining functions are skipped (and listed in
    {!field-skipped}) after the first failure; the default checks all
    functions regardless. *)
let check_source ?(budget = Rc_util.Budget.unlimited) ?(fail_fast = false)
    ~file (src : string) : t =
  let elaborated = parse_and_elab ~file src in
  let specs =
    List.map
      (fun (f : Rc_refinedc.Typecheck.fn_to_check) ->
        (f.spec.Rc_refinedc.Rtype.fs_name, f.spec))
      elaborated.to_check
  in
  let fn_name (f : Rc_refinedc.Typecheck.fn_to_check) =
    f.spec.Rc_refinedc.Rtype.fs_name
  in
  let rec go acc = function
    | [] -> (List.rev acc, [])
    | f :: rest ->
        let watch = Rc_util.Budget.stopwatch () in
        let outcome = check_fn_isolated ~budget ~specs f in
        let r = { name = fn_name f; outcome; time_s = watch () } in
        if fail_fast && Result.is_error outcome then
          (List.rev (r :: acc), List.map fn_name rest)
        else go (r :: acc) rest
  in
  let results, skipped = go [] elaborated.to_check in
  { file; elaborated; results; skipped }

let check_file ?budget ?fail_fast (path : string) : t =
  let src = In_channel.with_open_bin path In_channel.input_all in
  check_source ?budget ?fail_fast ~file:path src

(* ------------------------------------------------------------------ *)
(* Outcome queries                                                     *)
(* ------------------------------------------------------------------ *)

let all_ok (t : t) =
  t.skipped = [] && List.for_all (fun r -> Result.is_ok r.outcome) t.results

let errors (t : t) =
  List.filter_map
    (fun r ->
      match r.outcome with Ok _ -> None | Error e -> Some (r.name, e))
    t.results

(** Verification failures: the program (or its spec) could not be
    verified.  The complement of {!faults} within {!errors}. *)
let failures (t : t) =
  List.filter (fun (_, e) -> not (Report.is_fault e)) (errors t)

(** Checker faults: the *checker* crashed or ran out of budget on these
    functions; nothing was established about the program. *)
let faults (t : t) =
  List.filter (fun (_, e) -> Report.is_fault e) (errors t)

(** The CLI exit-code contract: 0 = all functions verified,
    1 = at least one verification failure, 2 = at least one checker
    fault or budget exhaustion. *)
let exit_code (t : t) =
  if faults t <> [] then 2 else if all_ok t then 0 else 1

(** Aggregate statistics over all verified functions (Figure 7 inputs). *)
let stats (t : t) : Rc_lithium.Stats.t =
  let acc = Rc_lithium.Stats.create () in
  List.iter
    (fun r ->
      match r.outcome with
      | Ok { Rc_refinedc.Lang.E.stats; _ } -> Rc_lithium.Stats.merge acc stats
      | Error _ -> ())
    t.results;
  acc

(* ------------------------------------------------------------------ *)
(* JSON diagnostics (--json)                                           *)
(* ------------------------------------------------------------------ *)

let result_to_json (r : check_result) : Rc_util.Jsonout.t =
  let open Rc_util.Jsonout in
  let base = [ ("name", Str r.name); ("time_s", Float r.time_s) ] in
  match r.outcome with
  | Ok res ->
      let s = res.Rc_refinedc.Lang.E.stats in
      Obj
        (base
        @ [
            ("status", Str "verified");
            ( "stats",
              Obj
                [
                  ("rule_apps", Int s.Rc_lithium.Stats.rule_apps);
                  ("evar_insts", Int s.Rc_lithium.Stats.evar_insts);
                  ("side_auto", Int s.Rc_lithium.Stats.side_auto);
                  ("side_manual", Int s.Rc_lithium.Stats.side_manual);
                ] );
          ])
  | Error e ->
      Obj
        (base
        @ [
            ("status", Str (if Report.is_fault e then "fault" else "failed"));
            ("diagnostic", Report.to_json e);
          ])

let to_json (t : t) : Rc_util.Jsonout.t =
  let open Rc_util.Jsonout in
  Obj
    [
      ("file", Str t.file);
      ("ok", Bool (all_ok t));
      ("exit_code", Int (exit_code t));
      ("functions", List (List.map result_to_json t.results));
      ("skipped", List (List.map (fun s -> Str s) t.skipped));
      ( "warnings",
        List (List.map (fun w -> Str w) t.elaborated.Elab.warnings) );
    ]

(** Run a function of the elaborated program in the Caesium interpreter
    (used by examples and the semantic-soundness harness). *)
let run (t : t) (fname : string) (args : Rc_caesium.Value.t list) =
  Rc_caesium.Eval.run_fn t.elaborated.Elab.program fname args

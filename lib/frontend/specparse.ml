(** Parser for the RefinedC annotation language — the payloads of
    [[rc::…]] attributes: pure terms and propositions (with the paper's
    unicode notation: ≤ ≠ ∅ ⊎ ∈ ∀ → … and ASCII alternates), refinement
    types, parameter declarations, and pre/postcondition items. *)

open Rc_pure
open Rc_pure.Term
open Rc_refinedc.Rtype
module Int_type = Rc_caesium.Int_type
module Layout = Rc_caesium.Layout

exception Spec_error of string

let fail fmt = Fmt.kstr (fun s -> raise (Spec_error s)) fmt

(* ------------------------------------------------------------------ *)
(* Lexer                                                               *)
(* ------------------------------------------------------------------ *)

type tok = I of string | N of int | P of string  (** punct, normalized *)

let utf8_puncts =
  [
    ("\xe2\x89\xa4", "<=");  (* ≤ *)
    ("\xe2\x89\xa5", ">=");  (* ≥ *)
    ("\xe2\x89\xa0", "!=");  (* ≠ *)
    ("\xe2\x88\x85", "EMPTY");  (* ∅ *)
    ("\xe2\x8a\x8e", "MUNION");  (* ⊎ *)
    ("\xe2\x88\xaa", "UNION");  (* ∪ *)
    ("\xe2\x88\x96", "SETDIFF");  (* ∖ *)
    ("\xe2\x88\x88", "in");  (* ∈ *)
    ("\xe2\x88\x80", "forall");  (* ∀ *)
    ("\xe2\x88\x83", "exists");  (* ∃ *)
    ("\xe2\x86\x92", "->");  (* → *)
    ("\xe2\x88\xa7", "&&");  (* ∧ *)
    ("\xe2\x88\xa8", "||");  (* ∨ *)
    ("\xc2\xac", "!");  (* ¬ *)
  ]

let tokenize (s : string) : tok list =
  let n = String.length s in
  let toks = ref [] in
  let i = ref 0 in
  let is_id c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' in
  let is_idc c = is_id c || (c >= '0' && c <= '9') || c = '\'' in
  while !i < n do
    let c = s.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if is_id c then begin
      let start = !i in
      while !i < n && is_idc s.[!i] do
        incr i
      done;
      toks := I (String.sub s start (!i - start)) :: !toks
    end
    else if c >= '0' && c <= '9' then begin
      let start = !i in
      while !i < n && s.[!i] >= '0' && s.[!i] <= '9' do
        incr i
      done;
      toks := N (int_of_string (String.sub s start (!i - start))) :: !toks
    end
    else begin
      (* utf8 symbols *)
      let matched =
        List.find_opt
          (fun (u, _) ->
            let l = String.length u in
            !i + l <= n && String.sub s !i l = u)
          utf8_puncts
      in
      match matched with
      | Some (u, norm) ->
          i := !i + String.length u;
          let word =
            String.length norm > 0 && norm.[0] >= 'a' && norm.[0] <= 'z'
          in
          toks := (if word then I norm else P norm) :: !toks
      | None when !i + 2 < n && String.sub s !i 3 = "..." ->
          (* the struct-body placeholder of rc::ptr_type (Figure 3) *)
          i := !i + 3;
          toks := I "__structbody" :: !toks
      | None ->
          let two =
            if !i + 1 < n then Some (String.sub s !i 2) else None
          in
          (match two with
          | Some (("<=" | ">=" | "==" | "!=" | "->" | "&&" | "||" | "++"
                  | "::" | "{[" | "]}" | "[]") as p) ->
              i := !i + 2;
              toks := P p :: !toks
          | _ ->
              let p = String.make 1 c in
              (match p with
              | "(" | ")" | "{" | "}" | "[" | "]" | "<" | ">" | "=" | "+"
              | "-" | "*" | "/" | "%" | "," | ":" | "@" | "?" | "!" | "."
              | ";" | "&" ->
                  incr i;
                  toks := P p :: !toks
              | _ -> fail "unexpected character %C in specification %S" c s))
    end
  done;
  List.rev !toks

(* ------------------------------------------------------------------ *)
(* Parser state                                                        *)
(* ------------------------------------------------------------------ *)

type env = {
  vars : (string * Sort.t) list;  (** in-scope logical variables *)
  structs : (string * Layout.struct_layout) list;
  fn_specs : (string * fn_spec) list;  (** for fnptr<f> *)
  tenv : Rc_refinedc.Rtype.tenv;  (** session named-type definitions *)
}

let empty_env () =
  {
    vars = [];
    structs = [];
    fn_specs = [];
    tenv = Rc_refinedc.Rtype.create_tenv ();
  }

type pstate = { mutable toks : tok list; env : env }

let peek st = match st.toks with [] -> None | t :: _ -> Some t
let advance st = match st.toks with [] -> () | _ :: r -> st.toks <- r

let eat_p st p =
  match peek st with
  | Some (P q) when q = p ->
      advance st;
      true
  | _ -> false

let expect_p st p =
  if not (eat_p st p) then fail "expected '%s' in specification" p

let expect_id st =
  match peek st with
  | Some (I x) ->
      advance st;
      x
  | _ -> fail "expected identifier in specification"

let save st = st.toks
let restore st toks = st.toks <- toks

let var_sort st x =
  match List.assoc_opt x st.env.vars with
  | Some s -> s
  | None -> fail "unknown specification variable %s" x

(* ------------------------------------------------------------------ *)
(* Sorts                                                               *)
(* ------------------------------------------------------------------ *)

let parse_sort_text (s : string) : Sort.t =
  let s = String.trim s in
  let s =
    if String.length s >= 2 && s.[0] = '{' && s.[String.length s - 1] = '}'
    then String.trim (String.sub s 1 (String.length s - 2))
    else s
  in
  match Sort.of_string s with
  | Some so -> so
  | None -> (
      match String.split_on_char ' ' s with
      | [ "list"; e ] -> (
          match Sort.of_string e with
          | Some se -> Sort.List se
          | None -> fail "unknown sort %S" s)
      | _ -> fail "unknown sort %S" s)

(** "x: sort" declarations (rc::parameters / rc::exists / rc::refined_by) *)
let parse_binder (s : string) : string * Sort.t =
  match String.index_opt s ':' with
  | None -> fail "expected \"name: sort\" in %S" s
  | Some i ->
      let name = String.trim (String.sub s 0 i) in
      let sort =
        parse_sort_text (String.sub s (i + 1) (String.length s - i - 1))
      in
      (name, sort)

(* ------------------------------------------------------------------ *)
(* Terms and propositions                                              *)
(* ------------------------------------------------------------------ *)

let rec parse_prop st : prop =
  match peek st with
  | Some (I ("forall" | "exists" as q)) ->
      advance st;
      let x = expect_id st in
      let sort =
        if eat_p st ":" then (
          let sname = expect_id st in
          match Sort.of_string sname with
          | Some s -> s
          | None -> fail "unknown sort %s" sname)
        else Sort.Int
      in
      expect_p st ",";
      let env = { st.env with vars = (x, sort) :: st.env.vars } in
      let st' = { st with env } in
      st'.toks <- st.toks;
      let body = parse_prop st' in
      st.toks <- st'.toks;
      if q = "forall" then PForall (x, sort, body) else PExists (x, sort, body)
  | _ -> parse_imp st

and parse_imp st : prop =
  let lhs = parse_or st in
  if eat_p st "->" then PImp (lhs, parse_imp st) else lhs

and parse_or st : prop =
  let lhs = ref (parse_and st) in
  while eat_p st "||" do
    lhs := POr (!lhs, parse_and st)
  done;
  !lhs

and parse_and st : prop =
  let lhs = ref (parse_cmp st) in
  while eat_p st "&&" do
    lhs := PAnd (!lhs, parse_cmp st)
  done;
  !lhs

and parse_cmp st : prop =
  match peek st with
  | Some (P "!") ->
      advance st;
      PNot (parse_cmp st)
  | Some (I "true") when st.toks |> List.length = 1 || true ->
      (* [true]/[false] as propositions only when not followed by an
         operator that would make them terms — they are not terms here *)
      advance st;
      PTrue
  | Some (I "false") ->
      advance st;
      PFalse
  | Some (P "(") -> (
      (* could be a parenthesized proposition or a term *)
      let snap = save st in
      match parse_prop_paren st with
      | Some p -> p
      | None ->
          restore st snap;
          parse_relation st)
  | _ -> parse_relation st

and parse_prop_paren st : prop option =
  if not (eat_p st "(") then None
  else
    match parse_prop st with
    | p -> (
        match peek st with
        | Some (P ")") ->
            advance st;
            (* reject if this parse consumed a bare term only and the next
               token continues a term (e.g. "(a + b) - c"); "?" stays
               accepted: "(φ) ? t₁ : t₂" is a valid ternary *)
            (match (p, peek st) with
            | _, Some (P ("+" | "-" | "*" | "/" | "%" | "@")) -> None
            | _ -> Some p)
        | _ -> None)
    | exception Spec_error _ -> None

and parse_relation st : prop =
  let lhs = parse_term st in
  match peek st with
  | Some (P "=") | Some (P "==") ->
      advance st;
      PEq (lhs, parse_term st)
  | Some (P "!=") ->
      advance st;
      p_ne lhs (parse_term st)
  | Some (P "<=") ->
      advance st;
      PLe (lhs, parse_term st)
  | Some (P "<") ->
      advance st;
      PLt (lhs, parse_term st)
  | Some (P ">=") ->
      advance st;
      p_ge lhs (parse_term st)
  | Some (P ">") ->
      advance st;
      p_gt lhs (parse_term st)
  | Some (I "in") ->
      advance st;
      PIn (lhs, parse_term st)
  | _ -> (
      (* a boolean-sorted term as a proposition *)
      match lhs with
      | TProp p -> p
      | t when sort_of t = Sort.Bool -> PIsTrue t
      | _ -> fail "expected a proposition")

and parse_term st : term = parse_cons st

and parse_cons st : term =
  let lhs = parse_append st in
  if eat_p st "::" then Cons (lhs, parse_cons st) else lhs

and parse_append st : term =
  let lhs = ref (parse_union st) in
  while eat_p st "++" do
    lhs := Append (!lhs, parse_union st)
  done;
  !lhs

and parse_union st : term =
  let lhs = ref (parse_add st) in
  let rec go () =
    if eat_p st "MUNION" then begin
      lhs := MsUnion (!lhs, parse_add st);
      go ()
    end
    else if eat_p st "UNION" then begin
      lhs := SetUnion (!lhs, parse_add st);
      go ()
    end
    else if eat_p st "SETDIFF" then begin
      lhs := SetDiff (!lhs, parse_add st);
      go ()
    end
  in
  go ();
  !lhs

and parse_add st : term =
  let lhs = ref (parse_mul st) in
  let rec go () =
    match peek st with
    | Some (P "+") ->
        advance st;
        lhs := Add (!lhs, parse_mul st);
        go ()
    | Some (P "-") ->
        advance st;
        lhs := Sub (!lhs, parse_mul st);
        go ()
    | _ -> ()
  in
  go ();
  !lhs

and parse_mul st : term =
  let lhs = ref (parse_prim st) in
  let rec go () =
    match peek st with
    | Some (P "*") ->
        advance st;
        lhs := Mul (!lhs, parse_prim st);
        go ()
    | Some (P "/") ->
        advance st;
        lhs := Div (!lhs, parse_prim st);
        go ()
    | Some (P "%") ->
        advance st;
        lhs := Mod (!lhs, parse_prim st);
        go ()
    | _ -> ()
  in
  go ();
  !lhs

and parse_prim st : term =
  match peek st with
  | Some (N n) ->
      advance st;
      Num n
  | Some (P "EMPTY") ->
      advance st;
      MsEmpty  (* sort-corrected to SetEmpty on demand by callers *)
  | Some (P "{[") ->
      advance st;
      let t = parse_term st in
      expect_p st "]}";
      MsSingleton t
  | Some (P "[]") ->
      advance st;
      Nil Sort.Int
  | Some (P "{") ->
      (* embedded proposition as a boolean term *)
      advance st;
      let p = parse_prop st in
      expect_p st "}";
      TProp p
  | Some (P "(") -> (
      advance st;
      (* could be (term), or a ternary (prop ? t : t) *)
      let snap = save st in
      match
        let p = parse_prop st in
        if eat_p st "?" then Some p else None
      with
      | Some p ->
          let t1 = parse_term st in
          expect_p st ":";
          let t2 = parse_term st in
          expect_p st ")";
          Ite (p, t1, t2)
      | None | (exception Spec_error _) ->
          restore st snap;
          let t = parse_term st in
          expect_p st ")";
          t)
  | Some (I "sizeof") ->
      advance st;
      expect_p st "(";
      (match peek st with
      | Some (I "struct") -> advance st
      | _ -> ());
      let name = expect_id st in
      expect_p st ")";
      (match List.assoc_opt name st.env.structs with
      | Some sl -> Num sl.Layout.sl_size
      | None -> fail "sizeof of unknown struct %s" name)
  | Some (I "length") ->
      advance st;
      Length (parse_prim st)
  | Some (I ("min" | "max" as f)) when st.toks <> [] ->
      advance st;
      expect_p st "(";
      let a = parse_term st in
      expect_p st ",";
      let b = parse_term st in
      expect_p st ")";
      if f = "min" then Min (a, b) else Max (a, b)
  | Some (I "replicate") ->
      advance st;
      let n = parse_prim st in
      let x = parse_prim st in
      Replicate (n, x)
  | Some (I "nth") ->
      advance st;
      let d = parse_prim st in
      let i = parse_prim st in
      let l = parse_prim st in
      NthDflt (d, i, l)
  | Some (I "insert") ->
      advance st;
      let i = parse_prim st in
      let x = parse_prim st in
      let l = parse_prim st in
      SetListInsert (i, x, l)
  | Some (I "NULL") ->
      advance st;
      NullLoc
  | Some (I x) -> (
      advance st;
      match peek st with
      | Some (P "(") ->
          advance st;
          let args = ref [] in
          if not (eat_p st ")") then begin
            let rec go () =
              args := parse_term st :: !args;
              if eat_p st "," then go () else expect_p st ")"
            in
            go ()
          end;
          App (x, List.rev !args)
      | _ -> Var (x, var_sort st x))
  | _ -> fail "expected a term"

(* ------------------------------------------------------------------ *)
(* Set/multiset disambiguation                                         *)
(* ------------------------------------------------------------------ *)

(** The lexer cannot tell [∅]/[{[x]}] of multisets from sets; fix up a
    term to the expected sort. *)
let rec to_set (t : term) : term =
  match t with
  | MsEmpty -> SetEmpty
  | MsSingleton x -> SetSingleton x
  | MsUnion (a, b) | SetUnion (a, b) -> SetUnion (to_set a, to_set b)
  | SetDiff (a, b) -> SetDiff (to_set a, to_set b)
  | Ite (p, a, b) -> Ite (p, to_set a, to_set b)
  | _ -> t

let coerce_sort (expected : Sort.t) (t : term) : term =
  match expected with Sort.Set -> to_set t | _ -> t

let rec coerce_prop_sorts (p : prop) : prop =
  (* fix ∅ comparisons against set-sorted variables *)
  match p with
  | PEq (a, b) when sort_of a = Sort.Set -> PEq (a, to_set b)
  | PEq (a, b) when sort_of b = Sort.Set -> PEq (to_set a, b)
  | PNot q -> PNot (coerce_prop_sorts q)
  | PAnd (a, b) -> PAnd (coerce_prop_sorts a, coerce_prop_sorts b)
  | POr (a, b) -> POr (coerce_prop_sorts a, coerce_prop_sorts b)
  | PImp (a, b) -> PImp (coerce_prop_sorts a, coerce_prop_sorts b)
  | PForall (x, s, q) -> PForall (x, s, coerce_prop_sorts q)
  | PExists (x, s, q) -> PExists (x, s, coerce_prop_sorts q)
  | PIn (a, b) when sort_of b = Sort.Set -> PIn (a, b)
  | p -> p

(* ------------------------------------------------------------------ *)
(* Types                                                               *)
(* ------------------------------------------------------------------ *)

let int_type_of_name (s : string) : Int_type.t =
  match Int_type.by_name s with
  | Some it -> it
  | None -> fail "unknown integer type %s" s

(** Collect tokens up to the matching '>' (for int<…> names that contain
    spaces, e.g. int<unsigned long>). *)
let parse_angle_name st : string =
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | Some (P ">") -> advance st
    | Some (I x) ->
        advance st;
        if Buffer.length buf > 0 then Buffer.add_char buf ' ';
        Buffer.add_string buf x;
        go ()
    | _ -> fail "expected integer type name"
  in
  go ();
  Buffer.contents buf

let rec parse_type st : rtype =
  (* refinement prefix: TERM '@' base  or  '{' PROP '}' '@' base *)
  let snap = save st in
  match
    let refn =
      match peek st with
      | Some (P "{") ->
          advance st;
          let p = parse_prop st in
          expect_p st "}";
          `Prop p
      | _ -> `Term (parse_term st)
    in
    if eat_p st "@" then Some refn else None
  with
  | Some refn -> parse_base_type st ~refn:(Some refn)
  | None | (exception Spec_error _) ->
      restore st snap;
      parse_base_type st ~refn:None

and parse_base_type st ~refn : rtype =
  match peek st with
  | Some (I "int") ->
      advance st;
      expect_p st "<";
      let it = int_type_of_name (parse_angle_name st) in
      (match refn with
      | Some (`Term t) -> TInt (it, t)
      | Some (`Prop _) -> fail "int refinement must be a term"
      | None -> t_int_ex it)
  | Some (I "bool") ->
      advance st;
      let it =
        if eat_p st "<" then int_type_of_name (parse_angle_name st)
        else Int_type.bool_it
      in
      (match refn with
      | Some (`Prop p) -> TBool (it, p)
      | Some (`Term (TProp p)) -> TBool (it, p)
      | Some (`Term t) -> TBool (it, PIsTrue t)
      | None -> TExists ("b", Sort.Bool, fun b -> TBool (it, PIsTrue b)))
  | Some (I "null") ->
      advance st;
      TNull
  | Some (I "ptr") ->
      advance st;
      (* a bare pointer value, no ownership: [l @ ptr] or unrefined *)
      (match refn with
      | Some (`Term l) -> TPtrV l
      | Some (`Prop _) -> fail "ptr refinement must be a location"
      | None -> TExists ("l", Sort.Loc, fun l -> TPtrV l))
  | Some (P "&") ->
      advance st;
      (match peek st with
      | Some (I "own") ->
          advance st;
          expect_p st "<";
          let t = parse_type st in
          expect_p st ">";
          let l =
            match refn with
            | Some (`Term l) -> Some l
            | Some (`Prop _) -> fail "&own refinement must be a location"
            | None -> None
          in
          TOwn (l, t)
      | _ -> fail "expected 'own' after '&'")
  | Some (I "uninit") ->
      advance st;
      expect_p st "<";
      let n = parse_term st in
      expect_p st ">";
      TUninit n
  | Some (I "optional") ->
      advance st;
      expect_p st "<";
      let t1 = parse_type st in
      expect_p st ",";
      let t2 = parse_type st in
      expect_p st ">";
      let phi =
        match refn with
        | Some (`Prop p) -> p
        | Some (`Term (TProp p)) -> p
        | Some (`Term t) -> PIsTrue t
        | None -> fail "optional requires a refinement"
      in
      TOptional (coerce_prop_sorts phi, t1, t2)
  | Some (I "wand") ->
      advance st;
      expect_p st "<";
      expect_p st "{";
      let l = parse_term st in
      expect_p st ":";
      let hole_ty = parse_type st in
      expect_p st "}";
      expect_p st ",";
      let out = parse_type st in
      expect_p st ">";
      if refn <> None then fail "wand types are not refined";
      TWand (LocTy (l, hole_ty), out)
  | Some (I "array") ->
      advance st;
      expect_p st "<";
      (match peek st with
      | Some (I "int") -> (
          advance st;
          expect_p st "<";
          let it = int_type_of_name (parse_angle_name st) in
          expect_p st ",";
          let len = parse_term st in
          expect_p st ",";
          let xs = parse_term st in
          expect_p st ">";
          ignore refn;
          TArrayInt (it, len, xs))
      | _ -> fail "array<int<it>, len, cells> expected")
  | Some (I "fnptr") ->
      advance st;
      expect_p st "<";
      let f = expect_id st in
      expect_p st ">";
      (match List.assoc_opt f st.env.fn_specs with
      | Some spec -> TFnPtr spec
      | None -> fail "fnptr<%s>: unknown function" f)
  | Some (I "padded") ->
      advance st;
      expect_p st "<";
      let t = parse_type st in
      expect_p st ",";
      let n = parse_term st in
      expect_p st ">";
      TPadded (t, n)
  | Some (I "__structbody") ->
      advance st;
      TNamed ("__structbody", [])
  | Some (I name) -> (
      advance st;
      (* a named (user-defined) type; the refinement becomes the last
         argument *)
      match Rc_refinedc.Rtype.find_type_def st.env.tenv name with
      | None -> fail "unknown type %s" name
      | Some td ->
          let sort_of_last =
            match List.rev td.td_params with
            | (_, s) :: _ -> s
            | [] -> Sort.Int
          in
          let args =
            match refn with
            | Some (`Term t) -> [ coerce_sort sort_of_last t ]
            | Some (`Prop p) -> [ TProp p ]
            | None -> fail "type %s requires a refinement" name
          in
          TNamed (name, args))
  | _ -> fail "expected a type"

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

let with_state env s f =
  let st = { toks = tokenize s; env } in
  let r = f st in
  (match st.toks with
  | [] -> ()
  | _ -> fail "trailing tokens in specification %S" s);
  r

let term ~env s = with_state env s parse_term
let prop ~env s = with_state env s (fun st -> coerce_prop_sorts (parse_prop st))
let rtype ~env s = with_state env s parse_type
let binder = parse_binder

(** rc::requires / rc::ensures items: "{prop}" or "own LOC : TYPE". *)
let hres_item ~env (s : string) : hres =
  let st = { toks = tokenize s; env } in
  match peek st with
  | Some (I "own") ->
      advance st;
      let l = parse_term st in
      expect_p st ":";
      let t = parse_type st in
      (match st.toks with [] -> () | _ -> fail "trailing tokens in %S" s);
      HAtom (LocTy (l, t))
  | _ -> (
      match with_state env s (fun st ->
          match peek st with
          | Some (P "{") ->
              advance st;
              let p = parse_prop st in
              expect_p st "}";
              p
          | _ -> parse_prop st)
      with
      | p -> HProp (coerce_prop_sorts p))

(** rc::tactics("all: multiset_solver.") → solver names *)
let tactics_item (s : string) : string list =
  let s = String.trim s in
  let s =
    match String.index_opt s ':' with
    | Some i when String.length s > 4 && String.sub s 0 3 = "all" ->
        String.sub s (i + 1) (String.length s - i - 1)
    | _ -> s
  in
  String.split_on_char ',' s
  |> List.map (fun x ->
         let x = String.trim x in
         if String.length x > 0 && x.[String.length x - 1] = '.' then
           String.trim (String.sub x 0 (String.length x - 1))
         else x)
  |> List.filter (fun x -> x <> "")

(** rc::inv_vars("x:" "TYPE…"): variable name and its type. *)
let inv_var ~env (s : string) : string * rtype =
  let st = { toks = tokenize s; env } in
  let x = expect_id st in
  expect_p st ":";
  let t = parse_type st in
  (match st.toks with [] -> () | _ -> fail "trailing tokens in %S" s);
  (x, t)

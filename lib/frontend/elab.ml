(** Elaboration of annotated C into Caesium plus RefinedC specifications
    (step (A) of Figure 2): struct declarations become layouts and
    registered RefinedC type definitions; function bodies become
    control-flow graphs (statements almost 1-to-1, expressions with a
    fixed left-to-right order); annotations are parsed into function
    specs and loop invariants with the right logical environment in
    scope. *)

open Cabs
module Syntax = Rc_caesium.Syntax
module Layout = Rc_caesium.Layout
module Int_type = Rc_caesium.Int_type
open Rc_pure
open Rc_refinedc.Rtype
open Rc_refinedc.Lang

exception Elab_error of string * Rc_util.Srcloc.t

let err loc fmt = Fmt.kstr (fun s -> raise (Elab_error (s, loc))) fmt

(** Attach the enclosing declaration's location to errors raised while
    parsing its [rc::] annotations, so spec errors point into the C
    source like every other frontend diagnostic. *)
let with_spec_loc loc f =
  try f ()
  with Specparse.Spec_error msg -> err loc "specification error: %s" msg

(* ------------------------------------------------------------------ *)
(* C types → layouts                                                   *)
(* ------------------------------------------------------------------ *)

type genv = {
  mutable typedefs : (string * ctype) list;
  mutable structs : (string * Layout.struct_layout) list;
  mutable fn_sigs : (string * (ctype list * ctype)) list;
  mutable fn_specs : (string * fn_spec) list;
  tenv : Rc_refinedc.Rtype.tenv;
      (** the session's named-type environment; elaboration registers
          [rc::refined_by] definitions here *)
  mutable field_types : (string * ctype) list;
      (** side table: "struct.field" ↦ surface C type of the field *)
}

let new_genv ~tenv () =
  {
    typedefs = [];
    structs = [];
    fn_sigs = [];
    fn_specs = [];
    tenv;
    field_types = [];
  }

let rec resolve_ctype (g : genv) (t : ctype) : ctype =
  match t with
  | CNamed x -> (
      match List.assoc_opt x g.typedefs with
      | Some t' -> resolve_ctype g t'
      | None -> t)
  | t -> t

let layout_of_ctype ?(loc = Rc_util.Srcloc.dummy) (g : genv) (t : ctype) :
    Layout.t =
  match resolve_ctype g t with
  | CInt name -> (
      match Int_type.by_name name with
      | Some it -> Layout.Int it
      | None -> err loc "unknown integer type %s" name)
  | CBool -> Layout.Int Int_type.bool_it
  | CVoid -> Layout.Void
  | CFn _ -> Layout.FnPtr
  | CPtr t' -> (
      match resolve_ctype g t' with CFn _ -> Layout.FnPtr | _ -> Layout.Ptr)
  | CStructRef s -> (
      match List.assoc_opt s g.structs with
      | Some sl -> Layout.Struct sl
      | None -> err loc "unknown struct %s" s)
  | CNamed x -> err loc "unknown type name %s" x

let int_type_of_ctype ?(loc = Rc_util.Srcloc.dummy) (g : genv) (t : ctype) :
    Int_type.t option =
  match layout_of_ctype ~loc g t with
  | Layout.Int it -> Some it
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Struct declarations → layouts and RefinedC type definitions         *)
(* ------------------------------------------------------------------ *)

let attr_args name (atts : attr list) : string list =
  List.concat_map
    (fun a -> if a.a_name = "rc::" ^ name then a.a_args else [])
    atts

let attr_joined name (atts : attr list) : string list =
  (* one item per attribute occurrence, its string args joined *)
  List.filter_map
    (fun a ->
      if a.a_name = "rc::" ^ name then Some (String.concat " " a.a_args)
      else None)
    atts

let spec_env (g : genv) vars : Specparse.env =
  { Specparse.vars; structs = g.structs; fn_specs = g.fn_specs;
    tenv = g.tenv }

let elab_struct (g : genv) (sd : struct_decl) : unit =
  with_spec_loc sd.sd_loc @@ fun () ->
  let layout_fields =
    List.map
      (fun fd -> (fd.fd_name, layout_of_ctype ~loc:sd.sd_loc g fd.fd_type))
      sd.sd_fields
  in
  let sl = Layout.mk_struct sd.sd_name layout_fields in
  g.structs <- (sd.sd_name, sl) :: g.structs;
  List.iter
    (fun fd ->
      g.field_types <-
        (sd.sd_name ^ "." ^ fd.fd_name, fd.fd_type) :: g.field_types)
    sd.sd_fields;
  (* RefinedC annotations *)
  let refined_by =
    List.map Specparse.binder (attr_args "refined_by" sd.sd_attrs)
  in
  if
    attr_args "field" (List.concat_map (fun f -> f.fd_attrs) sd.sd_fields)
    = []
  then ()
    (* plain C struct, no refined type *)
  else begin
    let exists_binders =
      List.map Specparse.binder (attr_args "exists" sd.sd_attrs)
    in
    let ptr_type =
      match attr_joined "ptr_type" sd.sd_attrs with
      | [] -> None
      | [ s ] -> (
          match String.index_opt s ':' with
          | Some i ->
              Some
                ( String.trim (String.sub s 0 i),
                  String.trim (String.sub s (i + 1) (String.length s - i - 1))
                )
          | None -> err sd.sd_loc "rc::ptr_type expects \"name: type\"")
      | _ -> err sd.sd_loc "multiple rc::ptr_type annotations"
    in
    let td_name =
      match ptr_type with Some (n, _) -> n | None -> sd.sd_name
    in
    let td_layout =
      match ptr_type with
      | Some _ -> Layout.Ptr
      | None -> Layout.Struct sl
    in
    (* register a stub first so recursive references parse *)
    register_type_def g.tenv
      {
        td_name;
        td_params = refined_by;
        td_layout = Some td_layout;
        td_unfold = (fun _ -> TNull);
      };
    let env_vars = refined_by @ exists_binders in
    let env = spec_env g env_vars in
    let field_tys =
      List.map
        (fun fd ->
          match attr_args "field" fd.fd_attrs with
          | [ s ] -> Specparse.rtype ~env s
          | [] ->
              (* unannotated field: unrefined by its C layout *)
              (match layout_of_ctype ~loc:sd.sd_loc g fd.fd_type with
              | Layout.Int it -> t_int_ex it
              | Layout.Ptr ->
                  TExists ("l", Sort.Loc, fun l -> TPtrV l)
              | l -> TUninit (Rc_pure.Term.Num (Layout.size l)))
          | _ -> err sd.sd_loc "multiple rc::field annotations on %s" fd.fd_name)
        sd.sd_fields
    in
    let constraints =
      List.map (Specparse.prop ~env) (attr_args "constraints" sd.sd_attrs)
    in
    let size_annot =
      match attr_args "size" sd.sd_attrs with
      | [] -> None
      | [ s ] -> Some (Specparse.term ~env s)
      | _ -> err sd.sd_loc "multiple rc::size annotations"
    in
    (* the struct "body" type, as a function of the refinement params and
       with existentials/constraints wrapped around *)
    let body_of (args : Term.term list) : rtype =
      let param_env = List.map2 (fun (x, _) v -> (x, v)) refined_by args in
      let base = TStruct (sl, List.map (subst_rtype param_env) field_tys) in
      let base =
        match size_annot with
        | Some n -> TPadded (base, Term.subst_term param_env n)
        | None -> base
      in
      let base =
        List.fold_right
          (fun c t -> TConstr (t, Term.subst_prop param_env c))
          constraints base
      in
      (* wrap existentials, innermost first *)
      List.fold_right
        (fun (x, s) t ->
          TExists
            ( x,
              s,
              fun v -> subst_rtype [ (x, v) ] t ))
        exists_binders base
    in
    let unfold =
      match ptr_type with
      | None -> body_of
      | Some (_, ty_str) ->
          fun args ->
            let param_env =
              List.map2 (fun (x, _) v -> (x, v)) refined_by args
            in
            (* parse the pointer type with __structbody resolving to the
               struct body *)
            let parsed =
              Specparse.rtype ~env:(spec_env g refined_by) ty_str
            in
            let rec replace t =
              match t with
              | TNamed ("__structbody", _) -> body_of args
              | TOwn (l, t') -> TOwn (l, replace t')
              | TOptional (p, a, b) ->
                  TOptional
                    (Term.subst_prop param_env p, replace a, replace b)
              | TConstr (t', p) ->
                  TConstr (replace t', Term.subst_prop param_env p)
              | TExists (x, s, f) -> TExists (x, s, fun v -> replace (f v))
              | t -> subst_rtype param_env t
            in
            replace parsed
    in
    register_type_def g.tenv
      { td_name; td_params = refined_by; td_layout = Some td_layout;
        td_unfold = unfold }
  end

(* ------------------------------------------------------------------ *)
(* C expression typing (mini checker: layouts and conversions)         *)
(* ------------------------------------------------------------------ *)

type fenv = {
  g : genv;
  vars : (string * ctype) list;  (** params + locals *)
  ret : ctype;
}

let struct_of (fe : fenv) loc (t : ctype) : Layout.struct_layout =
  match resolve_ctype fe.g t with
  | CStructRef s | CPtr (CStructRef s) -> (
      match List.assoc_opt s fe.g.structs with
      | Some sl -> sl
      | None -> err loc "unknown struct %s" s)
  | CPtr (CNamed _ as t') | (CNamed _ as t') -> (
      match resolve_ctype fe.g t' with
      | CStructRef s | CPtr (CStructRef s) -> (
          match List.assoc_opt s fe.g.structs with
          | Some sl -> sl
          | None -> err loc "unknown struct %s" s)
      | _ -> err loc "expected a struct type")
  | _ -> err loc "expected a struct type"

let field_ctype (fe : fenv) loc (t : ctype) (f : string) : ctype =
  let s =
    match resolve_ctype fe.g t with
    | CStructRef s -> s
    | CPtr t' -> (
        match resolve_ctype fe.g t' with
        | CStructRef s -> s
        | _ -> err loc "expected struct pointer")
    | _ -> err loc "expected struct"
  in
  match List.assoc_opt (s ^ "." ^ f) fe.g.field_types with
  | Some t -> t
  | None -> err loc "unknown field %s.%s" s f

let rec ctype_of (fe : fenv) (e : expr) : ctype =
  match e.e with
  | EId x -> (
      match List.assoc_opt x fe.vars with
      | Some t -> t
      | None -> (
          match List.assoc_opt x fe.g.fn_sigs with
          | Some (ps, r) -> CPtr (CFn (ps, r))
          | None -> err e.eloc "unbound variable %s" x))
  | EConst _ -> CInt "int"
  | EBool _ -> CBool
  | ENull -> CPtr CVoid
  | ESizeof _ -> CInt "unsigned long"
  | EUn (UNeg, a) -> ctype_of fe a
  | EUn (UNot, _) -> CInt "int"
  | EUn (UBitNot, a) -> ctype_of fe a
  | EBin ((BLt | BLe | BGt | BGe | BEq | BNe | BAnd | BOr), _, _) ->
      CInt "int"
  | EBin (_, a, b) -> (
      let ta = resolve_ctype fe.g (ctype_of fe a) in
      let tb = resolve_ctype fe.g (ctype_of fe b) in
      match (ta, tb) with
      | CPtr _, _ -> ta
      | _, CPtr _ -> tb
      | _ -> common_int fe e.eloc ta tb)
  | EAssign (l, _) | EAssignOp (_, l, _) -> ctype_of fe l
  | ECall ("atomic_load", [ p ]) -> (
      match resolve_ctype fe.g (ctype_of fe p) with
      | CPtr t -> t
      | _ -> err e.eloc "atomic_load expects a pointer")
  | ECall ("atomic_compare_exchange_strong", _) -> CInt "int"
  | ECall ("atomic_store", _) -> CVoid
  | ECall (f, _) -> (
      match List.assoc_opt f fe.g.fn_sigs with
      | Some (_, ret) -> ret
      | None -> (
          match List.assoc_opt f fe.vars with
          | Some t -> (
              match resolve_ctype fe.g t with
              | CPtr (CFn (_, r)) | CFn (_, r) -> r
              | CPtr t' -> (
                  match resolve_ctype fe.g t' with
                  | CFn (_, r) -> r
                  | _ -> err e.eloc "calling non-function %s" f)
              | _ -> err e.eloc "calling non-function %s" f)
          | None -> err e.eloc "call to unknown function %s" f))
  | EMember (a, f) -> field_ctype fe e.eloc (ctype_of fe a) f
  | EArrow (a, f) -> field_ctype fe e.eloc (ctype_of fe a) f
  | EIndex (a, _) -> (
      match resolve_ctype fe.g (ctype_of fe a) with
      | CPtr t -> t
      | _ -> err e.eloc "indexing a non-pointer")
  | EDeref a -> (
      match resolve_ctype fe.g (ctype_of fe a) with
      | CPtr t -> t
      | _ -> err e.eloc "dereferencing a non-pointer")
  | EAddr a -> CPtr (ctype_of fe a)
  | ECast (t, _) -> t
  | ECond (_, a, _) -> ctype_of fe a

and common_int (fe : fenv) loc (ta : ctype) (tb : ctype) : ctype =
  let ita =
    match int_type_of_ctype fe.g ta with
    | Some it -> it
    | None -> err loc "expected integer operand"
  in
  let itb =
    match int_type_of_ctype fe.g tb with
    | Some it -> it
    | None -> err loc "expected integer operand"
  in
  (* usual arithmetic conversions, simplified: larger size wins; on equal
     size unsigned wins; minimum rank int *)
  let pick =
    if ita.Int_type.size > itb.Int_type.size then ita
    else if itb.Int_type.size > ita.Int_type.size then itb
    else if ita.Int_type.signedness = Int_type.Unsigned then ita
    else itb
  in
  let pick =
    if pick.Int_type.size < 4 then Int_type.i32 else pick
  in
  CInt pick.Int_type.it_name

(* ------------------------------------------------------------------ *)
(* CFG builder                                                         *)
(* ------------------------------------------------------------------ *)

type builder = {
  fe : fenv_mut;
  mutable blocks : (string * Syntax.block) list;
  mutable cur_label : string;
  mutable cur_stmts : Syntax.stmt list;  (** reversed *)
  mutable closed : bool;  (** current block already terminated *)
  mutable locals : (string * Layout.t) list;
  mutable nlab : int;
  mutable stmt_locs : ((string * int) * Rc_util.Srcloc.t) list;
  mutable term_locs : (string * Rc_util.Srcloc.t) list;
  mutable block_descr : (string * string) list;
  mutable invs : (string * loop_inv) list;
  mutable break_targets : string list;
  mutable continue_targets : string list;
  spec_params : (string * Sort.t) list;  (** for loop annotations *)
}

and fenv_mut = { mutable fenv : fenv }

let fresh_label b hint =
  let n = b.nlab in
  b.nlab <- n + 1;
  Printf.sprintf "%s%d" hint n

let emit b ?loc (s : Syntax.stmt) =
  (match loc with
  | Some l ->
      b.stmt_locs <- ((b.cur_label, List.length b.cur_stmts), l) :: b.stmt_locs
  | None -> ());
  b.cur_stmts <- s :: b.cur_stmts

let close_block b ?loc (term : Syntax.terminator) =
  if not b.closed then begin
    (match loc with
    | Some l -> b.term_locs <- (b.cur_label, l) :: b.term_locs
    | None -> ());
    b.blocks <-
      (b.cur_label, { Syntax.stmts = List.rev b.cur_stmts; term }) :: b.blocks;
    b.closed <- true
  end

let start_block b label =
  b.cur_label <- label;
  b.cur_stmts <- [];
  b.closed <- false

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

let it_of fe loc (t : ctype) : Int_type.t =
  match int_type_of_ctype ~loc fe.g t with
  | Some it -> it
  | None -> err loc "expected an integer type"

(** convert an elaborated integer expression between C integer types *)
let conv_to (from_ : Int_type.t) (to_ : Int_type.t) (e : Syntax.expr) :
    Syntax.expr =
  if Int_type.equal from_ to_ then e
  else
    match e with
    | Syntax.IntConst (n, _) when Int_type.in_range to_ n ->
        Syntax.IntConst (n, to_)
    | _ -> Syntax.CastIntInt { from_; to_; arg = e }

let is_fn_name (fe : fenv) x = List.mem_assoc x fe.g.fn_sigs

let rec rv (fe : fenv) (e : expr) : Syntax.expr =
  match e.e with
  | EId x when is_fn_name fe x && not (List.mem_assoc x fe.vars) ->
      Syntax.FnAddr x
  | EId _ | EMember _ | EArrow _ | EIndex _ | EDeref _ ->
      let layout = layout_of_ctype ~loc:e.eloc fe.g (ctype_of fe e) in
      Syntax.Use { atomic = false; layout; arg = lv fe e }
  | EConst n -> Syntax.IntConst (n, Int_type.i32)
  | EBool bv -> Syntax.IntConst ((if bv then 1 else 0), Int_type.bool_it)
  | ENull -> Syntax.NullConst
  | ESizeof t ->
      Syntax.IntConst (Layout.size (layout_of_ctype ~loc:e.eloc fe.g t),
                       Int_type.size_t)
  | EUn (UNeg, a) ->
      let it = it_of fe e.eloc (ctype_of fe e) in
      Syntax.UnOp
        { op = Syntax.NegOp; ot = Syntax.OInt it; arg = rv_as fe a it }
  | EUn (UNot, a) -> (
      match resolve_ctype fe.g (ctype_of fe a) with
      | CPtr _ ->
          Syntax.UnOp { op = Syntax.LogNotOp; ot = Syntax.OPtr; arg = rv fe a }
      | t ->
          let it = it_of fe e.eloc t in
          Syntax.UnOp
            { op = Syntax.LogNotOp; ot = Syntax.OInt it; arg = rv fe a })
  | EUn (UBitNot, a) ->
      let it = it_of fe e.eloc (ctype_of fe e) in
      Syntax.UnOp
        { op = Syntax.BitNotOp; ot = Syntax.OInt it; arg = rv_as fe a it }
  | EBin ((BAnd | BOr), _, _) ->
      err e.eloc "&&/|| are only supported in conditions in this subset"
  | EBin (op, a, b) -> (
      let ta = resolve_ctype fe.g (ctype_of fe a) in
      let tb = resolve_ctype fe.g (ctype_of fe b) in
      match (ta, tb, op) with
      | CPtr elem, _, BAdd | _, CPtr elem, BAdd when not (is_ptr fe tb && is_ptr fe ta) ->
          let pe, ie, itid =
            if is_ptr fe ta then (a, b, it_of fe e.eloc tb)
            else (b, a, it_of fe e.eloc ta)
          in
          Syntax.BinOp
            {
              op = Syntax.PtrPlusOp (layout_of_ctype ~loc:e.eloc fe.g elem);
              ot1 = Syntax.OPtr;
              ot2 = Syntax.OInt itid;
              e1 = rv fe pe;
              e2 = rv fe ie;
            }
      | CPtr elem, _, BSub when not (is_ptr fe tb) ->
          let itid = it_of fe e.eloc tb in
          Syntax.BinOp
            {
              op = Syntax.PtrPlusOp (layout_of_ctype ~loc:e.eloc fe.g elem);
              ot1 = Syntax.OPtr;
              ot2 = Syntax.OInt itid;
              e1 = rv fe a;
              e2 =
                Syntax.UnOp
                  { op = Syntax.NegOp; ot = Syntax.OInt itid; arg = rv fe b };
            }
      | CPtr elem, CPtr _, BSub ->
          Syntax.BinOp
            {
              op = Syntax.PtrDiffOp (layout_of_ctype ~loc:e.eloc fe.g elem);
              ot1 = Syntax.OPtr;
              ot2 = Syntax.OPtr;
              e1 = rv fe a;
              e2 = rv fe b;
            }
      | CPtr _, _, (BEq | BNe | BLt | BLe | BGt | BGe)
      | _, CPtr _, (BEq | BNe | BLt | BLe | BGt | BGe) ->
          Syntax.BinOp
            {
              op = cbinop op;
              ot1 = Syntax.OPtr;
              ot2 = Syntax.OPtr;
              e1 = rv fe a;
              e2 = rv fe b;
            }
      | _ ->
          let common = it_of fe e.eloc (common_int fe e.eloc ta tb) in
          Syntax.BinOp
            {
              op = cbinop op;
              ot1 = Syntax.OInt common;
              ot2 = Syntax.OInt common;
              e1 = rv_as fe a common;
              e2 = rv_as fe b common;
            })
  | EAddr a -> lv fe a
  | ECast (t, a) -> (
      let ta = resolve_ctype fe.g (ctype_of fe a) in
      match (resolve_ctype fe.g t, ta) with
      | CPtr _, CPtr _ -> Syntax.CastPtrPtr (rv fe a)
      | CPtr _, _ when a.e = ENull -> Syntax.NullConst
      | tt, _ ->
          let to_ = it_of fe e.eloc tt in
          let from_ = it_of fe e.eloc ta in
          conv_to from_ to_ (rv fe a))
  | ECall ("atomic_load", [ p ]) -> (
      match resolve_ctype fe.g (ctype_of fe p) with
      | CPtr t ->
          Syntax.Use
            {
              atomic = true;
              layout = layout_of_ctype ~loc:e.eloc fe.g t;
              arg = rv fe p;
            }
      | _ -> err e.eloc "atomic_load expects a pointer")
  | ECall (f, _) ->
      err e.eloc
        "call to %s must be a statement (x = f(...);) in this subset" f
  | EAssign _ | EAssignOp _ ->
      err e.eloc "assignments must be statements in this subset"
  | ECond _ ->
      err e.eloc "the conditional operator is not supported in this subset"

and is_ptr fe t =
  match resolve_ctype fe.g t with CPtr _ -> true | _ -> false

and rv_as fe (a : expr) (target : Int_type.t) : Syntax.expr =
  let ta = resolve_ctype fe.g (ctype_of fe a) in
  conv_to (it_of fe a.eloc ta) target (rv fe a)

and cbinop = function
  | BAdd -> Syntax.AddOp
  | BSub -> Syntax.SubOp
  | BMul -> Syntax.MulOp
  | BDiv -> Syntax.DivOp
  | BMod -> Syntax.ModOp
  | BLt -> Syntax.LtOp
  | BLe -> Syntax.LeOp
  | BGt -> Syntax.GtOp
  | BGe -> Syntax.GeOp
  | BEq -> Syntax.EqOp
  | BNe -> Syntax.NeOp
  | BShl -> Syntax.ShlOp
  | BShr -> Syntax.ShrOp
  | BBitAnd -> Syntax.AndOp
  | BBitOr -> Syntax.OrOp
  | BBitXor -> Syntax.XorOp
  | BAnd | BOr -> invalid_arg "cbinop"

and lv (fe : fenv) (e : expr) : Syntax.expr =
  match e.e with
  | EId x ->
      if List.mem_assoc x fe.vars then Syntax.VarLoc x
      else err e.eloc "unbound variable %s" x
  | EDeref a -> rv fe a
  | EArrow (a, f) ->
      let sl = struct_of fe e.eloc (ctype_of fe a) in
      Syntax.FieldOfs { arg = rv fe a; struct_ = sl; field = f }
  | EMember (a, f) ->
      let sl = struct_of fe e.eloc (ctype_of fe a) in
      Syntax.FieldOfs { arg = lv fe a; struct_ = sl; field = f }
  | EIndex (a, i) -> (
      match resolve_ctype fe.g (ctype_of fe a) with
      | CPtr elem ->
          let iti = it_of fe i.eloc (ctype_of fe i) in
          Syntax.BinOp
            {
              op = Syntax.PtrPlusOp (layout_of_ctype ~loc:e.eloc fe.g elem);
              ot1 = Syntax.OPtr;
              ot2 = Syntax.OInt iti;
              e1 = rv fe a;
              e2 = rv fe i;
            }
      | _ -> err e.eloc "indexing a non-pointer")
  | _ -> err e.eloc "expression is not an lvalue"

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

let loc_descr (kind : string) (l : Rc_util.Srcloc.t) : string =
  Fmt.str "the %s at %a" kind Rc_util.Srcloc.pp l

(** short-circuit condition elaboration *)
let rec elab_cond (b : builder) (e : expr) ~(ltrue : string) ~(lfalse : string)
    (loc : Rc_util.Srcloc.t) : unit =
  let fe = b.fe.fenv in
  match e.e with
  | EUn (UNot, a) -> elab_cond b a ~ltrue:lfalse ~lfalse:ltrue loc
  | EBin (BAnd, x, y) ->
      let lmid = fresh_label b "and" in
      elab_cond b x ~ltrue:lmid ~lfalse loc;
      start_block b lmid;
      elab_cond b y ~ltrue ~lfalse loc
  | EBin (BOr, x, y) ->
      let lmid = fresh_label b "or" in
      elab_cond b x ~ltrue ~lfalse:lmid loc;
      start_block b lmid;
      elab_cond b y ~ltrue ~lfalse loc
  | _ ->
      let ot =
        match resolve_ctype fe.g (ctype_of fe e) with
        | CPtr _ -> Syntax.OPtr
        | t -> Syntax.OInt (it_of fe e.eloc t)
      in
      close_block b ~loc
        (Syntax.CondGoto { ot; cond = rv fe e; if_true = ltrue; if_false = lfalse })

let elab_call (b : builder) loc (dest : expr option) (f : string)
    (args : expr list) : unit =
  let fe = b.fe.fenv in
  let dest_parts () =
    match dest with
    | None -> None
    | Some d ->
        let layout = layout_of_ctype ~loc fe.g (ctype_of fe d) in
        Some (layout, lv fe d)
  in
  match (f, args) with
  | "atomic_store", [ p; v ] -> (
      match resolve_ctype fe.g (ctype_of fe p) with
      | CPtr t ->
          let layout = layout_of_ctype ~loc fe.g t in
          let it = it_of fe loc t in
          emit b ~loc
            (Syntax.Assign
               { atomic = true; layout; lhs = rv fe p; rhs = rv_as fe v it })
      | _ -> err loc "atomic_store expects a pointer")
  | "atomic_load", [ _ ] -> (
      match dest with
      | Some d ->
          let layout = layout_of_ctype ~loc fe.g (ctype_of fe d) in
          emit b ~loc
            (Syntax.Assign
               { atomic = false; layout; lhs = lv fe d;
                 rhs = rv fe { e = ECall (f, args); eloc = loc } })
      | None -> ())
  | "atomic_compare_exchange_strong", [ o; ex; d ] -> (
      match resolve_ctype fe.g (ctype_of fe o) with
      | CPtr t ->
          let layout = layout_of_ctype ~loc fe.g t in
          let it = it_of fe loc t in
          emit b ~loc
            (Syntax.Cas
               {
                 layout;
                 obj = rv fe o;
                 expected = rv fe ex;
                 desired = rv_as fe d it;
                 dest = dest_parts ();
               })
      | _ -> err loc "CAS expects a pointer")
  | _ -> (
      (* ordinary or indirect call *)
      let fn_expr, sig_ =
        if List.mem_assoc f fe.vars then
          (* call through a function-pointer variable *)
          match resolve_ctype fe.g (List.assoc f fe.vars) with
          | CPtr fty | (CFn _ as fty) -> (
              match resolve_ctype fe.g fty with
              | CFn (ps, r) ->
                  ( Syntax.Use
                      { atomic = false; layout = Layout.FnPtr;
                        arg = Syntax.VarLoc f },
                    (ps, r) )
              | _ -> err loc "calling a non-function %s" f)
          | _ -> err loc "calling a non-function %s" f
        else
          match List.assoc_opt f fe.g.fn_sigs with
          | Some s -> (Syntax.FnAddr f, s)
          | None -> err loc "call to unknown function %s" f
      in
      let ps, _ = sig_ in
      if List.length ps <> List.length args then
        err loc "wrong number of arguments to %s" f;
      let cargs =
        List.map2
          (fun pt a ->
            let layout = layout_of_ctype ~loc fe.g pt in
            let e =
              match (resolve_ctype fe.g pt, resolve_ctype fe.g (ctype_of fe a)) with
              | CPtr _, _ -> rv fe a
              | t, _ -> rv_as fe a (it_of fe loc t)
            in
            (layout, e))
          ps args
      in
      emit b ~loc (Syntax.Call { dest = dest_parts (); fn = fn_expr; args = cargs }))

let rec elab_stmt (b : builder) (s : stmt) : unit =
  if b.closed then ()
  else
    let fe () = b.fe.fenv in
    let loc = s.sloc in
    match s.s with
    | SBlock ss -> List.iter (elab_stmt b) ss
    | SDecl (t, x, init) -> (
        let layout = layout_of_ctype ~loc (fe ()).g t in
        b.locals <- (x, layout) :: b.locals;
        b.fe.fenv <- { (fe ()) with vars = (x, t) :: (fe ()).vars };
        match init with
        | None -> ()
        | Some { e = ECall (f, args); eloc } ->
            elab_call b eloc (Some { e = EId x; eloc }) f args
        | Some e ->
            let fe = fe () in
            let rhs =
              match resolve_ctype fe.g t with
              | CPtr _ | CFn _ -> rv fe e
              | tt -> rv_as fe e (it_of fe loc tt)
            in
            emit b ~loc
              (Syntax.Assign { atomic = false; layout; lhs = Syntax.VarLoc x; rhs }))
    | SExpr { e = EAssign (d, { e = ECall (f, args); eloc; _ }); _ } ->
        elab_call b eloc (Some d) f args
    | SExpr { e = ECall (f, args); eloc; _ } -> elab_call b eloc None f args
    | SExpr { e = EAssign (d, e); _ } ->
        let fe = fe () in
        let layout = layout_of_ctype ~loc fe.g (ctype_of fe d) in
        let rhs =
          match resolve_ctype fe.g (ctype_of fe d) with
          | CPtr _ -> rv fe e
          | t -> rv_as fe e (it_of fe loc t)
        in
        emit b ~loc (Syntax.Assign { atomic = false; layout; lhs = lv fe d; rhs })
    | SExpr { e = EAssignOp (op, d, e); eloc } ->
        let full =
          { e = EAssign (d, { e = EBin (op, d, e); eloc }); eloc }
        in
        elab_stmt b { s = SExpr full; sloc = loc }
    | SExpr e ->
        let fe = fe () in
        emit b ~loc (Syntax.ExprStmt (rv fe e))
    | SReturn (Some ({ e = ECall (f, args); eloc } as _call))
      when f <> "atomic_load" ->
        (* return f(...): introduce a temporary for the call result *)
        let tmp = Printf.sprintf "__ret%d" b.nlab in
        b.nlab <- b.nlab + 1;
        let fe0 = fe () in
        let rett =
          ctype_of fe0 { e = ECall (f, args); eloc }
        in
        let layout = layout_of_ctype ~loc fe0.g rett in
        b.locals <- (tmp, layout) :: b.locals;
        b.fe.fenv <- { fe0 with vars = (tmp, rett) :: fe0.vars };
        elab_call b eloc (Some { e = EId tmp; eloc }) f args;
        elab_stmt b { s = SReturn (Some { e = EId tmp; eloc }); sloc = loc }
    | SReturn eo -> (
        let fe = fe () in
        match eo with
        | None -> close_block b ~loc (Syntax.Return None)
        | Some e ->
            let rhs =
              match resolve_ctype fe.g fe.ret with
              | CPtr _ -> rv fe e
              | CVoid -> err loc "returning a value from a void function"
              | t -> rv_as fe e (it_of fe loc t)
            in
            close_block b ~loc (Syntax.Return (Some rhs)))
    | SBreak -> (
        match b.break_targets with
        | t :: _ -> close_block b ~loc (Syntax.Goto t)
        | [] -> err loc "break outside a loop")
    | SContinue -> (
        match b.continue_targets with
        | t :: _ -> close_block b ~loc (Syntax.Goto t)
        | [] -> err loc "continue outside a loop")
    | SIf (c, then_, else_) ->
        let lt = fresh_label b "then" in
        let lf = fresh_label b "else" in
        let lj = fresh_label b "join" in
        b.block_descr <-
          (lt, loc_descr "then-branch of the if" loc)
          :: (lf, loc_descr "else-branch of the if" loc)
          :: b.block_descr;
        elab_cond b c ~ltrue:lt ~lfalse:lf loc;
        let saved_vars = (fe ()).vars in
        start_block b lt;
        List.iter (elab_stmt b) then_;
        close_block b (Syntax.Goto lj);
        b.fe.fenv <- { (fe ()) with vars = saved_vars };
        start_block b lf;
        List.iter (elab_stmt b) else_;
        close_block b (Syntax.Goto lj);
        b.fe.fenv <- { (fe ()) with vars = saved_vars };
        start_block b lj
    | SSwitch (scrut, cases, default) ->
        let fe0 = fe () in
        let it = it_of fe0 loc (ctype_of fe0 scrut) in
        let sv = rv_as fe0 scrut it in
        let lexit = fresh_label b "swexit" in
        let case_lbls = List.map (fun (n, _) -> (n, fresh_label b "case")) cases in
        let ldefault = fresh_label b "default" in
        List.iter
          (fun (n, l) ->
            b.block_descr <-
              (l, loc_descr (Printf.sprintf "case %d of the switch" n) loc)
              :: b.block_descr)
          case_lbls;
        b.block_descr <-
          (ldefault, loc_descr "default case of the switch" loc)
          :: b.block_descr;
        close_block b ~loc
          (Syntax.Switch
             {
               ot = Syntax.OInt it;
               scrut = sv;
               cases = case_lbls;
               default = ldefault;
             });
        b.break_targets <- lexit :: b.break_targets;
        (* C fallthrough: each case falls into the next, then default *)
        let rec emit_cases = function
          | [] -> ()
          | ((_, lbl), body) :: rest ->
              start_block b lbl;
              List.iter (elab_stmt b) body;
              let next =
                match rest with ((_, l), _) :: _ -> l | [] -> ldefault
              in
              close_block b (Syntax.Goto next);
              emit_cases rest
        in
        emit_cases (List.combine case_lbls (List.map snd cases));
        start_block b ldefault;
        List.iter (elab_stmt b) default;
        close_block b (Syntax.Goto lexit);
        b.break_targets <- List.tl b.break_targets;
        start_block b lexit
    | SWhile (atts, c, body) -> elab_loop b loc atts None (Some c) None body
    | SFor (atts, init, cond, step, body) ->
        (match init with Some s -> elab_stmt b s | None -> ());
        elab_loop b loc atts None cond
          (Option.map (fun e -> { s = SExpr e; sloc = loc }) step)
          body

and elab_loop b loc atts _ cond step body =
  let lhead = fresh_label b "loop" in
  let lbody = fresh_label b "body" in
  let lexit = fresh_label b "exit" in
  b.block_descr <-
    (lbody, loc_descr "body of the loop" loc)
    :: (lexit, loc_descr "exit of the loop" loc)
    :: b.block_descr;
  (* loop invariant annotations *)
  with_spec_loc loc (fun () ->
   let exists_binders =
     List.map Specparse.binder (attr_args "exists" atts)
   in
   let env_vars = b.spec_params @ exists_binders in
   let env = spec_env b.fe.fenv.g env_vars in
   let inv_vars =
     List.map (Specparse.inv_var ~env) (attr_joined "inv_vars" atts)
   in
   let constraints =
     List.map (Specparse.prop ~env) (attr_args "constraints" atts)
   in
   if inv_vars <> [] || exists_binders <> [] || constraints <> [] then
     b.invs <-
       (lhead, { li_exists = exists_binders; li_vars = inv_vars;
                 li_constraints = constraints })
       :: b.invs);
  close_block b (Syntax.Goto lhead);
  start_block b lhead;
  (match cond with
  | Some c -> elab_cond b c ~ltrue:lbody ~lfalse:lexit loc
  | None -> close_block b (Syntax.Goto lbody));
  start_block b lbody;
  b.break_targets <- lexit :: b.break_targets;
  (* continue re-runs the step, then jumps to the head *)
  let lcont =
    match step with
    | None -> lhead
    | Some _ -> fresh_label b "step"
  in
  b.continue_targets <- lcont :: b.continue_targets;
  List.iter (elab_stmt b) body;
  close_block b (Syntax.Goto lcont);
  b.break_targets <- List.tl b.break_targets;
  b.continue_targets <- List.tl b.continue_targets;
  (match step with
  | None -> ()
  | Some s ->
      start_block b lcont;
      elab_stmt b s;
      close_block b (Syntax.Goto lhead));
  start_block b lexit

(* ------------------------------------------------------------------ *)
(* Functions                                                           *)
(* ------------------------------------------------------------------ *)

let parse_fn_spec (g : genv) (fd : fun_decl) : fn_spec option =
  if attr_args "args" fd.fn_attrs = [] && attr_args "returns" fd.fn_attrs = []
  then None
  else
    with_spec_loc fd.fn_loc @@ fun () ->
    let params = List.map Specparse.binder (attr_args "parameters" fd.fn_attrs) in
    let env = spec_env g params in
    let args = List.map (Specparse.rtype ~env) (attr_args "args" fd.fn_attrs) in
    let pre = List.map (Specparse.hres_item ~env) (attr_args "requires" fd.fn_attrs) in
    let exists = List.map Specparse.binder (attr_args "exists" fd.fn_attrs) in
    let env_post = spec_env g (params @ exists) in
    let ret =
      match attr_joined "returns" fd.fn_attrs with
      | [] -> t_void
      | [ s ] -> Specparse.rtype ~env:env_post s
      | _ -> raise (Specparse.Spec_error "multiple rc::returns")
    in
    let post =
      List.map (Specparse.hres_item ~env:env_post) (attr_args "ensures" fd.fn_attrs)
    in
    let tactics =
      List.concat_map Specparse.tactics_item (attr_args "tactics" fd.fn_attrs)
    in
    Some
      {
        fs_name = fd.fn_name;
        fs_params = params;
        fs_args = args;
        fs_pre = pre;
        fs_exists = exists;
        fs_ret = ret;
        fs_post = post;
        fs_tactics = tactics;
        fs_loc = Some fd.fn_loc;
      }

let elab_fun (g : genv) (fd : fun_decl) (body : Cabs.stmt list) :
    Syntax.func * fn_meta * (string * loop_inv) list =
  let fe =
    {
      g;
      vars = List.map (fun (t, x) -> (x, t)) fd.fn_params;
      ret = fd.fn_ret;
    }
  in
  let spec_params =
    match List.assoc_opt fd.fn_name g.fn_specs with
    | Some sp -> sp.fs_params
    | None -> []
  in
  let b =
    {
      fe = { fenv = fe };
      blocks = [];
      cur_label = "entry";
      cur_stmts = [];
      closed = false;
      locals = [];
      nlab = 0;
      stmt_locs = [];
      term_locs = [];
      block_descr = [];
      invs = [];
      break_targets = [];
      continue_targets = [];
      spec_params;
    }
  in
  List.iter (elab_stmt b) body;
  (* implicit return at the end of void functions *)
  (match resolve_ctype g fd.fn_ret with
  | CVoid -> close_block b (Syntax.Return None)
  | _ -> close_block b Syntax.Unreachable);
  let func =
    {
      Syntax.fname = fd.fn_name;
      args =
        List.map
          (fun (t, x) -> (x, layout_of_ctype ~loc:fd.fn_loc g t))
          fd.fn_params;
      locals = List.rev b.locals;
      ret_layout = layout_of_ctype ~loc:fd.fn_loc g fd.fn_ret;
      blocks = List.rev b.blocks;
      entry = "entry";
    }
  in
  let meta =
    {
      fm_stmt_locs = b.stmt_locs;
      fm_term_locs = b.term_locs;
      fm_block_descr = b.block_descr;
    }
  in
  (func, meta, b.invs)

(* ------------------------------------------------------------------ *)
(* Whole files                                                         *)
(* ------------------------------------------------------------------ *)

type elaborated = {
  program : Syntax.program;
  to_check : Rc_refinedc.Typecheck.fn_to_check list;
  metas : (string * Rc_refinedc.Lang.fn_meta) list;
      (** source metadata for {e every} function with a body, specified
          or not — lint passes that analyze the whole unit (the
          concurrency passes) use this to attach real locations to
          diagnostics in unspecified functions *)
  genv : genv;
  warnings : Rc_util.Diagnostic.t list;
}

let elab_file ~(tenv : Rc_refinedc.Rtype.tenv) (file : Cabs.file) :
    elaborated =
  let g = new_genv ~tenv () in
  let warnings = ref [] in
  (* pass 1: structs, typedefs, function signatures and specs *)
  List.iter
    (fun d ->
      match d with
      | DStruct sd ->
          (match sd.sd_typedef with
          | Some (is_ptr, name) ->
              g.typedefs <-
                ( name,
                  if is_ptr then CPtr (CStructRef sd.sd_name)
                  else CStructRef sd.sd_name )
                :: g.typedefs
          | None -> ());
          elab_struct g sd
      | DTypedef (x, t) -> g.typedefs <- (x, t) :: g.typedefs
      | DFun fd ->
          g.fn_sigs <-
            (fd.fn_name, (List.map fst fd.fn_params, fd.fn_ret)) :: g.fn_sigs)
    file.decls;
  List.iter
    (fun d ->
      match d with
      | DFun fd -> (
          match parse_fn_spec g fd with
          | Some sp -> g.fn_specs <- (fd.fn_name, sp) :: g.fn_specs
          | None ->
              if fd.fn_body <> None then
                warnings :=
                  Rc_util.Diagnostic.make ~severity:Rc_util.Diagnostic.Note
                    ~code:"RC-L014" ~loc:fd.fn_loc
                    ~hint:"add rc:: annotations to bring it under verification"
                    (Fmt.str
                       "function %s has no specification and is not verified"
                       fd.fn_name)
                  :: !warnings)
      | _ -> ())
    file.decls;
  (* pass 2: bodies *)
  let funcs = ref [] in
  let to_check = ref [] in
  let metas = ref [] in
  List.iter
    (fun d ->
      match d with
      | DFun ({ fn_body = Some body; _ } as fd) -> (
          let func, meta, invs = elab_fun g fd body in
          funcs := (fd.fn_name, func) :: !funcs;
          metas := (fd.fn_name, meta) :: !metas;
          match List.assoc_opt fd.fn_name g.fn_specs with
          | Some spec ->
              to_check :=
                { Rc_refinedc.Typecheck.func; spec; invs; meta } :: !to_check
          | None -> ())
      | _ -> ())
    file.decls;
  {
    program =
      {
        Syntax.funcs = List.rev !funcs;
        globals = [];
        structs = g.structs;
      };
    to_check = List.rev !to_check;
    metas = List.rev !metas;
    genv = g;
    warnings = !warnings;
  }

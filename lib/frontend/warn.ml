(** The frontend's over-approximating analyses (§3):

    "the RefinedC front end performs an over-approximating analysis that
    emits warnings if an expression may be non-deterministic, or if the
    address of a block-scoped variable could escape."

    Caesium fixes a left-to-right evaluation order, and our elaboration
    makes calls and assignments statements, so the residual
    non-determinism risk is a statement that both calls a function and
    reads memory the callee could touch — we warn on multiple calls in
    one statement position (which the elaborator in fact rejects) and,
    mainly, on escaping addresses of locals: all Caesium locals are
    function-scoped, so returning or storing `&local` would outlive the
    C block scope the programmer may have intended. *)

open Cabs

let rec expr_has_addr_of_local (locals : string list) (e : expr) : string option
    =
  match e.e with
  | EAddr { e = EId x; _ } when List.mem x locals -> Some x
  | EAddr a | EUn (_, a) | EDeref a | ECast (_, a) ->
      expr_has_addr_of_local locals a
  | EBin (_, a, b) | EIndex (a, b) | EAssign (a, b) | EAssignOp (_, a, b) -> (
      match expr_has_addr_of_local locals a with
      | Some x -> Some x
      | None -> expr_has_addr_of_local locals b)
  | EMember (a, _) | EArrow (a, _) -> expr_has_addr_of_local locals a
  | ECall (_, args) -> List.find_map (expr_has_addr_of_local locals) args
  | ECond (a, b, c) ->
      List.find_map (expr_has_addr_of_local locals) [ a; b; c ]
  | _ -> None

let rec count_calls (e : expr) : int =
  match e.e with
  | ECall (_, args) -> 1 + Rc_util.Xlist.sum (List.map count_calls args)
  | EUn (_, a) | EDeref a | EAddr a | ECast (_, a) | EMember (a, _)
  | EArrow (a, _) ->
      count_calls a
  | EBin (_, a, b) | EIndex (a, b) | EAssign (a, b) | EAssignOp (_, a, b) ->
      count_calls a + count_calls b
  | ECond (a, b, c) -> count_calls a + count_calls b + count_calls c
  | _ -> 0

(** [check_fun fd] returns warnings for one function body. *)
let check_fun (fd : fun_decl) : Rc_util.Diagnostic.t list =
  match fd.fn_body with
  | None -> []
  | Some body ->
      let warnings = ref [] in
      let warn ?hint loc code fmt =
        Fmt.kstr
          (fun s ->
            warnings :=
              Rc_util.Diagnostic.make ?hint ~code ~loc
                (Fmt.str "in %s: %s" fd.fn_name s)
              :: !warnings)
          fmt
      in
      let rec stmt locals (s : stmt) : string list =
        match s.s with
        | SDecl (_, x, init) ->
            (match init with
            | Some e -> check_expr locals s.sloc ~escaping:false e
            | None -> ());
            x :: locals
        | SExpr ({ e = EAssign (lhs, rhs); _ } as e) ->
            (* storing &local through a pointer lets it escape *)
            let escaping =
              match lhs.e with
              | EDeref _ | EArrow _ | EIndex _ -> true
              | _ -> false
            in
            check_expr locals s.sloc ~escaping:false lhs;
            check_expr locals s.sloc ~escaping rhs;
            ignore e;
            locals
        | SExpr e ->
            check_expr locals s.sloc ~escaping:false e;
            locals
        | SReturn (Some e) ->
            check_expr locals s.sloc ~escaping:true e;
            locals
        | SReturn None -> locals
        | SIf (c, t, f) ->
            check_expr locals s.sloc ~escaping:false c;
            ignore (List.fold_left stmt locals t);
            ignore (List.fold_left stmt locals f);
            locals
        | SWhile (_, c, b) ->
            check_expr locals s.sloc ~escaping:false c;
            ignore (List.fold_left stmt locals b);
            locals
        | SFor (_, init, c, st, b) ->
            let locals' =
              match init with Some i -> stmt locals i | None -> locals
            in
            Option.iter (check_expr locals' s.sloc ~escaping:false) c;
            Option.iter (check_expr locals' s.sloc ~escaping:false) st;
            ignore (List.fold_left stmt locals' b);
            locals
        | SBlock b ->
            ignore (List.fold_left stmt locals b);
            locals
        | SSwitch (scrut, cases, default) ->
            check_expr locals s.sloc ~escaping:false scrut;
            List.iter
              (fun (_, body) -> ignore (List.fold_left stmt locals body))
              cases;
            ignore (List.fold_left stmt locals default);
            locals
        | SBreak | SContinue -> locals
      and check_expr locals loc ~escaping e =
        if count_calls e > 1 then
          warn loc "RC-W001"
            ~hint:"split the statement so each call is sequenced explicitly"
            "expression performs several calls; evaluation order is fixed \
             left-to-right by Caesium (the ISO order would be unspecified)";
        if escaping then
          match expr_has_addr_of_local locals e with
          | Some x ->
              warn loc "RC-W002"
                "the address of block-scoped variable %s may escape (all \
                 Caesium locals are function-scoped)"
                x
          | None -> ()
      in
      ignore (List.fold_left stmt [] body);
      List.rev !warnings

let check_file (file : Cabs.file) : Rc_util.Diagnostic.t list =
  List.concat_map
    (function DFun fd -> check_fun fd | _ -> [])
    file.decls

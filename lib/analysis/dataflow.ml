(** A generic forward worklist dataflow framework over {!Cfg.t}.

    Instantiate {!Forward} with a (finite-height) domain — a carrier
    with equality and a meet — and supply a per-block transfer function;
    {!Forward.run} computes the greatest fixpoint of block *input*
    states by chaotic iteration.  Unvisited blocks are implicitly ⊤, so
    the meet is only ever taken over edges actually propagated, which is
    what a must-analysis (e.g. definite initialization) needs: a block's
    input is the meet over its *reachable* predecessors. *)

module Syntax = Rc_caesium.Syntax

module type DOMAIN = sig
  type state

  val equal : state -> state -> bool

  val meet : state -> state -> state
  (** combine the states flowing into a join point; must be a lower
      bound of its arguments for termination *)
end

module Forward (D : DOMAIN) = struct
  (** [run_edges cfg ~entry ~transfer] is the general engine:
      [transfer label block st] returns a {e per-successor-edge}
      out-state function, so a block whose terminator branches on a fact
      established inside the block (the CAS-acquire idiom: out-state
      holds the lock only on the success edge) can propagate different
      states along its two edges.  Returns the fixpoint input state of
      every reachable block. *)
  let run_edges (cfg : Cfg.t) ~(entry : D.state)
      ~(transfer : string -> Syntax.block -> D.state -> string -> D.state) :
      (string * D.state) list =
    let inputs : (string, D.state) Hashtbl.t = Hashtbl.create 16 in
    Hashtbl.replace inputs cfg.Cfg.func.Syntax.entry entry;
    let queued = Hashtbl.create 16 in
    let q = Queue.create () in
    let push l =
      if not (Hashtbl.mem queued l) then begin
        Hashtbl.add queued l ();
        Queue.add l q
      end
    in
    push cfg.Cfg.func.Syntax.entry;
    while not (Queue.is_empty q) do
      let l = Queue.pop q in
      Hashtbl.remove queued l;
      match (Cfg.block cfg l, Hashtbl.find_opt inputs l) with
      | Some b, Some input ->
          let out_on = transfer l b input in
          List.iter
            (fun s ->
              let out = out_on s in
              let changed =
                match Hashtbl.find_opt inputs s with
                | None ->
                    Hashtbl.replace inputs s out;
                    true
                | Some old ->
                    let m = D.meet old out in
                    if D.equal m old then false
                    else begin
                      Hashtbl.replace inputs s m;
                      true
                    end
              in
              if changed then push s)
            (Cfg.succs_of cfg l)
      | _ -> ()
    done;
    (* report in reverse postorder for deterministic consumption *)
    List.filter_map
      (fun l ->
        match Hashtbl.find_opt inputs l with
        | Some st -> Some (l, st)
        | None -> None)
      cfg.Cfg.reachable

  (** [run cfg ~entry ~transfer] returns the fixpoint input state of
      every reachable block.  [transfer label block st] is the state at
      the end of [block] given state [st] at its start; it is re-run as
      inputs shrink, so it must be a pure function of its arguments. *)
  let run (cfg : Cfg.t) ~(entry : D.state)
      ~(transfer : string -> Syntax.block -> D.state -> D.state) :
      (string * D.state) list =
    run_edges cfg ~entry ~transfer:(fun label block st ->
        let out = transfer label block st in
        fun _succ -> out)
end

(** The workhorse instance: sets of variable names under intersection —
    "definitely X on every path" facts. *)
module StringSet = Set.Make (String)

module Must_vars = Forward (struct
  type state = StringSet.t

  let equal = StringSet.equal
  let meet = StringSet.inter
end)

(** Eraser-style lockset analysis with interprocedural lock summaries.

    The intraprocedural core is a forward must-analysis over
    {!Dataflow.Forward}: the state is the set of locks {e definitely}
    held, the meet is intersection, and the acquire point is the
    CAS-success {e edge} — a [Cas] with nonzero desired constant
    ({!Rc_caesium.Concur.classify_stmt}) records its boolean
    destination, and the block's terminator branch on that boolean adds
    the lock only along the success edge (this is why the framework
    grew {!Dataflow.Forward.run_edges}).  Releases are atomic stores of
    0; a parallel may-analysis (union meet) over the same transfer
    feeds the release-balance check.

    Interprocedurally, functions are summarized bottom-up in
    {!Rc_refinedc.Depgraph.topo_order} (callees before callers; bodies
    not in the specified set are appended in a callee-first extension
    of the same order, so unannotated helpers still summarize).  A
    summary records the locks a call acquires and releases in
    caller-substitutable terms — paths rooted at an argument
    dereference are rewritten through the actual argument expression at
    each call site, so [locked_reset] calling [spin_lock(l)] knows it
    holds [l->locked] afterwards.  Functions in dependency cycles fall
    back to a no-op summary (conservative: fewer locks believed held
    means more may-race reports, never fewer).

    Everything reported here is an over-approximation of the dynamic
    vector-clock monitor: any access the monitor can flag as a race in
    some schedule is an access with an empty static lockset (the
    differential harness in [test/test_race.ml] pins this). *)

module Syntax = Rc_caesium.Syntax
module Concur = Rc_caesium.Concur
module SSet = Dataflow.StringSet
module Srcloc = Rc_util.Srcloc

(* ---- reported facts ----------------------------------------------- *)

(** One shared, non-atomic memory access and the locks protecting it. *)
type access = {
  a_fname : string;
  a_path : Escape.path;
  a_write : bool;
  a_loc : Srcloc.t;
  a_locks : SSet.t;  (** rendered lock paths definitely held *)
}

(** One observed acquisition order: [o_after] acquired while [o_before]
    was held. *)
type order_edge = {
  o_fname : string;
  o_before : string;
  o_after : string;
  o_loc : Srcloc.t;
}

(** Caller-visible effect of calling a function. *)
type summary = {
  s_acquires : Escape.path list;  (** held on every return, not on entry *)
  s_releases : Escape.path list;  (** released without having acquired *)
  s_order : (Escape.path * Escape.path) list;
      (** internal acquisition order among substitutable locks *)
}

let no_summary = { s_acquires = []; s_releases = []; s_order = [] }

type func_report = {
  f_name : string;
  f_accesses : access list;
  f_unreleased : (string * Srcloc.t) list;
      (** lock held on some but not all paths to return, at its
          acquisition site *)
  f_order : order_edge list;
}

(* ---- helpers ------------------------------------------------------ *)

let render = Escape.to_string

(** Only paths a caller can re-express survive substitution: an
    argument's pointee, or a global. *)
let substitutable (p : Escape.path) : bool =
  match (p.Escape.root, p.Escape.steps) with
  | Escape.Rglobal _, _ -> true
  | Escape.Rarg _, Escape.Deref :: _ -> true
  | _ -> false

(** Rewrite a callee path into the caller's frame through the actual
    argument expressions ([formal name -> actual expr]). *)
let subst_path (caller : Escape.t) (actuals : (string * Syntax.expr) list)
    (p : Escape.path) : Escape.path option =
  match p.Escape.root with
  | Escape.Rglobal _ -> Some p
  | Escape.Rlocal _ -> None
  | Escape.Rarg a -> (
      match (List.assoc_opt a actuals, p.Escape.steps) with
      | Some e, Escape.Deref :: rest ->
          Option.map
            (fun (q : Escape.path) ->
              { q with Escape.steps = q.Escape.steps @ rest })
            (Escape.lpath caller.Escape.fr e)
      | _ -> None)

let callee_name ~(slots : SSet.t) (fn : Syntax.expr) : string option =
  match fn with
  | Syntax.FnAddr f -> Some f
  | Syntax.VarLoc x when not (SSet.mem x slots) -> Some x
  | _ -> None

(* Every load performed while evaluating an expression: the address
   operand of each [Use], with its atomicity. *)
let rec expr_loads (e : Syntax.expr) (acc : (Syntax.expr * bool) list) :
    (Syntax.expr * bool) list =
  match e with
  | Syntax.Use { atomic; arg; _ } -> expr_loads arg ((arg, atomic) :: acc)
  | Syntax.FieldOfs { arg; _ }
  | Syntax.UnOp { arg; _ }
  | Syntax.CastIntInt { arg; _ } ->
      expr_loads arg acc
  | Syntax.CastPtrPtr arg -> expr_loads arg acc
  | Syntax.BinOp { e1; e2; _ } -> expr_loads e1 (expr_loads e2 acc)
  | Syntax.IntConst _ | Syntax.NullConst | Syntax.FnAddr _ | Syntax.VarLoc _
    ->
      acc

(** Memory accesses of one statement as (address expr, write?, atomic?),
    evaluation order: operand loads first, then the statement's own
    store.  [Cas] is an atomic read-modify-write of its object and a
    plain read/write of the expected cell. *)
let stmt_accesses (s : Syntax.stmt) : (Syntax.expr * bool * bool) list =
  let loads es =
    List.concat_map
      (fun e ->
        List.rev_map (fun (a, at) -> (a, false, at)) (expr_loads e []))
      es
  in
  match s with
  | Syntax.Assign { atomic; lhs; rhs; _ } ->
      loads [ lhs; rhs ] @ [ (lhs, true, atomic) ]
  | Syntax.Cas { obj; expected; desired; dest; _ } ->
      let dest_e = match dest with Some (_, d) -> [ d ] | None -> [] in
      loads ((obj :: expected :: desired :: dest_e))
      @ [ (obj, true, true); (expected, true, false) ]
      @ List.map (fun d -> (d, true, false)) dest_e
  | Syntax.Call { dest; fn; args } ->
      let dest_e = match dest with Some (_, d) -> [ d ] | None -> [] in
      loads ((fn :: List.map snd args) @ dest_e)
      @ List.map (fun d -> (d, true, false)) dest_e
  | Syntax.ExprStmt e -> loads [ e ]
  | Syntax.Free e -> loads [ e ] @ [ (e, true, false) ]
  | Syntax.Skip -> []

let term_exprs (t : Syntax.terminator) : Syntax.expr list =
  match t with
  | Syntax.CondGoto { cond; _ } -> [ cond ]
  | Syntax.Switch { scrut; _ } -> [ scrut ]
  | Syntax.Return (Some e) -> [ e ]
  | Syntax.Goto _ | Syntax.Return None | Syntax.Unreachable -> []

(** Does this terminator condition observe a pending CAS result?
    Returns the lock and whether the success case is the false edge. *)
let cas_branch (pending : (string * Escape.path) list) (cond : Syntax.expr) :
    (Escape.path * bool) option =
  let of_var e =
    match e with
    | Syntax.Use { atomic = false; arg = Syntax.VarLoc x; _ } ->
        List.assoc_opt x pending
    | _ -> None
  in
  match cond with
  | Syntax.UnOp { op = Syntax.LogNotOp; arg; _ } ->
      Option.map (fun l -> (l, true)) (of_var arg)
  | Syntax.BinOp { op = Syntax.NeOp; e1; e2 = Syntax.IntConst (0, _); _ } ->
      Option.map (fun l -> (l, false)) (of_var e1)
  | Syntax.BinOp { op = Syntax.EqOp; e1; e2 = Syntax.IntConst (0, _); _ } ->
      Option.map (fun l -> (l, true)) (of_var e1)
  | _ -> Option.map (fun l -> (l, false)) (of_var cond)

(* ---- the per-function walk ---------------------------------------- *)

(** Events surfaced to the reporting sweep; the dataflow transfer runs
    the same walk with [emit = ignore]. *)
type event =
  | Ev_access of int * Escape.path * bool * SSet.t  (** idx, path, write *)
  | Ev_acquire of int * Escape.path * SSet.t  (** CAS attempt under locks *)
  | Ev_call_order of int * (Escape.path * Escape.path) list * SSet.t
      (** substituted callee acquires/order at a call site *)
  | Ev_ext_release of Escape.path  (** released a lock not held here *)

type fn_env = {
  e_esc : Escape.t;
  e_slots : SSet.t;
  e_paths : (string, Escape.path) Hashtbl.t;  (** rendering -> path *)
  e_funcs : (string * Syntax.func) list;
  e_summaries : (string, summary) Hashtbl.t;
}

let note_path (env : fn_env) (p : Escape.path) : string =
  let r = render p in
  if not (Hashtbl.mem env.e_paths r) then Hashtbl.add env.e_paths r p;
  r

(** Execute a block's statements from lockset [st]; returns the
    out-state before the terminator and the pending CAS results.  The
    walk is shared verbatim between the fixpoint transfer and the
    reporting sweep so the reported locksets are exactly the fixpoint's
    — [emit] is the only difference. *)
let walk_stmts (env : fn_env) ~(emit : event -> unit) (st : SSet.t)
    (stmts : Syntax.stmt list) : SSet.t * (string * Escape.path) list =
  let st = ref st in
  let pending = ref [] in
  List.iteri
    (fun idx s ->
      (* plain shared accesses, under the current lockset *)
      List.iter
        (fun (addr, write, atomic) ->
          if not atomic then
            match Escape.lpath env.e_esc.Escape.fr addr with
            | Some p when Escape.shared_path env.e_esc p ->
                emit (Ev_access (idx, p, write, !st))
            | _ -> ())
        (stmt_accesses s);
      (* lock-discipline effects *)
      match Concur.classify_stmt s with
      | Some (Concur.Acquire { lock; dest }) -> (
          match Escape.lpath env.e_esc.Escape.fr lock with
          | Some p ->
              emit (Ev_acquire (idx, p, !st));
              ignore (note_path env p);
              (match dest with
              | Some x -> pending := (x, p) :: List.remove_assoc x !pending
              | None -> ())
          | None -> ())
      | Some (Concur.Release lhs) -> (
          match Escape.lpath env.e_esc.Escape.fr lhs with
          | Some p ->
              let r = note_path env p in
              if SSet.mem r !st then st := SSet.remove r !st
              else emit (Ev_ext_release p)
          | None -> ())
      | Some (Concur.Atomic_signal _) -> ()
      | None -> (
          match s with
          | Syntax.Call { fn; args; _ } -> (
              match callee_name ~slots:env.e_slots fn with
              | Some f when Hashtbl.mem env.e_summaries f -> (
                  match List.assoc_opt f env.e_funcs with
                  | Some callee
                    when List.length callee.Syntax.args = List.length args ->
                      let sum = Hashtbl.find env.e_summaries f in
                      let actuals =
                        List.map2
                          (fun (a, _) (_, e) -> (a, e))
                          callee.Syntax.args args
                      in
                      let sub = subst_path env.e_esc actuals in
                      List.iter
                        (fun p ->
                          match sub p with
                          | Some q -> st := SSet.remove (note_path env q) !st
                          | None -> ())
                        sum.s_releases;
                      let acquired =
                        List.filter_map sub sum.s_acquires
                      in
                      let internal_order =
                        List.filter_map
                          (fun (a, b) ->
                            match (sub a, sub b) with
                            | Some a', Some b' -> Some (a', b')
                            | _ -> None)
                          sum.s_order
                      in
                      emit (Ev_call_order (idx, internal_order, !st));
                      List.iter
                        (fun q ->
                          emit (Ev_acquire (idx, q, !st));
                          st := SSet.add (note_path env q) !st)
                        acquired
                  | _ -> ())
              | _ -> ())
          | _ -> ()))
    stmts;
  (!st, !pending)

(** Terminator-side accesses (condition/scrutinee/return reads). *)
let walk_term (env : fn_env) ~(emit : int -> Escape.path -> unit)
    (term : Syntax.terminator) : unit =
  List.iter
    (fun e ->
      List.iter
        (fun (addr, atomic) ->
          if not atomic then
            match Escape.lpath env.e_esc.Escape.fr addr with
            | Some p when Escape.shared_path env.e_esc p -> emit 0 p
            | _ -> ())
        (expr_loads e []))
    (term_exprs term)

(** The per-edge transfer shared by the must- and may-fixpoints. *)
let transfer (env : fn_env) (_label : string) (b : Syntax.block)
    (st : SSet.t) : string -> SSet.t =
  let out, pending = walk_stmts env ~emit:ignore st b.Syntax.stmts in
  match b.Syntax.term with
  | Syntax.CondGoto { cond; if_true; if_false; _ } when if_true <> if_false
    -> (
      match cas_branch pending cond with
      | Some (lock, success_on_false) ->
          let taken = SSet.add (render lock) out in
          fun succ ->
            if succ = if_true then if success_on_false then out else taken
            else if succ = if_false then
              if success_on_false then taken else out
            else out
      | None -> fun _ -> out)
  | _ -> fun _ -> out

(* ---- analysis order ----------------------------------------------- *)

(* Direct callees of a body, restricted to functions defined in the
   unit (same reference discipline as Depgraph: [FnAddr f] anywhere and
   non-slot [VarLoc]s). *)
let direct_callees (defined : SSet.t) (f : Syntax.func) : string list =
  let slots =
    SSet.of_list (List.map fst (f.Syntax.args @ f.Syntax.locals))
  in
  let rec go_e acc (e : Syntax.expr) =
    match e with
    | Syntax.FnAddr g -> if SSet.mem g defined then SSet.add g acc else acc
    | Syntax.VarLoc x ->
        if (not (SSet.mem x slots)) && SSet.mem x defined then
          SSet.add x acc
        else acc
    | Syntax.Use { arg; _ }
    | Syntax.FieldOfs { arg; _ }
    | Syntax.UnOp { arg; _ }
    | Syntax.CastIntInt { arg; _ } ->
        go_e acc arg
    | Syntax.CastPtrPtr arg -> go_e acc arg
    | Syntax.BinOp { e1; e2; _ } -> go_e (go_e acc e1) e2
    | Syntax.IntConst _ | Syntax.NullConst -> acc
  in
  let go_s acc s =
    match s with
    | Syntax.Assign { lhs; rhs; _ } -> go_e (go_e acc lhs) rhs
    | Syntax.Call { dest; fn; args } ->
        let acc =
          match dest with Some (_, d) -> go_e acc d | None -> acc
        in
        List.fold_left (fun acc (_, a) -> go_e acc a) (go_e acc fn) args
    | Syntax.Cas { obj; expected; desired; dest; _ } ->
        let acc =
          match dest with Some (_, d) -> go_e acc d | None -> acc
        in
        go_e (go_e (go_e acc obj) expected) desired
    | Syntax.ExprStmt e | Syntax.Free e -> go_e acc e
    | Syntax.Skip -> acc
  in
  SSet.elements
    (List.fold_left
       (fun acc (_, (b : Syntax.block)) ->
         let acc = List.fold_left go_s acc b.Syntax.stmts in
         List.fold_left go_e acc (term_exprs b.Syntax.term))
       SSet.empty f.Syntax.blocks)

(** Bottom-up analysis order over {e all} bodies: the PR-8 dependency
    graph's topological order seeds the visit (callees first, its
    deterministic cycle-breaking kept), and unspecified functions —
    invisible to [Depgraph.build], which only sees [fn_to_check] — are
    woven in by the same callee-first DFS, so a specified caller of an
    unannotated helper still sees the helper's summary. *)
let analysis_order ~(funcs : (string * Syntax.func) list)
    ~(to_check : Rc_refinedc.Typecheck.fn_to_check list) : string list =
  let g = Rc_refinedc.Depgraph.build to_check in
  let defined = SSet.of_list (List.map fst funcs) in
  let seed =
    Rc_refinedc.Depgraph.topo_order g @ List.map fst funcs
  in
  let visited = Hashtbl.create 16 in
  let out = ref [] in
  let rec visit name =
    if SSet.mem name defined && not (Hashtbl.mem visited name) then begin
      Hashtbl.add visited name ();
      (match List.assoc_opt name funcs with
      | Some f -> List.iter visit (direct_callees defined f)
      | None -> ());
      out := name :: !out
    end
  in
  List.iter visit seed;
  List.rev !out

(* ---- putting it together ------------------------------------------ *)

module May_locks = Dataflow.Forward (struct
  type state = SSet.t

  let equal = SSet.equal
  let meet = SSet.union
end)

(** Analyze every function body of one unit bottom-up, returning the
    per-function reports in analysis order.  Pure function of its
    arguments — no session state, no caching — so it is recomputed by
    each lint pass that needs it (the passes are independently
    selectable; the walk is linear in the unit). *)
let analyze ?(metas : (string * Rc_refinedc.Lang.fn_meta) list = [])
    ~(funcs : (string * Syntax.func) list)
    ~(to_check : Rc_refinedc.Typecheck.fn_to_check list) () :
    func_report list =
  (* location side-tables: the frontend's per-body metadata when the
     caller has it (covers unspecified functions too), falling back to
     the [fn_to_check] copies *)
  let metas =
    metas
    @ List.map
        (fun (ftc : Rc_refinedc.Typecheck.fn_to_check) ->
          (ftc.Rc_refinedc.Typecheck.func.Syntax.fname,
           ftc.Rc_refinedc.Typecheck.meta))
        to_check
  in
  let loc_of fname label idx =
    match List.assoc_opt fname metas with
    | None -> Srcloc.dummy
    | Some meta ->
        Option.value ~default:Srcloc.dummy
          (List.assoc_opt (label, idx) meta.Rc_refinedc.Lang.fm_stmt_locs)
  in
  let summaries : (string, summary) Hashtbl.t = Hashtbl.create 16 in
  let order = analysis_order ~funcs ~to_check in
  List.filter_map
    (fun name ->
      match List.assoc_opt name funcs with
      | None -> None
      | Some f ->
          let env =
            {
              e_esc = Escape.compute f;
              e_slots =
                SSet.of_list
                  (List.map fst (f.Syntax.args @ f.Syntax.locals));
              e_paths = Hashtbl.create 8;
              e_funcs = funcs;
              e_summaries = summaries;
            }
          in
          let cfg = Cfg.build f in
          let must =
            Dataflow.Must_vars.run_edges cfg ~entry:SSet.empty
              ~transfer:(transfer env)
          in
          let may =
            May_locks.run_edges cfg ~entry:SSet.empty
              ~transfer:(transfer env)
          in
          (* reporting sweep over the must fixpoint *)
          let accesses = ref [] in
          let acquire_locs : (string, Srcloc.t) Hashtbl.t =
            Hashtbl.create 4
          in
          let order_edges = ref [] in
          let ext_releases = ref [] in
          let exits_must = ref [] in
          List.iter
            (fun (label, input) ->
              match Cfg.block cfg label with
              | None -> ()
              | Some b ->
                  let cur = ref input in
                  let emit = function
                    | Ev_access (idx, p, write, locks) ->
                        accesses :=
                          {
                            a_fname = name;
                            a_path = p;
                            a_write = write;
                            a_loc = loc_of name label idx;
                            a_locks = locks;
                          }
                          :: !accesses
                    | Ev_acquire (idx, p, locks) ->
                        let r = render p in
                        if not (Hashtbl.mem acquire_locs r) then
                          Hashtbl.add acquire_locs r
                            (loc_of name label idx);
                        SSet.iter
                          (fun before ->
                            order_edges :=
                              {
                                o_fname = name;
                                o_before = before;
                                o_after = r;
                                o_loc = loc_of name label idx;
                              }
                              :: !order_edges)
                          locks
                    | Ev_call_order (idx, edges, _locks) ->
                        List.iter
                          (fun (a, b) ->
                            order_edges :=
                              {
                                o_fname = name;
                                o_before = render a;
                                o_after = render b;
                                o_loc = loc_of name label idx;
                              }
                              :: !order_edges)
                          edges
                    | Ev_ext_release p -> ext_releases := p :: !ext_releases
                  in
                  let out, _pending =
                    walk_stmts env ~emit !cur b.Syntax.stmts
                  in
                  cur := out;
                  walk_term env
                    ~emit:(fun _ p ->
                      accesses :=
                        {
                          a_fname = name;
                          a_path = p;
                          a_write = false;
                          a_loc =
                            (match List.assoc_opt name metas with
                            | None -> Srcloc.dummy
                            | Some meta ->
                                Option.value ~default:Srcloc.dummy
                                  (List.assoc_opt label
                                     meta.Rc_refinedc.Lang.fm_term_locs));
                          a_locks = !cur;
                        }
                        :: !accesses)
                    b.Syntax.term;
                  (match b.Syntax.term with
                  | Syntax.Return _ -> exits_must := !cur :: !exits_must
                  | _ -> ()))
            must;
          (* may-side exit states, for the release-balance check *)
          let exits_may =
            List.filter_map
              (fun (label, input) ->
                match Cfg.block cfg label with
                | Some b -> (
                    match b.Syntax.term with
                    | Syntax.Return _ ->
                        let out, _ =
                          walk_stmts env ~emit:ignore input b.Syntax.stmts
                        in
                        Some out
                    | _ -> None)
                | None -> None)
              may
          in
          let must_exit =
            match !exits_must with
            | [] -> SSet.empty
            | x :: rest -> List.fold_left SSet.inter x rest
          in
          let may_exit =
            List.fold_left SSet.union SSet.empty exits_may
          in
          let unreleased =
            SSet.elements (SSet.diff may_exit must_exit)
            |> List.map (fun r ->
                   ( r,
                     Option.value ~default:Srcloc.dummy
                       (Hashtbl.find_opt acquire_locs r) ))
          in
          (* the exported summary, in caller-substitutable terms *)
          let path_of r =
            match Hashtbl.find_opt env.e_paths r with
            | Some p -> Some p
            | None -> None
          in
          let acquires =
            SSet.elements must_exit
            |> List.filter_map path_of
            |> List.filter substitutable
          in
          let releases =
            List.filter substitutable (List.rev !ext_releases)
            |> List.sort_uniq compare
          in
          let s_order =
            List.rev !order_edges
            |> List.filter_map (fun oe ->
                   match (path_of oe.o_before, path_of oe.o_after) with
                   | Some a, Some b
                     when substitutable a && substitutable b ->
                       Some (a, b)
                   | _ -> None)
            |> List.sort_uniq compare
          in
          Hashtbl.replace summaries name
            { s_acquires = acquires; s_releases = releases; s_order };
          Some
            {
              f_name = name;
              f_accesses = List.rev !accesses;
              f_unreleased = unreleased;
              f_order = List.rev !order_edges;
            })
    order

(** Is any synchronization idiom present in the unit at all?  The lint
    passes stay silent on purely sequential code — a unit that never
    touches an atomic has no lock discipline to check, and flagging
    every pointer write in [swap.c] as a may-race would drown the
    signal (and the dynamic monitor can never observe a race there
    either: no second thread is ever spawned without this unit being
    linked into concurrent code, at which point the lock idioms appear
    with it). *)
let unit_concurrent (funcs : (string * Syntax.func) list) : bool =
  List.exists (fun (_, f) -> Concur.uses_sync f) funcs

(** The concurrency lint passes (codes RC-L030..RC-L032).

    All three run on top of one {!Locksum.analyze} sweep:

    - {b RC-L030} (warning, "race" pass): a shared, non-atomic access
      performed with an {e empty} must-lockset — the Eraser criterion.
      May-race: every race the dynamic vector-clock monitor can observe
      is such an access (the static lockset only shrinks under the
      approximations), but not every report is a schedulable race.
    - {b RC-L031} (warning, "lockrel" pass): a lock held on some but
      not all paths to return — acquired, then released only on one
      branch.  Intentional hand-offs ([spin_lock] returning with the
      lock held on {e every} path) are not flagged.
    - {b RC-L032} (warning, "lockord" pass): two locks acquired in
      opposite orders somewhere in the unit — the classic deadlock
      shape.  Lock identity across functions is the rendered symbolic
      path, so [f(a,b){lock(a);lock(b)}] against
      [g(a,b){lock(b);lock(a)}] is caught, while unrelated locks that
      merely share an argument name can falsely unify (documented
      over-approximation, DESIGN.md §14).

    A unit with no synchronization idiom at all produces no reports:
    there is no lock discipline to check ({!Locksum.unit_concurrent}). *)

module Syntax = Rc_caesium.Syntax
module Diagnostic = Rc_util.Diagnostic
module SSet = Dataflow.StringSet

let reports ~metas ~(funcs : (string * Syntax.func) list)
    ~(to_check : Rc_refinedc.Typecheck.fn_to_check list) :
    Locksum.func_report list =
  if Locksum.unit_concurrent funcs then
    Locksum.analyze ~metas ~funcs ~to_check ()
  else []

(* ---- RC-L030: shared access with empty lockset -------------------- *)

let run_race ~metas ~funcs ~to_check : Diagnostic.t list =
  let reports = reports ~metas ~funcs ~to_check in
  (* one report per (function, path, kind), at the earliest location *)
  let found :
      (string * string * bool, Locksum.access * Rc_util.Srcloc.t) Hashtbl.t =
    Hashtbl.create 8
  in
  List.iter
    (fun (r : Locksum.func_report) ->
      List.iter
        (fun (a : Locksum.access) ->
          if SSet.is_empty a.Locksum.a_locks then begin
            let key =
              (a.Locksum.a_fname, Escape.to_string a.Locksum.a_path,
               a.Locksum.a_write)
            in
            match Hashtbl.find_opt found key with
            | Some (_, l) when Rc_util.Srcloc.compare l a.Locksum.a_loc <= 0
              ->
                ()
            | _ -> Hashtbl.replace found key (a, a.Locksum.a_loc)
          end)
        r.Locksum.f_accesses)
    reports;
  Hashtbl.fold
    (fun (fname, path, write) (_, loc) acc ->
      Diagnostic.make ~severity:Diagnostic.Warning ~code:"RC-L030" ~loc
        ~hint:
          "hold a lock (CAS-acquired) around this access, or make the \
           access atomic"
        (Printf.sprintf
           "in %s: %s of shared location '%s' with empty lockset (may \
            race)"
           fname
           (if write then "write" else "read")
           path)
      :: acc)
    found []

(* ---- RC-L031: lock not released on some path ---------------------- *)

let run_release ~metas ~funcs ~to_check : Diagnostic.t list =
  let reports = reports ~metas ~funcs ~to_check in
  List.concat_map
    (fun (r : Locksum.func_report) ->
      List.map
        (fun (lock, loc) ->
          Diagnostic.make ~severity:Diagnostic.Warning ~code:"RC-L031" ~loc
            ~hint:"release the lock on every path, or on none (hand-off)"
            (Printf.sprintf
               "in %s: lock '%s' is acquired but not released on some \
                path to return"
               r.Locksum.f_name lock))
        r.Locksum.f_unreleased)
    reports

(* ---- RC-L032: inconsistent lock order ----------------------------- *)

let run_order ~metas ~funcs ~to_check : Diagnostic.t list =
  let reports = reports ~metas ~funcs ~to_check in
  let edges =
    List.concat_map (fun (r : Locksum.func_report) -> r.Locksum.f_order)
      reports
    |> List.sort_uniq compare
  in
  (* adjacency over rendered lock names *)
  let adj : (string, SSet.t) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (e : Locksum.order_edge) ->
      let cur =
        Option.value ~default:SSet.empty
          (Hashtbl.find_opt adj e.Locksum.o_before)
      in
      Hashtbl.replace adj e.Locksum.o_before
        (SSet.add e.Locksum.o_after cur))
    edges;
  let reaches src dst =
    let seen = Hashtbl.create 8 in
    let rec go n =
      n = dst
      || (not (Hashtbl.mem seen n))
         &&
         (Hashtbl.add seen n ();
          SSet.exists go
            (Option.value ~default:SSet.empty (Hashtbl.find_opt adj n)))
    in
    go src
  in
  List.filter_map
    (fun (e : Locksum.order_edge) ->
      if
        e.Locksum.o_before <> e.Locksum.o_after
        && reaches e.Locksum.o_after e.Locksum.o_before
      then
        Some
          (Diagnostic.make ~severity:Diagnostic.Warning ~code:"RC-L032"
             ~loc:e.Locksum.o_loc
             ~hint:
               "acquire the locks in one global order everywhere to rule \
                out deadlock"
             (Printf.sprintf
                "in %s: lock '%s' acquired while holding '%s', but the \
                 opposite order also occurs in this unit (potential \
                 deadlock)"
                e.Locksum.o_fname e.Locksum.o_after e.Locksum.o_before))
      else None)
    edges

(** Unreachable code and missing returns (codes RC-L003 / RC-L004,
    sound warnings up to the constant-folded CFG of {!Cfg}).

    - RC-L003: a block that cannot be reached from the entry but
      contains source statements (or a [return]) — e.g. code after an
      [if] whose branches both return.  Elaboration also synthesizes
      {e empty} unreachable join blocks as a matter of course; those are
      compiler artifacts and are not reported.
    - RC-L004: in a non-void function, a *reachable* block ends in
      [Unreachable] — the terminator elaboration plants exactly where
      control falls off the end of the function, so some path reaches
      the closing brace without returning a value. *)

module Syntax = Rc_caesium.Syntax
module Layout = Rc_caesium.Layout
module Diagnostic = Rc_util.Diagnostic

(* A bare [Return None] does not count as content: elaboration
   synthesizes it to close the exit block of a [while (1)] loop in a
   void function, and for dead code it would anyway be a harmless lone
   [return;]. *)
let has_source_content (b : Syntax.block) : bool =
  List.exists (function Syntax.Skip -> false | _ -> true) b.Syntax.stmts
  || (match b.Syntax.term with Syntax.Return (Some _) -> true | _ -> false)

let run_fn (ftc : Rc_refinedc.Typecheck.fn_to_check) : Diagnostic.t list =
  let func = ftc.Rc_refinedc.Typecheck.func in
  let meta = ftc.Rc_refinedc.Typecheck.meta in
  let spec = ftc.Rc_refinedc.Typecheck.spec in
  let cfg = Cfg.build func in
  let stmt_loc label idx =
    List.assoc_opt (label, idx) meta.Rc_refinedc.Lang.fm_stmt_locs
  in
  let term_loc label =
    List.assoc_opt label meta.Rc_refinedc.Lang.fm_term_locs
  in
  let fallback_loc label =
    match term_loc label with
    | Some l -> l
    | None ->
        Option.value ~default:Rc_util.Srcloc.dummy spec.Rc_refinedc.Rtype.fs_loc
  in
  let block_descr label =
    match List.assoc_opt label meta.Rc_refinedc.Lang.fm_block_descr with
    | Some d -> Printf.sprintf " (%s)" d
    | None -> ""
  in
  let unreachable =
    List.filter_map
      (fun (label, b) ->
        if has_source_content b then
          let loc =
            match stmt_loc label 0 with
            | Some l -> Some l
            | None -> term_loc label
          in
          Some
            (Diagnostic.make ~severity:Diagnostic.Warning ~code:"RC-L003"
               ~loc:(Option.value ~default:(fallback_loc label) loc)
               ~hint:"delete the dead code, or fix the control flow above it"
               (Printf.sprintf "in %s: unreachable code%s" func.Syntax.fname
                  (block_descr label)))
        else None)
      (Cfg.unreachable_blocks cfg)
  in
  let missing_return =
    if func.Syntax.ret_layout = Layout.Void then []
    else
      List.filter_map
        (fun label ->
          match Cfg.block cfg label with
          | Some { Syntax.term = Syntax.Unreachable; _ } ->
              Some
                (Diagnostic.make ~severity:Diagnostic.Warning ~code:"RC-L004"
                   ~loc:(fallback_loc label)
                   ~hint:"add a return statement on every path"
                   (Printf.sprintf
                      "in %s: control can reach the end of this non-void \
                       function without returning a value"
                      func.Syntax.fname))
          | _ -> None)
        cfg.Cfg.reachable
  in
  unreachable @ missing_return

let run (to_check : Rc_refinedc.Typecheck.fn_to_check list) :
    Diagnostic.t list =
  List.concat_map run_fn to_check

(** Rule-set sanity checks (codes RC-L020 … RC-L022).

    The Lithium engine dispatches on judgment heads and tries the rules
    of a bucket in priority order, committing to the first match — so a
    misdeclared rule fails {e silently}: it just never fires, and proof
    search reports an unrelated stuck goal.  This pass audits the
    session's full rule set (standard library plus [extra_rules]) for
    the three declaration mistakes that produce such silent failures:

    - RC-L020: two rules share a name — rule statistics, traces and the
      certificate checker key rules by name, so a duplicate makes their
      reports ambiguous;
    - RC-L021: a rule is dead by construction — it declares [Some []]
      (no head can ever dispatch to it) or declares a head outside
      {!Rc_refinedc.Lang.all_heads} (a typo: "exprs" for "expr");
    - RC-L022: two rules land in the same dispatch bucket with equal
      priority — which fires first depends on registration order, an
      accident callers should not rely on.

    Rules have no source locations, so all diagnostics anchor at
    {!Rc_util.Srcloc.dummy}; the rule names in the messages are the
    actionable handle. *)

module Lang = Rc_refinedc.Lang
module Diagnostic = Rc_util.Diagnostic

let make ?hint ~code msg =
  Diagnostic.make ?hint ~severity:Diagnostic.Warning ~code
    ~loc:Rc_util.Srcloc.dummy msg

let run (session : Rc_refinedc.Session.t) : Diagnostic.t list =
  let rules =
    Rc_refinedc.Rules.builtin () @ session.Rc_refinedc.Session.extra_rules
  in
  (* RC-L020: duplicate rule names *)
  let dup_names =
    let seen = Hashtbl.create 64 and dups = ref [] in
    List.iter
      (fun (r : Lang.E.rule) ->
        let n = r.Lang.E.rname in
        if Hashtbl.mem seen n then begin
          if not (List.mem n !dups) then dups := n :: !dups
        end
        else Hashtbl.add seen n ())
      rules;
    List.rev_map
      (fun n ->
        make ~code:"RC-L020"
          ~hint:"rename one of them; traces and certificates key rules by name"
          (Printf.sprintf "two rules in this session are both named '%s'" n))
      !dups
  in
  (* RC-L021: dead rules — empty or misspelled head declarations *)
  let dead =
    List.concat_map
      (fun (r : Lang.E.rule) ->
        match r.Lang.E.heads with
        | None -> []
        | Some [] ->
            [
              make ~code:"RC-L021"
                ~hint:
                  "declare the heads it should fire on, or None for wildcard"
                (Printf.sprintf
                   "rule '%s' declares an empty head list and can never fire"
                   r.Lang.E.rname);
            ]
        | Some hs ->
            List.filter_map
              (fun h ->
                if List.mem h Lang.all_heads then None
                else
                  Some
                    (make ~code:"RC-L021"
                       ~hint:
                         (Printf.sprintf "valid heads: %s"
                            (String.concat ", " Lang.all_heads))
                       (Printf.sprintf
                          "rule '%s' declares unknown head '%s'; no judgment \
                           ever dispatches to it"
                          r.Lang.E.rname h)))
              hs)
      rules
  in
  (* RC-L022: equal-priority rules in one dispatch bucket.  Mirror the
     engine's bucketing: for each valid head, the rules whose
     declaration covers it (wildcards included), in priority order. *)
  let overlaps =
    List.concat_map
      (fun h ->
        let bucket =
          List.filter
            (fun (r : Lang.E.rule) ->
              match r.Lang.E.heads with
              | None -> true
              | Some hs -> List.mem h hs)
            rules
        in
        let sorted =
          List.stable_sort
            (fun (a : Lang.E.rule) (b : Lang.E.rule) ->
              compare a.Lang.E.prio b.Lang.E.prio)
            bucket
        in
        let rec adjacent = function
          | (a : Lang.E.rule) :: (b : Lang.E.rule) :: rest ->
              if a.Lang.E.prio = b.Lang.E.prio then
                make ~code:"RC-L022"
                  ~hint:"give them distinct priorities to fix the order"
                  (Printf.sprintf
                     "rules '%s' and '%s' both handle head '%s' at priority \
                      %d; their dispatch order is registration-dependent"
                     a.Lang.E.rname b.Lang.E.rname h a.Lang.E.prio)
                :: adjacent (b :: rest)
              else adjacent (b :: rest)
          | _ -> []
        in
        adjacent sorted)
      Lang.all_heads
  in
  dup_names @ dead @ overlaps

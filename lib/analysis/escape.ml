(** Shared-memory escape analysis: which locations a function touches
    that another thread could also reach.

    Caesium has no address arithmetic surprises — every location a body
    names is built from a root slot ([VarLoc]) by loads ([Use]), field
    offsets ([FieldOfs]) and pointer arithmetic — so locations are
    abstracted as {e symbolic access paths}: a root plus a list of
    steps.  [spin_lock]'s [&l->locked] is the path
    [arg l · Deref · Field "locked"]: load the pointer stored in slot
    [l], land on the struct it points to, offset to [locked].

    A path is {e shared} when some other thread could plausibly hold a
    pointer to the same location:

    - rooted at a global (the slot itself is reachable by name);
    - rooted at an argument slot and dereferencing it — the caller
      passed the pointer in, and nothing says the caller kept it
      private (this is the over-approximation: RefinedC's ownership
      types could prove otherwise, but the lint layer deliberately
      does not consult the proof);
    - rooted at a local that was {e tainted} — assigned a pointer that
      itself came out of shared memory ([e = pool->entries]) or out of
      a callee ([p = mpool_alloc(pool)]).

    Everything else — plain locals, address-taken locals that never
    leave the frame — is thread-private and can never race. *)

module Syntax = Rc_caesium.Syntax
module SSet = Dataflow.StringSet

type step = Deref | Field of string | Index
type root = Rglobal of string | Rarg of string | Rlocal of string
type path = { root : root; steps : step list }

let root_name = function Rglobal x | Rarg x | Rlocal x -> x

(** Stable, human-readable rendering; used both as the set/map key in
    the lockset domain and in diagnostics ("lock 'l->locked'"). *)
let to_string (p : path) : string =
  let b = Buffer.create 16 in
  Buffer.add_string b (root_name p.root);
  let rec go = function
    | [] -> ()
    | Deref :: Field f :: rest ->
        Buffer.add_string b "->";
        Buffer.add_string b f;
        go rest
    | Deref :: rest ->
        Buffer.add_string b "[*]";
        go rest
    | Field f :: rest ->
        Buffer.add_char b '.';
        Buffer.add_string b f;
        go rest
    | Index :: rest ->
        Buffer.add_string b "[i]";
        go rest
  in
  go p.steps;
  Buffer.contents b

let equal (a : path) (b : path) : bool = a.root = b.root && a.steps = b.steps

(** The frame of one function: how [VarLoc] roots classify. *)
type frame = { fr_args : SSet.t; fr_locals : SSet.t }

let frame_of (f : Syntax.func) : frame =
  {
    fr_args = SSet.of_list (List.map fst f.Syntax.args);
    fr_locals = SSet.of_list (List.map fst f.Syntax.locals);
  }

let root_of (fr : frame) (x : string) : root =
  if SSet.mem x fr.fr_args then Rarg x
  else if SSet.mem x fr.fr_locals then Rlocal x
  else Rglobal x

(** The symbolic path of the location an expression denotes when used
    as an address — [None] when the expression is not address-shaped
    (an integer, a function address, arithmetic).  [lpath (VarLoc x)]
    is slot [x] itself; [lpath (Use a)] is one [Deref] past [lpath a]:
    the cell the pointer stored there points to. *)
let rec lpath (fr : frame) (e : Syntax.expr) : path option =
  match e with
  | Syntax.VarLoc x -> Some { root = root_of fr x; steps = [] }
  | Syntax.Use { arg; _ } ->
      Option.map (fun p -> { p with steps = p.steps @ [ Deref ] })
        (lpath fr arg)
  | Syntax.FieldOfs { arg; field; _ } ->
      Option.map (fun p -> { p with steps = p.steps @ [ Field field ] })
        (lpath fr arg)
  | Syntax.CastPtrPtr arg -> lpath fr arg
  | Syntax.BinOp { op = Syntax.PtrPlusOp _; e1; _ } ->
      Option.map (fun p -> { p with steps = p.steps @ [ Index ] })
        (lpath fr e1)
  | Syntax.IntConst _ | Syntax.NullConst | Syntax.FnAddr _ | Syntax.BinOp _
  | Syntax.UnOp _ | Syntax.CastIntInt _ ->
      None

(** Escape information for one function. *)
type t = { fr : frame; tainted : SSet.t }

(** Is this path reachable from another thread?  [Index] and [Field]
    steps stay inside the allocation they started in, so only the root
    classification and the presence of a [Deref] matter. *)
let shared_path (t : t) (p : path) : bool =
  match p.root with
  | Rglobal _ -> true
  | Rarg _ -> List.mem Deref p.steps
  | Rlocal x -> SSet.mem x t.tainted && List.mem Deref p.steps

(** Compute the escape view of one function: classify the roots and run
    the taint to fixpoint.  A local is tainted when it is assigned a
    pointer whose pointee is shared ([e = pool->entries],
    [e = block]) or when it receives a callee's result — callees are
    free to hand out pointers into shared state ([mpool_alloc]), so
    call destinations are tainted wholesale.  [FnAddr]-captured state:
    a function whose address is taken can run on any thread, which is
    handled at the summary layer by analyzing every function, not just
    the ones a [main] reaches. *)
let compute (f : Syntax.func) : t =
  let fr = frame_of f in
  let assigns =
    List.concat_map
      (fun (_, (b : Syntax.block)) ->
        List.filter_map
          (function
            | Syntax.Assign { lhs = Syntax.VarLoc x; rhs; _ } -> Some (x, rhs)
            | _ -> None)
          b.Syntax.stmts)
      f.Syntax.blocks
  in
  let call_dests =
    List.concat_map
      (fun (_, (b : Syntax.block)) ->
        List.filter_map
          (function
            | Syntax.Call { dest = Some (_, Syntax.VarLoc x); _ } -> Some x
            | _ -> None)
          b.Syntax.stmts)
      f.Syntax.blocks
  in
  let rec fix tainted =
    let t = { fr; tainted } in
    let tainted' =
      List.fold_left
        (fun acc (x, rhs) ->
          match lpath fr rhs with
          | Some p when shared_path t p -> SSet.add x acc
          | _ -> acc)
        tainted assigns
    in
    if SSet.equal tainted' tainted then tainted else fix tainted'
  in
  { fr; tainted = fix (SSet.of_list call_dests) }

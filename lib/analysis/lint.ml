(** The lint pass registry and entry point.

    A pass is a named, documented analysis from the elaborated view of a
    translation unit (Caesium functions plus their specs, under a
    {!Rc_refinedc.Session.t}) to a list of {!Rc_util.Diagnostic.t}.  The
    registry below is the single source of truth consumed by the
    [refinedc lint] verb, the pre-[check] lint phase, the README code
    table and the cache key; there is no global mutable pass table —
    pass {e selection} lives in {!Rc_refinedc.Session.lint_cfg} as plain
    data, and is resolved to passes here by name. *)

module Syntax = Rc_caesium.Syntax
module Diagnostic = Rc_util.Diagnostic
module Obs = Rc_util.Obs

(** Everything a pass may look at. *)
type ctx = {
  cx_file : string;
  cx_session : Rc_refinedc.Session.t;
  cx_funcs : (string * Syntax.func) list;  (** every function with a body *)
  cx_to_check : Rc_refinedc.Typecheck.fn_to_check list;
      (** the specified subset, with metadata *)
  cx_metas : (string * Rc_refinedc.Lang.fn_meta) list;
      (** source metadata for every body, specified or not *)
}

type pass = {
  p_name : string;  (** the [--pass] / [lint_cfg.l_passes] handle *)
  p_descr : string;
  p_codes : string list;  (** the diagnostic codes this pass can emit *)
  p_sound : bool;
      (** true: every report is a real property of the artifact (maybe
          modulo CFG over-approximation); false: heuristic, may have
          false positives *)
  p_run : ctx -> Diagnostic.t list;
}

(** The registry, in reporting-priority order.  Immutable by
    construction (a plain list, not a table) — adding a pass is a code
    change, which is what keeps pass semantics in lock-step with the
    cache key's lint signature. *)
let passes : pass list =
  [
    {
      p_name = "init";
      p_descr = "definite initialization of locals";
      p_codes = [ "RC-L001" ];
      p_sound = true;
      p_run = (fun cx -> Pass_init.run cx.cx_to_check);
    };
    {
      p_name = "deref";
      p_descr = "NULL and ownership-less dereferences";
      p_codes = [ "RC-L002" ];
      p_sound = false;
      p_run = (fun cx -> Pass_deref.run cx.cx_to_check);
    };
    {
      p_name = "reach";
      p_descr = "unreachable code and missing returns";
      p_codes = [ "RC-L003"; "RC-L004" ];
      p_sound = true;
      p_run = (fun cx -> Pass_reach.run cx.cx_to_check);
    };
    {
      p_name = "spec";
      p_descr =
        "spec hygiene: unused parameters, duplicates, unsatisfiable \
         preconditions, arity";
      p_codes = [ "RC-L010"; "RC-L011"; "RC-L012"; "RC-L013" ];
      p_sound = true;
      p_run = (fun cx -> Pass_spec.run cx.cx_session cx.cx_to_check);
    };
    {
      p_name = "rules";
      p_descr =
        "rule-set sanity: duplicate names, dead rules, ambiguous \
         priorities";
      p_codes = [ "RC-L020"; "RC-L021"; "RC-L022" ];
      p_sound = true;
      p_run = (fun cx -> Pass_rules.run cx.cx_session);
    };
    {
      p_name = "race";
      p_descr =
        "Eraser-style lockset analysis: shared non-atomic access with an \
         empty must-lockset (may-race)";
      p_codes = [ "RC-L030" ];
      p_sound = false;
      p_run =
        (fun cx ->
          Pass_race.run_race ~metas:cx.cx_metas ~funcs:cx.cx_funcs
            ~to_check:cx.cx_to_check);
    };
    {
      p_name = "lockrel";
      p_descr = "lock acquired but not released on some path to return";
      p_codes = [ "RC-L031" ];
      p_sound = false;
      p_run =
        (fun cx ->
          Pass_race.run_release ~metas:cx.cx_metas ~funcs:cx.cx_funcs
            ~to_check:cx.cx_to_check);
    };
    {
      p_name = "lockord";
      p_descr =
        "inconsistent lock-acquisition order across the unit (potential \
         deadlock)";
      p_codes = [ "RC-L032" ];
      p_sound = false;
      p_run =
        (fun cx ->
          Pass_race.run_order ~metas:cx.cx_metas ~funcs:cx.cx_funcs
            ~to_check:cx.cx_to_check);
    };
  ]

let pass_names : string list = List.map (fun p -> p.p_name) passes

exception Unknown_pass of string

(** Resolve a [lint_cfg.l_passes] selection ([None] = all) to passes,
    preserving registry order.  Raises {!Unknown_pass} on a name not in
    {!pass_names}. *)
let select (sel : string list option) : pass list =
  match sel with
  | None -> passes
  | Some names ->
      List.iter
        (fun n ->
          if not (List.mem n pass_names) then raise (Unknown_pass n))
        names;
      List.filter (fun p -> List.mem p.p_name names) passes

(** Spec coverage of the unit: (functions with a spec, functions with a
    body). *)
let coverage ~(funcs : (string * Syntax.func) list)
    ~(to_check : Rc_refinedc.Typecheck.fn_to_check list) : int * int =
  Pass_spec.coverage ~funcs ~to_check

(** Run the session's selected passes over one elaborated unit.  Each
    pass is individually timed and counted into [obs] (span category
    "lint", metrics [lint.<pass>] / [lint.diags.<pass>]); the result is
    sorted with {!Rc_util.Diagnostic.sort}, so it is deterministic and
    deduplicated regardless of pass order or parallelism. *)
let run ?(obs = Obs.off) ?(metas = []) ~(session : Rc_refinedc.Session.t)
    ~(file : string) ~(funcs : (string * Syntax.func) list)
    ~(to_check : Rc_refinedc.Typecheck.fn_to_check list) () :
    Diagnostic.t list =
  let cx =
    { cx_file = file; cx_session = session; cx_funcs = funcs;
      cx_to_check = to_check; cx_metas = metas }
  in
  let selected = select session.Rc_refinedc.Session.lint.l_passes in
  let all =
    List.concat_map
      (fun p ->
        let ds =
          Obs.timed obs ~cat:"lint" ~key:("lint." ^ p.p_name)
            ~args:[ ("pass", p.p_name) ]
            ("lint:" ^ p.p_name)
            (fun () -> p.p_run cx)
        in
        Obs.counter obs ~by:(List.length ds) ("lint.diags." ^ p.p_name);
        ds)
      selected
  in
  Diagnostic.sort all

(** Null / unbacked-dereference candidates (code RC-L002).

    A dereference in Caesium is a [Use]/[Assign]/[Cas] whose location
    operand is *computed* — loaded from a slot rather than being a slot
    ([VarLoc]) itself.  Verification will demand ownership of the
    pointed-to memory; if the spec visibly provides none, the proof is
    doomed and the stuck goal it eventually produces is opaque.  Two
    shapes are reported:

    - a dereference whose base is the literal [NULL] — definitely wrong
      (sound warning);
    - a dereference whose base is a pointer {e argument} whose spec type
      carries no ownership evidence (a bare [p @ ptr] singleton with no
      [rc::requires] atom covering [p]) — a heuristic hint: the
      ownership could in principle arrive indirectly, so false
      positives are possible and the severity is {!Diagnostic.Hint}. *)

module Syntax = Rc_caesium.Syntax
module Rtype = Rc_refinedc.Rtype
module Diagnostic = Rc_util.Diagnostic
open Rc_pure.Term

(** Strip address arithmetic down to the base of a location expression. *)
let rec base (e : Syntax.expr) : Syntax.expr =
  match e with
  | Syntax.FieldOfs { arg; _ } -> base arg
  | Syntax.BinOp { op = Syntax.PtrPlusOp _; e1; _ } -> base e1
  | Syntax.CastPtrPtr e -> base e
  | e -> e

(** Does owning a value of this spec type come with ownership of memory
    behind it?  Everything except the thin value types does; a bare
    [TPtrV ℓ] singleton counts only if some precondition atom covers a
    location sharing variables with ℓ. *)
let rec has_ownership (spec : Rtype.fn_spec) (ty : Rtype.rtype) : bool =
  match ty with
  | Rtype.TOwn _ | Rtype.TOptional _ | Rtype.TNamed _ | Rtype.TStruct _
  | Rtype.TArrayInt _ | Rtype.TAtomicBool _ | Rtype.TWand _
  | Rtype.TUninit _ | Rtype.TManaged _ | Rtype.TFnPtr _ ->
      true
  | Rtype.TInt _ | Rtype.TBool _ | Rtype.TNull | Rtype.TAnyInt _ -> false
  | Rtype.TPtrV l ->
      let lv = free_vars_term l in
      List.exists
        (function
          | Rtype.HAtom (Rtype.LocTy (l', _)) ->
              equal_term l' l
              || not (SS.is_empty (SS.inter lv (free_vars_term l')))
          | _ -> false)
        spec.Rtype.fs_pre
  | Rtype.TConstr (t, _) | Rtype.TPadded (t, _) -> has_ownership spec t
  | Rtype.TExists (x, s, f) -> has_ownership spec (f (Var (x, s)))

(** Every location expression dereferenced by [e] (including [e] itself
    when [at_loc]), paired with nothing — the caller owns the context. *)
let rec loc_exprs (e : Syntax.expr) (acc : Syntax.expr list) :
    Syntax.expr list =
  match e with
  | Syntax.Use { arg; _ } -> loc_exprs arg (arg :: acc)
  | Syntax.FieldOfs { arg; _ } | Syntax.UnOp { arg; _ }
  | Syntax.CastIntInt { arg; _ } ->
      loc_exprs arg acc
  | Syntax.CastPtrPtr arg -> loc_exprs arg acc
  | Syntax.BinOp { e1; e2; _ } -> loc_exprs e1 (loc_exprs e2 acc)
  | Syntax.IntConst _ | Syntax.NullConst | Syntax.FnAddr _ | Syntax.VarLoc _
    ->
      acc

(** Location expressions accessed by a statement: the operands of every
    load plus the direct store/CAS targets. *)
let stmt_loc_exprs (s : Syntax.stmt) : Syntax.expr list =
  let sub = List.fold_left (fun acc e -> loc_exprs e acc) [] in
  match s with
  | Syntax.Assign { lhs; rhs; _ } -> (lhs :: sub [ lhs; rhs ])
  | Syntax.Call { dest; fn; args } ->
      let ds = match dest with Some (_, d) -> [ d ] | None -> [] in
      ds @ sub ((fn :: List.map snd args) @ ds)
  | Syntax.Cas { obj; expected; desired; dest; _ } ->
      let ds = match dest with Some (_, d) -> [ d ] | None -> [] in
      (obj :: expected :: ds) @ sub ((obj :: expected :: desired :: ds))
  | Syntax.ExprStmt e | Syntax.Free e -> sub [ e ]
  | Syntax.Skip -> []

let term_loc_exprs (t : Syntax.terminator) : Syntax.expr list =
  let sub = List.fold_left (fun acc e -> loc_exprs e acc) [] in
  match t with
  | Syntax.CondGoto { cond; _ } -> sub [ cond ]
  | Syntax.Switch { scrut; _ } -> sub [ scrut ]
  | Syntax.Return (Some e) -> sub [ e ]
  | Syntax.Goto _ | Syntax.Return None | Syntax.Unreachable -> []

let run_fn (ftc : Rc_refinedc.Typecheck.fn_to_check) : Diagnostic.t list =
  let func = ftc.Rc_refinedc.Typecheck.func in
  let spec = ftc.Rc_refinedc.Typecheck.spec in
  let meta = ftc.Rc_refinedc.Typecheck.meta in
  (* argument name ↦ its spec type, positionally *)
  let arg_tys =
    if List.length spec.Rtype.fs_args = List.length func.Syntax.args then
      List.map2
        (fun (x, _) ty -> (x, ty))
        func.Syntax.args spec.Rtype.fs_args
    else []
  in
  let stmt_loc label idx =
    Option.value ~default:Rc_util.Srcloc.dummy
      (List.assoc_opt (label, idx) meta.Rc_refinedc.Lang.fm_stmt_locs)
  in
  let term_loc label =
    Option.value ~default:Rc_util.Srcloc.dummy
      (List.assoc_opt label meta.Rc_refinedc.Lang.fm_term_locs)
  in
  let seen : (string, unit) Hashtbl.t = Hashtbl.create 4 in
  let once key mk acc = (* one report per (kind, base) per function *)
    if Hashtbl.mem seen key then acc
    else begin
      Hashtbl.add seen key ();
      mk () :: acc
    end
  in
  let classify loc (le : Syntax.expr) acc =
    match le with
    | Syntax.VarLoc _ -> acc  (* direct slot access, never a deref *)
    | _ -> (
        match base le with
        | Syntax.NullConst ->
            once "null"
              (fun () ->
                Diagnostic.make ~severity:Diagnostic.Warning ~code:"RC-L002"
                  ~loc
                  (Printf.sprintf "in %s: dereference of NULL"
                     func.Syntax.fname))
              acc
        | Syntax.Use { arg = Syntax.VarLoc x; _ }
          when List.mem_assoc x arg_tys
               && not (has_ownership spec (List.assoc x arg_tys)) ->
            once ("arg:" ^ x)
              (fun () ->
                Diagnostic.make ~severity:Diagnostic.Hint ~code:"RC-L002"
                  ~loc
                  ~hint:
                    (Printf.sprintf
                       "give '%s' an ownership-carrying type (e.g. \
                        &own<…>) or add an rc::requires atom covering it"
                       x)
                  (Printf.sprintf
                     "in %s: dereference of pointer argument '%s', whose \
                      specification provides no ownership of the \
                      pointed-to memory"
                     func.Syntax.fname x))
              acc
        | _ -> acc)
  in
  List.fold_left
    (fun acc (label, (b : Syntax.block)) ->
      let acc =
        List.fold_left
          (fun acc (idx, s) ->
            List.fold_left
              (fun acc le -> classify (stmt_loc label idx) le acc)
              acc (stmt_loc_exprs s))
          acc
          (List.mapi (fun i s -> (i, s)) b.Syntax.stmts)
      in
      List.fold_left
        (fun acc le -> classify (term_loc label) le acc)
        acc
        (term_loc_exprs b.Syntax.term))
    [] func.Syntax.blocks

let run (to_check : Rc_refinedc.Typecheck.fn_to_check list) :
    Diagnostic.t list =
  List.concat_map run_fn to_check

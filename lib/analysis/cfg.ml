(** Control-flow graphs over Caesium function bodies.

    The Caesium representation ({!Rc_caesium.Syntax.func}) already *is*
    a CFG — labelled blocks with explicit terminators — so this module
    only computes the derived structure the analysis passes share:
    successor/predecessor edges and reachability from the entry block.

    Edges are {e constant-folded}: a [CondGoto] whose condition is an
    integer literal (the elaboration of C's [while (1)]) contributes
    only the taken edge, and a [Switch] on a literal only the matching
    case.  Without this, every [while (1) { … return …; }] body would
    make its (never-entered) exit block look reachable and trip the
    missing-return lint on half the Figure-7 corpus.

    All per-label lookups ([succs_of], [preds_of], [block],
    [is_reachable]) are hash-table backed, and construction is linear in
    the number of edges — lint now runs over stress-corpus functions
    with hundreds of blocks, where the former per-block
    scan-all-successor-lists predecessor build was quadratic. *)

module Syntax = Rc_caesium.Syntax

type t = {
  func : Syntax.func;
  succs : (string, string list) Hashtbl.t;
  preds : (string, string list) Hashtbl.t;  (** in block order *)
  blocks : (string, Syntax.block) Hashtbl.t;
  reach : (string, unit) Hashtbl.t;
  reachable : string list;
      (** blocks reachable from the entry, in reverse postorder — the
          canonical iteration order for forward dataflow *)
}

(** Order-preserving dedup, linear via a seen-table (successor lists are
    tiny, but [Switch] fan-out on generated code is not). *)
let dedup (xs : string list) : string list =
  let seen = Hashtbl.create (List.length xs) in
  List.filter
    (fun x ->
      if Hashtbl.mem seen x then false
      else begin
        Hashtbl.add seen x ();
        true
      end)
    xs

(** Successor labels of a terminator, constant edges folded. *)
let term_succs (term : Syntax.terminator) : string list =
  match term with
  | Syntax.Goto l -> [ l ]
  | Syntax.CondGoto { cond = Syntax.IntConst (n, _); if_true; if_false; _ } ->
      [ (if n <> 0 then if_true else if_false) ]
  | Syntax.CondGoto { if_true; if_false; _ } -> dedup [ if_true; if_false ]
  | Syntax.Switch { scrut = Syntax.IntConst (n, _); cases; default; _ } -> (
      match List.assoc_opt n cases with Some l -> [ l ] | None -> [ default ])
  | Syntax.Switch { cases; default; _ } ->
      dedup (List.map snd cases @ [ default ])
  | Syntax.Return _ | Syntax.Unreachable -> []

let build (func : Syntax.func) : t =
  let n = List.length func.Syntax.blocks in
  let succs = Hashtbl.create n in
  let preds = Hashtbl.create n in
  let blocks = Hashtbl.create n in
  (* seed every block with an empty predecessor list so lookup order
     cannot observe construction order *)
  List.iter
    (fun (l, b) ->
      Hashtbl.replace blocks l b;
      Hashtbl.replace preds l [])
    func.Syntax.blocks;
  (* one pass over the edges; predecessor lists are accumulated reversed
     and flipped below, giving the same block-order lists as the old
     all-pairs scan *)
  List.iter
    (fun (l, b) ->
      let ss = term_succs b.Syntax.term in
      Hashtbl.replace succs l ss;
      List.iter
        (fun s ->
          match Hashtbl.find_opt preds s with
          | Some ps -> Hashtbl.replace preds s (l :: ps)
          | None -> ())
        ss)
    func.Syntax.blocks;
  Hashtbl.iter
    (fun l ps -> Hashtbl.replace preds l (List.rev ps))
    (Hashtbl.copy preds);
  (* depth-first walk from the entry; postorder reversed gives RPO *)
  let reach = Hashtbl.create n in
  let order = ref [] in
  let rec dfs l =
    if not (Hashtbl.mem reach l) then begin
      Hashtbl.add reach l ();
      (match Hashtbl.find_opt succs l with
      | Some ss -> List.iter dfs ss
      | None -> ());
      order := l :: !order
    end
  in
  dfs func.Syntax.entry;
  { func; succs; preds; blocks; reach; reachable = !order }

let succs_of (t : t) (label : string) : string list =
  Option.value ~default:[] (Hashtbl.find_opt t.succs label)

let preds_of (t : t) (label : string) : string list =
  Option.value ~default:[] (Hashtbl.find_opt t.preds label)

let block (t : t) (label : string) : Syntax.block option =
  Hashtbl.find_opt t.blocks label

let is_reachable (t : t) (label : string) : bool = Hashtbl.mem t.reach label

(** Blocks never reached from the entry, in declaration order. *)
let unreachable_blocks (t : t) : (string * Syntax.block) list =
  List.filter (fun (l, _) -> not (is_reachable t l)) t.func.Syntax.blocks

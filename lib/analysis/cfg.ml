(** Control-flow graphs over Caesium function bodies.

    The Caesium representation ({!Rc_caesium.Syntax.func}) already *is*
    a CFG — labelled blocks with explicit terminators — so this module
    only computes the derived structure the analysis passes share:
    successor/predecessor edges and reachability from the entry block.

    Edges are {e constant-folded}: a [CondGoto] whose condition is an
    integer literal (the elaboration of C's [while (1)]) contributes
    only the taken edge, and a [Switch] on a literal only the matching
    case.  Without this, every [while (1) { … return …; }] body would
    make its (never-entered) exit block look reachable and trip the
    missing-return lint on half the Figure-7 corpus. *)

module Syntax = Rc_caesium.Syntax

type t = {
  func : Syntax.func;
  succs : (string * string list) list;  (** per block, in block order *)
  preds : (string * string list) list;
  reachable : string list;
      (** blocks reachable from the entry, in reverse postorder — the
          canonical iteration order for forward dataflow *)
}

let dedup (xs : string list) : string list =
  let rec go seen = function
    | [] -> []
    | x :: rest ->
        if List.mem x seen then go seen rest else x :: go (x :: seen) rest
  in
  go [] xs

(** Successor labels of a terminator, constant edges folded. *)
let term_succs (term : Syntax.terminator) : string list =
  match term with
  | Syntax.Goto l -> [ l ]
  | Syntax.CondGoto { cond = Syntax.IntConst (n, _); if_true; if_false; _ } ->
      [ (if n <> 0 then if_true else if_false) ]
  | Syntax.CondGoto { if_true; if_false; _ } -> dedup [ if_true; if_false ]
  | Syntax.Switch { scrut = Syntax.IntConst (n, _); cases; default; _ } -> (
      match List.assoc_opt n cases with Some l -> [ l ] | None -> [ default ])
  | Syntax.Switch { cases; default; _ } ->
      dedup (List.map snd cases @ [ default ])
  | Syntax.Return _ | Syntax.Unreachable -> []

let build (func : Syntax.func) : t =
  let succs =
    List.map (fun (l, b) -> (l, term_succs b.Syntax.term)) func.Syntax.blocks
  in
  let preds =
    List.map
      (fun (l, _) ->
        ( l,
          List.filter_map
            (fun (l', ss) -> if List.mem l ss then Some l' else None)
            succs ))
      func.Syntax.blocks
  in
  (* depth-first walk from the entry; postorder reversed gives RPO *)
  let visited = Hashtbl.create 16 in
  let order = ref [] in
  let rec dfs l =
    if not (Hashtbl.mem visited l) then begin
      Hashtbl.add visited l ();
      (match List.assoc_opt l succs with
      | Some ss -> List.iter dfs ss
      | None -> ());
      order := l :: !order
    end
  in
  dfs func.Syntax.entry;
  { func; succs; preds; reachable = !order }

let succs_of (t : t) (label : string) : string list =
  Option.value ~default:[] (List.assoc_opt label t.succs)

let preds_of (t : t) (label : string) : string list =
  Option.value ~default:[] (List.assoc_opt label t.preds)

let block (t : t) (label : string) : Syntax.block option =
  List.assoc_opt label t.func.Syntax.blocks

let is_reachable (t : t) (label : string) : bool =
  List.mem label t.reachable

(** Blocks never reached from the entry, in declaration order. *)
let unreachable_blocks (t : t) : (string * Syntax.block) list =
  List.filter (fun (l, _) -> not (is_reachable t l)) t.func.Syntax.blocks

(** Definite-initialization pass (code RC-L001, sound warning).

    Caesium gives fresh locals type [uninit<n>] — reading one before its
    first write produces a poison value, which the type system will
    reject only after a full (and doomed) proof search.  This pass finds
    such reads up front with a textbook must-analysis: the domain is the
    set of locals definitely written on every path, the meet is
    intersection, and a read [Use (VarLoc x)] of an untracked local is
    reported at its statement's source location.

    Soundness stance: warnings are sound w.r.t. the CFG
    over-approximation — every reported read really is reachable along
    some CFG path on which the local was never directly written.  To
    avoid false positives from indirect writes, any local whose address
    escapes the direct read/write discipline (passed to a callee,
    offset into a struct field, aliased) is excluded from tracking. *)

module Syntax = Rc_caesium.Syntax
module Diagnostic = Rc_util.Diagnostic
module SSet = Dataflow.StringSet

(* ---- expression collectors ---------------------------------------- *)

(** Locals read by an expression: every [Use] whose location operand is
    directly a [VarLoc]. *)
let rec reads (e : Syntax.expr) (acc : string list) : string list =
  match e with
  | Syntax.Use { arg = Syntax.VarLoc x; _ } -> x :: acc
  | Syntax.Use { arg; _ }
  | Syntax.FieldOfs { arg; _ }
  | Syntax.UnOp { arg; _ }
  | Syntax.CastIntInt { arg; _ } ->
      reads arg acc
  | Syntax.CastPtrPtr arg -> reads arg acc
  | Syntax.BinOp { e1; e2; _ } -> reads e1 (reads e2 acc)
  | Syntax.IntConst _ | Syntax.NullConst | Syntax.FnAddr _ | Syntax.VarLoc _
    ->
      acc

(** Locals whose address leaves the direct read/write discipline: a
    [VarLoc] that is *not* immediately the operand of a [Use] — e.g.
    [&x] passed to a callee, or [x.f] accessed through [FieldOfs]. *)
let rec addr_taken (e : Syntax.expr) (acc : string list) : string list =
  match e with
  | Syntax.VarLoc x -> x :: acc
  | Syntax.Use { arg = Syntax.VarLoc _; _ } -> acc
  | Syntax.Use { arg; _ }
  | Syntax.FieldOfs { arg; _ }
  | Syntax.UnOp { arg; _ }
  | Syntax.CastIntInt { arg; _ } ->
      addr_taken arg acc
  | Syntax.CastPtrPtr arg -> addr_taken arg acc
  | Syntax.BinOp { e1; e2; _ } -> addr_taken e1 (addr_taken e2 acc)
  | Syntax.IntConst _ | Syntax.NullConst | Syntax.FnAddr _ -> acc

(** Per-statement effect: expressions read, locals whose address is
    taken, and the local directly (re)defined, if any. *)
let stmt_effect (s : Syntax.stmt) :
    Syntax.expr list * string list * string option =
  let dest_def = function
    | Some (_, Syntax.VarLoc x) -> ([], Some x)
    | Some (_, e) -> ([ e ], None)  (* destination computed: reads inside *)
    | None -> ([], None)
  in
  match s with
  | Syntax.Assign { lhs = Syntax.VarLoc x; rhs; _ } -> ([ rhs ], [], Some x)
  | Syntax.Assign { lhs; rhs; _ } -> ([ lhs; rhs ], [], None)
  | Syntax.Call { dest; fn; args } ->
      let extra, def = dest_def dest in
      (fn :: List.map snd args @ extra, [], def)
  | Syntax.Cas { obj; expected; desired; dest; _ } ->
      let extra, def = dest_def dest in
      ((obj :: expected :: desired :: extra), [], def)
  | Syntax.ExprStmt e | Syntax.Free e -> ([ e ], [], None)
  | Syntax.Skip -> ([], [], None)

let term_exprs (t : Syntax.terminator) : Syntax.expr list =
  match t with
  | Syntax.CondGoto { cond; _ } -> [ cond ]
  | Syntax.Switch { scrut; _ } -> [ scrut ]
  | Syntax.Return (Some e) -> [ e ]
  | Syntax.Goto _ | Syntax.Return None | Syntax.Unreachable -> []

let stmt_exprs (s : Syntax.stmt) : Syntax.expr list =
  let exprs, _, _ = stmt_effect s in
  exprs

(* ---- the pass ----------------------------------------------------- *)

let run_fn (ftc : Rc_refinedc.Typecheck.fn_to_check) : Diagnostic.t list =
  let func = ftc.Rc_refinedc.Typecheck.func in
  let meta = ftc.Rc_refinedc.Typecheck.meta in
  let locals = SSet.of_list (List.map fst func.Syntax.locals) in
  (* flow-insensitive escape set: excluded from tracking entirely *)
  let escaped =
    List.fold_left
      (fun acc (_, (b : Syntax.block)) ->
        let acc =
          List.fold_left
            (fun acc s ->
              List.fold_left
                (fun acc e -> SSet.union acc (SSet.of_list (addr_taken e [])))
                acc (stmt_exprs s))
            acc b.Syntax.stmts
        in
        List.fold_left
          (fun acc e -> SSet.union acc (SSet.of_list (addr_taken e [])))
          acc
          (term_exprs b.Syntax.term))
      SSet.empty func.Syntax.blocks
  in
  let tracked = SSet.diff locals escaped in
  if SSet.is_empty tracked then []
  else begin
    let cfg = Cfg.build func in
    let transfer _label (b : Syntax.block) (st : SSet.t) : SSet.t =
      List.fold_left
        (fun st s ->
          let _, _, def = stmt_effect s in
          match def with Some x -> SSet.add x st | None -> st)
        st b.Syntax.stmts
    in
    let inputs = Dataflow.Must_vars.run cfg ~entry:SSet.empty ~transfer in
    let stmt_loc label idx =
      Option.value ~default:Rc_util.Srcloc.dummy
        (List.assoc_opt (label, idx)
           meta.Rc_refinedc.Lang.fm_stmt_locs)
    in
    let term_loc label =
      Option.value ~default:Rc_util.Srcloc.dummy
        (List.assoc_opt label meta.Rc_refinedc.Lang.fm_term_locs)
    in
    (* reporting sweep: earliest faulty read per variable *)
    let found : (string, Rc_util.Srcloc.t) Hashtbl.t = Hashtbl.create 4 in
    let note loc x =
      if SSet.mem x tracked then
        match Hashtbl.find_opt found x with
        | Some l when Rc_util.Srcloc.compare l loc <= 0 -> ()
        | _ -> Hashtbl.replace found x loc
    in
    List.iter
      (fun (label, input) ->
        match Cfg.block cfg label with
        | None -> ()
        | Some b ->
            let st = ref input in
            List.iteri
              (fun idx s ->
                let exprs, _, def = stmt_effect s in
                List.iter
                  (fun e ->
                    List.iter
                      (fun x ->
                        if not (SSet.mem x !st) then
                          note (stmt_loc label idx) x)
                      (reads e []))
                  exprs;
                match def with
                | Some x -> st := SSet.add x !st
                | None -> ())
              b.Syntax.stmts;
            List.iter
              (fun e ->
                List.iter
                  (fun x ->
                    if not (SSet.mem x !st) then note (term_loc label) x)
                  (reads e []))
              (term_exprs b.Syntax.term))
      inputs;
    Hashtbl.fold
      (fun x loc acc ->
        Diagnostic.make ~severity:Diagnostic.Warning ~code:"RC-L001" ~loc
          ~hint:
            (Printf.sprintf
               "initialize '%s' at its declaration or on every path \
                reaching this read"
               x)
          (Printf.sprintf
             "in %s: local variable '%s' may be read before it is \
              initialized"
             func.Syntax.fname x)
        :: acc)
      found []
  end

let run (cx_to_check : Rc_refinedc.Typecheck.fn_to_check list) :
    Diagnostic.t list =
  List.concat_map run_fn cx_to_check

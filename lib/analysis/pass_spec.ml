(** Specification lints (codes RC-L010 … RC-L013) and the per-file
    spec-coverage numbers.

    - RC-L010 (warning): an [rc::parameters] binder that occurs nowhere
      in the argument types, pre/postconditions, return type or loop
      invariants — usually a typo or a leftover from a spec edit.
    - RC-L011 (warning): duplicate annotation content — a binder name
      bound twice, the same pre/postcondition resource stated twice, or
      a loop-invariant variable listed twice.
    - RC-L012 (warning): the pure part of the precondition is
      unsatisfiable — discharged to [False] by the session's own solver
      registry ({!Rc_pure.Registry.default_prove}), under the pure
      facts the argument types imply.  Every proof of such a function
      is vacuous and no call site can ever meet the spec.
    - RC-L013 (error): the spec's argument count differs from the C
      function's — the entry goal is unprovable by construction.

    All four are sound: each reports a property of the specification
    itself, independent of any execution. *)

module Rtype = Rc_refinedc.Rtype
module Diagnostic = Rc_util.Diagnostic
open Rc_pure
open Rc_pure.Term

(* ---- free spec variables of a type -------------------------------- *)

let union3 a b c = SS.union a (SS.union b c)

let rec fv_rtype (ty : Rtype.rtype) : SS.t =
  match ty with
  | Rtype.TInt (_, n) | Rtype.TPtrV n | Rtype.TUninit n -> free_vars_term n
  | Rtype.TBool (_, p) -> free_vars_prop p
  | Rtype.TNull | Rtype.TAnyInt _ | Rtype.TManaged _ -> SS.empty
  | Rtype.TOwn (l, t) ->
      SS.union
        (match l with Some l -> free_vars_term l | None -> SS.empty)
        (fv_rtype t)
  | Rtype.TOptional (p, t1, t2) ->
      union3 (free_vars_prop p) (fv_rtype t1) (fv_rtype t2)
  | Rtype.TStruct (_, ts) ->
      List.fold_left (fun acc t -> SS.union acc (fv_rtype t)) SS.empty ts
  | Rtype.TArrayInt (_, len, xs) ->
      SS.union (free_vars_term len) (free_vars_term xs)
  | Rtype.TWand (a, t) -> SS.union (fv_atom a) (fv_rtype t)
  | Rtype.TExists (x, s, f) -> SS.remove x (fv_rtype (f (Var (x, s))))
  | Rtype.TConstr (t, p) -> SS.union (fv_rtype t) (free_vars_prop p)
  | Rtype.TPadded (t, n) -> SS.union (fv_rtype t) (free_vars_term n)
  | Rtype.TNamed (_, args) ->
      List.fold_left
        (fun acc t -> SS.union acc (free_vars_term t))
        SS.empty args
  | Rtype.TFnPtr spec -> fv_spec spec
  | Rtype.TAtomicBool (_, p, h1, h2) ->
      union3 (free_vars_prop p) (fv_hres_list h1) (fv_hres_list h2)

and fv_atom = function
  | Rtype.LocTy (l, t) | Rtype.ValTy (l, t) ->
      SS.union (free_vars_term l) (fv_rtype t)

and fv_hres = function
  | Rtype.HAtom a -> fv_atom a
  | Rtype.HProp p -> free_vars_prop p

and fv_hres_list hs =
  List.fold_left (fun acc h -> SS.union acc (fv_hres h)) SS.empty hs

(** Free variables of a whole spec, minus its own binders. *)
and fv_spec (s : Rtype.fn_spec) : SS.t =
  let inner =
    List.fold_left
      (fun acc t -> SS.union acc (fv_rtype t))
      (union3 (fv_hres_list s.Rtype.fs_pre) (fv_hres_list s.Rtype.fs_post)
         (fv_rtype s.Rtype.fs_ret))
      s.Rtype.fs_args
  in
  let bound =
    List.map fst s.Rtype.fs_params @ List.map fst s.Rtype.fs_exists
  in
  List.fold_left (fun acc x -> SS.remove x acc) inner bound

let fv_inv (inv : Rc_refinedc.Lang.loop_inv) : SS.t =
  let inner =
    List.fold_left
      (fun acc (_, t) -> SS.union acc (fv_rtype t))
      (List.fold_left
         (fun acc p -> SS.union acc (free_vars_prop p))
         SS.empty inv.Rc_refinedc.Lang.li_constraints)
      inv.Rc_refinedc.Lang.li_vars
  in
  List.fold_left
    (fun acc (x, _) -> SS.remove x acc)
    inner inv.Rc_refinedc.Lang.li_exists

(* ---- duplicates --------------------------------------------------- *)

let dup_names (xs : string list) : string list =
  let rec go seen acc = function
    | [] -> List.rev acc
    | x :: rest ->
        if List.mem x seen then
          go seen (if List.mem x acc then acc else x :: acc) rest
        else go (x :: seen) acc rest
  in
  go [] [] xs

let dup_hres (hs : Rtype.hres list) : string list =
  dup_names (List.map (fun h -> Fmt.str "%a" Rtype.pp_hres h) hs)

(* ---- the pass ----------------------------------------------------- *)

let run_fn (session : Rc_refinedc.Session.t)
    (ftc : Rc_refinedc.Typecheck.fn_to_check) : Diagnostic.t list =
  let spec = ftc.Rc_refinedc.Typecheck.spec in
  let func = ftc.Rc_refinedc.Typecheck.func in
  let invs = ftc.Rc_refinedc.Typecheck.invs in
  let loc = Option.value ~default:Rc_util.Srcloc.dummy spec.Rtype.fs_loc in
  let name = spec.Rtype.fs_name in
  let diags = ref [] in
  let emit ?severity ?hint code msg =
    diags := Diagnostic.make ?severity ?hint ~code ~loc msg :: !diags
  in
  (* RC-L013: spec/code arity mismatch *)
  if List.length spec.Rtype.fs_args <> List.length func.Rc_caesium.Syntax.args
  then
    emit ~severity:Diagnostic.Error "RC-L013"
      (Printf.sprintf
         "specification of %s lists %d argument type(s) but the function \
          takes %d"
         name
         (List.length spec.Rtype.fs_args)
         (List.length func.Rc_caesium.Syntax.args));
  (* RC-L010: unused rc::parameters binders *)
  let used =
    List.fold_left
      (fun acc (_, inv) -> SS.union acc (fv_inv inv))
      (let bound_free =
         (* free variables of the spec body *without* removing the
            parameters themselves *)
         List.fold_left
           (fun acc t -> SS.union acc (fv_rtype t))
           (union3
              (fv_hres_list spec.Rtype.fs_pre)
              (fv_hres_list spec.Rtype.fs_post)
              (fv_rtype spec.Rtype.fs_ret))
           spec.Rtype.fs_args
       in
       bound_free)
      invs
  in
  List.iter
    (fun (x, _) ->
      if not (SS.mem x used) then
        emit "RC-L010"
          ~hint:
            (Printf.sprintf
               "remove '%s' from rc::parameters, or use it in the spec" x)
          (Printf.sprintf
             "spec parameter '%s' of %s is never used in the specification \
              or its loop invariants"
             x name))
    spec.Rtype.fs_params;
  (* RC-L011: duplicate annotation content *)
  List.iter
    (fun x ->
      emit "RC-L011"
        (Printf.sprintf "spec parameter '%s' of %s is bound twice" x name))
    (dup_names (List.map fst spec.Rtype.fs_params));
  List.iter
    (fun x ->
      emit "RC-L011"
        (Printf.sprintf "rc::exists binder '%s' of %s is bound twice" x name))
    (dup_names (List.map fst spec.Rtype.fs_exists));
  List.iter
    (fun h ->
      emit "RC-L011"
        (Printf.sprintf "precondition of %s states '%s' twice" name h))
    (dup_hres spec.Rtype.fs_pre);
  List.iter
    (fun h ->
      emit "RC-L011"
        (Printf.sprintf "postcondition of %s states '%s' twice" name h))
    (dup_hres spec.Rtype.fs_post);
  List.iter
    (fun (label, (inv : Rc_refinedc.Lang.loop_inv)) ->
      List.iter
        (fun x ->
          emit "RC-L011"
            (Printf.sprintf
               "loop invariant at block %s of %s lists variable '%s' twice"
               label name x))
        (dup_names (List.map fst inv.Rc_refinedc.Lang.li_vars)))
    invs;
  (* RC-L012: unsatisfiable pure precondition *)
  let pure_pre =
    List.filter_map
      (function Rtype.HProp p -> Some p | Rtype.HAtom _ -> None)
      spec.Rtype.fs_pre
  in
  if pure_pre <> [] then begin
    let reg = session.Rc_refinedc.Session.registry in
    let hyps =
      pure_pre
      @ List.concat_map Rc_refinedc.Typecheck.pure_facts_of_arg
          spec.Rtype.fs_args
    in
    let simped =
      Simp.simp_prop ~hooks:reg.Registry.hooks (Term.conj pure_pre)
    in
    if simped = PFalse || Registry.default_prove reg ~hyps PFalse then
      emit "RC-L012"
        ~hint:"no call site can satisfy this spec; every proof is vacuous"
        (Printf.sprintf
           "the pure precondition of %s is unsatisfiable (it simplifies to \
            False)"
           name)
  end;
  List.rev !diags

(** Per-file spec coverage: (functions with a spec, functions with a
    body).  The per-function "has no specification" notes themselves are
    emitted by the frontend (RC-L014) where the declaration locations
    are known. *)
let coverage ~(funcs : (string * Rc_caesium.Syntax.func) list)
    ~(to_check : Rc_refinedc.Typecheck.fn_to_check list) : int * int =
  (List.length to_check, List.length funcs)

let run (session : Rc_refinedc.Session.t)
    (to_check : Rc_refinedc.Typecheck.fn_to_check list) : Diagnostic.t list =
  List.concat_map (run_fn session) to_check

(** The stable embedding API for RefinedC-as-a-library.

    A host (IDE server, build tool, test harness) interacts with the
    checker through exactly two notions:

    - a {e session} ({!Rc_refinedc.Session.t}): one immutable,
      self-contained checking configuration — typing rules, solver/lemma
      registry, simplifier hooks, goal-simp and ablation switches, the
      named-type environment, the resource budget and (optionally) a
      fault-injection campaign.  Sessions are values: building one has no
      side effects on any other session, and any number can coexist in
      one process — including concurrently, from multiple domains.
    - the checking entry points {!check_file} / {!check_source} /
      {!check_function}, each of which takes the session explicitly.

    There is deliberately no [init]/[setup]/[register_*] surface: every
    piece of configuration travels inside the session argument, which is
    what makes the pipeline reentrant (see README "Architecture"). *)

module Session = Rc_refinedc.Session
module Driver = Rc_frontend.Driver

type session = Session.t

(** Build a session.

    [~case_studies:true] pre-loads the expert library of
    {!Rc_studies.Studies} (spinlock/barrier/allocator/mpool named types,
    the hashmap and BST lemma sets, the [rev] simplifier hook) — the
    configuration under which the paper's §7 corpus is checked.  The
    remaining parameters layer on top of (or, for [?hooks], replace)
    that base:

    - [rules]: extra typing rules appended to the standard library;
    - [solvers]: extra named side-condition solvers;
    - [lemmas]: extra manual lemmas;
    - [hooks]: simplifier hooks (overrides the case-study hooks);
    - [default_only]: ablation — disable named solvers and lemmas;
    - [no_goal_simp]: ablation — disable goal simplification;
    - [type_defs]: named-type definitions to pre-register;
    - [budget]: per-function resource limits;
    - [fault]: a fault-injection campaign (testing only);
    - [obs]: observability switches — [{c_trace; c_metrics}] enables
      proof-search tracing and/or the metrics registry for every check
      run under the session (see README "Observability");
    - [lint]: static-analysis configuration (enabled passes, werror) —
      see README "Static analysis";
    - [exec]: execution-robustness configuration — the persistent
      supervised worker pool, whole-run deadline, transient-fault retry
      allowance and cooperative-cancellation poll (see README
      "Robustness & degradation").  [deadline]/[retries]/[pool]/[cancel]
      are conveniences that build it field-wise;
    - [memo]: enable within-run subgoal memoization ([--memo]) — see
      README "Engine speed";
    - [incremental]: cone-keyed incremental caching and cost-ordered
      dirty scheduling (on by default) — [Some false] reverts to the
      legacy whole-file cache key and source-order dispatch (see README
      "Incremental verification");
    - [forensics]: attach a bounded derivation snapshot (goal stack,
      candidate rules with rejection reasons, evar state, recent rule
      applications) to every failure report ([--explain-failure]) — see
      README "Observability";
    - [profile]: accumulated rule-hit counts ([--pgo]) used to order
      equal-priority rules inside each head bucket. *)
let create_session ?(case_studies = false) ?(rules = []) ?(solvers = [])
    ?(lemmas = []) ?hooks ?(default_only = false) ?(no_goal_simp = false)
    ?(type_defs = []) ?budget ?fault ?obs ?lint ?exec ?deadline ?retries ?pool
    ?cancel ?memo ?incremental ?forensics ?profile () : session =
  let hooks =
    match hooks with
    | Some h -> h
    | None ->
        if case_studies then Rc_studies.Studies.hooks
        else Rc_pure.Simp.no_hooks
  in
  let lemmas =
    (if case_studies then Rc_studies.Studies.lemmas else []) @ lemmas
  in
  let registry =
    Rc_pure.Registry.create ~solvers ~lemmas ~default_only ~hooks ?fault ()
  in
  let gs =
    { Rc_lithium.Evar.default_simp_cfg with gs_no_goal_simp = no_goal_simp }
  in
  let tenv = Rc_refinedc.Rtype.create_tenv () in
  if case_studies then Rc_studies.Studies.install_types tenv;
  List.iter (Rc_refinedc.Rtype.register_type_def tenv) type_defs;
  let exec =
    let base = Option.value exec ~default:Session.default_exec in
    {
      Session.x_deadline =
        (match deadline with Some _ -> deadline | None -> base.Session.x_deadline);
      x_retries = Option.value retries ~default:base.Session.x_retries;
      x_pool = (match pool with Some _ -> pool | None -> base.Session.x_pool);
      x_cancel =
        (match cancel with Some _ -> cancel | None -> base.Session.x_cancel);
    }
  in
  let memo =
    match memo with
    | Some true -> Some { Session.default_memo with Session.mm_enabled = true }
    | Some false | None -> None
  in
  let inc =
    Option.map
      (fun on -> { Session.default_inc with Session.in_enabled = on })
      incremental
  in
  let fx =
    Option.map
      (fun on -> { Session.default_fx with Session.f_enabled = on })
      forensics
  in
  Session.create ~rules ~registry ~gs ~tenv ?budget ?obs ?lint ~exec ?memo
    ?inc ?fx ?profile ()

(** Check every specified function of a C file under [session]. *)
let check_file ?session ?fail_fast ?jobs ?cache (path : string) : Driver.t =
  Driver.check_file ?session ?fail_fast ?jobs ?cache path

(** The file's function-level dependency graph (always built; see
    {!Rc_refinedc.Depgraph}).  Hosts use it for impact queries — e.g.
    {!Rc_refinedc.Depgraph.cone} [g [f]] is every function a spec edit
    of [f] can dirty. *)
let dependency_graph (t : Driver.t) : Rc_refinedc.Depgraph.t =
  t.Driver.graph

(** The dirty functions of the last check in dispatch order (cost-model
    descending, topological fallback); cache hits are not scheduled. *)
let schedule (t : Driver.t) : string list = t.Driver.schedule

(** Check every specified function of an in-memory C source. *)
let check_source ?session ?fail_fast ?jobs ?cache ~file (src : string) :
    Driver.t =
  Driver.check_source ?session ?fail_fast ?jobs ?cache ~file src

exception Unknown_function of string

(** Check a single function of an in-memory C source, by name.  Raises
    {!Unknown_function} if [name] has no specification in [src], and
    {!Driver.Frontend_error} on parse/elaboration errors. *)
let check_function ?session ~file ~(name : string) (src : string) :
    (Rc_refinedc.Lang.E.result, Rc_lithium.Report.t) result =
  let session =
    match session with Some s -> s | None -> Session.create ()
  in
  let elaborated = Driver.parse_and_elab ~session ~file src in
  let specs =
    List.map
      (fun (f : Rc_refinedc.Typecheck.fn_to_check) ->
        (f.spec.Rc_refinedc.Rtype.fs_name, f.spec))
      elaborated.Rc_frontend.Elab.to_check
  in
  match
    List.find_opt
      (fun (f : Rc_refinedc.Typecheck.fn_to_check) ->
        f.spec.Rc_refinedc.Rtype.fs_name = name)
      elaborated.Rc_frontend.Elab.to_check
  with
  | None -> raise (Unknown_function name)
  | Some f -> Driver.check_fn_isolated ~session ~specs f

(** The function-level dependency graph behind incremental verification.

    RefinedC's checking is compositional by construction: verifying one
    function consults, besides the session configuration, exactly its
    own Caesium body, its own specification and loop invariants, and the
    specifications of the functions it *directly* references (the
    [fc_specs] lookups happen only at [FnAddr f] expressions and at
    [VarLoc x] names that are not stack slots — see [Rules_expr] and
    [Rules_stmt.direct_callee]).  This module makes that input cone
    explicit: a per-file graph whose nodes carry content digests of the
    body/invariants and of the exported interface (the spec signature),
    and whose edges are the direct spec-level dependencies.

    The graph is what the driver keys the verification cache on
    ({!components}): a function's cache key digests its own body + spec
    + invariants and the *interface* digests of its direct callees —
    nothing else from the file.  That gives early cutoff for free: a
    callee body edit that leaves its spec signature unchanged does not
    appear anywhere in a caller's key, so the caller's entry still hits.
    Transitive dependencies are covered inductively — if a transitive
    callee's spec moves, the direct callee re-verifies (its own key
    changed) while the caller is untouched, exactly mirroring how the
    checker itself only ever reads one level of specs. *)

module Syntax = Rc_caesium.Syntax
module SS = Set.Make (String)

type node = {
  n_name : string;
  n_index : int;  (** position in source order *)
  n_deps : string list;
      (** direct dependencies: spec'd siblings this function's body or
          spec references, sorted, self-reference removed *)
  n_body_digest : string;  (** Caesium body + loop invariants *)
  n_iface_digest : string;
      (** the exported interface: the spec signature — the only part of
          this function a caller's check can observe *)
}

type t = {
  nodes : (string * node) list;  (** in source order *)
  rdeps : (string * string list) list;
      (** reverse edges: function ↦ its direct callers, sorted *)
}

(* ---- direct-reference extraction --------------------------------- *)

(* Names a body can resolve against the sibling spec table: [FnAddr f]
   anywhere, and [VarLoc x] where [x] is not a stack slot (the expr rule
   falls through to [fc_specs] exactly then). *)
let rec refs_of_expr ~slots (acc : SS.t) (e : Syntax.expr) : SS.t =
  match e with
  | Syntax.FnAddr f -> SS.add f acc
  | Syntax.VarLoc x -> if SS.mem x slots then acc else SS.add x acc
  | Syntax.IntConst _ | Syntax.NullConst -> acc
  | Syntax.Use { arg; _ }
  | Syntax.FieldOfs { arg; _ }
  | Syntax.UnOp { arg; _ }
  | Syntax.CastIntInt { arg; _ }
  | Syntax.CastPtrPtr arg ->
      refs_of_expr ~slots acc arg
  | Syntax.BinOp { e1; e2; _ } ->
      refs_of_expr ~slots (refs_of_expr ~slots acc e1) e2

let refs_of_stmt ~slots (acc : SS.t) (s : Syntax.stmt) : SS.t =
  let e = refs_of_expr ~slots in
  match s with
  | Syntax.Assign { lhs; rhs; _ } -> e (e acc lhs) rhs
  | Syntax.Call { dest; fn; args } ->
      let acc = match dest with Some (_, d) -> e acc d | None -> acc in
      List.fold_left (fun acc (_, a) -> e acc a) (e acc fn) args
  | Syntax.Cas { obj; expected; desired; dest; _ } ->
      let acc = match dest with Some (_, d) -> e acc d | None -> acc in
      e (e (e acc obj) expected) desired
  | Syntax.Skip -> acc
  | Syntax.ExprStmt x | Syntax.Free x -> e acc x

let refs_of_term ~slots (acc : SS.t) (term : Syntax.terminator) : SS.t =
  match term with
  | Syntax.Goto _ | Syntax.Unreachable | Syntax.Return None -> acc
  | Syntax.CondGoto { cond; _ } -> refs_of_expr ~slots acc cond
  | Syntax.Switch { scrut; _ } -> refs_of_expr ~slots acc scrut
  | Syntax.Return (Some e) -> refs_of_expr ~slots acc e

let refs_of_func (f : Syntax.func) : SS.t =
  let slots =
    SS.of_list (List.map fst (f.Syntax.args @ f.Syntax.locals))
  in
  List.fold_left
    (fun acc (_, (b : Syntax.block)) ->
      refs_of_term ~slots
        (List.fold_left (refs_of_stmt ~slots) acc b.Syntax.stmts)
        b.Syntax.term)
    SS.empty f.Syntax.blocks

(* Spec-level references: [TFnPtr] types name sibling functions (the
   subsumption rule compares them nominally, and the checker resolves
   the name against [fc_specs]); a spec or invariant mentioning [fn<g>]
   therefore depends on [g]'s interface like a call site does. *)
let rec refs_of_rtype (acc : SS.t) (ty : Rtype.rtype) : SS.t =
  match ty with
  | Rtype.TFnPtr s -> refs_of_spec (SS.add s.Rtype.fs_name acc) s
  | Rtype.TInt _ | Rtype.TBool _ | Rtype.TNull | Rtype.TPtrV _
  | Rtype.TUninit _ | Rtype.TAnyInt _ | Rtype.TArrayInt _
  | Rtype.TNamed _ | Rtype.TManaged _ ->
      acc
  | Rtype.TOwn (_, ty) | Rtype.TConstr (ty, _) | Rtype.TPadded (ty, _) ->
      refs_of_rtype acc ty
  | Rtype.TOptional (_, t1, t2) -> refs_of_rtype (refs_of_rtype acc t1) t2
  | Rtype.TStruct (_, tys) -> List.fold_left refs_of_rtype acc tys
  | Rtype.TWand (a, ty) -> refs_of_rtype (refs_of_atom acc a) ty
  | Rtype.TExists (x, s, f) ->
      refs_of_rtype acc (f (Rc_pure.Term.Var (x, s)))
  | Rtype.TAtomicBool (_, _, h1, h2) ->
      refs_of_hres_list (refs_of_hres_list acc h1) h2

and refs_of_atom acc = function
  | Rtype.LocTy (_, ty) | Rtype.ValTy (_, ty) -> refs_of_rtype acc ty

and refs_of_hres acc = function
  | Rtype.HAtom a -> refs_of_atom acc a
  | Rtype.HProp _ -> acc

and refs_of_hres_list acc hs = List.fold_left refs_of_hres acc hs

and refs_of_spec acc (s : Rtype.fn_spec) : SS.t =
  refs_of_rtype
    (refs_of_hres_list
       (refs_of_hres_list (List.fold_left refs_of_rtype acc s.Rtype.fs_args)
          s.Rtype.fs_pre)
       s.Rtype.fs_post)
    s.Rtype.fs_ret

let refs_of_invs (invs : (string * Lang.loop_inv) list) : SS.t =
  List.fold_left
    (fun acc (_, (i : Lang.loop_inv)) ->
      List.fold_left (fun acc (_, ty) -> refs_of_rtype acc ty) acc
        i.Lang.li_vars)
    SS.empty invs

(* ---- digests ------------------------------------------------------ *)

let digest (s : string) : string = Digest.to_hex (Digest.string s)

let body_digest (ftc : Typecheck.fn_to_check) : string =
  digest
    (Syntax.show_func ftc.Typecheck.func
    ^ "\x00" ^ Typecheck.invs_signature ftc.Typecheck.invs)

let iface_digest (ftc : Typecheck.fn_to_check) : string =
  digest (Rtype.spec_signature ftc.Typecheck.spec)

(* ---- graph construction ------------------------------------------- *)

(** Build the dependency graph of one elaborated file.  Only references
    to *specified* siblings become edges: a call to an unknown name is
    unprovable, fails, and failures are never cached — so the name's
    later appearance re-verifies the caller anyway.  (Appearing or
    disappearing edges change a function's component *list*, which is
    itself part of its cache key.) *)
let build (fns : Typecheck.fn_to_check list) : t =
  let spec'd =
    SS.of_list
      (List.map (fun f -> f.Typecheck.spec.Rtype.fs_name) fns)
  in
  let nodes =
    List.mapi
      (fun i (f : Typecheck.fn_to_check) ->
        let name = f.Typecheck.spec.Rtype.fs_name in
        let refs =
          SS.union
            (refs_of_func f.Typecheck.func)
            (SS.union
               (refs_of_spec SS.empty f.Typecheck.spec)
               (refs_of_invs f.Typecheck.invs))
        in
        let deps =
          SS.elements (SS.remove name (SS.inter refs spec'd))
        in
        ( name,
          {
            n_name = name;
            n_index = i;
            n_deps = deps;
            n_body_digest = body_digest f;
            n_iface_digest = iface_digest f;
          } ))
      fns
  in
  let rdeps_tbl = Hashtbl.create 16 in
  List.iter
    (fun (name, node) ->
      List.iter
        (fun dep ->
          Hashtbl.replace rdeps_tbl dep
            (name
            :: Option.value ~default:[] (Hashtbl.find_opt rdeps_tbl dep)))
        node.n_deps)
    nodes;
  let rdeps =
    List.map
      (fun (name, _) ->
        ( name,
          List.sort compare
            (Option.value ~default:[] (Hashtbl.find_opt rdeps_tbl name)) ))
      nodes
  in
  { nodes; rdeps }

let node (g : t) (name : string) : node option = List.assoc_opt name g.nodes
let names (g : t) : string list = List.map fst g.nodes

(** Direct dependencies (spec'd functions this one references). *)
let direct_deps (g : t) (name : string) : string list =
  match node g name with Some n -> n.n_deps | None -> []

(** Direct dependents (spec'd functions that reference this one). *)
let dependents (g : t) (name : string) : string list =
  Option.value ~default:[] (List.assoc_opt name g.rdeps)

(** Dependency-respecting order: callees before callers, source order
    within a stratum; cycles (mutual recursion) are broken at the
    source-order-first member.  This is the cold-run scheduling
    fallback — it is also simply a deterministic order. *)
let topo_order (g : t) : string list =
  let visiting = Hashtbl.create 16 and done_ = Hashtbl.create 16 in
  let out = ref [] in
  let rec visit name =
    if (not (Hashtbl.mem done_ name)) && not (Hashtbl.mem visiting name)
    then begin
      Hashtbl.replace visiting name ();
      List.iter visit (direct_deps g name);
      Hashtbl.remove visiting name;
      Hashtbl.replace done_ name ();
      out := name :: !out
    end
  in
  List.iter (fun (name, _) -> visit name) g.nodes;
  List.rev !out

(** The *dirty cone* of an interface change: the transitive dependents
    of [roots], roots included, in source order.  This is what a spec
    edit can at most re-verify; a body edit's cone is just the root
    (early cutoff — bodies are invisible to callers). *)
let cone (g : t) (roots : string list) : string list =
  let seen = Hashtbl.create 16 in
  let rec visit name =
    if not (Hashtbl.mem seen name) then begin
      Hashtbl.replace seen name ();
      List.iter visit (dependents g name)
    end
  in
  List.iter visit roots;
  List.filter (Hashtbl.mem seen) (names g)

(* ---- cache-key components ----------------------------------------- *)

(** The named component digests of one function's verification inputs —
    the dependency-cone cache key.  Order is fixed (config, budget,
    body, spec, invariants, then callees sorted by name) so the digested
    concatenation is deterministic; the component *names* let a miss be
    explained by diffing against the last stored manifest
    ({!Rc_util.Vercache.find_keyed}). *)
let components ~(session : Session.t) (g : t) (ftc : Typecheck.fn_to_check) :
    (string * string) list =
  let name = ftc.Typecheck.spec.Rtype.fs_name in
  let n =
    match node g name with
    | Some n -> n
    | None ->
        (* a function checked outside its file graph (API single-function
           checks): degrade to an edgeless node — correct, never stale,
           just without sibling sharing *)
        {
          n_name = name;
          n_index = 0;
          n_deps = [];
          n_body_digest = body_digest ftc;
          n_iface_digest = iface_digest ftc;
        }
  in
  [
    ("config", Typecheck.toolchain_fingerprint session);
    ("budget", Typecheck.budget_signature session.Session.budget);
    ("body", n.n_body_digest);
    ("spec", n.n_iface_digest);
  ]
  @ List.filter_map
      (fun dep ->
        Option.map
          (fun dn -> ("callee:" ^ dep, dn.n_iface_digest))
          (node g dep))
      n.n_deps

(** The stable cache identity of one function: what the manifest (the
    miss explainer) is keyed on.  Per (file, function) so two files
    defining the same name do not fight over one manifest. *)
let cache_id ~(file : string) (name : string) : string =
  Rc_util.Vercache.fingerprint [ "rc-cone-id"; file; name ]

(** The verification session: one self-contained, immutable checking
    context.

    Everything that used to live in process-global mutable tables — the
    compiled typing-rule index, the solver/lemma registry and its
    simplifier hooks, the goal-simplification rules, the ablation
    switches, the named-type environment, the fault-injection campaign
    and the resource budget — is bundled here, built once per [check]
    invocation and threaded explicitly through driver → typechecker →
    Lithium engine → pure solvers → certificate checker.

    Consequences, by construction rather than by discipline:
    - [-j N] checking is race-free: domains share one session read-only;
    - two sessions with different rule sets, solvers or ablations can
      run concurrently in one process with independent verdicts/stats;
    - a long-lived server can hold many sessions without cross-talk. *)

(** Static-analysis (lint) configuration.  Plain data — pass *names*
    rather than pass closures — so the session layer stays independent
    of the analysis library; names are resolved by the lint registry in
    the driver.  The configuration is part of the session because it is
    part of the verdict surface: [l_werror] changes exit codes, and the
    whole record is fingerprinted into the verification-cache key. *)
type lint_cfg = {
  l_enabled : bool;  (** run the lint pre-pass during [check] *)
  l_passes : string list option;  (** [None] = every registered pass *)
  l_werror : bool;  (** problem diagnostics fail the run *)
}

let default_lint : lint_cfg =
  { l_enabled = true; l_passes = None; l_werror = false }

(** Execution-robustness configuration: how a run is *scheduled*, not
    what it *means*.  Deliberately not fingerprinted into the
    verification-cache key: only [Ok] verdicts are cached, and verdicts
    are monotone in execution generosity (a deadline or retry policy can
    only turn results into [skipped]/[Checker_fault], which are never
    cached), so two runs differing only in [exec] can safely share
    entries. *)
type exec_cfg = {
  x_deadline : float option;
      (** whole-run wall-clock budget (seconds, monotonic clock); hit it
          and remaining functions are reported [skipped] *)
  x_retries : int;  (** re-attempts per function for transient faults *)
  x_pool : Rc_util.Supervisor.t option;
      (** the persistent supervised worker pool; [None] makes the driver
          run sequentially (or spin up a transient pool for [-j N>1]).
          The handle is owned by whoever created the session — the pool
          outlives individual [check] calls, which is the whole point. *)
  x_cancel : (unit -> bool) option;
      (** cooperative cancellation, polled between functions (the CLI
          wires its SIGINT/SIGTERM flag here) *)
}

let default_exec : exec_cfg =
  { x_deadline = None; x_retries = 0; x_pool = None; x_cancel = None }

(** Engine speed configuration ([--memo]): within-run subgoal
    memoization.  Part of the session because it is part of the *proof
    search* configuration — it never changes verdicts (the engine
    revalidates every Γ interaction before accepting a hit), but it does
    change derivation sharing, so the certificate path refuses it (the
    driver disables memoization under [--cert]). *)
type memo_cfg = {
  mm_enabled : bool;
  mm_max : int;  (** per-function memo-table bound *)
  mm_hashcons : bool;
      (** id-indexed head dispatch (on by default; the benchmark harness
          turns it off to measure the string-keyed baseline) *)
}

let default_memo : memo_cfg =
  { mm_enabled = false; mm_max = 4096; mm_hashcons = true }

(** Incremental-verification configuration: how the driver keys the
    on-disk cache and schedules dirty work.  Like {!exec_cfg} this never
    changes verdicts — cone keying decides what is *re-verified*, and
    the early-cutoff argument (DESIGN.md §12) shows the cone covers
    every input a check reads — but unlike [exec] the choice of key
    *family* is visible in the cache directory, so incremental and
    whole-file entries never alias (the keys carry distinct tags). *)
type inc_cfg = {
  in_enabled : bool;
      (** cone-keyed entries + cost-ordered dirty scheduling (default);
          off = legacy whole-file spec-digest keys in source order *)
  in_explain : bool;
      (** collect per-function dirty reasons even when not printed (the
          driver always records them; this gates the CLI's report) *)
}

let default_inc : inc_cfg = { in_enabled = true; in_explain = false }

(** Proof-failure forensics configuration ([--explain-failure]): when
    enabled, the engine attaches a bounded derivation snapshot — goal
    stack, candidate rules with rejection reasons, evar state, recent
    rule applications — to every failure report.  Like {!exec_cfg} it is
    not fingerprinted into the verification-cache key: only [Ok]
    verdicts are cached, failures (the only reports that carry
    forensics) never are, so two runs differing only in [fx] can share
    entries. *)
type fx_cfg = {
  f_enabled : bool;
  f_limits : Rc_lithium.Report.fx_limits;  (** capture depth/width caps *)
}

let default_fx : fx_cfg =
  { f_enabled = false; f_limits = Rc_lithium.Report.default_fx_limits }

type t = {
  index : Lang.E.index;  (** compiled typing rules (head-indexed) *)
  extra_rules : Lang.E.rule list;
      (** the session rules beyond the standard library (kept so the
          certificate checker can enumerate the declared rule set) *)
  registry : Rc_pure.Registry.t;
      (** named solvers, manual lemmas, simplifier hooks, the
          default-only ablation, and the fault campaign *)
  gs : Rc_lithium.Evar.simp_cfg;  (** goal-simplification configuration *)
  tenv : Rtype.tenv;  (** named-type definitions (rc::refined_by …) *)
  budget : Rc_util.Budget.limits;  (** per-function resource budget *)
  obs : Rc_util.Obs.cfg;
      (** observability switches (tracing / metrics).  The session holds
          only the immutable *configuration*; the mutable trace buffers
          and metric registries are minted per check by the driver, one
          per function, so shared-session [-j N] runs stay race-free. *)
  lint : lint_cfg;  (** pre-verification static analysis configuration *)
  exec : exec_cfg;  (** execution robustness: pool, deadline, retries *)
  memo : memo_cfg;  (** within-run subgoal memoization *)
  inc : inc_cfg;  (** incremental verification: cone keys + scheduling *)
  fx : fx_cfg;  (** proof-failure forensics capture *)
  profile : (string * int) list;
      (** the rule-hit profile the index was compiled with ([--pgo]);
          kept for reporting — the dispatch effect lives in [index] *)
}

(** Build a session.  Omitted components default to the standard
    library / empty environments, so [create ()] is the stock RefinedC
    configuration.  Construction is pure apart from allocating the
    session's own (initially empty) type environment. *)
let create ?(rules = []) ?(registry = Rc_pure.Registry.default)
    ?(gs = Rc_lithium.Evar.default_simp_cfg) ?tenv
    ?(budget = Rc_util.Budget.unlimited) ?(obs = Rc_util.Obs.cfg_off)
    ?(lint = default_lint) ?(exec = default_exec) ?(memo = default_memo)
    ?(inc = default_inc) ?(fx = default_fx) ?(profile = []) () : t =
  {
    index = Rules.make ~extra:rules ~profile ();
    extra_rules = rules;
    registry;
    gs;
    tenv = (match tenv with Some te -> te | None -> Rtype.create_tenv ());
    budget;
    obs;
    lint;
    exec;
    memo;
    inc;
    fx;
    profile;
  }

let fault (s : t) : Rc_util.Faultsim.t option = s.registry.Rc_pure.Registry.fault

(** Replace the fault campaign (campaigns are per-session by design). *)
let with_fault (s : t) f : t =
  { s with registry = Rc_pure.Registry.with_fault s.registry f }

let with_budget (s : t) budget : t = { s with budget }

(** Replace the observability configuration (a CLI convenience, like
    {!with_budget}). *)
let with_obs (s : t) obs : t = { s with obs }

(** Replace the lint configuration (a CLI convenience, like
    {!with_budget}). *)
let with_lint (s : t) lint : t = { s with lint }

(** Replace the execution-robustness configuration (a CLI convenience,
    like {!with_budget}). *)
let with_exec (s : t) exec : t = { s with exec }

(** Replace the memoization configuration (a CLI convenience, like
    {!with_budget}). *)
let with_memo (s : t) memo : t = { s with memo }

(** Replace the incremental-verification configuration (a CLI
    convenience, like {!with_budget}). *)
let with_inc (s : t) inc : t = { s with inc }

(** Replace the forensics configuration (a CLI convenience, like
    {!with_budget}). *)
let with_fx (s : t) fx : t = { s with fx }

(** Shared helpers for the typing-rule library. *)

open Rc_pure
open Rc_pure.Term
module G = Rc_lithium.Goal
module Layout = Rc_caesium.Layout
module Int_type = Rc_caesium.Int_type
open Rtype
open Lang

type ri = Lang.E.rule_input

(** Value sort for a fresh value of this type. *)
let rec value_sort = function
  | TInt _ | TBool _ | TAnyInt _ -> Sort.Int
  | TNull | TPtrV _ | TOwn _ | TOptional _ | TNamed _ -> Sort.Loc
  | TConstr (t, _) -> value_sort t
  | TExists (x, s, f) -> value_sort (f (Var (x, s)))
  | _ -> Sort.Loc

(** Boolean value term: booleans are represented by the integer 1/0
    reflecting the proposition. *)
let bool_term (phi : prop) = Ite (phi, Num 1, Num 0)

(** Normalize a value's type for storage at a scalar place: packed
    ownership stays in Δ as a value atom, the place remembers only which
    value it stores. *)
let place_type (v : term) (vty : rtype) : rtype =
  match vty with
  | TInt _ | TBool _ | TAnyInt _ | TNull | TPtrV _ -> vty
  | TOwn (Some l, _) -> TPtrV l
  | TOwn (None, _) -> TPtrV v
  | TOptional _ | TNamed _ | TFnPtr _ | TWand _ -> TPtrV v
  | _ -> TPtrV v

(** Does [l] point into the object at [base] (syntactically)?  Returns the
    byte-offset term when it does. *)
let offset_from ~(base : term) (l : term) : term option =
  if equal_term base l then Some (Num 0)
  else
    match l with
    | LocOfs (b, o) when equal_term b base -> Some o
    | _ -> None

(** Symbolic offset from [from_] to [l] when both share a base location
    (nested offsets are flattened by the simplifier, so at most one
    [LocOfs] layer occurs). *)
let offset_between ~(from_ : term) (l : term) : term option =
  if equal_term from_ l then Some (Num 0)
  else
    let split = function LocOfs (b, o) -> (b, Some o) | b -> (b, None) in
    let base_f, off_f = split from_ and base_l, off_l = split l in
    if equal_term base_f base_l then
      match (off_f, off_l) with
      | None, Some o -> Some (Simp.simp_term o)
      | Some o1, Some o2 -> Some (Simp.simp_term (Sub (o2, o1)))
      | Some o1, None -> Some (Simp.simp_term (Sub (Num 0, o1)))
      | None, None -> Some (Num 0)
    else None

(** Extract an array index from a byte offset produced by pointer
    arithmetic with element size [sz]: [i * sz] or a literal multiple. *)
let index_of_offset ~(sz : int) (off : term) : term option =
  match Simp.simp_term off with
  | Num k when k mod sz = 0 -> Some (Num (k / sz))
  | Mul (Num k, i) when k = sz -> Some i
  | Mul (i, Num k) when k = sz -> Some i
  | off when sz = 1 -> Some off
  | _ -> None

(** The layout a scalar rtype is stored at, when determined. *)
let layout_of_scalar = function
  | TInt (it, _) | TBool (it, _) | TAnyInt it -> Some (Layout.Int it)
  | TNull | TPtrV _ | TOwn _ | TOptional _ | TNamed _ -> Some Layout.Ptr
  | TFnPtr _ -> Some Layout.FnPtr
  | _ -> None

let is_ptr_layout = function
  | Layout.Ptr | Layout.FnPtr -> true
  | _ -> false

(** [size_matches layout ty]: side condition that [ty] occupies exactly
    the bytes of [layout] (used by read/write rules). *)
let size_matches (te : tenv) (layout : Layout.t) (ty : rtype) : prop =
  match ty_size te ty with
  | Some sz -> PEq (sz, Num (Layout.size layout))
  | None -> PFalse

(** An [uninit<n>] atom, suppressed when [n] is literally zero (zero-size
    atoms would shadow the real atom for the same location). *)
let luninit (l : Rc_pure.Term.term) (n : Rc_pure.Term.term) :
    (Lang.f, Rtype.atom) G.left =
  match Rc_pure.Simp.simp_term n with
  | Num 0 -> G.LTrue
  | n -> G.LAtom (Rtype.LocTy (l, Rtype.TUninit n))

(** Fresh value variable for reads/calls. *)
let fresh_val (ri : ri) ?(hint = "v") (s : Sort.t) : term =
  ri.Lang.E.ri_fresh ~hint s

(* ------------------------------------------------------------------ *)
(* Null-testing a pointer value (the engine of O-OPTIONAL-EQ, §6)      *)
(* ------------------------------------------------------------------ *)

(** [optional_cases ri v ty ~on_own ~on_null] builds the premise of every
    rule that branches on whether pointer value [v] is NULL:

    - if Δ holds packed conditional ownership [v ◁ᵥ φ @ optional<τ₁,τ₂>]
      (directly or behind a named type), consume it and fork: the φ case
      learns [v ◁ᵥ τ₁] (decomposed into Δ), the ¬φ case learns [v = NULL];
    - if the context already proves [v ≠ NULL] (definite own pointer) or
      [v = NULL], pick the corresponding case outright — the choices are
      equivalent, so this does not compromise the no-backtracking
      discipline.

    Returns [None] when nullness cannot be decided (a genuine type
    error). *)
let optional_cases (ri : ri) (v : Rc_pure.Term.term) (ty : Rtype.rtype)
    ~(on_own : unit -> Lang.goal) ~(on_null : unit -> Lang.goal) :
    Lang.goal option =
  let open Rtype in
  let te = ri.Lang.E.ri_env in
  let rec unfold_to_opt t =
    match t with
    | TOptional (phi, t1, t2) -> Some (phi, t1, t2)
    | TNamed (n, args) -> Option.bind (unfold_named te n args) unfold_to_opt
    | TConstr (t, _) -> unfold_to_opt t
    | _ -> None
  in
  let is_packed = function
    | ValTy (w, (TOptional _ | TNamed _)) -> equal_term w v
    | _ -> false
  in
  match ty with
  | TNull -> Some (on_null ())
  | _ when ri.Lang.E.ri_peek is_packed <> None ->
      Some
        (G.Find
           {
             descr = Fmt.str "%a ◁ᵥ optional" Rc_pure.Term.pp_term v;
             pred = (fun _resolve a -> is_packed a);
             cont =
               (fun a ->
                 match a with
                 | ValTy (_, pty) -> (
                     match unfold_to_opt pty with
                     | Some (phi, t1, t2) ->
                         G.AndG
                           [
                             ( Some "case: the pointer is owned (non-NULL)",
                               G.Wand
                                 ( G.LProp phi,
                                   G.Wand (Convert.intro_val te v t1, on_own ())
                                 ) );
                             ( Some "case: the pointer is NULL",
                               G.Wand
                                 ( G.LProp (PNot phi),
                                   G.Wand (Convert.intro_val te v t2, on_null ())
                                 ) );
                           ]
                     | None ->
                         (* packed but not an optional: no case split *)
                         G.Wand (G.LAtom a, on_own ()))
                 | LocTy _ -> assert false);
           })
  | TPtrV l ->
      if ri.Lang.E.ri_prove (p_ne l NullLoc) then Some (on_own ())
      else if ri.Lang.E.ri_prove (PEq (l, NullLoc)) then Some (on_null ())
      else None
  | _ -> None

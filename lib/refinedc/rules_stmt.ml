(** Statement and control-flow rules: block sequencing, assignments,
    calls as statements, conditionals (IF-BOOL / IF-INT of Figure 6),
    switches, gotos with loop invariants, and returns. *)

open Rc_pure
open Rc_pure.Term
module G = Rc_lithium.Goal
module Syntax = Rc_caesium.Syntax
module Int_type = Rc_caesium.Int_type
open Rtype
open Lang
open Convert
open Rule_aux

let mk ~heads name prio apply : E.rule = { E.rname = name; prio; heads = Some heads; apply }

let loc_of (v : term) (ty : rtype) : term =
  match ty with TPtrV l -> l | TNull -> NullLoc | _ -> v

let next_stmt sigma label idx : goal =
  G.Basic (FBlock { sigma; label; idx = idx + 1 })

let goto_goal sigma target : goal = G.Basic (FGoto { sigma; target })

let block_label sigma target = List.assoc_opt target sigma.fc_meta.fm_block_descr

(** Resolve the callee of a [Call] statement when it is a direct call. *)
let direct_callee sigma (fn : Syntax.expr) : fn_spec option =
  match fn with
  | Syntax.FnAddr f | Syntax.VarLoc f -> List.assoc_opt f sigma.fc_specs
  | _ -> None

(* ------------------------------------------------------------------ *)
(* ⊢STMT                                                               *)
(* ------------------------------------------------------------------ *)

let t_block =
  mk ~heads:[ "stmt" ] "T-STMT" 5 (fun ri j ->
      match j with
      | FBlock { sigma; label; idx } -> (
          match Syntax.find_block sigma.fc_func label with
          | None -> None
          | Some block ->
              let src = stmt_loc sigma label idx in
              if idx < List.length block.Syntax.stmts then
                let s = List.nth block.Syntax.stmts idx in
                let continue = next_stmt sigma label idx in
                match s with
                | Syntax.Skip -> Some continue
                | Syntax.ExprStmt e ->
                    Some
                      (G.Basic
                         (FExpr { sigma; expr = e; cont = (fun _ _ -> continue) }))
                | Syntax.Assign { atomic; layout; lhs; rhs } ->
                    Some
                      (G.Basic
                         (FExpr
                            {
                              sigma;
                              expr = rhs;
                              cont =
                                (fun v vty ->
                                  G.Basic
                                    (FExpr
                                       {
                                         sigma;
                                         expr = lhs;
                                         cont =
                                           (fun lv lty ->
                                             G.Basic
                                               (FWriteLoc
                                                  {
                                                    loc_term =
                                                      Simp.simp_term
                                                        (loc_of lv lty);
                                                    layout;
                                                    atomic;
                                                    v;
                                                    vty;
                                                    cont = continue;
                                                    src;
                                                  }));
                                       }));
                            }))
                | Syntax.Call { dest; fn; args } ->
                    let with_spec spec args_vals =
                      G.Basic
                        (FCall
                           {
                             spec;
                             args = List.rev args_vals;
                             cont =
                               (fun rv rty ->
                                 match dest with
                                 | None -> continue
                                 | Some (dl, de) ->
                                     G.Basic
                                       (FExpr
                                          {
                                            sigma;
                                            expr = de;
                                            cont =
                                              (fun lv lty ->
                                                G.Basic
                                                  (FWriteLoc
                                                     {
                                                       loc_term =
                                                         Simp.simp_term
                                                           (loc_of lv lty);
                                                       layout = dl;
                                                       atomic = false;
                                                       v = rv;
                                                       vty = rty;
                                                       cont = continue;
                                                       src;
                                                     }));
                                          }));
                             src;
                           })
                    in
                    let rec eval_args spec acc = function
                      | [] -> with_spec spec acc
                      | (_, e) :: rest ->
                          G.Basic
                            (FExpr
                               {
                                 sigma;
                                 expr = e;
                                 cont =
                                   (fun v ty ->
                                     eval_args spec ((v, ty) :: acc) rest);
                               })
                    in
                    (match direct_callee sigma fn with
                    | Some spec -> Some (eval_args spec [] args)
                    | None ->
                        (* indirect call through a function pointer *)
                        Some
                          (G.Basic
                             (FExpr
                                {
                                  sigma;
                                  expr = fn;
                                  cont =
                                    (fun fv fty ->
                                      match fty with
                                      | TFnPtr spec -> eval_args spec [] args
                                      | TPtrV w ->
                                          (* look the spec up in Δ *)
                                          G.Find
                                            {
                                              descr =
                                                Fmt.str "%a ◁ᵥ fn" pp_term w;
                                              pred =
                                                (fun resolve a ->
                                                  match a with
                                                  | ValTy (w', TFnPtr _) ->
                                                      equal_term
                                                        (resolve w) w'
                                                  | _ -> false);
                                              cont =
                                                (function
                                                | ValTy (_, TFnPtr spec) as a
                                                  ->
                                                    G.Wand
                                                      ( G.LAtom a,
                                                        eval_args spec [] args
                                                      )
                                                | _ -> assert false);
                                            }
                                      | _ ->
                                          ignore fv;
                                          (* not callable: unsolvable goal *)
                                          G.Star (G.LProp PFalse, G.True_));
                                })))
                | Syntax.Cas { layout; obj; expected; desired; dest } -> (
                    match layout with
                    | Rc_caesium.Layout.Int it ->
                        Some
                          (G.Basic
                             (FExpr
                                {
                                  sigma;
                                  expr = obj;
                                  cont =
                                    (fun vo tyo ->
                                      G.Basic
                                        (FExpr
                                           {
                                             sigma;
                                             expr = expected;
                                             cont =
                                               (fun ve tye ->
                                                 G.Basic
                                                   (FExpr
                                                      {
                                                        sigma;
                                                        expr = desired;
                                                        cont =
                                                          (fun vd tyd ->
                                                            G.Basic
                                                              (FCas
                                                                 {
                                                                   it;
                                                                   vobj =
                                                                     loc_of vo
                                                                       tyo;
                                                                   tobj = tyo;
                                                                   vexp =
                                                                     loc_of ve
                                                                       tye;
                                                                   texp = tye;
                                                                   vdes = vd;
                                                                   tdes = tyd;
                                                                   cont =
                                                                     (fun rv
                                                                          rty ->
                                                                       match
                                                                         dest
                                                                       with
                                                                       | None
                                                                         ->
                                                                           continue
                                                                       | Some
                                                                           ( dl,
                                                                             de
                                                                           ) ->
                                                                           G
                                                                           .Basic
                                                                             (FExpr
                                                                                {
                                                                                  sigma;
                                                                                  expr =
                                                                                    de;
                                                                                  cont =
                                                                                    (fun
                                                                                      lv
                                                                                      lty
                                                                                    ->
                                                                                      G
                                                                                      .Basic
                                                                                        (FWriteLoc
                                                                                           {
                                                                                             loc_term =
                                                                                               Simp
                                                                                               .simp_term
                                                                                                 (loc_of
                                                                                                    lv
                                                                                                    lty);
                                                                                             layout =
                                                                                               dl;
                                                                                             atomic =
                                                                                               false;
                                                                                             v =
                                                                                               rv;
                                                                                             vty =
                                                                                               rty;
                                                                                             cont =
                                                                                               continue;
                                                                                             src;
                                                                                           }));
                                                                                }));
                                                                   src;
                                                                 }));
                                                      }));
                                           }));
                                }))
                    | _ -> None)
                | Syntax.Free e ->
                    (* frontend-internal deallocation of a heap object the
                       function owns: consume the (arbitrary) ownership *)
                    Some
                      (G.Basic
                         (FExpr
                            {
                              sigma;
                              expr = e;
                              cont =
                                (fun v ty ->
                                  G.Find
                                    {
                                      descr =
                                        Fmt.str "%a ◁ₗ ? (free)" pp_term
                                          (loc_of v ty);
                                      pred =
                                        (fun resolve a ->
                                          match a with
                                          | LocTy (l, _) ->
                                              equal_term l
                                                (Simp.simp_term
                                                   (resolve (loc_of v ty)))
                                          | _ -> false);
                                      cont = (fun _ -> continue);
                                    });
                            }))
              else
                (* terminator *)
                let src = term_loc sigma label in
                match block.Syntax.term with
                | Syntax.Goto target -> Some (goto_goal sigma target)
                | Syntax.CondGoto { ot = _; cond; if_true; if_false } ->
                    Some
                      (G.Basic
                         (FExpr
                            {
                              sigma;
                              expr = cond;
                              cont =
                                (fun v ty ->
                                  G.Basic
                                    (FIf
                                       {
                                         v;
                                         ty;
                                         gthen = goto_goal sigma if_true;
                                         gelse = goto_goal sigma if_false;
                                         lbl_then = block_label sigma if_true;
                                         lbl_else = block_label sigma if_false;
                                         src;
                                       }));
                            }))
                | Syntax.Switch { ot = _; scrut; cases; default } ->
                    Some
                      (G.Basic
                         (FExpr
                            {
                              sigma;
                              expr = scrut;
                              cont =
                                (fun v ty ->
                                  G.Basic
                                    (FSwitchJ
                                       {
                                         v;
                                         ty;
                                         cases =
                                           List.map
                                             (fun (k, target) ->
                                               (k, goto_goal sigma target))
                                             cases;
                                         dflt = goto_goal sigma default;
                                         src;
                                       }));
                            }))
                | Syntax.Unreachable -> Some (G.Star (G.LProp PFalse, G.True_))
                | Syntax.Return eo -> (
                    let spec = sigma.fc_spec in
                    let wrap_exists mk_body =
                      (* open rc::exists with evars, substituting them in
                         the return type and postcondition *)
                      let rec go acc = function
                        | [] -> mk_body (List.rev acc)
                        | (x, s) :: rest ->
                            G.Ex (x, s, fun t -> go ((x, t) :: acc) rest)
                      in
                      go [] spec.fs_exists
                    in
                    match eo with
                    | None ->
                        Some
                          (wrap_exists (fun env ->
                               require_hres_list ri.E.ri_env
                                 (List.map (subst_hres env) spec.fs_post)
                                 G.True_))
                    | Some e ->
                        Some
                          (G.Basic
                             (FExpr
                                {
                                  sigma;
                                  expr = e;
                                  cont =
                                    (fun v vty ->
                                      G.Wand
                                        ( intro_val ri.E.ri_env v vty,
                                          wrap_exists (fun env ->
                                              require_val ri.E.ri_env v
                                                (subst_rtype env spec.fs_ret)
                                                (require_hres_list ri.E.ri_env
                                                   (List.map (subst_hres env)
                                                      spec.fs_post)
                                                   G.True_)) ));
                                }))))
      | _ -> None)

(* ------------------------------------------------------------------ *)
(* ⊢GOTO: loop invariants                                              *)
(* ------------------------------------------------------------------ *)

let t_goto =
  mk ~heads:[ "goto" ] "T-GOTO" 5 (fun ri j ->
      match j with
      | FGoto { sigma; target } -> (
          match List.assoc_opt target sigma.fc_invs with
          | Some inv ->
              (* prove the invariant: existentials become evars, variable
                 types and constraints are consumed/discharged *)
              let frame =
                Convert.unlisted_frame sigma (List.map fst inv.li_vars)
              in
              let rec go env0 = function
                | [] ->
                    let env = env0 @ sigma.fc_penv in
                    let vars_goal =
                      List.fold_right
                        (fun (x, ty) g ->
                          match List.assoc_opt x sigma.fc_env with
                          | Some l -> require_loc ri.E.ri_env l (subst_rtype env ty) g
                          | None -> g)
                        inv.li_vars
                        (List.fold_right
                           (fun (l, ty) g -> require_loc ri.E.ri_env l ty g)
                           frame
                           (List.fold_right
                              (fun c g ->
                                G.Star (G.LProp (subst_prop env c), g))
                              inv.li_constraints G.True_))
                    in
                    vars_goal
                | (x, s) :: rest ->
                    G.Ex (x, s, fun t -> go ((x, t) :: env0) rest)
              in
              Some (go [] inv.li_exists)
          | None ->
              if sigma.fc_depth > 64 then None
              else
                Some
                  (G.Basic
                     (FBlock
                        {
                          sigma = { sigma with fc_depth = sigma.fc_depth + 1 };
                          label = target;
                          idx = 0;
                        })))
      | _ -> None)

(* ------------------------------------------------------------------ *)
(* ⊢IF (IF-BOOL and IF-INT of Figure 6) and ⊢SWITCH                    *)
(* ------------------------------------------------------------------ *)

let t_if =
  mk ~heads:[ "if" ] "IF-BOOL" 10 (fun _ri j ->
      match j with
      | FIf { ty = TBool (_, phi); gthen; gelse; lbl_then; lbl_else; _ } ->
          Some
            (G.AndG
               [
                 (lbl_then, G.Wand (G.LProp phi, gthen));
                 (lbl_else, G.Wand (G.LProp (PNot phi), gelse));
               ])
      | _ -> None)

let t_if_int =
  mk ~heads:[ "if" ] "IF-INT" 11 (fun _ri j ->
      match j with
      | FIf { ty = TInt (_, n); gthen; gelse; lbl_then; lbl_else; _ } ->
          Some
            (G.AndG
               [
                 (lbl_then, G.Wand (G.LProp (p_ne n (Num 0)), gthen));
                 (lbl_else, G.Wand (G.LProp (PEq (n, Num 0)), gelse));
               ])
      | _ -> None)

(* if (p) on a pointer: the optional split again *)
let t_if_ptr =
  mk ~heads:[ "if" ] "IF-PTR" 12 (fun ri j ->
      match j with
      | FIf { v; ty = (TPtrV _ | TNull | TOptional _ | TNamed _) as ty;
              gthen; gelse; lbl_then; lbl_else; _ } ->
          optional_cases ri v ty
            ~on_own:(fun () ->
              match lbl_then with
              | Some l -> G.AndG [ (Some l, gthen) ]
              | None -> gthen)
            ~on_null:(fun () ->
              match lbl_else with
              | Some l -> G.AndG [ (Some l, gelse) ]
              | None -> gelse)
      | _ -> None)

let t_switch =
  mk ~heads:[ "switch" ] "SWITCH-INT" 10 (fun _ri j ->
      match j with
      | FSwitchJ { ty = TInt (_, n); cases; dflt; _ } ->
          let branches =
            List.map
              (fun (k, g) ->
                ( Some (Printf.sprintf "case %d" k),
                  G.Wand (G.LProp (PEq (n, Num k)), g) ))
              cases
          in
          let not_any =
            conj (List.map (fun (k, _) -> p_ne n (Num k)) cases)
          in
          Some
            (G.AndG
               (branches @ [ (Some "default case", G.Wand (G.LProp not_any, dflt)) ]))
      | _ -> None)

let all : E.rule list = [ t_block; t_goto; t_if; t_if_int; t_if_ptr; t_switch ]

(** Subsumption rules — the [A₁ <: A₂ {G}] fragment of RefinedC's
    standard library, including the paper's S-NULL and S-OWN (Figure 6),
    the automatically generated fold/unfold rules for user-defined
    (recursive) types, the uninit-splitting that underlies O-ADD-UNINIT
    reasoning, and magic-wand introduction/chaining (§2.2). *)

open Rc_pure
open Rc_pure.Term
module G = Rc_lithium.Goal
module Int_type = Rc_caesium.Int_type
open Rtype
open Lang
open Convert

type rule = E.rule

let mk name prio apply : rule = { E.rname = name; prio; heads = Some [ "subsume" ]; apply }

let ty_equiv_side = Rtype.ty_equiv_side

let sides props g =
  List.fold_right (fun p g -> G.Star (G.LProp p, g)) props g

(* ------------------------------------------------------------------ *)
(* Helper: the subject and types of a subsumption problem               *)
(* ------------------------------------------------------------------ *)

type sub_problem = {
  subj : term;  (** subject of the super atom *)
  sub_subj : term;  (** subject of the sub atom (may differ for splits) *)
  sub_ty : rtype;
  super_ty : rtype;
  is_loc : bool;
  cont : goal;
}

let problem (j : f) : sub_problem option =
  match j with
  | FSubsume { sub = LocTy (l1, t1); super = LocTy (l2, t2); cont } ->
      Some { subj = l2; sub_subj = l1; sub_ty = t1; super_ty = t2; is_loc = true; cont }
  | FSubsume { sub = ValTy (v1, t1); super = ValTy (v2, t2); cont } ->
      Some { subj = v2; sub_subj = v1; sub_ty = t1; super_ty = t2; is_loc = false; cont }
  | _ -> None

let re_atom is_loc subj ty =
  if is_loc then LocTy (subj, ty) else ValTy (subj, ty)

(* ------------------------------------------------------------------ *)
(* Rules                                                               *)
(* ------------------------------------------------------------------ *)

(* Structural equivalence covers the bulk of same-shape subsumptions. *)
let s_equiv =
  mk "S-EQUIV" 50 (fun _ri j ->
      match problem j with
      | Some p when equal_term p.sub_subj p.subj -> (
          match ty_equiv_side p.sub_ty p.super_ty with
          | Some props -> Some (sides props p.cont)
          | None -> None)
      | _ -> None)

(* S-NULL (Figure 6): null <: φ @ optional<τ₁, τ₂> requires ¬φ. *)
let s_null =
  mk "S-NULL" 20 (fun _ri j ->
      match problem j with
      | Some ({ sub_ty = TNull; super_ty = TOptional (phi, _, t2); _ } as p) ->
          Some
            (G.Star
               ( G.LProp (PNot phi),
                 G.Basic
                   (FSubsume
                      {
                        sub = re_atom p.is_loc p.subj TNull;
                        super = re_atom p.is_loc p.subj t2;
                        cont = p.cont;
                      }) ))
      | _ -> None)

let packed_at ri l =
  ri.E.ri_peek (function
    | ValTy (w, (TOptional _ | TNamed _ | TFnPtr _)) -> equal_term w l
    | _ -> false)

(* S-OWN (Figure 6): a pointer value [l] <: φ @ optional<&own τ, τ₂>.
   Dispatch, in order: ownership still packed in a value atom for [l]
   (consume it); [l] provably NULL (prove ¬φ, S-NULL-style); otherwise the
   definite-own case (prove φ and the pointee ownership, which lives in
   location atoms). *)
let s_own =
  mk "S-OWN" 21 (fun ri j ->
      match problem j with
      | Some ({ sub_ty = TPtrV l; super_ty = TOptional (phi, t1, t2); _ } as p)
        -> (
          match packed_at ri l with
          | Some _ -> Some (G.Star (G.LAtom (ValTy (l, p.super_ty)), p.cont))
          | None ->
              if ri.E.ri_prove (PEq (l, NullLoc)) then
                match t2 with
                | TNull -> Some (G.Star (G.LProp (PNot phi), p.cont))
                | _ -> None
              else (
                match t1 with
                | TOwn _ ->
                    Some (G.Star (G.LProp phi, require_val ri.E.ri_env l t1 p.cont))
                | _ -> None))
      | _ -> None)

(* Subsume into a plain &own<τ> (argument passing, ensures). *)
let s_ptr_own =
  mk "S-PTR-OWN" 22 (fun ri j ->
      match problem j with
      | Some ({ sub_ty = TPtrV l; super_ty = TOwn (lo, t'); _ } as p) -> (
          match packed_at ri l with
          | Some _ -> Some (G.Star (G.LAtom (ValTy (l, p.super_ty)), p.cont))
          | None ->
              let loc_eq =
                match lo with Some l' -> [ PEq (l, l') ] | None -> []
              in
              Some (sides loc_eq (require_loc ri.E.ri_env l t' p.cont)))
      | _ -> None)

(* A pointer singleton subsuming into a packed conditional/named type
   whose ownership lives in a value atom for that pointer. *)
let s_ptr_lookup =
  mk "S-PTR-LOOKUP" 25 (fun ri j ->
      match problem j with
      | Some
          ({ sub_ty = TPtrV l; super_ty = TOptional _ | TNamed _ | TFnPtr _; _ }
           as p)
        when packed_at ri l <> None ->
          Some (G.Star (G.LAtom (ValTy (l, p.super_ty)), p.cont))
      | _ -> None)

(* null stored at a place <: optional/named. *)
let s_null_opt_named =
  mk "S-NULL-NAMED" 23 (fun ri j ->
      match problem j with
      | Some ({ sub_ty = TNull; super_ty = TNamed (n, args); _ } as p) -> (
          match unfold_named ri.E.ri_env n args with
          | Some body ->
              Some
                (G.Basic
                   (FSubsume
                      {
                        sub = re_atom p.is_loc p.subj TNull;
                        super = re_atom p.is_loc p.subj body;
                        cont = p.cont;
                      }))
          | None -> None)
      | _ -> None)

(* Fold/unfold rules for user-defined types ("automatically generated
   unfolding rules", §7): same name → refinements equal; different shape →
   unfold one side.  Same-name comes first (priority). *)
let s_named_same =
  mk "S-NAMED-SAME" 15 (fun _ri j ->
      match problem j with
      | Some
          ({ sub_ty = TNamed (n, args); super_ty = TNamed (m, args'); _ } as p)
        when n = m && List.length args = List.length args' ->
          Some (sides (List.map2 (fun x y -> PEq (x, y)) args args') p.cont)
      | _ -> None)

let s_unfold_l =
  mk "UNFOLD-L" 30 (fun ri j ->
      match problem j with
      | Some ({ sub_ty = TNamed (n, args); _ } as p) -> (
          match unfold_named ri.E.ri_env n args with
          | Some body ->
              Some
                (G.Basic
                   (FSubsume
                      {
                        sub = re_atom p.is_loc p.sub_subj body;
                        super = re_atom p.is_loc p.subj p.super_ty;
                        cont = p.cont;
                      }))
          | None -> None)
      | _ -> None)

let s_unfold_r =
  mk "UNFOLD-R" 31 (fun ri j ->
      match problem j with
      | Some ({ super_ty = TNamed (n, args); _ } as p) -> (
          match unfold_named ri.E.ri_env n args with
          | Some body ->
              Some
                (G.Basic
                   (FSubsume
                      {
                        sub = re_atom p.is_loc p.sub_subj p.sub_ty;
                        super = re_atom p.is_loc p.subj body;
                        cont = p.cont;
                      }))
          | None -> None)
      | _ -> None)

(* Unpack existentials / constraints on either side. *)
let s_unpack_sub =
  mk "S-UNPACK-SUB" 10 (fun _ri j ->
      match problem j with
      | Some ({ sub_ty = TExists (x, s, f); _ } as p) ->
          Some
            (G.All
               ( x,
                 s,
                 fun t ->
                   G.Basic
                     (FSubsume
                        {
                          sub = re_atom p.is_loc p.sub_subj (f t);
                          super = re_atom p.is_loc p.subj p.super_ty;
                          cont = p.cont;
                        }) ))
      | Some ({ sub_ty = TConstr (t, phi); _ } as p) ->
          Some
            (G.Wand
               ( G.LProp phi,
                 G.Basic
                   (FSubsume
                      {
                        sub = re_atom p.is_loc p.sub_subj t;
                        super = re_atom p.is_loc p.subj p.super_ty;
                        cont = p.cont;
                      }) ))
      | _ -> None)

let s_unpack_super =
  mk "S-UNPACK-SUPER" 11 (fun _ri j ->
      match problem j with
      | Some ({ super_ty = TExists (x, s, f); _ } as p) ->
          Some
            (G.Ex
               ( x,
                 s,
                 fun t ->
                   G.Basic
                     (FSubsume
                        {
                          sub = re_atom p.is_loc p.sub_subj p.sub_ty;
                          super = re_atom p.is_loc p.subj (f t);
                          cont = p.cont;
                        }) ))
      | Some ({ super_ty = TConstr (t, phi); _ } as p) ->
          Some
            (G.Star
               ( G.LProp phi,
                 G.Basic
                   (FSubsume
                      {
                        sub = re_atom p.is_loc p.sub_subj p.sub_ty;
                        super = re_atom p.is_loc p.subj t;
                        cont = p.cont;
                      }) ))
      | _ -> None)

(* Splitting uninitialized memory: the context owns [m] bytes at the base;
   the goal demands [n] bytes at base+k.  The complement is returned to Δ.
   This rule (together with O-ADD on pointers) reproduces O-ADD-UNINIT
   (Figure 6) and covers both allocation directions of §6. *)
let s_uninit_split =
  mk "S-UNINIT-SPLIT" 40 (fun _ri j ->
      match problem j with
      | Some
          ({ sub_ty = TUninit m; super_ty = TUninit n; is_loc = true; _ } as p)
        when not (equal_term p.sub_subj p.subj) -> (
          match Rule_aux.offset_between ~from_:p.sub_subj p.subj with
          | Some k ->
              let open G in
              Some
                (Star
                   ( LProp (PLe (Num 0, k)),
                     Star
                       ( LProp (PLe (Add (k, n), m)),
                         G.wands
                           [
                             Rule_aux.luninit p.sub_subj k;
                             Rule_aux.luninit
                               (Simp.simp_term (LocOfs (p.sub_subj, Add (k, n))))
                               (Simp.simp_term (Sub (Sub (m, k), n)));
                           ]
                           p.cont ) ))
          | None -> None)
      | _ -> None)

(* Wand application: provide the hole, obtain the conclusion (§2.2). *)
let s_wand_apply =
  mk "S-WAND-APPLY" 35 (fun ri j ->
      match problem j with
      | Some ({ sub_ty = TWand (hole, out); super_ty; _ } as p)
        when (match super_ty with TWand _ -> false | _ -> true) ->
          let provide =
            match hole with
            | LocTy (l, t) -> require_loc ri.E.ri_env l t
            | ValTy (v, t) -> require_val ri.E.ri_env v t
          in
          Some
            (provide
               (G.Basic
                  (FSubsume
                     {
                       sub = re_atom p.is_loc p.sub_subj out;
                       super = re_atom p.is_loc p.subj super_ty;
                       cont = p.cont;
                     })))
      | _ -> None)

(* Wand chaining: to prove a new wand from an existing one, assume the new
   hole, reprove the old hole (consuming the resources accumulated while
   traversing the data structure), and match the conclusions. *)
let s_wand_wand =
  mk "S-WAND-WAND" 34 (fun ri j ->
      match problem j with
      | Some
          ({ sub_ty = TWand (h1, o1); super_ty = TWand (h2, o2); _ } as p) -> (
          match ty_equiv_side o1 o2 with
          | Some out_sides ->
              let intro_hole =
                match h2 with
                | LocTy (l, t) -> intro_loc ri.E.ri_env l t
                | ValTy (v, t) -> intro_val ri.E.ri_env v t
              in
              let require_hole g =
                match h1 with
                | LocTy (l, t) -> require_loc ri.E.ri_env l t g
                | ValTy (v, t) -> require_val ri.E.ri_env v t g
              in
              Some (G.Wand (intro_hole, require_hole (sides out_sides p.cont)))
          | None -> None)
      | _ -> None)

(* Atomic booleans: refinements must coincide; the protected resources
   must be syntactically identical (they are invariants). *)
let s_atomic_bool =
  mk "S-ATOMIC-BOOL" 24 (fun _ri j ->
      match problem j with
      | Some
          ({
             sub_ty = TAtomicBool (it1, p1, ht1, hf1);
             super_ty = TAtomicBool (it2, p2, ht2, hf2);
             _;
           } as p)
        when Int_type.equal it1 it2 ->
          let same_hres a b =
            List.length a = List.length b
            && List.for_all2
                 (fun x y ->
                   Fmt.str "%a" pp_hres x = Fmt.str "%a" pp_hres y)
                 a b
          in
          if same_hres ht1 ht2 && same_hres hf1 hf2 then
            Some (sides [ PAnd (PImp (p1, p2), PImp (p2, p1)) ] p.cont)
          else None
      | _ -> None)

(* Function pointers: compatible specs (same name, or structurally equal
   contracts up to the function's name — used when an implementation is
   passed where a specification prototype is expected). *)
let fn_spec_compatible (s1 : fn_spec) (s2 : fn_spec) : bool =
  s1.fs_name = s2.fs_name
  || s1.fs_params = s2.fs_params
     && List.length s1.fs_args = List.length s2.fs_args
     && List.for_all2
          (fun a b -> rtype_to_string a = rtype_to_string b)
          s1.fs_args s2.fs_args
     && rtype_to_string s1.fs_ret = rtype_to_string s2.fs_ret
     && List.map (Fmt.str "%a" pp_hres) s1.fs_pre
        = List.map (Fmt.str "%a" pp_hres) s2.fs_pre
     && s1.fs_exists = s2.fs_exists
     && List.map (Fmt.str "%a" pp_hres) s1.fs_post
        = List.map (Fmt.str "%a" pp_hres) s2.fs_post

let s_fnptr =
  mk "S-FNPTR" 26 (fun _ri j ->
      match problem j with
      | Some ({ sub_ty = TFnPtr s1; super_ty = TFnPtr s2; _ } as p)
        when fn_spec_compatible s1 s2 ->
          Some p.cont
      | _ -> None)

(* Integers widen into booleans and vice versa. *)
let s_int_bool =
  mk "S-INT-BOOL" 27 (fun _ri j ->
      match problem j with
      | Some ({ sub_ty = TInt (it1, n); super_ty = TBool (it2, q); _ } as p)
        when Int_type.equal it1 it2 ->
          Some
            (sides
               [ PAnd (PImp (q, p_ne n (Num 0)), PImp (p_ne n (Num 0), q)) ]
               p.cont)
      | Some ({ sub_ty = TBool (it1, q); super_ty = TInt (it2, m); _ } as p)
        when Int_type.equal it1 it2 ->
          Some (sides [ PEq (m, Ite (q, Num 1, Num 0)) ] p.cont)
      | _ -> None)

(* Any initialized scalar can degrade to uninitialized bytes; when the
   goal wants a *larger* uninitialized block (e.g. returning a whole page
   whose first bytes held the free-list link), the remaining bytes are
   consumed from Δ. *)
let s_to_uninit =
  mk "S-TO-UNINIT" 45 (fun ri j ->
      match problem j with
      | Some ({ sub_ty = TUninit _; _ }) -> None (* S-EQUIV / split rules *)
      | Some ({ super_ty = TUninit n; is_loc = true; _ } as p)
        when equal_term p.sub_subj p.subj -> (
          match ty_size ri.E.ri_env p.sub_ty with
          | Some (Num sz)
            when (match p.sub_ty with TWand _ -> false | _ -> true) ->
              let rest = Simp.simp_term (Sub (n, Num sz)) in
              let rest_goal =
                match rest with
                | Num 0 -> p.cont
                | _ ->
                    G.Star
                      ( G.LAtom
                          (LocTy
                             ( Simp.simp_term (LocOfs (p.subj, Num sz)),
                               TUninit rest )),
                        p.cont )
              in
              Some (sides [ PLe (Num sz, n) ] rest_goal)
          | _ -> None)
      | _ -> None)

let all : rule list =
  [
    s_unpack_sub;
    s_unpack_super;
    s_named_same;
    s_null;
    s_own;
    s_ptr_own;
    s_null_opt_named;
    s_atomic_bool;
    s_ptr_lookup;
    s_fnptr;
    s_int_bool;
    s_unfold_l;
    s_unfold_r;
    s_wand_wand;
    s_wand_apply;
    s_uninit_split;
    s_to_uninit;
    s_equiv;
  ]

(** Structural expression typing (⊢EXPR, T-BINOP-style CPS) plus unary
    operators and integer casts. *)

open Rc_pure
open Rc_pure.Term
module G = Rc_lithium.Goal
module Syntax = Rc_caesium.Syntax
module Int_type = Rc_caesium.Int_type
open Rtype
open Lang
open Rule_aux

let mk ~heads name prio apply : E.rule = { E.rname = name; prio; heads = Some heads; apply }

(** The location denoted by a typed value (pointer singletons carry it). *)
let loc_of (v : term) (ty : rtype) : term =
  match ty with TPtrV l -> l | TNull -> NullLoc | _ -> v

let expr_rule =
  mk ~heads:[ "expr" ] "T-EXPR" 5 (fun _ri j ->
      match j with
      | FExpr { sigma; expr; cont } -> (
          match expr with
          | Syntax.IntConst (n, it) -> Some (cont (Num n) (TInt (it, Num n)))
          | Syntax.NullConst -> Some (cont NullLoc TNull)
          | Syntax.FnAddr f -> (
              match List.assoc_opt f sigma.fc_specs with
              | Some spec ->
                  Some (cont (Var ("fn_" ^ f, Sort.Loc)) (TFnPtr spec))
              | None -> None)
          | Syntax.VarLoc x -> (
              match List.assoc_opt x sigma.fc_env with
              | Some l -> Some (cont l (TPtrV l))
              | None -> (
                  (* a bare function name used as a value *)
                  match List.assoc_opt x sigma.fc_specs with
                  | Some spec ->
                      Some (cont (Var ("fn_" ^ x, Sort.Loc)) (TFnPtr spec))
                  | None -> None))
          | Syntax.Use { atomic; layout; arg } ->
              Some
                (G.Basic
                   (FExpr
                      {
                        sigma;
                        expr = arg;
                        cont =
                          (fun v ty ->
                            G.Basic
                              (FReadLoc
                                 {
                                   loc_term = Simp.simp_term (loc_of v ty);
                                   layout;
                                   atomic;
                                   cont;
                                   src = None;
                                 }));
                      }))
          | Syntax.FieldOfs { arg; struct_; field } ->
              let fd = Rc_caesium.Layout.field_exn struct_ field in
              Some
                (G.Basic
                   (FExpr
                      {
                        sigma;
                        expr = arg;
                        cont =
                          (fun v ty ->
                            let l =
                              Simp.simp_term
                                (LocOfs (loc_of v ty, Num fd.Rc_caesium.Layout.fld_ofs))
                            in
                            cont l (TPtrV l));
                      }))
          | Syntax.BinOp { op; ot1; ot2; e1; e2 } ->
              Some
                (G.Basic
                   (FExpr
                      {
                        sigma;
                        expr = e1;
                        cont =
                          (fun v1 ty1 ->
                            G.Basic
                              (FExpr
                                 {
                                   sigma;
                                   expr = e2;
                                   cont =
                                     (fun v2 ty2 ->
                                       G.Basic
                                         (FBinop
                                            {
                                              op; ot1; ot2; v1; ty1; v2; ty2;
                                              cont; src = None;
                                            }));
                                 }));
                      }))
          | Syntax.UnOp { op; ot; arg } ->
              Some
                (G.Basic
                   (FExpr
                      {
                        sigma;
                        expr = arg;
                        cont =
                          (fun v ty ->
                            G.Basic (FUnop { op; ot; v; ty; cont; src = None }));
                      }))
          | Syntax.CastIntInt { from_; to_; arg } ->
              Some
                (G.Basic
                   (FExpr
                      {
                        sigma;
                        expr = arg;
                        cont =
                          (fun v ty ->
                            G.Basic
                              (FCast { from_; to_; v; ty; cont; src = None }));
                      }))
          | Syntax.CastPtrPtr arg ->
              Some (G.Basic (FExpr { sigma; expr = arg; cont })))
      | _ -> None)

(* Integer casts: the value must fit the target type (RefinedC emits an
   in-range side condition rather than allowing wrapping). *)
let cast_int =
  mk ~heads:[ "cast" ] "T-CAST-INT" 5 (fun _ri j ->
      match j with
      | FCast { to_; v = _; ty = TInt (_, n); cont; _ } ->
          Some
            (G.Star
               ( G.LProp
                   (conj
                      [
                        PLe (Num (Int_type.min_val to_), n);
                        PLe (n, Num (Int_type.max_val to_));
                      ]),
                 cont n (TInt (to_, n)) ))
      | FCast { to_; ty = TBool (_, phi); cont; _ } ->
          Some (cont (bool_term phi) (TInt (to_, bool_term phi)))
      | _ -> None)

let unop_rules =
  [
    mk ~heads:[ "unop" ] "O-NEG-INT" 10 (fun _ri j ->
        match j with
        | FUnop { op = Syntax.NegOp; v = _; ty = TInt (it, n); cont; _ } ->
            let r = Simp.simp_term (Sub (Num 0, n)) in
            Some
              (G.Star
                 ( G.LProp
                     (conj
                        [
                          PLe (Num (Int_type.min_val it), r);
                          PLe (r, Num (Int_type.max_val it));
                        ]),
                   cont r (TInt (it, r)) ))
        | _ -> None);
    mk ~heads:[ "unop" ] "O-NOT-INT" 11 (fun _ri j ->
        match j with
        | FUnop { op = Syntax.LogNotOp; ty = TInt (_, n); cont; _ } ->
            let phi = PEq (n, Num 0) in
            Some (cont (bool_term phi) (TBool (Int_type.i32, phi)))
        | FUnop { op = Syntax.LogNotOp; ty = TBool (it, phi); cont; _ } ->
            Some (cont (bool_term (PNot phi)) (TBool (it, PNot phi)))
        | _ -> None);
    (* !p on a pointer: the optional case split of §6 *)
    mk ~heads:[ "unop" ] "O-NOT-OPTIONAL" 12 (fun ri j ->
        match j with
        | FUnop { op = Syntax.LogNotOp; ot = Syntax.OPtr; v; ty; cont; _ } ->
            optional_cases ri v ty
              ~on_own:(fun () ->
                cont (Num 0) (TBool (Int_type.i32, PFalse)))
              ~on_null:(fun () -> cont (Num 1) (TBool (Int_type.i32, PTrue)))
        | _ -> None);
  ]

let all : E.rule list = (expr_rule :: cast_int :: unop_rules)

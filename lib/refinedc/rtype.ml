(** RefinedC types (§4, Figure 4).

    Every type can carry a *refinement* — a pure term or proposition that
    limits its values.  We normalize aggressively: integers and booleans
    are always refined (an unrefined [int<it>] is parsed as
    [∃n. n @ int<it>]), and ownership follows a canonical discipline
    (see {!Convert}): the ownership of definite [&own] pointers lives in
    location atoms [ℓ ◁ₗ τ], while pointer *values* get the thin
    singleton type {!TPtrV}.  Conditional ownership ([optional]) stays
    packed in the atom until a typing rule (e.g. O-OPTIONAL-EQ) splits
    it. *)

open Rc_pure
open Rc_pure.Term
module Layout = Rc_caesium.Layout
module Int_type = Rc_caesium.Int_type

type rtype =
  | TInt of Int_type.t * term  (** n @ int<it> *)
  | TBool of Int_type.t * prop  (** φ @ bool, stored in an integer type *)
  | TNull  (** singleton type of NULL *)
  | TPtrV of term  (** singleton: "this value is address ℓ" (thin, no
                       ownership; the ownership is a [ℓ ◁ₗ τ] atom) *)
  | TOwn of term option * rtype  (** [ℓ @] &own<τ> — as a *spec* type;
                                     introduced/eliminated by {!Convert} *)
  | TOptional of prop * rtype * rtype  (** φ @ optional<τ₁, τ₂> *)
  | TUninit of term  (** uninit<n>: n uninitialized bytes *)
  | TAnyInt of Int_type.t  (** an initialized integer, value irrelevant *)
  | TStruct of Layout.struct_layout * rtype list
  | TArrayInt of Int_type.t * term * term
      (** [TArrayInt (it, len, xs)]: an array of [len] integers of type
          [it] whose values are the list [xs] (cell i has type
          [(xs !! i) @ int<it>]) *)
  | TWand of atom * rtype  (** wand<H, τ>: τ with hole H (Figure 4) *)
  | TExists of string * Sort.t * (term -> rtype)  (** ∃x. τ(x) *)
  | TConstr of rtype * prop  (** { τ | φ } *)
  | TPadded of rtype * term  (** padded(τ, n): τ padded to n bytes *)
  | TNamed of string * term list
      (** user-defined (possibly recursive) type applied to arguments;
          the last argument is by convention the refinement *)
  | TFnPtr of fn_spec  (** first-class function type *)
  | TAtomicBool of Int_type.t * prop * hres list * hres list
      (** atomicbool(H⊤, H⊥) refined by φ (the current abstract state):
          holds H⊤ if the stored integer is 1, H⊥ if 0 (§6) *)
  | TManaged of int
      (** [n] bytes whose ownership is managed elsewhere (by a lock
          invariant): occupies space but contributes no resources *)

and atom =
  | LocTy of term * rtype  (** ℓ ◁ₗ τ *)
  | ValTy of term * rtype  (** v ◁ᵥ τ *)

and hres = HAtom of atom | HProp of prop
    (** a resource in a precondition/postcondition/lock invariant *)

and fn_spec = {
  fs_name : string;
  fs_params : (string * Sort.t) list;  (** rc::parameters *)
  fs_args : rtype list;  (** rc::args *)
  fs_pre : hres list;  (** rc::requires *)
  fs_exists : (string * Sort.t) list;  (** rc::exists (in the post) *)
  fs_ret : rtype;  (** rc::returns *)
  fs_post : hres list;  (** rc::ensures *)
  fs_tactics : string list;  (** rc::tactics *)
  fs_loc : Rc_util.Srcloc.t option;
}

(* ------------------------------------------------------------------ *)
(* Type definitions (rc::refined_by / rc::ptr_type / …)                *)
(* ------------------------------------------------------------------ *)

type type_def = {
  td_name : string;
  td_params : (string * Sort.t) list;
      (** includes the refinement parameter(s), in application order *)
  td_unfold : term list -> rtype;
  td_layout : Layout.t option;  (** layout of the unfolded type, if fixed *)
}

(** The named-type environment: every [rc::refined_by]-style definition
    visible to one verification session.  Built while elaborating (or by
    a case study's OCaml companion) and read-only during checking, so a
    session can be shared across checker domains; two sessions have two
    environments, never a common global table. *)
type tenv = (string, type_def) Hashtbl.t

let create_tenv () : tenv = Hashtbl.create 16

let register_type_def (te : tenv) td = Hashtbl.replace te td.td_name td
let find_type_def (te : tenv) name = Hashtbl.find_opt te name

let unfold_named (te : tenv) name args =
  match find_type_def te name with
  | Some td -> Some (td.td_unfold args)
  | None -> None

(** Stable digest of the environment (names, parameters, layouts) for
    the verification-cache key.  The unfold function itself cannot be
    digested; definitions are keyed by name + arity + layout, which the
    frontend derives deterministically from the source. *)
let tenv_signature (te : tenv) : string =
  Hashtbl.fold (fun name td acc -> (name, td) :: acc) te []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
  |> List.map (fun (name, td) ->
         Printf.sprintf "%s/%d/%s" name
           (List.length td.td_params)
           (match td.td_layout with
           | Some l -> Rc_caesium.Layout.show l
           | None -> "?"))
  |> String.concat ";"

(* ------------------------------------------------------------------ *)
(* Misc helpers                                                        *)
(* ------------------------------------------------------------------ *)

(** Existential integer: [∃n. n @ int<it>] — the unrefined [int<it>]. *)
let t_int_ex it = TExists ("n", Sort.Int, fun n -> TInt (it, n))

(** The "return type" of void functions: zero bytes. *)
let t_void = TUninit (Num 0)

let is_void = function TUninit (Num 0) -> true | _ -> false

let t_own ty = TOwn (None, ty)

(** Pure facts implied by owning a value of this type, e.g. integer-range
    bounds (these feed the arithmetic side conditions, like the paper's
    int-bounds facts). *)
let rec implied_props (v : term) (ty : rtype) : prop list =
  match ty with
  | TInt (it, n) ->
      [
        PEq (v, n);
        PLe (Num (Int_type.min_val it), n);
        PLe (n, Num (Int_type.max_val it));
      ]
  | TBool (_, _) -> []
  | TNull -> [ PEq (v, NullLoc) ]
  | TPtrV l -> [ PEq (v, l); p_ne l NullLoc ]
  | TConstr (t, phi) -> phi :: implied_props v t
  | _ -> []

(** Size in bytes of the values inhabiting a type, when determined. *)
let rec ty_size (te : tenv) (ty : rtype) : term option =
  match ty with
  | TInt (it, _) | TBool (it, _) | TAnyInt it | TAtomicBool (it, _, _, _) ->
      Some (Num it.Int_type.size)
  | TNull | TPtrV _ | TOwn _ | TOptional _ | TFnPtr _ -> Some (Num 8)
  | TUninit n -> Some n
  | TManaged n -> Some (Num n)
  | TStruct (sl, _) -> Some (Num sl.Layout.sl_size)
  | TArrayInt (it, len, _) -> Some (Mul (Num it.Int_type.size, len))
  | TConstr (t, _) -> ty_size te t
  | TPadded (_, n) -> Some n
  | TWand (_, t) -> ty_size te t
  | TExists _ -> None
  | TNamed (name, _) -> (
      match find_type_def te name with
      | Some { td_layout = Some l; _ } -> Some (Num (Layout.size l))
      | _ -> None)

(* ------------------------------------------------------------------ *)
(* Substitution (specs mention parameters that calls instantiate)      *)
(* ------------------------------------------------------------------ *)

let rec subst_rtype (env : (string * term) list) (ty : rtype) : rtype =
  let s = subst_term env in
  let sp = subst_prop env in
  match ty with
  | TInt (it, n) -> TInt (it, s n)
  | TBool (it, p) -> TBool (it, sp p)
  | TNull -> TNull
  | TPtrV l -> TPtrV (s l)
  | TOwn (l, t) -> TOwn (Option.map s l, subst_rtype env t)
  | TOptional (p, t1, t2) ->
      TOptional (sp p, subst_rtype env t1, subst_rtype env t2)
  | TUninit n -> TUninit (s n)
  | TManaged n -> TManaged n
  | TAnyInt it -> TAnyInt it
  | TStruct (sl, ts) -> TStruct (sl, List.map (subst_rtype env) ts)
  | TArrayInt (it, len, xs) -> TArrayInt (it, s len, s xs)
  | TWand (a, t) -> TWand (subst_atom env a, subst_rtype env t)
  | TExists (x, so, f) ->
      let env = List.filter (fun (y, _) -> y <> x) env in
      TExists (x, so, fun t -> subst_rtype env (f t))
  | TConstr (t, p) -> TConstr (subst_rtype env t, sp p)
  | TPadded (t, n) -> TPadded (subst_rtype env t, s n)
  | TNamed (n, args) -> TNamed (n, List.map s args)
  | TFnPtr spec -> TFnPtr (subst_spec env spec)
  | TAtomicBool (it, p, ht, hf) ->
      TAtomicBool (it, sp p, List.map (subst_hres env) ht,
                   List.map (subst_hres env) hf)

and subst_atom env = function
  | LocTy (l, t) -> LocTy (subst_term env l, subst_rtype env t)
  | ValTy (v, t) -> ValTy (subst_term env v, subst_rtype env t)

and subst_hres env = function
  | HAtom a -> HAtom (subst_atom env a)
  | HProp p -> HProp (subst_prop env p)

and subst_spec env (spec : fn_spec) : fn_spec =
  let env =
    List.filter (fun (y, _) -> not (List.mem_assoc y spec.fs_params)) env
  in
  {
    spec with
    fs_args = List.map (subst_rtype env) spec.fs_args;
    fs_pre = List.map (subst_hres env) spec.fs_pre;
    fs_ret =
      (let env' =
         List.filter
           (fun (y, _) -> not (List.mem_assoc y spec.fs_exists))
           env
       in
       subst_rtype env' spec.fs_ret);
    fs_post =
      (let env' =
         List.filter
           (fun (y, _) -> not (List.mem_assoc y spec.fs_exists))
           env
       in
       List.map (subst_hres env') spec.fs_post);
  }

(* ------------------------------------------------------------------ *)
(* Resolution of evars inside types                                    *)
(* ------------------------------------------------------------------ *)

let rec resolve_rtype (r : term -> term) (ty : rtype) : rtype =
  let rp p = map_prop r p in
  match ty with
  | TInt (it, n) -> TInt (it, r n)
  | TBool (it, p) -> TBool (it, rp p)
  | TNull -> TNull
  | TPtrV l -> TPtrV (r l)
  | TOwn (l, t) -> TOwn (Option.map r l, resolve_rtype r t)
  | TOptional (p, t1, t2) -> TOptional (rp p, resolve_rtype r t1, resolve_rtype r t2)
  | TUninit n -> TUninit (r n)
  | TManaged n -> TManaged n
  | TAnyInt it -> TAnyInt it
  | TStruct (sl, ts) -> TStruct (sl, List.map (resolve_rtype r) ts)
  | TArrayInt (it, len, xs) -> TArrayInt (it, r len, r xs)
  | TWand (a, t) -> TWand (resolve_atom r a, resolve_rtype r t)
  | TExists (x, so, f) -> TExists (x, so, fun t -> resolve_rtype r (f t))
  | TConstr (t, p) -> TConstr (resolve_rtype r t, rp p)
  | TPadded (t, n) -> TPadded (resolve_rtype r t, r n)
  | TNamed (n, args) -> TNamed (n, List.map r args)
  | TFnPtr spec -> TFnPtr spec
  | TAtomicBool (it, p, ht, hf) ->
      TAtomicBool (it, rp p, List.map (resolve_hres r) ht,
                   List.map (resolve_hres r) hf)

and resolve_atom r = function
  | LocTy (l, t) -> LocTy (Simp.simp_term (r l), resolve_rtype r t)
  | ValTy (v, t) -> ValTy (Simp.simp_term (r v), resolve_rtype r t)

and resolve_hres r = function
  | HAtom a -> HAtom (resolve_atom r a)
  | HProp p -> HProp (map_prop r p)

(* ------------------------------------------------------------------ *)
(* Pretty printing                                                     *)
(* ------------------------------------------------------------------ *)

let rec pp_rtype ppf (ty : rtype) =
  let p fmt = Fmt.pf ppf fmt in
  match ty with
  | TInt (it, n) -> p "%a @@ int<%a>" pp_term n Int_type.pp it
  | TBool (_, q) -> p "{%a} @@ bool" pp_prop q
  | TNull -> p "null"
  | TPtrV l -> p "%a @@ ptr" pp_term l
  | TOwn (Some l, t) -> p "%a @@ &own<%a>" pp_term l pp_rtype t
  | TOwn (None, t) -> p "&own<%a>" pp_rtype t
  | TOptional (q, t1, t2) ->
      p "{%a} @@ optional<%a, %a>" pp_prop q pp_rtype t1 pp_rtype t2
  | TUninit n -> p "uninit<%a>" pp_term n
  | TManaged n -> p "managed<%d>" n
  | TAnyInt it -> p "any_int<%a>" Int_type.pp it
  | TStruct (sl, ts) ->
      p "struct %s<%a>" sl.Layout.sl_name Fmt.(list ~sep:comma pp_rtype) ts
  | TArrayInt (it, len, xs) ->
      p "array<int<%a>, %a, %a>" Int_type.pp it pp_term len pp_term xs
  | TWand (a, t) -> p "wand<{%a}, %a>" pp_atom a pp_rtype t
  | TExists (x, s, f) ->
      p "∃%s:%a. %a" x Sort.pp s pp_rtype (f (Var (x, s)))
  | TConstr (t, q) -> p "{%a | %a}" pp_rtype t pp_prop q
  | TPadded (t, n) -> p "padded<%a, %a>" pp_rtype t pp_term n
  | TNamed (n, args) -> (
      match List.rev args with
      | [] -> p "%s" n
      | r :: _ -> p "%a @@ %s" pp_term r n)
  | TFnPtr spec -> p "fn<%s>" spec.fs_name
  | TAtomicBool (_, q, _, _) -> p "{%a} @@ atomicbool" pp_prop q

and pp_atom ppf = function
  | LocTy (l, t) -> Fmt.pf ppf "%a ◁ₗ %a" pp_term l pp_rtype t
  | ValTy (v, t) -> Fmt.pf ppf "%a ◁ᵥ %a" pp_term v pp_rtype t

let pp_hres ppf = function
  | HAtom a -> pp_atom ppf a
  | HProp p -> Fmt.pf ppf "⌜%a⌝" pp_prop p

let rtype_to_string t = Fmt.str "%a" pp_rtype t
let atom_to_string a = Fmt.str "%a" pp_atom a

(** A deterministic printed form of a function specification covering
    every field that can influence a check (the source location is
    deliberately excluded — it moves with unrelated edits and affects
    only diagnostics).  Used as a component of the verification-cache
    key, so it must change whenever the spec meaningfully changes. *)
let spec_signature (s : fn_spec) : string =
  let binder ppf (x, srt) = Fmt.pf ppf "%s:%a" x Sort.pp srt in
  Fmt.str "%s|params:%a|args:%a|pre:%a|exists:%a|ret:%a|post:%a|tactics:%s"
    s.fs_name
    Fmt.(list ~sep:comma binder)
    s.fs_params
    Fmt.(list ~sep:comma pp_rtype)
    s.fs_args
    Fmt.(list ~sep:comma pp_hres)
    s.fs_pre
    Fmt.(list ~sep:comma binder)
    s.fs_exists pp_rtype s.fs_ret
    Fmt.(list ~sep:comma pp_hres)
    s.fs_post
    (String.concat "," s.fs_tactics)

(* ------------------------------------------------------------------ *)
(* Atom subjects and relatedness (engine plumbing)                     *)
(* ------------------------------------------------------------------ *)

let subject = function LocTy (l, _) -> l | ValTy (v, _) -> v

(** Base location of a (possibly offset) location term. *)
let rec loc_base (l : term) : term =
  match l with LocOfs (l', _) -> loc_base l' | _ -> l

(* ------------------------------------------------------------------ *)
(* Structural type equivalence, as side conditions                      *)
(* ------------------------------------------------------------------ *)

(** [ty_equiv_side τ τ'] produces the pure side conditions under which the
    two types denote the same predicate (used where subsumption must be
    resource-free, e.g. under an unresolved [optional] or in a magic
    wand's conclusion).  [None] if the shapes differ. *)
let rec ty_equiv_side (a : rtype) (b : rtype) : prop list option =
  let ( let* ) = Option.bind in
  match (a, b) with
  | TInt (it1, n), TInt (it2, m) when Int_type.equal it1 it2 ->
      Some [ PEq (n, m) ]
  | TBool (it1, p), TBool (it2, q) when Int_type.equal it1 it2 ->
      Some [ PAnd (PImp (p, q), PImp (q, p)) ]
  | TNull, TNull -> Some []
  | TPtrV l1, TPtrV l2 -> Some [ PEq (l1, l2) ]
  | TUninit n, TUninit m -> Some [ PEq (n, m) ]
  | TManaged n, TManaged m when n = m -> Some []
  | TAnyInt it1, TAnyInt it2 when Int_type.equal it1 it2 -> Some []
  | TOwn (l1, t1), TOwn (l2, t2) ->
      let* rest = ty_equiv_side t1 t2 in
      let locs =
        match (l1, l2) with Some x, Some y -> [ PEq (x, y) ] | _ -> []
      in
      Some (locs @ rest)
  | TOptional (p, t1, t2), TOptional (q, u1, u2) ->
      let* s1 = ty_equiv_side t1 u1 in
      let* s2 = ty_equiv_side t2 u2 in
      Some (PAnd (PImp (p, q), PImp (q, p)) :: (s1 @ s2))
  | TNamed (n, args), TNamed (m, args')
    when n = m && List.length args = List.length args' ->
      Some (List.map2 (fun x y -> PEq (x, y)) args args')
  | TArrayInt (it1, l1, xs1), TArrayInt (it2, l2, xs2)
    when Int_type.equal it1 it2 ->
      Some [ PEq (l1, l2); PEq (xs1, xs2) ]
  | TStruct (sl1, ts1), TStruct (sl2, ts2)
    when sl1.Layout.sl_name = sl2.Layout.sl_name
         && List.length ts1 = List.length ts2 ->
      List.fold_left2
        (fun acc t1 t2 ->
          let* acc = acc in
          let* s = ty_equiv_side t1 t2 in
          Some (acc @ s))
        (Some []) ts1 ts2
  | TPadded (t1, n), TPadded (t2, m) ->
      let* s = ty_equiv_side t1 t2 in
      Some (PEq (n, m) :: s)
  | TConstr (t1, p), TConstr (t2, q) ->
      let* s = ty_equiv_side t1 t2 in
      Some (PAnd (PImp (p, q), PImp (q, p)) :: s)
  | TConstr (t1, p), t2 ->
      let* s = ty_equiv_side t1 t2 in
      Some (p :: s)
  | t1, TConstr (t2, p) ->
      let* s = ty_equiv_side t1 t2 in
      Some (p :: s)
  | TExists (x, s1, f), TExists (_, s2, g) when Sort.equal s1 s2 ->
      let v = Var (x ^ "!eq", s1) in
      ty_equiv_side (f v) (g v)
  | TWand (h1, o1), TWand (h2, o2) ->
      let* sh = atom_equiv_side h1 h2 in
      let* so = ty_equiv_side o1 o2 in
      Some (sh @ so)
  | TFnPtr s1, TFnPtr s2 when s1.fs_name = s2.fs_name -> Some []
  | _ -> None

and atom_equiv_side a b =
  let ( let* ) = Option.bind in
  match (a, b) with
  | LocTy (l1, t1), LocTy (l2, t2) | ValTy (l1, t1), ValTy (l2, t2) ->
      let* s = ty_equiv_side t1 t2 in
      Some (PEq (l1, l2) :: s)
  | _ -> None

(** Relatedness for Lithium's goal case (6d).  [exact]: same subject
    (syntactically — §9 discusses this design point).  Weak pass: a goal
    atom demanding [uninit] bytes may also match a context atom with the
    same *base* location, which is how the O-ADD-UNINIT-style ownership
    splitting of §6 is triggered. *)
let related ~exact (in_ctx : atom) (goal_a : atom) : bool =
  match (in_ctx, goal_a) with
  | LocTy (l1, t1), LocTy (l2, t2) ->
      if exact then equal_term l1 l2
      else (
        match (t1, t2) with
        | (TUninit _ | TPadded _), TUninit _ ->
            equal_term (loc_base l1) (loc_base l2)
        | _ -> false)
  | ValTy (v1, _), ValTy (v2, _) -> exact && equal_term v1 v2
  | _ -> false

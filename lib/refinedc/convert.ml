(** Canonicalization of ownership (introduction and elimination of types).

    RefinedC's model keeps the resource context Δ in a canonical form so
    that Lithium's syntactic matching (goal case (6d)) finds atoms
    deterministically:

    - *Introduction* ([intro_loc te]/[intro_val te]) decomposes assumed types
      into canonical atoms: structs split into per-field atoms (plus
      padding as [uninit]), definite [&own] pointers split into a thin
      address singleton plus a separate location atom for the pointee,
      existentials open, constraints move to Γ.  Conditional ownership
      ([optional]) and folded recursive types ([TNamed]) stay packed.

    - *Elimination* ([require_loc te]/[require_val te]) builds the dual goals:
      composite types are required field by field; scalar-ish types
      become goal atoms that case (6d) matches against Δ and discharges
      through the subsumption rules of {!Rules_subsume}. *)

open Rc_pure
open Rc_pure.Term
module G = Rc_lithium.Goal
module Layout = Rc_caesium.Layout
module Int_type = Rc_caesium.Int_type
open Rtype
open Lang

type left = (f, atom) G.left

let ofs l n = Simp.simp_term (LocOfs (l, Num n))

(** Byte ranges of a struct layout not covered by any field: padding. *)
let padding_ranges (sl : Layout.struct_layout) : (int * int) list =
  let covered =
    List.map
      (fun fd -> (fd.Layout.fld_ofs, fd.Layout.fld_ofs + Layout.size fd.Layout.fld_layout))
      sl.Layout.sl_fields
    |> List.sort compare
  in
  let rec gaps pos = function
    | [] -> if pos < sl.Layout.sl_size then [ (pos, sl.Layout.sl_size) ] else []
    | (a, b) :: rest ->
        (if pos < a then [ (pos, a) ] else []) @ gaps (max pos b) rest
  in
  gaps 0 covered

let int_bounds_props (it : Int_type.t) (n : term) : prop list =
  [ PLe (Num (Int_type.min_val it), n); PLe (n, Num (Int_type.max_val it)) ]

(* ------------------------------------------------------------------ *)
(* Introduction                                                        *)
(* ------------------------------------------------------------------ *)

let rec intro_loc te (l : term) (ty : rtype) : left =
  match ty with
  | TManaged _ -> G.LTrue
  | TStruct (sl, tys) ->
      let fields =
        List.map2
          (fun fd fty -> intro_loc te (ofs l fd.Layout.fld_ofs) fty)
          sl.Layout.sl_fields tys
      in
      let pads =
        List.map
          (fun (a, b) -> G.LAtom (LocTy (ofs l a, TUninit (Num (b - a)))))
          (padding_ranges sl)
      in
      G.lstars (fields @ pads)
  | TOwn (Some l', t') ->
      G.LStar (intro_loc_scalar l (TPtrV l'), intro_loc te l' t')
  | TOwn (None, t') ->
      G.LEx
        ( "ℓ",
          Sort.Loc,
          fun l' -> G.LStar (intro_loc_scalar l (TPtrV l'), intro_loc te l' t') )
  | TExists (x, s, f) -> G.LEx (x, s, fun t -> intro_loc te l (f t))
  | TConstr (t, phi) -> G.LStar (G.LProp phi, intro_loc te l t)
  | TPadded (t, n) -> (
      match ty_size te t with
      | Some sz ->
          G.LStar
            ( intro_loc te l t,
              G.LStar
                ( G.LAtom
                    (LocTy
                       ( Simp.simp_term (LocOfs (l, sz)),
                         TUninit (Simp.simp_term (Sub (n, sz))) )),
                  G.LProp (PLe (sz, n)) ) )
      | None -> G.LAtom (LocTy (l, ty)))
  | _ -> intro_loc_scalar l ty

and intro_loc_scalar l ty =
  match ty with
  | TInt (it, n) ->
      G.LStar (G.LAtom (LocTy (l, ty)), G.LProp (conj (int_bounds_props it n)))
  | TBool _ -> G.LAtom (LocTy (l, ty))
  | TPtrV l' -> G.LStar (G.LAtom (LocTy (l, ty)), G.LProp (p_ne l' NullLoc))
  | TUninit n -> G.LStar (G.LAtom (LocTy (l, ty)), G.LProp (PLe (Num 0, n)))
  | TArrayInt (_, len, xs) ->
      G.LStar
        ( G.LAtom (LocTy (l, ty)),
          G.LProp (PAnd (PEq (Length xs, len), PLe (Num 0, len))) )
  | _ -> G.LAtom (LocTy (l, ty))

and intro_val te (v : term) (ty : rtype) : left =
  match ty with
  | TInt (it, n) ->
      G.LStar
        ( G.LAtom (ValTy (v, ty)),
          G.LProp (conj (PEq (v, n) :: int_bounds_props it n)) )
  | TBool _ -> G.LAtom (ValTy (v, ty))
  | TNull -> G.LStar (G.LAtom (ValTy (v, TNull)), G.LProp (PEq (v, NullLoc)))
  | TPtrV l' ->
      G.LStar
        ( G.LAtom (ValTy (v, ty)),
          G.LProp (PAnd (PEq (v, l'), p_ne l' NullLoc)) )
  | TOwn (Some l', t') ->
      G.LStar (intro_val te v (TPtrV l'), intro_loc te l' t')
  | TOwn (None, t') ->
      (* treat the value itself as the pointee location *)
      G.LStar (intro_val te v (TPtrV v), intro_loc te v t')
  | TExists (x, s, f) -> G.LEx (x, s, fun t -> intro_val te v (f t))
  | TConstr (t, phi) -> G.LStar (G.LProp phi, intro_val te v t)
  | _ -> G.LAtom (ValTy (v, ty))

let intro_hres te (h : hres) : left =
  match h with
  | HProp p -> G.LProp p
  | HAtom (LocTy (l, t)) -> intro_loc te l t
  | HAtom (ValTy (v, t)) -> intro_val te v t

let intro_hres_list te hs = G.lstars (List.map (intro_hres te) hs)

(* ------------------------------------------------------------------ *)
(* Elimination (goal construction)                                     *)
(* ------------------------------------------------------------------ *)

(** Is the one-level unfolding of this type a composite that the intro
    side decomposed into several atoms (so the goal must be field-wise)? *)
let rec unfolds_to_composite te (ty : rtype) : rtype option =
  match ty with
  | TNamed (n, args) -> (
      match unfold_named te n args with
      | Some body -> (
          match strip body with
          | TStruct _ | TPadded _ -> Some body
          | _ -> None)
      | None -> None)
  | _ -> None

and strip = function
  | TConstr (t, _) -> strip t
  | TExists (x, s, f) -> strip (f (Var (x, s)))
  | t -> t

let rec require_loc te (l : term) (ty : rtype) (g : goal) : goal =
  match ty with
  | TManaged _ -> g
  | TStruct (sl, tys) ->
      let rec fields fs tys g =
        match (fs, tys) with
        | [], [] -> g
        | fd :: fs', fty :: tys' ->
            require_loc te (ofs l fd.Layout.fld_ofs) fty (fields fs' tys' g)
        | _ -> invalid_arg "require_loc te: struct arity"
      in
      let pads g =
        List.fold_right
          (fun (a, b) g ->
            G.Star (G.LAtom (LocTy (ofs l a, TUninit (Num (b - a)))), g))
          (padding_ranges sl) g
      in
      fields sl.Layout.sl_fields tys (pads g)
  | TOwn (Some l', t') ->
      G.Star (G.LAtom (LocTy (l, TPtrV l')), require_loc te l' t' g)
  | TOwn (None, t') ->
      G.Ex
        ( "ℓ",
          Sort.Loc,
          fun l' ->
            G.Star (G.LAtom (LocTy (l, TPtrV l')), require_loc te l' t' g) )
  | TExists (x, s, f) -> G.Ex (x, s, fun t -> require_loc te l (f t) g)
  | TConstr (t, phi) -> require_loc te l t (G.Star (G.LProp phi, g))
  | TPadded (t, n) -> (
      match ty_size te t with
      | Some sz ->
          require_loc te l t
            (G.Star
               ( G.LAtom
                   (LocTy
                      ( Simp.simp_term (LocOfs (l, sz)),
                        TUninit (Simp.simp_term (Sub (n, sz))) )),
                 g ))
      | None -> G.Star (G.LAtom (LocTy (l, ty)), g))
  | TNamed (n, _) -> (
      match unfolds_to_composite te ty with
      | None -> G.Star (G.LAtom (LocTy (l, ty)), g)
      | Some body ->
          (* dispatch on Δ: if the location still holds the folded named
             type, subsume directly; otherwise require field-wise *)
          G.FindOpt
            {
              descr = Fmt.str "%a ◁ₗ %s (folded)" pp_term l n;
              pred =
                (fun resolve a ->
                  match a with
                  | LocTy (l', TNamed (n', _)) ->
                      equal_term l' (Simp.simp_term (resolve l)) && n' = n
                  | _ -> false);
              cont =
                (function
                | Some a ->
                    G.Basic
                      (FSubsume { sub = a; super = LocTy (l, ty); cont = g })
                | None -> require_loc te l body g);
            })
  | TWand (hole, out) ->
      (* A magic wand is proved either by adapting an existing wand for
         the same location (loop iterations) or, when Δ holds nothing for
         [l], from emp as the identity wand (loop entry, §2.2). *)
      G.FindOpt
        {
          descr = Fmt.str "%a ◁ₗ wand" pp_term l;
          pred =
            (fun resolve a ->
              match a with
              | LocTy (l', _) -> equal_term l' (Simp.simp_term (resolve l))
              | _ -> false);
          cont =
            (function
            | Some a ->
                G.Basic (FSubsume { sub = a; super = LocTy (l, ty); cont = g })
            | None -> (
                match hole with
                | LocTy (hl, hty) -> (
                    match ty_equiv_side hty out with
                    | Some props ->
                        List.fold_right
                          (fun p g -> G.Star (G.LProp p, g))
                          (PEq (hl, l) :: props)
                          g
                    | None -> G.Star (G.LProp PFalse, g))
                | ValTy _ -> G.Star (G.LProp PFalse, g)));
        }
  | _ -> G.Star (G.LAtom (LocTy (l, ty)), g)

let rec require_val te (v : term) (ty : rtype) (g : goal) : goal =
  match ty with
  | TExists (x, s, f) -> G.Ex (x, s, fun t -> require_val te v (f t) g)
  | TConstr (t, phi) -> require_val te v t (G.Star (G.LProp phi, g))
  | TOwn (Some l', t') ->
      G.Star (G.LProp (PEq (v, l')), require_loc te l' t' g)
  | TOwn (None, t') ->
      G.Star (G.LProp (p_ne v NullLoc), require_loc te v t' g)
  | _ -> G.Star (G.LAtom (ValTy (v, ty)), g)

(** Variables not listed in a loop invariant keep the type they had at
    function entry: argument slots their specification types, locals
    [uninit].  They are assumed in the loop-body branch and re-proved at
    every jump to the loop head (real RefinedC behaves the same way). *)
let unlisted_frame (sigma : Lang.fn_ctx) (listed : string list) :
    (term * rtype) list =
  let module S = Rc_caesium.Syntax in
  let args =
    if
      List.length sigma.fc_func.S.args
      = List.length sigma.fc_spec.fs_args
    then
      List.map2
        (fun (x, _) ty -> (x, ty))
        sigma.fc_func.S.args sigma.fc_spec.fs_args
    else []
  in
  let locals =
    List.map
      (fun (x, layout) -> (x, TUninit (Num (Layout.size layout))))
      sigma.fc_func.S.locals
  in
  args @ locals
  |> List.filter (fun (x, _) -> not (List.mem x listed))
  |> List.filter_map (fun (x, ty) ->
         Option.map (fun l -> (l, ty)) (List.assoc_opt x sigma.fc_env))

let require_hres te (h : hres) (g : goal) : goal =
  match h with
  | HProp p -> G.Star (G.LProp p, g)
  | HAtom (LocTy (l, t)) -> require_loc te l t g
  | HAtom (ValTy (v, t)) -> require_val te v t g

let require_hres_list te hs g = List.fold_right (require_hres te) hs g

(** Typed reads and writes.

    A load/store first locates the atom owning the accessed location
    (goal form [Find] — RefinedC's [find_in_context]) and then dispatches
    on the *type* of that location, which uniquely determines the rule:
    reading an [n @ int] yields [n]; reading an [optional] moves the
    conditional ownership into a value atom and leaves a pointer-value
    snapshot at the place (so re-reads observe the same value); writes
    perform strong updates, splitting [uninit] blocks on demand. *)

open Rc_pure
open Rc_pure.Term
module G = Rc_lithium.Goal
module Layout = Rc_caesium.Layout
module Int_type = Rc_caesium.Int_type
open Rtype
open Lang
open Convert
open Rule_aux

let mk ~heads name prio apply : E.rule = { E.rname = name; prio; heads = Some heads; apply }

(** Find-predicate: does the atom cover the accessed location?  Besides
    exact matches, an access may fall inside an array, an uninitialized
    block, or a (possibly named) struct whose fields have not been split
    off yet. *)
let covers (te : tenv) (loc_term : term) (a : atom) : bool =
  let within l size_lit =
    equal_term l loc_term
    ||
    match offset_between ~from_:l loc_term with
    | Some (Num k) -> (
        match size_lit with Some sz -> 0 <= k && k < sz | None -> false)
    | Some _ -> false
    | None -> false
  in
  match a with
  | LocTy (l, ((TArrayInt _ | TUninit _) as ty)) -> (
      let lit_size =
        match ty with
        | TUninit (Num s) -> Some s
        | TArrayInt (it, Num len, _) -> Some (len * it.Int_type.size)
        | _ -> None
      in
      match offset_between ~from_:l loc_term with
      | Some (Num k) ->
          k >= 0 && (match lit_size with Some s -> k < s | None -> true)
      | Some _ -> lit_size <> Some 0
      | None -> false)
  | LocTy (l, TStruct (sl, _)) -> within l (Some sl.Rc_caesium.Layout.sl_size)
  | LocTy (l, TNamed (n, _)) -> (
      match find_type_def te n with
      | Some { td_layout = Some lay; _ } -> within l (Some (Layout.size lay))
      | _ -> equal_term l loc_term)
  | LocTy (l, _) -> equal_term l loc_term
  | ValTy _ -> false

(* ------------------------------------------------------------------ *)
(* Reads                                                               *)
(* ------------------------------------------------------------------ *)

(** When an access hits a location whose ownership is still *packed* in a
    value atom [v ◁ᵥ φ @ optional<&own τ, null>] (e.g. dereferencing a
    list head whose non-emptiness is known from the specification, with no
    preceding NULL test), unpack it: prove φ and decompose the own
    branch into Δ, then retry. *)
let unpack_packed_at ri (base : term) (retry : goal) : goal option =
  let is_packed = function
    | ValTy (w, (TOptional _ | TNamed _)) -> equal_term w base
    | _ -> false
  in
  match ri.E.ri_peek is_packed with
  | None -> None
  | Some _ ->
      let rec unfold_to_opt t =
        match t with
        | TOptional (phi, t1, t2) -> Some (phi, t1, t2)
        | TNamed (n, args) ->
            Option.bind (unfold_named ri.E.ri_env n args) unfold_to_opt
        | TConstr (t, _) -> unfold_to_opt t
        | _ -> None
      in
      Some
        (G.Find
           {
             descr = Fmt.str "%a ◁ᵥ optional (unpack)" pp_term base;
             pred = (fun _resolve a -> is_packed a);
             cont =
               (fun a ->
                 match a with
                 | ValTy (_, pty) -> (
                     match unfold_to_opt pty with
                     | Some (phi, t1, _) ->
                         G.Star
                           ( G.LProp phi,
                             G.Wand (intro_val ri.E.ri_env base t1, retry) )
                     | None -> G.Wand (G.LAtom a, retry))
                 | LocTy _ -> assert false);
           })

let read_loc =
  mk ~heads:[ "read-loc" ] "READ-LOC" 10 (fun ri j ->
      match j with
      | FReadLoc ({ loc_term; layout; atomic; cont; src } as r) -> (
          let found = ri.E.ri_peek (fun a -> covers ri.E.ri_env loc_term a) in
          match found with
          | Some _ ->
              Some
                (G.Find
                   {
                     descr = Fmt.str "%a ◁ₗ ?" pp_term loc_term;
                     pred =
                       (fun resolve a ->
                         covers ri.E.ri_env (Simp.simp_term (resolve loc_term)) a);
                     cont =
                       (fun a ->
                         match a with
                         | LocTy (sub_l, ty) ->
                             G.Basic
                               (FReadTy
                                  { loc_term; sub_l; ty; layout; atomic; cont;
                                    src })
                         | ValTy _ -> assert false);
                   })
          | None ->
              unpack_packed_at ri (loc_base loc_term)
                (G.Basic (FReadLoc r)))
      | _ -> None)

(* READ-INT: the place keeps its type; the read value is the refinement. *)
let read_int =
  mk ~heads:[ "read" ] "READ-INT" 20 (fun _ri j ->
      match j with
      | FReadTy
          { loc_term; sub_l; ty = TInt (it, n) as ty; layout = Layout.Int it';
            cont; _ }
        when Int_type.equal it it' && equal_term loc_term sub_l ->
          Some (G.Wand (G.LAtom (LocTy (sub_l, ty)), cont n ty))
      | _ -> None)

let read_bool =
  mk ~heads:[ "read" ] "READ-BOOL" 21 (fun _ri j ->
      match j with
      | FReadTy
          { loc_term; sub_l; ty = TBool (it, phi) as ty;
            layout = Layout.Int it'; cont; _ }
        when Int_type.equal it it' && equal_term loc_term sub_l ->
          Some (G.Wand (G.LAtom (LocTy (sub_l, ty)), cont (bool_term phi) ty))
      | _ -> None)

(* READ-PTR: a pointer-value snapshot (or NULL). *)
let read_ptr =
  mk ~heads:[ "read" ] "READ-PTR" 22 (fun _ri j ->
      match j with
      | FReadTy { loc_term; sub_l; ty = TPtrV l' as ty; layout; cont; _ }
        when is_ptr_layout layout && equal_term loc_term sub_l ->
          Some (G.Wand (G.LAtom (LocTy (sub_l, ty)), cont l' ty))
      | FReadTy { loc_term; sub_l; ty = TNull; layout; cont; _ }
        when is_ptr_layout layout && equal_term loc_term sub_l ->
          Some (G.Wand (G.LAtom (LocTy (sub_l, TNull)), cont NullLoc TNull))
      | _ -> None)

(* READ-OPTIONAL / READ-NAMED: move the packed ownership into a value
   atom for a fresh value [v]; the place remembers it stores [v]. *)
let read_packed =
  mk ~heads:[ "read" ] "READ-PACKED" 23 (fun ri j ->
      match j with
      | FReadTy
          { loc_term; sub_l; ty = (TOptional _ | TNamed _ | TFnPtr _) as ty;
            layout; cont; _ }
        when is_ptr_layout layout && equal_term loc_term sub_l ->
          let v = ri.E.ri_fresh ~hint:"v" Sort.Loc in
          Some
            (G.Wand
               ( G.LAtom (ValTy (v, ty)),
                 G.Wand
                   (G.LAtom (LocTy (sub_l, TPtrV v)), cont v (TPtrV v)) ))
      | _ -> None)

(* READ-EXISTS / READ-CONSTR: open, then re-dispatch. *)
let read_unpack =
  mk ~heads:[ "read" ] "READ-UNPACK" 15 (fun _ri j ->
      match j with
      | FReadTy ({ ty = TExists (x, s, f); _ } as r) ->
          Some
            (G.All
               ( x,
                 s,
                 fun t -> G.Basic (FReadTy { r with ty = f t }) ))
      | FReadTy ({ ty = TConstr (t, phi); _ } as r) ->
          Some (G.Wand (G.LProp phi, G.Basic (FReadTy { r with ty = t })))
      | _ -> None)

(* READ-UNFOLD: a folded named type must be unfolded when the access does
   not read it as a whole pointer value (struct-bodied types, or reads at
   an interior offset). *)
let read_unfold =
  mk ~heads:[ "read" ] "READ-UNFOLD" 16 (fun ri j ->
      match j with
      | FReadTy ({ loc_term; sub_l; ty = TNamed (n, args); layout; _ } as r)
        when (not (is_ptr_layout layout)) || not (equal_term loc_term sub_l)
        -> (
          match unfold_named ri.E.ri_env n args with
          | Some body -> Some (G.Basic (FReadTy { r with ty = body }))
          | None -> None)
      | _ -> None)

(* READ-DECOMPOSE: struct/padded blocks split into per-field atoms in Δ;
   the read is then retried and finds the field. *)
let read_decompose =
  mk ~heads:[ "read" ] "READ-DECOMPOSE" 17 (fun ri j ->
      match j with
      | FReadTy
          { loc_term; sub_l; ty = (TStruct _ | TPadded _) as ty; layout;
            atomic; cont; src } ->
          Some
            (G.Wand
               ( intro_loc ri.E.ri_env sub_l ty,
                 G.Basic (FReadLoc { loc_term; layout; atomic; cont; src }) ))
      | _ -> None)

(* READ-ARRAY: reading cell [i] of an integer array. *)
let read_array =
  mk ~heads:[ "read" ] "READ-ARRAY" 24 (fun ri j ->
      match j with
      | FReadTy
          { loc_term; sub_l; ty = TArrayInt (it, len, xs) as ty;
            layout = Layout.Int it'; cont; _ }
        when Int_type.equal it it' -> (
          match offset_between ~from_:sub_l loc_term with
          | Some off -> (
              match index_of_offset ~sz:it.Int_type.size off with
              | Some i ->
                  let n = NthDflt (Num 0, i, xs) in
                  let _ = ri in
                  Some
                    (G.Star
                       ( G.LProp (PAnd (PLe (Num 0, i), PLt (i, len))),
                         G.Wand
                           ( G.LAtom (LocTy (sub_l, ty)),
                             G.Wand
                               ( G.LProp
                                   (conj (int_bounds_props it n)),
                                 cont n (TInt (it, n)) ) ) ))
              | None -> None)
          | None -> None)
      | _ -> None)

(* Atomic load of an atomic boolean (used by the one-time barrier).  On
   observing "true" the H⊤ resource is transferred out once — sound for
   the single-waiter, one-shot protocols we verify (the paper uses a
   ghost token for the same purpose). *)
let read_atomic_bool =
  mk ~heads:[ "read" ] "READ-ATOMIC-BOOL" 25 (fun ri j ->
      match j with
      | FReadTy
          { loc_term; sub_l; ty = TAtomicBool (it, _phi, ht, hf);
            layout = Layout.Int it'; atomic = true; cont; _ }
        when Int_type.equal it it' && equal_term loc_term sub_l ->
          let b = ri.E.ri_fresh ~hint:"b" Sort.Int in
          let observed_true =
            G.Wand
              ( G.LAtom (LocTy (sub_l, TAtomicBool (it, PTrue, [], hf))),
                G.Wand
                  ( intro_hres_list ri.E.ri_env ht,
                    cont (Num 1) (TBool (it, PTrue)) ) )
          in
          let observed_false =
            G.Wand
              ( G.LAtom (LocTy (sub_l, TAtomicBool (it, PFalse, ht, hf))),
                cont (Num 0) (TBool (it, PFalse)) )
          in
          let _ = b in
          Some
            (G.AndG
               [
                 (Some "atomic load observes true", observed_true);
                 (Some "atomic load observes false", observed_false);
               ])
      | _ -> None)

(* ------------------------------------------------------------------ *)
(* Writes                                                              *)
(* ------------------------------------------------------------------ *)

let write_loc =
  mk ~heads:[ "write-loc" ] "WRITE-LOC" 10 (fun ri j ->
      match j with
      | FWriteLoc ({ loc_term; layout; atomic; v; vty; cont; src } as r) -> (
          match ri.E.ri_peek (fun a -> covers ri.E.ri_env loc_term a) with
          | Some _ ->
              Some
                (G.Find
                   {
                     descr = Fmt.str "%a ◁ₗ ?" pp_term loc_term;
                     pred =
                       (fun resolve a ->
                         covers ri.E.ri_env (Simp.simp_term (resolve loc_term)) a);
                     cont =
                       (fun a ->
                         match a with
                         | LocTy (sub_l, ty) ->
                             G.Basic
                               (FWriteTy
                                  {
                                    loc_term; sub_l; ty; layout; atomic; v;
                                    vty; cont; src;
                                  })
                         | ValTy _ -> assert false);
                   })
          | None ->
              unpack_packed_at ri (loc_base loc_term)
                (G.Basic (FWriteLoc r)))
      | _ -> None)

let write_unpack =
  mk ~heads:[ "write" ] "WRITE-UNPACK" 15 (fun _ri j ->
      match j with
      | FWriteTy ({ ty = TExists (x, s, f); _ } as r) ->
          Some
            (G.All (x, s, fun t -> G.Basic (FWriteTy { r with ty = f t })))
      | FWriteTy ({ ty = TConstr (t, phi); _ } as r) ->
          Some (G.Wand (G.LProp phi, G.Basic (FWriteTy { r with ty = t })))
      | _ -> None)

(* WRITE-UNFOLD / WRITE-DECOMPOSE: mirror the read side. *)
let write_unfold =
  mk ~heads:[ "write" ] "WRITE-UNFOLD" 16 (fun ri j ->
      match j with
      | FWriteTy ({ loc_term; sub_l; ty = TNamed (n, args); layout; _ } as r)
        when (not (is_ptr_layout layout)) || not (equal_term loc_term sub_l)
        -> (
          match unfold_named ri.E.ri_env n args with
          | Some body -> Some (G.Basic (FWriteTy { r with ty = body }))
          | None -> None)
      | _ -> None)

let write_decompose =
  mk ~heads:[ "write" ] "WRITE-DECOMPOSE" 17 (fun ri j ->
      match j with
      | FWriteTy
          { loc_term; sub_l; ty = (TStruct _ | TPadded _) as ty; layout;
            atomic; v; vty; cont; src } ->
          Some
            (G.Wand
               ( intro_loc ri.E.ri_env sub_l ty,
                 G.Basic
                   (FWriteLoc { loc_term; layout; atomic; v; vty; cont; src })
               ))
      | _ -> None)


(* WRITE-SCALAR: strong update of a scalar place (int, bool, pointer,
   packed optional/named value).  The new place type is the stored
   value's type, with packed ownership left in the value atom. *)
let write_scalar =
  mk ~heads:[ "write" ] "WRITE-SCALAR" 20 (fun _ri j ->
      match j with
      | FWriteTy
          { loc_term; sub_l;
            ty = TInt _ | TBool _ | TPtrV _ | TNull | TAnyInt _
               | TOptional _ | TNamed _ | TFnPtr _;
            layout; atomic = false; v; vty; cont; _ }
        when equal_term loc_term sub_l -> (
          match layout_of_scalar vty with
          | Some lv when Layout.size lv = Layout.size layout ->
              Some
                (G.Wand (G.LAtom (LocTy (sub_l, place_type v vty)), cont))
          | _ -> None)
      | _ -> None)

(* WRITE-UNINIT: initialize a prefix of an uninitialized block; the
   complement (on either side) stays uninitialized.  Together with O-ADD
   this is the write-side of O-ADD-UNINIT (Figure 6). *)
let write_uninit =
  mk ~heads:[ "write" ] "WRITE-UNINIT" 21 (fun _ri j ->
      match j with
      | FWriteTy
          { loc_term; sub_l; ty = TUninit m; layout; atomic = false; v; vty;
            cont; _ } -> (
          match offset_between ~from_:sub_l loc_term with
          | Some k ->
              let sz = Layout.size layout in
              let open G in
              let after_ofs = Simp.simp_term (LocOfs (sub_l, Add (k, Num sz))) in
              let rest = Simp.simp_term (Sub (Sub (m, k), Num sz)) in
              Some
                (Star
                   ( LProp (PLe (Num 0, k)),
                     Star
                       ( LProp (PLe (Add (k, Num sz), m)),
                         wands
                           [
                             luninit sub_l k;
                             LAtom (LocTy (loc_term, place_type v vty));
                             luninit after_ofs rest;
                           ]
                           cont ) ))
          | None -> None)
      | _ -> None)

(* WRITE-ARRAY: strong update of one cell; the list refinement gains a
   list update. *)
let write_array =
  mk ~heads:[ "write" ] "WRITE-ARRAY" 22 (fun _ri j ->
      match j with
      | FWriteTy
          { loc_term; sub_l; ty = TArrayInt (it, len, xs);
            layout = Layout.Int it'; atomic = false; v = _; vty; cont; _ }
        when Int_type.equal it it' -> (
          match offset_between ~from_:sub_l loc_term with
          | Some off -> (
              match index_of_offset ~sz:it.Int_type.size off with
              | Some i -> (
                  match vty with
                  | TInt (itv, m) when Int_type.equal itv it ->
                      let xs' = SetListInsert (i, m, xs) in
                      Some
                        (G.Star
                           ( G.LProp (PAnd (PLe (Num 0, i), PLt (i, len))),
                             G.Wand
                               ( G.LAtom
                                   (LocTy (sub_l, TArrayInt (it, len, xs'))),
                                 cont ) ))
                  | _ -> None)
              | None -> None)
          | None -> None)
      | _ -> None)

(* WRITE-ATOMIC-BOOL: a release store of a constant boolean transfers the
   corresponding resource into the atomic cell (§6: the spinlock release
   stores false, giving H back). *)
let write_atomic_bool =
  mk ~heads:[ "write" ] "WRITE-ATOMIC-BOOL" 23 (fun ri j ->
      match j with
      | FWriteTy
          { loc_term; sub_l; ty = TAtomicBool (it, _phi, ht, hf);
            layout = Layout.Int it'; atomic = true; v = _; vty; cont; _ }
        when Int_type.equal it it' && equal_term loc_term sub_l ->
          let store_branch desired_prop =
            let provide = if desired_prop then ht else hf in
            let newty = TAtomicBool (it, (if desired_prop then PTrue else PFalse), ht, hf) in
            require_hres_list ri.E.ri_env provide
              (G.Wand (G.LAtom (LocTy (sub_l, newty)), cont))
          in
          (match vty with
          | TBool (_, PTrue) | TInt (_, Num 1) -> Some (store_branch true)
          | TBool (_, PFalse) | TInt (_, Num 0) -> Some (store_branch false)
          | TBool (_, psi) ->
              Some
                (G.AndG
                   [
                     ( Some "atomic store of true",
                       G.Wand (G.LProp psi, store_branch true) );
                     ( Some "atomic store of false",
                       G.Wand (G.LProp (PNot psi), store_branch false) );
                   ])
          | _ -> None)
      | _ -> None)

let all : E.rule list =
  [
    read_loc;
    read_unpack;
    read_unfold;
    read_decompose;
    read_int;
    read_bool;
    read_ptr;
    read_packed;
    read_array;
    read_atomic_bool;
    write_loc;
    write_unpack;
    write_unfold;
    write_decompose;
    write_scalar;
    write_uninit;
    write_array;
    write_atomic_bool;
  ]

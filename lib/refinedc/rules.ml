(** The RefinedC standard library of typing rules.

    The paper's standard library "currently contains around 30 types and
    200 typing rules" (§7); this reproduction's library covers the rules
    the case-study corpus exercises.  Extensibility is the point of the
    Lithium architecture (§5): a session may carry additional
    (user/expert) rules.  There is no mutable global rule table — a
    session compiles its own head-indexed {!Lang.E.index} once
    ({!make}), after which the index is read-only and safely shared by
    every checker domain of that session. *)

(** The built-in standard library, in dispatch order. *)
let builtin () : Lang.E.rule list =
  Rules_stmt.all @ Rules_expr.all @ Rules_binop.all @ Rules_mem.all
  @ Rules_call.all @ Rules_subsume.all

(** Compile a rule set (standard library plus [extra] session rules)
    into the engine's head-indexed dispatch structure.  [profile] is
    accumulated [--pgo] hit-rate data: it reorders rules within
    equal-priority ties only (see {!Lang.E.index_rules}) and changes the
    index fingerprint, so profiled runs never share cache entries with
    unprofiled ones. *)
let make ?(extra = []) ?(profile = []) () : Lang.E.index =
  Lang.E.index_rules ~profile (builtin () @ extra)

(** Digest of a compiled rule set (names, priorities, head declarations,
    in order) — a component of the verification-cache key. *)
let fingerprint (idx : Lang.E.index) : string = idx.Lang.E.idx_fingerprint

(** Number of rules in a compiled set (for the Figure-7 style summary
    line in the benchmark harness). *)
let count (idx : Lang.E.index) : int = idx.Lang.E.idx_size

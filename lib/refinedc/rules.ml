(** The RefinedC standard library of typing rules.

    The paper's standard library "currently contains around 30 types and
    200 typing rules" (§7); this reproduction's library covers the rules
    the case-study corpus exercises.  New rules can be registered at any
    time ([register]) — extensibility is the point of the Lithium
    architecture (§5, "Extensibility").

    The engine dispatches rules through a head-indexed {!Lang.E.index}
    built once per rule-set generation and shared by every function
    check (and, being read-only, by every checker domain): re-sorting
    and re-scanning the full rule list per function was measurable
    overhead on the corpus.  [register]/[reset_extra] bump {!generation},
    invalidating the memoized index. *)

let extra : Lang.E.rule list ref = ref []

(** Bumped whenever the rule set changes; {!index} is memoized against
    it, and it participates in the verification-cache fingerprint. *)
let generation = ref 0

(** Register additional (user/expert) typing rules. *)
let register (rs : Lang.E.rule list) =
  extra := !extra @ rs;
  incr generation

let reset_extra () =
  extra := [];
  incr generation

let all () : Lang.E.rule list =
  Rules_stmt.all @ Rules_expr.all @ Rules_binop.all @ Rules_mem.all
  @ Rules_call.all @ Rules_subsume.all @ !extra

(* The memoized index.  Rebuilt only when the generation moves; callers
   running checks in parallel must force it once before fanning out
   (the driver does), after which it is shared read-only. *)
let indexed : (int * Lang.E.index) option ref = ref None

let index () : Lang.E.index =
  match !indexed with
  | Some (gen, idx) when gen = !generation -> idx
  | _ ->
      let idx = Lang.E.index_rules (all ()) in
      indexed := Some (!generation, idx);
      idx

(** Digest of the rule set (names, priorities, head declarations, in
    order) — a component of the verification-cache key. *)
let fingerprint () : string = (index ()).Lang.E.idx_fingerprint

(** Number of rules in the standard library (for the Figure-7 style
    summary line in the benchmark harness). *)
let count () = List.length (all ())

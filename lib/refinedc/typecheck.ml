(** The per-function typechecker: builds the Lithium goal for a function
    against its specification and runs the interpreter (step (B) of
    Figure 2).

    The goal has one branch for the function entry (arguments and
    preconditions assumed, body checked from the entry block) and one
    branch per loop-invariant block (the invariant assumed for fresh
    universals, the loop body checked once).  Jumping *to* an invariant
    block proves the invariant (rule T-GOTO). *)

open Rc_pure
open Rc_pure.Term
module G = Rc_lithium.Goal
module Syntax = Rc_caesium.Syntax
module Layout = Rc_caesium.Layout
open Rtype
open Lang
open Convert

type fn_to_check = {
  func : Syntax.func;
  spec : fn_spec;
  invs : (string * loop_inv) list;
  meta : fn_meta;
}

(** Location term of a C variable's stack slot. *)
let slot_term (x : string) : term = Var (x ^ "#loc", Sort.Loc)

(** Pure facts implied by an argument type, available even in loop
    branches (argument refinements are persistent knowledge). *)
let rec pure_facts_of_arg (ty : rtype) : prop list =
  match ty with
  | TInt (it, n) -> Convert.int_bounds_props it n
  | TOwn (Some p, t) -> p_ne p NullLoc :: pure_facts_of_arg t
  | TOwn (None, t) -> pure_facts_of_arg t
  | TConstr (t, phi) -> phi :: pure_facts_of_arg t
  | TArrayInt (_, len, xs) -> [ PEq (Length xs, len); PLe (Num 0, len) ]
  | _ -> []

let check_fn ?(globals = []) ?(obs = Rc_util.Obs.off) ~(session : Session.t)
    ~(specs : (string * fn_spec) list) (ftc : fn_to_check) :
    (E.result, Rc_lithium.Report.t) result =
  let te = session.Session.tenv in
  let func = ftc.func and spec = ftc.spec in
  let env =
    List.map (fun (x, _) -> (x, slot_term x)) (func.Syntax.args @ func.Syntax.locals)
    @ globals
  in
  let sigma =
    {
      fc_func = func;
      fc_spec = spec;
      fc_specs = specs;
      fc_invs = ftc.invs;
      fc_env = env;
      fc_penv = [];
      fc_meta = ftc.meta;
      fc_depth = 0;
    }
  in
  let locals_intro g =
    List.fold_right
      (fun (x, layout) g ->
        G.Wand
          ( G.LAtom (LocTy (slot_term x, TUninit (Num (Layout.size layout)))),
            g ))
      func.Syntax.locals g
  in
  (* open the universally quantified parameters, substituting them through
     the spec *)
  let with_params (body : (string * term) list -> goal) : goal =
    let rec go acc = function
      | [] -> body (List.rev acc)
      | (x, s) :: rest -> G.All (x, s, fun t -> go ((x, t) :: acc) rest)
    in
    go [] spec.fs_params
  in
  let entry_branch =
    with_params (fun penv ->
        let arg_tys = List.map (subst_rtype penv) spec.fs_args in
        if List.length arg_tys <> List.length func.Syntax.args then
          (* arity mismatch between spec and code: unprovable *)
          G.Star (G.LProp PFalse, G.True_)
        else
          let spec' =
            subst_spec penv { spec with fs_params = [] }
          in
          let sigma = { sigma with fc_spec = spec'; fc_penv = penv } in
          let args_intro g =
            List.fold_right2
              (fun (x, _) ty g -> G.Wand (intro_loc te (slot_term x) ty, g))
              func.Syntax.args arg_tys g
          in
          args_intro
            (locals_intro
               (G.Wand
                  ( intro_hres_list te (List.map (subst_hres penv) spec.fs_pre),
                    G.Basic
                      (FBlock { sigma; label = func.Syntax.entry; idx = 0 })
                  ))))
  in
  let inv_branch (label, inv) =
    with_params (fun penv ->
        let spec' = subst_spec penv { spec with fs_params = [] } in
        let sigma = { sigma with fc_spec = spec'; fc_penv = penv } in
        (* persistent pure knowledge: pure preconditions and argument
           refinement facts *)
        let pure_pre =
          List.filter_map
            (function HProp p -> Some (subst_prop penv p) | HAtom _ -> None)
            spec.fs_pre
          @ List.concat_map
              (fun ty -> pure_facts_of_arg (subst_rtype penv ty))
              spec.fs_args
        in
        let frame =
          Convert.unlisted_frame sigma (List.map fst inv.li_vars)
        in
        let rec open_exists acc = function
          | [] ->
              let env' = acc @ penv in
              let vars_intro g =
                List.fold_right
                  (fun (x, ty) g ->
                    match List.assoc_opt x sigma.fc_env with
                    | Some l ->
                        G.Wand (intro_loc te l (subst_rtype env' ty), g)
                    | None -> g)
                  inv.li_vars
                  (List.fold_right
                     (fun (l, ty) g -> G.Wand (intro_loc te l ty, g))
                     frame g)
              in
              G.Wand
                ( G.lstars (List.map (fun p -> G.LProp (subst_prop env' p))
                     inv.li_constraints),
                  vars_intro (G.Basic (FBlock { sigma; label; idx = 0 })) )
              |> fun g ->
              G.Wand (G.lstars (List.map (fun p -> G.LProp p) pure_pre), g)
          | (x, s) :: rest ->
              G.All (x, s, fun t -> open_exists ((x, t) :: acc) rest)
        in
        open_exists [] inv.li_exists)
  in
  let goal =
    G.AndG
      ((None, entry_branch)
      :: List.map
           (fun (label, inv) ->
             ( Some (Printf.sprintf "loop invariant block %s" label),
               inv_branch (label, inv) ))
           ftc.invs)
  in
  let opts =
    {
      E.o_memo = session.Session.memo.Session.mm_enabled;
      o_memo_max = session.Session.memo.Session.mm_max;
      o_hashcons = session.Session.memo.Session.mm_hashcons;
      o_fx =
        (if session.Session.fx.Session.f_enabled then
           Some session.Session.fx.Session.f_limits
         else None);
    }
  in
  E.run_indexed session.Session.index ~registry:session.Session.registry
    ~gs:session.Session.gs ~env:te ~tactics:spec.fs_tactics
    ~budget:session.Session.budget ~obs ~opts goal

(* ------------------------------------------------------------------ *)
(* Verification-cache keys                                             *)
(* ------------------------------------------------------------------ *)

(* A check's outcome is a pure function of the function body, its spec,
   the loop invariants, the specs it may call, the rule set + solver
   registry + type definitions + ablation switches, and the resource
   budget.  Everything below prints those deterministically; the driver
   digests the concatenation into the on-disk cache key. *)

let type_defs_signature (te : Rtype.tenv) : string =
  (* definition *content* via a one-step unfold at canonical arguments,
     so editing a registered type invalidates entries that may use it *)
  Hashtbl.fold (fun name td acc -> (name, td) :: acc) te []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
  |> List.map (fun (name, (td : Rtype.type_def)) ->
         let args =
           List.map (fun (x, s) -> Term.Var (x, s)) td.Rtype.td_params
         in
         name ^ "="
         ^ (try Rtype.rtype_to_string (td.Rtype.td_unfold args)
            with _ -> "<unfold-error>"))
  |> String.concat ";"

(** Everything in the session's configuration that can change verdicts:
    the compiled rule set, the solver/lemma registry (with its hooks and
    the default-only ablation), the type definitions, and the goal-simp
    configuration.  Keying the cache on the *session* — not on any
    global state — is what lets two concurrently-live sessions with
    different configs share one cache directory without ever sharing a
    verdict. *)
(* The lint configuration's contribution to the cache key.  Linting
   never changes a verdict, but [l_werror] changes exit codes and the
   enabled-pass set changes the diagnostics a cached run would have to
   replay, so a cache hit must not cross lint configurations. *)
let lint_signature (l : Session.lint_cfg) : string =
  Fmt.str "lint:%b|passes:%s|werror:%b" l.Session.l_enabled
    (match l.Session.l_passes with
    | None -> "*"
    | Some ps -> String.concat "," ps)
    l.Session.l_werror

(* The version tag must be bumped whenever the Marshal'd payload layout
   changes (it serializes [Stats.t]); "v3" added the memo counters.  The
   memo configuration itself is deliberately *not* part of the key: a
   hit never changes verdicts or Figure-7 counts, so memo-on and
   memo-off runs may share entries.  A [--pgo] profile does enter the
   key, via the reordered index's fingerprint. *)
let toolchain_fingerprint (session : Session.t) : string =
  Rc_util.Vercache.fingerprint
    [
      (* v4: cone-keyed incremental entries joined the store; bumping the
         tag orphans every v3 whole-file entry so the two key families
         can never alias.  v5: the lint registry gained the concurrency
         passes (race/lockrel/lockord) — cached diagnostics from the
         five-pass registry would silently miss RC-L03x reports *)
      "refinedc-check-v5";
      Sys.ocaml_version;
      Rules.fingerprint session.Session.index;
      Registry.fingerprint session.Session.registry;
      type_defs_signature session.Session.tenv;
      "goal_simp:"
      ^ String.concat ","
          (Rc_lithium.Evar.simp_cfg_names session.Session.gs);
      lint_signature session.Session.lint;
    ]

let budget_signature (b : Rc_util.Budget.limits) : string =
  let num pp = Fmt.(option ~none:(any "none") pp) in
  Fmt.str "fuel:%a|timeout:%a|depth:%a" (num Fmt.int) b.Rc_util.Budget.fuel
    (num Fmt.float) b.Rc_util.Budget.timeout (num Fmt.int)
    b.Rc_util.Budget.max_depth

let invs_signature (invs : (string * loop_inv) list) : string =
  let binder ppf (x, srt) = Fmt.pf ppf "%s:%a" x Sort.pp srt in
  let var ppf (x, ty) = Fmt.pf ppf "%s:%a" x Rtype.pp_rtype ty in
  let inv ppf (label, (i : loop_inv)) =
    Fmt.pf ppf "%s{ex:%a|vars:%a|cstr:%a}" label
      Fmt.(list ~sep:comma binder)
      i.li_exists
      Fmt.(list ~sep:comma var)
      i.li_vars
      Fmt.(list ~sep:comma Term.pp_prop)
      i.li_constraints
  in
  Fmt.str "%a" Fmt.(list ~sep:semi inv) invs

(** The cache key for one function's check.  [specs_digest] covers the
    specifications of *all* functions in the file: a call's premise
    depends on the callee's spec, so any spec edit conservatively
    invalidates the whole file's entries (bodies of siblings do not). *)
let cache_key ~(session : Session.t) ~(specs_digest : string)
    (ftc : fn_to_check) : string =
  String.concat "\x00"
    [
      toolchain_fingerprint session;
      specs_digest;
      Syntax.show_func ftc.func;
      Rtype.spec_signature ftc.spec;
      invs_signature ftc.invs;
      budget_signature session.Session.budget;
    ]

(* ------------------------------------------------------------------ *)
(* Whole-program checking                                              *)
(* ------------------------------------------------------------------ *)

type program_result = {
  fn_results : (string * (E.result, Rc_lithium.Report.t) result) list;
}

let check_program ?(globals = []) ~(session : Session.t)
    (fns : fn_to_check list) : program_result =
  let specs = List.map (fun f -> (f.spec.fs_name, f.spec)) fns in
  {
    fn_results =
      List.map
        (fun f -> (f.spec.fs_name, check_fn ~globals ~session ~specs f))
        fns;
  }

let all_ok (r : program_result) =
  List.for_all (fun (_, res) -> Result.is_ok res) r.fn_results

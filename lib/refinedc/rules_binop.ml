(** Binary-operator rules (⊢BINOP), including the paper's O-OPTIONAL-EQ
    and O-ADD-UNINIT (Figure 6). *)

open Rc_pure
open Rc_pure.Term
module G = Rc_lithium.Goal
module Syntax = Rc_caesium.Syntax
module Layout = Rc_caesium.Layout
module Int_type = Rc_caesium.Int_type
open Rtype
open Lang
open Rule_aux

let mk name prio apply : E.rule = { E.rname = name; prio; heads = Some [ "binop" ]; apply }

let in_range it r =
  conj [ PLe (Num (Int_type.min_val it), r); PLe (r, Num (Int_type.max_val it)) ]

(* O-ARITH-INT: +, -, *, /, % on integers of a common type; the result
   must be representable (no signed overflow / unsigned wrap in verified
   code), divisors must be non-zero. *)
let o_arith =
  mk "O-ARITH-INT" 10 (fun _ri j ->
      match j with
      | FBinop
          { op; v1 = _; ty1 = TInt (it, n1); v2 = _; ty2 = TInt (it2, n2);
            cont; _ }
        when Int_type.equal it it2 -> (
          let ret ?(pre = PTrue) r =
            let r = Simp.simp_term r in
            Some
              (G.Star
                 ( G.LProp pre,
                   G.Star (G.LProp (in_range it r), cont r (TInt (it, r))) ))
          in
          match op with
          | Syntax.AddOp -> ret (Add (n1, n2))
          | Syntax.SubOp -> ret (Sub (n1, n2))
          | Syntax.MulOp -> ret (Mul (n1, n2))
          | Syntax.DivOp -> ret ~pre:(p_ne n2 (Num 0)) (Div (n1, n2))
          | Syntax.ModOp -> ret ~pre:(p_ne n2 (Num 0)) (Mod (n1, n2))
          | _ -> None)
      | _ -> None)

(* O-CMP-INT: comparisons yield φ @ bool. *)
let o_cmp =
  mk "O-CMP-INT" 11 (fun _ri j ->
      match j with
      | FBinop
          { op; ty1 = TInt (it, n1); ty2 = TInt (it2, n2); cont; _ }
        when Int_type.equal it it2 -> (
          let ret phi =
            Some (cont (bool_term phi) (TBool (Int_type.i32, phi)))
          in
          match op with
          | Syntax.EqOp -> ret (PEq (n1, n2))
          | Syntax.NeOp -> ret (p_ne n1 n2)
          | Syntax.LtOp -> ret (PLt (n1, n2))
          | Syntax.LeOp -> ret (PLe (n1, n2))
          | Syntax.GtOp -> ret (p_gt n1 n2)
          | Syntax.GeOp -> ret (p_ge n1 n2)
          | _ -> None)
      | _ -> None)

(* Literal shifts (page-allocator style size computations). *)
let o_shift =
  mk "O-SHIFT-INT" 12 (fun _ri j ->
      match j with
      | FBinop
          { op = Syntax.ShlOp; ty1 = TInt (it, n1); ty2 = TInt (_, Num k);
            cont; _ }
        when k >= 0 && k < Int_type.bits it ->
          let r = Simp.simp_term (Mul (n1, Num (1 lsl k))) in
          Some (G.Star (G.LProp (in_range it r), cont r (TInt (it, r))))
      | FBinop
          { op = Syntax.ShrOp; ty1 = TInt (it, n1); ty2 = TInt (_, Num k);
            cont; _ }
        when k >= 0 && k < Int_type.bits it ->
          let r = Simp.simp_term (Div (n1, Num (1 lsl k))) in
          Some (G.Star (G.LProp (PLe (Num 0, n1)), cont r (TInt (it, r))))
      | _ -> None)

(* O-OPTIONAL-EQ (Figure 6): comparing a nullable pointer against NULL
   forks on the refinement φ of the optional type. *)
let o_optional_eq =
  mk "O-OPTIONAL-EQ" 15 (fun ri j ->
      match j with
      | FBinop
          { op = (Syntax.EqOp | Syntax.NeOp) as op; ot1 = Syntax.OPtr;
            v1; ty1; ty2 = TNull; cont; _ }
      | FBinop
          { op = (Syntax.EqOp | Syntax.NeOp) as op; ot2 = Syntax.OPtr;
            v2 = v1; ty2 = ty1; ty1 = TNull; cont; _ } ->
          let res_eq b =
            (* result of [p == NULL] when nullness is [b] *)
            let phi = if b = (op = Syntax.EqOp) then PTrue else PFalse in
            cont (bool_term phi) (TBool (Int_type.i32, phi))
          in
          optional_cases ri v1 ty1
            ~on_own:(fun () -> res_eq false)
            ~on_null:(fun () -> res_eq true)
      | _ -> None)

(* Pointer equality between definite pointers. *)
let o_ptr_eq =
  mk "O-PTR-EQ" 16 (fun _ri j ->
      match j with
      | FBinop
          { op = (Syntax.EqOp | Syntax.NeOp) as op; ty1 = TPtrV l1;
            ty2 = TPtrV l2; cont; _ } ->
          let phi =
            if op = Syntax.EqOp then PEq (l1, l2) else p_ne l1 l2
          in
          Some (cont (bool_term phi) (TBool (Int_type.i32, phi)))
      | _ -> None)

(* O-ADD-UNINIT (Figure 6): adding an integer to a pointer into an
   uninitialized block splits the ownership at the computed boundary;
   both allocation directions of §6 go through this single rule. *)
let o_add_uninit =
  mk "O-ADD-UNINIT" 20 (fun ri j ->
      match j with
      | FBinop
          { op = Syntax.PtrPlusOp elem; v1 = _; ty1 = TPtrV l;
            ty2 = TInt (_, n); cont; _ } -> (
          let covering = function
            | LocTy (l', TUninit _) -> (
                match offset_between ~from_:l' l with
                | Some _ -> equal_term (loc_base l') (loc_base l)
                | None -> false)
            | _ -> false
          in
          match ri.E.ri_peek covering with
          | None -> None
          | Some _ ->
              Some
                (G.Find
                   {
                     descr = Fmt.str "%a ◁ₗ uninit" pp_term l;
                     pred = (fun _resolve a -> covering a);
                     cont =
                       (fun a ->
                         match a with
                         | LocTy (base, TUninit m) ->
                             let j_off =
                               Option.value ~default:(Num 0)
                                 (offset_between ~from_:base l)
                             in
                             let step =
                               Simp.simp_term
                                 (Mul (Num (Layout.size elem), n))
                             in
                             let cut = Simp.simp_term (Add (j_off, step)) in
                             let l' = Simp.simp_term (LocOfs (base, cut)) in
                             let open G in
                             Star
                               ( LProp (PLe (Num 0, cut)),
                                 Star
                                   ( LProp (PLe (cut, m)),
                                     wands
                                       [
                                         Rule_aux.luninit base cut;
                                         Rule_aux.luninit l'
                                           (Simp.simp_term (Sub (m, cut)));
                                       ]
                                       (cont l' (TPtrV l')) ) )
                         | _ -> assert false);
                   }))
      | _ -> None)

(* O-ADD-ARRAY: indexing into an integer array — a bounds check, no
   ownership split (cells are accessed through the array atom). *)
let o_add_array =
  mk "O-ADD-ARRAY" 21 (fun ri j ->
      match j with
      | FBinop
          { op = Syntax.PtrPlusOp elem; ty1 = TPtrV l; ty2 = TInt (_, n);
            cont; _ } -> (
          let covering = function
            | LocTy (l', TArrayInt _) -> (
                match offset_between ~from_:l' l with
                | Some _ -> equal_term (loc_base l') (loc_base l)
                | None -> false)
            | _ -> false
          in
          match ri.E.ri_peek covering with
          | Some (LocTy (base, TArrayInt (it, len, _)))
            when it.Int_type.size = Layout.size elem -> (
              match
                Option.bind (offset_between ~from_:base l)
                  (index_of_offset ~sz:it.Int_type.size)
              with
              | Some i ->
                  let idx = Simp.simp_term (Add (i, n)) in
                  let l' =
                    Simp.simp_term
                      (LocOfs (base, Mul (Num it.Int_type.size, idx)))
                  in
                  Some
                    (G.Star
                       ( G.LProp
                           (PAnd (PLe (Num 0, idx), PLe (idx, len))),
                         cont l' (TPtrV l') ))
              | None -> None)
          | _ -> None)
      | _ -> None)

(* Fallback pointer arithmetic: compute the address; the bounds are
   checked when the resulting ownership is consumed (deferred-split
   subsumption).  Documented deviation from the paper's eager check. *)
let o_add_plain =
  mk "O-ADD-PLAIN" 25 (fun _ri j ->
      match j with
      | FBinop
          { op = Syntax.PtrPlusOp elem; ty1 = TPtrV l; ty2 = TInt (_, n);
            cont; _ } ->
          let l' =
            Simp.simp_term (LocOfs (l, Mul (Num (Layout.size elem), n)))
          in
          Some (cont l' (TPtrV l'))
      | _ -> None)

(* Pointer difference within one object. *)
let o_ptr_diff =
  mk "O-PTR-DIFF" 26 (fun _ri j ->
      match j with
      | FBinop
          { op = Syntax.PtrDiffOp elem; ty1 = TPtrV l1; ty2 = TPtrV l2;
            cont; _ } -> (
          match offset_between ~from_:l2 l1 with
          | Some d ->
              let r = Simp.simp_term (Div (d, Num (Layout.size elem))) in
              Some (cont r (TInt (Int_type.i64, r)))
          | None -> None)
      | _ -> None)

let all : E.rule list =
  [
    o_arith;
    o_cmp;
    o_shift;
    o_optional_eq;
    o_ptr_eq;
    o_add_uninit;
    o_add_array;
    o_add_plain;
    o_ptr_diff;
  ]

(** RefinedC's typing judgments — the basic goals [F] of Lithium (§5–§6).

    Each program construct has a specialized judgment (⊢IF, ⊢BINOP, …)
    parameterized by the types of the values it operates on; the types
    uniquely determine the applicable rule, which is what makes the
    search syntax-directed.  Continuations (the [{v, τ. G}] parts) are
    higher-order, exactly as in the paper's continuation-passing
    judgments. *)

open Rc_pure
open Rc_pure.Term
module Syntax = Rc_caesium.Syntax
module Layout = Rc_caesium.Layout
module Int_type = Rc_caesium.Int_type
open Rtype

(** Side tables produced by the frontend: source locations of statements
    and terminators, and human-readable branch descriptions for error
    trails (the "else branch of if on line 11" of §2.1). *)
type fn_meta = {
  fm_stmt_locs : ((string * int) * Rc_util.Srcloc.t) list;
  fm_term_locs : (string * Rc_util.Srcloc.t) list;
  fm_block_descr : (string * string) list;
}

let empty_meta = { fm_stmt_locs = []; fm_term_locs = []; fm_block_descr = [] }

(** Loop invariant (rc::exists / rc::inv_vars / rc::constraints, §2.2). *)
type loop_inv = {
  li_exists : (string * Sort.t) list;
  li_vars : (string * rtype) list;  (** C variable ↦ type of its content *)
  li_constraints : prop list;
}

(** The function state Σ: CFG, specification, loop invariants, the
    variable environment (C variable ↦ location term), specs of callable
    functions, and frontend metadata. *)
type fn_ctx = {
  fc_func : Syntax.func;
  fc_spec : fn_spec;
  fc_specs : (string * fn_spec) list;
  fc_invs : (string * loop_inv) list;
  fc_env : (string * term) list;
  fc_penv : (string * term) list;
      (** instantiation of the spec parameters with this branch's fresh
          universals — applied to loop-invariant annotations *)
  fc_meta : fn_meta;
  fc_depth : int;  (** goto-inlining depth guard (loops need invariants) *)
}

type f =
  | FSubsume of { sub : atom; super : atom; cont : goal }
      (** A₁ <: A₂ {G} *)
  | FBlock of { sigma : fn_ctx; label : string; idx : int }
      (** ⊢STMT: the suffix of block [label] starting at statement [idx] *)
  | FGoto of { sigma : fn_ctx; target : string }
      (** jump to a block: proves the loop invariant if one is declared *)
  | FExpr of { sigma : fn_ctx; expr : Syntax.expr; cont : term -> rtype -> goal }
      (** ⊢EXPR e {v, τ. G} *)
  | FReadLoc of {
      loc_term : term;
      layout : Layout.t;
      atomic : bool;
      cont : term -> rtype -> goal;
      src : Rc_util.Srcloc.t option;
    }  (** typed read: find the atom owning [loc_term], then ⊢READ *)
  | FReadTy of {
      loc_term : term;
      sub_l : term;  (** subject of the atom found in Δ (base of array
                         or uninit block when they differ) *)
      ty : rtype;
      layout : Layout.t;
      atomic : bool;
      cont : term -> rtype -> goal;
      src : Rc_util.Srcloc.t option;
    }  (** ⊢READ, dispatching on the type of the location *)
  | FWriteLoc of {
      loc_term : term;
      layout : Layout.t;
      atomic : bool;
      v : term;
      vty : rtype;
      cont : goal;
      src : Rc_util.Srcloc.t option;
    }
  | FWriteTy of {
      loc_term : term;
      sub_l : term;
      ty : rtype;
      layout : Layout.t;
      atomic : bool;
      v : term;
      vty : rtype;
      cont : goal;
      src : Rc_util.Srcloc.t option;
    }
  | FBinop of {
      op : Syntax.binop;
      ot1 : Syntax.ot;
      ot2 : Syntax.ot;
      v1 : term;
      ty1 : rtype;
      v2 : term;
      ty2 : rtype;
      cont : term -> rtype -> goal;
      src : Rc_util.Srcloc.t option;
    }  (** ⊢BINOP (v₁:τ₁) ⊙ (v₂:τ₂) {v, τ. G} *)
  | FUnop of {
      op : Syntax.unop;
      ot : Syntax.ot;
      v : term;
      ty : rtype;
      cont : term -> rtype -> goal;
      src : Rc_util.Srcloc.t option;
    }
  | FCast of {
      from_ : Int_type.t;
      to_ : Int_type.t;
      v : term;
      ty : rtype;
      cont : term -> rtype -> goal;
      src : Rc_util.Srcloc.t option;
    }
  | FIf of {
      v : term;
      ty : rtype;
      gthen : goal;
      gelse : goal;
      lbl_then : string option;  (** branch-trail labels for errors *)
      lbl_else : string option;
      src : Rc_util.Srcloc.t option;
    }  (** ⊢IF τ then s₁ else s₂ *)
  | FSwitchJ of {
      v : term;
      ty : rtype;
      cases : (int * goal) list;
      dflt : goal;
      src : Rc_util.Srcloc.t option;
    }
  | FCall of {
      spec : fn_spec;
      args : (term * rtype) list;
      cont : term -> rtype -> goal;
      src : Rc_util.Srcloc.t option;
    }  (** call a function whose (instantiated) spec is known *)
  | FCas of {
      it : Int_type.t;
      vobj : term;
      tobj : rtype;
      vexp : term;
      texp : rtype;
      vdes : term;
      tdes : rtype;
      cont : term -> rtype -> goal;
      src : Rc_util.Srcloc.t option;
    }  (** ⊢CAS (§6, rule CAS-BOOL) *)

and goal = (f, atom) Rc_lithium.Goal.goal

(* ------------------------------------------------------------------ *)
(* LANG instance                                                       *)
(* ------------------------------------------------------------------ *)

let head_of_f = function
  | FSubsume _ -> "subsume"
  | FBlock _ -> "stmt"
  | FGoto _ -> "goto"
  | FExpr _ -> "expr"
  | FReadLoc _ -> "read-loc"
  | FReadTy _ -> "read"
  | FWriteLoc _ -> "write-loc"
  | FWriteTy _ -> "write"
  | FBinop _ -> "binop"
  | FUnop _ -> "unop"
  | FCast _ -> "cast"
  | FIf _ -> "if"
  | FSwitchJ _ -> "switch"
  | FCall _ -> "call"
  | FCas _ -> "cas"

(** Every head {!head_of_f} can produce — the valid vocabulary for a
    rule's [heads] declaration (a declared head outside this list can
    never be dispatched to). *)
let all_heads =
  [
    "subsume"; "stmt"; "goto"; "expr"; "read-loc"; "read"; "write-loc";
    "write"; "binop"; "unop"; "cast"; "if"; "switch"; "call"; "cas";
  ]

(* The interned-head vocabulary: [head_id_of_f] must stay aligned with
   [head_names] (same order as [all_heads] and [head_of_f]). *)
let head_names = Array.of_list all_heads

let head_id_of_f = function
  | FSubsume _ -> 0
  | FBlock _ -> 1
  | FGoto _ -> 2
  | FExpr _ -> 3
  | FReadLoc _ -> 4
  | FReadTy _ -> 5
  | FWriteLoc _ -> 6
  | FWriteTy _ -> 7
  | FBinop _ -> 8
  | FUnop _ -> 9
  | FCast _ -> 10
  | FIf _ -> 11
  | FSwitchJ _ -> 12
  | FCall _ -> 13
  | FCas _ -> 14

(** Memoizable judgments.  ⊢GOTO is the only one: its continuation is
    fully implied by its own data (the target block's code, looked up in
    [sigma]), so its printed identity plus the resolved Δ determines the
    whole subtree.  Every other judgment carries its continuation as a
    closure the printer cannot see.  The key includes the goto-inlining
    depth (it bounds further inlining) and the parameter/variable
    environments, which are the only [sigma] components that vary
    between visits to the same target within one checked function. *)
let memo_key_of_f (resolve : term -> term) = function
  | FGoto { sigma; target } ->
      let b = Buffer.create 128 in
      Buffer.add_string b target;
      Buffer.add_char b '@';
      Buffer.add_string b (string_of_int sigma.fc_depth);
      List.iter
        (fun (x, t) ->
          Buffer.add_char b ';';
          Buffer.add_string b x;
          Buffer.add_char b '=';
          Buffer.add_string b (term_to_string (resolve t)))
        sigma.fc_penv;
      List.iter
        (fun (x, t) ->
          Buffer.add_char b '!';
          Buffer.add_string b x;
          Buffer.add_char b '=';
          Buffer.add_string b (term_to_string (resolve t)))
        sigma.fc_env;
      Some (Buffer.contents b)
  | _ -> None

let stmt_loc sigma label idx =
  List.assoc_opt (label, idx) sigma.fc_meta.fm_stmt_locs

let term_loc sigma label = List.assoc_opt label sigma.fc_meta.fm_term_locs

let loc_of_f = function
  | FSubsume _ -> None
  | FBlock { sigma; label; idx } -> (
      match stmt_loc sigma label idx with
      | Some l -> Some l
      | None -> term_loc sigma label)
  | FGoto _ -> None
  | FExpr _ -> None
  | FReadLoc { src; _ }
  | FReadTy { src; _ }
  | FWriteLoc { src; _ }
  | FWriteTy { src; _ }
  | FBinop { src; _ }
  | FUnop { src; _ }
  | FCast { src; _ }
  | FIf { src; _ }
  | FSwitchJ { src; _ }
  | FCall { src; _ }
  | FCas { src; _ } ->
      src

let pp_f ppf (j : f) =
  let p fmt = Fmt.pf ppf fmt in
  match j with
  | FSubsume { sub; super; _ } ->
      p "%a <: %a" pp_atom sub pp_atom super
  | FBlock { label; idx; _ } -> p "⊢STMT %s[%d]" label idx
  | FGoto { target; _ } -> p "⊢GOTO %s" target
  | FExpr { expr; _ } -> p "⊢EXPR %s" (Syntax.show_expr expr)
  | FReadLoc { loc_term; _ } -> p "⊢READ-LOC %a" pp_term loc_term
  | FReadTy { loc_term; ty; _ } ->
      p "⊢READ %a : %a" pp_term loc_term pp_rtype ty
  | FWriteLoc { loc_term; v; _ } ->
      p "⊢WRITE-LOC %a := %a" pp_term loc_term pp_term v
  | FWriteTy { loc_term; ty; v; vty; _ } ->
      p "⊢WRITE (%a : %a) := (%a : %a)" pp_term loc_term pp_rtype ty pp_term v
        pp_rtype vty
  | FBinop { op; v1; ty1; v2; ty2; _ } ->
      p "⊢BINOP (%a : %a) %s (%a : %a)" pp_term v1 pp_rtype ty1
        (Syntax.show_binop op) pp_term v2 pp_rtype ty2
  | FUnop { op; v; ty; _ } ->
      p "⊢UNOP %s (%a : %a)" (Syntax.show_unop op) pp_term v pp_rtype ty
  | FCast { from_; to_; v; _ } ->
      p "⊢CAST %a : %a → %a" pp_term v Int_type.pp from_ Int_type.pp to_
  | FIf { v; ty; _ } -> p "⊢IF (%a : %a)" pp_term v pp_rtype ty
  | FSwitchJ { v; ty; _ } -> p "⊢SWITCH (%a : %a)" pp_term v pp_rtype ty
  | FCall { spec; _ } -> p "⊢CALL %s" spec.fs_name
  | FCas { vobj; _ } -> p "⊢CAS %a" pp_term vobj

module L = struct
  type nonrec f = f
  type atom = Rtype.atom

  (* the language environment handed to rules is the session's
     named-type definitions *)
  type env = Rtype.tenv

  let pp_f = pp_f
  let pp_atom = Rtype.pp_atom
  let head_of_f = head_of_f
  let head_id_of_f = head_id_of_f
  let head_names = head_names
  let memo_key_of_f = memo_key_of_f
  let loc_of_f = loc_of_f
  let related = Rtype.related
  let resolve_atom = Rtype.resolve_atom

  let mk_subsume sub super cont = FSubsume { sub; super; cont }
end

module E = Rc_lithium.Engine.Make (L)

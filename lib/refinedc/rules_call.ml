(** Function calls (first-class, §3) and compare-and-swap (CAS-BOOL, §6). *)

open Rc_pure
open Rc_pure.Term
module G = Rc_lithium.Goal
module Int_type = Rc_caesium.Int_type
open Rtype
open Lang
open Convert
open Rule_aux

let mk ~heads name prio apply : E.rule = { E.rname = name; prio; heads = Some heads; apply }

(* T-CALL: instantiate the callee's parameters with (sealed) evars, check
   the arguments left to right, then the preconditions — the order §5
   relies on for predictable evar instantiation — and assume the
   postcondition for fresh universals. *)
let t_call =
  mk ~heads:[ "call" ] "T-CALL" 5 (fun ri j ->
      match j with
      | FCall { spec; args; cont; _ } ->
          if List.length args <> List.length spec.fs_args then None
          else
            let env =
              List.map
                (fun (x, s) -> (x, ri.E.ri_evar ~hint:x s))
                spec.fs_params
            in
            let arg_goals g =
              List.fold_right2
                (fun (v, vty) tspec g ->
                  G.Wand
                    (intro_val ri.E.ri_env v vty, require_val ri.E.ri_env v (subst_rtype env tspec) g))
                args spec.fs_args g
            in
            let pre_goal g =
              require_hres_list ri.E.ri_env (List.map (subst_hres env) spec.fs_pre) g
            in
            let post_goal =
              let rec open_exists acc = function
                | [] ->
                    let env' = acc @ env in
                    let ret_ty = subst_rtype env' spec.fs_ret in
                    let v_r =
                      fresh_val ri ~hint:"ret" (value_sort ret_ty)
                    in
                    G.Wand
                      ( intro_val ri.E.ri_env v_r ret_ty,
                        G.Wand
                          ( intro_hres_list ri.E.ri_env
                              (List.map (subst_hres env') spec.fs_post),
                            cont v_r ret_ty ) )
                | (x, s) :: rest ->
                    G.All (x, s, fun t -> open_exists ((x, t) :: acc) rest)
              in
              open_exists [] spec.fs_exists
            in
            Some (arg_goals (pre_goal post_goal))
      | _ -> None)

(* ------------------------------------------------------------------ *)
(* CAS                                                                 *)
(* ------------------------------------------------------------------ *)

let const_bool (ty : rtype) : bool option =
  match ty with
  | TBool (_, phi) -> (
      match Simp.simp_prop phi with
      | PTrue -> Some true
      | PFalse -> Some false
      | _ -> None)
  | TInt (_, n) -> (
      match Simp.simp_term n with
      | Num 1 -> Some true
      | Num 0 -> Some false
      | _ -> None)
  | _ -> None

(* CAS-BOOL (Figure 6): the expected and desired values have singleton
   boolean types b₁ and b₂; failure flips the expected slot (the cell is
   a boolean, so differing from b₁ means ¬b₁); success exchanges the
   resources held by the atomic boolean. *)
(* If the CAS target is still folded inside a named type (e.g. a lock
   struct), unfold it in Δ first, then retry. *)
let t_cas_unfold =
  mk ~heads:[ "cas" ] "CAS-UNFOLD" 4 (fun ri j ->
      match j with
      | FCas ({ vobj; _ } as r) -> (
          let vobj = Simp.simp_term (ri.E.ri_resolve vobj) in
          let is_bool_cell = function
            | LocTy (l, TAtomicBool _) -> equal_term l vobj
            | _ -> false
          in
          if ri.E.ri_peek is_bool_cell <> None then None
          else
            let folded = function
              | LocTy (l, TNamed (n, _)) -> (
                  equal_term (loc_base l) (loc_base vobj)
                  &&
                  match find_type_def ri.E.ri_env n with
                  | Some { td_layout = Some _; _ } -> true
                  | _ -> false)
              | _ -> false
            in
            match ri.E.ri_peek folded with
            | None -> None
            | Some _ ->
                Some
                  (G.Find
                     {
                       descr = Fmt.str "%a ◁ₗ named (CAS unfold)" pp_term vobj;
                       pred = (fun _resolve a -> folded a);
                       cont =
                         (fun a ->
                           match a with
                           | LocTy (l, TNamed (n, args)) -> (
                               match unfold_named ri.E.ri_env n args with
                               | Some body ->
                                   G.Wand
                                     (intro_loc ri.E.ri_env l body, G.Basic (FCas r))
                               | None -> G.Star (G.LProp PFalse, G.True_))
                           | _ -> assert false);
                     }))
      | _ -> None)

let t_cas =
  mk ~heads:[ "cas" ] "CAS-BOOL" 5 (fun ri j ->
      match j with
      | FCas { it; vobj; vexp; tdes; cont; _ } -> (
          match const_bool tdes with
          | None -> None
          | Some b2 ->
              Some
                (G.Find
                   {
                     descr = Fmt.str "%a ◁ₗ atomicbool" pp_term vobj;
                     pred =
                       (fun resolve a ->
                         match a with
                         | LocTy (l, TAtomicBool _) ->
                             equal_term l (Simp.simp_term (resolve vobj))
                         | _ -> false);
                     cont =
                       (fun cell ->
                         match cell with
                         | LocTy (_, TAtomicBool (itc, _phi, ht, hf))
                           when Int_type.equal itc it ->
                             G.Find
                               {
                                 descr =
                                   Fmt.str "%a ◁ₗ bool (CAS expected)"
                                     pp_term vexp;
                                 pred =
                                   (fun resolve a ->
                                     match a with
                                     | LocTy (l, (TBool _ | TInt _)) ->
                                         equal_term l
                                           (Simp.simp_term (resolve vexp))
                                     | _ -> false);
                                 cont =
                                   (fun expected ->
                                     match expected with
                                     | LocTy (_, ety) -> (
                                         match const_bool ety with
                                         | None ->
                                             G.Star (G.LProp PFalse, G.True_)
                                         | Some b1 ->
                                             let bool_place b =
                                               LocTy
                                                 ( vexp,
                                                   TBool
                                                     ( it,
                                                       if b then PTrue
                                                       else PFalse ) )
                                             in
                                             let cell_with phi =
                                               LocTy
                                                 ( vobj,
                                                   TAtomicBool (it, phi, ht, hf)
                                                 )
                                             in
                                             let res b =
                                               ( bool_term
                                                   (if b then PTrue else PFalse),
                                                 TBool
                                                   ( Int_type.i32,
                                                     if b then PTrue
                                                     else PFalse ) )
                                             in
                                             let fail_branch =
                                               (* the cell held ¬b₁ *)
                                               G.wands
                                                 [
                                                   G.LAtom
                                                     (bool_place (not b1));
                                                   G.LAtom
                                                     (cell_with
                                                        (if b1 then PFalse
                                                         else PTrue));
                                                 ]
                                                 (let v, t = res false in
                                                  cont v t)
                                             in
                                             let succ_branch =
                                               (* receive the resources of
                                                  state b₁, provide those of
                                                  state b₂ *)
                                               G.Wand
                                                 ( intro_hres_list ri.E.ri_env
                                                     (if b1 then ht else hf),
                                                   G.Wand
                                                     ( G.LAtom (bool_place b1),
                                                       require_hres_list ri.E.ri_env
                                                         (if b2 then ht else hf)
                                                         (G.Wand
                                                            ( G.LAtom
                                                                (cell_with
                                                                   (if b2 then
                                                                      PTrue
                                                                    else
                                                                      PFalse)),
                                                              let v, t =
                                                                res true
                                                              in
                                                              cont v t )) ) )
                                             in
                                             G.AndG
                                               [
                                                 ( Some "case: CAS fails",
                                                   fail_branch );
                                                 ( Some "case: CAS succeeds",
                                                   succ_branch );
                                               ])
                                     | _ -> assert false);
                               }
                         | _ -> G.Star (G.LProp PFalse, G.True_));
                   }))
      | _ -> None)

let all : E.rule list = [ t_call; t_cas_unfold; t_cas ]

(* Tests for the Caesium core language: values, layouts, heap, the
   interpreter's defined and undefined behaviours, and the data-race
   monitor. *)

open Rc_caesium
open Rc_caesium.Syntax

let it_i32 = Int_type.i32
let it_u64 = Int_type.u64
let li32 = Layout.Int it_i32
let lu64 = Layout.Int it_u64

let use ?(atomic = false) layout arg = Use { atomic; layout; arg }
let iconst n = IntConst (n, it_i32)

let binop op e1 e2 =
  BinOp { op; ot1 = OInt it_i32; ot2 = OInt it_i32; e1; e2 }

let value_tests =
  let t name f = Alcotest.test_case name `Quick f in
  [
    t "int roundtrip" (fun () ->
        List.iter
          (fun n ->
            Alcotest.(check (option int))
              "roundtrip" (Some n)
              (Value.to_int it_i32 (Value.of_int it_i32 n)))
          [ 0; 1; -1; 42; 0x7fffffff; -0x80000000 ]);
    t "u8 roundtrip" (fun () ->
        Alcotest.(check (option int))
          "255" (Some 255)
          (Value.to_int Int_type.u8 (Value.of_int Int_type.u8 255)));
    t "loc roundtrip" (fun () ->
        let l = Loc.ptr 3 16 in
        Alcotest.(check bool)
          "roundtrip" true
          (Value.to_loc (Value.of_loc l) = Some l));
    t "null roundtrip" (fun () ->
        Alcotest.(check bool)
          "null" true
          (Value.to_loc (Value.of_loc Loc.Null) = Some Loc.Null));
    t "fn ptr roundtrip" (fun () ->
        Alcotest.(check (option string))
          "fn" (Some "main")
          (Value.to_fn (Value.of_fn "main")));
    t "poison detected" (fun () ->
        Alcotest.(check bool) "poison" true (Value.has_poison (Value.poison 4)));
    t "wrap u8" (fun () ->
        Alcotest.(check int) "wrap" 44 (Int_type.wrap Int_type.u8 300));
    t "wrap i8" (fun () ->
        Alcotest.(check int) "wrap" (-128) (Int_type.wrap Int_type.i8 128));
  ]

let layout_tests =
  let t name f = Alcotest.test_case name `Quick f in
  [
    t "struct padding" (fun () ->
        (* struct { char c; int x; } -> x at offset 4, size 8 *)
        let sl =
          Layout.mk_struct "s" [ ("c", Layout.Int Int_type.i8); ("x", li32) ]
        in
        let f = Layout.field_exn sl "x" in
        Alcotest.(check int) "offset" 4 f.Layout.fld_ofs;
        Alcotest.(check int) "size" 8 sl.Layout.sl_size;
        Alcotest.(check int) "align" 4 sl.Layout.sl_align);
    t "mem_t layout" (fun () ->
        (* struct mem_t { size_t len; unsigned char *buffer; } *)
        let sl = Layout.mk_struct "mem_t" [ ("len", lu64); ("buffer", Layout.Ptr) ] in
        Alcotest.(check int) "size" 16 sl.Layout.sl_size;
        Alcotest.(check int)
          "buffer offset" 8
          (Layout.field_exn sl "buffer").Layout.fld_ofs);
    t "array layout" (fun () ->
        Alcotest.(check int) "size" 40 (Layout.size (Layout.Array (li32, 10))));
  ]

let heap_tests =
  let t name f = Alcotest.test_case name `Quick f in
  [
    t "alloc store load" (fun () ->
        let h = Heap.create () in
        let l = Heap.alloc h 8 in
        Heap.store h l (Value.of_int it_u64 123456789);
        Alcotest.(check (option int))
          "load" (Some 123456789)
          (Value.to_int it_u64 (Heap.load h l 8)));
    t "oob load" (fun () ->
        let h = Heap.create () in
        let l = Heap.alloc h 4 in
        Alcotest.check_raises "oob"
          (Ub.Undef (Ub.Out_of_bounds { loc = Loc.shift l 2; size = 4 }))
          (fun () -> ignore (Heap.load h (Loc.shift l 2) 4)));
    t "use after free" (fun () ->
        let h = Heap.create () in
        let l = Heap.alloc h 4 in
        Heap.free h l;
        Alcotest.check_raises "uaf" (Ub.Undef (Ub.Use_after_free l)) (fun () ->
            ignore (Heap.load h l 4)));
    t "double free" (fun () ->
        let h = Heap.create () in
        let l = Heap.alloc h 4 in
        Heap.free h l;
        Alcotest.check_raises "double free"
          (Ub.Undef (Ub.Ptr_arith_invalid "free of interior or dead pointer"))
          (fun () -> Heap.free h l));
    t "fresh allocations disjoint" (fun () ->
        let h = Heap.create () in
        let l1 = Heap.alloc h 8 and l2 = Heap.alloc h 8 in
        Alcotest.(check bool) "disjoint" false (Loc.equal l1 l2));
  ]

(* -------------------------------------------------------------- *)
(* Whole-program interpretation                                    *)
(* -------------------------------------------------------------- *)

(* int sum_to(int n) { int acc = 0; int i = 1;
     while (i <= n) { acc += i; i++; } return acc; } *)
let sum_to_fn =
  {
    fname = "sum_to";
    args = [ ("n", li32) ];
    locals = [ ("acc", li32); ("i", li32) ];
    ret_layout = li32;
    entry = "b0";
    blocks =
      [
        ( "b0",
          {
            stmts =
              [
                Assign { atomic = false; layout = li32; lhs = VarLoc "acc"; rhs = iconst 0 };
                Assign { atomic = false; layout = li32; lhs = VarLoc "i"; rhs = iconst 1 };
              ];
            term = Goto "loop";
          } );
        ( "loop",
          {
            stmts = [];
            term =
              CondGoto
                {
                  ot = OInt it_i32;
                  cond = binop LeOp (use li32 (VarLoc "i")) (use li32 (VarLoc "n"));
                  if_true = "body";
                  if_false = "done";
                };
          } );
        ( "body",
          {
            stmts =
              [
                Assign
                  {
                    atomic = false;
                    layout = li32;
                    lhs = VarLoc "acc";
                    rhs = binop AddOp (use li32 (VarLoc "acc")) (use li32 (VarLoc "i"));
                  };
                Assign
                  {
                    atomic = false;
                    layout = li32;
                    lhs = VarLoc "i";
                    rhs = binop AddOp (use li32 (VarLoc "i")) (iconst 1);
                  };
              ];
            term = Goto "loop";
          } );
        ("done", { stmts = []; term = Return (Some (use li32 (VarLoc "acc"))) });
      ];
  }

let prog_sum = { empty_program with funcs = [ ("sum_to", sum_to_fn) ] }

(* A function with signed overflow: int bad(void){ int x = INT_MAX; return x+1; } *)
let overflow_fn =
  {
    fname = "bad";
    args = [];
    locals = [ ("x", li32) ];
    ret_layout = li32;
    entry = "b0";
    blocks =
      [
        ( "b0",
          {
            stmts =
              [
                Assign
                  { atomic = false; layout = li32; lhs = VarLoc "x"; rhs = iconst 0x7fffffff };
              ];
            term = Return (Some (binop AddOp (use li32 (VarLoc "x")) (iconst 1)));
          } );
      ];
  }

(* Reading an uninitialized local is a poison use. *)
let uninit_fn =
  {
    fname = "uninit";
    args = [];
    locals = [ ("x", li32) ];
    ret_layout = li32;
    entry = "b0";
    blocks = [ ("b0", { stmts = []; term = Return (Some (use li32 (VarLoc "x"))) }) ];
  }

(* Two threads increment a shared global without synchronization: race. *)
let racy_inc =
  {
    fname = "racy_inc";
    args = [];
    locals = [];
    ret_layout = Layout.Void;
    entry = "b0";
    blocks =
      [
        ( "b0",
          {
            stmts =
              [
                Assign
                  {
                    atomic = false;
                    layout = li32;
                    lhs = VarLoc "counter";
                    rhs = binop AddOp (use li32 (VarLoc "counter")) (iconst 1);
                  };
              ];
            term = Return None;
          } );
      ];
  }

(* Spinlock-protected increment: acquire a lock with CAS, then touch the
   shared counter, then release with an atomic store.  No race. *)
let locked_inc =
  let lock_layout = li32 in
  {
    fname = "locked_inc";
    args = [];
    locals = [ ("exp", li32); ("ok", li32) ];
    ret_layout = Layout.Void;
    entry = "acquire";
    blocks =
      [
        ( "acquire",
          {
            stmts =
              [
                Assign { atomic = false; layout = li32; lhs = VarLoc "exp"; rhs = iconst 0 };
                Cas
                  {
                    layout = lock_layout;
                    obj = VarLoc "lock";
                    expected = VarLoc "exp";
                    desired = iconst 1;
                    dest = Some (li32, VarLoc "ok");
                  };
              ];
            term =
              CondGoto
                {
                  ot = OInt it_i32;
                  cond = use li32 (VarLoc "ok");
                  if_true = "crit";
                  if_false = "acquire";
                };
          } );
        ( "crit",
          {
            stmts =
              [
                Assign
                  {
                    atomic = false;
                    layout = li32;
                    lhs = VarLoc "counter";
                    rhs = binop AddOp (use li32 (VarLoc "counter")) (iconst 1);
                  };
                (* release: atomic store of 0 *)
                Assign { atomic = true; layout = li32; lhs = VarLoc "lock"; rhs = iconst 0 };
              ];
            term = Return None;
          } );
      ];
  }

(* init thread for the shared state *)
let init_shared =
  {
    fname = "init_shared";
    args = [];
    locals = [];
    ret_layout = Layout.Void;
    entry = "b0";
    blocks =
      [
        ( "b0",
          {
            stmts =
              [
                Assign { atomic = false; layout = li32; lhs = VarLoc "counter"; rhs = iconst 0 };
                Assign { atomic = true; layout = li32; lhs = VarLoc "lock"; rhs = iconst 0 };
              ];
            term = Return None;
          } );
      ];
  }

let conc_prog =
  {
    funcs =
      [
        ("racy_inc", racy_inc);
        ("locked_inc", locked_inc);
        ("init_shared", init_shared);
      ];
    globals = [ ("counter", li32); ("lock", li32) ];
    structs = [];
  }

let interp_tests =
  let t name f = Alcotest.test_case name `Quick f in
  [
    t "sum_to 10 = 55" (fun () ->
        match Eval.run_fn prog_sum "sum_to" [ Value.of_int it_i32 10 ] with
        | Eval.Finished (Some v) ->
            Alcotest.(check (option int)) "result" (Some 55) (Value.to_int it_i32 v)
        | _ -> Alcotest.fail "expected normal termination");
    t "sum_to 0 = 0" (fun () ->
        match Eval.run_fn prog_sum "sum_to" [ Value.of_int it_i32 0 ] with
        | Eval.Finished (Some v) ->
            Alcotest.(check (option int)) "result" (Some 0) (Value.to_int it_i32 v)
        | _ -> Alcotest.fail "expected normal termination");
    t "signed overflow is UB" (fun () ->
        let prog = { empty_program with funcs = [ ("bad", overflow_fn) ] } in
        match Eval.run_fn prog "bad" [] with
        | Eval.Undefined (Ub.Signed_overflow _) -> ()
        | _ -> Alcotest.fail "expected signed overflow UB");
    t "uninitialized read is UB" (fun () ->
        let prog = { empty_program with funcs = [ ("uninit", uninit_fn) ] } in
        match Eval.run_fn prog "uninit" [] with
        | Eval.Undefined (Ub.Poison_use _) -> ()
        | _ -> Alcotest.fail "expected poison-use UB");
    t "out of fuel on infinite loop" (fun () ->
        let inf =
          {
            fname = "inf";
            args = [];
            locals = [];
            ret_layout = Layout.Void;
            entry = "b0";
            blocks = [ ("b0", { stmts = []; term = Goto "b0" }) ];
          }
        in
        let prog = { empty_program with funcs = [ ("inf", inf) ] } in
        match Eval.run_fn ~fuel:1000 prog "inf" [] with
        | Eval.Out_of_fuel -> ()
        | _ -> Alcotest.fail "expected out of fuel");
  ]

let race_tests =
  let t name f = Alcotest.test_case name `Quick f in
  let run_seeds which expect_race =
    (* try several schedules; a race must be found by some seed for the
       racy program and by no seed for the locked one *)
    let seeds = [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ] in
    let raced = ref false in
    List.iter
      (fun seed ->
        match
          Eval.run_threads ~seed ~init:("init_shared", []) conc_prog
            [ (which, []); (which, []) ]
        with
        | Eval.T_undefined (Ub.Data_race _) -> raced := true
        | Eval.T_undefined u -> Alcotest.failf "unexpected UB: %s" (Ub.to_string u)
        | _ -> ())
      seeds;
    Alcotest.(check bool) "race found" expect_race !raced
  in
  [
    t "unsynchronized counter races" (fun () -> run_seeds "racy_inc" true);
    t "spinlock-protected counter does not race" (fun () ->
        run_seeds "locked_inc" false);
  ]

(* -------------------------------------------------------------- *)
(* Property-based tests                                             *)
(* -------------------------------------------------------------- *)

let prop_tests =
  let open QCheck in
  let int_types =
    [ Int_type.i8; Int_type.u8; Int_type.i16; Int_type.u16; Int_type.i32;
      Int_type.u32; Int_type.i64; Int_type.size_t ]
  in
  let roundtrip =
    Test.make ~count:500 ~name:"integer encode/decode roundtrips"
      (pair (int_range 0 7) int)
      (fun (i, raw) ->
        let it = List.nth int_types i in
        let n =
          let lo = Int_type.min_val it and hi = Int_type.max_val it in
          (* avoid native-int overflow when the range spans most of it *)
          if raw >= 0 then hi - (raw mod (hi + 1)) else lo - (raw mod (lo - 1))
        in
        Value.to_int it (Value.of_int it n) = Some n)
  in
  let wrap_in_range =
    Test.make ~count:500 ~name:"wrap lands in range"
      (pair (int_range 0 5) int)
      (fun (i, n) ->
        let it = List.nth int_types i in
        Int_type.in_range it (Int_type.wrap it n))
  in
  let layout_disjoint =
    Test.make ~count:200 ~name:"struct fields are disjoint and aligned"
      (list_of_size (Gen.int_range 1 6) (int_range 0 7))
      (fun idxs ->
        let fields =
          List.mapi
            (fun i k ->
              (Printf.sprintf "f%d" i, Layout.Int (List.nth int_types k)))
            idxs
        in
        let sl = Layout.mk_struct "s" fields in
        let ranges =
          List.map
            (fun fd ->
              (fd.Layout.fld_ofs,
               fd.Layout.fld_ofs + Layout.size fd.Layout.fld_layout,
               Layout.align fd.Layout.fld_layout))
            sl.Layout.sl_fields
        in
        (* aligned *)
        List.for_all (fun (o, _, a) -> o mod a = 0) ranges
        (* pairwise disjoint *)
        && List.for_all
             (fun (o1, e1, _) ->
               List.for_all
                 (fun (o2, e2, _) -> e1 <= o2 || e2 <= o1 || (o1 = o2 && e1 = e2))
                 (List.filter (fun (o2, _, _) -> o2 <> o1) ranges))
             ranges
        (* contained *)
        && List.for_all (fun (_, e, _) -> e <= sl.Layout.sl_size) ranges)
  in
  let deterministic =
    Test.make ~count:50 ~name:"interpreter is deterministic"
      (int_range 0 60)
      (fun n ->
        let run () =
          match Eval.run_fn prog_sum "sum_to" [ Value.of_int it_i32 n ] with
          | Eval.Finished (Some v) -> Value.to_int it_i32 v
          | _ -> None
        in
        run () = run () && run () = Some (n * (n + 1) / 2))
  in
  List.map QCheck_alcotest.to_alcotest
    [ roundtrip; wrap_in_range; layout_disjoint; deterministic ]

let () =
  Alcotest.run "caesium"
    [
      ("values", value_tests);
      ("layouts", layout_tests);
      ("heap", heap_tests);
      ("interp", interp_tests);
      ("races", race_tests);
      ("properties", prop_tests);
    ]

test/test_caesium.mli:

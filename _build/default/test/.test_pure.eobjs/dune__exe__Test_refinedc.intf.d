test/test_refinedc.mli:

test/test_pure.ml: Alcotest Fmt Linarith List List_solver Mset_solver Printf QCheck QCheck_alcotest Rc_pure Rc_studies Registry Set_solver Simp Sort String

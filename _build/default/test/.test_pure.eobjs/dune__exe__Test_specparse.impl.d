test/test_specparse.ml: Alcotest Rc_caesium Rc_frontend Rc_pure Rc_refinedc Rc_studies Sort

test/test_refinedc.ml: Alcotest Int_type Lang Layout Rc_caesium Rc_lithium Rc_pure Rc_refinedc Sort String Typecheck

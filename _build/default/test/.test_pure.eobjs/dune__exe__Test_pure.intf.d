test/test_pure.mli:

test/test_lithium.ml: Alcotest Fmt List Rc_lithium Rc_pure Sort String

test/test_sem.ml: Alcotest List Random Rc_caesium Rc_frontend Rc_pure Rc_refinedc Rc_sem Rc_studies Sort

test/test_cases.ml: Alcotest Filename Fmt In_channel List Rc_cert Rc_frontend Rc_lithium Rc_refinedc Rc_sem Rc_studies Str Sys

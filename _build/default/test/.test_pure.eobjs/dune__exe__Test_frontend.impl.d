test/test_frontend.ml: Alcotest Driver Filename List Rc_caesium Rc_frontend Rc_lithium Str Sys

test/test_specparse.mli:

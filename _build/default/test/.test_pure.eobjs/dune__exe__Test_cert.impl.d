test/test_cert.ml: Alcotest Filename Fmt List Rc_cert Rc_frontend Rc_lithium Rc_pure Rc_refinedc Rc_studies Sys

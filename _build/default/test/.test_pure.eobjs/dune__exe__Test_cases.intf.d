test/test_cases.mli:

test/test_caesium.ml: Alcotest Eval Gen Heap Int_type Layout List Loc Printf QCheck QCheck_alcotest Rc_caesium Test Ub Value

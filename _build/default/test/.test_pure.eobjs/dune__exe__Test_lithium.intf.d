test/test_lithium.mli:

// The memory allocator of Figure 1 (paper §1/§2.1), plus the
// begin-allocating variant suggested by a PLDI reviewer (§6).

typedef unsigned long size_t;

struct [[rc::refined_by("a: nat")]] mem_t {
  [[rc::field("a @ int<size_t>")]] size_t len;
  [[rc::field("&own<uninit<a>>")]] unsigned char* buffer;
};

[[rc::parameters("a: nat", "n: nat", "p: loc")]]
[[rc::args("p @ &own<a @ mem_t>", "n @ int<size_t>")]]
[[rc::returns("{n <= a} @ optional<&own<uninit<n>>, null>")]]
[[rc::ensures("own p : (n <= a ? a - n : a) @ mem_t")]]
void* alloc(struct mem_t* d, size_t sz) {
  if (sz > d->len)
    return NULL;
  d->len -= sz;
  return d->buffer + d->len;
}

[[rc::parameters("a: nat", "n: nat", "p: loc")]]
[[rc::args("p @ &own<a @ mem_t>", "n @ int<size_t>")]]
[[rc::returns("{n <= a} @ optional<&own<uninit<n>>, null>")]]
[[rc::ensures("own p : (n <= a ? a - n : a) @ mem_t")]]
void* alloc_begin(struct mem_t* d, size_t sz) {
  if (sz > d->len)
    return NULL;
  unsigned char* res = d->buffer;
  d->buffer += sz;
  d->len -= sz;
  return res;
}

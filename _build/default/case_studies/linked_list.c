// Singly linked list (paper §7, class #1), with nodes allocated from the
// Figure-1 allocator (the paper: "use the first allocator of #2 for the
// allocation of new nodes").

typedef unsigned long size_t;

struct [[rc::refined_by("a: nat")]] mem_t {
  [[rc::field("a @ int<size_t>")]] size_t len;
  [[rc::field("&own<uninit<a>>")]] unsigned char* buffer;
};

[[rc::parameters("a: nat", "n: nat", "p: loc")]]
[[rc::args("p @ &own<a @ mem_t>", "n @ int<size_t>")]]
[[rc::returns("{n <= a} @ optional<&own<uninit<n>>, null>")]]
[[rc::ensures("own p : (n <= a ? a - n : a) @ mem_t")]]
void* alloc(struct mem_t* d, size_t sz) {
  if (sz > d->len)
    return NULL;
  d->len -= sz;
  return d->buffer + d->len;
}

typedef struct
[[rc::refined_by("xs: {list int}")]]
[[rc::ptr_type("list_t: {xs != []} @ optional<&own<...>, null>")]]
[[rc::exists("x: int", "tl: {list int}")]]
[[rc::constraints("{xs = x :: tl}")]]
node {
  [[rc::field("x @ int<int>")]] int val;
  [[rc::field("tl @ list_t")]] struct node* next;
} node_t;

// Push x at the head; returns 1 on success, 0 if the allocator is out of
// memory.  The node needs sizeof(struct node) = 16 bytes.
[[rc::parameters("xs: {list int}", "p: loc", "x: int", "a: nat", "q: loc")]]
[[rc::args("p @ &own<xs @ list_t>", "x @ int<int>", "q @ &own<a @ mem_t>")]]
[[rc::returns("{16 <= a} @ bool<int>")]]
[[rc::ensures("own p : ((16 <= a) ? x :: xs : xs) @ list_t",
              "own q : (16 <= a ? a - 16 : a) @ mem_t")]]
int push(struct node** l, int x, struct mem_t* al) {
  struct node* n = alloc(al, sizeof(struct node));
  if (n == NULL)
    return 0;
  n->val = x;
  n->next = *l;
  *l = n;
  return 1;
}

// Pop the head value of a non-empty list (the popped node's memory is
// released back to nobody — leaked — which is sound in an affine logic).
[[rc::parameters("x: int", "tl: {list int}", "p: loc")]]
[[rc::args("p @ &own<(x :: tl) @ list_t>")]]
[[rc::returns("x @ int<int>")]]
[[rc::ensures("own p : tl @ list_t")]]
int pop(struct node** l) {
  struct node* n = *l;
  int v = n->val;
  *l = n->next;
  return v;
}

// Length, traversing with a magic-wand invariant that reassembles the
// list (as in §2.2).
[[rc::parameters("xs: {list int}", "p: loc")]]
[[rc::args("p @ &own<xs @ list_t>")]]
[[rc::requires("{length xs <= 1000}")]]
[[rc::returns("(length xs) @ int<int>")]]
[[rc::ensures("own p : xs @ list_t")]]
int list_length(struct node** l) {
  int k = 0;
  struct node** cur = l;
  [[rc::exists("cs: {list int}", "cp: loc")]]
  [[rc::inv_vars("cur: cp @ &own<cs @ list_t>")]]
  [[rc::inv_vars("k: (length xs - length cs) @ int<int>")]]
  [[rc::inv_vars("l: p @ &own<wand<{cp : cs @ list_t}, xs @ list_t>>")]]
  [[rc::constraints("{length cs <= length xs}")]]
  while (*cur != NULL) {
    k += 1;
    cur = &(*cur)->next;
  }
  return k;
}

// In-place reversal (a classic ownership benchmark): the prefix already
// reversed accumulates in prev, the unreversed suffix stays in cur, and
// rev xs = rev cs ++ ys glues them together.
[[rc::parameters("xs: {list int}", "p: loc")]]
[[rc::args("p @ &own<xs @ list_t>")]]
[[rc::ensures("own p : rev(xs) @ list_t")]]
[[rc::tactics("all: list_solver.")]]
void list_reverse(struct node** l) {
  struct node* prev = NULL;
  struct node* cur = *l;
  [[rc::exists("ys: {list int}", "cs: {list int}")]]
  [[rc::inv_vars("prev: ys @ list_t")]]
  [[rc::inv_vars("cur: cs @ list_t")]]
  [[rc::inv_vars("l: p @ &own<uninit<8>>")]]
  [[rc::constraints("{rev(xs) = rev(cs) ++ ys}")]]
  while (cur != NULL) {
    struct node* nxt = cur->next;
    cur->next = prev;
    prev = cur;
    cur = nxt;
  }
  *l = prev;
}

// Deallocation using a sorted list of free chunks (paper Figure 3, §2.2).

typedef unsigned long size_t;

typedef struct
[[rc::refined_by("s: multiset")]]
[[rc::ptr_type("chunks_t: {s != ∅} @ optional<&own<...>, null>")]]
[[rc::exists("n: nat", "tail: multiset")]]
[[rc::size("n")]]
[[rc::constraints("{s = {[n]} ⊎ tail}", "{∀ k, k ∈ tail → n ≤ k}")]]
chunk {
  [[rc::field("n @ int<size_t>")]] size_t size;
  [[rc::field("tail @ chunks_t")]] struct chunk* next;
}* chunks_t;

[[rc::parameters("s: multiset", "p: loc", "n: nat")]]
[[rc::args("p @ &own<s @ chunks_t>", "&own<uninit<n>>", "n @ int<size_t>")]]
[[rc::requires("{sizeof(struct chunk) ≤ n}")]]
[[rc::ensures("own p : ({[n]} ⊎ s) @ chunks_t")]]
[[rc::tactics("all: multiset_solver.")]]
void free_chunk(chunks_t* list, void* data, size_t sz) {
  chunks_t* cur = list;
  [[rc::exists("cp: loc", "cs: multiset")]]
  [[rc::inv_vars("cur: cp @ &own<cs @ chunks_t>")]]
  [[rc::inv_vars("list: p @ &own<wand<{cp : ({[n]} ⊎ cs) @ chunks_t}, ({[n]} ⊎ s) @ chunks_t>>")]]
  while (*cur != NULL) {
    if (sz <= (*cur)->size)
      break;
    cur = &(*cur)->next;
  }
  chunks_t entry = data;
  entry->size = sz;
  entry->next = *cur;
  *cur = entry;
}

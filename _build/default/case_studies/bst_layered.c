// Binary search tree, layered verification (paper §7 class #3a): the C
// code is first related to an intermediate *functional layer* — the
// sorted in-order list of elements — and the set-level facts are then
// derived by manual pure lemmas (the companion registers them; they are
// counted in the Pure column, which is why the paper found the layered
// approach significantly more expensive than the direct one).

typedef struct
[[rc::refined_by("xs: {list int}")]]
[[rc::ptr_type("bstl_t: {xs != []} @ optional<&own<...>, null>")]]
[[rc::exists("v: int", "lxs: {list int}", "rxs: {list int}")]]
[[rc::constraints("{xs = lxs ++ (v :: rxs)}",
                  "{∀ j, j ∈ lxs → j < v}",
                  "{∀ j, j ∈ rxs → v < j}")]]
tnodel {
  [[rc::field("v @ int<int>")]] int val;
  [[rc::field("lxs @ bstl_t")]] struct tnodel* left;
  [[rc::field("rxs @ bstl_t")]] struct tnodel* right;
}* bstl_t;

[[rc::parameters("xs: {list int}", "k: int")]]
[[rc::args("xs @ bstl_t", "k @ int<int>")]]
[[rc::returns("{k ∈ xs} @ bool<int>")]]
int bstl_member(struct tnodel* t, int k) {
  if (t == NULL)
    return 0;
  if (k == t->val)
    return 1;
  if (k < t->val)
    return bstl_member(t->left, k);
  return bstl_member(t->right, k);
}

// FIFO queue (paper §7 class #1b), refined by the list of queued values.
// Enqueue walks to the end of the chain, maintaining a magic-wand
// invariant that reassembles the queue with the new element appended
// (our substitute for the paper's specialized list-segment types; see
// EXPERIMENTS.md).

typedef struct
[[rc::refined_by("xs: {list int}")]]
[[rc::ptr_type("qlist_t: {xs != []} @ optional<&own<...>, null>")]]
[[rc::exists("x: int", "tl: {list int}")]]
[[rc::constraints("{xs = x :: tl}")]]
qnode {
  [[rc::field("x @ int<int>")]] int val;
  [[rc::field("tl @ qlist_t")]] struct qnode* next;
}* qlist_t;

[[rc::parameters("xs: {list int}", "p: loc", "x: int")]]
[[rc::args("p @ &own<xs @ qlist_t>", "x @ int<int>", "&own<uninit<16>>")]]
[[rc::ensures("own p : (xs ++ (x :: [])) @ qlist_t")]]
[[rc::tactics("all: list_solver.")]]
void enqueue(struct qnode** q, int x, void* mem) {
  struct qnode* n = mem;
  n->val = x;
  n->next = NULL;
  struct qnode** cur = q;
  [[rc::exists("cs: {list int}", "cp: loc")]]
  [[rc::inv_vars("cur: cp @ &own<cs @ qlist_t>")]]
  [[rc::inv_vars("q: p @ &own<wand<{cp : (cs ++ (x :: [])) @ qlist_t}, (xs ++ (x :: [])) @ qlist_t>>")]]
  [[rc::inv_vars("n: (x :: []) @ qlist_t")]]
  [[rc::inv_vars("mem: ptr")]]
  while (*cur != NULL) {
    cur = &(*cur)->next;
  }
  *cur = n;
}

[[rc::parameters("x: int", "tl: {list int}", "p: loc")]]
[[rc::args("p @ &own<(x :: tl) @ qlist_t>")]]
[[rc::returns("x @ int<int>")]]
[[rc::ensures("own p : tl @ qlist_t")]]
int dequeue(struct qnode** q) {
  struct qnode* n = *q;
  int v = n->val;
  *q = n->next;
  return v;
}

[[rc::parameters("xs: {list int}", "p: loc")]]
[[rc::args("p @ &own<xs @ qlist_t>")]]
[[rc::returns("{xs = []} @ bool<int>")]]
[[rc::ensures("own p : xs @ qlist_t")]]
int queue_is_empty(struct qnode** q) {
  if (*q == NULL)
    return 1;
  return 0;
}

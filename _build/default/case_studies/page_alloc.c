// Page allocator (paper §7 class #2b): free 4096-byte pages chained by a
// pointer overlaid at their start — the padded-type pattern (rc::size).

typedef struct
[[rc::refined_by("n: nat")]]
[[rc::ptr_type("pages_t: {n != 0} @ optional<&own<...>, null>")]]
[[rc::exists("m: nat")]]
[[rc::size("4096")]]
[[rc::constraints("{n = m + 1}")]]
page {
  [[rc::field("m @ pages_t")]] struct page* next;
}* pages_t;

[[rc::parameters("n: nat", "p: loc")]]
[[rc::args("p @ &own<n @ pages_t>")]]
[[rc::returns("{n != 0} @ optional<&own<uninit<4096>>, null>")]]
[[rc::ensures("own p : (n != 0 ? n - 1 : n) @ pages_t")]]
void* page_alloc(struct page** pool) {
  struct page* pg = *pool;
  if (pg == NULL)
    return NULL;
  *pool = pg->next;
  return pg;
}

[[rc::parameters("n: nat", "p: loc")]]
[[rc::args("p @ &own<n @ pages_t>", "&own<uninit<4096>>")]]
[[rc::ensures("own p : (n + 1) @ pages_t")]]
void page_free(struct page** pool, void* mem) {
  struct page* pg = mem;
  pg->next = *pool;
  *pool = pg;
}

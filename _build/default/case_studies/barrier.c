// One-time barrier (paper §7 class #6b): the signaller transfers the
// integer cell at c to the (single) waiter through an atomic Boolean.
// barrier_t is registered by the expert companion.

struct barrier { int released; };

[[rc::parameters("b: loc", "c: loc")]]
[[rc::args("b @ &own<c @ barrier_t>")]]
[[rc::requires("own c : int<int>")]]
[[rc::ensures("own b : c @ barrier_t")]]
void barrier_signal(struct barrier* bar) {
  atomic_store(&bar->released, 1);
}

[[rc::parameters("b: loc", "c: loc")]]
[[rc::args("b @ &own<c @ barrier_t>")]]
[[rc::ensures("own c : int<int>")]]
void barrier_wait(struct barrier* bar) {
  [[rc::inv_vars("bar: b @ &own<c @ barrier_t>")]]
  while (!atomic_load(&bar->released)) {
  }
}

// Linear-probing hash table (paper §7 class #4): positive int keys in a
// cap-sized array, 0 marking empty slots.  "Verifying linear probing is
// non-trivial since all keys share the same array": the functional
// invariant lives in the array's list refinement; the probing
// arithmetic needs the manual mod-lemmas registered by the companion
// (the paper's 265 lines of manual Coq reasoning).

typedef unsigned long size_t;

// Insert key k, probing from k % cap; returns the slot used.  The slot
// was free or already held k, and the array is updated exactly there.
[[rc::parameters("q: loc", "cap: nat", "xs: {list int}", "k: int")]]
[[rc::args("q @ &own<array<int<int>, cap, xs>>", "cap @ int<int>",
           "k @ int<int>")]]
[[rc::requires("{0 < cap}", "{0 < k}", "{cap <= 1000000}")]]
[[rc::exists("i: int")]]
[[rc::returns("i @ int<int>")]]
[[rc::ensures("{0 <= i}", "{i < cap}",
              "{nth 0 i xs = 0 || nth 0 i xs = k}",
              "own q : array<int<int>, cap, (insert i k xs)>")]]
int hm_insert(int* keys, int cap, int k) {
  int j = k % cap;
  [[rc::exists("jj: int")]]
  [[rc::inv_vars("j: jj @ int<int>")]]
  [[rc::constraints("{0 <= jj}", "{jj < cap}")]]
  while (1) {
    int cur = keys[j];
    if (cur == 0 || cur == k) {
      keys[j] = k;
      return j;
    }
    j = (j + 1) % cap;
  }
}

// Find: probe until k or an empty slot is hit; returns that slot.
[[rc::parameters("q: loc", "cap: nat", "xs: {list int}", "k: int")]]
[[rc::args("q @ &own<array<int<int>, cap, xs>>", "cap @ int<int>",
           "k @ int<int>")]]
[[rc::requires("{0 < cap}", "{0 < k}", "{cap <= 1000000}")]]
[[rc::exists("i: int")]]
[[rc::returns("i @ int<int>")]]
[[rc::ensures("{0 <= i}", "{i < cap}",
              "{nth 0 i xs = 0 || nth 0 i xs = k}",
              "own q : array<int<int>, cap, xs>")]]
int hm_find(int* keys, int cap, int k) {
  int j = k % cap;
  [[rc::exists("jj: int")]]
  [[rc::inv_vars("j: jj @ int<int>")]]
  [[rc::constraints("{0 <= jj}", "{jj < cap}")]]
  while (1) {
    int cur = keys[j];
    if (cur == 0 || cur == k) {
      return j;
    }
    j = (j + 1) % cap;
  }
}

// Delete: probe for k; clear the slot where the probe ends (it held k
// or was already empty).
[[rc::parameters("q: loc", "cap: nat", "xs: {list int}", "k: int")]]
[[rc::args("q @ &own<array<int<int>, cap, xs>>", "cap @ int<int>",
           "k @ int<int>")]]
[[rc::requires("{0 < cap}", "{0 < k}", "{cap <= 1000000}")]]
[[rc::exists("i: int")]]
[[rc::returns("i @ int<int>")]]
[[rc::ensures("{0 <= i}", "{i < cap}",
              "{nth 0 i xs = 0 || nth 0 i xs = k}",
              "own q : array<int<int>, cap, (insert i 0 xs)>")]]
int hm_delete(int* keys, int cap, int k) {
  int j = k % cap;
  [[rc::exists("jj: int")]]
  [[rc::inv_vars("j: jj @ int<int>")]]
  [[rc::constraints("{0 <= jj}", "{jj < cap}")]]
  while (1) {
    int cur = keys[j];
    if (cur == 0 || cur == k) {
      keys[j] = 0;
      return j;
    }
    j = (j + 1) % cap;
  }
}

// Memory pool modelled on Hafnium's mpool (paper §7 class #5): a
// spinlock-protected pool of fixed-size entries (the paper's version was
// also adapted: integer-pointer casts removed).  The lock-protected pool
// type mpool_t is registered by the expert companion; the entry list is
// defined here with a padded recursive type.

typedef unsigned long size_t;

typedef struct
[[rc::refined_by("n: nat")]]
[[rc::ptr_type("mentries_t: {n != 0} @ optional<&own<...>, null>")]]
[[rc::exists("m: nat")]]
[[rc::size("64")]]
[[rc::constraints("{n = m + 1}")]]
mentry {
  [[rc::field("m @ mentries_t")]] struct mentry* next;
}* mentries_t;

struct mpool {
  int locked;
  struct mentry* entries;
};

// Allocate one 64-byte entry, taking the pool lock.
[[rc::parameters("p: loc")]]
[[rc::args("p @ &own<p @ mpool_t>")]]
[[rc::exists("r: bool")]]
[[rc::returns("{r} @ optional<&own<uninit<64>>, null>")]]
[[rc::ensures("own p : p @ mpool_t")]]
void* mpool_alloc(struct mpool* pool) {
  int expected = 0;
  [[rc::inv_vars("pool: p @ &own<p @ mpool_t>")]]
  while (1) {
    expected = 0;
    int ok = atomic_compare_exchange_strong(&pool->locked, &expected, 1);
    if (ok)
      break;
  }
  void* ret = NULL;
  struct mentry* e = pool->entries;
  if (e != NULL) {
    pool->entries = e->next;
    ret = e;
  }
  atomic_store(&pool->locked, 0);
  return ret;
}

// Return a 64-byte block to the pool.
[[rc::parameters("p: loc")]]
[[rc::args("p @ &own<p @ mpool_t>", "&own<uninit<64>>")]]
[[rc::ensures("own p : p @ mpool_t")]]
void mpool_free(struct mpool* pool, void* block) {
  int expected = 0;
  [[rc::inv_vars("pool: p @ &own<p @ mpool_t>")]]
  while (1) {
    expected = 0;
    int ok = atomic_compare_exchange_strong(&pool->locked, &expected, 1);
    if (ok)
      break;
  }
  struct mentry* e = block;
  e->next = pool->entries;
  pool->entries = e;
  atomic_store(&pool->locked, 0);
}

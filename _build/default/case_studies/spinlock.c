// Spinlock (paper §6 / §7 class #6a), built on the atomic Boolean type.
// The lock type lock_t protecting an integer cell is registered by the
// expert companion (Rc_studies.register_lock_t), exactly as the paper's
// spinlock abstraction lives in the RefinedC type library.

struct lock { int locked; };

[[rc::parameters("k: loc", "c: loc")]]
[[rc::args("k @ &own<c @ lock_t>")]]
[[rc::ensures("own k : c @ lock_t", "own c : int<int>")]]
void spin_lock(struct lock* l) {
  int expected = 0;
  [[rc::inv_vars("l: k @ &own<c @ lock_t>")]]
  while (1) {
    expected = 0;
    int ok = atomic_compare_exchange_strong(&l->locked, &expected, 1);
    if (ok)
      return;
  }
}

[[rc::parameters("k: loc", "c: loc")]]
[[rc::args("k @ &own<c @ lock_t>")]]
[[rc::requires("own c : int<int>")]]
[[rc::ensures("own k : c @ lock_t")]]
void spin_unlock(struct lock* l) {
  atomic_store(&l->locked, 0);
}

// A critical section: lock, increment the protected counter, unlock.
[[rc::parameters("k: loc", "c: loc")]]
[[rc::args("k @ &own<c @ lock_t>", "c @ &own<int<int>>")]]
[[rc::requires("{0 = 0}")]]
[[rc::ensures("own k : c @ lock_t")]]
void locked_reset(struct lock* l, int* counter) {
  spin_lock(l);
  *counter = 0;
  spin_unlock(l);
}

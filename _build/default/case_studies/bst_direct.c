// Binary search tree, direct verification against a functional set
// (paper §7 class #3b): the refinement is a gset, side conditions are
// discharged by variants of set_solver.

typedef struct
[[rc::refined_by("s: set")]]
[[rc::ptr_type("bst_t: {s != ∅} @ optional<&own<...>, null>")]]
[[rc::exists("v: int", "l: set", "r: set")]]
[[rc::constraints("{s = {[v]} ∪ l ∪ r}",
                  "{∀ j, j ∈ l → j < v}",
                  "{∀ j, j ∈ r → v < j}")]]
tnode {
  [[rc::field("v @ int<int>")]] int val;
  [[rc::field("l @ bst_t")]] struct tnode* left;
  [[rc::field("r @ bst_t")]] struct tnode* right;
}* bst_t;

[[rc::parameters("s: set", "k: int")]]
[[rc::args("s @ bst_t", "k @ int<int>")]]
[[rc::returns("{k ∈ s} @ bool<int>")]]
[[rc::tactics("all: set_solver.")]]
int bst_member(struct tnode* t, int k) {
  if (t == NULL)
    return 0;
  if (k == t->val)
    return 1;
  if (k < t->val)
    return bst_member(t->left, k);
  return bst_member(t->right, k);
}

// Insert k, using caller-provided node memory (leaked if k is present).
[[rc::parameters("s: set", "p: loc", "k: int")]]
[[rc::args("p @ &own<s @ bst_t>", "k @ int<int>", "&own<uninit<24>>")]]
[[rc::ensures("own p : ({[k]} ∪ s) @ bst_t")]]
[[rc::tactics("all: set_solver.")]]
void bst_insert(struct tnode** t, int k, void* mem) {
  struct tnode* cur = *t;
  if (cur == NULL) {
    struct tnode* n = mem;
    n->val = k;
    n->left = NULL;
    n->right = NULL;
    *t = n;
    return;
  }
  if (k == cur->val)
    return;
  if (k < cur->val) {
    bst_insert(&cur->left, k, mem);
    return;
  }
  bst_insert(&cur->right, k, mem);
}


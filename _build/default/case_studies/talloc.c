// Thread-safe allocator (paper §7 class #2a): the Figure-1 allocator
// protected by a spinlock stored in the same struct — the spinlocked
// pattern of §2.1.  talloc_t is registered by the expert companion.

typedef unsigned long size_t;

struct tsalloc {
  int locked;
  size_t len;
  unsigned char* buffer;
};

[[rc::parameters("p: loc", "n: nat")]]
[[rc::args("p @ &own<p @ talloc_t>", "n @ int<size_t>")]]
[[rc::exists("r: bool")]]
[[rc::returns("{r} @ optional<&own<uninit<n>>, null>")]]
[[rc::ensures("own p : p @ talloc_t")]]
void* tsalloc_alloc(struct tsalloc* d, size_t sz) {
  int expected = 0;
  [[rc::inv_vars("d: p @ &own<p @ talloc_t>")]]
  while (1) {
    expected = 0;
    int ok = atomic_compare_exchange_strong(&d->locked, &expected, 1);
    if (ok)
      break;
  }
  void* res = NULL;
  if (sz <= d->len) {
    d->len -= sz;
    res = d->buffer + d->len;
  }
  atomic_store(&d->locked, 0);
  return res;
}

// Binary search through a first-class comparator function pointer
// (paper §7 class #1c).  The comparator contract is given by the
// prototype cmp_spec; int_lt implements it, and the client passes it
// through a function pointer — RefinedC function types are first class.

typedef unsigned long size_t;
typedef int cmp_t(int a, int b);

// the comparator contract: decides x < y
[[rc::parameters("x: int", "y: int")]]
[[rc::args("x @ int<int>", "y @ int<int>")]]
[[rc::returns("{x < y} @ bool<int>")]]
int cmp_spec(int a, int b);

[[rc::parameters("x: int", "y: int")]]
[[rc::args("x @ int<int>", "y @ int<int>")]]
[[rc::returns("{x < y} @ bool<int>")]]
int int_lt(int a, int b) {
  return a < b;
}

// Binary search for key in arr[0..n): returns a slot index r with
// 0 <= r <= n where the key would belong.
[[rc::parameters("q: loc", "n: nat", "xs: {list int}", "k: int")]]
[[rc::args("q @ &own<array<int<int>, n, xs>>", "n @ int<size_t>",
           "k @ int<int>", "fnptr<cmp_spec>")]]
[[rc::requires("{n <= 100000}")]]
[[rc::exists("r: int")]]
[[rc::returns("r @ int<size_t>")]]
[[rc::ensures("{0 <= r}", "{r <= n}", "own q : array<int<int>, n, xs>")]]
size_t bsearch_idx(int* arr, size_t n, int key, cmp_t* lt) {
  size_t lo = 0;
  size_t hi = n;
  [[rc::exists("a: nat", "b: nat")]]
  [[rc::inv_vars("lo: a @ int<size_t>")]]
  [[rc::inv_vars("hi: b @ int<size_t>")]]
  [[rc::constraints("{0 <= a}", "{a <= b}", "{b <= n}")]]
  while (lo < hi) {
    size_t mid = lo + (hi - lo) / 2;
    int c = lt(arr[mid], key);
    if (c) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

// A client of the search (the paper verified "a client of it"): look up
// the slot and bounds-check before reading it.
[[rc::parameters("q: loc", "n: nat", "xs: {list int}", "k: int")]]
[[rc::args("q @ &own<array<int<int>, n, xs>>", "n @ int<size_t>",
           "k @ int<int>")]]
[[rc::requires("{n <= 100000}")]]
[[rc::exists("r: int")]]
[[rc::returns("r @ int<int>")]]
[[rc::ensures("own q : array<int<int>, n, xs>")]]
int bsearch_client(int* arr, size_t n, int key) {
  size_t i = bsearch_idx(arr, n, key, int_lt);
  if (i < n) {
    int found = arr[i];
    if (found == key)
      return 1;
  }
  return 0;
}

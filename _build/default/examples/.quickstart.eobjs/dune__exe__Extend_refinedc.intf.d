examples/extend_refinedc.mli:

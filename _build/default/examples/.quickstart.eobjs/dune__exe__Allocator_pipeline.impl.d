examples/allocator_pipeline.ml: Fmt List Option Rc_caesium Rc_frontend Rc_lithium Util

examples/util.ml: Filename List Rc_frontend Rc_studies Sys

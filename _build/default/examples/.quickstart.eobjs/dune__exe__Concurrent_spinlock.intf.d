examples/concurrent_spinlock.mli:

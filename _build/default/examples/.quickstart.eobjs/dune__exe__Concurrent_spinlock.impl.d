examples/concurrent_spinlock.ml: Array Fmt List Random Rc_caesium Rc_frontend Rc_lithium Rc_studies

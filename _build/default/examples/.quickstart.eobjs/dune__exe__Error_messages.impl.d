examples/error_messages.ml: Fmt Rc_frontend Rc_lithium Rc_studies

examples/quickstart.mli:

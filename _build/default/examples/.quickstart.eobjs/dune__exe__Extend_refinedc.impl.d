examples/extend_refinedc.ml: Fmt List Rc_caesium Rc_frontend Rc_lithium Rc_pure Rc_refinedc Rc_studies Registry Simp Sort

examples/allocator_pipeline.mli:

examples/quickstart.ml: Fmt List Rc_caesium Rc_cert Rc_frontend Rc_lithium Rc_refinedc Util

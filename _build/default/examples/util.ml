(** Shared helpers for the runnable examples. *)

let case_dir () =
  List.find Sys.file_exists
    [
      "case_studies"; "../case_studies"; "../../case_studies";
      "../../../case_studies";
    ]

let case_file name = Filename.concat (case_dir ()) name

let check name =
  Rc_studies.Studies.register_all ();
  Rc_frontend.Driver.check_file (case_file name)

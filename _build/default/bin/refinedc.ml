(** The RefinedC command-line toolchain (Figure 2, end to end):

    - [refinedc check FILE]   — verify every specified function
    - [refinedc run FILE FN]  — execute a function in the Caesium
                                interpreter (integer arguments)
    - [refinedc cfg FILE]     — dump the elaborated control-flow graphs *)

open Cmdliner
module Driver = Rc_frontend.Driver

let setup () = Rc_studies.Studies.register_all ()

let check_cmd =
  let file = Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE") in
  let deriv =
    Arg.(value & flag & info [ "deriv" ] ~doc:"Print the derivation trees.")
  in
  let stats =
    Arg.(value & flag & info [ "stats" ] ~doc:"Print per-function statistics.")
  in
  let cert =
    Arg.(
      value & flag
      & info [ "cert" ]
          ~doc:"Re-check the emitted certificates with the independent checker.")
  in
  let semtest =
    Arg.(
      value & flag
      & info [ "semtest" ]
          ~doc:
            "Run the semantic-soundness harness: execute each verified \
             function on sampled well-typed inputs and require UB-freedom.")
  in
  let run file deriv stats cert semtest =
    setup ();
    match Driver.check_file file with
    | exception Driver.Frontend_error msg ->
        Fmt.epr "%s@." msg;
        1
    | t ->
        let failed = ref 0 in
        List.iter
          (fun (r : Driver.check_result) ->
            match r.outcome with
            | Ok res ->
                Fmt.pr "%s: verified (%a)@." r.name Rc_lithium.Stats.pp
                  res.Rc_refinedc.Lang.E.stats;
                if deriv then
                  Fmt.pr "%a@." (Rc_lithium.Deriv.pp ~depth:0)
                    res.Rc_refinedc.Lang.E.deriv;
                if stats then begin
                  let s = res.Rc_refinedc.Lang.E.stats in
                  Fmt.pr "  distinct rules: %d, applications: %d@."
                    (Rc_lithium.Stats.distinct_rules s)
                    s.Rc_lithium.Stats.rule_apps;
                  Fmt.pr "  evars auto-instantiated: %d@."
                    s.Rc_lithium.Stats.evar_insts;
                  Fmt.pr "  side conditions auto/manual: %d/%d@."
                    s.Rc_lithium.Stats.side_auto s.Rc_lithium.Stats.side_manual
                end;
                if cert then begin
                  let rep =
                    Rc_cert.Checker.check res.Rc_refinedc.Lang.E.deriv
                  in
                  Fmt.pr "  %a@." Rc_cert.Checker.pp_report rep;
                  if not (Rc_cert.Checker.ok rep) then incr failed
                end;
                if semtest then begin
                  let spec =
                    List.find
                      (fun (f : Rc_refinedc.Typecheck.fn_to_check) ->
                        f.spec.Rc_refinedc.Rtype.fs_name = r.name)
                      t.elaborated.Rc_frontend.Elab.to_check
                  in
                  let impls =
                    List.map
                      (fun (f : Rc_refinedc.Typecheck.fn_to_check) ->
                        (f.spec.Rc_refinedc.Rtype.fs_name, f.spec))
                      t.elaborated.Rc_frontend.Elab.to_check
                  in
                  match
                    Rc_sem.Semtest.check_fn ~impls
                      t.elaborated.Rc_frontend.Elab.program spec.spec
                  with
                  | Rc_sem.Semtest.Passed n ->
                      Fmt.pr "  semtest: %d executions, no UB@." n
                  | Rc_sem.Semtest.Skipped why ->
                      Fmt.pr "  semtest: skipped (%s)@." why
                  | Rc_sem.Semtest.Ub_found msg ->
                      Fmt.pr "  semtest: UNDEFINED BEHAVIOUR: %s@." msg;
                      incr failed
                end
            | Error e ->
                Fmt.pr "%s: FAILED@.%s@." r.name (Rc_lithium.Report.to_string e);
                incr failed)
          t.results;
        List.iter (fun w -> Fmt.epr "warning: %s@." w)
          t.elaborated.Rc_frontend.Elab.warnings;
        if !failed = 0 then 0 else 1
  in
  Cmd.v (Cmd.info "check" ~doc:"Verify the specified functions of FILE.")
    Term.(const run $ file $ deriv $ stats $ cert $ semtest)

let run_cmd =
  let file = Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE") in
  let fn = Arg.(required & pos 1 (some string) None & info [] ~docv:"FN") in
  let args = Arg.(value & pos_right 1 int [] & info [] ~docv:"ARGS") in
  let run file fn args =
    setup ();
    match Driver.check_file file with
    | exception Driver.Frontend_error msg ->
        Fmt.epr "%s@." msg;
        1
    | t -> (
        let vargs =
          List.map (Rc_caesium.Value.of_int Rc_caesium.Int_type.i32) args
        in
        match Driver.run t fn vargs with
        | Rc_caesium.Eval.Finished None ->
            Fmt.pr "%s returned@." fn;
            0
        | Rc_caesium.Eval.Finished (Some v) ->
            Fmt.pr "%s returned %a@." fn Rc_caesium.Value.pp v;
            0
        | Rc_caesium.Eval.Undefined u ->
            Fmt.pr "UNDEFINED BEHAVIOUR: %a@." Rc_caesium.Ub.pp u;
            1
        | Rc_caesium.Eval.Out_of_fuel ->
            Fmt.pr "out of fuel@.";
            1)
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:"Run FN of FILE in the Caesium interpreter (int arguments).")
    Term.(const run $ file $ fn $ args)

let cfg_cmd =
  let file = Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE") in
  let run file =
    setup ();
    match Driver.parse_and_elab ~file (In_channel.with_open_bin file In_channel.input_all) with
    | exception Driver.Frontend_error msg ->
        Fmt.epr "%s@." msg;
        1
    | e ->
        List.iter
          (fun (name, f) ->
            Fmt.pr "== %s ==@.%s@." name (Rc_caesium.Syntax.show_func f))
          e.Rc_frontend.Elab.program.Rc_caesium.Syntax.funcs;
        0
  in
  Cmd.v (Cmd.info "cfg" ~doc:"Dump the elaborated Caesium CFGs.")
    Term.(const run $ file)

let () =
  let doc = "RefinedC: automated, certificate-producing verification of C" in
  exit
    (Cmd.eval'
       (Cmd.group (Cmd.info "refinedc" ~version:"1.0" ~doc)
          [ check_cmd; run_cmd; cfg_cmd ]))

lib/refinedc/convert.ml: Fmt Lang List Option Rc_caesium Rc_lithium Rc_pure Rtype Simp Sort

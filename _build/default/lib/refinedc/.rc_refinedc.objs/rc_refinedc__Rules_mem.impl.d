lib/refinedc/rules_mem.ml: Convert E Fmt Lang Option Rc_caesium Rc_lithium Rc_pure Rtype Rule_aux Simp Sort

lib/refinedc/rules.ml: Lang List Rules_binop Rules_call Rules_expr Rules_mem Rules_stmt Rules_subsume

lib/refinedc/rule_aux.ml: Convert Fmt Lang Option Rc_caesium Rc_lithium Rc_pure Rtype Simp Sort

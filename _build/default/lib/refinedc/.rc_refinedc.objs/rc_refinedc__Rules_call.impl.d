lib/refinedc/rules_call.ml: Convert E Fmt Lang List Rc_caesium Rc_lithium Rc_pure Rtype Rule_aux Simp

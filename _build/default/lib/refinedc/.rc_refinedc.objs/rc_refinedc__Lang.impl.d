lib/refinedc/lang.ml: Fmt List Rc_caesium Rc_lithium Rc_pure Rc_util Rtype Sort

lib/refinedc/rules_binop.ml: E Fmt Lang Option Rc_caesium Rc_lithium Rc_pure Rtype Rule_aux Simp

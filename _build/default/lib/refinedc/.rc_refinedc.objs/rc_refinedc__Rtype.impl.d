lib/refinedc/rtype.ml: Fmt Hashtbl List Option Rc_caesium Rc_pure Rc_util Simp Sort

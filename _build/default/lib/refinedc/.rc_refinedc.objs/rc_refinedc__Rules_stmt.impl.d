lib/refinedc/rules_stmt.ml: Convert E Fmt Lang List Printf Rc_caesium Rc_lithium Rc_pure Rtype Rule_aux Simp

lib/refinedc/rules_expr.ml: E Lang List Rc_caesium Rc_lithium Rc_pure Rtype Rule_aux Simp Sort

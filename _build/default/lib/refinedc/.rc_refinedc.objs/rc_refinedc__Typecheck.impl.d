lib/refinedc/typecheck.ml: Convert E Lang List Printf Rc_caesium Rc_lithium Rc_pure Result Rtype Rules Sort

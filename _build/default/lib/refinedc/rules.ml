(** The RefinedC standard library of typing rules.

    The paper's standard library "currently contains around 30 types and
    200 typing rules" (§7); this reproduction's library covers the rules
    the case-study corpus exercises.  New rules can be registered at any
    time ([register]) — extensibility is the point of the Lithium
    architecture (§5, "Extensibility"). *)

let extra : Lang.E.rule list ref = ref []

(** Register additional (user/expert) typing rules. *)
let register (rs : Lang.E.rule list) = extra := !extra @ rs

let reset_extra () = extra := []

let all () : Lang.E.rule list =
  Rules_stmt.all @ Rules_expr.all @ Rules_binop.all @ Rules_mem.all
  @ Rules_call.all @ Rules_subsume.all @ !extra

(** Number of rules in the standard library (for the Figure-7 style
    summary line in the benchmark harness). *)
let count () = List.length (all ())

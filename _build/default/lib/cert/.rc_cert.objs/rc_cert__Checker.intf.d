lib/cert/checker.mli: Format Rc_lithium Rc_pure

lib/cert/checker.ml: Fmt List Rc_lithium Rc_pure Rc_refinedc Registry String Term

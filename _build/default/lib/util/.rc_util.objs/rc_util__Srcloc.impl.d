lib/util/srcloc.ml: Fmt Int String

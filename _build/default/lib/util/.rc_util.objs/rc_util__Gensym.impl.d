lib/util/gensym.ml: Printf String

lib/util/xlist.ml: List

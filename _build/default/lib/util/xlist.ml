(** List helpers used across the code base. *)

let rec take n = function
  | [] -> []
  | _ when n <= 0 -> []
  | x :: xs -> x :: take (n - 1) xs

let rec drop n = function
  | xs when n <= 0 -> xs
  | [] -> []
  | _ :: xs -> drop (n - 1) xs

let rec last = function
  | [] -> invalid_arg "Xlist.last"
  | [ x ] -> x
  | _ :: xs -> last xs

(** [find_remove p xs] returns the first element satisfying [p] and the
    list without it.  This is the primitive behind Lithium's context lookup
    (goal case (6d)): at most one atom in Δ matches, so taking the first
    match is deterministic. *)
let find_remove p xs =
  let rec go acc = function
    | [] -> None
    | x :: rest when p x -> Some (x, List.rev_append acc rest)
    | x :: rest -> go (x :: acc) rest
  in
  go [] xs

let rec assoc_update k v = function
  | [] -> [ (k, v) ]
  | (k', _) :: rest when k' = k -> (k, v) :: rest
  | kv :: rest -> kv :: assoc_update k v rest

let sum = List.fold_left ( + ) 0

let rec transpose = function
  | [] | [] :: _ -> []
  | rows -> List.map List.hd rows :: transpose (List.map List.tl rows)

let init_matrix n m f = List.init n (fun i -> List.init m (fun j -> f i j))

let index_of p xs =
  let rec go i = function
    | [] -> None
    | x :: _ when p x -> Some i
    | _ :: rest -> go (i + 1) rest
  in
  go 0 xs

let rec zip xs ys =
  match (xs, ys) with
  | [], _ | _, [] -> []
  | x :: xs, y :: ys -> (x, y) :: zip xs ys

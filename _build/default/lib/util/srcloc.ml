(** Source locations for the C frontend and for error reporting.

    A location identifies a half-open range of characters in a named input
    (usually a [.c] file).  Locations flow from the lexer through every
    stage of the pipeline so that verification errors can point back at the
    offending C construct, as in the paper's §2.1 error-message example. *)

type pos = {
  line : int;  (** 1-based line number *)
  col : int;  (** 1-based column number *)
}

type t = {
  file : string;  (** input name, e.g. ["case_studies/mem_alloc.c"] *)
  start_p : pos;
  end_p : pos;
}

let dummy_pos = { line = 0; col = 0 }
let dummy = { file = "<none>"; start_p = dummy_pos; end_p = dummy_pos }
let is_dummy l = l.file = "<none>"

let make ~file ~start_line ~start_col ~end_line ~end_col =
  {
    file;
    start_p = { line = start_line; col = start_col };
    end_p = { line = end_line; col = end_col };
  }

(** [merge a b] spans from the start of [a] to the end of [b]. *)
let merge a b =
  if is_dummy a then b
  else if is_dummy b then a
  else { a with end_p = b.end_p }

let pp ppf l =
  if is_dummy l then Fmt.string ppf "<unknown location>"
  else if l.start_p.line = l.end_p.line then
    Fmt.pf ppf "%s:%d:%d-%d" l.file l.start_p.line l.start_p.col l.end_p.col
  else
    Fmt.pf ppf "%s:%d:%d-%d:%d" l.file l.start_p.line l.start_p.col
      l.end_p.line l.end_p.col

let to_string l = Fmt.str "%a" pp l

let compare a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.start_p.line b.start_p.line in
    if c <> 0 then c else Int.compare a.start_p.col b.start_p.col

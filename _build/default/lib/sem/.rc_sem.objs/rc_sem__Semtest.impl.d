lib/sem/semtest.ml: Fmt List Printf Random Rc_caesium Rc_pure Rc_refinedc Rc_util Sort

(** Fixed-size C integer types.

    Caesium supports "fixed-size integers" (§3).  We model the usual
    LP64 data model (the one the paper's case studies assume): [char] is
    1 byte, [int] 4 bytes, [long]/[size_t]/pointers 8 bytes. *)

type signedness = Signed | Unsigned [@@deriving eq, ord, show { with_path = false }]

type t = {
  it_name : string;  (** C surface name, for printing *)
  size : int;  (** in bytes *)
  signedness : signedness;
}
[@@deriving eq, ord, show { with_path = false }]

(* Names are for display only: size_t and unsigned long are the same
   type.  Equality compares representation. *)
let equal a b = a.size = b.size && equal_signedness a.signedness b.signedness

let make name size signedness = { it_name = name; size; signedness }
let i8 = make "signed char" 1 Signed
let u8 = make "unsigned char" 1 Unsigned
let i16 = make "short" 2 Signed
let u16 = make "unsigned short" 2 Unsigned
let i32 = make "int" 4 Signed
let u32 = make "unsigned int" 4 Unsigned
let i64 = make "long" 8 Signed
let u64 = make "unsigned long" 8 Unsigned
let size_t = { u64 with it_name = "size_t" }
let uintptr_t = { u64 with it_name = "uintptr_t" }
let bool_it = { u8 with it_name = "_Bool" }
let char = { i8 with it_name = "char" }  (* char is signed in our ABI *)

let bits it = it.size * 8
let is_signed it = it.signedness = Signed

(** Inclusive bounds.  OCaml ints are 63-bit, so 8-byte ranges are capped
    at [min_int/2 .. max_int/2] — far beyond every value in the case
    studies, and documented in DESIGN.md.  All arithmetic stays exact
    within the caps. *)
let min_val it =
  if not (is_signed it) then 0
  else if it.size >= 8 then min_int / 2
  else -(1 lsl (bits it - 1))

let max_val it =
  if it.size >= 8 then max_int / 2
  else if is_signed it then (1 lsl (bits it - 1)) - 1
  else (1 lsl bits it) - 1

let in_range it v = min_val it <= v && v <= max_val it

(** Two's-complement wrap into the type's range (defined for unsigned
    arithmetic; signed wrap-around is UB and handled by the caller). *)
let wrap it v =
  if it.size >= 8 then v (* modelled as unbounded below the cap *)
  else
    let m = 1 lsl bits it in
    let v = ((v mod m) + m) mod m in
    if is_signed it && v >= 1 lsl (bits it - 1) then v - m else v

let by_name = function
  | "char" -> Some char
  | "signed char" -> Some i8
  | "unsigned char" -> Some u8
  | "short" -> Some i16
  | "unsigned short" -> Some u16
  | "int" -> Some i32
  | "unsigned" | "unsigned int" -> Some u32
  | "long" | "long long" | "intptr_t" | "ptrdiff_t" | "ssize_t" -> Some i64
  | "unsigned long" | "unsigned long long" -> Some u64
  | "size_t" -> Some size_t
  | "uintptr_t" -> Some uintptr_t
  | "uint8_t" -> Some { u8 with it_name = "uint8_t" }
  | "uint16_t" -> Some { u16 with it_name = "uint16_t" }
  | "uint32_t" -> Some { u32 with it_name = "uint32_t" }
  | "uint64_t" -> Some { u64 with it_name = "uint64_t" }
  | "int8_t" -> Some { i8 with it_name = "int8_t" }
  | "int16_t" -> Some { i16 with it_name = "int16_t" }
  | "int32_t" -> Some { i32 with it_name = "int32_t" }
  | "int64_t" -> Some { i64 with it_name = "int64_t" }
  | "_Bool" | "bool" -> Some bool_it
  | _ -> None

let pp ppf it = Fmt.string ppf it.it_name

(** Abstract syntax of Caesium, the control-flow-graph core language (§3).

    The frontend elaborates annotated C into this language almost 1-to-1
    (function bodies become CFGs of blocks; expressions are side-effect
    free — calls and assignments are statements, fixing a left-to-right
    evaluation order as Caesium does). *)

type ot =
  | OInt of Int_type.t
  | OPtr  (** pointer operand *)
[@@deriving eq, show { with_path = false }]

type binop =
  | AddOp
  | SubOp
  | MulOp
  | DivOp
  | ModOp
  | AndOp
  | OrOp
  | XorOp
  | ShlOp
  | ShrOp
  | EqOp
  | NeOp
  | LtOp
  | LeOp
  | GtOp
  | GeOp
  | PtrPlusOp of Layout.t  (** [p + n], scaled by the element layout *)
  | PtrDiffOp of Layout.t  (** [p - q], divided by the element layout *)
[@@deriving eq, show { with_path = false }]

type unop = NegOp | BitNotOp | LogNotOp [@@deriving eq, show { with_path = false }]

type expr =
  | IntConst of int * Int_type.t
  | NullConst
  | FnAddr of string  (** address of a function (first-class, §3) *)
  | VarLoc of string  (** the *location* of a local, argument or global *)
  | Use of { atomic : bool; layout : Layout.t; arg : expr }
      (** load from the location denoted by [arg] *)
  | FieldOfs of { arg : expr; struct_ : Layout.struct_layout; field : string }
  | BinOp of { op : binop; ot1 : ot; ot2 : ot; e1 : expr; e2 : expr }
  | UnOp of { op : unop; ot : ot; arg : expr }
  | CastIntInt of { from_ : Int_type.t; to_ : Int_type.t; arg : expr }
  | CastPtrPtr of expr  (** pointer-to-pointer casts are no-ops *)
[@@deriving eq, show { with_path = false }]

type stmt =
  | Assign of { atomic : bool; layout : Layout.t; lhs : expr; rhs : expr }
  | Call of {
      dest : (Layout.t * expr) option;  (** where to store the result *)
      fn : expr;
      args : (Layout.t * expr) list;
    }
  | Cas of {
      layout : Layout.t;  (** must be an integer layout *)
      obj : expr;  (** ℓ_atom: pointer to the atomic object *)
      expected : expr;  (** ℓ_exp: pointer to the expected value *)
      desired : expr;  (** v_des: value to store on success *)
      dest : (Layout.t * expr) option;  (** bool result location *)
    }
  | Skip
  | ExprStmt of expr  (** evaluate and discard (e.g. a void call result) *)
  | Free of expr  (** frontend-internal: release a heap allocation *)
[@@deriving show { with_path = false }]

type terminator =
  | Goto of string
  | CondGoto of { ot : ot; cond : expr; if_true : string; if_false : string }
  | Switch of { ot : ot; scrut : expr; cases : (int * string) list; default : string }
  | Return of expr option
  | Unreachable
[@@deriving show { with_path = false }]

type block = { stmts : stmt list; term : terminator }
[@@deriving show { with_path = false }]

type func = {
  fname : string;
  args : (string * Layout.t) list;
  locals : (string * Layout.t) list;
  ret_layout : Layout.t;  (** [Layout.Void] for void functions *)
  blocks : (string * block) list;
  entry : string;
}
[@@deriving show { with_path = false }]

type program = {
  funcs : (string * func) list;
  globals : (string * Layout.t) list;
  structs : (string * Layout.struct_layout) list;
}

let find_func p name = List.assoc_opt name p.funcs
let find_block f label = List.assoc_opt label f.blocks

let empty_program = { funcs = []; globals = []; structs = [] }

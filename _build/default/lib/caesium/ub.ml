(** Undefined-behaviour descriptors.

    Caesium "assigns undefined behavior to data races following the
    semantics of RustBelt" and uses poison semantics for uninitialized
    memory (§3).  The interpreter raises {!Undef} carrying one of these
    descriptors; the semantic-soundness harness checks that verified
    functions never raise it. *)

type t =
  | Out_of_bounds of { loc : Loc.t; size : int }
  | Use_after_free of Loc.t
  | Poison_use of string  (** context description *)
  | Null_deref
  | Misaligned of { loc : Loc.t; align : int }
  | Signed_overflow of { op : string; result : int }
  | Div_by_zero
  | Shift_out_of_range of int
  | Ptr_cmp_different_allocs of Loc.t * Loc.t
  | Ptr_arith_invalid of string
  | Data_race of { loc : Loc.t; tids : int * int }
  | Invalid_function_pointer
  | Unreachable_reached
  | Int_out_of_range of { value : int; ty : string }
  | Stuck of string

let pp ppf = function
  | Out_of_bounds { loc; size } ->
      Fmt.pf ppf "out-of-bounds access of %d bytes at %a" size Loc.pp loc
  | Use_after_free l -> Fmt.pf ppf "use after free at %a" Loc.pp l
  | Poison_use ctx -> Fmt.pf ppf "use of uninitialized value in %s" ctx
  | Null_deref -> Fmt.string ppf "null pointer dereference"
  | Misaligned { loc; align } ->
      Fmt.pf ppf "misaligned access (needs %d) at %a" align Loc.pp loc
  | Signed_overflow { op; result } ->
      Fmt.pf ppf "signed overflow in %s (mathematical result %d)" op result
  | Div_by_zero -> Fmt.string ppf "division by zero"
  | Shift_out_of_range n -> Fmt.pf ppf "shift amount %d out of range" n
  | Ptr_cmp_different_allocs (a, b) ->
      Fmt.pf ppf "relational comparison of pointers %a and %a into different allocations"
        Loc.pp a Loc.pp b
  | Ptr_arith_invalid s -> Fmt.pf ppf "invalid pointer arithmetic: %s" s
  | Data_race { loc; tids = (a, b) } ->
      Fmt.pf ppf "data race at %a between threads %d and %d" Loc.pp loc a b
  | Invalid_function_pointer -> Fmt.string ppf "call through invalid function pointer"
  | Unreachable_reached -> Fmt.string ppf "unreachable code executed"
  | Int_out_of_range { value; ty } ->
      Fmt.pf ppf "integer %d does not fit in %s" value ty
  | Stuck msg -> Fmt.pf ppf "stuck: %s" msg

let to_string u = Fmt.str "%a" pp u

exception Undef of t

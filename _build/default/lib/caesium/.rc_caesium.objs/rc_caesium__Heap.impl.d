lib/caesium/heap.pp.ml: Array Hashtbl List Loc Option Ub Value

lib/caesium/heap.pp.mli: Loc Value

lib/caesium/ub.pp.ml: Fmt Loc

lib/caesium/layout.pp.ml: Fmt Int_type List Ppx_deriving_runtime Printf

lib/caesium/eval.pp.ml: Array Hashtbl Heap Int_type Layout List Loc Option Printf Random Syntax Ub Value

lib/caesium/syntax.pp.ml: Int_type Layout List Ppx_deriving_runtime

lib/caesium/loc.pp.ml: Fmt Ppx_deriving_runtime

lib/caesium/int_type.pp.ml: Fmt Ppx_deriving_runtime

lib/caesium/value.pp.ml: Fmt Int_type List Loc Ppx_deriving_runtime

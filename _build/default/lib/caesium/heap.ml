(** The byte-addressed heap.

    Allocations are numbered blocks of bytes with an alive flag
    (CompCert-style, §3).  Loads and stores are bounds- and
    liveness-checked; alignment is checked by the interpreter, which
    knows the layout of each access. *)

type block = { mutable bytes : Value.byte array; mutable alive : bool }

type t = {
  blocks : (int, block) Hashtbl.t;
  mutable next_alloc : int;
}

let create () = { blocks = Hashtbl.create 64; next_alloc = 1 }

(** Allocate [n] fresh poison bytes; returns a pointer to offset 0. *)
let alloc (h : t) (n : int) : Loc.t =
  let id = h.next_alloc in
  h.next_alloc <- id + 1;
  Hashtbl.replace h.blocks id
    { bytes = Array.make n Value.Poison; alive = true };
  Loc.ptr id 0

let block_of (h : t) (l : Loc.t) : (block * int) option =
  match l with
  | Loc.Null -> None
  | Loc.Ptr { alloc; ofs } ->
      Option.map (fun b -> (b, ofs)) (Hashtbl.find_opt h.blocks alloc)

let check_access (h : t) (l : Loc.t) (n : int) : block * int =
  match l with
  | Loc.Null -> raise (Ub.Undef Ub.Null_deref)
  | Loc.Ptr _ -> (
      match block_of h l with
      | None -> raise (Ub.Undef (Ub.Out_of_bounds { loc = l; size = n }))
      | Some (b, ofs) ->
          if not b.alive then raise (Ub.Undef (Ub.Use_after_free l));
          if ofs < 0 || ofs + n > Array.length b.bytes then
            raise (Ub.Undef (Ub.Out_of_bounds { loc = l; size = n }));
          (b, ofs))

(** [load h l n] reads [n] raw bytes (poison allowed — using them is what
    is UB, not copying them). *)
let load (h : t) (l : Loc.t) (n : int) : Value.t =
  let b, ofs = check_access h l n in
  List.init n (fun i -> b.bytes.(ofs + i))

let store (h : t) (l : Loc.t) (v : Value.t) : unit =
  let n = List.length v in
  let b, ofs = check_access h l n in
  List.iteri (fun i byte -> b.bytes.(ofs + i) <- byte) v

(** [free h l] kills the allocation [l] points into (at offset 0). *)
let free (h : t) (l : Loc.t) : unit =
  match l with
  | Loc.Null -> raise (Ub.Undef Ub.Null_deref)
  | Loc.Ptr { alloc; ofs } -> (
      match Hashtbl.find_opt h.blocks alloc with
      | Some b when b.alive && ofs = 0 -> b.alive <- false
      | Some _ -> raise (Ub.Undef (Ub.Ptr_arith_invalid "free of interior or dead pointer"))
      | None -> raise (Ub.Undef (Ub.Use_after_free l)))

(** [valid_range h l n]: the range is inside a live allocation. *)
let valid_range (h : t) (l : Loc.t) (n : int) : bool =
  match block_of h l with
  | Some (b, ofs) -> b.alive && ofs >= 0 && ofs + n <= Array.length b.bytes
  | None -> false

let alloc_size (h : t) (l : Loc.t) : int option =
  match block_of h l with
  | Some (b, _) -> Some (Array.length b.bytes)
  | None -> None

let is_alive (h : t) (l : Loc.t) : bool =
  match block_of h l with Some (b, _) -> b.alive | None -> false

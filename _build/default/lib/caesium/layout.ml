(** Memory layouts.

    A layout describes the size and alignment of a C object together with
    enough structure (field offsets, array strides) for the elaborator to
    compile member accesses, mirroring the role of [struct] declarations
    in Caesium.  The physical layout is all the C type system guarantees
    (§2.1); the RefinedC types refine values *stored at* these layouts. *)

type t =
  | Int of Int_type.t
  | Ptr  (** any pointer, 8 bytes *)
  | FnPtr  (** function pointer, 8 bytes *)
  | Struct of struct_layout
  | Array of t * int
  | Void  (** zero-size layout (function "returns void") *)

and field = { fld_name : string; fld_ofs : int; fld_layout : t }

and struct_layout = {
  sl_name : string;
  sl_fields : field list;
  sl_size : int;
  sl_align : int;
}
[@@deriving eq, show { with_path = false }]

let rec size = function
  | Int it -> it.Int_type.size
  | Ptr | FnPtr -> 8
  | Struct sl -> sl.sl_size
  | Array (l, n) -> size l * n
  | Void -> 0

let rec align = function
  | Int it -> it.Int_type.size
  | Ptr | FnPtr -> 8
  | Struct sl -> sl.sl_align
  | Array (l, _) -> align l
  | Void -> 1

let round_up x a = (x + a - 1) / a * a

(** Build a struct layout with C-style padding: each field is placed at
    the next offset aligned for it; total size is rounded up to the
    struct's alignment.  Caesium's memory model "has less undefined
    behavior than ISO C with respect to e.g. padding in structs" (§3):
    padding bytes are ordinary uninitialized bytes. *)
let mk_struct name fields =
  let fields, last =
    List.fold_left
      (fun (acc, ofs) (fname, l) ->
        let ofs = round_up ofs (align l) in
        ({ fld_name = fname; fld_ofs = ofs; fld_layout = l } :: acc, ofs + size l))
      ([], 0) fields
  in
  let fields = List.rev fields in
  let al =
    List.fold_left (fun a f -> max a (align f.fld_layout)) 1 fields
  in
  { sl_name = name; sl_fields = fields; sl_size = round_up last al; sl_align = al }

let field_of sl name =
  List.find_opt (fun f -> f.fld_name = name) sl.sl_fields

let field_exn sl name =
  match field_of sl name with
  | Some f -> f
  | None -> invalid_arg (Printf.sprintf "no field %s in struct %s" name sl.sl_name)

let rec pp ppf = function
  | Int it -> Int_type.pp ppf it
  | Ptr -> Fmt.string ppf "void*"
  | FnPtr -> Fmt.string ppf "fnptr"
  | Struct sl -> Fmt.pf ppf "struct %s" sl.sl_name
  | Array (l, n) -> Fmt.pf ppf "%a[%d]" pp l n
  | Void -> Fmt.string ppf "void"

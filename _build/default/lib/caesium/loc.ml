(** Concrete memory locations with allocation provenance.

    Following CompCert's memory model (the basis for Caesium's, §3), a
    location is an allocation identifier plus a byte offset.  Pointer
    comparisons and arithmetic respect provenance: relational comparison
    of pointers into different allocations is undefined behaviour. *)

type t =
  | Null
  | Ptr of { alloc : int; ofs : int }
[@@deriving eq, ord, show { with_path = false }]

let ptr alloc ofs = Ptr { alloc; ofs }

let shift l n =
  match l with
  | Null -> invalid_arg "Loc.shift: null"
  | Ptr { alloc; ofs } -> Ptr { alloc; ofs = ofs + n }

let is_null = function Null -> true | Ptr _ -> false

let pp ppf = function
  | Null -> Fmt.string ppf "NULL"
  | Ptr { alloc; ofs } -> Fmt.pf ppf "a%d+%d" alloc ofs

(** The byte-addressed heap: CompCert-style numbered allocations of raw
    bytes with liveness tracking (§3 of the paper).

    All accesses are bounds- and liveness-checked and raise
    {!Rc_caesium.Ub.Undef} on violation.  Alignment is checked by the
    interpreter, which knows the layout of each access. *)

type block = { mutable bytes : Value.byte array; mutable alive : bool }

type t

val create : unit -> t

val alloc : t -> int -> Loc.t
(** [alloc h n] allocates [n] fresh poison bytes and returns a pointer to
    offset 0 of the new allocation. *)

val block_of : t -> Loc.t -> (block * int) option
(** the backing block and the offset of a location, if the allocation
    exists (dead allocations are still found — check [alive]) *)

val load : t -> Loc.t -> int -> Value.t
(** [load h l n] reads [n] raw bytes.  Poison bytes are copied, not
    flagged: using them is what is undefined, not moving them. *)

val store : t -> Loc.t -> Value.t -> unit

val free : t -> Loc.t -> unit
(** kill the allocation [l] points to; [l] must be its base (offset 0)
    and the allocation must be alive *)

val valid_range : t -> Loc.t -> int -> bool
(** is the byte range inside a live allocation? *)

val alloc_size : t -> Loc.t -> int option
val is_alive : t -> Loc.t -> bool

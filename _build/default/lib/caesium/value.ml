(** Runtime values as byte sequences.

    Caesium represents values at the level of representation bytes (§3:
    "access to representation bytes", "uninitialized memory with poison
    semantics").  A byte is either poison (uninitialized), a concrete
    numeric byte, or the i-th fragment of a pointer (so that pointers keep
    their provenance even when copied bytewise, à la CompCert). *)

type byte =
  | Poison
  | Byte of int  (** 0..255 *)
  | PtrFrag of Loc.t * int  (** i-th byte of a pointer *)
  | FnFrag of string * int  (** i-th byte of a function pointer *)
[@@deriving eq, show { with_path = false }]

type t = byte list [@@deriving eq, show { with_path = false }]

let poison n : t = List.init n (fun _ -> Poison)

(* ------------------------------------------------------------------ *)
(* Integers                                                            *)
(* ------------------------------------------------------------------ *)

(** Little-endian two's-complement encoding. *)
let of_int (it : Int_type.t) (v : int) : t =
  List.init it.size (fun i -> Byte ((v asr (8 * i)) land 0xff))

let to_int (it : Int_type.t) (bytes : t) : int option =
  if List.length bytes <> it.size then None
  else
    let rec go i acc = function
      | [] -> Some acc
      | Byte b :: rest -> go (i + 1) (acc lor (b lsl (8 * i))) rest
      | _ -> None
    in
    match go 0 0 bytes with
    | None -> None
    | Some raw ->
        if Int_type.is_signed it && it.size < 8 then
          let m = 1 lsl (Int_type.bits it) in
          Some (if raw >= m / 2 then raw - m else raw)
        else Some raw

(* ------------------------------------------------------------------ *)
(* Pointers                                                            *)
(* ------------------------------------------------------------------ *)

let of_loc (l : Loc.t) : t =
  match l with
  | Loc.Null -> List.init 8 (fun _ -> Byte 0)
  | _ -> List.init 8 (fun i -> PtrFrag (l, i))

let of_fn (name : string) : t = List.init 8 (fun i -> FnFrag (name, i))

let to_loc (bytes : t) : Loc.t option =
  if List.length bytes <> 8 then None
  else if List.for_all (function Byte 0 -> true | _ -> false) bytes then
    Some Loc.Null
  else
    match bytes with
    | PtrFrag (l, 0) :: rest ->
        let ok =
          List.for_all2
            (fun b i ->
              match b with PtrFrag (l', j) -> Loc.equal l l' && j = i | _ -> false)
            rest
            [ 1; 2; 3; 4; 5; 6; 7 ]
        in
        if ok then Some l else None
    | _ -> None

let to_fn (bytes : t) : string option =
  match bytes with
  | FnFrag (f, 0) :: rest when List.length rest = 7 ->
      if
        List.for_all2
          (fun b i -> match b with FnFrag (f', j) -> f' = f && j = i | _ -> false)
          rest
          [ 1; 2; 3; 4; 5; 6; 7 ]
      then Some f
      else None
  | _ -> None

let has_poison (bytes : t) = List.exists (function Poison -> true | _ -> false)
    bytes

let pp ppf (v : t) =
  match to_loc v with
  | Some l -> Loc.pp ppf l
  | None -> (
      match to_fn v with
      | Some f -> Fmt.pf ppf "&%s" f
      | None ->
          if has_poison v then Fmt.string ppf "poison"
          else
            Fmt.pf ppf "[%a]"
              Fmt.(
                list ~sep:sp (fun ppf b ->
                    match b with
                    | Byte b -> Fmt.pf ppf "%02x" b
                    | Poison -> Fmt.string ppf "??"
                    | PtrFrag (l, i) -> Fmt.pf ppf "%a.%d" Loc.pp l i
                    | FnFrag (f, i) -> Fmt.pf ppf "%s.%d" f i))
              v)

(** Surface abstract syntax of the C subset ("Cabs"), with attached
    RefinedC attributes kept as raw strings until the elaborator parses
    them with the right environment in scope. *)

type attr = { a_name : string; a_args : string list; a_loc : Rc_util.Srcloc.t }

type ctype =
  | CInt of string  (** e.g. "unsigned long", resolved via {!Rc_caesium.Int_type.by_name} *)
  | CBool
  | CVoid
  | CPtr of ctype
  | CStructRef of string
  | CNamed of string  (** typedef name *)
  | CFn of ctype list * ctype  (** function type (via typedef); used
                                   through pointers for first-class
                                   function arguments *)

type binop =
  | BAdd | BSub | BMul | BDiv | BMod
  | BLt | BLe | BGt | BGe | BEq | BNe
  | BAnd | BOr  (** logical && / || *)
  | BShl | BShr
  | BBitAnd | BBitOr | BBitXor

type unop = UNeg | UNot | UBitNot

type expr = { e : expr_desc; eloc : Rc_util.Srcloc.t }

and expr_desc =
  | EId of string
  | EConst of int
  | ENull
  | EBool of bool
  | ESizeof of ctype
  | EUn of unop * expr
  | EBin of binop * expr * expr
  | EAssign of expr * expr  (** only as a statement-expression *)
  | EAssignOp of binop * expr * expr  (** x += e etc. *)
  | ECall of string * expr list
  | EMember of expr * string  (** e.f *)
  | EArrow of expr * string  (** e->f *)
  | EIndex of expr * expr  (** e[i] *)
  | EDeref of expr
  | EAddr of expr
  | ECast of ctype * expr
  | ECond of expr * expr * expr  (** e ? e : e *)

type stmt = { s : stmt_desc; sloc : Rc_util.Srcloc.t }

and stmt_desc =
  | SExpr of expr
  | SDecl of ctype * string * expr option
  | SIf of expr * stmt list * stmt list
  | SWhile of attr list * expr * stmt list
  | SFor of attr list * stmt option * expr option * expr option * stmt list
  | SReturn of expr option
  | SBreak
  | SContinue
  | SBlock of stmt list
  | SSwitch of expr * (int * stmt list) list * stmt list
      (** cases (with C fallthrough) and the default block *)

type field_decl = {
  fd_attrs : attr list;
  fd_type : ctype;
  fd_name : string;
}

type struct_decl = {
  sd_attrs : attr list;
  sd_name : string;
  sd_fields : field_decl list;
  sd_typedef : (bool * string) option;
      (** [Some (is_ptr, name)]: typedef of the struct ([false]) or of a
          pointer to it ([true], Figure 3's [chunks_t] pattern) *)
  sd_loc : Rc_util.Srcloc.t;
}

type fun_decl = {
  fn_attrs : attr list;
  fn_ret : ctype;
  fn_name : string;
  fn_params : (ctype * string) list;
  fn_body : stmt list option;  (** [None] for a prototype (spec only) *)
  fn_loc : Rc_util.Srcloc.t;
}

type decl =
  | DStruct of struct_decl
  | DTypedef of string * ctype
  | DFun of fun_decl

type file = { decls : decl list; file_name : string }

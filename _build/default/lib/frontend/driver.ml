(** The RefinedC toolchain driver (Figure 2): C source → Caesium +
    specifications → Lithium type checking → per-function results. *)

module Syntax = Rc_caesium.Syntax

type check_result = {
  name : string;
  outcome : (Rc_refinedc.Lang.E.result, Rc_lithium.Report.t) result;
}

type t = {
  file : string;
  elaborated : Elab.elaborated;
  results : check_result list;
}

exception Frontend_error of string

let parse_and_elab ~file (src : string) : Elab.elaborated =
  match Cparser.parse_file ~file src with
  | exception Cparser.Parse_error (msg, loc) ->
      raise
        (Frontend_error
           (Fmt.str "%a: parse error: %s" Rc_util.Srcloc.pp loc msg))
  | exception Clexer.Lex_error (msg, loc) ->
      raise
        (Frontend_error
           (Fmt.str "%a: lexical error: %s" Rc_util.Srcloc.pp loc msg))
  | ast -> (
      let extra_warnings = Warn.check_file ast in
      match Elab.elab_file ast with
      | exception Elab.Elab_error (msg, loc) ->
          raise
            (Frontend_error
               (Fmt.str "%a: elaboration error: %s" Rc_util.Srcloc.pp loc msg))
      | exception Specparse.Spec_error msg ->
          raise (Frontend_error ("specification error: " ^ msg))
      | e -> { e with Elab.warnings = extra_warnings @ e.Elab.warnings })

(** Verify every specified function of a source string. *)
let check_source ~file (src : string) : t =
  let elaborated = parse_and_elab ~file src in
  let specs =
    List.map
      (fun (f : Rc_refinedc.Typecheck.fn_to_check) ->
        (f.spec.Rc_refinedc.Rtype.fs_name, f.spec))
      elaborated.to_check
  in
  let results =
    List.map
      (fun (f : Rc_refinedc.Typecheck.fn_to_check) ->
        {
          name = f.spec.Rc_refinedc.Rtype.fs_name;
          outcome = Rc_refinedc.Typecheck.check_fn ~specs f;
        })
      elaborated.to_check
  in
  { file; elaborated; results }

let check_file (path : string) : t =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let src = really_input_string ic n in
  close_in ic;
  check_source ~file:path src

let all_ok (t : t) = List.for_all (fun r -> Result.is_ok r.outcome) t.results

let errors (t : t) =
  List.filter_map
    (fun r ->
      match r.outcome with Ok _ -> None | Error e -> Some (r.name, e))
    t.results

(** Aggregate statistics over all verified functions (Figure 7 inputs). *)
let stats (t : t) : Rc_lithium.Stats.t =
  let acc = Rc_lithium.Stats.create () in
  List.iter
    (fun r ->
      match r.outcome with
      | Ok { Rc_refinedc.Lang.E.stats; _ } -> Rc_lithium.Stats.merge acc stats
      | Error _ -> ())
    t.results;
  acc

(** Run a function of the elaborated program in the Caesium interpreter
    (used by examples and the semantic-soundness harness). *)
let run (t : t) (fname : string) (args : Rc_caesium.Value.t list) =
  Rc_caesium.Eval.run_fn t.elaborated.Elab.program fname args

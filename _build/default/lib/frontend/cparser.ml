(** Recursive-descent parser for the C subset.

    Follows the Menhir manual's discipline for hand-written parsers:
    every production commits after one token of lookahead (plus the
    typedef table to disambiguate type names), and errors carry the
    precise source location. *)

open Cabs
open Clexer

exception Parse_error of string * Rc_util.Srcloc.t

type state = {
  mutable toks : lexed list;
  mutable typedefs : (string * ctype) list;
  mutable structs : string list;
  file : string;
}

let make ~file toks = { toks; typedefs = []; structs = []; file }

let peek st = match st.toks with [] -> TEof | l :: _ -> l.tok
let peek_loc st =
  match st.toks with [] -> Rc_util.Srcloc.dummy | l :: _ -> l.loc

let peek2 st = match st.toks with _ :: l :: _ -> l.tok | _ -> TEof

let advance st = match st.toks with [] -> () | _ :: rest -> st.toks <- rest

let error st msg = raise (Parse_error (msg, peek_loc st))

let expect_punct st p =
  match peek st with
  | TPunct q when q = p -> advance st
  | _ -> error st (Printf.sprintf "expected '%s'" p)

let expect_kw st k =
  match peek st with
  | TKw q when q = k -> advance st
  | _ -> error st (Printf.sprintf "expected '%s'" k)

let expect_id st =
  match peek st with
  | TId x ->
      advance st;
      x
  | _ -> error st "expected identifier"

let eat_punct st p =
  match peek st with
  | TPunct q when q = p ->
      advance st;
      true
  | _ -> false

let rec collect_attrs st acc =
  match peek st with
  | TAttr (name, args) ->
      let loc = peek_loc st in
      advance st;
      collect_attrs st ({ a_name = name; a_args = args; a_loc = loc } :: acc)
  | _ -> List.rev acc

let attrs st = collect_attrs st []

(* ------------------------------------------------------------------ *)
(* Types                                                               *)
(* ------------------------------------------------------------------ *)

let is_type_start st =
  match peek st with
  | TKw
      ( "void" | "unsigned" | "signed" | "char" | "short" | "int" | "long"
      | "struct" | "_Bool" | "bool" | "const" ) ->
      true
  | TId x -> List.mem_assoc x st.typedefs
  | _ -> false

let parse_base_type st : ctype =
  let rec skip_quals () =
    match peek st with
    | TKw ("const" | "static" | "inline" | "extern") ->
        advance st;
        skip_quals ()
    | _ -> ()
  in
  skip_quals ();
  match peek st with
  | TKw "void" ->
      advance st;
      CVoid
  | TKw ("_Bool" | "bool") ->
      advance st;
      CBool
  | TKw "struct" ->
      advance st;
      let name = expect_id st in
      CStructRef name
  | TKw _ ->
      (* integer type keyword soup *)
      let words = ref [] in
      let rec go () =
        match peek st with
        | TKw (("unsigned" | "signed" | "char" | "short" | "int" | "long") as w)
          ->
            advance st;
            words := !words @ [ w ];
            go ()
        | _ -> ()
      in
      go ();
      if !words = [] then error st "expected type";
      CInt (String.concat " " !words)
  | TId x when List.mem_assoc x st.typedefs ->
      advance st;
      CNamed x
  | _ -> error st "expected type"

let parse_type st : ctype =
  let base = parse_base_type st in
  let rec stars t =
    if eat_punct st "*" then stars (CPtr t)
    else (
      (match peek st with
      | TKw "const" -> advance st
      | _ -> ());
      if eat_punct st "*" then stars (CPtr t) else t)
  in
  stars base

(* ------------------------------------------------------------------ *)
(* Expressions (precedence climbing)                                   *)
(* ------------------------------------------------------------------ *)

let mk loc e = { e; eloc = loc }

let rec parse_expr st : expr = parse_assign st

and parse_assign st : expr =
  let loc = peek_loc st in
  let lhs = parse_cond st in
  match peek st with
  | TPunct "=" ->
      advance st;
      let rhs = parse_assign st in
      mk loc (EAssign (lhs, rhs))
  | TPunct "+=" ->
      advance st;
      mk loc (EAssignOp (BAdd, lhs, parse_assign st))
  | TPunct "-=" ->
      advance st;
      mk loc (EAssignOp (BSub, lhs, parse_assign st))
  | TPunct "*=" ->
      advance st;
      mk loc (EAssignOp (BMul, lhs, parse_assign st))
  | TPunct "/=" ->
      advance st;
      mk loc (EAssignOp (BDiv, lhs, parse_assign st))
  | TPunct "%=" ->
      advance st;
      mk loc (EAssignOp (BMod, lhs, parse_assign st))
  | _ -> lhs

and parse_cond st : expr =
  let loc = peek_loc st in
  let c = parse_binary st 0 in
  if eat_punct st "?" then begin
    let t = parse_expr st in
    expect_punct st ":";
    let f = parse_cond st in
    mk loc (ECond (c, t, f))
  end
  else c

(* precedence levels, loosest first *)
and binop_at_level lvl tok =
  match (lvl, tok) with
  | 0, TPunct "||" -> Some BOr
  | 1, TPunct "&&" -> Some BAnd
  | 2, TPunct "|" -> Some BBitOr
  | 3, TPunct "^" -> Some BBitXor
  | 4, TPunct "&" -> Some BBitAnd
  | 5, TPunct "==" -> Some BEq
  | 5, TPunct "!=" -> Some BNe
  | 6, TPunct "<" -> Some BLt
  | 6, TPunct "<=" -> Some BLe
  | 6, TPunct ">" -> Some BGt
  | 6, TPunct ">=" -> Some BGe
  | 7, TPunct "<<" -> Some BShl
  | 7, TPunct ">>" -> Some BShr
  | 8, TPunct "+" -> Some BAdd
  | 8, TPunct "-" -> Some BSub
  | 9, TPunct "*" -> Some BMul
  | 9, TPunct "/" -> Some BDiv
  | 9, TPunct "%" -> Some BMod
  | _ -> None

and parse_binary st lvl : expr =
  if lvl > 9 then parse_unary st
  else
    let loc = peek_loc st in
    let lhs = ref (parse_binary st (lvl + 1)) in
    let rec go () =
      match binop_at_level lvl (peek st) with
      | Some op ->
          advance st;
          let rhs = parse_binary st (lvl + 1) in
          lhs := mk loc (EBin (op, !lhs, rhs));
          go ()
      | None -> ()
    in
    go ();
    !lhs

and parse_unary st : expr =
  let loc = peek_loc st in
  match peek st with
  | TPunct "-" ->
      advance st;
      mk loc (EUn (UNeg, parse_unary st))
  | TPunct "!" ->
      advance st;
      mk loc (EUn (UNot, parse_unary st))
  | TPunct "~" ->
      advance st;
      mk loc (EUn (UBitNot, parse_unary st))
  | TPunct "*" ->
      advance st;
      mk loc (EDeref (parse_unary st))
  | TPunct "&" ->
      advance st;
      mk loc (EAddr (parse_unary st))
  | TKw "sizeof" ->
      advance st;
      expect_punct st "(";
      let t = parse_type st in
      expect_punct st ")";
      mk loc (ESizeof t)
  | TPunct "(" when is_type_start_after_paren st ->
      advance st;
      let t = parse_type st in
      expect_punct st ")";
      mk loc (ECast (t, parse_unary st))
  | _ -> parse_postfix st

and is_type_start_after_paren st =
  match peek2 st with
  | TKw
      ( "void" | "unsigned" | "signed" | "char" | "short" | "int" | "long"
      | "struct" | "_Bool" | "bool" | "const" ) ->
      true
  | TId x -> List.mem_assoc x st.typedefs
  | _ -> false

and parse_postfix st : expr =
  let loc = peek_loc st in
  let e = ref (parse_primary st) in
  let rec go () =
    match peek st with
    | TPunct "->" ->
        advance st;
        let f = expect_id st in
        e := mk loc (EArrow (!e, f));
        go ()
    | TPunct "." ->
        advance st;
        let f = expect_id st in
        e := mk loc (EMember (!e, f));
        go ()
    | TPunct "[" ->
        advance st;
        let i = parse_expr st in
        expect_punct st "]";
        e := mk loc (EIndex (!e, i));
        go ()
    | TPunct "(" -> (
        match !e with
        | { e = EId f; _ } ->
            advance st;
            let args = ref [] in
            if not (eat_punct st ")") then begin
              let rec arg_loop () =
                args := parse_expr st :: !args;
                if eat_punct st "," then arg_loop () else expect_punct st ")"
              in
              arg_loop ()
            end;
            e := mk loc (ECall (f, List.rev !args));
            go ()
        | _ -> error st "only direct calls or calls through named pointers are supported")
    | TPunct "++" ->
        advance st;
        e := mk loc (EAssignOp (BAdd, !e, mk loc (EConst 1)));
        go ()
    | TPunct "--" ->
        advance st;
        e := mk loc (EAssignOp (BSub, !e, mk loc (EConst 1)));
        go ()
    | _ -> ()
  in
  go ();
  !e

and parse_primary st : expr =
  let loc = peek_loc st in
  match peek st with
  | TInt n ->
      advance st;
      mk loc (EConst n)
  | TId "NULL" ->
      advance st;
      mk loc ENull
  | TId "true" ->
      advance st;
      mk loc (EBool true)
  | TId "false" ->
      advance st;
      mk loc (EBool false)
  | TId x ->
      advance st;
      mk loc (EId x)
  | TPunct "(" ->
      advance st;
      let e = parse_expr st in
      expect_punct st ")";
      e
  | _ -> error st "expected expression"

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

let mks loc s = { s; sloc = loc }

let rec parse_stmt st : stmt =
  let loc = peek_loc st in
  let atts = attrs st in
  match peek st with
  | TPunct "{" -> mks loc (SBlock (parse_block st))
  | TKw "if" ->
      advance st;
      expect_punct st "(";
      let c = parse_expr st in
      expect_punct st ")";
      let then_ = parse_stmt_as_block st in
      let else_ =
        match peek st with
        | TKw "else" ->
            advance st;
            parse_stmt_as_block st
        | _ -> []
      in
      mks loc (SIf (c, then_, else_))
  | TKw "while" ->
      advance st;
      expect_punct st "(";
      let c = parse_expr st in
      expect_punct st ")";
      let body = parse_stmt_as_block st in
      mks loc (SWhile (atts, c, body))
  | TKw "for" ->
      advance st;
      expect_punct st "(";
      let init =
        if eat_punct st ";" then None
        else
          let s = parse_simple_stmt st in
          (expect_punct st ";";
           Some s)
      in
      let cond = if peek st = TPunct ";" then None else Some (parse_expr st) in
      expect_punct st ";";
      let step = if peek st = TPunct ")" then None else Some (parse_expr st) in
      expect_punct st ")";
      let body = parse_stmt_as_block st in
      mks loc (SFor (atts, init, cond, step, body))
  | TKw "switch" ->
      advance st;
      expect_punct st "(";
      let scrut = parse_expr st in
      expect_punct st ")";
      expect_punct st "{";
      let cases = ref [] in
      let default = ref [] in
      let rec body_loop acc =
        match peek st with
        | TKw "case" | TKw "default" | TPunct "}" -> List.rev acc
        | _ -> body_loop (parse_stmt st :: acc)
      in
      let rec case_loop () =
        match peek st with
        | TKw "case" ->
            advance st;
            let n =
              match peek st with
              | TInt n ->
                  advance st;
                  n
              | TPunct "-" -> (
                  advance st;
                  match peek st with
                  | TInt n ->
                      advance st;
                      -n
                  | _ -> error st "expected integer after case -")
              | _ -> error st "expected integer case label"
            in
            expect_punct st ":";
            cases := (n, body_loop []) :: !cases;
            case_loop ()
        | TKw "default" ->
            advance st;
            expect_punct st ":";
            default := body_loop [];
            case_loop ()
        | TPunct "}" -> advance st
        | _ -> error st "expected case, default or } in switch"
      in
      case_loop ();
      mks loc (SSwitch (scrut, List.rev !cases, !default))
  | TKw "return" ->
      advance st;
      let e = if peek st = TPunct ";" then None else Some (parse_expr st) in
      expect_punct st ";";
      mks loc (SReturn e)
  | TKw "break" ->
      advance st;
      expect_punct st ";";
      mks loc SBreak
  | TKw "continue" ->
      advance st;
      expect_punct st ";";
      mks loc SContinue
  | _ ->
      let s = parse_simple_stmt st in
      expect_punct st ";";
      s

and parse_stmt_as_block st : stmt list =
  match peek st with
  | TPunct "{" -> parse_block st
  | _ -> [ parse_stmt st ]

and parse_block st : stmt list =
  expect_punct st "{";
  let rec go acc =
    if eat_punct st "}" then List.rev acc else go (parse_stmt st :: acc)
  in
  go []

(** declaration or expression statement (no trailing ';' consumed) *)
and parse_simple_stmt st : stmt =
  let loc = peek_loc st in
  if is_type_start st then begin
    let t = parse_type st in
    let x = expect_id st in
    let init = if eat_punct st "=" then Some (parse_expr st) else None in
    mks loc (SDecl (t, x, init))
  end
  else mks loc (SExpr (parse_expr st))

(* ------------------------------------------------------------------ *)
(* Declarations                                                        *)
(* ------------------------------------------------------------------ *)

let parse_field st : field_decl =
  let fd_attrs = attrs st in
  let fd_type = parse_type st in
  let fd_name = expect_id st in
  expect_punct st ";";
  { fd_attrs; fd_type; fd_name }

let parse_struct_body st =
  expect_punct st "{";
  let rec go acc =
    if eat_punct st "}" then List.rev acc else go (parse_field st :: acc)
  in
  go []

let rec parse_decl st : decl option =
  match peek st with
  | TEof -> None
  | TPunct ";" ->
      advance st;
      parse_decl st
  | _ ->
      let d_attrs = attrs st in
      let loc = peek_loc st in
      (match peek st with
      | TKw "typedef" -> (
          advance st;
          match peek st with
          | TKw "struct" ->
              advance st;
              let inner_attrs = attrs st in
              let name_opt =
                match peek st with
                | TId x when peek2 st = TPunct "{" ->
                    advance st;
                    Some x
                | _ -> None
              in
              let fields = parse_struct_body st in
              let is_ptr = eat_punct st "*" in
              let td_name = expect_id st in
              expect_punct st ";";
              let sd_name = Option.value ~default:td_name name_opt in
              st.structs <- sd_name :: st.structs;
              st.typedefs <-
                ( td_name,
                  if is_ptr then CPtr (CStructRef sd_name)
                  else CStructRef sd_name )
                :: st.typedefs;
              Some
                (DStruct
                   {
                     sd_attrs = d_attrs @ inner_attrs;
                     sd_name;
                     sd_fields = fields;
                     sd_typedef = Some (is_ptr, td_name);
                     sd_loc = loc;
                   })
          | _ ->
              let t = parse_type st in
              let name = expect_id st in
              (* function typedef: typedef int cmp_t(int a, int b); *)
              let t =
                if peek st = TPunct "(" then begin
                  advance st;
                  let params = ref [] in
                  if not (eat_punct st ")") then begin
                    let rec go () =
                      let pt = parse_type st in
                      (match peek st with
                      | TId _ -> advance st
                      | _ -> ());
                      params := pt :: !params;
                      if eat_punct st "," then go () else expect_punct st ")"
                    in
                    go ()
                  end;
                  CFn (List.rev !params, t)
                end
                else t
              in
              expect_punct st ";";
              st.typedefs <- (name, t) :: st.typedefs;
              Some (DTypedef (name, t)))
      | TKw "struct" when peek2 st <> TPunct "*" -> (
          (* struct definition: struct [[attrs]] name { ... }; *)
          match st.toks with
          | _ :: { tok = TAttr _; _ } :: _
          | _ :: { tok = TId _; _ } :: { tok = TPunct "{"; _ } :: _
          | _ :: { tok = TId _; _ } :: { tok = TAttr _; _ } :: _ ->
              advance st;
              let inner = attrs st in
              let name = expect_id st in
              let more = attrs st in
              let fields = parse_struct_body st in
              expect_punct st ";";
              st.structs <- name :: st.structs;
              Some
                (DStruct
                   {
                     sd_attrs = d_attrs @ inner @ more;
                     sd_name = name;
                     sd_fields = fields;
                     sd_typedef = None;
                     sd_loc = loc;
                   })
          | _ -> parse_fun st d_attrs loc)
      | _ -> parse_fun st d_attrs loc)

and parse_fun st fn_attrs fn_loc : decl option =
  let ret = parse_type st in
  let name = expect_id st in
  expect_punct st "(";
  let params = ref [] in
  if not (eat_punct st ")") then begin
    (match peek st with
    | TKw "void" when peek2 st = TPunct ")" ->
        advance st;
        expect_punct st ")"
    | _ ->
        let rec go () =
          let t = parse_type st in
          let x =
            match peek st with
            | TId x ->
                advance st;
                x
            | _ -> error st "expected parameter name"
          in
          params := (t, x) :: !params;
          if eat_punct st "," then go () else expect_punct st ")"
        in
        go ())
  end;
  let body =
    if eat_punct st ";" then None
    else Some (parse_block st)
  in
  Some
    (DFun
       {
         fn_attrs;
         fn_ret = ret;
         fn_name = name;
         fn_params = List.rev !params;
         fn_body = body;
         fn_loc;
       })

let parse_file ~file (src : string) : Cabs.file =
  let toks = Clexer.tokenize ~file src in
  let st = make ~file toks in
  let rec go acc =
    match parse_decl st with
    | None -> List.rev acc
    | Some d -> go (d :: acc)
  in
  { decls = go []; file_name = file }

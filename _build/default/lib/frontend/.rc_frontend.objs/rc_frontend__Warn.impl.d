lib/frontend/warn.ml: Cabs Fmt List Option Rc_util

lib/frontend/cparser.ml: Cabs Clexer List Option Printf Rc_util String

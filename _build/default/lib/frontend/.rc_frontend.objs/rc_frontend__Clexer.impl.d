lib/frontend/clexer.ml: Buffer List Printf Rc_util String

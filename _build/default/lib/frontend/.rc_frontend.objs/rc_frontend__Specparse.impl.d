lib/frontend/specparse.ml: Buffer Fmt List Rc_caesium Rc_pure Rc_refinedc Sort String

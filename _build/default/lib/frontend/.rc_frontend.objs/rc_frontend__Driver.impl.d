lib/frontend/driver.ml: Clexer Cparser Elab Fmt List Rc_caesium Rc_lithium Rc_refinedc Rc_util Result Specparse Warn

lib/frontend/elab.ml: Cabs Fmt List Option Printf Rc_caesium Rc_pure Rc_refinedc Rc_util Sort Specparse String Term

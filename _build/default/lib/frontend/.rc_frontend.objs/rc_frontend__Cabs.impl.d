lib/frontend/cabs.ml: Rc_util

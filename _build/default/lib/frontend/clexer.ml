(** Hand-written lexer for the C subset.

    Tokenizes C source including C2x attribute blocks [[rc::name("…")]],
    whose string arguments are captured verbatim (the annotation
    language inside them is parsed separately by {!Specparse}, with the
    parameter environment in scope).  UTF-8 payloads inside attribute
    strings pass through untouched, so specifications can use the
    paper's notation (≤, ⊎, ∅, ∀ …). *)

type token =
  | TId of string
  | TInt of int
  | TKw of string  (** keyword *)
  | TPunct of string  (** operator / punctuation *)
  | TString of string  (** string literal (inside attributes) *)
  | TAttr of string * string list  (** [[rc::name("arg1", "arg2")]] *)
  | TEof

type lexed = { tok : token; loc : Rc_util.Srcloc.t }

let keywords =
  [
    "struct"; "typedef"; "if"; "else"; "while"; "for"; "do"; "return";
    "break"; "continue"; "void"; "unsigned"; "signed"; "char"; "short";
    "int"; "long"; "static"; "inline"; "const"; "sizeof"; "switch"; "case";
    "default"; "goto"; "_Bool"; "bool"; "extern";
  ]

exception Lex_error of string * Rc_util.Srcloc.t

type state = {
  src : string;
  file : string;
  mutable pos : int;
  mutable line : int;
  mutable col : int;
}

let make file src = { src; file; pos = 0; line = 1; col = 1 }

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let peek2 st =
  if st.pos + 1 < String.length st.src then Some st.src.[st.pos + 1] else None

let advance st =
  (match peek st with
  | Some '\n' ->
      st.line <- st.line + 1;
      st.col <- 1
  | Some _ -> st.col <- st.col + 1
  | None -> ());
  st.pos <- st.pos + 1

let here st =
  Rc_util.Srcloc.make ~file:st.file ~start_line:st.line ~start_col:st.col
    ~end_line:st.line ~end_col:st.col

let error st msg = raise (Lex_error (msg, here st))

let is_id_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_id_char c = is_id_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\r' | '\n') ->
      advance st;
      skip_ws st
  | Some '/' when peek2 st = Some '/' ->
      while peek st <> None && peek st <> Some '\n' do
        advance st
      done;
      skip_ws st
  | Some '/' when peek2 st = Some '*' ->
      advance st;
      advance st;
      let rec go () =
        match (peek st, peek2 st) with
        | Some '*', Some '/' ->
            advance st;
            advance st
        | None, _ -> error st "unterminated comment"
        | _ ->
            advance st;
            go ()
      in
      go ();
      skip_ws st
  | _ -> ()

let lex_string st =
  (* positioned at the opening quote *)
  advance st;
  let buf = Buffer.create 32 in
  let rec go () =
    match peek st with
    | None -> error st "unterminated string"
    | Some '"' -> advance st
    | Some '\\' -> (
        advance st;
        match peek st with
        | Some c ->
            Buffer.add_char buf
              (match c with 'n' -> '\n' | 't' -> '\t' | c -> c);
            advance st;
            go ()
        | None -> error st "unterminated escape")
    | Some c ->
        Buffer.add_char buf c;
        advance st;
        go ()
  in
  go ();
  Buffer.contents buf

let lex_number st =
  let start = st.pos in
  if peek st = Some '0' && (peek2 st = Some 'x' || peek2 st = Some 'X') then begin
    advance st;
    advance st;
    while
      match peek st with
      | Some c -> is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
      | None -> false
    do
      advance st
    done;
    int_of_string (String.sub st.src start (st.pos - start))
  end
  else begin
    while match peek st with Some c -> is_digit c | None -> false do
      advance st
    done;
    (* swallow integer suffixes *)
    let n = int_of_string (String.sub st.src start (st.pos - start)) in
    while
      match peek st with
      | Some ('u' | 'U' | 'l' | 'L') -> true
      | _ -> false
    do
      advance st
    done;
    n
  end

(** Lex an attribute block, positioned after the opening [[ ]. *)
let lex_attr st : token =
  skip_ws st;
  (* expect: identifier (:: identifier)* ( "args" ) *)
  let ident () =
    let start = st.pos in
    if not (match peek st with Some c -> is_id_start c | None -> false) then
      error st "expected attribute name";
    while match peek st with Some c -> is_id_char c | None -> false do
      advance st
    done;
    String.sub st.src start (st.pos - start)
  in
  let ns = ident () in
  let name =
    if peek st = Some ':' && peek2 st = Some ':' then begin
      advance st;
      advance st;
      ns ^ "::" ^ ident ()
    end
    else ns
  in
  skip_ws st;
  let args = ref [] in
  if peek st = Some '(' then begin
    advance st;
    let rec arg_loop () =
      skip_ws st;
      match peek st with
      | Some '"' ->
          args := lex_string st :: !args;
          skip_ws st;
          (match peek st with
          | Some ',' ->
              advance st;
              arg_loop ()
          | Some ')' -> advance st
          | _ -> error st "expected ',' or ')' in attribute")
      | Some ')' -> advance st
      | _ -> error st "expected string literal in attribute"
    in
    arg_loop ()
  end;
  skip_ws st;
  (match (peek st, peek2 st) with
  | Some ']', Some ']' ->
      advance st;
      advance st
  | _ -> error st "expected ]] to close attribute");
  TAttr (name, List.rev !args)

let next (st : state) : lexed =
  skip_ws st;
  let sl = st.line and sc = st.col in
  let fin tok =
    {
      tok;
      loc =
        Rc_util.Srcloc.make ~file:st.file ~start_line:sl ~start_col:sc
          ~end_line:st.line ~end_col:st.col;
    }
  in
  match peek st with
  | None -> fin TEof
  | Some '[' when peek2 st = Some '[' ->
      advance st;
      advance st;
      fin (lex_attr st)
  | Some c when is_id_start c ->
      let start = st.pos in
      while match peek st with Some c -> is_id_char c | None -> false do
        advance st
      done;
      let s = String.sub st.src start (st.pos - start) in
      if List.mem s keywords then fin (TKw s) else fin (TId s)
  | Some c when is_digit c -> fin (TInt (lex_number st))
  | Some '"' -> fin (TString (lex_string st))
  | Some c ->
      let two p =
        advance st;
        advance st;
        fin (TPunct p)
      in
      let one p =
        advance st;
        fin (TPunct p)
      in
      (match (c, peek2 st) with
      | '-', Some '>' -> two "->"
      | '-', Some '=' -> two "-="
      | '-', Some '-' -> two "--"
      | '+', Some '=' -> two "+="
      | '+', Some '+' -> two "++"
      | '*', Some '=' -> two "*="
      | '/', Some '=' -> two "/="
      | '%', Some '=' -> two "%="
      | '<', Some '=' -> two "<="
      | '>', Some '=' -> two ">="
      | '=', Some '=' -> two "=="
      | '!', Some '=' -> two "!="
      | '&', Some '&' -> two "&&"
      | '|', Some '|' -> two "||"
      | '<', Some '<' -> two "<<"
      | '>', Some '>' -> two ">>"
      | ( ('+' | '-' | '*' | '/' | '%' | '<' | '>' | '=' | '!' | '&' | '|'
          | '^' | '~' | '(' | ')' | '{' | '}' | '[' | ']' | ';' | ',' | '.'
          | '?' | ':'), _ ) ->
          one (String.make 1 c)
      | _ -> error st (Printf.sprintf "unexpected character %C" c))

(** Tokenize a whole input. *)
let tokenize ~file (src : string) : lexed list =
  let st = make file src in
  let rec go acc =
    let l = next st in
    match l.tok with TEof -> List.rev (l :: acc) | _ -> go (l :: acc)
  in
  go []

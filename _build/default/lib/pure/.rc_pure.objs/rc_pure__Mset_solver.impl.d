lib/pure/mset_solver.pp.ml: List SS Simp Sort Term

lib/pure/registry.pp.mli: Format Sort Term

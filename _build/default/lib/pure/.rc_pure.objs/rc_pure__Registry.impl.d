lib/pure/registry.pp.ml: Fmt Linarith List List_solver Mset_solver Printf SS Set_solver Simp Sort Sys Term

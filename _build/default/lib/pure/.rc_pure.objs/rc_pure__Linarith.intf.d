lib/pure/linarith.pp.mli: Term

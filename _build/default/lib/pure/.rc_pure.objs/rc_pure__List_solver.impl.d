lib/pure/list_solver.pp.ml: List SS Simp Sort Term

lib/pure/sort.pp.ml: Fmt Option Ppx_deriving_runtime

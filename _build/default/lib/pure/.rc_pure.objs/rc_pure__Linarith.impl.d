lib/pure/linarith.pp.ml: Int List Map Option Simp Sort Term

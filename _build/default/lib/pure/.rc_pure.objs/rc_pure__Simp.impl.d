lib/pure/simp.pp.ml: Sort Term

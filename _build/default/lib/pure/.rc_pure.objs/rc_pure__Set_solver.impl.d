lib/pure/set_solver.pp.ml: List SS Simp Sort Term

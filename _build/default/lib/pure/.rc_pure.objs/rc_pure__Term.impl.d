lib/pure/term.pp.ml: Fmt Int List Ppx_deriving_runtime Rc_util Set Sort String

(** Linear integer arithmetic — the core of RefinedC's *default* solver
    (§7: "the one default solver that we wrote … currently only targets
    linear arithmetic and Coq lists").

    [prove ~hyps goal] decides sequents [Γ ⊨ φ] by refutation:
    [Γ ∧ ¬φ] is put in disjunctive normal form, with bounded case
    splitting over [∨], conditionals, truncated subtraction, [min]/[max]
    and disequalities, and every branch is refuted by Fourier–Motzkin
    elimination over the rationals plus an integer divisibility check on
    equalities.  Non-linear subterms are atomized with congruence (equal
    subterms share an atom) and sort axioms ([Nat] variables and lengths
    are non-negative, [mod] by a positive literal is bounded).

    Soundness: a [true] answer is always valid over the integers.  The
    procedure is deliberately incomplete; goals it misses surface as
    unsolved side conditions — the paper's "manual" column. *)

val prove : hyps:Term.prop list -> Term.prop -> bool
(** quantified or otherwise out-of-fragment hypotheses are ignored
    (which is sound) *)

(** Sorts of the pure (mathematical) layer.

    RefinedC refinements range over "arbitrary mathematical domains (i.e.,
    Coq types)" (§2.1).  This reproduction fixes the concrete collection of
    domains that the paper's case studies actually use: natural numbers,
    integers, booleans, memory locations, finite multisets of integers
    (e.g. the free-list sizes of Figure 3, [gmultiset nat] in the paper),
    finite sets of integers (the BST specs), and lists over any sort (the
    linked-list, queue, array and hashmap specs). *)

type t =
  | Nat  (** non-negative integers; variables of this sort carry an implicit
             [x >= 0] assumption in the solvers *)
  | Int  (** unbounded mathematical integers *)
  | Bool  (** booleans as terms (propositions embed via {!Term.TProp}) *)
  | Loc  (** abstract memory locations, compared syntactically (§9) *)
  | Mset  (** finite multisets of integers *)
  | Set  (** finite sets of integers *)
  | List of t  (** finite lists over a sort *)
  | Unknown  (** placeholder used before sort inference resolves *)
[@@deriving eq, ord, show { with_path = false }]

let rec pp ppf = function
  | Nat -> Fmt.string ppf "nat"
  | Int -> Fmt.string ppf "int"
  | Bool -> Fmt.string ppf "bool"
  | Loc -> Fmt.string ppf "loc"
  | Mset -> Fmt.string ppf "multiset"
  | Set -> Fmt.string ppf "set"
  | List s -> Fmt.pf ppf "list %a" pp s
  | Unknown -> Fmt.string ppf "?"

let to_string s = Fmt.str "%a" pp s

(** Numeric sorts admit linear-arithmetic reasoning. *)
let is_numeric = function Nat | Int -> true | _ -> false

(** [lub a b] is the most precise common sort, used during inference:
    [Nat] embeds in [Int]. *)
let rec lub a b =
  match (a, b) with
  | Unknown, s | s, Unknown -> Some s
  | Nat, Int | Int, Nat -> Some Int
  | List x, List y -> Option.map (fun s -> List s) (lub x y)
  | a, b when equal a b -> Some a
  | _ -> None

let of_string = function
  | "nat" -> Some Nat
  | "int" | "Z" -> Some Int
  | "bool" -> Some Bool
  | "loc" -> Some Loc
  | "multiset" | "gmultiset nat" | "{gmultiset nat}" -> Some Mset
  | "set" | "gset nat" | "gset Z" -> Some Set
  | _ -> None

(** Linear integer arithmetic solver.

    This is the core of RefinedC's *default* pure solver (§7: "the one
    default solver that we wrote — which currently only targets linear
    arithmetic and Coq lists").  It decides sequents [Γ ⊨ φ] where the
    atoms are linear (in)equalities over [Nat]/[Int] terms, by refutation:
    [Γ ∧ ¬φ] is put into disjunctive normal form (with bounded case
    splitting over [∨], [Ite], truncated subtraction, [min]/[max] and
    disequalities) and every branch is refuted with Fourier–Motzkin
    elimination over the rationals plus an integer divisibility check on
    equalities.

    Soundness: every refutation step is valid over the integers, so
    [prove] returning [true] really means the sequent holds.  The
    procedure is deliberately incomplete (so is any Coq tactic); goals it
    misses are reported as unsolved side conditions, exactly the paper's
    "manual" column. *)

open Term

(* ------------------------------------------------------------------ *)
(* Linear forms over atom ids                                          *)
(* ------------------------------------------------------------------ *)

module IMap = Map.Make (Int)

type lin = { coeffs : int IMap.t; const : int }

let lin_const c = { coeffs = IMap.empty; const = c }
let lin_atom id = { coeffs = IMap.singleton id 1; const = 0 }

let lin_add a b =
  {
    coeffs =
      IMap.union (fun _ x y -> if x + y = 0 then None else Some (x + y))
        a.coeffs b.coeffs;
    const = a.const + b.const;
  }

let lin_scale k a =
  if k = 0 then lin_const 0
  else { coeffs = IMap.map (fun x -> k * x) a.coeffs; const = k * a.const }

let lin_sub a b = lin_add a (lin_scale (-1) b)
let lin_is_const a = IMap.is_empty a.coeffs

(* ------------------------------------------------------------------ *)
(* Atomization environment                                             *)
(* ------------------------------------------------------------------ *)

(* Non-linear subterms (variables, lengths, applications, opaque ite…) are
   mapped to atom ids; syntactically equal subterms share an id, giving a
   cheap congruence closure sufficient for the case studies. *)

type env = {
  mutable atoms : (term * int) list;  (* canonical term -> id *)
  mutable next : int;
  mutable side : branch list -> branch list;
      (* extra literal sets to conjoin into every branch *)
}

and literal = Ge of lin  (* lin >= 0 *) | EqZ of lin  (* lin = 0 *)
and branch = literal list

let new_env () = { atoms = []; next = 0; side = (fun b -> b) }

let atom_id env t =
  match List.find_opt (fun (u, _) -> equal_term u t) env.atoms with
  | Some (_, id) -> id
  | None ->
      let id = env.next in
      env.next <- id + 1;
      env.atoms <- (t, id) :: env.atoms;
      (* sort-based axioms *)
      let nonneg =
        match t with
        | Length _ | NatSub _ -> true
        | Var (_, Sort.Nat) | Evar (_, Sort.Nat) -> true
        | Mod (_, Num m) when m > 0 -> true
        | _ -> false
      in
      if nonneg then (
        let prev = env.side in
        env.side <-
          fun branches ->
            prev branches
            |> List.map (fun b -> Ge (lin_atom id) :: b));
      id

exception Too_many_branches
exception Nonlinear

let max_branches = 512

(* [linof env t] converts a numeric term to a list of (guard-branch, lin)
   pairs: case splits arising inside the term produce several pairs whose
   guards must be conjoined into the enclosing branch. *)
let rec linof env (t : term) : (branch * lin) list =
  match t with
  | Num n -> [ ([], lin_const n) ]
  | Add (a, b) -> lift2 env lin_add a b
  | Sub (a, b) -> lift2 env lin_sub a b
  | Mul (Num k, a) | Mul (a, Num k) ->
      List.map (fun (g, l) -> (g, lin_scale k l)) (linof env a)
  | Mul (a, b) -> (
      (* try constant folding after recursion *)
      match (linof env a, linof env b) with
      | [ ([], la) ], _ when lin_is_const la ->
          List.map (fun (g, l) -> (g, lin_scale la.const l)) (linof env b)
      | _, [ ([], lb) ] when lin_is_const lb ->
          List.map (fun (g, l) -> (g, lin_scale lb.const l)) (linof env a)
      | _ -> [ ([], lin_atom (atom_id env t)) ])
  | NatSub (a, b) ->
      (* d = a ∸ b:  (b ≤ a ∧ d = a - b) ∨ (a ≤ b ∧ d = 0) *)
      let la = linof env a and lb = linof env b in
      List.concat_map
        (fun (ga, xa) ->
          List.concat_map
            (fun (gb, xb) ->
              let diff = lin_sub xa xb in
              [
                (Ge diff :: (ga @ gb), diff) (* b <= a: result a-b >= 0 *);
                (Ge (lin_scale (-1) diff) :: (ga @ gb), lin_const 0);
              ])
            lb)
        la
  | Min (a, b) | Max (a, b) ->
      let is_min = match t with Min _ -> true | _ -> false in
      let la = linof env a and lb = linof env b in
      List.concat_map
        (fun (ga, xa) ->
          List.concat_map
            (fun (gb, xb) ->
              let d = lin_sub xb xa in
              (* a <= b branch / b <= a branch *)
              if is_min then
                [ (Ge d :: (ga @ gb), xa); (Ge (lin_scale (-1) d) :: (ga @ gb), xb) ]
              else
                [ (Ge d :: (ga @ gb), xb); (Ge (lin_scale (-1) d) :: (ga @ gb), xa) ])
            lb)
        la
  | Ite (c, a, b) -> (
      match lits_of_prop env c with
      | exception Nonlinear -> [ ([], lin_atom (atom_id env t)) ]
      | cpos ->
          let cneg = lits_of_prop env (PNot c) in
          let la = linof env a and lb = linof env b in
          List.concat_map
            (fun gc -> List.map (fun (g, l) -> (gc @ g, l)) la)
            cpos
          @ List.concat_map
              (fun gc -> List.map (fun (g, l) -> (gc @ g, l)) lb)
              cneg)
  | Mod (a, Num m) when m > 0 ->
      (* r = a mod m with 0 <= r < m and a - r divisible: introduce
         quotient atom q with a = q*m + r.  We encode via fresh atoms. *)
      let r_id = atom_id env t in
      let q_id = atom_id env (App ("__div", [ a; Num m ])) in
      List.map
        (fun (g, la) ->
          let r = lin_atom r_id and q = lin_atom q_id in
          let bound = lin_sub (lin_const (m - 1)) r in
          ( (Ge r :: Ge bound
             :: EqZ (lin_sub la (lin_add (lin_scale m q) r))
             :: g),
            r ))
        (linof env a)
  | Div (a, Num m) when m > 0 ->
      let q_id = atom_id env (App ("__div", [ a; Num m ])) in
      let r_id = atom_id env (Mod (a, Num m)) in
      List.map
        (fun (g, la) ->
          let r = lin_atom r_id and q = lin_atom q_id in
          let bound = lin_sub (lin_const (m - 1)) r in
          ( (Ge r :: Ge bound
             :: EqZ (lin_sub la (lin_add (lin_scale m q) r))
             :: g),
            q ))
        (linof env a)
  | _ -> [ ([], lin_atom (atom_id env t)) ]

and lift2 env f a b =
  let la = linof env a and lb = linof env b in
  if List.length la * List.length lb > max_branches then
    raise Too_many_branches;
  List.concat_map
    (fun (ga, xa) -> List.map (fun (gb, xb) -> (ga @ gb, f xa xb)) lb)
    la

(* [lits_of_prop env p] converts a proposition to DNF over literals:
   the result is a list of branches; [p] holds iff some branch's literals
   all hold.  Raises [Nonlinear] when [p] is outside the fragment. *)
and lits_of_prop env (p : prop) : branch list =
  match p with
  | PTrue -> [ [] ]
  | PFalse -> []
  | PAnd (a, b) ->
      let ba = lits_of_prop env a and bb = lits_of_prop env b in
      if List.length ba * List.length bb > max_branches then
        raise Too_many_branches;
      List.concat_map (fun x -> List.map (fun y -> x @ y) bb) ba
  | POr (a, b) -> lits_of_prop env a @ lits_of_prop env b
  | PImp (a, b) -> lits_of_prop env (POr (PNot a, b))
  | PNot (PAnd (a, b)) -> lits_of_prop env (POr (PNot a, PNot b))
  | PNot (POr (a, b)) -> lits_of_prop env (PAnd (PNot a, PNot b))
  | PNot (PNot a) -> lits_of_prop env a
  | PNot (PImp (a, b)) -> lits_of_prop env (PAnd (a, PNot b))
  | PNot PTrue -> []
  | PNot PFalse -> [ [] ]
  | PLe (a, b) -> cmp env a b (fun d -> [ Ge d ])
  | PLt (a, b) -> cmp env a b (fun d -> [ Ge (lin_add d (lin_const (-1))) ])
  | PNot (PLe (a, b)) -> lits_of_prop env (PLt (b, a))
  | PNot (PLt (a, b)) -> lits_of_prop env (PLe (b, a))
  | PEq (a, b) when Sort.is_numeric (sort_of a) || Sort.is_numeric (sort_of b)
    ->
      cmp env a b (fun d -> [ EqZ d ])
  | PNot (PEq (a, b))
    when Sort.is_numeric (sort_of a) || Sort.is_numeric (sort_of b) ->
      lits_of_prop env (POr (PLt (a, b), PLt (b, a)))
  | PIsTrue (TProp q) -> lits_of_prop env q
  | PIsTrue _ -> raise Nonlinear
  | PEq (BoolLit true, TProp q) | PEq (TProp q, BoolLit true) ->
      lits_of_prop env q
  | PEq (BoolLit false, TProp q) | PEq (TProp q, BoolLit false) ->
      lits_of_prop env (PNot q)
  | _ -> raise Nonlinear

and cmp env a b mk =
  (* literal(s) for "b - a within mk" *)
  let la = linof env a and lb = linof env b in
  if List.length la * List.length lb > max_branches then
    raise Too_many_branches;
  List.concat_map
    (fun (ga, xa) ->
      List.map (fun (gb, xb) -> ga @ gb @ mk (lin_sub xb xa)) lb)
    la

(* ------------------------------------------------------------------ *)
(* Refutation: Gaussian elimination on equalities + Fourier–Motzkin    *)
(* ------------------------------------------------------------------ *)

let rec gcd a b = if b = 0 then abs a else gcd b (a mod b)

(* returns [true] if the branch (conjunction of literals) is unsat *)
let branch_unsat (lits : branch) : bool =
  (* Split into equalities and inequalities *)
  let eqs = List.filter_map (function EqZ l -> Some l | _ -> None) lits in
  let ges = List.filter_map (function Ge l -> Some l | _ -> None) lits in
  (* Gaussian elimination on equalities with divisibility check. *)
  let exception Unsat in
  try
    let subst_in l (x, piv) =
      (* piv: a*x + r = 0 with a = coefficient of x in piv *)
      match IMap.find_opt x l.coeffs with
      | None -> l
      | Some c ->
          let a = IMap.find x piv.coeffs in
          (* a * l - c * piv removes x; keep sign of l's direction by
             multiplying by sign(a) *)
          let s = if a > 0 then 1 else -1 in
          let l' = lin_sub (lin_scale (s * a) l) (lin_scale (s * c) piv) in
          l'
    in
    let rec elim_eqs eqs ges acc_ges =
      match eqs with
      | [] -> (ges, acc_ges)
      | e :: rest ->
          if lin_is_const e then
            if e.const <> 0 then raise Unsat else elim_eqs rest ges acc_ges
          else
            let g =
              IMap.fold (fun _ c acc -> gcd acc c) e.coeffs 0
            in
            if g <> 0 && e.const mod g <> 0 then raise Unsat
            else
              (* pick pivot var with smallest |coeff| *)
              let x, _ =
                IMap.fold
                  (fun k c (bk, bc) ->
                    if abs c < bc then (k, abs c) else (bk, bc))
                  e.coeffs (-1, max_int)
              in
              let rest = List.map (fun l -> subst_in l (x, e)) rest in
              let ges = List.map (fun l -> subst_in l (x, e)) ges in
              elim_eqs rest ges acc_ges
    in
    let ges, _ = elim_eqs eqs ges [] in
    (* Fourier–Motzkin on inequalities (rational relaxation: sound for
       refutation). *)
    let rec fm ges fuel =
      if fuel <= 0 then false
      else if
        List.exists (fun l -> lin_is_const l && l.const < 0) ges
      then true
      else
        (* pick a variable occurring in some inequality *)
        let var =
          List.fold_left
            (fun acc l ->
              match acc with
              | Some _ -> acc
              | None -> IMap.choose_opt l.coeffs |> Option.map fst)
            None ges
        in
        match var with
        | None -> false (* all constants, none negative: satisfiable *)
        | Some x ->
            let pos, neg, rest =
              List.fold_left
                (fun (p, n, r) l ->
                  match IMap.find_opt x l.coeffs with
                  | Some c when c > 0 -> (l :: p, n, r)
                  | Some _ -> (p, l :: n, r)
                  | None -> (p, n, l :: r))
                ([], [], []) ges
            in
            let combined =
              List.concat_map
                (fun lp ->
                  let a = IMap.find x lp.coeffs in
                  List.map
                    (fun ln ->
                      let b = -IMap.find x ln.coeffs in
                      lin_add (lin_scale b lp) (lin_scale a ln))
                    neg)
                pos
            in
            if List.length combined > 4096 then false
            else fm (combined @ rest) (fuel - 1)
    in
    fm ges 64
  with Unsat -> true

(* ------------------------------------------------------------------ *)
(* Equality propagation on non-numeric hypotheses                       *)
(* ------------------------------------------------------------------ *)

(* Hypotheses like [x = t] for non-numeric [x] are substituted away so
   that syntactic congruence (shared atom ids) kicks in. *)
let propagate_eqs hyps goal =
  let rec loop n hyps goal =
    if n = 0 then (hyps, goal)
    else
      let pick =
        List.find_map
          (fun h ->
            match h with
            | PEq (Var (x, s), t) when not (Sort.is_numeric s) ->
                if Term.SS.mem x (free_vars_term t) then None
                else Some (x, t)
            | PEq (t, Var (x, s)) when not (Sort.is_numeric s) ->
                if Term.SS.mem x (free_vars_term t) then None
                else Some (x, t)
            | _ -> None)
          hyps
      in
      match pick with
      | None -> (hyps, goal)
      | Some (x, t) ->
          let sub p = Simp.simp_prop (subst_prop [ (x, t) ] p) in
          loop (n - 1) (List.map sub hyps) (sub goal)
  in
  loop 8 hyps goal

(* ------------------------------------------------------------------ *)
(* Entry point                                                          *)
(* ------------------------------------------------------------------ *)

(** [prove ~hyps goal]: try to establish [hyps ⊨ goal].  Quantified or
    otherwise out-of-fragment hypotheses are ignored (sound). *)
let prove ~hyps goal =
  let hyps = List.map Simp.simp_prop hyps in
  let goal = Simp.simp_prop goal in
  if goal = PTrue then true
  else if List.exists (fun h -> equal_prop h goal) hyps then true
  else if List.exists (fun h -> Simp.simp_prop h = PFalse) hyps then true
  else
    let hyps, goal = propagate_eqs hyps goal in
    if goal = PTrue then true
    else if List.exists (fun h -> equal_prop h goal) hyps then true
    else if List.exists (fun h -> h = PFalse) hyps then true
    else
      let env = new_env () in
      try
        (* hypotheses: DNF each; we take only hypotheses that don't blow
           up and conjoin them; a hypothesis whose DNF has several
           branches forces a split. *)
        let hyp_branches =
          List.fold_left
            (fun acc h ->
              match lits_of_prop env h with
              | exception Nonlinear -> acc
              | [] -> raise Exit (* contradictory hypothesis *)
              | bs ->
                  if List.length acc * List.length bs > max_branches then acc
                  else
                    List.concat_map
                      (fun a -> List.map (fun b -> a @ b) bs)
                      acc)
            [ [] ] hyps
        in
        let neg_goal_branches = lits_of_prop env (PNot goal) in
        (* unsat required for every combination *)
        let all =
          List.concat_map
            (fun h -> List.map (fun g -> h @ g) neg_goal_branches)
            hyp_branches
        in
        let all = env.side all in
        all <> [] && List.for_all branch_unsat all
        || neg_goal_branches = []
      with
      | Exit -> true
      | Nonlinear | Too_many_branches -> false

(** Terms and propositions of the pure layer.

    This is the language in which RefinedC refinements, side conditions and
    loop invariants are expressed — the role played by Coq propositions in
    the paper.  Terms are sorted ({!Sort.t}); propositions are a separate
    syntactic class, mirroring the paper's distinction between refinements
    (terms) and side conditions [⌜φ⌝] (propositions).

    Evars ({!constructor:Evar}) are the existential unification variables
    introduced by Lithium's goal case (4); they are *sealed* by default and
    only instantiated through the controlled mechanisms of §5 ("Handling of
    evars").  The evar store itself lives in [rc_lithium]; here evars are
    just syntax. *)

type term =
  | Var of string * Sort.t
  | Evar of int * Sort.t
  | Num of int  (** integer literal (nats are non-negative ints) *)
  | BoolLit of bool
  | TProp of prop  (** a proposition reflected as a boolean term *)
  | Add of term * term
  | Sub of term * term  (** integer subtraction *)
  | NatSub of term * term  (** truncated subtraction: [max 0 (a - b)] *)
  | Mul of term * term
  | Div of term * term  (** Euclidean division (used with literal divisors) *)
  | Mod of term * term
  | Min of term * term
  | Max of term * term
  | Ite of prop * term * term
  | NullLoc
  | LocOfs of term * term  (** pointer offset [l +ₗ n] *)
  (* multisets of integers *)
  | MsEmpty
  | MsSingleton of term
  | MsUnion of term * term
  (* finite sets of integers *)
  | SetEmpty
  | SetSingleton of term
  | SetUnion of term * term
  | SetDiff of term * term
  (* lists *)
  | Nil of Sort.t
  | Cons of term * term
  | Append of term * term
  | Length of term
  | Replicate of term * term  (** [Replicate (n, x)]: [n] copies of [x] *)
  | NthDflt of term * term * term  (** [NthDflt (d, i, l)]: i-th elt or [d] *)
  | SetListInsert of term * term * term  (** [<[i := x]> l] list update *)
  | App of string * term list  (** defined / uninterpreted function symbol *)

and prop =
  | PTrue
  | PFalse
  | PEq of term * term
  | PLe of term * term
  | PLt of term * term
  | PAnd of prop * prop
  | POr of prop * prop
  | PNot of prop
  | PImp of prop * prop
  | PIsTrue of term  (** lift a boolean term to a proposition *)
  | PIn of term * term  (** membership in a multiset, set or list *)
  | PForall of string * Sort.t * prop
  | PExists of string * Sort.t * prop
  | PPred of string * term list  (** defined / uninterpreted predicate *)
[@@deriving eq, ord, show { with_path = false }]

let p_ne a b = PNot (PEq (a, b))
let p_ge a b = PLe (b, a)
let p_gt a b = PLt (b, a)
let nat x = Var (x, Sort.Nat)
let int_v x = Var (x, Sort.Int)
let loc_v x = Var (x, Sort.Loc)
let mset_v x = Var (x, Sort.Mset)

(* ------------------------------------------------------------------ *)
(* Traversal                                                           *)
(* ------------------------------------------------------------------ *)

(** [map_term f t] applies [f] to every direct term child of [t]/[p];
    building block for substitution and simplification. *)
let rec map_term (f : term -> term) (t : term) : term =
  match t with
  | Var _ | Evar _ | Num _ | BoolLit _ | NullLoc | MsEmpty | SetEmpty | Nil _
    ->
      t
  | TProp p -> TProp (map_prop f p)
  | Add (a, b) -> Add (f a, f b)
  | Sub (a, b) -> Sub (f a, f b)
  | NatSub (a, b) -> NatSub (f a, f b)
  | Mul (a, b) -> Mul (f a, f b)
  | Div (a, b) -> Div (f a, f b)
  | Mod (a, b) -> Mod (f a, f b)
  | Min (a, b) -> Min (f a, f b)
  | Max (a, b) -> Max (f a, f b)
  | Ite (c, a, b) -> Ite (map_prop f c, f a, f b)
  | LocOfs (l, n) -> LocOfs (f l, f n)
  | MsSingleton a -> MsSingleton (f a)
  | MsUnion (a, b) -> MsUnion (f a, f b)
  | SetSingleton a -> SetSingleton (f a)
  | SetUnion (a, b) -> SetUnion (f a, f b)
  | SetDiff (a, b) -> SetDiff (f a, f b)
  | Cons (a, b) -> Cons (f a, f b)
  | Append (a, b) -> Append (f a, f b)
  | Length a -> Length (f a)
  | Replicate (a, b) -> Replicate (f a, f b)
  | NthDflt (d, i, l) -> NthDflt (f d, f i, f l)
  | SetListInsert (i, x, l) -> SetListInsert (f i, f x, f l)
  | App (g, args) -> App (g, List.map f args)

and map_prop (f : term -> term) (p : prop) : prop =
  match p with
  | PTrue | PFalse -> p
  | PEq (a, b) -> PEq (f a, f b)
  | PLe (a, b) -> PLe (f a, f b)
  | PLt (a, b) -> PLt (f a, f b)
  | PAnd (a, b) -> PAnd (map_prop f a, map_prop f b)
  | POr (a, b) -> POr (map_prop f a, map_prop f b)
  | PNot a -> PNot (map_prop f a)
  | PImp (a, b) -> PImp (map_prop f a, map_prop f b)
  | PIsTrue t -> PIsTrue (f t)
  | PIn (a, b) -> PIn (f a, f b)
  | PForall (x, s, q) -> PForall (x, s, map_prop f q)
  | PExists (x, s, q) -> PExists (x, s, map_prop f q)
  | PPred (g, args) -> PPred (g, List.map f args)

let rec fold_term : 'a. ('a -> term -> 'a) -> 'a -> term -> 'a =
 fun f acc t ->
  let acc = f acc t in
  let g acc t = fold_term f acc t in
  match t with
  | Var _ | Evar _ | Num _ | BoolLit _ | NullLoc | MsEmpty | SetEmpty | Nil _
    ->
      acc
  | TProp p -> fold_prop f acc p
  | Add (a, b)
  | Sub (a, b)
  | NatSub (a, b)
  | Mul (a, b)
  | Div (a, b)
  | Mod (a, b)
  | Min (a, b)
  | Max (a, b)
  | LocOfs (a, b)
  | MsUnion (a, b)
  | SetUnion (a, b)
  | SetDiff (a, b)
  | Cons (a, b)
  | Append (a, b)
  | Replicate (a, b) ->
      g (g acc a) b
  | Ite (c, a, b) -> g (g (fold_prop f acc c) a) b
  | MsSingleton a | SetSingleton a | Length a -> g acc a
  | NthDflt (a, b, c) | SetListInsert (a, b, c) -> g (g (g acc a) b) c
  | App (_, args) -> List.fold_left g acc args

and fold_prop : 'a. ('a -> term -> 'a) -> 'a -> prop -> 'a =
 fun f acc p ->
  let g acc t = fold_term f acc t in
  match p with
  | PTrue | PFalse -> acc
  | PEq (a, b) | PLe (a, b) | PLt (a, b) | PIn (a, b) -> g (g acc a) b
  | PAnd (a, b) | POr (a, b) | PImp (a, b) ->
      fold_prop f (fold_prop f acc a) b
  | PNot a -> fold_prop f acc a
  | PIsTrue t -> g acc t
  | PForall (_, _, q) | PExists (_, _, q) -> fold_prop f acc q
  | PPred (_, args) -> List.fold_left g acc args

(* ------------------------------------------------------------------ *)
(* Free variables, evars                                               *)
(* ------------------------------------------------------------------ *)

module SS = Set.Make (String)

let free_vars_term t =
  (* Bound variables only occur under PForall/PExists, which we handle by
     collecting then removing; quantified names are made globally unique by
     the parser, so plain collection is accurate in practice.  We still
     remove binder names for robustness. *)
  let rec go_t bound acc t =
    match t with
    | Var (x, _) -> if SS.mem x bound then acc else SS.add x acc
    | TProp p -> go_p bound acc p
    | Ite (c, a, b) -> go_t bound (go_t bound (go_p bound acc c) a) b
    | _ ->
        fold_term
          (fun acc t ->
            match t with
            | Var (x, _) -> if SS.mem x bound then acc else SS.add x acc
            | _ -> acc)
          acc t
  and go_p bound acc p =
    match p with
    | PForall (x, _, q) | PExists (x, _, q) -> go_p (SS.add x bound) acc q
    | PAnd (a, b) | POr (a, b) | PImp (a, b) ->
        go_p bound (go_p bound acc a) b
    | PNot a -> go_p bound acc a
    | _ -> fold_prop (fun acc t -> go_t bound acc t) acc p
  in
  go_t SS.empty SS.empty t

let free_vars_prop p =
  let rec go bound acc p =
    match p with
    | PForall (x, _, q) | PExists (x, _, q) -> go (SS.add x bound) acc q
    | PAnd (a, b) | POr (a, b) | PImp (a, b) -> go bound (go bound acc a) b
    | PNot a -> go bound acc a
    | _ ->
        fold_prop
          (fun acc t ->
            SS.union acc
              (SS.filter (fun x -> not (SS.mem x bound)) (free_vars_term t)))
          acc p
  in
  go SS.empty SS.empty p

let evars_term t =
  fold_term
    (fun acc t -> match t with Evar (i, _) -> i :: acc | _ -> acc)
    [] t
  |> List.sort_uniq Int.compare

let evars_prop p =
  fold_prop
    (fun acc t -> match t with Evar (i, _) -> i :: acc | _ -> acc)
    [] p
  |> List.sort_uniq Int.compare

let has_evars_term t = evars_term t <> []
let has_evars_prop p = evars_prop p <> []

(* ------------------------------------------------------------------ *)
(* Substitution                                                        *)
(* ------------------------------------------------------------------ *)

(** [subst_term env t] substitutes variables by name.  The frontend makes
    binder names globally unique, so capture cannot occur. *)
let rec subst_term (env : (string * term) list) (t : term) : term =
  match t with
  | Var (x, _) -> ( match List.assoc_opt x env with Some u -> u | None -> t)
  | _ -> map_term (subst_term env) t

and subst_prop env p =
  match p with
  | PForall (x, s, q) ->
      let env = List.filter (fun (y, _) -> y <> x) env in
      PForall (x, s, subst_prop env q)
  | PExists (x, s, q) ->
      let env = List.filter (fun (y, _) -> y <> x) env in
      PExists (x, s, subst_prop env q)
  | PAnd (a, b) -> PAnd (subst_prop env a, subst_prop env b)
  | POr (a, b) -> POr (subst_prop env a, subst_prop env b)
  | PImp (a, b) -> PImp (subst_prop env a, subst_prop env b)
  | PNot a -> PNot (subst_prop env a)
  | _ -> map_prop (subst_term env) p

(** Substitute evars by id (used when the evar store resolves). *)
let rec subst_evars_term (lookup : int -> term option) (t : term) : term =
  match t with
  | Evar (i, _) -> (
      match lookup i with
      | Some u -> subst_evars_term lookup u
      | None -> t)
  | _ -> map_term (subst_evars_term lookup) t

let subst_evars_prop lookup p = map_prop (subst_evars_term lookup) p

(* ------------------------------------------------------------------ *)
(* Sort inference (shallow)                                            *)
(* ------------------------------------------------------------------ *)

let rec sort_of (t : term) : Sort.t =
  match t with
  | Var (_, s) | Evar (_, s) -> s
  | Num n -> if n >= 0 then Sort.Nat else Sort.Int
  | BoolLit _ | TProp _ -> Sort.Bool
  | Add (a, b) | Mul (a, b) | Min (a, b) | Max (a, b) -> (
      match Sort.lub (sort_of a) (sort_of b) with
      | Some s -> s
      | None -> Sort.Int)
  | Sub _ -> Sort.Int
  | NatSub _ -> Sort.Nat
  | Div (a, _) | Mod (a, _) -> sort_of a
  | Ite (_, a, _) -> sort_of a
  | NullLoc | LocOfs _ -> Sort.Loc
  | MsEmpty | MsSingleton _ | MsUnion _ -> Sort.Mset
  | SetEmpty | SetSingleton _ | SetUnion _ | SetDiff _ -> Sort.Set
  | Nil s -> Sort.List s
  | Cons (a, _) -> Sort.List (sort_of a)
  | Append (a, _) -> sort_of a
  | Length _ -> Sort.Nat
  | Replicate (_, x) -> Sort.List (sort_of x)
  | NthDflt (d, _, _) -> sort_of d
  | SetListInsert (_, _, l) -> sort_of l
  | App _ -> Sort.Unknown

(* ------------------------------------------------------------------ *)
(* Pretty printing                                                     *)
(* ------------------------------------------------------------------ *)

let rec pp_term ppf (t : term) =
  let p fmt = Fmt.pf ppf fmt in
  match t with
  | Var (x, _) -> Fmt.string ppf (Rc_util.Gensym.base x)
  | Evar (i, _) -> p "?e%d" i
  | Num n -> p "%d" n
  | BoolLit b -> p "%b" b
  | TProp q -> p "{%a}" pp_prop q
  | Add (a, b) -> p "(%a + %a)" pp_term a pp_term b
  | Sub (a, b) -> p "(%a - %a)" pp_term a pp_term b
  | NatSub (a, b) -> p "(%a ∸ %a)" pp_term a pp_term b
  | Mul (a, b) -> p "(%a * %a)" pp_term a pp_term b
  | Div (a, b) -> p "(%a / %a)" pp_term a pp_term b
  | Mod (a, b) -> p "(%a %% %a)" pp_term a pp_term b
  | Min (a, b) -> p "min(%a, %a)" pp_term a pp_term b
  | Max (a, b) -> p "max(%a, %a)" pp_term a pp_term b
  | Ite (c, a, b) -> p "(%a ? %a : %a)" pp_prop c pp_term a pp_term b
  | NullLoc -> p "NULL"
  | LocOfs (l, n) -> p "(%a +ₗ %a)" pp_term l pp_term n
  | MsEmpty -> p "∅"
  | MsSingleton a -> p "{[%a]}" pp_term a
  | MsUnion (a, b) -> p "(%a ⊎ %a)" pp_term a pp_term b
  | SetEmpty -> p "∅"
  | SetSingleton a -> p "{[%a]}" pp_term a
  | SetUnion (a, b) -> p "(%a ∪ %a)" pp_term a pp_term b
  | SetDiff (a, b) -> p "(%a ∖ %a)" pp_term a pp_term b
  | Nil _ -> p "[]"
  | Cons (a, b) -> p "(%a :: %a)" pp_term a pp_term b
  | Append (a, b) -> p "(%a ++ %a)" pp_term a pp_term b
  | Length a -> p "length %a" pp_term a
  | Replicate (n, x) -> p "replicate %a %a" pp_term n pp_term x
  | NthDflt (d, i, l) ->
      p "nth %a %a %a" pp_term d pp_term i pp_term l
  | SetListInsert (i, x, l) ->
      p "<[%a := %a]> %a" pp_term i pp_term x pp_term l
  | App (f, []) -> p "%s" f
  | App (f, args) -> p "%s(%a)" f Fmt.(list ~sep:comma pp_term) args

and pp_prop ppf (q : prop) =
  let p fmt = Fmt.pf ppf fmt in
  match q with
  | PTrue -> p "True"
  | PFalse -> p "False"
  | PEq (a, b) -> p "%a = %a" pp_term a pp_term b
  | PNot (PEq (a, b)) -> p "%a ≠ %a" pp_term a pp_term b
  | PLe (a, b) -> p "%a ≤ %a" pp_term a pp_term b
  | PLt (a, b) -> p "%a < %a" pp_term a pp_term b
  | PAnd (a, b) -> p "(%a ∧ %a)" pp_prop a pp_prop b
  | POr (a, b) -> p "(%a ∨ %a)" pp_prop a pp_prop b
  | PNot a -> p "¬%a" pp_prop a
  | PImp (a, b) -> p "(%a → %a)" pp_prop a pp_prop b
  | PIsTrue t -> p "is_true %a" pp_term t
  | PIn (a, b) -> p "%a ∈ %a" pp_term a pp_term b
  | PForall (x, s, q) ->
      p "∀ %s : %a, %a" (Rc_util.Gensym.base x) Sort.pp s pp_prop q
  | PExists (x, s, q) ->
      p "∃ %s : %a, %a" (Rc_util.Gensym.base x) Sort.pp s pp_prop q
  | PPred (f, args) -> p "%s(%a)" f Fmt.(list ~sep:comma pp_term) args

let term_to_string t = Fmt.str "%a" pp_term t
let prop_to_string p = Fmt.str "%a" pp_prop p

(** Conjunction of a list, right-nested, dropping [PTrue]. *)
let conj ps =
  let ps = List.filter (fun p -> p <> PTrue) ps in
  match ps with
  | [] -> PTrue
  | p :: rest -> List.fold_left (fun acc q -> PAnd (acc, q)) p rest

(** Flatten nested conjunctions into a list. *)
let rec conjuncts = function
  | PTrue -> []
  | PAnd (a, b) -> conjuncts a @ conjuncts b
  | p -> [ p ]

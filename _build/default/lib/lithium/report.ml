(** Structured verification errors (§2.1, "Error messages").

    Lithium's syntax-directed search affords precise error messages: the
    failure is located (the C source location of the judgment being
    typed), the branch trail identifies which control-flow branches were
    taken, and the failure kind says what could not be proved. *)

type kind =
  | Unsolved_side_condition of Rc_pure.Term.prop
  | Evar_stuck of Rc_pure.Term.prop
      (** a side condition still contains evars after the heuristics *)
  | No_rule_applies of string  (** printed judgment *)
  | No_ownership of string  (** printed atom not found in the context *)
  | Frontend of string  (** parse/elaboration failure *)

type t = {
  loc : Rc_util.Srcloc.t option;
  trail : string list;  (** innermost branch label last *)
  kind : kind;
  context : string list;  (** printed Δ atoms at the failure point *)
}

exception Error of t

let fail ?loc ?(trail = []) ?(context = []) kind =
  raise (Error { loc; trail; kind; context })

let pp_kind ppf = function
  | Unsolved_side_condition p ->
      Fmt.pf ppf "Cannot solve side condition in function@,  %a"
        Rc_pure.Term.pp_prop p
  | Evar_stuck p ->
      Fmt.pf ppf
        "Cannot instantiate existential variable in side condition@,  %a"
        Rc_pure.Term.pp_prop p
  | No_rule_applies j -> Fmt.pf ppf "No typing rule applies to@,  %a" Fmt.string j
  | No_ownership a ->
      Fmt.pf ppf "Cannot find ownership in the context for@,  %a" Fmt.string a
  | Frontend msg -> Fmt.string ppf msg

let pp ppf (e : t) =
  Fmt.pf ppf "@[<v>";
  (match e.loc with
  | Some l -> Fmt.pf ppf "Verification failed at %a@," Rc_util.Srcloc.pp l
  | None -> Fmt.pf ppf "Verification failed@,");
  List.iter (fun b -> Fmt.pf ppf "  in %s@," b) (List.rev e.trail);
  Fmt.pf ppf "%a" pp_kind e.kind;
  if e.context <> [] then begin
    Fmt.pf ppf "@,Context:";
    List.iter (fun a -> Fmt.pf ppf "@,  %s" a) e.context
  end;
  Fmt.pf ppf "@]"

let to_string e = Fmt.str "%a" pp e

(** Derivation trees (certificates).

    Lithium's output is not just "yes": every run produces a derivation
    tree recording each interpreter case, each typing-rule application
    (by name), and each pure side condition together with the evidence
    that discharged it (its solver verdict), with all evars resolved.
    This is the reproduction's stand-in for the Coq proof term of the
    paper: the independent checker in [rc_cert] re-validates the tree
    without trusting the search engine. *)

type node = {
  d_case : string;
      (** interpreter case or ["rule:<name>"] for rule applications *)
  d_info : string;  (** printed judgment / atom / binder *)
  d_loc : Rc_util.Srcloc.t option;
  d_side : (Rc_pure.Term.prop * Rc_pure.Registry.verdict) list;
      (** side conditions discharged at this node, evar-free *)
  d_hyps : Rc_pure.Term.prop list;
      (** the pure context Γ the side conditions were discharged under
          (recorded so the certificate checker can re-discharge them) *)
  d_tactics : string list;  (** named solvers that were enabled *)
  d_children : node list;
}

let make ?(info = "") ?loc ?(side = []) ?(hyps = []) ?(tactics = []) case
    children =
  { d_case = case; d_info = info; d_loc = loc; d_side = side; d_hyps = hyps;
    d_tactics = tactics; d_children = children }

let rec size n = 1 + List.fold_left (fun a c -> a + size c) 0 n.d_children

let rec pp ?(depth = 0) ppf n =
  if depth < 40 then begin
    Fmt.pf ppf "%s%s%s%s@."
      (String.make (min depth 20 * 2) ' ')
      n.d_case
      (if n.d_info = "" then "" else ": " ^ n.d_info)
      (match n.d_side with
      | [] -> ""
      | side ->
          Fmt.str " [%a]"
            Fmt.(
              list ~sep:comma (fun ppf (p, v) ->
                  Fmt.pf ppf "%a (%a)" Rc_pure.Term.pp_prop p
                    Rc_pure.Registry.pp_verdict v))
            side);
    List.iter (pp ~depth:(depth + 1) ppf) n.d_children
  end

(** All side conditions in the tree, with their verdicts. *)
let rec side_conditions n =
  n.d_side
  @ List.concat_map side_conditions n.d_children

(** All rule applications (names) in the tree. *)
let rec rules n =
  (if String.length n.d_case > 5 && String.sub n.d_case 0 5 = "rule:" then
     [ String.sub n.d_case 5 (String.length n.d_case - 5) ]
   else [])
  @ List.concat_map rules n.d_children

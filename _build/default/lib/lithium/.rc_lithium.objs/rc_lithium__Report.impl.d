lib/lithium/report.ml: Fmt List Rc_pure Rc_util

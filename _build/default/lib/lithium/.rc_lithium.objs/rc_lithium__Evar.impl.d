lib/lithium/evar.ml: Hashtbl List Rc_pure Rc_util Sort

lib/lithium/evar.mli: Hashtbl Rc_pure Rc_util Sort Term

lib/lithium/stats.ml: Fmt Hashtbl Option Rc_pure

lib/lithium/stats.mli: Format Hashtbl Rc_pure

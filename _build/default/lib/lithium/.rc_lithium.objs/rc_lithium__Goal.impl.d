lib/lithium/goal.ml: List Rc_pure

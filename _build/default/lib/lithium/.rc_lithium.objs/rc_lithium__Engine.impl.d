lib/lithium/engine.ml: Deriv Evar Fmt Format Goal List Option Rc_pure Rc_util Registry Report Simp Sort Stats Stdlib Term

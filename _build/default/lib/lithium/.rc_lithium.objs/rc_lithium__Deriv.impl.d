lib/lithium/deriv.ml: Fmt List Rc_pure Rc_util String

lib/studies/studies.ml: List Rc_caesium Rc_pure Rc_refinedc Registry Simp Sort
